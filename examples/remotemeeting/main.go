// Command remotemeeting runs the paper's example (v) across a simulated
// cluster: each attendee's diary lives on their own node, and the
// negotiation is a distributed glued chain — every round is a two-phase
// commit transaction, surviving candidate slots stay locked at their
// nodes via the pass colour, and dropped slots free as soon as the next
// round commits. This is the "distributed version" the paper's
// conclusion points at, end to end.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"mca/internal/action"
	"mca/internal/dist"
	"mca/internal/ids"
	"mca/internal/lock"
	"mca/internal/netsim"
	"mca/internal/node"
	"mca/internal/object"
	"mca/internal/rpc"
)

// diaryResource hosts one person's diary slots on a node.
type diaryResource struct {
	mgr   *dist.Manager
	owner string

	mu    sync.Mutex
	slots []*object.Managed[string] // "" = free, else the booking note
}

func newDiaryResource(owner string, days int) *diaryResource {
	return &diaryResource{owner: owner, slots: make([]*object.Managed[string], days)}
}

func (d *diaryResource) Register(nd *node.Node, _ *rpc.Peer) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.slots {
		if d.slots[i] == nil {
			d.slots[i] = object.New("")
		}
	}
}

func (d *diaryResource) Recover(context.Context, *node.Node) {}

type slotArg struct {
	Slot int    `json:"slot"`
	Note string `json:"note,omitempty"`
}

type freeResp struct {
	Free bool `json:"free"`
}

func (d *diaryResource) Invoke(a *action.Action, op string, arg []byte) ([]byte, error) {
	var in slotArg
	if err := json.Unmarshal(arg, &in); err != nil {
		return nil, err
	}
	d.mu.Lock()
	if in.Slot < 0 || in.Slot >= len(d.slots) {
		d.mu.Unlock()
		return nil, fmt.Errorf("slot %d out of range", in.Slot)
	}
	m := d.slots[in.Slot]
	d.mu.Unlock()

	switch op {
	case "free":
		var out freeResp
		if err := m.Read(a, func(v string) error {
			out.Free = v == ""
			return nil
		}); err != nil {
			return nil, err
		}
		return json.Marshal(out)
	case "hold":
		pass, ok := d.mgr.PassColour(a)
		if !ok {
			return nil, errors.New("hold outside a structure")
		}
		if err := a.Lock(m.ObjectID(), lock.ExclusiveRead, pass); err != nil {
			return nil, err
		}
		return []byte("{}"), nil
	case "book":
		if err := m.Write(a, func(v *string) error {
			if *v != "" {
				return fmt.Errorf("%s slot %d already busy", d.owner, in.Slot)
			}
			*v = in.Note
			return nil
		}); err != nil {
			return nil, err
		}
		return []byte("{}"), nil
	default:
		return nil, fmt.Errorf("unknown op %q", op)
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	nw := netsim.New(netsim.Config{LossRate: 0.05, Seed: 3,
		MinDelay: 200 * time.Microsecond, MaxDelay: 2 * time.Millisecond})
	defer nw.Close()
	opts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 2 * time.Second}

	coordNode, err := node.New(nw, node.WithRPCOptions(opts))
	if err != nil {
		return err
	}
	defer coordNode.Stop()
	coord := dist.NewManager(coordNode)

	const days = 10
	people := []string{"ada", "bob", "carol"}
	busy := map[string][]int{"ada": {2}, "bob": {4}, "carol": {2, 6}}
	nodes := make(map[string]ids.NodeID, len(people))
	for _, p := range people {
		nd, err := node.New(nw, node.WithRPCOptions(opts))
		if err != nil {
			return err
		}
		defer nd.Stop()
		mgr := dist.NewManager(nd)
		res := newDiaryResource(p, days)
		res.mgr = mgr
		nd.Host(res)
		mgr.RegisterResource("diary", res)
		nodes[p] = nd.ID()
		// Prior appointments.
		for _, slot := range busy[p] {
			if err := mgr.Run(ctx, func(txn *dist.Txn) error {
				return txn.Invoke(ctx, nd.ID(), "diary", "book", slotArg{Slot: slot, Note: "prior"}, nil)
			}); err != nil {
				return err
			}
		}
		fmt.Printf("%s's diary on node %v, busy days %v\n", p, nd.ID(), busy[p])
	}

	chain, err := coord.BeginRemoteChain()
	if err != nil {
		return err
	}
	defer chain.End(ctx)

	// Round 1: find commonly free days among the candidates and hold
	// them at every diary's node.
	candidates := []int{2, 4, 5, 6, 8}
	var commonlyFree []int
	err = chain.RunStage(ctx, func(txn *dist.Txn) error {
		for _, day := range candidates {
			all := true
			for _, p := range people {
				var out freeResp
				if err := txn.Invoke(ctx, nodes[p], "diary", "free", slotArg{Slot: day}, &out); err != nil {
					return err
				}
				if !out.Free {
					all = false
					break
				}
			}
			if !all {
				continue
			}
			commonlyFree = append(commonlyFree, day)
			for _, p := range people {
				if err := txn.Invoke(ctx, nodes[p], "diary", "hold", slotArg{Slot: day}, nil); err != nil {
					return err
				}
			}
		}
		if len(commonlyFree) == 0 {
			return errors.New("no commonly free day")
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("round 1: candidates %v -> commonly free %v (held at every node)\n",
		candidates, commonlyFree)

	// Round 2: preference narrowing — keep the two earliest, pass them
	// on; the rest free cluster-wide when this round commits.
	kept := commonlyFree
	if len(kept) > 2 {
		kept = kept[:2]
	}
	err = chain.RunStage(ctx, func(txn *dist.Txn) error {
		for _, day := range kept {
			for _, p := range people {
				if err := txn.Invoke(ctx, nodes[p], "diary", "hold", slotArg{Slot: day}, nil); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("round 2: narrowed to %v (dropped days released at their nodes)\n", kept)

	// Round 3: book the earliest surviving day everywhere, atomically.
	chosen := kept[0]
	err = chain.RunStage(ctx, func(txn *dist.Txn) error {
		for _, p := range people {
			if err := txn.Invoke(ctx, nodes[p], "diary", "book",
				slotArg{Slot: chosen, Note: "design meeting"}, nil); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := chain.End(ctx); err != nil {
		return err
	}
	fmt.Printf("booked day %d in all three diaries (one 2PC transaction)\n", chosen)

	// Confirm across the cluster.
	for _, p := range people {
		var out freeResp
		if err := coord.Run(ctx, func(txn *dist.Txn) error {
			return txn.Invoke(ctx, nodes[p], "diary", "free", slotArg{Slot: chosen}, &out)
		}); err != nil {
			return err
		}
		fmt.Printf("%s day %d free? %v\n", p, chosen, out.Free)
	}
	return nil
}
