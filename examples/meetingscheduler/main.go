// Command meetingscheduler reproduces the paper's example (v): arranging
// a meeting date across personal diaries with a chain of glued actions.
// Each round narrows the candidate slots; locks on dropped slots are
// released as the chain advances, and the final round books the chosen
// slot in every diary.
package main

import (
	"fmt"
	"log"

	"mca/internal/core"
	"mca/internal/diary"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rt := core.NewRuntime()
	st := core.NewStableStore()

	const days = 14
	ada := diary.NewDiary("ada", days, core.WithStore(st))
	bob := diary.NewDiary("bob", days, core.WithStore(st))
	carol := diary.NewDiary("carol", days, core.WithStore(st))

	// Pre-existing appointments.
	if err := ada.BookDirect(rt, 3, "dentist"); err != nil {
		return err
	}
	if err := bob.BookDirect(rt, 5, "travel"); err != nil {
		return err
	}
	if err := carol.BookDirect(rt, 8, "holiday"); err != nil {
		return err
	}

	sched := diary.NewScheduler(rt, ada, bob, carol)

	// Round 2: everyone prefers the second half of the window.
	preferLate := func(cs []int) []int {
		var out []int
		for _, c := range cs {
			if c >= 7 {
				out = append(out, c)
			}
		}
		if len(out) == 0 {
			return cs
		}
		return out
	}
	// Round 3: project lead picks the earliest remaining.
	pickFirst := func(cs []int) []int { return cs[:1] }

	candidates := []int{3, 5, 7, 8, 9, 11}
	fmt.Printf("candidates: %v\n", candidates)

	chosen, err := sched.Arrange(candidates, "design meeting", preferLate, pickFirst)
	if err != nil {
		return err
	}
	fmt.Printf("candidate set per round: %v\n", sched.RoundCandidates())
	fmt.Printf("meeting booked on day %d\n", chosen)

	for _, d := range []*diary.Diary{ada, bob, carol} {
		slot := d.Peek(chosen)
		fmt.Printf("%-6s day %d: busy=%v note=%q\n", d.Owner(), chosen, slot.Busy, slot.Note)
	}

	// The negotiation held no unnecessary locks at the end: book an
	// unrelated day immediately.
	if err := ada.BookDirect(rt, 9, "gym"); err != nil {
		return fmt.Errorf("unrelated booking after scheduling: %w", err)
	}
	fmt.Println("ada booked day 9 right after — no lingering locks")
	return nil
}
