// Command timelines executes the paper's action structures and renders
// each as the timeline diagram the paper draws (figs 2, 3, 5, 7): one
// row per action, '=' spanning begin to completion, C commit, A abort.
// It is the fastest way to see what the structures actually do.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"mca/internal/action"
	"mca/internal/core"
	"mca/internal/structures"
	"mca/internal/trace"
)

const width = 64

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	if err := fig2(); err != nil {
		return err
	}
	if err := fig3(); err != nil {
		return err
	}
	if err := fig5(); err != nil {
		return err
	}
	return fig7()
}

func pause() { time.Sleep(2 * time.Millisecond) }

// fig2: nested atomic actions — the enclosing abort undoes everything.
func fig2() error {
	rec := trace.NewRecorder()
	rt := core.NewRuntime(action.WithObserver(rec.Observe))
	o := core.NewObject(0)

	a, err := rt.Begin()
	if err != nil {
		return err
	}
	rec.Label(a.ID(), "A")
	if err := a.Run(func(b *action.Action) error {
		rec.Label(b.ID(), "B")
		pause()
		return o.Write(b, func(v *int) error { *v = 1; return nil })
	}); err != nil {
		return err
	}
	if err := a.Run(func(c *action.Action) error {
		rec.Label(c.ID(), "C")
		pause()
		return o.Write(c, func(v *int) error { *v = 2; return nil })
	}); err != nil {
		return err
	}
	if err := a.Abort(); err != nil {
		return err
	}
	fmt.Printf("Fig 2 — nested atomic actions (A aborts: o=%d, everything undone)\n%s\n",
		o.Peek(), rec.Render(width))
	return nil
}

// fig3: a serializing action — constituent B's effects survive both C's
// abort and the container's cancellation.
func fig3() error {
	rec := trace.NewRecorder()
	rt := core.NewRuntime(action.WithObserver(rec.Observe))
	o := core.NewObject(0)

	s, err := structures.BeginSerializing(rt)
	if err != nil {
		return err
	}
	rec.Label(s.Container().ID(), "A (serializing)")
	if err := s.RunConstituent(func(b *action.Action) error {
		rec.Label(b.ID(), "B")
		pause()
		return o.Write(b, func(v *int) error { *v = 1; return nil })
	}); err != nil {
		return err
	}
	boom := errors.New("C fails")
	_ = s.RunConstituent(func(c *action.Action) error {
		rec.Label(c.ID(), "C")
		pause()
		if err := o.Write(c, func(v *int) error { *v = 2; return nil }); err != nil {
			return err
		}
		return boom
	})
	if err := s.Cancel(); err != nil {
		return err
	}
	fmt.Printf("Fig 3 — serializing action, outcome (iii) (B commits, C aborts: o=%d)\n%s\n",
		o.Peek(), rec.Render(width))
	return nil
}

// fig5: glued actions — A passes a subset to B.
func fig5() error {
	rec := trace.NewRecorder()
	rt := core.NewRuntime(action.WithObserver(rec.Observe))
	passed := core.NewObject(0)
	released := core.NewObject(0)

	chain := structures.NewChain(rt)
	if err := chain.RunStage(func(stage *structures.Stage) error {
		rec.Label(stage.ID(), "A")
		pause()
		for _, m := range []*core.Object[int]{passed, released} {
			if err := m.Write(stage.Action, func(v *int) error { *v = 1; return nil }); err != nil {
				return err
			}
		}
		return stage.PassOn(passed.ObjectID())
	}); err != nil {
		return err
	}
	if err := chain.RunStage(func(stage *structures.Stage) error {
		rec.Label(stage.ID(), "B")
		pause()
		return passed.Write(stage.Action, func(v *int) error { *v += 10; return nil })
	}); err != nil {
		return err
	}
	if err := chain.End(); err != nil {
		return err
	}
	fmt.Printf("Fig 5 — glued actions (passed=%d released=%d; joints shown as unnamed rows)\n%s\n",
		passed.Peek(), released.Peek(), rec.Render(width))
	return nil
}

// fig7: top-level independent actions, the invoker aborting.
func fig7() error {
	rec := trace.NewRecorder()
	rt := core.NewRuntime(action.WithObserver(rec.Observe))
	board := core.NewObject(0)

	a, err := rt.Begin()
	if err != nil {
		return err
	}
	rec.Label(a.ID(), "A (invoker)")
	if err := structures.RunIndependent(a, func(b *action.Action) error {
		rec.Label(b.ID(), "B (independent)")
		pause()
		return board.Write(b, func(v *int) error { *v = 7; return nil })
	}); err != nil {
		return err
	}
	h, err := structures.SpawnIndependent(a, func(c *action.Action) error {
		rec.Label(c.ID(), "C (async independent)")
		pause()
		return board.Write(c, func(v *int) error { *v += 1; return nil })
	})
	if err != nil {
		return err
	}
	pause()
	if err := a.Abort(); err != nil {
		return err
	}
	if err := h.Wait(); err != nil {
		return err
	}
	fmt.Printf("Fig 7 — top-level independent actions (invoker aborts, board=%d survives)\n%s\n",
		board.Peek(), rec.Render(width))
	return nil
}
