// Command bulletinboard reproduces the paper's examples (i)–(iii): a
// bulletin board, a replicated name server and a billing ledger, all
// driven from application actions through top-level independent actions
// — the postings, name bindings and charges survive the application's
// abort, and the board posting is compensated (withdrawn) when the
// application fails.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"mca/internal/billing"
	"mca/internal/bulletin"
	"mca/internal/core"
	"mca/internal/dist"
	"mca/internal/ids"
	"mca/internal/nameserver"
	"mca/internal/netsim"
	"mca/internal/node"
	"mca/internal/rpc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	rt := core.NewRuntime()

	// Local services: bulletin board and billing ledger.
	board := bulletin.New(rt)
	ledger := billing.New(rt)

	// A replicated name server on a small simulated cluster.
	nw := netsim.New(netsim.Config{LossRate: 0.05, Seed: 17})
	defer nw.Close()
	opts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 2 * time.Second}

	appNode, err := node.New(nw, node.WithRPCOptions(opts))
	if err != nil {
		return err
	}
	defer appNode.Stop()
	appMgr := dist.NewManager(appNode)

	var replicas []ids.NodeID
	var nsNodes []*node.Node
	for i := 0; i < 3; i++ {
		nd, err := node.New(nw, node.WithRPCOptions(opts))
		if err != nil {
			return err
		}
		defer nd.Stop()
		nameserver.NewServer(nd, dist.NewManager(nd))
		replicas = append(replicas, nd.ID())
		nsNodes = append(nsNodes, nd)
	}
	ns := nameserver.NewClient(appMgr, replicas...)

	// The application action: it posts to the board, registers a
	// service name, records a usage charge — then fails.
	fmt.Println("== application action that ends up aborting ==")
	appFailure := errors.New("application hit a fatal error")
	app, err := rt.Begin()
	if err != nil {
		return err
	}

	postID, err := board.PostCompensated(app, "ada", "new service", "launching soon")
	if err != nil {
		return err
	}
	fmt.Printf("posted bulletin #%d (independent action, visible immediately)\n", postID)

	if err := ns.Add(ctx, "service/launch", "node-42"); err != nil {
		return err
	}
	fmt.Println("registered service/launch -> node-42 (replicated name server)")

	if err := ledger.Charge(app, "ada", 12, "service registration fee"); err != nil {
		return err
	}
	fmt.Println("charged ada 12 units (billing is never undone)")

	if err := app.Abort(); err != nil {
		return err
	}
	fmt.Printf("application aborted: %v\n", appFailure)

	// Outcomes.
	fmt.Println("\n== after the abort ==")
	all, err := board.RetrieveAll()
	if err != nil {
		return err
	}
	for _, p := range all {
		fmt.Printf("bulletin #%d by %s: withdrawn=%v (compensating action ran)\n",
			p.ID, p.Author, p.Withdrawn)
	}
	val, err := ns.Lookup(ctx, "service/launch")
	if err != nil {
		return err
	}
	fmt.Printf("name binding survives: service/launch -> %s\n", val)
	total, err := ledger.Total("ada")
	if err != nil {
		return err
	}
	fmt.Printf("ada's charges survive: %d units\n", total)

	// Availability: lookups keep working with replicas down.
	nsNodes[0].Crash()
	nsNodes[1].Crash()
	val, err = ns.Lookup(ctx, "service/launch")
	if err != nil {
		return err
	}
	fmt.Printf("lookup with 2/3 name-server replicas crashed: %s (read-one)\n", val)
	return nil
}
