// Command quickstart walks through the public API: atomic actions over
// persistent objects, nesting, abort recovery, permanence across a
// simulated crash, a first taste of coloured actions, and distributed
// tracing across simulated nodes.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"mca/internal/action"
	"mca/internal/core"
	"mca/internal/dist"
	"mca/internal/netsim"
	"mca/internal/node"
	"mca/internal/object"
	"mca/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rt := core.NewRuntime()
	st := core.NewStableStore()

	// Two persistent bank accounts.
	checking := core.NewObject(100, core.WithStore(st))
	savings := core.NewObject(500, core.WithStore(st))

	// 1. A top-level atomic action: transfer 50.
	err := rt.Run(func(a *core.Action) error {
		if err := checking.Write(a, func(v *int) error { *v -= 50; return nil }); err != nil {
			return err
		}
		return savings.Write(a, func(v *int) error { *v += 50; return nil })
	})
	if err != nil {
		return fmt.Errorf("transfer: %w", err)
	}
	fmt.Printf("after transfer: checking=%d savings=%d\n", checking.Peek(), savings.Peek())

	// 2. Failure atomicity: an action that fails midway leaves no
	// trace.
	errInsufficient := errors.New("insufficient funds")
	err = rt.Run(func(a *core.Action) error {
		if err := checking.Write(a, func(v *int) error { *v -= 1000; return nil }); err != nil {
			return err
		}
		var bal int
		if err := checking.Read(a, func(v int) error { bal = v; return nil }); err != nil {
			return err
		}
		if bal < 0 {
			return errInsufficient // aborts the action
		}
		return savings.Write(a, func(v *int) error { *v += 1000; return nil })
	})
	fmt.Printf("failed transfer: err=%v, checking=%d (restored)\n", err, checking.Peek())

	// 3. Nesting: a nested action's commit is provisional until the
	// top level commits.
	err = rt.Run(func(top *core.Action) error {
		if err := top.Run(func(nested *core.Action) error {
			return checking.Write(nested, func(v *int) error { *v += 5; return nil })
		}); err != nil {
			return err
		}
		// the nested +5 is visible here, and becomes permanent when
		// this top-level action commits.
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("after nested bonus: checking=%d\n", checking.Peek())

	// 4. Permanence: crash the store and reactivate the objects.
	st.Crash()
	st.Recover()
	recovered, err := core.LoadObject[int](checking.ObjectID(), st)
	if err != nil {
		return fmt.Errorf("reactivate: %w", err)
	}
	fmt.Printf("after crash+recovery: checking=%d (from stable storage)\n", recovered.Peek())

	// 5. Coloured actions: a two-coloured action commits its "red"
	// effects immediately while its "blue" effects stay undoable by
	// the enclosing blue action (paper fig 10).
	red, blue := core.FreshColour(), core.FreshColour()
	auditLog := core.NewObject([]string{}, core.WithStore(st))

	outer, err := rt.Begin(core.WithColours(blue))
	if err != nil {
		return err
	}
	inner, err := outer.Begin(core.WithColours(red, blue))
	if err != nil {
		return err
	}
	// The audit entry is red: permanent at inner's commit.
	if err := auditLog.WriteIn(inner, red, func(v *[]string) error {
		*v = append(*v, "attempted batch update")
		return nil
	}); err != nil {
		return err
	}
	// The balance change is blue: owned by the outer action.
	if err := checking.WriteIn(inner, blue, func(v *int) error { *v = 0; return nil }); err != nil {
		return err
	}
	if err := inner.Commit(); err != nil {
		return err
	}
	if err := outer.Abort(); err != nil { // change of heart
		return err
	}
	fmt.Printf("after coloured abort: checking=%d (blue undone), audit=%v (red kept)\n",
		checking.Peek(), auditLog.Peek())

	// 6. Observability: a node can serve the process-global metrics
	// registry over HTTP. Everything this program did above — action
	// begins and commits, lock grants, aborted work — is already
	// counted; the endpoint just exposes it.
	net := netsim.New(netsim.Config{})
	defer net.Close()
	n, err := node.New(net, node.WithDebugAddr("127.0.0.1:0"))
	if err != nil {
		return fmt.Errorf("node: %w", err)
	}
	defer n.Stop()
	// Run one action on the node's own runtime so node-side counters
	// move too.
	if err := n.Runtime().Run(func(*action.Action) error { return nil }); err != nil {
		return err
	}
	resp, err := http.Get("http://" + n.DebugAddr() + "/metrics")
	if err != nil {
		return fmt.Errorf("scrape metrics: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Printf("metrics endpoint: http://%s/metrics\n", n.DebugAddr())
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "mca_action_begins_total") ||
			strings.HasPrefix(line, "mca_lock_acquires_total{mode=\"write\",outcome=\"granted\"}") {
			fmt.Printf("  %s\n", line)
		}
	}

	// 7. Distributed tracing: three nodes, each with a trace recorder,
	// run a two-phase-commit transfer. Every RPC carries the trace
	// context, so each node's export links into one cross-node causal
	// tree — merged here (and by cmd/tracecat from the JSONL files
	// written when MCA_TRACE_DIR is set).
	ctx := context.Background()
	recs := make([]*trace.Recorder, 3)
	dnodes := make([]*node.Node, 3)
	var coord *dist.Manager
	for i := range dnodes {
		recs[i] = trace.NewRecorder()
		dn, err := node.New(net, node.WithTracer(recs[i]))
		if err != nil {
			return fmt.Errorf("trace node: %w", err)
		}
		defer dn.Stop()
		dnodes[i] = dn
		mgr := dist.NewManager(dn)
		acct := object.New(100, object.WithStore(dn.Stable()))
		mgr.RegisterResource("account", dist.ResourceFunc(
			func(a *action.Action, op string, arg []byte) ([]byte, error) {
				var delta int
				if err := json.Unmarshal(arg, &delta); err != nil {
					return nil, err
				}
				return nil, acct.Write(a, func(v *int) error { *v += delta; return nil })
			}))
		if i == 0 {
			coord = mgr
		}
	}
	var txnID string
	err = coord.Run(ctx, func(txn *dist.Txn) error {
		txnID = txn.ID().String()
		recs[0].Label(txn.ID(), "transfer-25")
		if err := txn.Invoke(ctx, dnodes[1].ID(), "account", "add", -25, nil); err != nil {
			return err
		}
		return txn.Invoke(ctx, dnodes[2].ID(), "account", "add", 25, nil)
	})
	if err != nil {
		return fmt.Errorf("traced transfer: %w", err)
	}

	// Export each node's spans (one JSONL file per node, as a real
	// deployment would), then merge them back into one tree.
	var all []trace.Span
	dir := os.Getenv("MCA_TRACE_DIR")
	for i, rec := range recs {
		spans := rec.Spans()
		all = append(all, spans...)
		if dir == "" {
			continue
		}
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("node%d.jsonl", i+1)))
		if err != nil {
			return err
		}
		if err := trace.WriteSpans(f, spans); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	tree := trace.Merge(all)
	fmt.Printf("distributed trace of %s (%d spans, %d orphans):\n%s",
		txnID, len(tree.Spans()), len(tree.Orphans), tree.Render(48))
	if dir != "" {
		fmt.Printf("per-node span exports written to %s\n", dir)
	}
	return nil
}
