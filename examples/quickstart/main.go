// Command quickstart walks through the public API: atomic actions over
// persistent objects, nesting, abort recovery, permanence across a
// simulated crash, and a first taste of coloured actions.
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"

	"mca/internal/action"
	"mca/internal/core"
	"mca/internal/netsim"
	"mca/internal/node"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rt := core.NewRuntime()
	st := core.NewStableStore()

	// Two persistent bank accounts.
	checking := core.NewObject(100, core.WithStore(st))
	savings := core.NewObject(500, core.WithStore(st))

	// 1. A top-level atomic action: transfer 50.
	err := rt.Run(func(a *core.Action) error {
		if err := checking.Write(a, func(v *int) error { *v -= 50; return nil }); err != nil {
			return err
		}
		return savings.Write(a, func(v *int) error { *v += 50; return nil })
	})
	if err != nil {
		return fmt.Errorf("transfer: %w", err)
	}
	fmt.Printf("after transfer: checking=%d savings=%d\n", checking.Peek(), savings.Peek())

	// 2. Failure atomicity: an action that fails midway leaves no
	// trace.
	errInsufficient := errors.New("insufficient funds")
	err = rt.Run(func(a *core.Action) error {
		if err := checking.Write(a, func(v *int) error { *v -= 1000; return nil }); err != nil {
			return err
		}
		var bal int
		if err := checking.Read(a, func(v int) error { bal = v; return nil }); err != nil {
			return err
		}
		if bal < 0 {
			return errInsufficient // aborts the action
		}
		return savings.Write(a, func(v *int) error { *v += 1000; return nil })
	})
	fmt.Printf("failed transfer: err=%v, checking=%d (restored)\n", err, checking.Peek())

	// 3. Nesting: a nested action's commit is provisional until the
	// top level commits.
	err = rt.Run(func(top *core.Action) error {
		if err := top.Run(func(nested *core.Action) error {
			return checking.Write(nested, func(v *int) error { *v += 5; return nil })
		}); err != nil {
			return err
		}
		// the nested +5 is visible here, and becomes permanent when
		// this top-level action commits.
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("after nested bonus: checking=%d\n", checking.Peek())

	// 4. Permanence: crash the store and reactivate the objects.
	st.Crash()
	st.Recover()
	recovered, err := core.LoadObject[int](checking.ObjectID(), st)
	if err != nil {
		return fmt.Errorf("reactivate: %w", err)
	}
	fmt.Printf("after crash+recovery: checking=%d (from stable storage)\n", recovered.Peek())

	// 5. Coloured actions: a two-coloured action commits its "red"
	// effects immediately while its "blue" effects stay undoable by
	// the enclosing blue action (paper fig 10).
	red, blue := core.FreshColour(), core.FreshColour()
	auditLog := core.NewObject([]string{}, core.WithStore(st))

	outer, err := rt.Begin(core.WithColours(blue))
	if err != nil {
		return err
	}
	inner, err := outer.Begin(core.WithColours(red, blue))
	if err != nil {
		return err
	}
	// The audit entry is red: permanent at inner's commit.
	if err := auditLog.WriteIn(inner, red, func(v *[]string) error {
		*v = append(*v, "attempted batch update")
		return nil
	}); err != nil {
		return err
	}
	// The balance change is blue: owned by the outer action.
	if err := checking.WriteIn(inner, blue, func(v *int) error { *v = 0; return nil }); err != nil {
		return err
	}
	if err := inner.Commit(); err != nil {
		return err
	}
	if err := outer.Abort(); err != nil { // change of heart
		return err
	}
	fmt.Printf("after coloured abort: checking=%d (blue undone), audit=%v (red kept)\n",
		checking.Peek(), auditLog.Peek())

	// 6. Observability: a node can serve the process-global metrics
	// registry over HTTP. Everything this program did above — action
	// begins and commits, lock grants, aborted work — is already
	// counted; the endpoint just exposes it.
	net := netsim.New(netsim.Config{})
	defer net.Close()
	n, err := node.New(net, node.WithDebugAddr("127.0.0.1:0"))
	if err != nil {
		return fmt.Errorf("node: %w", err)
	}
	defer n.Stop()
	// Run one action on the node's own runtime so node-side counters
	// move too.
	if err := n.Runtime().Run(func(*action.Action) error { return nil }); err != nil {
		return err
	}
	resp, err := http.Get("http://" + n.DebugAddr() + "/metrics")
	if err != nil {
		return fmt.Errorf("scrape metrics: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Printf("metrics endpoint: http://%s/metrics\n", n.DebugAddr())
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "mca_action_begins_total") ||
			strings.HasPrefix(line, "mca_lock_acquires_total{mode=\"write\",outcome=\"granted\"}") {
			fmt.Printf("  %s\n", line)
		}
	}
	return nil
}
