// Command distributedmake reproduces the paper's example (iv): a
// fault-tolerant make built from serializing actions. It builds the
// paper's makefile, demonstrates concurrent prerequisite builds,
// injects a compiler failure to show that already-made targets survive,
// and finishes the build incrementally.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"mca/internal/action"
	"mca/internal/core"
	"mca/internal/dmake"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rt := core.NewRuntime()
	st := core.NewStableStore()

	fs := dmake.NewFS(rt, core.WithStore(st))
	for _, src := range []string{"Test0.h", "Test1.h", "Test0.c", "Test1.c"} {
		fs.Create(src, "content of "+src)
	}

	mf, err := dmake.ParseMakefile(dmake.PaperMakefile)
	if err != nil {
		return err
	}
	maker := dmake.NewMaker(fs, mf)
	maker.WorkDelay = 20 * time.Millisecond // simulated compile time

	fmt.Println("== full build ==")
	report, err := maker.Make("Test")
	if err != nil {
		return err
	}
	fmt.Printf("executed %v, max parallel recipes = %d\n", report.Executed, report.MaxParallel)
	fmt.Printf("Test consistent: %v\n", maker.Consistent("Test"))

	fmt.Println("\n== rebuild with nothing changed ==")
	report, err = maker.Make("Test")
	if err != nil {
		return err
	}
	fmt.Printf("executed %v, up-to-date targets = %d\n", report.Executed, report.UpToDate)

	fmt.Println("\n== edit Test1.c, then crash the linker mid-build ==")
	if err := rt.Run(func(a *action.Action) error {
		return fs.Write(a, "Test1.c", "edited Test1.c")
	}); err != nil {
		return err
	}
	linkerDown := errors.New("linker crashed")
	maker.Compile = func(a *action.Action, f *dmake.FS, rule *dmake.Rule) error {
		if rule.Target == "Test" {
			return linkerDown
		}
		return dmake.SimulatedCompile(a, f, rule)
	}
	if _, err := maker.Make("Test"); !errors.Is(err, linkerDown) {
		return fmt.Errorf("expected the injected failure, got %v", err)
	}
	fmt.Printf("build failed as injected; Test1.o consistent anyway: %v\n", maker.Consistent("Test1.o"))
	fmt.Printf("inconsistent targets now: %v\n", maker.InconsistentTargets())

	fmt.Println("\n== linker repaired: only the remaining work runs ==")
	maker.Compile = dmake.SimulatedCompile
	report, err = maker.Make("Test")
	if err != nil {
		return err
	}
	fmt.Printf("executed %v (object files survived the failed run)\n", report.Executed)
	fmt.Printf("Test consistent: %v\n", maker.Consistent("Test"))

	return nil
}
