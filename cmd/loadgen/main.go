// Command loadgen drives a real mca cluster (simulated netsim network
// or loopback TCP) with the open-loop load generator and searches for
// capacity-at-SLO: the highest offered transaction rate whose
// coordinated-omission-free p-quantile latency still meets the target.
//
// Quickstart — capacity of a 3-participant simulated cluster at
// p99 <= 50ms, YCSB-style mix, Zipfian keys:
//
//	go run ./cmd/loadgen -backend netsim -nodes 3 \
//	  -mix 'read=70,write=20,transfer=10' -skew zipf \
//	  -slo 50ms -q 0.99 -json BENCH_capacity.json
//
// Add -closed 8 to pair the search with a closed-loop run at the same
// load and report the coordinated-omission gap. -validate FILE checks
// an existing report's schema and exits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mca/internal/loadgen"
	"mca/internal/workload"
)

func main() {
	var (
		backend     = flag.String("backend", "netsim", "cluster transport: netsim, tcpnet or both")
		nodes       = flag.Int("nodes", 3, "participant (resource-hosting) nodes; the coordinator is extra")
		registers   = flag.Int("registers", 64, "integer registers spread across participants")
		mixSpec     = flag.String("mix", "read=70,write=20,transfer=10", "op mix, name=weight pairs")
		arrivals    = flag.String("arrivals", "poisson", "arrival process: poisson or uniform")
		skew        = flag.String("skew", "uniform", "key distribution: uniform or zipf")
		theta       = flag.Float64("theta", 0.99, "zipfian skew parameter in (0,1)")
		rate        = flag.Float64("rate", 0, "fixed offered rate: run one open-loop measurement instead of searching")
		q           = flag.Float64("q", 0.99, "SLO latency quantile in (0,1)")
		slo         = flag.Duration("slo", 50*time.Millisecond, "SLO latency target at quantile q")
		warmup      = flag.Duration("warmup", 250*time.Millisecond, "per-probe warmup (executed, not measured)")
		window      = flag.Duration("window", time.Second, "per-probe measured window")
		start       = flag.Float64("start", 50, "first probed rate (ops/sec)")
		maxRate     = flag.Float64("max", 0, "rate cap for the ramp (0 = 1024*start)")
		bisect      = flag.Int("bisect", 5, "bisection iterations after the ramp")
		seed        = flag.Uint64("seed", 1, "schedule seed (gaps, mix draws, keys)")
		outstanding = flag.Int("outstanding", 128, "max in-flight transactions")
		closed      = flag.Int("closed", 0, "also run a closed-loop comparison with this many workers (0 = off)")
		jsonPath    = flag.String("json", "", "write the capacity report to this file")
		validate    = flag.String("validate", "", "validate an existing report file and exit")
		smoke       = flag.Bool("smoke", false, "short CI preset: small netsim cluster, sub-second probes")
	)
	flag.Parse()
	if err := run(*backend, *nodes, *registers, *mixSpec, *arrivals, *skew, *theta, *rate,
		*q, *slo, *warmup, *window, *start, *maxRate, *bisect, *seed, *outstanding,
		*closed, *jsonPath, *validate, *smoke); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(backend string, nodes, registers int, mixSpec, arrivals, skew string, theta, rate,
	q float64, slo, warmup, window time.Duration, start, maxRate float64, bisect int,
	seed uint64, outstanding, closed int, jsonPath, validate string, smoke bool) error {
	if validate != "" {
		return validateFile(validate)
	}
	if smoke {
		// The CI gate: a netsim cluster small and brief enough to
		// finish in a few seconds yet still produce a meaningful
		// trajectory with a nonzero capacity.
		backend, nodes, registers = "netsim", 2, 16
		warmup, window = 25*time.Millisecond, 150*time.Millisecond
		start, maxRate, bisect = 50, 800, 2
		slo, q = 100*time.Millisecond, 0.99
		if closed == 0 {
			closed = 4
		}
	}

	mix, err := loadgen.ParseMix(mixSpec)
	if err != nil {
		return err
	}
	var process workload.ArrivalProcess
	switch arrivals {
	case "poisson", "":
		process = workload.ArrivalPoisson
	case "uniform":
		process = workload.ArrivalUniform
	default:
		return fmt.Errorf("unknown arrival process %q", arrivals)
	}
	var keys workload.KeyDist
	switch skew {
	case "uniform", "":
		keys = workload.UniformKeys{N: uint64(registers)}
	case "zipf":
		keys = workload.NewZipf(uint64(registers), theta)
	default:
		return fmt.Errorf("unknown key skew %q", skew)
	}
	var backends []loadgen.Backend
	switch backend {
	case "netsim":
		backends = []loadgen.Backend{loadgen.BackendNetsim}
	case "tcpnet":
		backends = []loadgen.Backend{loadgen.BackendTCP}
	case "both":
		backends = []loadgen.Backend{loadgen.BackendNetsim, loadgen.BackendTCP}
	default:
		return fmt.Errorf("unknown backend %q", backend)
	}

	rc := loadgen.RunConfig{
		Mix:            mix,
		Keys:           keys,
		Process:        process,
		Seed:           seed,
		Warmup:         warmup,
		Window:         window,
		MaxOutstanding: outstanding,
		SLO:            workload.SLO{Quantile: q, Target: slo},
		Start:          start,
		Max:            maxRate,
		BisectIters:    bisect,
	}
	rep := &loadgen.Report{
		Experiment: "capacity-at-SLO: max offered load with open-loop quantile latency within target",
		Machine:    loadgen.MachineString(),
		Mix:        loadgen.MixString(mix),
		Arrivals:   process.String(),
		Skew:       skew,
		Seed:       seed,
		SLO:        loadgen.SLOReport{Quantile: q, TargetMS: float64(slo.Microseconds()) / 1000},
	}

	ctx := context.Background()
	for _, b := range backends {
		cluster, err := loadgen.NewCluster(loadgen.ClusterConfig{
			Backend:      b,
			Participants: nodes,
			Registers:    registers,
		})
		if err != nil {
			return fmt.Errorf("%s cluster: %w", b, err)
		}

		if rate > 0 {
			res, err := cluster.RunOpen(ctx, rc, rate)
			cluster.Close()
			if err != nil {
				return err
			}
			fmt.Printf("%-7s %v\n", b, res)
			continue
		}

		fmt.Printf("%-7s searching capacity (%d participants, %d registers, slo p%g<=%v)\n",
			b, nodes, registers, q*100, slo)
		res, err := cluster.SearchCapacity(ctx, rc)
		if err != nil {
			cluster.Close()
			return fmt.Errorf("%s capacity search: %w", b, err)
		}
		for _, p := range res.Points {
			verdict := "FAIL"
			if p.Pass {
				verdict = "pass"
			}
			fmt.Printf("  probe %8.0f/s  %s  achieved=%8.0f/s p50=%8v p99=%8v p999=%8v drop=%d\n",
				p.Rate, verdict, p.Achieved,
				p.P50.Round(10*time.Microsecond), p.P99.Round(10*time.Microsecond),
				p.P999.Round(10*time.Microsecond), p.Dropped)
		}
		fmt.Printf("%-7s capacity %.0f ops/s\n", b, res.Capacity)
		rep.Clusters = append(rep.Clusters, loadgen.NewClusterReport(cluster.Config(), rc, res))

		if closed > 0 && rep.ClosedVsOpen == nil {
			co, err := cluster.CompareClosedOpen(ctx, rc, closed)
			if err != nil {
				cluster.Close()
				return fmt.Errorf("%s closed-vs-open: %w", b, err)
			}
			rep.ClosedVsOpen = loadgen.NewClosedVsOpen(b, co)
			fmt.Printf("%-7s closed %d workers: %.0f ops/s p99=%v; open at same load: p99=%v (%.2fx gap)\n",
				b, closed, co.ClosedRate, co.Closed.Latency.Percentile(99).Round(10*time.Microsecond),
				co.Open.Latency.Percentile(99).Round(10*time.Microsecond), rep.ClosedVsOpen.COGapP99X)
		}
		cluster.Close()
	}

	if rate > 0 {
		return nil // fixed-rate mode prints results only
	}
	if err := rep.Validate(); err != nil {
		return fmt.Errorf("report failed validation: %w", err)
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", jsonPath)
	}
	return nil
}

func validateFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep loadgen.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := rep.Validate(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("%s: valid (%d clusters", path, len(rep.Clusters))
	for _, c := range rep.Clusters {
		fmt.Printf(", %s capacity %.0f/s", c.Backend, c.CapacityQPS)
	}
	fmt.Println(")")
	return nil
}
