// Command dmake is a CLI for the fault-tolerant make of paper §4 (iv).
// It reads a makefile (default: the paper's), synthesises the source
// files named in it, and builds a target under a serializing action,
// optionally injecting a failure to demonstrate that completed targets
// survive.
//
// Usage:
//
//	dmake [-f makefile] [-target name] [-delay 20ms] [-fail target] [-twice]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"mca/internal/action"
	"mca/internal/core"
	"mca/internal/dmake"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dmake:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		file   = flag.String("f", "", "makefile path (default: the paper's example)")
		target = flag.String("target", "", "target to build (default: first rule)")
		delay  = flag.Duration("delay", 10*time.Millisecond, "simulated per-recipe compile time")
		fail   = flag.String("fail", "", "inject a failure into this target's recipe")
		twice  = flag.Bool("twice", false, "run the build a second time (shows incrementality)")
	)
	flag.Parse()

	src := dmake.PaperMakefile
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		src = string(data)
	}
	mf, err := dmake.ParseMakefile(src)
	if err != nil {
		return err
	}

	rt := core.NewRuntime()
	st := core.NewStableStore()
	fs := dmake.NewFS(rt, core.WithStore(st))
	for _, s := range mf.Sources() {
		fs.Create(s, "content of "+s)
		fmt.Printf("created source %s\n", s)
	}

	maker := dmake.NewMaker(fs, mf)
	maker.WorkDelay = *delay
	if *fail != "" {
		failTarget := *fail
		injected := errors.New("injected failure in " + failTarget)
		maker.Compile = func(a *action.Action, f *dmake.FS, rule *dmake.Rule) error {
			if rule.Target == failTarget {
				return injected
			}
			return dmake.SimulatedCompile(a, f, rule)
		}
	}

	goal := *target
	if goal == "" {
		goal = mf.DefaultTarget()
	}

	doBuild := func() error {
		start := time.Now()
		report, err := maker.Make(goal)
		fmt.Printf("make %s: executed=%v up-to-date=%d max-parallel=%d wall=%v\n",
			goal, report.Executed, report.UpToDate, report.MaxParallel,
			time.Since(start).Round(time.Millisecond))
		if err != nil {
			fmt.Printf("build failed: %v\n", err)
			fmt.Printf("targets still consistent: all except %v\n", maker.InconsistentTargets())
			return err
		}
		fmt.Printf("%s consistent: %v\n", goal, maker.Consistent(goal))
		return nil
	}

	err = doBuild()
	if *twice {
		fmt.Println("-- second run --")
		if *fail != "" {
			maker.Compile = dmake.SimulatedCompile
			fmt.Println("(failure injection removed)")
		}
		return doBuild()
	}
	return err
}
