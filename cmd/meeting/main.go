// Command meeting is a CLI for the glued-action meeting scheduler of
// paper §4 (v). It creates a group of diaries with random prior
// appointments, then negotiates a meeting over several narrowing
// rounds, printing the candidate set after each round.
//
// Usage:
//
//	meeting [-people 4] [-days 20] [-busy 0.3] [-rounds 3] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"mca/internal/core"
	"mca/internal/diary"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "meeting:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		people = flag.Int("people", 4, "number of attendees")
		days   = flag.Int("days", 20, "diary size in days")
		busy   = flag.Float64("busy", 0.3, "probability a day is already booked")
		rounds = flag.Int("rounds", 3, "narrowing rounds after the initial selection")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	rt := core.NewRuntime()
	rng := rand.New(rand.NewSource(*seed))

	diaries := make([]*diary.Diary, *people)
	for i := range diaries {
		diaries[i] = diary.NewDiary(fmt.Sprintf("person%d", i+1), *days)
		for d := 0; d < *days; d++ {
			if rng.Float64() < *busy {
				if err := diaries[i].BookDirect(rt, d, "prior appointment"); err != nil {
					return err
				}
			}
		}
	}

	candidates := make([]int, *days)
	for i := range candidates {
		candidates[i] = i
	}

	var narrowers []diary.NarrowFunc
	for r := 0; r < *rounds; r++ {
		round := r
		narrowers = append(narrowers, func(cs []int) []int {
			kept := cs
			if len(cs) > 1 {
				kept = cs[:(len(cs)+1)/2]
			}
			fmt.Printf("round %d: %v -> %v\n", round+2, cs, kept)
			return kept
		})
	}

	sched := diary.NewScheduler(rt, diaries...)
	chosen, err := sched.Arrange(candidates, "team meeting", narrowers...)
	if err != nil {
		return err
	}
	fmt.Printf("candidates per round: %v\n", sched.RoundCandidates())
	fmt.Printf("meeting booked on day %d for %d attendees\n", chosen, *people)
	for _, d := range diaries {
		s := d.Peek(chosen)
		fmt.Printf("  %-9s day %2d: busy=%v note=%q\n", d.Owner(), chosen, s.Busy, s.Note)
	}
	return nil
}
