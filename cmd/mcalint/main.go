// Command mcalint runs the repository's custom static analyses over the
// given packages (default ./...): the invariants of the colour/lock/2PC
// core that the compiler cannot see.
//
//	go run ./cmd/mcalint ./...
//
// Analyzers (suppress a finding with `//mcalint:ignore <name> <reason>`
// on the flagged line or the line above):
//
//	lockheld     mutex held across a blocking operation
//	ctxprop      bare context.Background/TODO in library code
//	colourzero   zero-colour lock requests, hand-minted colours
//	goleak       goroutine launches with no cancellation or join
//	metricsname  metric registrations without the mca_<pkg>_ prefix
//
// Exit status: 0 clean, 1 findings, 2 load or internal failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"mca/internal/analysis"
	"mca/internal/analysis/colourzero"
	"mca/internal/analysis/ctxprop"
	"mca/internal/analysis/goleak"
	"mca/internal/analysis/lockheld"
	"mca/internal/analysis/metricsname"
)

var analyzers = []*analysis.Analyzer{
	colourzero.Analyzer,
	ctxprop.Analyzer,
	goleak.Analyzer,
	lockheld.Analyzer,
	metricsname.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mcalint [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	pkgs, err := analysis.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcalint:", err)
		os.Exit(2)
	}
	findings := 0
	for _, pkg := range pkgs {
		if !pkg.Target {
			continue
		}
		diags, err := pkg.Run(analyzers...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcalint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Printf("%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer.Name)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "mcalint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
