// Command mcalint runs the repository's custom static analyses over the
// given packages (default ./...): the invariants of the colour/lock/2PC
// core that the compiler cannot see.
//
//	go run ./cmd/mcalint ./...
//
// Analyzers (suppress a finding with `//mcalint:ignore <name> <reason>`
// on the flagged line or the line above — the reason is required, a bare
// directive is itself reported):
//
//	lockheld     mutex held across a blocking operation
//	ctxprop      bare context.Background/TODO in library code
//	colourzero   zero-colour lock requests, hand-minted colours
//	goleak       goroutine launches with no cancellation or join
//	metricsname  metric registrations without the mca_<pkg>_ prefix
//	detclock     ambient time/math-rand in deterministic-critical packages
//	forceorder   WAL completions and 2PC votes not dominated by a force
//	errdrop      discarded errors from internal/store and internal/rpc
//
// Exit status: 0 clean, 1 findings, 2 load or internal failure. With
// findings, a per-analyzer count summary prints to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"mca/internal/analysis"
	"mca/internal/analysis/colourzero"
	"mca/internal/analysis/ctxprop"
	"mca/internal/analysis/detclock"
	"mca/internal/analysis/errdrop"
	"mca/internal/analysis/forceorder"
	"mca/internal/analysis/goleak"
	"mca/internal/analysis/lockheld"
	"mca/internal/analysis/metricsname"
)

var analyzers = []*analysis.Analyzer{
	colourzero.Analyzer,
	ctxprop.Analyzer,
	detclock.Analyzer,
	errdrop.Analyzer,
	forceorder.Analyzer,
	goleak.Analyzer,
	lockheld.Analyzer,
	metricsname.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mcalint [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	pkgs, err := analysis.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcalint:", err)
		os.Exit(2)
	}
	findings := 0
	perAnalyzer := make(map[string]int)
	for _, pkg := range pkgs {
		if !pkg.Target {
			continue
		}
		diags, err := pkg.Run(analyzers...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcalint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Printf("%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer.Name)
			perAnalyzer[d.Analyzer.Name]++
			findings++
		}
	}
	if findings > 0 {
		names := make([]string, 0, len(perAnalyzer))
		for name := range perAnalyzer {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "mcalint: %d finding(s):", findings)
		for _, name := range names {
			fmt.Fprintf(os.Stderr, " %s=%d", name, perAnalyzer[name])
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(1)
	}
}
