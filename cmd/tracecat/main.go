// Command tracecat merges per-node span exports (JSON Lines, as written
// by trace.Recorder.WriteSpans) into one cross-node causal tree and
// analyses it:
//
//	go run ./cmd/tracecat node1.jsonl node2.jsonl ...
//
// By default it prints the merged tree as a cross-node ASCII timeline
// (the paper's figs 14/15 shape) followed by the critical path — the
// chain of spans that determined each root operation's latency, e.g.
// the slowest participant of the slowest 2PC round.
//
// Flags:
//
//	-width N     timeline width in columns (default 72)
//	-chrome F    also write Chrome trace_event JSON to F ("-" for
//	             stdout; load in Perfetto or chrome://tracing)
//	-dot F       also write a Graphviz digraph to F ("-" for stdout)
//	-slowest N   instead of the timeline, list the N slowest completed
//	             root operations (0 = all), slowest first
//	-attrib      with the listing, print each root's critical-path
//	             attribution (lock/force/net/queue/compute, from the
//	             phase ledger) and the aggregate % per bucket
//	-check       quiet mode for CI: exit 1 when the merged tree is
//	             empty or any trace-less span's parent is missing from
//	             the input. Spans whose distributed-trace parent was
//	             dropped (tail sampling) are adopted under synthetic
//	             roots and only warned about.
//
// Exit status: 0 ok, 1 check failure (orphans / empty), 2 usage or
// input error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"mca/internal/trace"
)

func main() {
	width := flag.Int("width", 72, "timeline width in columns")
	chrome := flag.String("chrome", "", "write Chrome trace_event JSON to this file (\"-\" for stdout)")
	dot := flag.String("dot", "", "write a Graphviz digraph to this file (\"-\" for stdout)")
	check := flag.Bool("check", false, "exit non-zero when the tree is empty or has orphan spans")
	slowest := flag.Int("slowest", -1, "list the N slowest completed roots instead of the timeline (0 = all)")
	attrib := flag.Bool("attrib", false, "print per-root and aggregate phase attribution with the slowest listing")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tracecat [flags] spans.jsonl [more.jsonl ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var spans []trace.Span
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecat: %v\n", err)
			os.Exit(2)
		}
		ss, err := trace.ReadSpans(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecat: %s: %v\n", path, err)
			os.Exit(2)
		}
		spans = append(spans, ss...)
	}

	tree := trace.Merge(spans)

	if *chrome != "" {
		if err := writeTo(*chrome, func(w io.Writer) error {
			return trace.WriteChrome(w, tree.Spans())
		}); err != nil {
			fmt.Fprintf(os.Stderr, "tracecat: chrome export: %v\n", err)
			os.Exit(2)
		}
	}
	if *dot != "" {
		if err := writeTo(*dot, func(w io.Writer) error {
			return trace.WriteDOT(w, tree.Spans())
		}); err != nil {
			fmt.Fprintf(os.Stderr, "tracecat: dot export: %v\n", err)
			os.Exit(2)
		}
	}

	if *check {
		switch {
		case len(tree.Roots) == 0:
			fmt.Fprintf(os.Stderr, "tracecat: check failed: merged tree is empty (%d spans read)\n", len(spans))
			os.Exit(1)
		case len(tree.Orphans) > 0:
			fmt.Fprintf(os.Stderr, "tracecat: check failed: %d orphan span(s) — parent missing from input:\n", len(tree.Orphans))
			for _, o := range tree.Orphans {
				s := o.Span
				fmt.Fprintf(os.Stderr, "  node=%v id=%v kind=%q span=%x parent=%x\n", s.Node, s.ID, s.Kind, s.SpanID, s.ParentSpanID)
			}
			os.Exit(1)
		}
		if len(tree.Adopted) > 0 {
			fmt.Fprintf(os.Stderr, "tracecat: warning: %d incomplete trace(s) — parent spans dropped (tail sampling?), children adopted under synthetic roots\n", len(tree.Adopted))
		}
		fmt.Printf("tracecat: ok: %d spans, %d root(s), 0 orphans\n", len(tree.Spans()), len(tree.Roots))
		return
	}

	if *slowest >= 0 || *attrib {
		printSlowest(tree, *slowest, *attrib)
		return
	}

	fmt.Print(tree.Render(*width))
	for _, root := range tree.Roots {
		path := trace.CriticalPath(root)
		if len(path) < 2 {
			continue
		}
		last := path[len(path)-1]
		total := last.End.Sub(path[0].Begin)
		fmt.Printf("\ncritical path (%s, %v):\n", name(path[0]), total)
		for i, s := range path {
			dur := "active"
			if !s.End.IsZero() {
				dur = s.End.Sub(s.Begin).String()
			}
			fmt.Printf("  %*s%s @%v (%s)\n", 2*i, "", name(s), s.Node, dur)
		}
	}
	if len(tree.Adopted) > 0 {
		fmt.Printf("\nwarning: %d incomplete trace(s) — parent spans dropped (tail sampling?), children shown under synthetic roots\n", len(tree.Adopted))
	}
	if len(tree.Orphans) > 0 {
		fmt.Printf("\nwarning: %d orphan span(s) — parent missing from input\n", len(tree.Orphans))
	}
}

// printSlowest lists the n slowest completed roots (n <= 0: all),
// slowest first, optionally with the per-root phase attribution and
// the aggregate share of tail time per exclusive bucket.
func printSlowest(tree *trace.Tree, n int, attrib bool) {
	var roots []trace.Span
	skipped := 0
	for _, r := range tree.Roots {
		if r.Synthetic || r.Span.End.IsZero() {
			skipped++
			continue
		}
		roots = append(roots, r.Span)
	}
	sort.Slice(roots, func(i, j int) bool {
		di, dj := roots[i].End.Sub(roots[i].Begin), roots[j].End.Sub(roots[j].Begin)
		if di != dj {
			return di > dj
		}
		return roots[i].TraceID < roots[j].TraceID
	})
	if n > 0 && len(roots) > n {
		roots = roots[:n]
	}
	if len(roots) == 0 {
		fmt.Println("no completed root operations")
		return
	}

	totals := make(map[string]int64)
	var total int64
	fmt.Printf("%-4s %-12s %-10s %-18s", "#", "duration", "outcome", "trace")
	if attrib {
		for _, b := range trace.BreakdownNames {
			fmt.Printf(" %10s", b)
		}
		fmt.Printf(" %-8s", "dominant")
	}
	fmt.Println()
	for i, s := range roots {
		fmt.Printf("%-4d %-12v %-10s %-18s", i+1, s.End.Sub(s.Begin), s.Outcome, fmt.Sprintf("%x", s.TraceID))
		if attrib {
			a := trace.AttributeSpan(s)
			buckets := a.Buckets()
			for _, b := range trace.BreakdownNames {
				v := buckets[b]
				totals[b] += v
				total += v
				fmt.Printf(" %10v", time.Duration(v).Round(time.Microsecond))
			}
			fmt.Printf(" %-8s", a.Dominant())
		}
		fmt.Println()
	}
	if attrib && total > 0 {
		fmt.Printf("%-4s %-12s %-10s %-18s", "", "", "", "aggregate %")
		for _, b := range trace.BreakdownNames {
			fmt.Printf(" %9.1f%%", 100*float64(totals[b])/float64(total))
		}
		fmt.Println()
	}
	if skipped > 0 {
		fmt.Printf("(%d synthetic or still-active root(s) excluded)\n", skipped)
	}
}

// name mirrors the renderer's span naming for the critical-path report.
func name(s trace.Span) string {
	if s.Label != "" {
		return s.Label
	}
	if s.Kind != "" {
		return s.Kind
	}
	return s.ID.String()
}

// writeTo writes via fn to the named file, or stdout for "-".
func writeTo(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
