// Command experiments runs the full reproduction suite: one experiment
// per paper figure (behavioural outcome matrices) plus the performance
// studies backing the paper's qualitative claims. EXPERIMENTS.md records
// a reference run.
//
// Usage:
//
//	experiments [-run substring] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

// experiment is one named, self-checking reproduction unit.
type experiment struct {
	id    string
	title string
	run   func(*report) error
}

// report collects an experiment's table rows and pass/fail checks.
type report struct {
	rows   []string
	failed []string
}

func (r *report) rowf(format string, args ...any) {
	r.rows = append(r.rows, fmt.Sprintf(format, args...))
}

// check records a named boolean expectation.
func (r *report) check(name string, ok bool) {
	status := "PASS"
	if !ok {
		status = "FAIL"
		r.failed = append(r.failed, name)
	}
	r.rows = append(r.rows, fmt.Sprintf("  [%s] %s", status, name))
}

func (r *report) checkErr(name string, err error) {
	if err != nil {
		r.check(fmt.Sprintf("%s (%v)", name, err), false)
		return
	}
	r.check(name, true)
}

func main() {
	var (
		runFilter  = flag.String("run", "", "run only experiments whose id or title contains this substring")
		list       = flag.Bool("list", false, "list experiments and exit")
		commitJSON = flag.String("commitjson", "", "write the E23 commit-throughput measurement to this JSON file")
		rpcJSON    = flag.String("rpcjson", "", "write the E24 RPC hot-path measurement to this JSON file")
		capJSON    = flag.String("capacityjson", "", "write the E25 capacity-at-SLO measurement to this JSON file")
		attJSON    = flag.String("attribjson", "", "write the E26 tail-latency attribution measurement to this JSON file")
	)
	flag.Parse()
	commitJSONPath = *commitJSON
	rpcJSONPath = *rpcJSON
	capacityJSONPath = *capJSON
	attribJSONPath = *attJSON

	all := []experiment{
		{"E1", "Fig 1: concurrent nested atomic actions", expFig1},
		{"E2", "Figs 2/3: nested vs serializing outcomes", expFig2Fig3},
		{"E3", "Figs 4/5: glued vs serializing vs unprotected", expFig4Fig5},
		{"E4", "Fig 6: concurrent glued chains", expFig6},
		{"E5", "Fig 7: sync/async top-level independent actions", expFig7},
		{"E6", "Fig 8: distributed make", expFig8},
		{"E7", "Fig 9: meeting scheduler lock narrowing", expFig9},
		{"E8", "Fig 10: two-coloured action basics", expFig10},
		{"E9", "Fig 11: serializing via colours equivalence", expFig11},
		{"E10", "Fig 12: glued via colours", expFig12},
		{"E11", "Fig 13: independent via colours / deadlock contrast", expFig13},
		{"E12", "Figs 14/15: n-level independent actions", expFig15},
		{"E13", "Single colour degenerates to conventional actions", expSingleColour},
		{"E14", "Two-phase locking serializability invariant", expSerializability},
		{"E15", "Two-phase commit: latency and crash matrix", expTwoPhaseCommit},
		{"E16", "Examples i-iii: board, name server, billing", expIndependentApps},
		{"E17", "Contention sweep: throughput and abort rate", expContention},
		{"E19", "Distributed serializing actions (the paper's next step)", expRemoteSerializing},
		{"E23", "Commit throughput: WAL group commit vs per-record force", expCommitThroughput},
		{"E24", "RPC hot path: binary codec + coalescing writer vs JSON baseline", expRPCThroughput},
		{"E25", "Capacity at SLO: open-loop load, coordinated-omission-free latency", expCapacity},
		{"E26", "Tail-latency attribution: phase accounting localizes injected slowdowns", expAttrib},
	}

	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.id, e.title)
		}
		return
	}

	failures := 0
	start := time.Now()
	for _, e := range all {
		if *runFilter != "" &&
			!strings.Contains(e.id, *runFilter) &&
			!strings.Contains(strings.ToLower(e.title), strings.ToLower(*runFilter)) {
			continue
		}
		fmt.Printf("\n=== %s — %s ===\n", e.id, e.title)
		rep := &report{}
		expStart := time.Now()
		if err := e.run(rep); err != nil {
			rep.check(fmt.Sprintf("experiment completed (%v)", err), false)
		}
		for _, row := range rep.rows {
			fmt.Println(row)
		}
		fmt.Printf("  (%v)\n", time.Since(expStart).Round(time.Millisecond))
		failures += len(rep.failed)
	}
	fmt.Printf("\ntotal: %v", time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		fmt.Printf(", %d FAILED checks\n", failures)
		os.Exit(1)
	}
	fmt.Println(", all checks passed")
}
