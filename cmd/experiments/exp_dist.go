package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"mca/internal/action"
	"mca/internal/billing"
	"mca/internal/bulletin"
	"mca/internal/core"
	"mca/internal/dist"
	"mca/internal/ids"
	"mca/internal/nameserver"
	"mca/internal/netsim"
	"mca/internal/trace"
	"mca/internal/node"
	"mca/internal/object"
	"mca/internal/rpc"
	"mca/internal/workload"
)

// kvResource hosts one integer register per node for the 2PC experiment.
type kvResource struct {
	mu    sync.Mutex
	nd    *node.Node
	objID ids.ObjectID
	val   *object.Managed[int]
}

func newKVResource() *kvResource { return &kvResource{objID: ids.NewObjectID()} }

func (k *kvResource) Register(nd *node.Node, _ *rpc.Peer) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.nd = nd
	k.activateLocked()
}

func (k *kvResource) Recover(context.Context, *node.Node) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.activateLocked()
}

func (k *kvResource) activateLocked() {
	if m, err := object.Load[int](k.objID, k.nd.Stable()); err == nil {
		k.val = m
		return
	}
	k.val = object.New(0, object.WithStore(k.nd.Stable()), object.WithID(k.objID))
}

func (k *kvResource) value() *object.Managed[int] {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.val
}

type kvDelta struct {
	Delta int `json:"delta"`
}

func (k *kvResource) Invoke(a *action.Action, op string, arg []byte) ([]byte, error) {
	switch op {
	case "add":
		var in kvDelta
		if err := json.Unmarshal(arg, &in); err != nil {
			return nil, err
		}
		if err := k.value().Write(a, func(v *int) error { *v += in.Delta; return nil }); err != nil {
			return nil, err
		}
		return []byte("{}"), nil
	default:
		return nil, errors.New("unknown op")
	}
}

// expTwoPhaseCommit measures commit latency against the number of
// participants and verifies the crash matrix end to end.
func expTwoPhaseCommit(rep *report) error {
	ctx := context.Background()
	opts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 500 * time.Millisecond}

	// Latency sweep.
	for _, participants := range []int{1, 2, 3, 4} {
		nw := netsim.New(netsim.Config{MinDelay: 200 * time.Microsecond, MaxDelay: time.Millisecond})
		coordNode, err := node.New(nw, node.WithRPCOptions(opts))
		if err != nil {
			nw.Close()
			return err
		}
		coord := dist.NewManager(coordNode)
		var targets []ids.NodeID
		for i := 0; i < participants; i++ {
			nd, err := node.New(nw, node.WithRPCOptions(opts))
			if err != nil {
				nw.Close()
				return err
			}
			mgr := dist.NewManager(nd)
			res := newKVResource()
			nd.Host(res)
			mgr.RegisterResource("kv", res)
			targets = append(targets, nd.ID())
		}

		res := workload.Run(1, 30, func(_, _ int) error {
			return coord.Run(ctx, func(txn *dist.Txn) error {
				for _, target := range targets {
					if err := txn.Invoke(ctx, target, "kv", "add", kvDelta{Delta: 1}, nil); err != nil {
						return err
					}
				}
				return nil
			})
		})
		rep.rowf("  participants=%d  commit p50=%v p99=%v errs=%d",
			participants,
			res.Latency.Percentile(50).Round(time.Microsecond),
			res.Latency.Percentile(99).Round(time.Microsecond),
			res.Errors)
		if res.Errors > 0 {
			rep.check(fmt.Sprintf("latency sweep with %d participants error-free", participants), false)
		}
		nw.Close()
	}

	// Loss sweep: two participants under rising message loss — the
	// protocol's latency degrades with retransmissions but commits
	// stay correct.
	for _, loss := range []float64{0, 0.1, 0.3} {
		nw := netsim.New(netsim.Config{LossRate: loss, Seed: 77})
		coordNode, err := node.New(nw, node.WithRPCOptions(opts))
		if err != nil {
			nw.Close()
			return err
		}
		coord := dist.NewManager(coordNode)
		rec := trace.NewRecorder()
		coord.OnRound = rec.ObserveRound
		var targets []ids.NodeID
		resources := make([]*kvResource, 2)
		for i := range resources {
			nd, err := node.New(nw, node.WithRPCOptions(opts))
			if err != nil {
				nw.Close()
				return err
			}
			mgr := dist.NewManager(nd)
			resources[i] = newKVResource()
			nd.Host(resources[i])
			mgr.RegisterResource("kv", resources[i])
			targets = append(targets, nd.ID())
		}
		res := workload.Run(1, 20, func(_, _ int) error {
			return coord.Run(ctx, func(txn *dist.Txn) error {
				for _, target := range targets {
					if err := txn.Invoke(ctx, target, "kv", "add", kvDelta{Delta: 1}, nil); err != nil {
						return err
					}
				}
				return nil
			})
		})
		committed := res.Ops - res.Errors
		consistent := resources[0].value().Peek() == committed && resources[1].value().Peek() == committed
		rep.rowf("  loss=%2.0f%%  commit p50=%8v  committed=%d/%d  rounds: %s", loss*100,
			res.Latency.Percentile(50).Round(time.Microsecond), committed, res.Ops,
			rec.RoundSummary())
		rep.check(fmt.Sprintf("loss=%.0f%%: committed actions applied at every participant", loss*100), consistent)
		nw.Close()
	}

	// Crash matrix: participant in doubt then recovering.
	{
		nw := netsim.New(netsim.Config{})
		defer nw.Close()
		coordNode, err := node.New(nw, node.WithRPCOptions(opts))
		if err != nil {
			return err
		}
		coord := dist.NewManager(coordNode)
		pNode, err := node.New(nw, node.WithRPCOptions(opts))
		if err != nil {
			return err
		}
		pMgr := dist.NewManager(pNode)
		res := newKVResource()
		pNode.Host(res)
		pMgr.RegisterResource("kv", res)

		coord.TestHooks.AfterPrepare = func() {
			nw.Partition(coordNode.ID(), pNode.ID())
		}
		err = coord.Run(ctx, func(txn *dist.Txn) error {
			return txn.Invoke(ctx, pNode.ID(), "kv", "add", kvDelta{Delta: 5}, nil)
		})
		if err != nil {
			return fmt.Errorf("commit with partitioned completion: %w", err)
		}
		coord.TestHooks.AfterPrepare = nil

		pNode.Crash()
		nw.Heal(coordNode.ID(), pNode.ID())
		pNode.Restart()

		rep.check("in-doubt participant learns commit on recovery", res.value().Peek() == 5)

		// Presumed abort: coordinator dies before deciding.
		crashDone := make(chan struct{})
		coord.TestHooks.AfterPrepare = func() {
			coordNode.Crash()
			close(crashDone)
		}
		txn, err := coord.Begin()
		if err != nil {
			return err
		}
		if err := txn.Invoke(ctx, pNode.ID(), "kv", "add", kvDelta{Delta: 100}, nil); err != nil {
			return err
		}
		_ = txn.Commit(ctx)
		<-crashDone
		coord.TestHooks.AfterPrepare = nil
		pNode.Crash()
		coordNode.Restart()
		pNode.Restart()
		rep.check("undelivered decision presumed abort on recovery", res.value().Peek() == 5)
	}
	return nil
}

// expIndependentApps verifies examples i-iii end to end.
func expIndependentApps(rep *report) error {
	ctx := context.Background()
	rt := core.NewRuntime()
	board := bulletin.New(rt)
	ledger := billing.New(rt)

	nw := netsim.New(netsim.Config{})
	defer nw.Close()
	opts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 500 * time.Millisecond}
	appNode, err := node.New(nw, node.WithRPCOptions(opts))
	if err != nil {
		return err
	}
	appMgr := dist.NewManager(appNode)
	var replicas []ids.NodeID
	for i := 0; i < 2; i++ {
		nd, err := node.New(nw, node.WithRPCOptions(opts))
		if err != nil {
			return err
		}
		nameserver.NewServer(nd, dist.NewManager(nd))
		replicas = append(replicas, nd.ID())
	}
	ns := nameserver.NewClient(appMgr, replicas...)

	app, err := rt.Begin()
	if err != nil {
		return err
	}
	postID, err := board.PostCompensated(app, "user", "subj", "body")
	if err != nil {
		return err
	}
	if err := ns.Add(ctx, "obj/1", "node-9"); err != nil {
		return err
	}
	if err := ledger.Charge(app, "user", 3, "fee"); err != nil {
		return err
	}
	if err := app.Abort(); err != nil {
		return err
	}

	all, err := board.RetrieveAll()
	if err != nil {
		return err
	}
	rep.check("board: posting exists and was compensated (withdrawn)",
		len(all) == 1 && all[0].ID == postID && all[0].Withdrawn)
	val, err := ns.Lookup(ctx, "obj/1")
	rep.check("name server: binding survives application abort", err == nil && val == "node-9")
	total, err := ledger.Total("user")
	rep.check("billing: charge survives application abort", err == nil && total == 3)
	return nil
}

// expRemoteSerializing verifies the distributed serializing action: the
// paper's "distributed version" next step. Constituents are two-phase-
// commit transactions; per-node containers retain their locks until the
// structure ends.
func expRemoteSerializing(rep *report) error {
	ctx := context.Background()
	opts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 300 * time.Millisecond}
	nw := netsim.New(netsim.Config{})
	defer nw.Close()

	coordNode, err := node.New(nw, node.WithRPCOptions(opts))
	if err != nil {
		return err
	}
	coord := dist.NewManager(coordNode)
	var targets []ids.NodeID
	resources := make([]*kvResource, 2)
	for i := range resources {
		nd, err := node.New(nw, node.WithRPCOptions(opts))
		if err != nil {
			return err
		}
		mgr := dist.NewManager(nd)
		resources[i] = newKVResource()
		nd.Host(resources[i])
		mgr.RegisterResource("kv", resources[i])
		targets = append(targets, nd.ID())
	}

	s, err := coord.BeginRemoteSerializing()
	if err != nil {
		return err
	}
	// Constituent B updates both nodes.
	if err := s.RunConstituent(ctx, func(txn *dist.Txn) error {
		for _, target := range targets {
			if err := txn.Invoke(ctx, target, "kv", "add", kvDelta{Delta: 10}, nil); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	permanent := resources[0].value().Peek() == 10 && resources[1].value().Peek() == 10
	rep.check("constituent effects permanent at every node at its own commit", permanent)

	// Protection across the cluster: an unrelated transaction is shut out.
	blockedErr := coord.Run(ctx, func(txn *dist.Txn) error {
		return txn.Invoke(ctx, targets[0], "kv", "add", kvDelta{Delta: 1}, nil)
	})
	rep.check("outsider blocked at remote nodes between constituents", blockedErr != nil)

	// A failing second constituent leaves B intact.
	_ = s.RunConstituent(ctx, func(txn *dist.Txn) error {
		if err := txn.Invoke(ctx, targets[1], "kv", "add", kvDelta{Delta: 99}, nil); err != nil {
			return err
		}
		return errInjected
	})
	if err := s.Cancel(ctx); err != nil {
		return err
	}
	rep.check("failed constituent undone, committed constituent kept (outcome iii, distributed)",
		resources[0].value().Peek() == 10 && resources[1].value().Peek() == 10)

	// Everything free after Cancel.
	freeErr := coord.Run(ctx, func(txn *dist.Txn) error {
		return txn.Invoke(ctx, targets[0], "kv", "add", kvDelta{Delta: 1}, nil)
	})
	rep.check("locks released cluster-wide when the structure ends", freeErr == nil)
	return nil
}
