package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"mca/internal/loadgen"
	"mca/internal/trace"
	"mca/internal/workload"
)

// attribJSONPath, when set by the -attribjson flag, receives the E26
// measurement as BENCH_attrib.json.
var attribJSONPath string

// expAttrib is E26: tail-latency attribution. Two known slowdowns are
// injected into otherwise identical traced clusters — a 20ms WAL force
// delay (slow disk) and an 8-10ms link delay on one participant (slow
// peer) — and the slow-transaction capture taken at a failed SLO probe
// must localize each to the right exclusive phase bucket: force-wait
// dominant for the disk fault, network dominant for the link fault.
// The third section prices the instrumentation itself: an E23-style
// commit-bound workload with tracing+sampling+exemplars on versus off
// must stay within a 5% throughput budget.
func expAttrib(rep *report) error {
	ctx := context.Background()

	// attribScenario runs one fault-injection capture: a traced netsim
	// cluster, the injected fault, and a capacity probe whose SLO the
	// fault makes unreachable, so the failed probe auto-captures the
	// slowest sampled transactions with their phase attribution.
	attribScenario := func(inject func(*loadgen.Cluster)) (*loadgen.SlowTxnsReport, error) {
		cluster, err := loadgen.NewCluster(loadgen.ClusterConfig{
			Backend:      loadgen.BackendNetsim,
			Participants: 3,
			Registers:    24,
			// Keep everything slower than 10ms: the injected faults put
			// affected transactions well past that, the healthy rest
			// stays sub-millisecond and is sampled away.
			Trace: &trace.SamplerConfig{Threshold: 10 * time.Millisecond, Seed: 26},
		})
		if err != nil {
			return nil, err
		}
		defer cluster.Close()
		inject(cluster)
		rc := loadgen.RunConfig{
			Mix:    []loadgen.MixEntry{{Name: "write", Weight: 1}},
			Seed:   26,
			Warmup: 50 * time.Millisecond,
			Window: 300 * time.Millisecond,
			// Unreachable under either fault: every probe fails and the
			// capture reflects the probe nearest the (zero) capacity.
			SLO:         workload.SLO{Quantile: 0.99, Target: 5 * time.Millisecond},
			Start:       50,
			Max:         100,
			BisectIters: 0,
		}
		if _, err := cluster.SearchCapacity(ctx, rc); err != nil {
			return nil, err
		}
		return cluster.LastCapture(), nil
	}

	// checkScenario asserts a capture localized the fault: the wanted
	// bucket holds the strict plurality of the aggregate attribution and
	// the majority of captured transactions name it dominant.
	checkScenario := func(name, want string, st *loadgen.SlowTxnsReport) {
		if st == nil {
			rep.check(fmt.Sprintf("%s: failed SLO probe captured slow transactions", name), false)
			return
		}
		rep.check(fmt.Sprintf("%s: failed SLO probe captured slow transactions", name), len(st.Txns) > 0)
		rowPct := make([]string, 0, len(trace.BreakdownNames))
		top, topPct := "", -1.0
		for _, b := range trace.BreakdownNames {
			pct := st.AttributionPct[b]
			rowPct = append(rowPct, fmt.Sprintf("%s=%.1f%%", b, pct))
			if pct > topPct {
				top, topPct = b, pct
			}
		}
		dominant := 0
		for _, t := range st.Txns {
			if t.Dominant == want {
				dominant++
			}
		}
		rep.rowf("  %-14s %d txns at %.0f/s: %s", name, len(st.Txns), st.TriggerRateQPS,
			joinRows(rowPct))
		rep.check(fmt.Sprintf("%s: aggregate attribution names %q (got %q at %.1f%%)",
			name, want, top, topPct), top == want)
		rep.check(fmt.Sprintf("%s: majority of captured txns dominant=%q (%d/%d)",
			name, want, dominant, len(st.Txns)), 2*dominant > len(st.Txns))
	}

	// Scenario A — slow disk: 20ms per WAL force on every node. A 2PC
	// write pays prepare and commit forces, so force-wait should own
	// nearly all of the captured transactions' time.
	forceCap, err := attribScenario(func(c *loadgen.Cluster) {
		c.SetForceDelay(20 * time.Millisecond)
	})
	if err != nil {
		return fmt.Errorf("wal-force scenario: %w", err)
	}
	checkScenario("wal-force-20ms", "force", forceCap)

	// Scenario B — slow peer: 8-10ms extra delay on every message to or
	// from participant 0. Only transactions touching that participant
	// cross the slow link, and their time is wire time: network
	// dominant, while forces on the in-memory store stay near zero.
	netCap, err := attribScenario(func(c *loadgen.Cluster) {
		c.Netsim().SetNodeDelay(c.ParticipantID(0), 8*time.Millisecond, 10*time.Millisecond)
	})
	if err != nil {
		return fmt.Errorf("slow-peer scenario: %w", err)
	}
	checkScenario("slow-peer-8ms", "net", netCap)

	// Overhead: E23-style commit-bound closed loop (disjoint writes,
	// 1ms simulated force, throughput gated by group commit) on an
	// untraced cluster versus one with recorders, the tail sampler and
	// commit-latency exemplars live. Best-of-3 interleaved cells damp
	// scheduler noise; the budget is 5%.
	const (
		overheadWorkers = 16
		overheadCell    = 250 * time.Millisecond
		overheadRuns    = 3
	)
	newOverheadCluster := func(tr *trace.SamplerConfig) (*loadgen.Cluster, error) {
		c, err := loadgen.NewCluster(loadgen.ClusterConfig{
			Backend:      loadgen.BackendNetsim,
			Participants: 3,
			Registers:    2 * overheadWorkers,
			Trace:        tr,
		})
		if err != nil {
			return nil, err
		}
		c.SetForceDelay(time.Millisecond)
		return c, nil
	}
	measure := func(c *loadgen.Cluster) (float64, error) {
		res := workload.RunFor(overheadWorkers, overheadCell, func(w, _ int) error {
			return c.Write(ctx, uint64(w)) // worker-disjoint keys
		})
		if res.Errors > 0 {
			return 0, fmt.Errorf("%d/%d writes failed: %v", res.Errors, res.Ops, res.ErrKinds)
		}
		return res.Throughput(), nil
	}
	base, err := newOverheadCluster(nil)
	if err != nil {
		return err
	}
	defer base.Close()
	// Production-shaped sampling: a tail threshold nothing in this
	// healthy cluster reaches plus a 1-in-128 baseline lottery, so the
	// cost measured is buffering and deciding, not span export.
	traced, err := newOverheadCluster(&trace.SamplerConfig{
		Threshold: 100 * time.Millisecond,
		BaselineN: 128,
		Seed:      26,
	})
	if err != nil {
		return err
	}
	defer traced.Close()
	var baseTPS, tracedTPS float64
	for i := 0; i < overheadRuns; i++ {
		b, err := measure(base)
		if err != nil {
			return fmt.Errorf("untraced run %d: %w", i, err)
		}
		t, err := measure(traced)
		if err != nil {
			return fmt.Errorf("traced run %d: %w", i, err)
		}
		if b > baseTPS {
			baseTPS = b
		}
		if t > tracedTPS {
			tracedTPS = t
		}
	}
	overheadPct := 100 * (1 - tracedTPS/baseTPS)
	rep.rowf("  overhead: untraced %8.0f txn/s   traced %8.0f txn/s   %+.2f%%",
		baseTPS, tracedTPS, overheadPct)
	rep.check(fmt.Sprintf("tracing overhead within 5%% budget (%.2f%%)", overheadPct),
		tracedTPS >= 0.95*baseTPS)

	if attribJSONPath != "" {
		scenario := func(want string, st *loadgen.SlowTxnsReport) map[string]any {
			out := map[string]any{"want_dominant": want}
			if st != nil {
				out["trigger_rate_qps"] = st.TriggerRateQPS
				out["captured_txns"] = len(st.Txns)
				out["attribution_pct"] = st.AttributionPct
			}
			return out
		}
		out := map[string]any{
			"experiment": "E26 tail-latency attribution: injected slowdowns localized by phase accounting",
			"machine":    machineString(),
			"scenarios": map[string]any{
				"wal_force_20ms": scenario("force", forceCap),
				"slow_peer_8ms":  scenario("net", netCap),
			},
			"overhead": map[string]any{
				"workload":     fmt.Sprintf("E23-style disjoint writes, force=1ms, %d workers, best of %d x %v cells", overheadWorkers, overheadRuns, overheadCell),
				"untraced_tps": round2(baseTPS),
				"traced_tps":   round2(tracedTPS),
				"overhead_pct": round2(overheadPct),
				"budget_pct":   5,
			},
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(attribJSONPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		rep.rowf("  wrote %s", attribJSONPath)
	}
	return nil
}

// joinRows joins short row fragments with two-space separators.
func joinRows(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "  "
		}
		out += p
	}
	return out
}
