package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"mca/internal/dist"
	"mca/internal/ids"
	"mca/internal/node"
	"mca/internal/rpc"
	"mca/internal/tcpnet"
	"mca/internal/workload"
)

// rpcJSONPath, when set by the -rpcjson flag, receives the E24
// measurement as BENCH_rpc.json.
var rpcJSONPath string

// echoPayload is the representative small request body: roughly what a
// 2PC prepare/invoke carries.
type echoPayload struct {
	Txn    uint64 `json:"txn"`
	Op     string `json:"op"`
	Amount int    `json:"amount"`
}

// rpcPair is one echo server and one caller over real TCP sockets.
type rpcPair struct {
	nw     *tcpnet.Network
	caller *rpc.Peer
	server *rpc.Peer
	target *tcpnet.Endpoint
}

// newRPCPair builds the pair. fast selects the new data plane (binary
// codec + coalescing writer); !fast is the pre-PR baseline (JSON
// envelopes, one write syscall per datagram).
func newRPCPair(fast bool) (*rpcPair, error) {
	nw := tcpnet.NewNetwork()
	codec := rpc.CodecBinary
	if !fast {
		nw.SetDirectWrite(true)
		codec = rpc.CodecJSON
	}
	epS, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	epC, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		epS.Close()
		return nil, err
	}
	opts := rpc.Options{RetryInterval: 50 * time.Millisecond, CallTimeout: 10 * time.Second, Codec: codec}
	p := &rpcPair{nw: nw, target: epS}
	p.server = rpc.NewPeerOn(epS, opts)
	p.caller = rpc.NewPeerOn(epC, opts)
	p.server.Handle("echo", func(_ context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
		return body, nil
	})
	return p, nil
}

// expRPCThroughput is E24: RPC call throughput over real sockets with
// the binary envelope codec and coalescing writer versus the JSON
// envelope / write-per-datagram baseline, plus the allocation and
// syscall accounting behind the win, and the E23 commit workload
// rerun over TCP end to end.
func expRPCThroughput(rep *report) error {
	const cell = 500 * time.Millisecond
	workerCounts := []int{1, 8, 32}

	// --- envelope codec steady-state allocations ---
	allocs := rpc.EnvelopeRoundTripAllocs(5000)
	rep.rowf("  envelope encode+verify+decode: %.3f allocs/op (binary codec, pooled frames)", allocs)
	rep.check("envelope round trip ~0 allocs/op", allocs < 1)

	// --- call throughput over tcpnet ---
	measure := func(fast bool, workers int) (float64, error) {
		pair, err := newRPCPair(fast)
		if err != nil {
			return 0, err
		}
		defer func() {
			pair.caller.Stop()
			pair.server.Stop()
		}()
		pair.server.Start()
		pair.caller.Start()
		ctx := context.Background()
		req := echoPayload{Txn: 42, Op: "transfer", Amount: 10}
		// Warm the connection and (for the fast path) the binary
		// capability exchange.
		var resp echoPayload
		if err := pair.caller.Call(ctx, pair.target.ID(), "echo", req, &resp); err != nil {
			return 0, err
		}
		res := workload.RunFor(workers, cell, func(_, _ int) error {
			var r echoPayload
			return pair.caller.Call(ctx, pair.target.ID(), "echo", req, &r)
		})
		if res.Errors > 0 {
			return 0, fmt.Errorf("%d/%d calls failed: %v", res.Errors, res.Ops, res.ErrKinds)
		}
		return res.Throughput(), nil
	}

	type cellResult map[string]float64
	before, after := cellResult{}, cellResult{}
	rep.rowf("  echo calls over loopback TCP, one caller node, cell=%v:", cell)
	statsBefore := tcpnet.ReadWriterStats()
	for _, w := range workerCounts {
		key := fmt.Sprintf("workers=%d", w)
		base, err := measure(false, w)
		if err != nil {
			return fmt.Errorf("baseline %s: %w", key, err)
		}
		fast, err := measure(true, w)
		if err != nil {
			return fmt.Errorf("fast %s: %w", key, err)
		}
		before[key], after[key] = base, fast
		rep.rowf("  %-12s json+direct %8.0f calls/s   binary+coalesce %8.0f calls/s   %5.2fx",
			key, base, fast, fast/base)
	}
	statsAfter := tcpnet.ReadWriterStats()

	// Syscall accounting across the fast runs: every batch is one writev
	// carrying batchFrames datagrams; the baseline pays one write each.
	batches := statsAfter.Batches - statsBefore.Batches
	frames := statsAfter.BatchFrames - statsBefore.BatchFrames
	if batches > 0 {
		saved := 100 * (1 - float64(batches)/float64(frames))
		rep.rowf("  coalescing writer: %d frames in %d writev batches (%.1f frames/syscall, %.0f%% writes saved)",
			frames, batches, float64(frames)/float64(batches), saved)
	}

	speedup32 := after["workers=32"] / before["workers=32"]
	rep.check(fmt.Sprintf("binary+coalescing >= 2x JSON baseline at 32 workers (%.2fx)", speedup32),
		speedup32 >= 2)

	// --- E23's commit workload over real sockets ---
	commitPerSec, err := measureCommitOverTCP(8, cell)
	rep.checkErr("2PC commit workload runs over tcpnet (binary codec end to end)", err)
	if err == nil {
		rep.rowf("  E23 commit workload over TCP: %8.0f txn/s (8 workers, 3 participants)", commitPerSec)
	}

	if rpcJSONPath != "" {
		out := map[string]any{
			"experiment":             "E24 RPC hot path (binary envelope codec + coalescing transport vs JSON baseline)",
			"machine":                machineString(),
			"units":                  "calls/sec over loopback TCP",
			"cell":                   cell.String(),
			"note":                   "before = JSON envelope + one write()/datagram (pre-PR wire path), after = binary envelope + pooled buffers + writev coalescing. Bodies stay JSON in both.",
			"before":                 before,
			"after":                  after,
			"envelope_allocs_per_op": round2(allocs),
			"coalescing": map[string]any{
				"frames":             frames,
				"writev_batches":     batches,
				"frames_per_syscall": round2(float64(frames) / float64(max64(batches, 1))),
			},
			"commit_over_tcp_txn_s": round2(commitPerSec),
			"summary": map[string]any{
				"speedup_workers1":  round2(after["workers=1"] / before["workers=1"]),
				"speedup_workers8":  round2(after["workers=8"] / before["workers=8"]),
				"speedup_workers32": round2(speedup32),
			},
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(rpcJSONPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		rep.rowf("  wrote %s", rpcJSONPath)
	}
	return nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// measureCommitOverTCP reruns the E23 commit workload with every node on
// a real socket: coordinator plus three participants, one register per
// worker, disjoint transfers.
func measureCommitOverTCP(workers int, d time.Duration) (float64, error) {
	nw := tcpnet.NewNetwork()
	rpcOpts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 5 * time.Second}
	var nodes []*node.Node
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	}()
	var coord *dist.Manager
	for i := 0; i < 4; i++ {
		ep, err := nw.Listen("127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		nd, err := node.NewOn(ep, node.WithRPCOptions(rpcOpts))
		if err != nil {
			ep.Close()
			return 0, err
		}
		nodes = append(nodes, nd)
		mgr := dist.NewManager(nd)
		if i == 0 {
			coord = mgr
			continue
		}
		for w := 0; w < workers; w++ {
			r := newKVResource()
			nd.Host(r)
			mgr.RegisterResource(fmt.Sprintf("reg%d", w), r)
		}
	}
	ctx := context.Background()
	parts := nodes[1:]
	res := workload.RunFor(workers, d, func(w, _ int) error {
		resource := fmt.Sprintf("reg%d", w)
		a := parts[w%len(parts)]
		b := parts[(w+1)%len(parts)]
		return coord.Run(ctx, func(txn *dist.Txn) error {
			if err := txn.Invoke(ctx, a.ID(), resource, "add", kvDelta{Delta: 1}, nil); err != nil {
				return err
			}
			return txn.Invoke(ctx, b.ID(), resource, "add", kvDelta{Delta: 1}, nil)
		})
	})
	if res.Errors > 0 {
		return 0, fmt.Errorf("%d/%d transactions failed: %v", res.Errors, res.Ops, res.ErrKinds)
	}
	return res.Throughput(), nil
}
