package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"mca/internal/dist"
	"mca/internal/netsim"
	"mca/internal/node"
	"mca/internal/rpc"
	"mca/internal/workload"
)

// commitJSONPath, when set by the -commitjson flag, receives the E23
// measurement as BENCH_commit.json.
var commitJSONPath string

// commitCluster is the E23 harness: a coordinator and three
// participants, one register per worker per participant so concurrent
// transactions are disjoint and throughput is bounded by commit forces.
type commitCluster struct {
	nw      *netsim.Network
	coord   *dist.Manager
	nodes   []*node.Node // [0] coordinator, rest participants
	workers int
}

func newCommitCluster(workers int, dirs []string) (*commitCluster, error) {
	nw := netsim.New(netsim.Config{})
	rpcOpts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 5 * time.Second}
	c := &commitCluster{nw: nw, workers: workers}
	for i := 0; i < 4; i++ {
		opts := []node.Option{node.WithRPCOptions(rpcOpts)}
		if dirs != nil {
			opts = append(opts, node.WithStableDir(dirs[i]))
		}
		nd, err := node.New(nw, opts...)
		if err != nil {
			nw.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, nd)
		mgr := dist.NewManager(nd)
		if i == 0 {
			c.coord = mgr
			continue
		}
		for w := 0; w < workers; w++ {
			r := newKVResource()
			nd.Host(r)
			mgr.RegisterResource(fmt.Sprintf("reg%d", w), r)
		}
	}
	return c, nil
}

func (c *commitCluster) close() {
	for _, nd := range c.nodes {
		nd.Stop()
	}
	c.nw.Close()
}

// setGroupCommit flips every node between the WAL group-commit path and
// the per-record baseline force.
func (c *commitCluster) setGroupCommit(on bool) {
	for _, nd := range c.nodes {
		nd.Stable().WAL().SetGroupCommit(on)
	}
}

func (c *commitCluster) setForceDelay(d time.Duration) {
	for _, nd := range c.nodes {
		nd.Stable().WAL().SetForceDelay(d)
	}
}

// measure drives disjoint two-participant transfers for the duration and
// returns committed transactions per second.
func (c *commitCluster) measure(workers int, d time.Duration) (float64, error) {
	ctx := context.Background()
	parts := c.nodes[1:]
	res := workload.RunFor(workers, d, func(w, _ int) error {
		resource := fmt.Sprintf("reg%d", w)
		a := parts[w%len(parts)]
		b := parts[(w+1)%len(parts)]
		return c.coord.Run(ctx, func(txn *dist.Txn) error {
			if err := txn.Invoke(ctx, a.ID(), resource, "add", kvDelta{Delta: 1}, nil); err != nil {
				return err
			}
			return txn.Invoke(ctx, b.ID(), resource, "add", kvDelta{Delta: 1}, nil)
		})
	})
	if res.Errors > 0 {
		return 0, fmt.Errorf("%d/%d transactions failed: %v", res.Errors, res.Ops, res.ErrKinds)
	}
	return res.Throughput(), nil
}

// expCommitThroughput is E23: committed transactions per second with the
// per-node WAL's group commit versus the per-record baseline force, over
// the simulated stable log (fixed per-force latency) and the real
// FileStore (per-force fsync).
func expCommitThroughput(rep *report) error {
	const (
		forceDelay = time.Millisecond
		cell       = 250 * time.Millisecond
		maxWorkers = 32
	)
	workerCounts := []int{1, 4, 8, 16, 32}

	type cellResult map[string]float64
	before, after := cellResult{}, cellResult{}

	c, err := newCommitCluster(maxWorkers, nil)
	if err != nil {
		return err
	}
	defer c.close()
	c.setForceDelay(forceDelay)

	rep.rowf("  simulated stable log, force=%v, %d participants:", forceDelay, len(c.nodes)-1)
	bestRatio := 0.0
	for _, w := range workerCounts {
		key := fmt.Sprintf("workers=%d", w)
		c.setGroupCommit(false)
		base, err := c.measure(w, cell)
		if err != nil {
			return fmt.Errorf("per-record %s: %w", key, err)
		}
		c.setGroupCommit(true)
		wal, err := c.measure(w, cell)
		if err != nil {
			return fmt.Errorf("group-commit %s: %w", key, err)
		}
		before[key], after[key] = base, wal
		ratio := wal / base
		if ratio > bestRatio {
			bestRatio = ratio
		}
		rep.rowf("  %-12s per-record %8.0f txn/s   group-commit %8.0f txn/s   %5.2fx", key, base, wal, ratio)
	}
	rep.check(fmt.Sprintf("group commit >= 5x per-record force at some concurrency (best %.2fx)", bestRatio), bestRatio >= 5)
	rep.check("group commit never slower at max concurrency",
		after[fmt.Sprintf("workers=%d", maxWorkers)] >= before[fmt.Sprintf("workers=%d", maxWorkers)])

	// The file-backed section pays real fsyncs, so the absolute numbers
	// (and the ratio) depend on the disk; it is reported, not asserted.
	fileBefore, fileAfter := cellResult{}, cellResult{}
	dirs := make([]string, 4)
	for i := range dirs {
		d, err := os.MkdirTemp("", "e23-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(d)
		dirs[i] = d
	}
	fc, err := newCommitCluster(maxWorkers, dirs)
	if err != nil {
		return err
	}
	defer fc.close()
	rep.rowf("  FileStore backing (real fsync):")
	for _, w := range []int{1, 16} {
		key := fmt.Sprintf("workers=%d", w)
		fc.setGroupCommit(false)
		base, err := fc.measure(w, cell)
		if err != nil {
			return fmt.Errorf("file per-record %s: %w", key, err)
		}
		fc.setGroupCommit(true)
		wal, err := fc.measure(w, cell)
		if err != nil {
			return fmt.Errorf("file group-commit %s: %w", key, err)
		}
		fileBefore[key], fileAfter[key] = base, wal
		rep.rowf("  %-12s per-record %8.0f txn/s   group-commit %8.0f txn/s   %5.2fx", key, base, wal, wal/base)
	}

	if commitJSONPath != "" {
		out := map[string]any{
			"experiment":     "E23 commit throughput (WAL group commit vs per-record force)",
			"machine":        machineString(),
			"units":          "committed txns/sec",
			"cell":           cell.String(),
			"force_delay_us": forceDelay.Microseconds(),
			"note":           "before = per-record force (pre-WAL baseline), after = WAL group commit; file_backed pays real fsyncs and is machine-dependent.",
			"before":         before,
			"after":          after,
			"file_backed":    map[string]any{"before": fileBefore, "after": fileAfter},
			"summary": map[string]any{
				"best_speedup":           round2(bestRatio),
				"speedup_workers32":      round2(after["workers=32"] / before["workers=32"]),
				"file_speedup_workers16": round2(fileAfter["workers=16"] / fileBefore["workers=16"]),
			},
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(commitJSONPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		rep.rowf("  wrote %s", commitJSONPath)
	}
	return nil
}

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }

// machineString mirrors the BENCH_*.json machine field.
func machineString() string {
	model := "unknown CPU"
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, "model name") {
				if i := strings.Index(line, ":"); i >= 0 {
					model = strings.TrimSpace(line[i+1:])
				}
				break
			}
		}
	}
	return fmt.Sprintf("%s, %d hardware CPU, %s/%s", model, runtime.NumCPU(), runtime.GOOS, runtime.GOARCH)
}
