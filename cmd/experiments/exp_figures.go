package main

import (
	"errors"
	"sync"
	"time"

	"mca/internal/action"
	"mca/internal/colour"
	"mca/internal/core"
	"mca/internal/lock"
	"mca/internal/object"
	"mca/internal/store"
	"mca/internal/structures"
	"mca/internal/trace"
)

var errInjected = errors.New("injected failure")

func incr(m *object.Managed[int], by int) func(*action.Action) error {
	return func(a *action.Action) error {
		return m.Write(a, func(v *int) error {
			*v += by
			return nil
		})
	}
}

// expFig1 reproduces fig 1: concurrent actions B and C nested in A, and
// the outcome matrix across completion combinations.
func expFig1(rep *report) error {
	type scenario struct {
		name           string
		bFails, cFails bool
		aAborts        bool
		wantB, wantC   int
	}
	scenarios := []scenario{
		{"all commit", false, false, false, 1, 1},
		{"B aborts", true, false, false, 0, 1},
		{"C aborts", false, true, false, 1, 0},
		{"A aborts after both commit", false, false, true, 0, 0},
	}
	for _, sc := range scenarios {
		rt := core.NewRuntime()
		ob := object.New(0)
		oc := object.New(0)
		a, err := rt.Begin()
		if err != nil {
			return err
		}
		var wg sync.WaitGroup
		results := make(chan error, 2)
		runChild := func(m *object.Managed[int], fail bool) {
			defer wg.Done()
			results <- a.Run(func(child *action.Action) error {
				if err := incr(m, 1)(child); err != nil {
					return err
				}
				if fail {
					return errInjected
				}
				return nil
			})
		}
		wg.Add(2)
		go runChild(ob, sc.bFails)
		go runChild(oc, sc.cFails)
		wg.Wait()
		close(results)
		for err := range results {
			if err != nil && !errors.Is(err, errInjected) {
				return err
			}
		}
		if sc.aAborts {
			if err := a.Abort(); err != nil {
				return err
			}
		} else if err := a.Commit(); err != nil {
			return err
		}
		rep.check(sc.name, ob.Peek() == sc.wantB && oc.Peek() == sc.wantC)
	}
	return nil
}

// expFig2Fig3 contrasts nested atomic actions (fig 2) with serializing
// actions (fig 3) and verifies the three serializing outcomes of §3.1.
func expFig2Fig3(rep *report) error {
	// Fig 2: nested system; A's abort undoes committed B.
	{
		rt := core.NewRuntime()
		ob := object.New(0)
		a, err := rt.Begin()
		if err != nil {
			return err
		}
		if err := a.Run(incr(ob, 1)); err != nil {
			return err
		}
		if err := a.Abort(); err != nil {
			return err
		}
		rep.check("fig 2 nested: A's abort undoes B's committed effects", ob.Peek() == 0)
	}

	// Fig 3 outcome (i): B aborts, no effects.
	{
		rt := core.NewRuntime()
		ob := object.New(0)
		s, err := structures.BeginSerializing(rt)
		if err != nil {
			return err
		}
		err = s.RunConstituent(func(a *action.Action) error {
			if err := incr(ob, 1)(a); err != nil {
				return err
			}
			return errInjected
		})
		if !errors.Is(err, errInjected) {
			return err
		}
		if err := s.End(); err != nil {
			return err
		}
		rep.check("fig 3 outcome (i): B aborts, no effects", ob.Peek() == 0)
	}

	// Fig 3 outcome (ii): B and C commit; effects permanent and made
	// visible together.
	{
		rt := core.NewRuntime()
		st := store.NewStable()
		ob := object.New(0, object.WithStore(st))
		s, err := structures.BeginSerializing(rt)
		if err != nil {
			return err
		}
		if err := s.RunConstituent(incr(ob, 1)); err != nil {
			return err
		}
		_, stableEarly := stableRead(st, ob.ObjectID())
		visibleEarly := strangerCanRead(rt, ob.ObjectID())
		if err := s.RunConstituent(incr(ob, 1)); err != nil {
			return err
		}
		if err := s.End(); err != nil {
			return err
		}
		visibleAfter := strangerCanRead(rt, ob.ObjectID())
		rep.check("fig 3 outcome (ii): B permanent at its commit", stableEarly)
		rep.check("fig 3 outcome (ii): not visible until serializing action ends", !visibleEarly && visibleAfter)
		rep.check("fig 3 outcome (ii): both effects applied", ob.Peek() == 2)
	}

	// Fig 3 outcome (iii): B commits, C aborts; B's effects survive.
	{
		rt := core.NewRuntime()
		ob := object.New(0)
		oc := object.New(0)
		s, err := structures.BeginSerializing(rt)
		if err != nil {
			return err
		}
		if err := s.RunConstituent(incr(ob, 1)); err != nil {
			return err
		}
		err = s.RunConstituent(func(a *action.Action) error {
			if err := incr(oc, 1)(a); err != nil {
				return err
			}
			return errInjected
		})
		if !errors.Is(err, errInjected) {
			return err
		}
		if err := s.Cancel(); err != nil {
			return err
		}
		rep.check("fig 3 outcome (iii): B survives, C undone", ob.Peek() == 1 && oc.Peek() == 0)
	}
	return nil
}

func stableRead(st *store.Stable, id core.ObjectID) (store.State, bool) {
	s, err := st.Read(id)
	return s, err == nil
}

func strangerCanRead(rt *core.Runtime, id core.ObjectID) bool {
	a, err := rt.Begin()
	if err != nil {
		return false
	}
	defer a.Abort()
	return a.TryLock(id, lock.Read, colour.None) == nil
}

// expFig6 reproduces fig 6: n concurrent glued pairs.
func expFig6(rep *report) error {
	const n = 8
	rt := core.NewRuntime()
	results := make([]*object.Managed[int], n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		results[i] = object.New(0)
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := results[i]
			errs <- structures.Glued(rt,
				func(stage *structures.Stage) error {
					if err := m.Write(stage.Action, func(v *int) error { *v = 1; return nil }); err != nil {
						return err
					}
					return stage.PassOn(m.ObjectID())
				},
				func(stage *structures.Stage) error {
					return m.Write(stage.Action, func(v *int) error { *v += 10; return nil })
				})
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	ok := true
	for _, m := range results {
		if m.Peek() != 11 {
			ok = false
		}
	}
	rep.rowf("  %d concurrent glued pairs completed in %v", n, time.Since(start).Round(time.Millisecond))
	rep.check("all pairs passed their subset and completed", ok)
	return nil
}

// expFig7 reproduces fig 7: synchronous and asynchronous top-level
// independent actions surviving the invoker's abort.
func expFig7(rep *report) error {
	rt := core.NewRuntime()
	st := store.NewStable()
	syncObj := object.New(0, object.WithStore(st))
	asyncObj := object.New(0, object.WithStore(st))
	appObj := object.New(0)

	invoker, err := rt.Begin()
	if err != nil {
		return err
	}
	if err := incr(appObj, 1)(invoker); err != nil {
		return err
	}
	// (a) synchronous.
	if err := structures.RunIndependent(invoker, incr(syncObj, 1)); err != nil {
		return err
	}
	// (b) asynchronous.
	release := make(chan struct{})
	h, err := structures.SpawnIndependent(invoker, func(a *action.Action) error {
		<-release
		return incr(asyncObj, 1)(a)
	})
	if err != nil {
		return err
	}
	if err := invoker.Abort(); err != nil {
		return err
	}
	close(release)
	if err := h.Wait(); err != nil {
		return err
	}

	rep.check("fig 7a: synchronous independent effects survive invoker abort", syncObj.Peek() == 1)
	rep.check("fig 7b: asynchronous independent completes despite invoker abort", asyncObj.Peek() == 1)
	rep.check("invoker's own effects undone", appObj.Peek() == 0)
	_, stable := stableRead(st, syncObj.ObjectID())
	rep.check("independent effects are permanent (stable storage)", stable)
	return nil
}

// expFig10 reproduces fig 10's two-coloured action.
func expFig10(rep *report) error {
	rt := core.NewRuntime()
	st := store.NewStable()
	red, blue := colour.Fresh(), colour.Fresh()
	or := object.New(0, object.WithStore(st))
	ob := object.New(0, object.WithStore(st))

	a, err := rt.Begin(action.WithColours(blue))
	if err != nil {
		return err
	}
	b, err := a.Begin(action.WithColours(red, blue))
	if err != nil {
		return err
	}
	if err := or.WriteIn(b, red, func(v *int) error { *v = 1; return nil }); err != nil {
		return err
	}
	if err := ob.WriteIn(b, blue, func(v *int) error { *v = 1; return nil }); err != nil {
		return err
	}
	if err := b.Commit(); err != nil {
		return err
	}
	_, redStable := stableRead(st, or.ObjectID())
	_, blueStable := stableRead(st, ob.ObjectID())
	redFree := strangerCanRead(rt, or.ObjectID())
	blueHeld := rt.Locks().Holds(a.ID(), ob.ObjectID(), lock.Write, blue)
	if err := a.Abort(); err != nil {
		return err
	}
	rep.check("red locks released and red effects permanent at B's commit", redStable && redFree)
	rep.check("blue locks retained by A, blue effects not yet permanent", blueHeld && !blueStable)
	rep.check("A's abort undoes only blue effects", or.Peek() == 1 && ob.Peek() == 0)
	return nil
}

// expFig11 verifies the §5.3 colour scheme behaves identically to the
// serializing structure.
func expFig11(rep *report) error {
	runManual := func() (int, int, error) {
		// Hand-coloured scheme of fig 11.
		rt := core.NewRuntime()
		blue := colour.Fresh()
		w := object.New(0) // set W: updated by B
		r := object.New(7) // set R: read by B

		a, err := rt.Begin(action.WithColours(blue))
		if err != nil {
			return 0, 0, err
		}
		redB := colour.Fresh()
		b, err := a.Begin(
			action.WithColours(redB, blue),
			action.WithWriteColour(redB),
			action.WithReadColour(blue),
			action.WithWriteCompanion(blue))
		if err != nil {
			return 0, 0, err
		}
		var seen int
		if err := r.Read(b, func(v int) error { seen = v; return nil }); err != nil {
			return 0, 0, err
		}
		if err := w.Write(b, func(v *int) error { *v = seen; return nil }); err != nil {
			return 0, 0, err
		}
		if err := b.Commit(); err != nil {
			return 0, 0, err
		}

		redC := colour.Fresh()
		c, err := a.Begin(
			action.WithColours(redC, blue),
			action.WithWriteColour(redC),
			action.WithReadColour(blue),
			action.WithWriteCompanion(blue))
		if err != nil {
			return 0, 0, err
		}
		if err := w.Write(c, func(v *int) error { *v *= 2; return nil }); err != nil {
			return 0, 0, err
		}
		if err := c.Commit(); err != nil {
			return 0, 0, err
		}
		if err := a.Abort(); err != nil { // even abandoning the container
			return 0, 0, err
		}
		return w.Peek(), r.Peek(), nil
	}

	runStructure := func() (int, int, error) {
		rt := core.NewRuntime()
		w := object.New(0)
		r := object.New(7)
		s, err := structures.BeginSerializing(rt)
		if err != nil {
			return 0, 0, err
		}
		if err := s.RunConstituent(func(a *action.Action) error {
			var seen int
			if err := r.Read(a, func(v int) error { seen = v; return nil }); err != nil {
				return err
			}
			return w.Write(a, func(v *int) error { *v = seen; return nil })
		}); err != nil {
			return 0, 0, err
		}
		if err := s.RunConstituent(func(a *action.Action) error {
			return w.Write(a, func(v *int) error { *v *= 2; return nil })
		}); err != nil {
			return 0, 0, err
		}
		if err := s.Cancel(); err != nil {
			return 0, 0, err
		}
		return w.Peek(), r.Peek(), nil
	}

	mw, mr, err := runManual()
	if err != nil {
		return err
	}
	sw, sr, err := runStructure()
	if err != nil {
		return err
	}
	rep.rowf("  manual colours: w=%d r=%d; structure: w=%d r=%d", mw, mr, sw, sr)
	rep.check("fig 11 colour scheme ≡ serializing structure", mw == sw && mr == sr && mw == 14)
	return nil
}

// expFig12 verifies the §5.4 glued colour scheme passes exactly P.
func expFig12(rep *report) error {
	rt := core.NewRuntime()
	red := colour.Fresh()
	inP := object.New(0)
	notP := object.New(0)

	// G, the joint container.
	g, err := rt.Begin(action.WithColours(red))
	if err != nil {
		return err
	}
	blueA := colour.Fresh()
	a, err := g.Begin(
		action.WithColours(red, blueA),
		action.WithWriteColour(blueA),
		action.WithReadColour(blueA))
	if err != nil {
		return err
	}
	for _, m := range []*object.Managed[int]{inP, notP} {
		if err := m.Write(a, func(v *int) error { *v = 1; return nil }); err != nil {
			return err
		}
	}
	if err := a.Lock(inP.ObjectID(), lock.ExclusiveRead, red); err != nil {
		return err
	}
	if err := a.Commit(); err != nil {
		return err
	}

	notPFree := strangerCanRead(rt, notP.ObjectID())
	inPHeld := !strangerCanRead(rt, inP.ObjectID())

	blueB := colour.Fresh()
	b, err := g.Begin(action.WithColours(blueB))
	if err != nil {
		return err
	}
	writeOK := inP.Write(b, func(v *int) error { *v += 10; return nil }) == nil
	if err := b.Commit(); err != nil {
		return err
	}
	if err := g.Commit(); err != nil {
		return err
	}
	rep.check("objects outside P released at A's commit", notPFree)
	rep.check("objects in P held (exclusive read) for B", inPHeld)
	rep.check("B acquires write locks over G's exclusive-read locks", writeOK && inP.Peek() == 11)
	return nil
}

// expFig13 contrasts true top-level invocation (deadlock) with the
// coloured nested form.
func expFig13(rep *report) error {
	// (a) true top-level: conflicting access deadlocks (bounded wait
	// -> timeout).
	{
		rt := core.NewRuntime(action.WithMaxLockWait(50 * time.Millisecond))
		o := object.New(0)
		invoker, err := rt.Begin()
		if err != nil {
			return err
		}
		if err := o.Write(invoker, func(v *int) error { *v = 1; return nil }); err != nil {
			return err
		}
		outsider, err := rt.Begin()
		if err != nil {
			return err
		}
		err = o.Read(outsider, func(int) error { return nil })
		rep.check("fig 13a: unrelated top-level action blocks on invoker's lock",
			errors.Is(err, lock.ErrTimeout))
		_ = outsider.Abort()
		_ = invoker.Abort()
	}
	// (b) coloured: the nested independent action reads through.
	{
		rt := core.NewRuntime()
		o := object.New(0)
		invoker, err := rt.Begin()
		if err != nil {
			return err
		}
		if err := o.Write(invoker, func(v *int) error { *v = 2; return nil }); err != nil {
			return err
		}
		var seen int
		err = structures.RunIndependent(invoker, func(a *action.Action) error {
			return o.Read(a, func(v int) error { seen = v; return nil })
		})
		rep.check("fig 13b: coloured independent action reads the invoker's data",
			err == nil && seen == 2)
		_ = invoker.Abort()
	}
	return nil
}

// expFig15 reproduces the n-level independent matrix of figs 14/15.
func expFig15(rep *report) error {
	rec := trace.NewRecorder()
	rt := core.NewRuntime(action.WithObserver(rec.Observe))
	oD := object.New(0)
	oE := object.New(0)
	oC := object.New(0)
	oF := object.New(0)

	a, anchor, err := structures.BeginAnchored(rt)
	if err != nil {
		return err
	}
	if err := structures.RunIndependent(a, incr(oC, 1)); err != nil { // C
		return err
	}
	b, err := a.Begin()
	if err != nil {
		return err
	}
	if err := incr(oD, 1)(b); err != nil { // D: B's own work
		return err
	}
	if err := structures.RunIndependent(b, incr(oF, 1)); err != nil { // F
		return err
	}
	if err := structures.RunIndependentTo(b, anchor, incr(oE, 1)); err != nil { // E
		return err
	}
	if err := b.Abort(); err != nil {
		return err
	}
	eSurvivedB := oE.Peek() == 1
	dUndone := oD.Peek() == 0
	if err := a.Abort(); err != nil {
		return err
	}
	rep.check("B's abort keeps E (second-level), undoes D", eSurvivedB && dUndone)
	rep.check("A's abort undoes E", oE.Peek() == 0)
	rep.check("C and F (top-level independent) survive everything", oC.Peek() == 1 && oF.Peek() == 1)
	rep.rowf("  lifecycle: %s", rec.Summary())
	return nil
}
