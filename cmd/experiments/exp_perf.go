package main

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mca/internal/action"
	"mca/internal/colour"
	"mca/internal/core"
	"mca/internal/diary"
	"mca/internal/dmake"
	"mca/internal/lock"
	"mca/internal/object"
	"mca/internal/structures"
	"mca/internal/workload"
)

// expFig4Fig5 is the central concurrency experiment (figs 4 and 5): a
// long-running action B works on a subset P of the objects an earlier
// action A touched. Three organisations are compared under a background
// workload contending for the objects outside P:
//
//   - unprotected: A and B as two unrelated top-level actions — fast but
//     P can be modified between A and B (interference violations);
//   - serializing: correct, but O−P stays locked for B's whole run;
//   - glued: correct, and O−P is released at A's commit.
//
// The paper's claim: glued ≈ unprotected throughput with serializing's
// protection.
func expFig4Fig5(rep *report) error {
	const (
		oSize     = 48
		pSize     = 6
		bRunTime  = 120 * time.Millisecond
		bgWorkers = 8
		// handoverGap is the paper's "interval of time between the
		// end of A and the start of B" (fig 5 discussion): the window
		// the structures must protect.
		handoverGap = 40 * time.Millisecond
	)

	type outcome struct {
		bgOps        int
		interference int
	}

	run := func(mode string) (outcome, error) {
		rt := core.NewRuntime(action.WithMaxLockWait(20 * time.Millisecond))
		objs := make([]*object.Managed[int], oSize)
		for i := range objs {
			objs[i] = object.New(0)
		}
		inP := func(i int) bool { return i < pSize }

		phaseDone := make(chan struct{})  // closed when A has committed
		bFinished := make(chan struct{})  // closed at the end of B's work
		bgDone := make(chan outcome, 1)   // background result
		interfered := make(chan int, 256) // P objects touched by outsiders mid-run
		var stopBG sync.Once
		stop := func() { stopBG.Do(func() { close(bFinished) }) }
		defer stop()

		// Background workload: write random objects; track which P
		// objects it managed to write while the A->B handover was in
		// progress.
		go func() {
			<-phaseDone
			var ops int
			var wg sync.WaitGroup
			for w := 0; w < bgWorkers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w + 1)))
					for {
						select {
						case <-bFinished:
							return
						default:
						}
						i := rng.Intn(oSize)
						err := rt.Run(func(a *action.Action) error {
							return objs[i].Write(a, func(v *int) error {
								*v++
								return nil
							})
						})
						if err == nil {
							ops++
							if inP(i) {
								// Count the write only if it completed
								// while the handover protection was
								// still supposed to hold; an op that
								// raced past bFinished acquired the
								// lock after the legitimate release.
								select {
								case <-bFinished:
								default:
									select {
									case interfered <- i:
									default:
									}
								}
							}
						}
					}
				}()
			}
			wg.Wait()
			bgDone <- outcome{bgOps: ops}
		}()

		workA := func(a *action.Action) error {
			for _, m := range objs {
				if err := m.Write(a, func(v *int) error { *v = 1; return nil }); err != nil {
					return err
				}
			}
			return nil
		}
		workB := func(a *action.Action) error {
			// Long-running computation over P. The background stops
			// before B completes (and before any structure releases
			// its retained locks), so interference is only counted
			// while the handover protection is supposed to hold.
			defer stop()
			deadline := time.Now().Add(bRunTime)
			for time.Now().Before(deadline) {
				for i := 0; i < pSize; i++ {
					if err := objs[i].Write(a, func(v *int) error { *v += 2; return nil }); err != nil {
						return err
					}
				}
				time.Sleep(5 * time.Millisecond)
			}
			return nil
		}

		// The background stops (bFinished) as soon as B's work is
		// done, BEFORE the structures release their retained locks:
		// interference is only counted during the A->B handover and
		// B's run.
		var err error
		switch mode {
		case "unprotected":
			err = rt.Run(workA)
			close(phaseDone)
			time.Sleep(handoverGap)
			if err == nil {
				err = rt.Run(workB)
			}
			stop()
		case "serializing":
			var s *structures.Serializing
			s, err = structures.BeginSerializing(rt)
			if err == nil {
				err = s.RunConstituent(workA)
				close(phaseDone)
				time.Sleep(handoverGap)
				if err == nil {
					err = s.RunConstituent(workB)
				}
				stop()
				if endErr := s.End(); err == nil {
					err = endErr
				}
			} else {
				close(phaseDone)
				stop()
			}
		case "glued":
			chain := structures.NewChain(rt)
			err = chain.RunStage(func(stage *structures.Stage) error {
				if err := workA(stage.Action); err != nil {
					return err
				}
				for i := 0; i < pSize; i++ {
					if err := stage.PassOn(objs[i].ObjectID()); err != nil {
						return err
					}
				}
				return nil
			})
			close(phaseDone)
			time.Sleep(handoverGap)
			if err == nil {
				err = chain.RunStage(func(stage *structures.Stage) error {
					return workB(stage.Action)
				})
			}
			stop()
			if endErr := chain.End(); err == nil {
				err = endErr
			}
		}
		if err != nil {
			return outcome{}, fmt.Errorf("%s: %w", mode, err)
		}
		res := <-bgDone
		res.interference = len(interfered)
		return res, nil
	}

	results := make(map[string]outcome, 3)
	for _, mode := range []string{"unprotected", "serializing", "glued"} {
		res, err := run(mode)
		if err != nil {
			return err
		}
		results[mode] = res
		rep.rowf("  %-12s background ops=%5d  interference on P=%d",
			mode, res.bgOps, res.interference)
	}

	rep.check("fig 4a: unprotected allows interference on P",
		results["unprotected"].interference > 0)
	rep.check("fig 4b: serializing protects P", results["serializing"].interference == 0)
	rep.check("fig 5: glued protects P", results["glued"].interference == 0)
	rep.check("fig 5: glued background throughput >> serializing",
		results["glued"].bgOps > 2*results["serializing"].bgOps)
	return nil
}

// expFig8 reproduces fig 8: the distributed make — concurrency,
// incrementality and failure persistence.
func expFig8(rep *report) error {
	build := func(delay time.Duration, maxWorkers int, failLink bool) (*dmake.Report, *dmake.Maker, time.Duration, error) {
		rt := core.NewRuntime()
		fs := dmake.NewFS(rt)
		for _, src := range []string{"Test0.h", "Test1.h", "Test0.c", "Test1.c"} {
			fs.Create(src, "src:"+src)
		}
		mf, err := dmake.ParseMakefile(dmake.PaperMakefile)
		if err != nil {
			return nil, nil, 0, err
		}
		maker := dmake.NewMaker(fs, mf)
		maker.WorkDelay = delay
		maker.MaxWorkers = maxWorkers
		if failLink {
			maker.Compile = func(a *action.Action, f *dmake.FS, rule *dmake.Rule) error {
				if rule.Target == "Test" {
					return errInjected
				}
				return dmake.SimulatedCompile(a, f, rule)
			}
		}
		start := time.Now()
		report, err := maker.Make("Test")
		return report, maker, time.Since(start), err
	}

	// Concurrency: the object files overlap, so the parallel build
	// beats a sequential (-j1) baseline measured on the same machine.
	const d = 40 * time.Millisecond
	_, _, seqWall, err := build(d, 1, false)
	if err != nil {
		return err
	}
	report, maker, parWall, err := build(d, 0, false)
	if err != nil {
		return err
	}
	rep.rowf("  full build: executed=%v wall=%v (sequential baseline %v, per-recipe %v)",
		report.Executed, parWall.Round(time.Millisecond), seqWall.Round(time.Millisecond), d)
	rep.check("prerequisites built concurrently (MaxParallel >= 2)", report.MaxParallel >= 2)
	rep.check("parallel build beats the sequential baseline", parWall < seqWall)
	rep.check("build consistent", maker.Consistent("Test"))

	// Failure persistence.
	_, maker2, _, err := build(0, 0, true)
	if !errors.Is(err, errInjected) {
		return fmt.Errorf("expected injected failure, got %v", err)
	}
	rep.check("failed run keeps object files consistent",
		maker2.Consistent("Test0.o") && maker2.Consistent("Test1.o"))
	return nil
}

// expFig9 measures the meeting scheduler's lock narrowing across rounds.
func expFig9(rep *report) error {
	rt := core.NewRuntime()
	const people, days = 4, 24
	var diaries []*diary.Diary
	for i := 0; i < people; i++ {
		diaries = append(diaries, diary.NewDiary(fmt.Sprintf("p%d", i), days))
	}
	sched := diary.NewScheduler(rt, diaries...)

	lockCounts := []int{}
	snapshotLocks := func(cs []int) []int {
		lockCounts = append(lockCounts, rt.Locks().LockCount())
		// Keep the first half.
		if len(cs) > 1 {
			return cs[:(len(cs)+1)/2]
		}
		return cs
	}

	candidates := make([]int, 16)
	for i := range candidates {
		candidates[i] = i
	}
	chosen, err := sched.Arrange(candidates, "retrospective",
		snapshotLocks, snapshotLocks, snapshotLocks)
	if err != nil {
		return err
	}
	rep.rowf("  chosen day %d; candidates per round %v; lock-table size before each round %v",
		chosen, sched.RoundCandidates(), lockCounts)

	narrowing := true
	rounds := sched.RoundCandidates()
	for i := 1; i < len(rounds); i++ {
		if rounds[i] > rounds[i-1] {
			narrowing = false
		}
	}
	locksNarrowing := len(lockCounts) >= 2 && lockCounts[len(lockCounts)-1] < lockCounts[0]
	rep.check("candidate sets narrow monotonically", narrowing)
	rep.check("held locks shrink as rounds progress", locksNarrowing)
	rep.check("all diaries booked on the same day", func() bool {
		for _, d := range diaries {
			if s := d.Peek(chosen); !s.Busy {
				return false
			}
		}
		return true
	}())
	return nil
}

// expSingleColour checks §5.1's degeneration property on randomized
// schedules: a single-coloured system behaves exactly like conventional
// nested atomic actions (modelled independently).
func expSingleColour(rep *report) error {
	const trials = 200
	rng := rand.New(rand.NewSource(99))

	match := true
	for trial := 0; trial < trials && match; trial++ {
		rt := core.NewRuntime()
		const nObjs = 4
		objs := make([]*object.Managed[int], nObjs)
		model := make([]int, nObjs) // reference semantics
		for i := range objs {
			objs[i] = object.New(0)
		}

		// A random tree: top action, sequence of nested actions each
		// doing writes, randomly committing or aborting; top randomly
		// commits or aborts.
		top, err := rt.Begin()
		if err != nil {
			return err
		}
		topSnapshot := append([]int(nil), model...)
		steps := 2 + rng.Intn(4)
		for s := 0; s < steps; s++ {
			childSnapshot := append([]int(nil), model...)
			child, err := top.Begin()
			if err != nil {
				return err
			}
			writes := 1 + rng.Intn(3)
			for w := 0; w < writes; w++ {
				i := rng.Intn(nObjs)
				delta := rng.Intn(9) - 4
				if err := objs[i].Write(child, func(v *int) error { *v += delta; return nil }); err != nil {
					return err
				}
				model[i] += delta
			}
			if rng.Intn(2) == 0 {
				if err := child.Commit(); err != nil {
					return err
				}
			} else {
				if err := child.Abort(); err != nil {
					return err
				}
				copy(model, childSnapshot)
			}
		}
		if rng.Intn(2) == 0 {
			if err := top.Commit(); err != nil {
				return err
			}
		} else {
			if err := top.Abort(); err != nil {
				return err
			}
			copy(model, topSnapshot)
		}
		for i := range objs {
			if objs[i].Peek() != model[i] {
				match = false
			}
		}
	}
	rep.rowf("  %d randomized nested-action schedules compared against reference model", trials)
	rep.check("single-coloured system ≡ conventional atomic actions", match)
	return nil
}

// expSerializability drives concurrent conflicting transfers and checks
// the two-phase-locking serializability invariant.
func expSerializability(rep *report) error {
	rt := core.NewRuntime()
	const accounts = 6
	objs := make([]*object.Managed[int], accounts)
	for i := range objs {
		objs[i] = object.New(1000)
	}

	res := workload.Run(8, 50, func(w, i int) error {
		from := objs[(w+i)%accounts]
		to := objs[(w+i+1+i%3)%accounts]
		if from == to {
			return nil
		}
		err := rt.Run(func(a *action.Action) error {
			if err := from.Write(a, func(v *int) error { *v -= 7; return nil }); err != nil {
				return err
			}
			return to.Write(a, func(v *int) error { *v += 7; return nil })
		})
		if errors.Is(err, lock.ErrDeadlock) {
			return nil // clean abort: acceptable, invariant must hold
		}
		return err
	})
	total := 0
	for _, m := range objs {
		total += m.Peek()
	}
	rep.rowf("  %s", res)
	rep.check("no unexpected errors", res.Errors == 0)
	rep.check("total conserved under concurrent transfers", total == accounts*1000)

	// Ablation: releasing the write-colour rule would break recovery;
	// show the rule fires.
	red, blue := colour.Fresh(), colour.Fresh()
	a, err := rt.Begin(action.WithColours(red, blue))
	if err != nil {
		return err
	}
	o := object.New(0)
	if err := o.WriteIn(a, red, func(v *int) error { *v = 1; return nil }); err != nil {
		return err
	}
	err = a.TryLock(o.ObjectID(), lock.Write, blue)
	rep.check("ablation: cross-colour double write is refused (ErrDeadlock)",
		errors.Is(err, lock.ErrDeadlock))
	_ = a.Abort()
	return nil
}

// expContention sweeps worker counts over a small hot set of objects:
// throughput and deadlock-abort rates under rising two-phase-locking
// contention. The invariant (total conserved) must hold at every level.
func expContention(rep *report) error {
	const (
		accounts     = 8
		opsPerWorker = 150
	)
	for _, workers := range []int{1, 2, 4, 8} {
		rt := core.NewRuntime()
		objs := make([]*object.Managed[int], accounts)
		for i := range objs {
			objs[i] = object.New(1000)
		}
		var deadlocks int64
		var mu sync.Mutex
		res := workload.Run(workers, opsPerWorker, func(w, i int) error {
			rng := (w*opsPerWorker + i) * 2654435761 // cheap hash
			from := objs[rng%accounts]
			to := objs[(rng/accounts)%accounts]
			if from == to {
				return nil
			}
			err := rt.Run(func(a *action.Action) error {
				if err := from.Write(a, func(v *int) error { *v -= 2; return nil }); err != nil {
					return err
				}
				return to.Write(a, func(v *int) error { *v += 2; return nil })
			})
			if errors.Is(err, lock.ErrDeadlock) || errors.Is(err, action.ErrAborted) {
				mu.Lock()
				deadlocks++
				mu.Unlock()
				return nil // clean abort
			}
			return err
		})
		if res.Errors != 0 {
			rep.check(fmt.Sprintf("workers=%d ran without unexpected errors", workers), false)
			continue
		}
		total := 0
		for _, m := range objs {
			total += m.Peek()
		}
		rep.rowf("  workers=%d  thru=%7.0f/s  p99=%8v  deadlock-aborts=%d/%d",
			workers, res.Throughput(), res.Latency.Percentile(99).Round(time.Microsecond),
			deadlocks, res.Ops)
		rep.check(fmt.Sprintf("workers=%d: total conserved", workers), total == accounts*1000)
	}
	return nil
}
