package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"mca/internal/loadgen"
	"mca/internal/trace"
	"mca/internal/workload"
)

// capacityJSONPath, when set by the -capacityjson flag, receives the
// E25 measurement as BENCH_capacity.json.
var capacityJSONPath string

// expCapacity is E25: open-loop capacity-at-SLO for real 2PC clusters
// on both transports, plus the closed-vs-open demonstration of
// coordinated omission. Unlike E23/E24 (closed-loop throughput of one
// layer), this measures the whole stack the way clients experience it:
// arrivals keep coming whether or not the system keeps up, and latency
// counts from each op's intended arrival.
func expCapacity(rep *report) error {
	ctx := context.Background()
	mix, err := loadgen.ParseMix("read=70,write=20,transfer=10")
	if err != nil {
		return err
	}
	const (
		participants = 3
		registers    = 48
		theta        = 0.99
		seed         = 1
	)
	slo := workload.SLO{Quantile: 0.99, Target: 50 * time.Millisecond}
	rc := loadgen.RunConfig{
		Mix:         mix,
		Keys:        workload.NewZipf(registers, theta),
		Seed:        seed,
		Warmup:      100 * time.Millisecond,
		Window:      400 * time.Millisecond,
		SLO:         slo,
		Start:       50,
		Max:         12800,
		BisectIters: 3,
	}

	out := &loadgen.Report{
		Experiment: "E25 capacity-at-SLO: open-loop load vs 3-participant 2PC clusters",
		Machine:    loadgen.MachineString(),
		Mix:        loadgen.MixString(mix),
		Arrivals:   rc.Process.String(),
		Skew:       fmt.Sprintf("zipf theta=%g", theta),
		Seed:       seed,
		SLO:        loadgen.SLOReport{Quantile: slo.Quantile, TargetMS: float64(slo.Target.Microseconds()) / 1000},
	}

	rep.rowf("  mix %s, zipf(%d keys, theta=%g), poisson arrivals, SLO p99 <= %v",
		out.Mix, registers, theta, slo.Target)
	for _, backend := range []loadgen.Backend{loadgen.BackendNetsim, loadgen.BackendTCP} {
		ccfg := loadgen.ClusterConfig{
			Backend:      backend,
			Participants: participants,
			Registers:    registers,
		}
		if backend == loadgen.BackendNetsim {
			// Trace the simulated cluster with a keep-if-over-SLO tail
			// sampler: probes past capacity then auto-capture their
			// slowest transactions with phase attribution (E26 machinery
			// on the real search path).
			ccfg.Trace = &trace.SamplerConfig{Threshold: slo.Target, Seed: seed}
		}
		cluster, err := loadgen.NewCluster(ccfg)
		if err != nil {
			return fmt.Errorf("%s cluster: %w", backend, err)
		}
		res, err := cluster.SearchCapacity(ctx, rc)
		if err != nil {
			cluster.Close()
			return fmt.Errorf("%s capacity search: %w", backend, err)
		}
		cr := loadgen.NewClusterReport(cluster.Config(), rc, res)
		out.Clusters = append(out.Clusters, cr)
		for _, p := range res.Points {
			verdict := "FAIL"
			if p.Pass {
				verdict = "pass"
			}
			rep.rowf("  %-7s probe %7.0f/s %s  p50=%8v p99=%8v p999=%8v drop=%d",
				backend, p.Rate, verdict,
				p.P50.Round(10*time.Microsecond), p.P99.Round(10*time.Microsecond),
				p.P999.Round(10*time.Microsecond), p.Dropped)
		}
		rep.rowf("  %-7s capacity %.0f ops/s (%d probes)", backend, res.Capacity, len(res.Points))
		rep.check(fmt.Sprintf("%s cluster sustains a nonzero rate at the SLO", backend),
			res.Capacity > 0 && res.AtCapacity != nil)
		if st := cluster.LastCapture(); st != nil && out.SlowTxns == nil {
			out.SlowTxns = st
			rep.rowf("  %-7s slow-txn capture at %.0f/s: %d txns, attribution %v",
				backend, st.TriggerRateQPS, len(st.Txns), st.AttributionPct)
		}

		// Coordinated-omission demonstration on the simulated cluster:
		// a closed loop at N workers reports service-time latency; an
		// open loop offered the same throughput reports what clients
		// would actually see.
		if backend == loadgen.BackendNetsim {
			co, err := cluster.CompareClosedOpen(ctx, rc, 8)
			if err != nil {
				cluster.Close()
				return fmt.Errorf("closed-vs-open: %w", err)
			}
			out.ClosedVsOpen = loadgen.NewClosedVsOpen(backend, co)
			closedP99 := co.Closed.Latency.Percentile(99)
			openP99 := co.Open.Latency.Percentile(99)
			rep.rowf("  closed loop, 8 workers: %8.0f ops/s p99=%v (service time only)",
				co.ClosedRate, closedP99.Round(10*time.Microsecond))
			rep.rowf("  open loop, same load:   offered %.0f/s p99=%v from intended arrivals (%.2fx)",
				co.Open.Offered, openP99.Round(10*time.Microsecond), out.ClosedVsOpen.COGapP99X)
			rep.check("open-loop p99 >= closed-loop p99 at the same load (coordinated-omission gap)",
				openP99 >= closedP99)
		}
		cluster.Close()
	}

	if err := out.Validate(); err != nil {
		return fmt.Errorf("capacity report failed validation: %w", err)
	}
	rep.check("capacity report validates (both backends, nonzero capacity)", true)

	if capacityJSONPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(capacityJSONPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		rep.rowf("  wrote %s", capacityJSONPath)
	}
	return nil
}
