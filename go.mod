module mca

go 1.24
