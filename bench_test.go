// Package mca's root benchmark suite: one benchmark per paper figure or
// claim, regenerating the performance side of EXPERIMENTS.md. Absolute
// numbers are machine-dependent; the shapes (who wins, how costs scale
// with participants/depth/width) are the reproduction targets.
package mca_test

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"mca/internal/action"
	"mca/internal/colour"
	"mca/internal/core"
	"mca/internal/diary"
	"mca/internal/dist"
	"mca/internal/dmake"
	"mca/internal/ids"
	"mca/internal/lock"
	"mca/internal/metrics"
	"mca/internal/netsim"
	"mca/internal/node"
	"mca/internal/object"
	"mca/internal/rpc"
	"mca/internal/store"
	"mca/internal/structures"
)

// --- core runtime costs ---

// BenchmarkActionBeginCommit measures the bare begin+commit cycle at
// several nesting depths.
func BenchmarkActionBeginCommit(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			rt := core.NewRuntime()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				chain := make([]*action.Action, 0, depth)
				cur, err := rt.Begin()
				if err != nil {
					b.Fatal(err)
				}
				chain = append(chain, cur)
				for d := 1; d < depth; d++ {
					cur, err = cur.Begin()
					if err != nil {
						b.Fatal(err)
					}
					chain = append(chain, cur)
				}
				for d := depth - 1; d >= 0; d-- {
					if err := chain[d].Commit(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkObjectWrite measures a full transactional write (lock +
// before-image + mutate + commit) with and without permanence.
func BenchmarkObjectWrite(b *testing.B) {
	b.Run("volatile", func(b *testing.B) {
		rt := core.NewRuntime()
		m := object.New(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := rt.Run(func(a *action.Action) error {
				return m.Write(a, func(v *int) error { *v++; return nil })
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("persistent", func(b *testing.B) {
		rt := core.NewRuntime()
		st := store.NewStable()
		m := object.New(0, object.WithStore(st))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := rt.Run(func(a *action.Action) error {
				return m.Write(a, func(v *int) error { *v++; return nil })
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkColourOverhead compares a conventional (single-colour) nested
// commit against the fig 10 two-coloured pattern: the coloured machinery
// must cost little extra (§6: "minor modifications to the conventional
// rules").
func BenchmarkColourOverhead(b *testing.B) {
	b.Run("single-colour", func(b *testing.B) {
		rt := core.NewRuntime()
		m := object.New(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			top, err := rt.Begin()
			if err != nil {
				b.Fatal(err)
			}
			if err := top.Run(func(a *action.Action) error {
				return m.Write(a, func(v *int) error { *v++; return nil })
			}); err != nil {
				b.Fatal(err)
			}
			if err := top.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("two-coloured", func(b *testing.B) {
		rt := core.NewRuntime()
		mr := object.New(0)
		mb := object.New(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			blue, red := colour.Fresh(), colour.Fresh()
			top, err := rt.Begin(action.WithColours(blue))
			if err != nil {
				b.Fatal(err)
			}
			inner, err := top.Begin(action.WithColours(red, blue))
			if err != nil {
				b.Fatal(err)
			}
			if err := mr.WriteIn(inner, red, func(v *int) error { *v++; return nil }); err != nil {
				b.Fatal(err)
			}
			if err := mb.WriteIn(inner, blue, func(v *int) error { *v++; return nil }); err != nil {
				b.Fatal(err)
			}
			if err := inner.Commit(); err != nil {
				b.Fatal(err)
			}
			if err := top.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLockManager measures grant throughput under rising contention
// and colour counts.
func BenchmarkLockManager(b *testing.B) {
	for _, colours := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("colours=%d", colours), func(b *testing.B) {
			tree := lock.AncestryFunc(func(a, c ids.ActionID) bool { return a == c })
			m := lock.NewManager(tree)
			cs := make([]colour.Colour, colours)
			for i := range cs {
				cs[i] = colour.Fresh()
			}
			objs := make([]ids.ObjectID, 64)
			for i := range objs {
				objs[i] = ids.NewObjectID()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				owner := ids.NewActionID()
				for j := 0; j < 8; j++ {
					req := lock.Request{
						Object: objs[(i+j)%len(objs)],
						Owner:  owner,
						Colour: cs[j%colours],
						Mode:   lock.Read,
					}
					if err := m.TryAcquire(req); err != nil {
						b.Fatal(err)
					}
				}
				m.ReleaseAll(owner)
			}
		})
	}
}

// BenchmarkLockContention measures parallel acquire/release throughput
// against the two workload extremes of a striped lock table: disjoint
// (every worker cycles write locks on its own object — throughput must
// scale with -cpu, since workers never share a shard's state) and hot
// (every worker cycles read locks on one shared object — bounded by that
// object's shard). Run with -cpu=1,4,8; EXPERIMENTS.md and BENCH_lock.json
// record the sweep.
func BenchmarkLockContention(b *testing.B) {
	selfOnly := lock.AncestryFunc(func(a, c ids.ActionID) bool { return a == c })
	b.Run("disjoint", func(b *testing.B) {
		m := lock.NewManager(selfOnly)
		b.RunParallel(func(pb *testing.PB) {
			obj := ids.NewObjectID()
			c := colour.Fresh()
			for pb.Next() {
				owner := ids.NewActionID()
				if err := m.TryAcquire(lock.Request{Object: obj, Owner: owner, Colour: c, Mode: lock.Write}); err != nil {
					b.Error(err)
					return
				}
				m.ReleaseAll(owner)
			}
		})
	})
	b.Run("hot", func(b *testing.B) {
		m := lock.NewManager(selfOnly)
		obj := ids.NewObjectID()
		b.RunParallel(func(pb *testing.PB) {
			c := colour.Fresh()
			for pb.Next() {
				owner := ids.NewActionID()
				if err := m.TryAcquire(lock.Request{Object: obj, Owner: owner, Colour: c, Mode: lock.Read}); err != nil {
					b.Error(err)
					return
				}
				m.ReleaseAll(owner)
			}
		})
	})
}

// --- figure benchmarks ---

// BenchmarkFig1NestedActions runs the fig 1 shape: two concurrent
// children inside a top-level action.
func BenchmarkFig1NestedActions(b *testing.B) {
	rt := core.NewRuntime()
	ob := object.New(0)
	oc := object.New(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := rt.Begin()
		if err != nil {
			b.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		var errB, errC error
		go func() {
			defer wg.Done()
			errB = a.Run(func(child *action.Action) error {
				return ob.Write(child, func(v *int) error { *v++; return nil })
			})
		}()
		go func() {
			defer wg.Done()
			errC = a.Run(func(child *action.Action) error {
				return oc.Write(child, func(v *int) error { *v++; return nil })
			})
		}()
		wg.Wait()
		if errB != nil || errC != nil {
			b.Fatal(errB, errC)
		}
		if err := a.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4SerializingVsFig5Glued compares the two handover
// organisations: the serializing action holds all of O; the glued pair
// passes only P, so its critical section is smaller. The benchmark
// reports the structure cost itself (no background load; E3 in
// cmd/experiments measures the concurrency effect).
func BenchmarkFig4SerializingVsFig5Glued(b *testing.B) {
	const oSize, pSize = 32, 4
	makeObjs := func() []*object.Managed[int] {
		objs := make([]*object.Managed[int], oSize)
		for i := range objs {
			objs[i] = object.New(0)
		}
		return objs
	}
	stageA := func(a *action.Action, objs []*object.Managed[int]) error {
		for _, m := range objs {
			if err := m.Write(a, func(v *int) error { *v++; return nil }); err != nil {
				return err
			}
		}
		return nil
	}
	stageB := func(a *action.Action, objs []*object.Managed[int]) error {
		for i := 0; i < pSize; i++ {
			if err := objs[i].Write(a, func(v *int) error { *v += 2; return nil }); err != nil {
				return err
			}
		}
		return nil
	}

	b.Run("serializing", func(b *testing.B) {
		rt := core.NewRuntime()
		objs := makeObjs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s, err := structures.BeginSerializing(rt)
			if err != nil {
				b.Fatal(err)
			}
			if err := s.RunConstituent(func(a *action.Action) error { return stageA(a, objs) }); err != nil {
				b.Fatal(err)
			}
			if err := s.RunConstituent(func(a *action.Action) error { return stageB(a, objs) }); err != nil {
				b.Fatal(err)
			}
			if err := s.End(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("glued", func(b *testing.B) {
		rt := core.NewRuntime()
		objs := makeObjs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			err := structures.Glued(rt,
				func(stage *structures.Stage) error {
					if err := stageA(stage.Action, objs); err != nil {
						return err
					}
					for j := 0; j < pSize; j++ {
						if err := stage.PassOn(objs[j].ObjectID()); err != nil {
							return err
						}
					}
					return nil
				},
				func(stage *structures.Stage) error { return stageB(stage.Action, objs) })
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig6ConcurrentGlued scales the number of concurrent glued
// pairs.
func BenchmarkFig6ConcurrentGlued(b *testing.B) {
	for _, n := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("pairs=%d", n), func(b *testing.B) {
			rt := core.NewRuntime()
			objs := make([]*object.Managed[int], n)
			for i := range objs {
				objs[i] = object.New(0)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errs := make(chan error, n)
				for j := 0; j < n; j++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						m := objs[j]
						errs <- structures.Glued(rt,
							func(stage *structures.Stage) error {
								if err := m.Write(stage.Action, func(v *int) error { *v++; return nil }); err != nil {
									return err
								}
								return stage.PassOn(m.ObjectID())
							},
							func(stage *structures.Stage) error {
								return m.Write(stage.Action, func(v *int) error { *v++; return nil })
							})
					}()
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkFig7SyncVsAsync compares synchronous and asynchronous
// independent invocation as seen by the invoker: the async form returns
// immediately (fig 7b's motivation).
func BenchmarkFig7SyncVsAsync(b *testing.B) {
	work := func(m *object.Managed[int]) func(*action.Action) error {
		return func(a *action.Action) error {
			return m.Write(a, func(v *int) error { *v++; return nil })
		}
	}
	b.Run("sync", func(b *testing.B) {
		rt := core.NewRuntime()
		m := object.New(0)
		invoker, err := rt.Begin()
		if err != nil {
			b.Fatal(err)
		}
		defer invoker.Abort()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := structures.RunIndependent(invoker, work(m)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("async-invoke", func(b *testing.B) {
		rt := core.NewRuntime()
		m := object.New(0)
		invoker, err := rt.Begin()
		if err != nil {
			b.Fatal(err)
		}
		defer invoker.Abort()
		handles := make([]*structures.Handle, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h, err := structures.SpawnIndependent(invoker, work(m))
			if err != nil {
				b.Fatal(err)
			}
			handles = append(handles, h)
		}
		b.StopTimer()
		for _, h := range handles {
			if err := h.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig8DmakeParallelism builds fan-out makefiles of rising
// width: wall time per build must grow sublinearly in width thanks to
// concurrent constituents.
func BenchmarkFig8DmakeParallelism(b *testing.B) {
	for _, width := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			src := "all:"
			for i := 0; i < width; i++ {
				src += fmt.Sprintf(" obj%d", i)
			}
			src += "\n\tlink\n"
			for i := 0; i < width; i++ {
				src += fmt.Sprintf("obj%d: src%d\n\tcc\n", i, i)
			}
			mf, err := dmake.ParseMakefile(src)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				rt := core.NewRuntime()
				fs := dmake.NewFS(rt)
				for j := 0; j < width; j++ {
					fs.Create(fmt.Sprintf("src%d", j), "s")
				}
				maker := dmake.NewMaker(fs, mf)
				maker.WorkDelay = 2 * time.Millisecond
				b.StartTimer()
				if _, err := maker.Make("all"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9SchedulerRounds runs the meeting negotiation at rising
// group sizes.
func BenchmarkFig9SchedulerRounds(b *testing.B) {
	for _, people := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("people=%d", people), func(b *testing.B) {
			const days = 32
			halve := func(cs []int) []int {
				if len(cs) > 1 {
					return cs[:(len(cs)+1)/2]
				}
				return cs
			}
			candidates := make([]int, 16)
			for i := range candidates {
				candidates[i] = i
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				rt := core.NewRuntime()
				diaries := make([]*diary.Diary, people)
				for j := range diaries {
					diaries[j] = diary.NewDiary(fmt.Sprintf("p%d", j), days)
				}
				sched := diary.NewScheduler(rt, diaries...)
				b.StartTimer()
				if _, err := sched.Arrange(candidates, "bench", halve, halve); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11SerializingViaColours measures the serializing
// constituent cycle (the §5.3 scheme: red writes + blue companions).
func BenchmarkFig11SerializingViaColours(b *testing.B) {
	rt := core.NewRuntime()
	m := object.New(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := structures.BeginSerializing(rt)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.RunConstituent(func(a *action.Action) error {
			return m.Write(a, func(v *int) error { *v++; return nil })
		}); err != nil {
			b.Fatal(err)
		}
		if err := s.End(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- distributed benchmarks ---

type benchRes struct {
	mu  sync.Mutex
	val *object.Managed[int]
}

func (r *benchRes) Register(nd *node.Node, _ *rpc.Peer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.val = object.New(0, object.WithStore(nd.Stable()))
}
func (r *benchRes) Recover(context.Context, *node.Node) {}

func (r *benchRes) Invoke(a *action.Action, op string, arg []byte) ([]byte, error) {
	var in struct {
		Delta int `json:"delta"`
	}
	if err := json.Unmarshal(arg, &in); err != nil {
		return nil, err
	}
	r.mu.Lock()
	m := r.val
	r.mu.Unlock()
	if err := m.Write(a, func(v *int) error { *v += in.Delta; return nil }); err != nil {
		return nil, err
	}
	return []byte("{}"), nil
}

// BenchmarkTwoPhaseCommit sweeps participant counts over a fault-free,
// zero-delay LAN: the full transaction cycle (invokes + 2PC), with the
// default parallel fan-out.
func BenchmarkTwoPhaseCommit(b *testing.B) {
	for _, participants := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("participants=%d", participants), func(b *testing.B) {
			nw := netsim.New(netsim.Config{})
			defer nw.Close()
			opts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 5 * time.Second}
			coordNode, err := node.New(nw, node.WithRPCOptions(opts))
			if err != nil {
				b.Fatal(err)
			}
			coord := dist.NewManager(coordNode)
			var targets []ids.NodeID
			for i := 0; i < participants; i++ {
				nd, err := node.New(nw, node.WithRPCOptions(opts))
				if err != nil {
					b.Fatal(err)
				}
				mgr := dist.NewManager(nd)
				res := &benchRes{}
				nd.Host(res)
				mgr.RegisterResource("kv", res)
				targets = append(targets, nd.ID())
			}
			ctx := context.Background()
			arg := struct {
				Delta int `json:"delta"`
			}{Delta: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := coord.Run(ctx, func(txn *dist.Txn) error {
					for _, t := range targets {
						if err := txn.Invoke(ctx, t, "kv", "add", arg, nil); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCommitThroughput measures committed distributed transactions
// per second with many transactions in flight, under the WAL's group
// commit and the per-record baseline force. Workers drive disjoint
// registers, so the difference is purely how many log forces the commit
// path pays (see E23 / BENCH_commit.json for the reference sweep).
func BenchmarkCommitThroughput(b *testing.B) {
	const (
		workers    = 8
		forceDelay = 200 * time.Microsecond
	)
	for _, mode := range []struct {
		name  string
		group bool
	}{{"groupCommit", true}, {"perRecord", false}} {
		b.Run(mode.name, func(b *testing.B) {
			nw := netsim.New(netsim.Config{})
			defer nw.Close()
			opts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 5 * time.Second}
			coordNode, err := node.New(nw, node.WithRPCOptions(opts))
			if err != nil {
				b.Fatal(err)
			}
			coord := dist.NewManager(coordNode)
			coordNode.Stable().WAL().SetGroupCommit(mode.group)
			coordNode.Stable().WAL().SetForceDelay(forceDelay)
			var targets []ids.NodeID
			for i := 0; i < 2; i++ {
				nd, err := node.New(nw, node.WithRPCOptions(opts))
				if err != nil {
					b.Fatal(err)
				}
				nd.Stable().WAL().SetGroupCommit(mode.group)
				nd.Stable().WAL().SetForceDelay(forceDelay)
				mgr := dist.NewManager(nd)
				for w := 0; w < workers; w++ {
					res := &benchRes{}
					nd.Host(res)
					mgr.RegisterResource(fmt.Sprintf("kv%d", w), res)
				}
				targets = append(targets, nd.ID())
			}
			ctx := context.Background()
			arg := struct {
				Delta int `json:"delta"`
			}{Delta: 1}
			b.ResetTimer()
			var (
				wg   sync.WaitGroup
				next int64
				mu   sync.Mutex
			)
			take := func() bool {
				mu.Lock()
				defer mu.Unlock()
				if next >= int64(b.N) {
					return false
				}
				next++
				return true
			}
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					resource := fmt.Sprintf("kv%d", w)
					for take() {
						err := coord.Run(ctx, func(txn *dist.Txn) error {
							for _, t := range targets {
								if err := txn.Invoke(ctx, t, resource, "add", arg, nil); err != nil {
									return err
								}
							}
							return nil
						})
						if err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// BenchmarkCommitFanout isolates the commit rounds (prepare + phase-2
// complete) on a LAN with a realistic per-message delay, sweeping
// participant counts under both fan-out modes. Invokes run with the
// timer stopped, so the reported latency is the coordinator's commit
// fan-out alone: with ParallelFanout it must stay flat in N (each round
// is one concurrent broadcast ≈ one RTT), while the serial mode grows
// linearly (N×RTT per round).
func BenchmarkCommitFanout(b *testing.B) {
	const msgDelay = time.Millisecond
	for _, mode := range []string{"parallel", "serial"} {
		for _, participants := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("fanout=%s/participants=%d", mode, participants), func(b *testing.B) {
				nw := netsim.New(netsim.Config{MinDelay: msgDelay / 2, MaxDelay: msgDelay})
				defer nw.Close()
				opts := rpc.Options{RetryInterval: 50 * time.Millisecond, CallTimeout: 10 * time.Second}
				coordNode, err := node.New(nw, node.WithRPCOptions(opts))
				if err != nil {
					b.Fatal(err)
				}
				coord := dist.NewManager(coordNode)
				coord.ParallelFanout = mode == "parallel"
				var targets []ids.NodeID
				for i := 0; i < participants; i++ {
					nd, err := node.New(nw, node.WithRPCOptions(opts))
					if err != nil {
						b.Fatal(err)
					}
					mgr := dist.NewManager(nd)
					res := &benchRes{}
					nd.Host(res)
					mgr.RegisterResource("kv", res)
					targets = append(targets, nd.ID())
				}
				ctx := context.Background()
				arg := struct {
					Delta int `json:"delta"`
				}{Delta: 1}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					txn, err := coord.Begin()
					if err != nil {
						b.Fatal(err)
					}
					for _, t := range targets {
						if err := txn.Invoke(ctx, t, "kv", "add", arg, nil); err != nil {
							b.Fatal(err)
						}
					}
					b.StartTimer()
					if err := txn.Commit(ctx); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkRPCRoundTrip measures the base RPC cost under clean and lossy
// networks.
func BenchmarkRPCRoundTrip(b *testing.B) {
	for _, loss := range []float64{0, 0.2} {
		b.Run(fmt.Sprintf("loss=%.0f%%", loss*100), func(b *testing.B) {
			nw := netsim.New(netsim.Config{LossRate: loss, Seed: 4})
			defer nw.Close()
			epA, err := nw.NewEndpoint()
			if err != nil {
				b.Fatal(err)
			}
			epB, err := nw.NewEndpoint()
			if err != nil {
				b.Fatal(err)
			}
			opts := rpc.Options{RetryInterval: time.Millisecond, CallTimeout: 10 * time.Second}
			pa, pb := rpc.NewPeer(epA, opts), rpc.NewPeer(epB, opts)
			pb.Handle("echo", func(_ context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
				return body, nil
			})
			pa.Start()
			pb.Start()
			defer pa.Stop()
			defer pb.Stop()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pa.Call(context.Background(), pb.ID(), "echo", struct{}{}, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStableStoreBatch measures atomic batch installation.
func BenchmarkStableStoreBatch(b *testing.B) {
	for _, size := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("writes=%d", size), func(b *testing.B) {
			st := store.NewStable()
			batch := store.Batch{Writes: make(map[ids.ObjectID]store.State, size)}
			for i := 0; i < size; i++ {
				batch.Writes[ids.NewObjectID()] = store.State("state-data-xxxxxxxxxxxxxxxx")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.ApplyBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRemoteMakeIncremental measures a distributed incremental
// rebuild: touch one source, rebuild the affected cone across three
// file-server nodes (each recipe a full 2PC constituent of a
// distributed serializing action).
func BenchmarkRemoteMakeIncremental(b *testing.B) {
	ctx := context.Background()
	nw := netsim.New(netsim.Config{})
	defer nw.Close()
	opts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 5 * time.Second}

	coordNode, err := node.New(nw, node.WithRPCOptions(opts))
	if err != nil {
		b.Fatal(err)
	}
	coord := dist.NewManager(coordNode)

	placement := make(map[string]ids.NodeID)
	newServer := func(files map[string]int64) *dmake.FSResource {
		nd, err := node.New(nw, node.WithRPCOptions(opts))
		if err != nil {
			b.Fatal(err)
		}
		res := dmake.NewFSResource(nd, dist.NewManager(nd))
		for name, stamp := range files {
			res.Provision(name, "content", stamp)
			placement[name] = nd.ID()
		}
		return res
	}
	newServer(map[string]int64{"Test0.h": 1, "Test1.h": 2, "Test0.c": 3, "Test1.c": 4})
	newServer(map[string]int64{"Test0.o": 0, "Test1.o": 0})
	newServer(map[string]int64{"Test": 0})

	mf, err := dmake.ParseMakefile(dmake.PaperMakefile)
	if err != nil {
		b.Fatal(err)
	}
	maker := dmake.NewRemoteMaker(coord, mf, func(f string) ids.NodeID { return placement[f] })
	maker.InitStamp(10)
	if _, err := maker.Make(ctx, "Test"); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Touch Test1.c, then rebuild its cone (Test1.o + Test).
		err := coord.Run(ctx, func(txn *dist.Txn) error {
			return maker.WriteFile(ctx, txn, "Test1.c", "touched")
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := maker.Make(ctx, "Test"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- observability overhead ---

// BenchmarkMetricsOverhead pins the cost of the always-on telemetry
// layer. The lock sub-benchmarks repeat the BenchmarkLockContention
// shapes — the hottest instrumented path in the tree — and must stay
// within 5% of the pre-instrumentation numbers (recorded in
// BENCH_metrics.json) with zero allocations per op. The instrument
// sub-benchmarks price the raw primitives, and gather prices a full
// registry scrape.
func BenchmarkMetricsOverhead(b *testing.B) {
	selfOnly := lock.AncestryFunc(func(a, c ids.ActionID) bool { return a == c })
	b.Run("lock/disjoint", func(b *testing.B) {
		m := lock.NewManager(selfOnly)
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			obj := ids.NewObjectID()
			c := colour.Fresh()
			for pb.Next() {
				owner := ids.NewActionID()
				if err := m.TryAcquire(lock.Request{Object: obj, Owner: owner, Colour: c, Mode: lock.Write}); err != nil {
					b.Error(err)
					return
				}
				m.ReleaseAll(owner)
			}
		})
	})
	b.Run("lock/hot", func(b *testing.B) {
		m := lock.NewManager(selfOnly)
		obj := ids.NewObjectID()
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			c := colour.Fresh()
			for pb.Next() {
				owner := ids.NewActionID()
				if err := m.TryAcquire(lock.Request{Object: obj, Owner: owner, Colour: c, Mode: lock.Read}); err != nil {
					b.Error(err)
					return
				}
				m.ReleaseAll(owner)
			}
		})
	})
	b.Run("counter-add", func(b *testing.B) {
		c := metrics.NewRegistry().Counter("bench_counter_total", "benchmark scratch")
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Add(1)
			}
		})
	})
	b.Run("histogram-observe", func(b *testing.B) {
		h := metrics.NewRegistry().Histogram("bench_ns", "benchmark scratch")
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			var v uint64
			for pb.Next() {
				v++
				h.Observe(v)
			}
		})
	})
	b.Run("gather", func(b *testing.B) {
		// Scrape the real default registry, including the gather-time
		// lock collectors walking every live manager's shards.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if fams := metrics.Default().Gather(); len(fams) == 0 {
				b.Fatal("empty gather")
			}
		}
	})
}
