package lock

import (
	"sync"

	"mca/internal/ids"
)

// refManager is the retained single-mutex reference implementation of
// the coloured lock manager: one global mutex, one flat object map, the
// §5.2 grant rules evaluated inline. It is the pre-sharding Manager
// minus the blocking machinery (the oracle drives both managers through
// the non-blocking surface, where outcomes are deterministic), kept as
// the semantic yardstick the striped implementation is differentially
// tested against in oracle_test.go.
type refManager struct {
	ancestry Ancestry

	mu      sync.Mutex
	objects map[ids.ObjectID]*refObjectLocks
}

type refObjectLocks struct {
	entries []Entry
}

func newRefManager(ancestry Ancestry) *refManager {
	return &refManager{
		ancestry: ancestry,
		objects:  make(map[ids.ObjectID]*refObjectLocks),
	}
}

// TryAcquire mirrors Manager.TryAcquire: immediate grant, ErrConflict,
// or ErrDeadlock for permanently blocked requests.
func (m *refManager) TryAcquire(req Request) error {
	if err := validate(req); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	blockers, permanent := m.evaluate(req)
	if permanent {
		return ErrDeadlock
	}
	if len(blockers) > 0 {
		return ErrConflict
	}
	m.grant(req)
	return nil
}

// evaluate applies the §5.2 grant rules under m.mu.
func (m *refManager) evaluate(req Request) (blockers map[ids.ActionID]struct{}, permanent bool) {
	ol := m.objects[req.Object]
	if ol == nil {
		return nil, false
	}
	blockers = make(map[ids.ActionID]struct{})
	for _, e := range ol.entries {
		if e.Owner == req.Owner && e.Colour == req.Colour && e.Mode == req.Mode {
			continue // re-acquisition of a held lock is free
		}
		isAncestor := m.ancestry.IsSameOrAncestor(e.Owner, req.Owner)
		switch req.Mode {
		case Read:
			if e.Mode == Read {
				continue // shared
			}
			if !isAncestor {
				blockers[e.Owner] = struct{}{}
			}
		case ExclusiveRead:
			if !isAncestor {
				blockers[e.Owner] = struct{}{}
			}
		case Write:
			if !isAncestor {
				blockers[e.Owner] = struct{}{}
				continue
			}
			if e.Mode == Write && e.Colour != req.Colour {
				return nil, true
			}
		}
	}
	if len(blockers) == 0 {
		blockers = nil
	}
	return blockers, false
}

func (m *refManager) grant(req Request) {
	ol := m.objects[req.Object]
	if ol == nil {
		ol = &refObjectLocks{}
		m.objects[req.Object] = ol
	}
	for _, e := range ol.entries {
		if e.Owner == req.Owner && e.Colour == req.Colour && e.Mode == req.Mode {
			return
		}
	}
	ol.entries = append(ol.entries, Entry{Owner: req.Owner, Colour: req.Colour, Mode: req.Mode})
}

// ReleaseAll discards every lock held by owner (abort semantics).
func (m *refManager) ReleaseAll(owner ids.ActionID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for oid, ol := range m.objects {
		kept := ol.entries[:0]
		for _, e := range ol.entries {
			if e.Owner != owner {
				kept = append(kept, e)
			}
		}
		ol.entries = kept
		if len(ol.entries) == 0 {
			delete(m.objects, oid)
		}
	}
}

// CommitTransfer applies commit semantics for owner, returning the
// objects on which at least one lock was released outright.
func (m *refManager) CommitTransfer(owner ids.ActionID, heir Heir) []ids.ObjectID {
	m.mu.Lock()
	defer m.mu.Unlock()
	var released []ids.ObjectID
	for oid, ol := range m.objects {
		kept := ol.entries[:0]
		releasedHere := false
		for _, e := range ol.entries {
			if e.Owner != owner {
				if !containsEntry(kept, e) {
					kept = append(kept, e)
				}
				continue
			}
			h, ok := heir(e.Colour)
			if !ok {
				releasedHere = true
				continue
			}
			inherited := Entry{Owner: h, Colour: e.Colour, Mode: e.Mode}
			if !containsEntry(kept, inherited) {
				kept = append(kept, inherited)
			}
		}
		ol.entries = kept
		if releasedHere {
			released = append(released, oid)
		}
		if len(ol.entries) == 0 {
			delete(m.objects, oid)
		}
	}
	return released
}

// HoldersOf returns a copy of the entries held on the object.
func (m *refManager) HoldersOf(object ids.ObjectID) []Entry {
	m.mu.Lock()
	defer m.mu.Unlock()
	ol := m.objects[object]
	if ol == nil {
		return nil
	}
	out := make([]Entry, len(ol.entries))
	copy(out, ol.entries)
	return out
}

// HeldObjects returns the objects on which owner holds at least one
// lock.
func (m *refManager) HeldObjects(owner ids.ActionID) []ids.ObjectID {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []ids.ObjectID
	for oid, ol := range m.objects {
		for _, e := range ol.entries {
			if e.Owner == owner {
				out = append(out, oid)
				break
			}
		}
	}
	return out
}

// LockCount returns the total number of entries held.
func (m *refManager) LockCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, ol := range m.objects {
		n += len(ol.entries)
	}
	return n
}
