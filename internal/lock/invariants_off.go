//go:build !invariants

package lock

import (
	"mca/internal/colour"
	"mca/internal/ids"
)

// InvariantsEnabled reports whether the build carries the invariants tag.
const InvariantsEnabled = false

// checkShardInvariants is a no-op without the invariants build tag; the
// compiler erases the calls entirely.
func (m *Manager) checkShardInvariants(s *shard) {}

// checkTableInvariants is a no-op without the invariants build tag.
func (m *Manager) checkTableInvariants() {}

// assertHeir is a no-op without the invariants build tag.
func (m *Manager) assertHeir(owner, heir ids.ActionID, c colour.Colour) {}
