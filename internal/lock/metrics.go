package lock

import (
	"strconv"
	"sync"
	"weak"

	"mca/internal/metrics"
)

// Telemetry for the lock manager, exported under mca_lock_* in the
// process-global metrics registry.
//
// Collection is split by cost. The hot grant/release cycle increments
// plain shardStats fields under the shard mutex it already holds (see
// shardStats); failure paths that have already parked use the Manager's
// atomic slow counters; only the block-time histogram pays atomic adds,
// and only on requests that actually blocked. Everything is summed here
// at gather time across all live managers, tracked through weak
// pointers so telemetry never keeps a discarded manager (tests build
// thousands) alive.

// blockNs records how long blocked Acquires spent parked, in
// nanoseconds, across all managers in the process.
var blockNs = metrics.Default().Histogram(
	"mca_lock_block_ns",
	"Time blocked Acquire calls spent parked, ns (all outcomes).")

// live is the weak set of constructed managers; gathers sum over it and
// drop entries whose manager has been collected.
var live struct {
	mu  sync.Mutex
	set map[weak.Pointer[Manager]]struct{}
}

func registerManager(m *Manager) {
	live.mu.Lock()
	defer live.mu.Unlock()
	if live.set == nil {
		live.set = make(map[weak.Pointer[Manager]]struct{})
	}
	live.set[weak.Make(m)] = struct{}{}
}

// forEachManager visits every still-live manager, pruning dead weak
// pointers as a side effect. Shard mutexes may be taken inside f: the
// lock-ordering rule (shard mutex first) is respected because nothing
// under a shard mutex ever touches live.mu.
func forEachManager(f func(*Manager)) {
	live.mu.Lock()
	defer live.mu.Unlock()
	for p := range live.set {
		m := p.Value()
		if m == nil {
			delete(live.set, p)
			continue
		}
		f(m)
	}
}

// sumStats folds every shard's stats (and the slow atomics) of every
// live manager into one aggregate, also reporting instantaneous table
// depth per shard index.
type aggregate struct {
	stats        shardStats
	cycles       [4]uint64
	timeouts     [4]uint64
	cancels      [4]uint64
	wakeups      uint64
	shardEntries []uint64 // held entries by shard index
	shardWaiters []uint64 // parked waiters by shard index
}

func gatherAggregate() aggregate {
	var a aggregate
	forEachManager(func(m *Manager) {
		if len(m.shards) > len(a.shardEntries) {
			grown := make([]uint64, len(m.shards))
			copy(grown, a.shardEntries)
			a.shardEntries = grown
			grown = make([]uint64, len(m.shards))
			copy(grown, a.shardWaiters)
			a.shardWaiters = grown
		}
		for i := range m.shards {
			s := &m.shards[i]
			s.mu.Lock()
			for mode := range s.stats.grants {
				a.stats.grants[mode] += s.stats.grants[mode]
				a.stats.conflicts[mode] += s.stats.conflicts[mode]
				a.stats.permanent[mode] += s.stats.permanent[mode]
			}
			a.stats.blocks += s.stats.blocks
			a.stats.inherited += s.stats.inherited
			a.stats.relCommit += s.stats.relCommit
			a.stats.relAbort += s.stats.relAbort
			for _, ol := range s.objects {
				a.shardEntries[i] += uint64(len(ol.entries))
			}
			for _, q := range s.waiters {
				a.shardWaiters[i] += uint64(len(q))
			}
			s.mu.Unlock()
		}
		for mode := 1; mode < 4; mode++ {
			a.cycles[mode] += m.slow.cycles[mode].Load()
			a.timeouts[mode] += m.slow.timeouts[mode].Load()
			a.cancels[mode] += m.slow.cancels[mode].Load()
		}
		a.wakeups += m.signals.Load()
	})
	return a
}

var modes = [...]Mode{Read, Write, ExclusiveRead}

func init() {
	r := metrics.Default()
	r.CounterVecFunc("mca_lock_acquires_total",
		"Lock requests by mode and outcome (granted, conflict, deadlock, timeout, cancelled).",
		[]string{"mode", "outcome"}, func(emit metrics.Emit) {
			a := gatherAggregate()
			for _, mode := range modes {
				emit(float64(a.stats.grants[mode]), mode.String(), "granted")
				emit(float64(a.stats.conflicts[mode]), mode.String(), "conflict")
				emit(float64(a.stats.permanent[mode]+a.cycles[mode]), mode.String(), "deadlock")
				emit(float64(a.timeouts[mode]), mode.String(), "timeout")
				emit(float64(a.cancels[mode]), mode.String(), "cancelled")
			}
		})
	r.CounterVecFunc("mca_lock_deadlocks_total",
		"Deadlocks by detection kind: permanent (ancestor-write rule) or cycle (waits-for graph).",
		[]string{"kind"}, func(emit metrics.Emit) {
			a := gatherAggregate()
			var perm, cyc uint64
			for mode := 1; mode < 4; mode++ {
				perm += a.stats.permanent[mode]
				cyc += a.cycles[mode]
			}
			emit(float64(perm), "permanent")
			emit(float64(cyc), "cycle")
		})
	r.CounterFunc("mca_lock_blocks_total",
		"Acquire calls that parked at least once.", func() float64 {
			return float64(gatherAggregate().stats.blocks)
		})
	r.CounterFunc("mca_lock_wakeups_total",
		"Targeted waiter wakeups delivered by releases and commit transfers.", func() float64 {
			return float64(gatherAggregate().wakeups)
		})
	r.CounterVecFunc("mca_lock_commit_transfers_total",
		"Lock entries processed by CommitTransfer, by result.",
		[]string{"result"}, func(emit metrics.Emit) {
			a := gatherAggregate()
			emit(float64(a.stats.inherited), "inherited")
			emit(float64(a.stats.relCommit), "released")
		})
	r.CounterFunc("mca_lock_abort_released_total",
		"Lock entries discarded by ReleaseAll.", func() float64 {
			return float64(gatherAggregate().stats.relAbort)
		})
	r.GaugeFunc("mca_lock_held_entries",
		"Lock entries currently held, across all live managers.", func() float64 {
			a := gatherAggregate()
			var n uint64
			for _, e := range a.shardEntries {
				n += e
			}
			return float64(n)
		})
	r.GaugeFunc("mca_lock_waiters",
		"Acquire calls currently parked, across all live managers.", func() float64 {
			a := gatherAggregate()
			var n uint64
			for _, e := range a.shardWaiters {
				n += e
			}
			return float64(n)
		})
	r.GaugeVecFunc("mca_lock_shard_entries",
		"Held lock entries by lock-table shard index (non-empty shards only).",
		[]string{"shard"}, func(emit metrics.Emit) {
			a := gatherAggregate()
			for i, e := range a.shardEntries {
				if e != 0 {
					emit(float64(e), strconv.Itoa(i))
				}
			}
		})
}
