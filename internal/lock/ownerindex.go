package lock

import (
	"sync"

	"mca/internal/ids"
)

// ownerIndexStripes is the stripe width of the owner index. Owners hash
// onto stripes independently of the object→shard mapping; 64 keeps
// stripe collisions rare at high concurrency while staying cheap to
// initialise.
const ownerIndexStripes = 64

// ownerIndex maps each action to the objects it holds at least one lock
// on, so ReleaseAll, CommitTransfer and HeldObjects visit only the
// shards that actually contain the owner's locks instead of sweeping
// the whole table. Additions happen while the object's shard mutex is
// held (stripe mutex nested inside); the release paths claim an owner's
// whole set at once with take.
type ownerIndex struct {
	stripes [ownerIndexStripes]ownerStripe
}

type ownerStripe struct {
	mu   sync.Mutex
	held map[ids.ActionID]*ownerRecord
	// free is a one-slot pool: take recycles the claimed record here and
	// the stripe's next new owner reuses it, so the acquire/release
	// steady state allocates nothing.
	free *ownerRecord
}

// ownerRecord is one owner's held-object list. The list starts in the
// record's inline array, so an owner's first several locks cost a single
// allocation for the record itself and no map rewrites on growth.
type ownerRecord struct {
	objs   []ids.ObjectID
	inline [8]ids.ObjectID
}

func (ix *ownerIndex) init() {
	for i := range ix.stripes {
		ix.stripes[i].held = make(map[ids.ActionID]*ownerRecord)
	}
}

func (ix *ownerIndex) stripe(owner ids.ActionID) *ownerStripe {
	return &ix.stripes[mix64(uint64(owner))&(ownerIndexStripes-1)]
}

// add records that owner holds a lock on obj. Idempotent: the held list
// carries each object at most once.
func (ix *ownerIndex) add(owner ids.ActionID, obj ids.ObjectID) {
	st := ix.stripe(owner)
	st.mu.Lock()
	r := st.held[owner]
	if r == nil {
		if r = st.free; r != nil {
			st.free = nil
		} else {
			r = &ownerRecord{}
			r.objs = r.inline[:0]
		}
		st.held[owner] = r
	}
	for _, o := range r.objs {
		if o == obj {
			st.mu.Unlock()
			return
		}
	}
	r.objs = append(r.objs, obj)
	st.mu.Unlock()
}

// take removes the owner's whole held-object list in one stripe
// operation, appending it to buf (typically a stack array sliced to
// zero length) and recycling the record through the stripe's pool. The
// release paths call take, then clear the owner's entries shard by
// shard.
func (ix *ownerIndex) take(owner ids.ActionID, buf []ids.ObjectID) []ids.ObjectID {
	st := ix.stripe(owner)
	st.mu.Lock()
	r := st.held[owner]
	if r == nil {
		st.mu.Unlock()
		return nil
	}
	delete(st.held, owner)
	out := append(buf, r.objs...)
	r.objs = r.inline[:0]
	st.free = r
	st.mu.Unlock()
	return out
}

// objects returns a copy of the owner's held-object list, in no
// particular order.
func (ix *ownerIndex) objects(owner ids.ActionID) []ids.ObjectID {
	st := ix.stripe(owner)
	st.mu.Lock()
	defer st.mu.Unlock()
	r := st.held[owner]
	if r == nil || len(r.objs) == 0 {
		return nil
	}
	return append([]ids.ObjectID(nil), r.objs...)
}

// contains reports whether the index records owner holding obj, for the
// invariants checker.
func (ix *ownerIndex) contains(owner ids.ActionID, obj ids.ObjectID) bool {
	st := ix.stripe(owner)
	st.mu.Lock()
	defer st.mu.Unlock()
	r := st.held[owner]
	if r == nil {
		return false
	}
	for _, o := range r.objs {
		if o == obj {
			return true
		}
	}
	return false
}

// ownerObjectPair is one (owner, object) index record, snapshotted by
// the quiescent whole-table invariants checker.
type ownerObjectPair struct {
	owner ids.ActionID
	obj   ids.ObjectID
}

// snapshot copies every (owner, object) record, one stripe at a time.
// Only meaningful at quiescence; used by the invariants build.
func (ix *ownerIndex) snapshot() []ownerObjectPair {
	var out []ownerObjectPair
	for i := range ix.stripes {
		st := &ix.stripes[i]
		st.mu.Lock()
		for owner, r := range st.held {
			for _, o := range r.objs {
				out = append(out, ownerObjectPair{owner: owner, obj: o})
			}
		}
		st.mu.Unlock()
	}
	return out
}
