//go:build invariants

// Tests of CommitTransfer's closest-ancestor-holding-colour resolution
// (paper §5.2 commit rule; figs 14–15 n-level independent action shape),
// run only under the invariants build tag so every mutation is checked
// against the lock-table invariants as the transfers happen.
package lock

import (
	"testing"

	"mca/internal/colour"
	"mca/internal/ids"
)

// chainAncestry models a straight ancestor chain a1 → a2 → … → aN, the
// n-level nesting of figs 14–15: smaller IDs are ancestors of larger
// ones.
var chainAncestry = AncestryFunc(func(a, b ids.ActionID) bool { return a <= b })

// chainHeir builds a Heir resolving, per colour, the closest strict
// ancestor of owner whose colour set (per the holds table) contains the
// colour — the same walk Action.heir performs on the action tree.
func chainHeir(owner ids.ActionID, holds map[ids.ActionID]colour.Set) Heir {
	return func(c colour.Colour) (ids.ActionID, bool) {
		for anc := owner - 1; anc >= 1; anc-- {
			if holds[anc].Contains(c) {
				return anc, true
			}
		}
		return 0, false
	}
}

func TestInvariantsTagActive(t *testing.T) {
	if !InvariantsEnabled {
		t.Fatal("test file built with invariants tag but InvariantsEnabled is false")
	}
}

// TestCommitTransferSkipsNonHoldingAncestors commits a depth-5 leaf whose
// lock colour is anchored at level 2: levels 3 and 4 do not possess the
// colour, so inheritance must skip them and land on level 2 directly.
func TestCommitTransferSkipsNonHoldingAncestors(t *testing.T) {
	m := NewManager(chainAncestry)
	red := colour.Fresh()
	holds := map[ids.ActionID]colour.Set{
		1: colour.NewSet(colour.Fresh()),
		2: colour.Singleton(red),
		3: colour.NewSet(colour.Fresh()),
		4: colour.NewSet(colour.Fresh()),
		5: colour.Singleton(red),
	}
	obj := ids.NewObjectID()
	if err := m.TryAcquire(Request{Object: obj, Owner: 5, Colour: red, Mode: Write}); err != nil {
		t.Fatalf("leaf acquire: %v", err)
	}

	released := m.CommitTransfer(5, chainHeir(5, holds))
	if len(released) != 0 {
		t.Errorf("commit released %v; want inheritance, no release", released)
	}
	if !m.Holds(2, obj, Write, red) {
		t.Errorf("level 2 (closest holder of %v) did not inherit the write lock: %v", red, m.HoldersOf(obj))
	}
	for _, skipped := range []ids.ActionID{3, 4, 5} {
		if got := m.HeldObjects(skipped); len(got) != 0 {
			t.Errorf("a%d holds %v after commit; want nothing", skipped, got)
		}
	}
}

// TestCommitTransferPerColourHeirs gives the leaf two colours anchored at
// different depths; each lock must travel to its own colour's closest
// holder in one CommitTransfer call.
func TestCommitTransferPerColourHeirs(t *testing.T) {
	m := NewManager(chainAncestry)
	red, blue := colour.Fresh(), colour.Fresh()
	holds := map[ids.ActionID]colour.Set{
		1: colour.Singleton(red),
		2: colour.Singleton(blue),
		3: colour.NewSet(red, blue),
	}
	objR, objB := ids.NewObjectID(), ids.NewObjectID()
	if err := m.TryAcquire(Request{Object: objR, Owner: 3, Colour: red, Mode: Write}); err != nil {
		t.Fatalf("red acquire: %v", err)
	}
	if err := m.TryAcquire(Request{Object: objB, Owner: 3, Colour: blue, Mode: Read}); err != nil {
		t.Fatalf("blue acquire: %v", err)
	}

	if released := m.CommitTransfer(3, chainHeir(3, holds)); len(released) != 0 {
		t.Errorf("commit released %v; want both colours inherited", released)
	}
	if !m.Holds(1, objR, Write, red) {
		t.Errorf("red write lock not inherited by a1: %v", m.HoldersOf(objR))
	}
	if !m.Holds(2, objB, Read, blue) {
		t.Errorf("blue read lock not inherited by a2: %v", m.HoldersOf(objB))
	}
}

// TestCommitTransferReleasesWithoutHeir commits the outermost holder of a
// colour: no ancestor possesses it, so the lock is released outright and
// the object is reported for permanence bookkeeping.
func TestCommitTransferReleasesWithoutHeir(t *testing.T) {
	m := NewManager(chainAncestry)
	red := colour.Fresh()
	holds := map[ids.ActionID]colour.Set{
		1: colour.NewSet(colour.Fresh()),
		2: colour.Singleton(red),
	}
	obj := ids.NewObjectID()
	if err := m.TryAcquire(Request{Object: obj, Owner: 2, Colour: red, Mode: Write}); err != nil {
		t.Fatalf("acquire: %v", err)
	}

	released := m.CommitTransfer(2, chainHeir(2, holds))
	if len(released) != 1 || released[0] != obj {
		t.Errorf("released = %v; want [%v]", released, obj)
	}
	if got := m.HoldersOf(obj); len(got) != 0 {
		t.Errorf("object still locked after outermost commit: %v", got)
	}
}

// TestAssertHeirRejectsNonAncestor feeds CommitTransfer a heir that is
// not an ancestor of the committing owner; the invariant layer must
// panic rather than let locks travel sideways in the tree.
func TestAssertHeirRejectsNonAncestor(t *testing.T) {
	m := NewManager(chainAncestry)
	red := colour.Fresh()
	obj := ids.NewObjectID()
	if err := m.TryAcquire(Request{Object: obj, Owner: 3, Colour: red, Mode: Write}); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CommitTransfer with non-ancestor heir did not panic under invariants")
		}
	}()
	m.CommitTransfer(3, func(colour.Colour) (ids.ActionID, bool) { return 7, true })
}

// TestAssertHeirRejectsSelf feeds CommitTransfer a heir equal to the
// committing owner, which would make the commit a silent no-op loop.
func TestAssertHeirRejectsSelf(t *testing.T) {
	m := NewManager(chainAncestry)
	red := colour.Fresh()
	obj := ids.NewObjectID()
	if err := m.TryAcquire(Request{Object: obj, Owner: 2, Colour: red, Mode: Write}); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CommitTransfer with self heir did not panic under invariants")
		}
	}()
	m.CommitTransfer(2, func(colour.Colour) (ids.ActionID, bool) { return 2, true })
}
