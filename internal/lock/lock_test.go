package lock

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"mca/internal/colour"
	"mca/internal/ids"
)

// tree is a test ancestry oracle over an explicit parent map.
type tree struct {
	mu     sync.Mutex
	parent map[ids.ActionID]ids.ActionID
}

func newTree() *tree {
	return &tree{parent: make(map[ids.ActionID]ids.ActionID)}
}

// node registers a new action under parent (0 for top-level).
func (t *tree) node(parent ids.ActionID) ids.ActionID {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := ids.NewActionID()
	if parent != 0 {
		t.parent[id] = parent
	}
	return id
}

func (t *tree) IsSameOrAncestor(a, b ids.ActionID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for cur := b; cur != 0; cur = t.parent[cur] {
		if cur == a {
			return true
		}
	}
	return false
}

func mustAcquire(t *testing.T, m *Manager, req Request) {
	t.Helper()
	if err := m.TryAcquire(req); err != nil {
		t.Fatalf("TryAcquire(%+v): %v", req, err)
	}
}

func mustConflict(t *testing.T, m *Manager, req Request) {
	t.Helper()
	if err := m.TryAcquire(req); !errors.Is(err, ErrConflict) {
		t.Fatalf("TryAcquire(%+v) = %v, want ErrConflict", req, err)
	}
}

func TestValidation(t *testing.T) {
	tr := newTree()
	m := NewManager(tr)
	a := tr.node(0)
	obj := ids.NewObjectID()
	c := colour.Fresh()

	tests := []struct {
		name string
		req  Request
	}{
		{"zero object", Request{Owner: a, Colour: c, Mode: Read}},
		{"zero owner", Request{Object: obj, Colour: c, Mode: Read}},
		{"zero colour", Request{Object: obj, Owner: a, Mode: Read}},
		{"zero mode", Request{Object: obj, Owner: a, Colour: c}},
		{"unknown mode", Request{Object: obj, Owner: a, Colour: c, Mode: Mode(99)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := m.TryAcquire(tt.req); !errors.Is(err, ErrInvalidRequest) {
				t.Fatalf("TryAcquire = %v, want ErrInvalidRequest", err)
			}
			if err := m.Acquire(context.Background(), tt.req); !errors.Is(err, ErrInvalidRequest) {
				t.Fatalf("Acquire = %v, want ErrInvalidRequest", err)
			}
		})
	}
}

func TestSharedReads(t *testing.T) {
	tr := newTree()
	m := NewManager(tr)
	obj := ids.NewObjectID()
	c1, c2 := colour.Fresh(), colour.Fresh()

	a := tr.node(0)
	b := tr.node(0)
	mustAcquire(t, m, Request{Object: obj, Owner: a, Colour: c1, Mode: Read})
	// Unrelated action, even a different colour, shares a read lock.
	mustAcquire(t, m, Request{Object: obj, Owner: b, Colour: c2, Mode: Read})
	if got := len(m.HoldersOf(obj)); got != 2 {
		t.Fatalf("holders = %d, want 2", got)
	}
}

func TestWriteExcludesStrangers(t *testing.T) {
	tr := newTree()
	m := NewManager(tr)
	obj := ids.NewObjectID()
	c := colour.Fresh()

	a := tr.node(0)
	b := tr.node(0)
	mustAcquire(t, m, Request{Object: obj, Owner: a, Colour: c, Mode: Write})

	mustConflict(t, m, Request{Object: obj, Owner: b, Colour: c, Mode: Write})
	mustConflict(t, m, Request{Object: obj, Owner: b, Colour: c, Mode: Read})
	mustConflict(t, m, Request{Object: obj, Owner: b, Colour: c, Mode: ExclusiveRead})
}

func TestReadExcludesWriters(t *testing.T) {
	tr := newTree()
	m := NewManager(tr)
	obj := ids.NewObjectID()
	c := colour.Fresh()

	a := tr.node(0)
	b := tr.node(0)
	mustAcquire(t, m, Request{Object: obj, Owner: a, Colour: c, Mode: Read})
	mustConflict(t, m, Request{Object: obj, Owner: b, Colour: c, Mode: Write})
	// Exclusive read also conflicts with a stranger's read.
	mustConflict(t, m, Request{Object: obj, Owner: b, Colour: c, Mode: ExclusiveRead})
}

func TestExclusiveReadExcludesAllStrangers(t *testing.T) {
	tr := newTree()
	m := NewManager(tr)
	obj := ids.NewObjectID()
	c := colour.Fresh()

	a := tr.node(0)
	b := tr.node(0)
	mustAcquire(t, m, Request{Object: obj, Owner: a, Colour: c, Mode: ExclusiveRead})
	mustConflict(t, m, Request{Object: obj, Owner: b, Colour: c, Mode: Read})
	mustConflict(t, m, Request{Object: obj, Owner: b, Colour: c, Mode: Write})
	mustConflict(t, m, Request{Object: obj, Owner: b, Colour: c, Mode: ExclusiveRead})
}

func TestNestedChildMayLockOverAncestor(t *testing.T) {
	// Moss rule: holders that are ancestors of the requester do not
	// block it (same colour).
	tr := newTree()
	m := NewManager(tr)
	obj := ids.NewObjectID()
	c := colour.Fresh()

	parent := tr.node(0)
	child := tr.node(parent)
	grandchild := tr.node(child)

	mustAcquire(t, m, Request{Object: obj, Owner: parent, Colour: c, Mode: Write})
	mustAcquire(t, m, Request{Object: obj, Owner: child, Colour: c, Mode: Write})
	mustAcquire(t, m, Request{Object: obj, Owner: grandchild, Colour: c, Mode: Read})
}

func TestWriteColourRule(t *testing.T) {
	// Paper §5.2: if an ancestor holds a write lock of colour a, a
	// descendant may only write-lock that object using colour a.
	tr := newTree()
	m := NewManager(tr)
	obj := ids.NewObjectID()
	red, blue := colour.Fresh(), colour.Fresh()

	parent := tr.node(0)
	child := tr.node(parent)

	mustAcquire(t, m, Request{Object: obj, Owner: parent, Colour: red, Mode: Write})

	// Same colour: fine.
	mustAcquire(t, m, Request{Object: obj, Owner: child, Colour: red, Mode: Write})

	// Different colour: permanently blocked, reported as deadlock.
	if err := m.TryAcquire(Request{Object: obj, Owner: child, Colour: blue, Mode: Write}); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("cross-colour write over ancestor write = %v, want ErrDeadlock", err)
	}
	if err := m.Acquire(context.Background(), Request{Object: obj, Owner: child, Colour: blue, Mode: Write}); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("blocking cross-colour write = %v, want ErrDeadlock", err)
	}
}

func TestSelfCrossColourWriteIsDeadlock(t *testing.T) {
	// An action holding a red write lock cannot also write-lock the
	// object in blue: its own lock can never be released first.
	tr := newTree()
	m := NewManager(tr)
	obj := ids.NewObjectID()
	red, blue := colour.Fresh(), colour.Fresh()
	a := tr.node(0)

	mustAcquire(t, m, Request{Object: obj, Owner: a, Colour: red, Mode: Write})
	if err := m.TryAcquire(Request{Object: obj, Owner: a, Colour: blue, Mode: Write}); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("self cross-colour write = %v, want ErrDeadlock", err)
	}
}

func TestFig11LockPattern(t *testing.T) {
	// The serializing-action colour scheme of paper §5.3: an action
	// holds a red write lock and a blue exclusive-read lock on the
	// same object simultaneously; a later sibling (red,blue) acquires
	// a blue write lock once the blue exclusive read has been
	// inherited by their common ancestor.
	tr := newTree()
	m := NewManager(tr)
	obj := ids.NewObjectID()
	red, blue := colour.Fresh(), colour.Fresh()

	a := tr.node(0) // serializing container, blue
	b := tr.node(a) // constituent, red+blue

	// B write-locks in red and exclusive-read-locks in blue.
	mustAcquire(t, m, Request{Object: obj, Owner: b, Colour: red, Mode: Write})
	mustAcquire(t, m, Request{Object: obj, Owner: b, Colour: blue, Mode: ExclusiveRead})

	// B commits: red released (no red ancestor), blue inherited by A.
	released := m.CommitTransfer(b, func(c colour.Colour) (ids.ActionID, bool) {
		if c == blue {
			return a, true
		}
		return 0, false
	})
	if len(released) != 1 || released[0] != obj {
		t.Fatalf("released = %v, want [%v]", released, obj)
	}
	if !m.Holds(a, obj, ExclusiveRead, blue) {
		t.Fatal("A must inherit B's blue exclusive-read lock")
	}
	if m.Holds(b, obj, Write, red) {
		t.Fatal("B's red write lock must be released at commit")
	}

	// C, a later constituent nested in A, acquires a blue write lock
	// over A's exclusive read (holder is ancestor; no write locks).
	c := tr.node(a)
	mustAcquire(t, m, Request{Object: obj, Owner: c, Colour: blue, Mode: Write})

	// A stranger still cannot touch the object.
	stranger := tr.node(0)
	mustConflict(t, m, Request{Object: obj, Owner: stranger, Colour: red, Mode: Read})
}

func TestCommitTransferMergesDuplicateEntries(t *testing.T) {
	tr := newTree()
	m := NewManager(tr)
	obj := ids.NewObjectID()
	c := colour.Fresh()

	parent := tr.node(0)
	child := tr.node(parent)

	mustAcquire(t, m, Request{Object: obj, Owner: parent, Colour: c, Mode: Write})
	mustAcquire(t, m, Request{Object: obj, Owner: child, Colour: c, Mode: Write})

	m.CommitTransfer(child, func(colour.Colour) (ids.ActionID, bool) { return parent, true })

	holders := m.HoldersOf(obj)
	if len(holders) != 1 {
		t.Fatalf("holders after merge = %v, want a single entry", holders)
	}
	if !m.Holds(parent, obj, Write, c) {
		t.Fatal("parent must hold the merged write lock")
	}
}

func TestAbortDiscardsOnlyOwnLocks(t *testing.T) {
	tr := newTree()
	m := NewManager(tr)
	obj := ids.NewObjectID()
	c := colour.Fresh()

	parent := tr.node(0)
	child := tr.node(parent)

	mustAcquire(t, m, Request{Object: obj, Owner: parent, Colour: c, Mode: Write})
	mustAcquire(t, m, Request{Object: obj, Owner: child, Colour: c, Mode: Write})

	m.ReleaseAll(child)

	if !m.Holds(parent, obj, Write, c) {
		t.Fatal("parent must keep its own lock after child abort")
	}
	if m.Holds(child, obj, Write, c) {
		t.Fatal("child's lock must be discarded")
	}
}

func TestBlockingAcquireWakesOnRelease(t *testing.T) {
	tr := newTree()
	m := NewManager(tr)
	obj := ids.NewObjectID()
	c := colour.Fresh()

	a := tr.node(0)
	b := tr.node(0)
	mustAcquire(t, m, Request{Object: obj, Owner: a, Colour: c, Mode: Write})

	got := make(chan error, 1)
	go func() {
		got <- m.Acquire(context.Background(), Request{Object: obj, Owner: b, Colour: c, Mode: Write})
	}()

	select {
	case err := <-got:
		t.Fatalf("acquire finished before release: %v", err)
	case <-time.After(20 * time.Millisecond):
	}

	m.ReleaseAll(a)
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("acquire after release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("acquire did not wake after release")
	}
	if !m.Holds(b, obj, Write, c) {
		t.Fatal("b must hold the lock after waking")
	}
}

func TestBlockingAcquireWakesOnCommitTransferRelease(t *testing.T) {
	tr := newTree()
	m := NewManager(tr)
	obj := ids.NewObjectID()
	c := colour.Fresh()

	a := tr.node(0)
	b := tr.node(0)
	mustAcquire(t, m, Request{Object: obj, Owner: a, Colour: c, Mode: Write})

	got := make(chan error, 1)
	go func() {
		got <- m.Acquire(context.Background(), Request{Object: obj, Owner: b, Colour: c, Mode: Write})
	}()
	time.Sleep(10 * time.Millisecond)

	// Commit with no heir: the lock is released outright.
	m.CommitTransfer(a, func(colour.Colour) (ids.ActionID, bool) { return 0, false })

	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("acquire after commit-release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("acquire did not wake after commit transfer")
	}
}

func TestContextCancellationUnblocks(t *testing.T) {
	tr := newTree()
	m := NewManager(tr)
	obj := ids.NewObjectID()
	c := colour.Fresh()

	a := tr.node(0)
	b := tr.node(0)
	mustAcquire(t, m, Request{Object: obj, Owner: a, Colour: c, Mode: Write})

	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		got <- m.Acquire(ctx, Request{Object: obj, Owner: b, Colour: c, Mode: Write})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()

	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("acquire = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("acquire did not observe cancellation")
	}
}

func TestMaxWaitTimeout(t *testing.T) {
	tr := newTree()
	m := NewManager(tr, WithMaxWait(30*time.Millisecond))
	obj := ids.NewObjectID()
	c := colour.Fresh()

	a := tr.node(0)
	b := tr.node(0)
	mustAcquire(t, m, Request{Object: obj, Owner: a, Colour: c, Mode: Write})

	err := m.Acquire(context.Background(), Request{Object: obj, Owner: b, Colour: c, Mode: Write})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("acquire = %v, want ErrTimeout", err)
	}
}

func TestDeadlockCycleDetected(t *testing.T) {
	// Classic two-action deadlock: a holds X wants Y, b holds Y wants
	// X. Exactly one of the two waits must fail with ErrDeadlock.
	tr := newTree()
	m := NewManager(tr)
	objX, objY := ids.NewObjectID(), ids.NewObjectID()
	c := colour.Fresh()

	a := tr.node(0)
	b := tr.node(0)
	mustAcquire(t, m, Request{Object: objX, Owner: a, Colour: c, Mode: Write})
	mustAcquire(t, m, Request{Object: objY, Owner: b, Colour: c, Mode: Write})

	errs := make(chan error, 2)
	go func() {
		err := m.Acquire(context.Background(), Request{Object: objY, Owner: a, Colour: c, Mode: Write})
		if err != nil {
			m.ReleaseAll(a) // simulate the victim aborting
		}
		errs <- err
	}()
	go func() {
		err := m.Acquire(context.Background(), Request{Object: objX, Owner: b, Colour: c, Mode: Write})
		if err != nil {
			m.ReleaseAll(b)
		}
		errs <- err
	}()

	var deadlocks, successes int
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			switch {
			case err == nil:
				successes++
			case errors.Is(err, ErrDeadlock):
				deadlocks++
			default:
				t.Fatalf("unexpected error %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("deadlock was not detected")
		}
	}
	if deadlocks < 1 {
		t.Fatalf("deadlocks = %d, want at least 1 (successes = %d)", deadlocks, successes)
	}
}

func TestReacquireHeldLockIsFree(t *testing.T) {
	tr := newTree()
	m := NewManager(tr)
	obj := ids.NewObjectID()
	c := colour.Fresh()
	a := tr.node(0)

	for i := 0; i < 3; i++ {
		mustAcquire(t, m, Request{Object: obj, Owner: a, Colour: c, Mode: Write})
	}
	if got := len(m.HoldersOf(obj)); got != 1 {
		t.Fatalf("re-acquisition duplicated entries: %d", got)
	}
}

func TestLockUpgradeReadToWrite(t *testing.T) {
	tr := newTree()
	m := NewManager(tr)
	obj := ids.NewObjectID()
	c := colour.Fresh()

	a := tr.node(0)
	mustAcquire(t, m, Request{Object: obj, Owner: a, Colour: c, Mode: Read})
	// Sole reader upgrades to write.
	mustAcquire(t, m, Request{Object: obj, Owner: a, Colour: c, Mode: Write})

	// With another reader present the upgrade must conflict.
	obj2 := ids.NewObjectID()
	b := tr.node(0)
	mustAcquire(t, m, Request{Object: obj2, Owner: a, Colour: c, Mode: Read})
	mustAcquire(t, m, Request{Object: obj2, Owner: b, Colour: c, Mode: Read})
	mustConflict(t, m, Request{Object: obj2, Owner: a, Colour: c, Mode: Write})
}

func TestExclusiveReadToWriteConversionSubjectToColourRules(t *testing.T) {
	// §5.2: in a coloured system, converting an exclusive read into a
	// write is only possible subject to the write rules.
	tr := newTree()
	m := NewManager(tr)
	obj := ids.NewObjectID()
	red, blue := colour.Fresh(), colour.Fresh()
	a := tr.node(0)

	mustAcquire(t, m, Request{Object: obj, Owner: a, Colour: blue, Mode: ExclusiveRead})
	// Write in another colour over own exclusive read: allowed (no
	// write locks present, holder is self).
	mustAcquire(t, m, Request{Object: obj, Owner: a, Colour: red, Mode: Write})
	// But now a write in blue is impossible: a red write lock exists.
	if err := m.TryAcquire(Request{Object: obj, Owner: a, Colour: blue, Mode: Write}); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("blue write over own red write = %v, want ErrDeadlock", err)
	}
}

func TestHeldObjectsAndLockCount(t *testing.T) {
	tr := newTree()
	m := NewManager(tr)
	c := colour.Fresh()
	a := tr.node(0)

	objs := []ids.ObjectID{ids.NewObjectID(), ids.NewObjectID(), ids.NewObjectID()}
	for _, o := range objs {
		mustAcquire(t, m, Request{Object: o, Owner: a, Colour: c, Mode: Read})
	}
	if got := len(m.HeldObjects(a)); got != len(objs) {
		t.Fatalf("HeldObjects = %d, want %d", got, len(objs))
	}
	if got := m.LockCount(); got != len(objs) {
		t.Fatalf("LockCount = %d, want %d", got, len(objs))
	}
	m.ReleaseAll(a)
	if got := m.LockCount(); got != 0 {
		t.Fatalf("LockCount after release = %d, want 0", got)
	}
}

func TestManyWaitersAllEventuallyAcquire(t *testing.T) {
	tr := newTree()
	m := NewManager(tr)
	obj := ids.NewObjectID()
	c := colour.Fresh()

	first := tr.node(0)
	mustAcquire(t, m, Request{Object: obj, Owner: first, Colour: c, Mode: Write})

	const waiters = 16
	var wg sync.WaitGroup
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := tr.node(0)
			if err := m.Acquire(context.Background(), Request{Object: obj, Owner: w, Colour: c, Mode: Write}); err != nil {
				errs <- err
				return
			}
			m.ReleaseAll(w)
		}()
	}
	time.Sleep(10 * time.Millisecond)
	m.ReleaseAll(first)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("waiter failed: %v", err)
	}
	if got := m.LockCount(); got != 0 {
		t.Fatalf("LockCount = %d, want 0 after everyone released", got)
	}
}

func TestModeString(t *testing.T) {
	tests := []struct {
		mode Mode
		want string
	}{
		{Read, "read"},
		{Write, "write"},
		{ExclusiveRead, "xread"},
		{Mode(42), "mode(42)"},
	}
	for _, tt := range tests {
		if got := tt.mode.String(); got != tt.want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(tt.mode), got, tt.want)
		}
	}
}
