package lock

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"mca/internal/colour"
	"mca/internal/ids"
)

// The oracle tests drive randomized acquire/release/commit-transfer
// schedules through both the striped Manager and the retained
// single-mutex refManager and assert identical grant/deny/deadlock
// outcomes and identical resulting lock tables after every step. The
// non-blocking surface is used because its outcomes are deterministic
// functions of the table state; the blocking path shares evaluate/grant
// with it and is exercised separately under -race.

// oracleWorld is one paired world: both managers, a fixed action tree,
// a colour palette and an object set.
type oracleWorld struct {
	t    *testing.T
	m    *Manager
	ref  *refManager
	tr   *tree
	acts []ids.ActionID
	// parentOf maps an actor index to its parent's index for commit
	// heir resolution; absent means top-level (no heir).
	parentOf map[int]int
	cs       []colour.Colour
	objs     []ids.ObjectID
}

func newOracleWorld(t *testing.T, shards int) *oracleWorld {
	tr := newTree()
	// A small fixed tree: 0,1 top-level; 2,3 children of 0; 4 child of
	// 2; 5 child of 1.
	acts := make([]ids.ActionID, 6)
	acts[0] = tr.node(0)
	acts[1] = tr.node(0)
	acts[2] = tr.node(acts[0])
	acts[3] = tr.node(acts[0])
	acts[4] = tr.node(acts[2])
	acts[5] = tr.node(acts[1])

	cs := make([]colour.Colour, 3)
	for i := range cs {
		cs[i] = colour.Fresh()
	}
	objs := make([]ids.ObjectID, 8)
	for i := range objs {
		objs[i] = ids.NewObjectID()
	}
	var opts []Option
	if shards > 0 {
		opts = append(opts, WithShards(shards))
	}
	return &oracleWorld{
		t:        t,
		m:        NewManager(tr, opts...),
		ref:      newRefManager(tr),
		tr:       tr,
		acts:     acts,
		parentOf: map[int]int{2: 0, 3: 0, 4: 2, 5: 1},
		cs:       cs,
		objs:     objs,
	}
}

// errClass collapses an error to its sentinel for comparison.
func errClass(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrConflict):
		return "conflict"
	case errors.Is(err, ErrDeadlock):
		return "deadlock"
	case errors.Is(err, ErrInvalidRequest):
		return "invalid"
	default:
		return err.Error()
	}
}

func sortedObjects(objs []ids.ObjectID) []ids.ObjectID {
	out := append([]ids.ObjectID(nil), objs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func entrySet(entries []Entry) map[Entry]struct{} {
	set := make(map[Entry]struct{}, len(entries))
	for _, e := range entries {
		set[e] = struct{}{}
	}
	return set
}

// step applies one randomized operation to both managers and compares
// the outcomes. It reports a description of any divergence.
func (w *oracleWorld) step(rng *rand.Rand) error {
	actor := rng.Intn(len(w.acts))
	switch rng.Intn(6) {
	case 0, 1, 2, 3: // acquire (most common)
		req := Request{
			Object: w.objs[rng.Intn(len(w.objs))],
			Owner:  w.acts[actor],
			Colour: w.cs[rng.Intn(len(w.cs))],
			Mode:   []Mode{Read, Write, ExclusiveRead}[rng.Intn(3)],
		}
		got, want := errClass(w.m.TryAcquire(req)), errClass(w.ref.TryAcquire(req))
		if got != want {
			return fmt.Errorf("TryAcquire(%+v): sharded=%s reference=%s", req, got, want)
		}
	case 4:
		w.m.ReleaseAll(w.acts[actor])
		w.ref.ReleaseAll(w.acts[actor])
	case 5:
		owner := w.acts[actor]
		parentIdx, hasParent := w.parentOf[actor]
		heir := func(colour.Colour) (ids.ActionID, bool) {
			if hasParent {
				return w.acts[parentIdx], true
			}
			return 0, false
		}
		got := sortedObjects(w.m.CommitTransfer(owner, heir))
		want := sortedObjects(w.ref.CommitTransfer(owner, heir))
		if len(got) != len(want) {
			return fmt.Errorf("CommitTransfer(%v): released %v vs reference %v", owner, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("CommitTransfer(%v): released %v vs reference %v", owner, got, want)
			}
		}
	}
	return w.compare()
}

// compare asserts both managers expose identical lock tables. Entry
// order within an object is not part of the contract (the reference
// sweeps its flat map in random order), so entries compare as sets.
func (w *oracleWorld) compare() error {
	for _, o := range w.objs {
		got, want := entrySet(w.m.HoldersOf(o)), entrySet(w.ref.HoldersOf(o))
		if len(got) != len(want) {
			return fmt.Errorf("HoldersOf(%v): sharded %v vs reference %v", o, got, want)
		}
		for e := range want {
			if _, ok := got[e]; !ok {
				return fmt.Errorf("HoldersOf(%v): sharded missing %+v", o, e)
			}
		}
	}
	for i, a := range w.acts {
		got := sortedObjects(w.m.HeldObjects(a))
		want := sortedObjects(w.ref.HeldObjects(a))
		if len(got) != len(want) {
			return fmt.Errorf("HeldObjects(actor %d): sharded %v vs reference %v", i, got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				return fmt.Errorf("HeldObjects(actor %d): sharded %v vs reference %v", i, got, want)
			}
		}
	}
	if got, want := w.m.LockCount(), w.ref.LockCount(); got != want {
		return fmt.Errorf("LockCount: sharded %d vs reference %d", got, want)
	}
	return nil
}

// TestOracleSequentialSchedules replays randomized sequential schedules
// through both managers at several stripe widths, including the
// degenerate single-shard layout.
func TestOracleSequentialSchedules(t *testing.T) {
	for _, shards := range []int{0, 1, 4} { // 0 = default width
		name := fmt.Sprintf("shards=%d", shards)
		if shards == 0 {
			name = "shards=default"
		}
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				w := newOracleWorld(t, shards)
				rng := rand.New(rand.NewSource(seed))
				for s := 0; s < 200; s++ {
					if err := w.step(rng); err != nil {
						t.Logf("seed=%d step=%d: %v", seed, s, err)
						return false
					}
				}
				w.m.checkTableInvariants()
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOracleConcurrentSchedules runs the differential schedule from many
// goroutines. Each step is serialized across the pair (so the two
// managers see identical linearizations and must produce identical
// outcomes) but successive steps hop between OS threads, exercising the
// striped table's cross-goroutine handoffs under -race.
func TestOracleConcurrentSchedules(t *testing.T) {
	w := newOracleWorld(t, 0)
	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		fail error
	)
	const goroutines = 8
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for s := 0; s < 300; s++ {
				mu.Lock()
				if fail == nil {
					if err := w.step(rng); err != nil {
						fail = fmt.Errorf("goroutine %d step %d: %w", g, s, err)
					}
				}
				done := fail != nil
				mu.Unlock()
				if done {
					return
				}
			}
		}()
	}
	wg.Wait()
	if fail != nil {
		t.Fatal(fail)
	}
	// Drain both worlds and confirm they agree on empty.
	for _, a := range w.acts {
		w.m.ReleaseAll(a)
		w.ref.ReleaseAll(a)
	}
	if err := w.compare(); err != nil {
		t.Fatal(err)
	}
	if n := w.m.LockCount(); n != 0 {
		t.Fatalf("LockCount after drain = %d, want 0", n)
	}
	w.m.checkTableInvariants()
}
