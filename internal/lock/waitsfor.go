package lock

import (
	"sync"

	"mca/internal/ids"
)

// waitsFor is the cross-shard deadlock registry: it records, for every
// blocked owner, the owners currently blocking it, and answers cycle
// queries over the family-level waits-for graph. It has its own mutex so
// blocking and unblocking never touch a lock-table shard, and a shard
// mutex is never held while it is taken.
type waitsFor struct {
	// family resolves an action to its top-level root; deadlock
	// detection runs between families (see FamilyResolver).
	family func(ids.ActionID) ids.ActionID

	mu      sync.Mutex
	waiting map[ids.ActionID]map[ids.ActionID]struct{}
}

func (wf *waitsFor) init(family func(ids.ActionID) ids.ActionID) {
	wf.family = family
	wf.waiting = make(map[ids.ActionID]map[ids.ActionID]struct{})
}

// block registers owner's current blocker set (replacing any previous
// one) and reports whether the waits-for graph now contains a cycle
// through owner's family. On a cycle the edges are removed again: the
// caller fails with ErrDeadlock and stops waiting. Registration and
// check are atomic, so of two requests completing a cycle concurrently
// at least the later one observes it.
func (wf *waitsFor) block(owner ids.ActionID, blockers map[ids.ActionID]struct{}) bool {
	wf.mu.Lock()
	defer wf.mu.Unlock()
	wf.waiting[owner] = blockers
	if wf.cycleLocked(owner) {
		delete(wf.waiting, owner)
		return true
	}
	return false
}

// clear removes owner's waits-for edges (the wait ended: granted,
// cancelled, timed out or declared a deadlock victim).
func (wf *waitsFor) clear(owner ids.ActionID) {
	wf.mu.Lock()
	defer wf.mu.Unlock()
	delete(wf.waiting, owner)
}

// cycleLocked reports whether the family-level waits-for graph, built
// from the currently blocked requests, contains a cycle through start's
// family. A blocked action blocks its whole family (locks release only
// at family completion), so edges run family(waiter) -> family(holder);
// same-family waits are excluded (they resolve by commit-time lock
// inheritance). Callers hold wf.mu.
func (wf *waitsFor) cycleLocked(start ids.ActionID) bool {
	// Build the family graph from the individual waits.
	edges := make(map[ids.ActionID]map[ids.ActionID]struct{}, len(wf.waiting))
	for waiter, blockers := range wf.waiting {
		f := wf.family(waiter)
		for b := range blockers {
			bf := wf.family(b)
			if bf == f {
				continue
			}
			if edges[f] == nil {
				edges[f] = make(map[ids.ActionID]struct{})
			}
			edges[f][bf] = struct{}{}
		}
	}

	startFam := wf.family(start)
	seen := make(map[ids.ActionID]struct{})
	var stack []ids.ActionID
	for b := range edges[startFam] {
		stack = append(stack, b)
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == startFam {
			return true
		}
		if _, ok := seen[cur]; ok {
			continue
		}
		seen[cur] = struct{}{}
		for b := range edges[cur] {
			stack = append(stack, b)
		}
	}
	return false
}
