//go:build invariants

package lock

import (
	"fmt"

	"mca/internal/colour"
	"mca/internal/ids"
)

// InvariantsEnabled reports whether the build carries the invariants tag.
// Tests assert on it to make sure they run under the intended build.
const InvariantsEnabled = true

// checkShardInvariants asserts the structural invariants of one shard of
// the lock table after a mutation (paper §5.2 grant and commit rules).
// Callers hold s.mu, which makes the check atomic for everything it
// inspects: every invariant is per-object, and an object lives entirely
// within its shard. It panics on the first violation: an invariant
// breach means the manager itself granted or transferred a lock it must
// not have, so there is no meaningful way to continue.
//
// Invariants checked, per object in the shard:
//
//  1. (entry lists may legitimately be empty: drained records are
//     retained for reuse, so there is no non-emptiness invariant);
//  2. no entry has a zero owner, colour.None, or an unknown mode;
//  3. entries are unique (grant collapses duplicates);
//  4. all write locks share a single colour ("an action may only
//     acquire a write lock on that object using colour a");
//  5. every write or exclusive-read holder is ancestry-ordered with
//     every other holder: one of the two is an ancestor (inclusive)
//     of the other. Unrelated actions may only share read locks;
//  6. wait queues are non-empty (empty queues are pruned) and hold no
//     duplicate waiters.
//
// Owner-index consistency is checked by checkTableInvariants only: the
// release paths claim an owner's whole index record up front (take) and
// then clean the shards, so mid-release the index legitimately runs
// ahead of the table and a per-mutation cross-check would race.
func (m *Manager) checkShardInvariants(s *shard) {
	for oid, ol := range s.objects {
		var writeColour colour.Colour
		for i, e := range ol.entries {
			if e.Owner == 0 {
				panic(fmt.Sprintf("lock invariant: object %v entry %d has zero owner", oid, i))
			}
			if !e.Colour.Valid() {
				panic(fmt.Sprintf("lock invariant: object %v entry %d held by %v with colour.None", oid, i, e.Owner))
			}
			switch e.Mode {
			case Read, Write, ExclusiveRead:
			default:
				panic(fmt.Sprintf("lock invariant: object %v entry %d held by %v with invalid mode %d", oid, i, e.Owner, int(e.Mode)))
			}
			for _, prev := range ol.entries[:i] {
				if prev == e {
					panic(fmt.Sprintf("lock invariant: object %v has duplicate entry %+v", oid, e))
				}
			}
			if e.Mode == Write {
				if writeColour == colour.None {
					writeColour = e.Colour
				} else if e.Colour != writeColour {
					panic(fmt.Sprintf("lock invariant: object %v write-locked in two colours (%v and %v)", oid, writeColour, e.Colour))
				}
			}
		}
		for i, e := range ol.entries {
			if e.Mode == Read {
				continue
			}
			for j, other := range ol.entries {
				if i == j || other.Owner == e.Owner {
					continue
				}
				if !m.ancestry.IsSameOrAncestor(e.Owner, other.Owner) &&
					!m.ancestry.IsSameOrAncestor(other.Owner, e.Owner) {
					panic(fmt.Sprintf("lock invariant: object %v %v lock of %v coexists with %v lock of unrelated %v",
						oid, e.Mode, e.Owner, other.Mode, other.Owner))
				}
			}
		}
	}
	for oid, q := range s.waiters {
		if len(q) == 0 {
			panic(fmt.Sprintf("lock invariant: object %v retained with empty wait queue", oid))
		}
		for i, w := range q {
			for _, prev := range q[:i] {
				if prev == w {
					panic(fmt.Sprintf("lock invariant: object %v wait queue holds waiter %v twice", oid, w.owner))
				}
			}
		}
	}
}

// checkTableInvariants walks the whole striped table in shard-index
// order, locking one shard at a time, and re-validates every shard,
// then cross-checks the owner index against the table in both
// directions: every lock entry must be indexed under its owner, and
// every index record must correspond to at least one lock entry. It is
// safe to call only at quiescence (no concurrent mutations) — tests use
// it after workloads complete; per-mutation checking is done by
// checkShardInvariants under the mutated shard's mutex.
func (m *Manager) checkTableInvariants() {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		m.checkShardInvariants(s)
		for oid, ol := range s.objects {
			for _, e := range ol.entries {
				if !m.owners.contains(e.Owner, oid) {
					panic(fmt.Sprintf("lock invariant: object %v entry held by %v missing from the owner index", oid, e.Owner))
				}
			}
		}
		s.mu.Unlock()
	}
	// Stale index records: snapshot the index first, then consult the
	// shards, so no stripe mutex is ever held under a shard mutex.
	for _, p := range m.owners.snapshot() {
		s := m.shardOf(p.obj)
		s.mu.Lock()
		held := false
		if ol := s.objects[p.obj]; ol != nil {
			for _, e := range ol.entries {
				if e.Owner == p.owner {
					held = true
					break
				}
			}
		}
		s.mu.Unlock()
		if !held {
			panic(fmt.Sprintf("lock invariant: owner index records %v holding %v but the table has no such entry", p.owner, p.obj))
		}
	}
}

// assertHeir asserts that a CommitTransfer inheritance is well-formed:
// the heir is a real action distinct from the committing owner and an
// ancestor of it (the paper's commit rule hands locks only up the
// action tree, to the closest ancestor possessing the colour).
func (m *Manager) assertHeir(owner, heir ids.ActionID, c colour.Colour) {
	if heir == 0 {
		panic(fmt.Sprintf("lock invariant: CommitTransfer of %v named zero heir for colour %v", owner, c))
	}
	if heir == owner {
		panic(fmt.Sprintf("lock invariant: CommitTransfer of %v named itself heir for colour %v", owner, c))
	}
	if !m.ancestry.IsSameOrAncestor(heir, owner) {
		panic(fmt.Sprintf("lock invariant: CommitTransfer of %v named non-ancestor %v heir for colour %v", owner, heir, c))
	}
}
