//go:build invariants

package lock

import (
	"fmt"

	"mca/internal/colour"
	"mca/internal/ids"
)

// InvariantsEnabled reports whether the build carries the invariants tag.
// Tests assert on it to make sure they run under the intended build.
const InvariantsEnabled = true

// checkTableInvariants asserts the structural invariants of the lock
// table after a mutation (paper §5.2 grant and commit rules). Callers
// hold m.mu. It panics on the first violation: an invariant breach means
// the manager itself granted or transferred a lock it must not have, so
// there is no meaningful way to continue.
//
// Invariants checked, per object:
//
//  1. the retained entry list is non-empty (empty lists are pruned);
//  2. no entry has a zero owner, colour.None, or an unknown mode;
//  3. entries are unique (grant collapses duplicates);
//  4. all write locks share a single colour ("an action may only
//     acquire a write lock on that object using colour a");
//  5. every write or exclusive-read holder is ancestry-ordered with
//     every other holder: one of the two is an ancestor (inclusive)
//     of the other. Unrelated actions may only share read locks.
func (m *Manager) checkTableInvariants() {
	for oid, ol := range m.objects {
		if len(ol.entries) == 0 {
			panic(fmt.Sprintf("lock invariant: object %v retained with empty entry list", oid))
		}
		var writeColour colour.Colour
		for i, e := range ol.entries {
			if e.Owner == 0 {
				panic(fmt.Sprintf("lock invariant: object %v entry %d has zero owner", oid, i))
			}
			if !e.Colour.Valid() {
				panic(fmt.Sprintf("lock invariant: object %v entry %d held by %v with colour.None", oid, i, e.Owner))
			}
			switch e.Mode {
			case Read, Write, ExclusiveRead:
			default:
				panic(fmt.Sprintf("lock invariant: object %v entry %d held by %v with invalid mode %d", oid, i, e.Owner, int(e.Mode)))
			}
			for _, prev := range ol.entries[:i] {
				if prev == e {
					panic(fmt.Sprintf("lock invariant: object %v has duplicate entry %+v", oid, e))
				}
			}
			if e.Mode == Write {
				if writeColour == colour.None {
					writeColour = e.Colour
				} else if e.Colour != writeColour {
					panic(fmt.Sprintf("lock invariant: object %v write-locked in two colours (%v and %v)", oid, writeColour, e.Colour))
				}
			}
		}
		for i, e := range ol.entries {
			if e.Mode == Read {
				continue
			}
			for j, other := range ol.entries {
				if i == j || other.Owner == e.Owner {
					continue
				}
				if !m.ancestry.IsSameOrAncestor(e.Owner, other.Owner) &&
					!m.ancestry.IsSameOrAncestor(other.Owner, e.Owner) {
					panic(fmt.Sprintf("lock invariant: object %v %v lock of %v coexists with %v lock of unrelated %v",
						oid, e.Mode, e.Owner, other.Mode, other.Owner))
				}
			}
		}
	}
}

// assertHeir asserts that a CommitTransfer inheritance is well-formed:
// the heir is a real action distinct from the committing owner and an
// ancestor of it (the paper's commit rule hands locks only up the
// action tree, to the closest ancestor possessing the colour).
func (m *Manager) assertHeir(owner, heir ids.ActionID, c colour.Colour) {
	if heir == 0 {
		panic(fmt.Sprintf("lock invariant: CommitTransfer of %v named zero heir for colour %v", owner, c))
	}
	if heir == owner {
		panic(fmt.Sprintf("lock invariant: CommitTransfer of %v named itself heir for colour %v", owner, c))
	}
	if !m.ancestry.IsSameOrAncestor(heir, owner) {
		panic(fmt.Sprintf("lock invariant: CommitTransfer of %v named non-ancestor %v heir for colour %v", owner, heir, c))
	}
}
