package lock

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"mca/internal/colour"
	"mca/internal/ids"
)

// waitForWaiters polls until exactly n waiters are parked on the object.
func waitForWaiters(t *testing.T, m *Manager, obj ids.ObjectID, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for m.waitersOn(obj) != n {
		if time.Now().After(deadline) {
			t.Fatalf("waitersOn(%v) = %d, want %d", obj, m.waitersOn(obj), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReleaseWakesOnlyWaitersOfReleasedObjects pins the targeted-wakeup
// contract: a waiter parked on object B receives no signal — not even a
// coalesced one — while unrelated objects churn through acquire/release
// cycles. Under the old global-broadcast design every one of those
// releases woke every waiter in the system.
func TestReleaseWakesOnlyWaitersOfReleasedObjects(t *testing.T) {
	tr := newTree()
	m := NewManager(tr)
	objB := ids.NewObjectID()
	c := colour.Fresh()

	holder := tr.node(0)
	mustAcquire(t, m, Request{Object: objB, Owner: holder, Colour: c, Mode: Write})

	got := make(chan error, 1)
	waiterOwner := tr.node(0)
	go func() {
		got <- m.Acquire(context.Background(), Request{Object: objB, Owner: waiterOwner, Colour: c, Mode: Write})
	}()
	waitForWaiters(t, m, objB, 1)

	before := m.signalCount()
	// Churn many unrelated objects: every release finds no waiters on
	// its objects, so no signal at all may be sent.
	for i := 0; i < 200; i++ {
		obj := ids.NewObjectID()
		owner := tr.node(0)
		mustAcquire(t, m, Request{Object: obj, Owner: owner, Colour: c, Mode: Write})
		m.ReleaseAll(owner)
	}
	if sent := m.signalCount() - before; sent != 0 {
		t.Fatalf("releases on unrelated objects sent %d signals, want 0", sent)
	}

	// Releasing the actual blocker sends exactly one targeted signal
	// and the waiter completes.
	m.ReleaseAll(holder)
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("waiter failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter did not wake after its blocker released")
	}
	if sent := m.signalCount() - before; sent != 1 {
		t.Fatalf("releasing the blocker sent %d signals, want exactly 1", sent)
	}
	m.ReleaseAll(waiterOwner)
}

// TestCommitTransferWakesOnlyAffectedObjects is the commit-path twin:
// inheritance transfers on unrelated objects must not signal a waiter
// parked elsewhere.
func TestCommitTransferWakesOnlyAffectedObjects(t *testing.T) {
	tr := newTree()
	m := NewManager(tr)
	objB := ids.NewObjectID()
	c := colour.Fresh()

	holder := tr.node(0)
	mustAcquire(t, m, Request{Object: objB, Owner: holder, Colour: c, Mode: Write})

	got := make(chan error, 1)
	waiterOwner := tr.node(0)
	go func() {
		got <- m.Acquire(context.Background(), Request{Object: objB, Owner: waiterOwner, Colour: c, Mode: Write})
	}()
	waitForWaiters(t, m, objB, 1)

	before := m.signalCount()
	for i := 0; i < 100; i++ {
		parent := tr.node(0)
		child := tr.node(parent)
		obj := ids.NewObjectID()
		mustAcquire(t, m, Request{Object: obj, Owner: child, Colour: c, Mode: Write})
		m.CommitTransfer(child, func(colour.Colour) (ids.ActionID, bool) { return parent, true })
		m.ReleaseAll(parent)
	}
	if sent := m.signalCount() - before; sent != 0 {
		t.Fatalf("commit transfers on unrelated objects sent %d signals, want 0", sent)
	}

	m.CommitTransfer(holder, func(colour.Colour) (ids.ActionID, bool) { return 0, false })
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("waiter failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter did not wake after commit transfer released its object")
	}
	m.ReleaseAll(waiterOwner)
}

// TestBlockedAcquireSpawnsNoGoroutine pins the lazy-watchdog property:
// a blocked Acquire parks on its waiter channel in place — it spawns no
// helper goroutine even with a context that can be cancelled and a
// maximum wait configured.
func TestBlockedAcquireSpawnsNoGoroutine(t *testing.T) {
	tr := newTree()
	m := NewManager(tr, WithMaxWait(time.Minute))
	obj := ids.NewObjectID()
	c := colour.Fresh()

	holder := tr.node(0)
	mustAcquire(t, m, Request{Object: obj, Owner: holder, Colour: c, Mode: Write})

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got := make(chan error, 1)
	waiterOwner := tr.node(0)
	go func() {
		got <- m.Acquire(ctx, Request{Object: obj, Owner: waiterOwner, Colour: c, Mode: Write})
	}()
	waitForWaiters(t, m, obj, 1)

	// Exactly one new goroutine: the acquiring one itself. The old
	// implementation spawned a watchdog per blocking Acquire on top.
	if g := runtime.NumGoroutine(); g > before+1 {
		t.Fatalf("blocked Acquire grew goroutines from %d to %d; want at most +1", before, g)
	}

	m.ReleaseAll(holder)
	if err := <-got; err != nil {
		t.Fatalf("waiter failed: %v", err)
	}
	m.ReleaseAll(waiterOwner)
}

// TestManyWaitersAcrossShards drives waiters over many objects spread
// across shards while releases interleave, under -race. Every waiter
// must eventually acquire; the table must drain to empty.
func TestManyWaitersAcrossShards(t *testing.T) {
	tr := newTree()
	m := NewManager(tr)
	c := colour.Fresh()
	const objects = 16
	objs := make([]ids.ObjectID, objects)
	holders := make([]ids.ActionID, objects)
	for i := range objs {
		objs[i] = ids.NewObjectID()
		holders[i] = tr.node(0)
		mustAcquire(t, m, Request{Object: objs[i], Owner: holders[i], Colour: c, Mode: Write})
	}

	var wg sync.WaitGroup
	errs := make(chan error, objects*4)
	for i := 0; i < objects*4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := tr.node(0)
			if err := m.Acquire(context.Background(), Request{Object: objs[i%objects], Owner: w, Colour: c, Mode: Write}); err != nil {
				errs <- err
				return
			}
			m.ReleaseAll(w)
		}()
	}
	time.Sleep(10 * time.Millisecond)
	for _, h := range holders {
		m.ReleaseAll(h)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("waiter failed: %v", err)
	}
	if n := m.LockCount(); n != 0 {
		t.Fatalf("LockCount = %d, want 0 after drain", n)
	}
	m.checkTableInvariants()
}
