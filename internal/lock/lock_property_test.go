package lock

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mca/internal/colour"
	"mca/internal/ids"
)

// TestGrantInvariants drives randomized TryAcquire/ReleaseAll/Commit
// sequences and checks, after every step, that the lock table never
// violates the §5.2 compatibility rules:
//
//  1. two write locks on one object are held only along an ancestor
//     chain, and all write locks on one object share a single colour;
//  2. an exclusive-read lock coexists with other holders only along an
//     ancestor chain;
//  3. a read lock coexists with write/exclusive-read locks only if the
//     writer is an ancestor of the reader or vice versa... (strictly:
//     every write/xread holder is an ancestor-or-descendant of every
//     other holder).
func TestGrantInvariants(t *testing.T) {
	type step struct {
		op     int // 0 acquire, 1 releaseAll, 2 commitTransfer
		actor  int
		object int
		colour int
		mode   int
	}

	const (
		actors  = 6
		objects = 4
		colours = 3
	)

	run := func(seed int64, steps int) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := newTree()

		// A small fixed tree: 0,1 top-level; 2,3 children of 0; 4
		// child of 2; 5 child of 1.
		acts := make([]ids.ActionID, actors)
		acts[0] = tr.node(0)
		acts[1] = tr.node(0)
		acts[2] = tr.node(acts[0])
		acts[3] = tr.node(acts[0])
		acts[4] = tr.node(acts[2])
		acts[5] = tr.node(acts[1])
		parentOf := map[int]int{2: 0, 3: 0, 4: 2, 5: 1}

		cs := make([]colour.Colour, colours)
		for i := range cs {
			cs[i] = colour.Fresh()
		}
		objs := make([]ids.ObjectID, objects)
		for i := range objs {
			objs[i] = ids.NewObjectID()
		}

		m := NewManager(tr)
		modes := []Mode{Read, Write, ExclusiveRead}

		related := func(a, b ids.ActionID) bool {
			return tr.IsSameOrAncestor(a, b) || tr.IsSameOrAncestor(b, a)
		}

		checkTable := func() bool {
			for _, o := range objs {
				holders := m.HoldersOf(o)
				for i, e1 := range holders {
					for _, e2 := range holders[i+1:] {
						conflictingModes := e1.Mode != Read || e2.Mode != Read
						if conflictingModes && e1.Owner != e2.Owner && !related(e1.Owner, e2.Owner) {
							return false
						}
						if e1.Mode == Write && e2.Mode == Write && e1.Colour != e2.Colour {
							return false
						}
					}
				}
			}
			return true
		}

		for s := 0; s < steps; s++ {
			actor := rng.Intn(actors)
			switch rng.Intn(5) {
			case 0, 1, 2: // acquire (most common)
				req := Request{
					Object: objs[rng.Intn(objects)],
					Owner:  acts[actor],
					Colour: cs[rng.Intn(colours)],
					Mode:   modes[rng.Intn(len(modes))],
				}
				_ = m.TryAcquire(req) // conflicts are fine; grants must keep invariants
			case 3:
				m.ReleaseAll(acts[actor])
			case 4:
				// Commit: locks of colour c go to the closest
				// ancestor (we approximate "possessing c" with the
				// direct parent; heir choice does not affect the
				// mutual-compatibility invariant since parents are
				// ancestors of all the action's other lock holders'
				// relations... it can, so verify anyway).
				owner := acts[actor]
				parentIdx, hasParent := parentOf[actor]
				m.CommitTransfer(owner, func(colour.Colour) (ids.ActionID, bool) {
					if hasParent {
						return acts[parentIdx], true
					}
					return 0, false
				})
			}
			if !checkTable() {
				t.Logf("invariant violated at seed=%d step=%d", seed, s)
				return false
			}
		}
		return true
	}

	cfg := &quick.Config{MaxCount: 60}
	f := func(seed int64) bool { return run(seed, 120) }
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCommitTransferNeverDuplicates checks that arbitrary transfer
// sequences never create duplicate (owner, colour, mode) entries.
func TestCommitTransferNeverDuplicates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := newTree()
		parent := tr.node(0)
		m := NewManager(tr)
		c := colour.Fresh()
		obj := ids.NewObjectID()

		for i := 0; i < 8; i++ {
			child := tr.node(parent)
			mode := []Mode{Read, Write, ExclusiveRead}[rng.Intn(3)]
			if err := m.TryAcquire(Request{Object: obj, Owner: child, Colour: c, Mode: mode}); err != nil {
				continue
			}
			m.CommitTransfer(child, func(colour.Colour) (ids.ActionID, bool) { return parent, true })
		}
		holders := m.HoldersOf(obj)
		seen := make(map[Entry]struct{}, len(holders))
		for _, e := range holders {
			if _, dup := seen[e]; dup {
				return false
			}
			seen[e] = struct{}{}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestReleaseAllMakesObjectsFree checks that after an owner releases,
// a fresh top-level action can always write-lock any object the owner
// exclusively held alone.
func TestReleaseAllMakesObjectsFree(t *testing.T) {
	f := func(n uint8) bool {
		tr := newTree()
		m := NewManager(tr)
		owner := tr.node(0)
		c := colour.Fresh()
		count := int(n%16) + 1
		objs := make([]ids.ObjectID, count)
		for i := range objs {
			objs[i] = ids.NewObjectID()
			if err := m.TryAcquire(Request{Object: objs[i], Owner: owner, Colour: c, Mode: Write}); err != nil {
				return false
			}
		}
		m.ReleaseAll(owner)
		fresh := tr.node(0)
		for _, o := range objs {
			if err := m.TryAcquire(Request{Object: o, Owner: fresh, Colour: c, Mode: Write}); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
