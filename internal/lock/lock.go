// Package lock implements the coloured lock manager of paper §5.2.
//
// Objects are locked in one of three modes: read, write and exclusive
// read. Every lock carries the colour named by its requester. The grant
// rules generalise Moss's nested-transaction rules:
//
//   - write in colour a: every current holder (any mode, any colour) must
//     be an ancestor (inclusive) of the requester, and every write lock
//     currently held on the object must itself be coloured a;
//   - exclusive read in colour a: every current holder must be an ancestor
//     of the requester;
//   - read in colour a: every holder of a write or exclusive-read lock
//     must be an ancestor of the requester (shared reads are unrestricted).
//
// On commit, locks are inherited per colour by the closest ancestor
// possessing that colour, or released when no such ancestor exists; on
// abort all locks are discarded. Those transitions are driven by the
// action runtime through CommitTransfer and ReleaseAll.
//
// The manager performs deadlock handling two ways: requests that can never
// be granted (blocked by an ancestor's write lock of a different colour,
// which cannot be released while the requester runs) fail immediately with
// ErrDeadlock, and circular waits among peers are detected on the
// waits-for graph each time a request blocks.
package lock

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"mca/internal/colour"
	"mca/internal/ids"
)

// Mode is a lock mode.
type Mode int

// The three lock modes of paper §5.2.
const (
	Read Mode = iota + 1
	Write
	ExclusiveRead
)

// String renders the mode for traces and errors.
func (m Mode) String() string {
	switch m {
	case Read:
		return "read"
	case Write:
		return "write"
	case ExclusiveRead:
		return "xread"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Errors reported by the manager.
var (
	// ErrDeadlock is returned when a request provably can never be
	// granted: either the waits-for graph contains a cycle, or the
	// request is blocked by a lock that only an ancestor of the
	// requester holds in an incompatible way (the ancestor cannot
	// terminate while the requester is active, so the wait is forever).
	ErrDeadlock = errors.New("lock: deadlock")

	// ErrConflict is returned by TryAcquire when the request would
	// block.
	ErrConflict = errors.New("lock: conflicting lock held")

	// ErrInvalidRequest is returned for requests with a zero colour,
	// unknown mode or zero object.
	ErrInvalidRequest = errors.New("lock: invalid request")

	// ErrTimeout is returned when a blocking acquire exceeded the
	// manager's maximum wait.
	ErrTimeout = errors.New("lock: wait timed out")
)

// Ancestry lets the lock manager ask the action runtime about the action
// tree. IsSameOrAncestor(a, b) reports whether a == b or a is an ancestor
// of b.
type Ancestry interface {
	IsSameOrAncestor(a, b ids.ActionID) bool
}

// FamilyResolver optionally extends Ancestry: TopLevelOf returns the
// root of an action's tree. When available, deadlock detection runs on
// the waits-for graph between FAMILIES (top-level trees) rather than
// individual actions: a nested action's wait transitively blocks its
// whole family (locks release only at family completion), so cycles
// like "A's child waits on B's top, B's child waits on A's top" are
// real deadlocks even though no single action waits in a cycle. This is
// slightly conservative for colour-independent subtrees, whose spurious
// victims simply abort and retry.
type FamilyResolver interface {
	TopLevelOf(id ids.ActionID) ids.ActionID
}

// AncestryFunc adapts a function to the Ancestry interface.
type AncestryFunc func(a, b ids.ActionID) bool

// IsSameOrAncestor implements Ancestry.
func (f AncestryFunc) IsSameOrAncestor(a, b ids.ActionID) bool { return f(a, b) }

var _ Ancestry = AncestryFunc(nil)

// Request names one lock acquisition.
type Request struct {
	Object ids.ObjectID
	Owner  ids.ActionID
	Colour colour.Colour
	Mode   Mode
}

// Entry is one granted lock as reported by HoldersOf.
type Entry struct {
	Owner  ids.ActionID
	Colour colour.Colour
	Mode   Mode
}

// Option configures a Manager.
type Option interface{ apply(*options) }

type options struct {
	maxWait time.Duration
}

type maxWaitOption time.Duration

func (o maxWaitOption) apply(opts *options) { opts.maxWait = time.Duration(o) }

// WithMaxWait bounds how long a blocking Acquire may wait before failing
// with ErrTimeout. Zero (the default) means wait until the context is
// cancelled.
func WithMaxWait(d time.Duration) Option { return maxWaitOption(d) }

// Manager is a coloured lock manager. It is safe for concurrent use.
type Manager struct {
	ancestry Ancestry
	family   func(ids.ActionID) ids.ActionID
	opts     options

	mu      sync.Mutex
	cond    *sync.Cond
	objects map[ids.ObjectID]*objectLocks
	// waiting records, for every blocked owner, the owners currently
	// blocking it. It backs waits-for cycle detection.
	waiting map[ids.ActionID]map[ids.ActionID]struct{}
	// generation increments whenever any lock is released or
	// transferred; blocked acquirers re-evaluate on change.
	generation uint64
}

type objectLocks struct {
	entries []Entry
}

// NewManager builds a Manager over the given ancestry oracle.
func NewManager(ancestry Ancestry, opts ...Option) *Manager {
	var o options
	for _, opt := range opts {
		opt.apply(&o)
	}
	m := &Manager{
		ancestry: ancestry,
		opts:     o,
		objects:  make(map[ids.ObjectID]*objectLocks),
		waiting:  make(map[ids.ActionID]map[ids.ActionID]struct{}),
	}
	if fr, ok := ancestry.(FamilyResolver); ok {
		m.family = fr.TopLevelOf
	} else {
		m.family = func(id ids.ActionID) ids.ActionID { return id }
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func validate(req Request) error {
	if req.Object == 0 || req.Owner == 0 || !req.Colour.Valid() {
		return ErrInvalidRequest
	}
	switch req.Mode {
	case Read, Write, ExclusiveRead:
		return nil
	default:
		return ErrInvalidRequest
	}
}

// TryAcquire grants the request immediately or returns ErrConflict (or
// ErrDeadlock for permanently blocked requests) without waiting.
func (m *Manager) TryAcquire(req Request) error {
	if err := validate(req); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	blockers, permanent := m.evaluate(req)
	if permanent {
		return ErrDeadlock
	}
	if len(blockers) > 0 {
		return ErrConflict
	}
	m.grant(req)
	m.checkTableInvariants()
	return nil
}

// Acquire grants the request, waiting for conflicting locks to be
// released. It fails with ErrDeadlock when the wait provably cannot end,
// with ErrTimeout when the manager's maximum wait is exceeded, and with
// the context's error when ctx is cancelled.
func (m *Manager) Acquire(ctx context.Context, req Request) error {
	if err := validate(req); err != nil {
		return err
	}

	var (
		deadline     <-chan time.Time
		deadlineTime time.Time
	)
	if m.opts.maxWait > 0 {
		deadlineTime = time.Now().Add(m.opts.maxWait)
		timer := time.NewTimer(m.opts.maxWait)
		defer timer.Stop()
		deadline = timer.C
	}

	// A watchdog goroutine pokes the condition variable when the
	// context is cancelled or the deadline passes, so the waiter
	// re-checks its exit conditions.
	stopWatch := make(chan struct{})
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		select {
		case <-ctx.Done():
		case <-deadline:
		case <-stopWatch:
			return
		}
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	}()
	defer func() {
		close(stopWatch)
		<-watchDone
	}()

	// The watchdog consumes the timer channel, so the waiter checks
	// the wall clock against the precomputed deadline instead.
	timedOut := func() bool {
		return deadline != nil && !time.Now().Before(deadlineTime)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if timedOut() {
			return ErrTimeout
		}
		blockers, permanent := m.evaluate(req)
		if permanent {
			return ErrDeadlock
		}
		if len(blockers) == 0 {
			m.grant(req)
			m.checkTableInvariants()
			return nil
		}
		m.setWaiting(req.Owner, blockers)
		if m.hasWaitCycle(req.Owner) {
			m.clearWaiting(req.Owner)
			return ErrDeadlock
		}
		m.cond.Wait()
		m.clearWaiting(req.Owner)
	}
}

// evaluate applies the §5.2 grant rules. It returns the set of owners
// blocking the request and whether the block is permanent (an ancestor of
// the requester holds a write lock in a different colour, or — for
// write/exclusive-read — the requester is blocked solely by entries that
// ancestors hold and that ancestors can never drop while the requester
// runs). Callers hold m.mu.
func (m *Manager) evaluate(req Request) (blockers map[ids.ActionID]struct{}, permanent bool) {
	ol := m.objects[req.Object]
	if ol == nil {
		return nil, false
	}
	blockers = make(map[ids.ActionID]struct{})
	for _, e := range ol.entries {
		if e.Owner == req.Owner && e.Colour == req.Colour && e.Mode == req.Mode {
			continue // re-acquisition of a held lock is free
		}
		isAncestor := m.ancestry.IsSameOrAncestor(e.Owner, req.Owner)
		switch req.Mode {
		case Read:
			if e.Mode == Read {
				continue // shared
			}
			if !isAncestor {
				blockers[e.Owner] = struct{}{}
			}
		case ExclusiveRead:
			if !isAncestor {
				blockers[e.Owner] = struct{}{}
			}
		case Write:
			if !isAncestor {
				blockers[e.Owner] = struct{}{}
				continue
			}
			if e.Mode == Write && e.Colour != req.Colour {
				// An ancestor (possibly the requester itself)
				// holds a write lock in another colour. That
				// lock cannot be released before the requester
				// terminates, so the request can never be
				// granted (paper §5.2: an action "may only
				// acquire a write lock on that object using
				// colour a").
				return nil, true
			}
		}
	}
	if len(blockers) == 0 {
		blockers = nil
	}
	return blockers, false
}

// grant records the lock. Callers hold m.mu. Duplicate (owner, colour,
// mode) triples collapse.
func (m *Manager) grant(req Request) {
	ol := m.objects[req.Object]
	if ol == nil {
		ol = &objectLocks{}
		m.objects[req.Object] = ol
	}
	for _, e := range ol.entries {
		if e.Owner == req.Owner && e.Colour == req.Colour && e.Mode == req.Mode {
			return
		}
	}
	ol.entries = append(ol.entries, Entry{Owner: req.Owner, Colour: req.Colour, Mode: req.Mode})
}

func (m *Manager) setWaiting(owner ids.ActionID, blockers map[ids.ActionID]struct{}) {
	m.waiting[owner] = blockers
}

func (m *Manager) clearWaiting(owner ids.ActionID) {
	delete(m.waiting, owner)
}

// hasWaitCycle reports whether the family-level waits-for graph, built
// from the currently blocked requests, contains a cycle through start's
// family. A blocked action blocks its whole family (locks release only
// at family completion), so edges run family(waiter) -> family(holder);
// same-family waits are excluded (they resolve by commit-time lock
// inheritance). Callers hold m.mu.
func (m *Manager) hasWaitCycle(start ids.ActionID) bool {
	// Build the family graph from the individual waits.
	edges := make(map[ids.ActionID]map[ids.ActionID]struct{}, len(m.waiting))
	for waiter, blockers := range m.waiting {
		wf := m.family(waiter)
		for b := range blockers {
			bf := m.family(b)
			if bf == wf {
				continue
			}
			if edges[wf] == nil {
				edges[wf] = make(map[ids.ActionID]struct{})
			}
			edges[wf][bf] = struct{}{}
		}
	}

	startFam := m.family(start)
	seen := make(map[ids.ActionID]struct{})
	var stack []ids.ActionID
	for b := range edges[startFam] {
		stack = append(stack, b)
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == startFam {
			return true
		}
		if _, ok := seen[cur]; ok {
			continue
		}
		seen[cur] = struct{}{}
		for b := range edges[cur] {
			stack = append(stack, b)
		}
	}
	return false
}

// ReleaseAll discards every lock held by owner (abort semantics, paper
// §5.2: "the locks of all colours and modes are discarded"). Ancestors
// holding their own locks on the same objects keep them.
func (m *Manager) ReleaseAll(owner ids.ActionID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.removeOwner(owner)
	m.checkTableInvariants()
	m.cond.Broadcast()
}

func (m *Manager) removeOwner(owner ids.ActionID) {
	for oid, ol := range m.objects {
		kept := ol.entries[:0]
		for _, e := range ol.entries {
			if e.Owner != owner {
				kept = append(kept, e)
			}
		}
		ol.entries = kept
		if len(ol.entries) == 0 {
			delete(m.objects, oid)
		}
	}
}

// Heir resolves, per colour, which action inherits a committing action's
// locks of that colour. Returning ok == false means the lock is released
// and the colour's changes become permanent.
type Heir func(colour.Colour) (ids.ActionID, bool)

// CommitTransfer applies commit semantics for owner: every lock of colour
// a is inherited (in the same mode) by heir(a) when one exists, otherwise
// released. It returns the identifiers of objects on which at least one
// lock was released outright, which the action runtime uses to double-
// check its permanence bookkeeping.
func (m *Manager) CommitTransfer(owner ids.ActionID, heir Heir) []ids.ObjectID {
	m.mu.Lock()
	defer m.mu.Unlock()
	var released []ids.ObjectID
	for oid, ol := range m.objects {
		kept := ol.entries[:0]
		releasedHere := false
		for _, e := range ol.entries {
			if e.Owner != owner {
				// Dedup against already-inherited entries too: when the
				// committing owner's entry precedes the heir's own
				// identical entry, the inherited copy is appended first
				// and the original must collapse into it.
				if !containsEntry(kept, e) {
					kept = append(kept, e)
				}
				continue
			}
			h, ok := heir(e.Colour)
			if !ok {
				releasedHere = true
				continue
			}
			m.assertHeir(owner, h, e.Colour)
			inherited := Entry{Owner: h, Colour: e.Colour, Mode: e.Mode}
			if !containsEntry(kept, inherited) {
				kept = append(kept, inherited)
			}
		}
		ol.entries = kept
		if releasedHere {
			released = append(released, oid)
		}
		if len(ol.entries) == 0 {
			delete(m.objects, oid)
		}
	}
	m.checkTableInvariants()
	m.cond.Broadcast()
	return released
}

func containsEntry(entries []Entry, e Entry) bool {
	for _, x := range entries {
		if x == e {
			return true
		}
	}
	return false
}

// HoldersOf returns a copy of the lock entries currently held on the
// object, for introspection by tests and the experiment harness.
func (m *Manager) HoldersOf(object ids.ObjectID) []Entry {
	m.mu.Lock()
	defer m.mu.Unlock()
	ol := m.objects[object]
	if ol == nil {
		return nil
	}
	out := make([]Entry, len(ol.entries))
	copy(out, ol.entries)
	return out
}

// Holds reports whether owner holds a lock on object in the given mode
// and colour.
func (m *Manager) Holds(owner ids.ActionID, object ids.ObjectID, mode Mode, c colour.Colour) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ol := m.objects[object]
	if ol == nil {
		return false
	}
	return containsEntry(ol.entries, Entry{Owner: owner, Colour: c, Mode: mode})
}

// HeldObjects returns the identifiers of objects on which owner holds at
// least one lock.
func (m *Manager) HeldObjects(owner ids.ActionID) []ids.ObjectID {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []ids.ObjectID
	for oid, ol := range m.objects {
		for _, e := range ol.entries {
			if e.Owner == owner {
				out = append(out, oid)
				break
			}
		}
	}
	return out
}

// LockCount returns the total number of lock entries currently held,
// used by experiments measuring lock footprint.
func (m *Manager) LockCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, ol := range m.objects {
		n += len(ol.entries)
	}
	return n
}
