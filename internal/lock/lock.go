// Package lock implements the coloured lock manager of paper §5.2.
//
// Objects are locked in one of three modes: read, write and exclusive
// read. Every lock carries the colour named by its requester. The grant
// rules generalise Moss's nested-transaction rules:
//
//   - write in colour a: every current holder (any mode, any colour) must
//     be an ancestor (inclusive) of the requester, and every write lock
//     currently held on the object must itself be coloured a;
//   - exclusive read in colour a: every current holder must be an ancestor
//     of the requester;
//   - read in colour a: every holder of a write or exclusive-read lock
//     must be an ancestor of the requester (shared reads are unrestricted).
//
// On commit, locks are inherited per colour by the closest ancestor
// possessing that colour, or released when no such ancestor exists; on
// abort all locks are discarded. Those transitions are driven by the
// action runtime through CommitTransfer and ReleaseAll.
//
// The manager performs deadlock handling two ways: requests that can never
// be granted (blocked by an ancestor's write lock of a different colour,
// which cannot be released while the requester runs) fail immediately with
// ErrDeadlock, and circular waits among peers are detected on the
// waits-for graph each time a request blocks.
//
// # Concurrency structure
//
// The lock table is striped: ObjectIDs hash onto a power-of-two array of
// shards, each with its own mutex, its own slice of the table and its own
// per-object FIFO wait queues. A grant or release therefore serializes
// only against traffic on the same shard, and the §5.2 grant evaluation
// runs entirely within one shard. Blocked acquirers park on a per-waiter
// channel registered in the object's wait queue; a release or commit
// transfer signals exactly the waiters queued on the objects whose locks
// changed — never the whole system. A striped owner index maps each
// action to the objects it holds locks on, so ReleaseAll, CommitTransfer
// and HeldObjects visit only the shards that actually contain the owner's
// locks. Deadlock detection lives in a dedicated cross-shard waits-for
// registry with its own mutex, updated when a request blocks or unblocks.
//
// Lock ordering: a shard mutex may be taken while no other manager lock
// is held; an owner-index stripe mutex may be taken under a shard mutex;
// the waits-for registry mutex is only ever taken with no shard or stripe
// mutex held. No blocking operation runs under any of them.
package lock

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mca/internal/clock"
	"mca/internal/colour"
	"mca/internal/flightrec"
	"mca/internal/ids"
	"mca/internal/phase"
)

// Mode is a lock mode.
type Mode int

// The three lock modes of paper §5.2.
const (
	Read Mode = iota + 1
	Write
	ExclusiveRead
)

// String renders the mode for traces and errors.
func (m Mode) String() string {
	switch m {
	case Read:
		return "read"
	case Write:
		return "write"
	case ExclusiveRead:
		return "xread"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Errors reported by the manager.
var (
	// ErrDeadlock is returned when a request provably can never be
	// granted: either the waits-for graph contains a cycle, or the
	// request is blocked by a lock that only an ancestor of the
	// requester holds in an incompatible way (the ancestor cannot
	// terminate while the requester is active, so the wait is forever).
	ErrDeadlock = errors.New("lock: deadlock")

	// ErrConflict is returned by TryAcquire when the request would
	// block.
	ErrConflict = errors.New("lock: conflicting lock held")

	// ErrInvalidRequest is returned for requests with a zero colour,
	// unknown mode or zero object.
	ErrInvalidRequest = errors.New("lock: invalid request")

	// ErrTimeout is returned when a blocking acquire exceeded the
	// manager's maximum wait.
	ErrTimeout = errors.New("lock: wait timed out")
)

// Ancestry lets the lock manager ask the action runtime about the action
// tree. IsSameOrAncestor(a, b) reports whether a == b or a is an ancestor
// of b.
type Ancestry interface {
	IsSameOrAncestor(a, b ids.ActionID) bool
}

// FamilyResolver optionally extends Ancestry: TopLevelOf returns the
// root of an action's tree. When available, deadlock detection runs on
// the waits-for graph between FAMILIES (top-level trees) rather than
// individual actions: a nested action's wait transitively blocks its
// whole family (locks release only at family completion), so cycles
// like "A's child waits on B's top, B's child waits on A's top" are
// real deadlocks even though no single action waits in a cycle. This is
// slightly conservative for colour-independent subtrees, whose spurious
// victims simply abort and retry.
type FamilyResolver interface {
	TopLevelOf(id ids.ActionID) ids.ActionID
}

// AncestryFunc adapts a function to the Ancestry interface.
type AncestryFunc func(a, b ids.ActionID) bool

// IsSameOrAncestor implements Ancestry.
func (f AncestryFunc) IsSameOrAncestor(a, b ids.ActionID) bool { return f(a, b) }

var _ Ancestry = AncestryFunc(nil)

// Request names one lock acquisition.
type Request struct {
	Object ids.ObjectID
	Owner  ids.ActionID
	Colour colour.Colour
	Mode   Mode
}

// Entry is one granted lock as reported by HoldersOf.
type Entry struct {
	Owner  ids.ActionID
	Colour colour.Colour
	Mode   Mode
}

// Option configures a Manager.
type Option interface{ apply(*options) }

type options struct {
	maxWait time.Duration
	shards  int
	clk     clock.Clock
}

type maxWaitOption time.Duration

func (o maxWaitOption) apply(opts *options) { opts.maxWait = time.Duration(o) }

// WithMaxWait bounds how long a blocking Acquire may wait before failing
// with ErrTimeout. Zero (the default) means wait until the context is
// cancelled.
func WithMaxWait(d time.Duration) Option { return maxWaitOption(d) }

type shardsOption int

func (o shardsOption) apply(opts *options) { opts.shards = int(o) }

// WithShards fixes the number of lock-table shards (rounded up to a
// power of two). The default scales with GOMAXPROCS; tests use 1 to
// exercise the degenerate single-shard layout.
func WithShards(n int) Option { return shardsOption(n) }

type clockOption struct{ c clock.Clock }

func (o clockOption) apply(opts *options) { opts.clk = o.c }

// WithClock substitutes the manager's time source (maxWait timers,
// block-duration metrics). The default is clock.Real().
func WithClock(c clock.Clock) Option { return clockOption{c} }

// defaultShardCount scales the stripe width with available parallelism:
// enough shards that concurrent acquirers on distinct objects rarely
// collide, bounded so small processes don't pay for empty maps.
func defaultShardCount() int {
	n := runtime.GOMAXPROCS(0) * 8
	if n < 8 {
		n = 8
	}
	if n > 256 {
		n = 256
	}
	return nextPow2(n)
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Manager is a coloured lock manager. It is safe for concurrent use.
type Manager struct {
	ancestry Ancestry
	opts     options

	// shards is the striped lock table; shardMask selects a shard from
	// a hashed ObjectID. len(shards) is a power of two, fixed at
	// construction.
	shards    []shard
	shardMask uint64

	// owners maps each action to the set of objects it holds locks on,
	// so release paths visit only the shards that matter.
	owners ownerIndex

	// waits is the cross-shard waits-for registry backing deadlock
	// cycle detection.
	waits waitsFor

	// signals counts targeted waiter wakeups; tests use it to pin that
	// a release wakes only the waiters queued on the released objects.
	signals atomic.Uint64

	// slow counts failure outcomes that occur off the shard-mutex fast
	// path (cycle deadlocks, timeouts, cancellations); those paths have
	// already parked or taken the waits-for mutex, so an atomic add is
	// free by comparison. Indexed by Mode (slot 0 unused).
	slow struct {
		cycles   [4]atomic.Uint64
		timeouts [4]atomic.Uint64
		cancels  [4]atomic.Uint64
	}
}

// shardStats are the shard's hot-path telemetry counters. They are
// plain integers deliberately: every increment happens under the shard
// mutex the surrounding operation already holds, so instrumenting the
// grant/release cycle costs an in-cache add, not an atomic RMW (which
// measurably regresses the uncontended acquire/release benchmark).
// Gather-time collectors in metrics.go sum them across shards and live
// managers. Arrays are indexed by Mode (1..3; slot 0 unused).
type shardStats struct {
	grants    [4]uint64 // granted requests, by mode
	conflicts [4]uint64 // TryAcquire refusals, by mode
	permanent [4]uint64 // permanent (ancestor-write) deadlocks, by mode
	blocks    uint64    // Acquires that parked at least once
	inherited uint64    // entries inherited by an heir on commit
	relCommit uint64    // entries released outright on commit
	relAbort  uint64    // entries discarded by ReleaseAll
}

// shard is one stripe of the lock table. Its mutex covers both maps.
type shard struct {
	mu sync.Mutex

	// stats accumulates this shard's telemetry; guarded by mu.
	stats shardStats
	// objects maps each object to its lock entries. A record whose
	// entry list drains is retained (list emptied, capacity kept) so
	// the object's next grant re-uses it instead of reallocating; the
	// footprint is one small record per object ever locked, the same
	// order as the object store itself.
	objects map[ids.ObjectID]*objectLocks
	// waiters holds, per object, the FIFO queue of parked acquirers.
	// A queue may outlive the object's entry list (the blocker
	// released; the waiters have not yet re-evaluated).
	waiters map[ids.ObjectID][]*waiter
}

type objectLocks struct {
	entries []Entry
}

// waiter is one parked Acquire. ready has capacity 1: a targeted signal
// is a non-blocking send, so wakeups coalesce instead of piling up.
type waiter struct {
	owner ids.ActionID
	ready chan struct{}
}

// NewManager builds a Manager over the given ancestry oracle.
func NewManager(ancestry Ancestry, opts ...Option) *Manager {
	var o options
	for _, opt := range opts {
		opt.apply(&o)
	}
	if o.clk == nil {
		o.clk = clock.Real()
	}
	n := o.shards
	if n <= 0 {
		n = defaultShardCount()
	} else {
		n = nextPow2(n)
	}
	m := &Manager{
		ancestry:  ancestry,
		opts:      o,
		shards:    make([]shard, n),
		shardMask: uint64(n - 1),
	}
	for i := range m.shards {
		m.shards[i].objects = make(map[ids.ObjectID]*objectLocks)
		m.shards[i].waiters = make(map[ids.ObjectID][]*waiter)
	}
	m.owners.init()
	if fr, ok := ancestry.(FamilyResolver); ok {
		m.waits.init(fr.TopLevelOf)
	} else {
		m.waits.init(func(id ids.ActionID) ids.ActionID { return id })
	}
	registerManager(m)
	return m
}

// mix64 is the splitmix64 finalizer: ObjectIDs are sequential small
// integers, so without mixing they would stripe onto shards in lockstep
// with allocation order.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func (m *Manager) shardIndex(o ids.ObjectID) uint64 { return mix64(uint64(o)) & m.shardMask }

func (m *Manager) shardOf(o ids.ObjectID) *shard { return &m.shards[m.shardIndex(o)] }

func validate(req Request) error {
	if req.Object == 0 || req.Owner == 0 || !req.Colour.Valid() {
		return ErrInvalidRequest
	}
	switch req.Mode {
	case Read, Write, ExclusiveRead:
		return nil
	default:
		return ErrInvalidRequest
	}
}

// memoInline is how many (holder, answer) pairs an ancestryMemo keeps
// in its inline arrays before spilling to a map. Objects rarely have
// more distinct holders than this.
const memoInline = 8

// ancestryMemo caches IsSameOrAncestor(holder, requester) per holder for
// the lifetime of one request. An action's ancestor chain is fixed at
// creation, so a cached answer stays valid across wakeups; holders that
// appear mid-wait simply miss and resolve fresh. The memo lives on the
// acquirer's stack and allocates nothing until more than memoInline
// distinct holders are consulted.
type ancestryMemo struct {
	n        int
	keys     [memoInline]ids.ActionID
	vals     [memoInline]bool
	overflow map[ids.ActionID]bool
}

func (mm *ancestryMemo) resolve(anc Ancestry, holder, requester ids.ActionID) bool {
	if holder == requester {
		return true
	}
	for i := 0; i < mm.n; i++ {
		if mm.keys[i] == holder {
			return mm.vals[i]
		}
	}
	if v, ok := mm.overflow[holder]; ok {
		return v
	}
	v := anc.IsSameOrAncestor(holder, requester)
	if mm.n < memoInline {
		mm.keys[mm.n] = holder
		mm.vals[mm.n] = v
		mm.n++
	} else {
		if mm.overflow == nil {
			mm.overflow = make(map[ids.ActionID]bool, memoInline)
		}
		mm.overflow[holder] = v
	}
	return v
}

// TryAcquire grants the request immediately or returns ErrConflict (or
// ErrDeadlock for permanently blocked requests) without waiting.
func (m *Manager) TryAcquire(req Request) error {
	if err := validate(req); err != nil {
		return err
	}
	var memo ancestryMemo
	s := m.shardOf(req.Object)
	s.mu.Lock()
	defer s.mu.Unlock()
	blockers, permanent := m.evaluateLocked(s, req, &memo)
	if permanent {
		s.stats.permanent[req.Mode]++
		flightrec.Record(flightrec.Event{Kind: flightrec.KindDeadlock, A: uint64(req.Owner), B: uint64(req.Object)})
		return ErrDeadlock
	}
	if len(blockers) > 0 {
		s.stats.conflicts[req.Mode]++
		return ErrConflict
	}
	m.grantLocked(s, req)
	m.checkShardInvariants(s)
	return nil
}

// Acquire grants the request, waiting for conflicting locks to be
// released. It fails with ErrDeadlock when the wait provably cannot end,
// with ErrTimeout when the manager's maximum wait is exceeded, and with
// the context's error when ctx is cancelled.
//
// An uncontended Acquire takes one shard mutex and returns: no
// goroutine, timer or channel is allocated unless the request actually
// blocks. A blocked Acquire parks on its waiter channel in the object's
// FIFO queue and re-evaluates the grant rules each time a release on
// that object signals it.
func (m *Manager) Acquire(ctx context.Context, req Request) error {
	if err := validate(req); err != nil {
		return err
	}
	var (
		memo       ancestryMemo
		deadline   <-chan time.Time
		w          *waiter
		blockStart time.Time
	)
	// Record how long the request spent parked, whatever the outcome.
	// Requests that never block skip the observation entirely. Blocked
	// time is also charged to the owner's transaction phase ledger
	// (lock-wait) when the owner belongs to a distributed trace.
	defer func() {
		if w != nil {
			blocked := m.opts.clk.Since(blockStart)
			blockNs.ObserveDuration(blocked)
			phase.RecordAction(req.Owner, phase.Lock, blocked)
		}
	}()
	s := m.shardOf(req.Object)
	for {
		if err := ctx.Err(); err != nil {
			m.slow.cancels[req.Mode].Add(1)
			m.abandonWait(s, req.Object, req.Owner, w)
			return err
		}
		s.mu.Lock()
		blockers, permanent := m.evaluateLocked(s, req, &memo)
		if permanent {
			s.stats.permanent[req.Mode]++
			m.dequeueLocked(s, req.Object, w)
			s.mu.Unlock()
			m.finishWait(req.Owner, w)
			flightrec.Record(flightrec.Event{Kind: flightrec.KindDeadlock, A: uint64(req.Owner), B: uint64(req.Object)})
			flightrec.AutoDump("deadlock")
			return ErrDeadlock
		}
		if len(blockers) == 0 {
			m.grantLocked(s, req)
			m.dequeueLocked(s, req.Object, w)
			m.checkShardInvariants(s)
			s.mu.Unlock()
			m.finishWait(req.Owner, w)
			return nil
		}
		if w == nil {
			w = &waiter{owner: req.Owner, ready: make(chan struct{}, 1)}
			s.waiters[req.Object] = append(s.waiters[req.Object], w)
			s.stats.blocks++
			blockStart = m.opts.clk.Now()
			flightrec.Record(flightrec.Event{Kind: flightrec.KindLockBlock, A: uint64(req.Owner), B: uint64(req.Object)})
			// The timer backing ErrTimeout starts on first block:
			// uncontended acquires never pay for it.
			if m.opts.maxWait > 0 && deadline == nil {
				timer := m.opts.clk.NewTimer(m.opts.maxWait)
				defer timer.Stop()
				deadline = timer.C()
			}
		}
		s.mu.Unlock()
		// Register the waits-for edges and check for a cycle through
		// this owner's family. Registration is atomic with the check,
		// so of two requests completing a cycle concurrently at least
		// the later one observes it.
		if m.waits.block(req.Owner, blockers) {
			m.slow.cycles[req.Mode].Add(1)
			m.abandonWait(s, req.Object, req.Owner, w)
			flightrec.Record(flightrec.Event{Kind: flightrec.KindDeadlock, A: uint64(req.Owner), B: uint64(req.Object)})
			flightrec.AutoDump("deadlock")
			return ErrDeadlock
		}
		select {
		case <-w.ready:
			// A lock on the object changed; loop and re-evaluate.
		case <-ctx.Done():
			m.slow.cancels[req.Mode].Add(1)
			m.abandonWait(s, req.Object, req.Owner, w)
			return ctx.Err()
		case <-deadline:
			m.slow.timeouts[req.Mode].Add(1)
			m.abandonWait(s, req.Object, req.Owner, w)
			return ErrTimeout
		}
	}
}

// abandonWait removes the waiter from its queue and clears the owner's
// waits-for edges on a non-grant exit path. A nil waiter means the
// request never blocked and left no state behind.
func (m *Manager) abandonWait(s *shard, obj ids.ObjectID, owner ids.ActionID, w *waiter) {
	if w == nil {
		return
	}
	s.mu.Lock()
	m.dequeueLocked(s, obj, w)
	s.mu.Unlock()
	m.waits.clear(owner)
}

// finishWait clears the owner's waits-for edges after a grant or
// permanent-deadlock exit (the queue entry was already removed under the
// shard mutex).
func (m *Manager) finishWait(owner ids.ActionID, w *waiter) {
	if w == nil {
		return
	}
	m.waits.clear(owner)
}

// dequeueLocked splices the waiter out of the object's queue. Callers
// hold s.mu. A nil waiter is a no-op.
func (m *Manager) dequeueLocked(s *shard, obj ids.ObjectID, w *waiter) {
	if w == nil {
		return
	}
	q := s.waiters[obj]
	for i, x := range q {
		if x == w {
			q = append(q[:i], q[i+1:]...)
			break
		}
	}
	if len(q) == 0 {
		delete(s.waiters, obj)
	} else {
		s.waiters[obj] = q
	}
}

// signalWaiters delivers one targeted wakeup to each waiter. Sends are
// non-blocking (the channel has capacity 1), so an already-signalled
// waiter coalesces rather than blocking the releaser. Callers must NOT
// hold the shard mutex; the woken waiters immediately contend for it.
func (m *Manager) signalWaiters(woken []*waiter) {
	for _, w := range woken {
		m.signals.Add(1)
		select {
		case w.ready <- struct{}{}:
		default:
		}
	}
}

// evaluateLocked applies the §5.2 grant rules within the object's shard.
// It returns the set of owners blocking the request and whether the
// block is permanent (an ancestor of the requester holds a write lock in
// a different colour, which cannot be released while the requester
// runs). Callers hold s.mu.
func (m *Manager) evaluateLocked(s *shard, req Request, memo *ancestryMemo) (blockers map[ids.ActionID]struct{}, permanent bool) {
	ol := s.objects[req.Object]
	if ol == nil {
		return nil, false
	}
	for _, e := range ol.entries {
		if e.Owner == req.Owner && e.Colour == req.Colour && e.Mode == req.Mode {
			continue // re-acquisition of a held lock is free
		}
		isAncestor := memo.resolve(m.ancestry, e.Owner, req.Owner)
		switch req.Mode {
		case Read:
			if e.Mode == Read {
				continue // shared
			}
			if !isAncestor {
				if blockers == nil {
					blockers = make(map[ids.ActionID]struct{})
				}
				blockers[e.Owner] = struct{}{}
			}
		case ExclusiveRead:
			if !isAncestor {
				if blockers == nil {
					blockers = make(map[ids.ActionID]struct{})
				}
				blockers[e.Owner] = struct{}{}
			}
		case Write:
			if !isAncestor {
				if blockers == nil {
					blockers = make(map[ids.ActionID]struct{})
				}
				blockers[e.Owner] = struct{}{}
				continue
			}
			if e.Mode == Write && e.Colour != req.Colour {
				// An ancestor (possibly the requester itself)
				// holds a write lock in another colour. That
				// lock cannot be released before the requester
				// terminates, so the request can never be
				// granted (paper §5.2: an action "may only
				// acquire a write lock on that object using
				// colour a").
				return nil, true
			}
		}
	}
	return blockers, false
}

// grantLocked records the lock and indexes it under its owner. Callers
// hold s.mu. Duplicate (owner, colour, mode) triples collapse. The
// owner index is touched only when this is the owner's first entry on
// the object; re-acquisitions in a new mode or colour stay shard-local.
func (m *Manager) grantLocked(s *shard, req Request) {
	s.stats.grants[req.Mode]++
	ol := s.objects[req.Object]
	if ol == nil {
		ol = &objectLocks{}
		s.objects[req.Object] = ol
	}
	ownerHolds := false
	for _, e := range ol.entries {
		if e.Owner == req.Owner {
			if e.Colour == req.Colour && e.Mode == req.Mode {
				return
			}
			ownerHolds = true
		}
	}
	ol.entries = append(ol.entries, Entry{Owner: req.Owner, Colour: req.Colour, Mode: req.Mode})
	if !ownerHolds {
		m.owners.add(req.Owner, req.Object)
	}
}

// sortByShard orders the owner's held objects by (shard index, object)
// in place, so multi-shard mutations always walk the table in the same
// direction (release order was never observable under the old global
// mutex either, but determinism keeps the invariants checker and
// LockCount snapshots consistent). Small sets — the overwhelmingly
// common case — use an allocation-free insertion sort over precomputed
// shard keys.
func (m *Manager) sortByShard(objs []ids.ObjectID) {
	if len(objs) < 2 {
		return
	}
	if len(objs) <= 32 {
		var keys [32]uint64
		for i, o := range objs {
			keys[i] = m.shardIndex(o)
		}
		for i := 1; i < len(objs); i++ {
			k, o := keys[i], objs[i]
			j := i - 1
			for j >= 0 && (keys[j] > k || (keys[j] == k && objs[j] > o)) {
				keys[j+1], objs[j+1] = keys[j], objs[j]
				j--
			}
			keys[j+1], objs[j+1] = k, o
		}
		return
	}
	// Shell sort for the rare large set: closure-free on purpose, so the
	// release paths' stack buffer never escapes through a sort.Slice
	// func value.
	n := len(objs)
	for gap := n / 2; gap > 0; gap /= 2 {
		for i := gap; i < n; i++ {
			o := objs[i]
			k := m.shardIndex(o)
			j := i
			for j >= gap && m.shardLess(k, o, objs[j-gap]) {
				objs[j] = objs[j-gap]
				j -= gap
			}
			objs[j] = o
		}
	}
}

// shardLess orders (k, o) before other under the (shard index, object)
// release-path ordering; k is o's precomputed shard index.
func (m *Manager) shardLess(k uint64, o, other ids.ObjectID) bool {
	ko := m.shardIndex(other)
	return k < ko || (k == ko && o < other)
}

// ReleaseAll discards every lock held by owner (abort semantics, paper
// §5.2: "the locks of all colours and modes are discarded"). Ancestors
// holding their own locks on the same objects keep them. Only the
// waiters queued on the released objects are woken.
//
// The owner's whole held-object list is claimed from the index in one
// stripe operation, then the affected shards are visited in index order.
func (m *Manager) ReleaseAll(owner ids.ActionID) {
	var buf [8]ids.ObjectID
	objs := m.owners.take(owner, buf[:0])
	if len(objs) == 0 {
		return
	}
	m.sortByShard(objs)
	for start := 0; start < len(objs); {
		idx := m.shardIndex(objs[start])
		end := start + 1
		for end < len(objs) && m.shardIndex(objs[end]) == idx {
			end++
		}
		s := &m.shards[idx]
		var woken []*waiter
		s.mu.Lock()
		for _, oid := range objs[start:end] {
			ol := s.objects[oid]
			if ol == nil {
				continue
			}
			kept := ol.entries[:0]
			for _, e := range ol.entries {
				if e.Owner != owner {
					kept = append(kept, e)
				}
			}
			if len(kept) == len(ol.entries) {
				continue
			}
			s.stats.relAbort += uint64(len(ol.entries) - len(kept))
			ol.entries = kept
			woken = append(woken, s.waiters[oid]...)
		}
		m.checkShardInvariants(s)
		s.mu.Unlock()
		if len(woken) > 0 {
			m.signalWaiters(woken)
		}
		start = end
	}
}

// Heir resolves, per colour, which action inherits a committing action's
// locks of that colour. Returning ok == false means the lock is released
// and the colour's changes become permanent.
type Heir func(colour.Colour) (ids.ActionID, bool)

// CommitTransfer applies commit semantics for owner: every lock of colour
// a is inherited (in the same mode) by heir(a) when one exists, otherwise
// released. It returns the identifiers of objects on which at least one
// lock was released outright, which the action runtime uses to double-
// check its permanence bookkeeping. Only the waiters queued on the
// affected objects are woken.
func (m *Manager) CommitTransfer(owner ids.ActionID, heir Heir) []ids.ObjectID {
	var buf [8]ids.ObjectID
	objs := m.owners.take(owner, buf[:0])
	if len(objs) == 0 {
		return nil
	}
	var released []ids.ObjectID
	m.sortByShard(objs)
	for start := 0; start < len(objs); {
		idx := m.shardIndex(objs[start])
		end := start + 1
		for end < len(objs) && m.shardIndex(objs[end]) == idx {
			end++
		}
		s := &m.shards[idx]
		var woken []*waiter
		s.mu.Lock()
		for _, oid := range objs[start:end] {
			ol := s.objects[oid]
			if ol == nil {
				continue
			}
			kept := ol.entries[:0]
			releasedHere := false
			ownerHad := false
			for _, e := range ol.entries {
				if e.Owner != owner {
					// Dedup against already-inherited entries too: when the
					// committing owner's entry precedes the heir's own
					// identical entry, the inherited copy is appended first
					// and the original must collapse into it.
					if !containsEntry(kept, e) {
						kept = append(kept, e)
					}
					continue
				}
				ownerHad = true
				h, ok := heir(e.Colour)
				if !ok {
					releasedHere = true
					s.stats.relCommit++
					continue
				}
				s.stats.inherited++
				m.assertHeir(owner, h, e.Colour)
				inherited := Entry{Owner: h, Colour: e.Colour, Mode: e.Mode}
				if !containsEntry(kept, inherited) {
					kept = append(kept, inherited)
				}
				m.owners.add(h, oid)
			}
			ol.entries = kept
			if releasedHere {
				released = append(released, oid)
			}
			if ownerHad {
				woken = append(woken, s.waiters[oid]...)
			}
		}
		m.checkShardInvariants(s)
		s.mu.Unlock()
		if len(woken) > 0 {
			m.signalWaiters(woken)
		}
		start = end
	}
	return released
}

func containsEntry(entries []Entry, e Entry) bool {
	for _, x := range entries {
		if x == e {
			return true
		}
	}
	return false
}

// HoldersOf returns a copy of the lock entries currently held on the
// object, for introspection by tests and the experiment harness.
func (m *Manager) HoldersOf(object ids.ObjectID) []Entry {
	s := m.shardOf(object)
	s.mu.Lock()
	defer s.mu.Unlock()
	ol := s.objects[object]
	if ol == nil || len(ol.entries) == 0 {
		return nil
	}
	out := make([]Entry, len(ol.entries))
	copy(out, ol.entries)
	return out
}

// Holds reports whether owner holds a lock on object in the given mode
// and colour.
func (m *Manager) Holds(owner ids.ActionID, object ids.ObjectID, mode Mode, c colour.Colour) bool {
	s := m.shardOf(object)
	s.mu.Lock()
	defer s.mu.Unlock()
	ol := s.objects[object]
	if ol == nil {
		return false
	}
	return containsEntry(ol.entries, Entry{Owner: owner, Colour: c, Mode: mode})
}

// HeldObjects returns the identifiers of objects on which owner holds at
// least one lock, in ascending object order.
func (m *Manager) HeldObjects(owner ids.ActionID) []ids.ObjectID {
	out := m.owners.objects(owner)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LockCount returns the total number of lock entries currently held,
// used by experiments measuring lock footprint. Shards are visited in
// index order; the count is a consistent snapshot only at quiescence.
func (m *Manager) LockCount() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for _, ol := range s.objects {
			n += len(ol.entries)
		}
		s.mu.Unlock()
	}
	return n
}

// waitersOn reports the queue length for one object, for tests that
// need to observe a waiter parking.
func (m *Manager) waitersOn(object ids.ObjectID) int {
	s := m.shardOf(object)
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters[object])
}

// signalCount returns the cumulative number of targeted wakeups sent,
// for tests pinning the no-spurious-wakeup property.
func (m *Manager) signalCount() uint64 { return m.signals.Load() }

// ShardCount reports the stripe width of the lock table, for
// introspection by tests and the experiment harness.
func (m *Manager) ShardCount() int { return len(m.shards) }
