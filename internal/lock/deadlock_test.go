package lock

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"mca/internal/colour"
	"mca/internal/ids"
)

// TestThreeWayDeadlockCycleDetected builds the classic three-party
// cycle: a→b→c→a on objects X, Y, Z. At least one waiter must fail with
// ErrDeadlock, and after the victims release, the survivors complete.
func TestThreeWayDeadlockCycleDetected(t *testing.T) {
	tr := newTree()
	m := NewManager(tr)
	c := colour.Fresh()

	actors := []ids.ActionID{tr.node(0), tr.node(0), tr.node(0)}
	objs := []ids.ObjectID{ids.NewObjectID(), ids.NewObjectID(), ids.NewObjectID()}

	// Everyone holds their own object.
	for i, a := range actors {
		mustAcquire(t, m, Request{Object: objs[i], Owner: a, Colour: c, Mode: Write})
	}

	// Everyone requests the next object, forming the cycle.
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		deadlocks int
		successes int
	)
	for i, a := range actors {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := m.Acquire(context.Background(), Request{
				Object: objs[(i+1)%3], Owner: a, Colour: c, Mode: Write,
			})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				successes++
				m.ReleaseAll(a) // completed: let the remaining waiters through
			case errors.Is(err, ErrDeadlock):
				deadlocks++
				m.ReleaseAll(a) // the victim aborts
			default:
				t.Errorf("unexpected error %v", err)
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("three-way deadlock never resolved")
	}
	if deadlocks < 1 {
		t.Fatalf("deadlocks = %d, want >= 1 (successes = %d)", deadlocks, successes)
	}
	if deadlocks+successes != 3 {
		t.Fatalf("accounted %d outcomes, want 3", deadlocks+successes)
	}
}

// TestNoFalseDeadlockOnSharedReads verifies that many concurrent readers
// never trip the deadlock detector.
func TestNoFalseDeadlockOnSharedReads(t *testing.T) {
	tr := newTree()
	m := NewManager(tr)
	c := colour.Fresh()
	objs := []ids.ObjectID{ids.NewObjectID(), ids.NewObjectID()}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := tr.node(0)
			for _, o := range objs {
				if err := m.Acquire(context.Background(), Request{Object: o, Owner: a, Colour: c, Mode: Read}); err != nil {
					errs <- err
					return
				}
			}
			m.ReleaseAll(a)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("reader failed: %v", err)
	}
}

// TestWaiterChainResolvesInOrder checks a convoy: w1..wN all queue on
// one writer; releasing lets everyone through eventually.
func TestWaiterChainResolvesInOrder(t *testing.T) {
	tr := newTree()
	m := NewManager(tr)
	c := colour.Fresh()
	obj := ids.NewObjectID()

	holder := tr.node(0)
	mustAcquire(t, m, Request{Object: obj, Owner: holder, Colour: c, Mode: Write})

	const n = 10
	var wg sync.WaitGroup
	acquired := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := tr.node(0)
			if err := m.Acquire(context.Background(), Request{Object: obj, Owner: w, Colour: c, Mode: Write}); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			acquired <- i
			m.ReleaseAll(w)
		}()
	}
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(holder)
	wg.Wait()
	close(acquired)
	count := 0
	for range acquired {
		count++
	}
	if count != n {
		t.Fatalf("only %d/%d waiters acquired", count, n)
	}
}
