// Package phase is the per-transaction phase ledger behind tail-latency
// attribution: every layer that makes a transaction wait — the lock
// manager (lock-wait), the WAL (force-wait), the RPC client and serve
// pool (network and queueing), the 2PC fan-out (round gaps) — reports
// the duration here, keyed by the transaction's distributed-trace
// identity. trace attaches the accumulated breakdown to the
// transaction's root span at export, so tracecat and the load harness
// can say where a slow transaction's time went.
//
// The package sits at the bottom of the import graph on purpose: lock
// and store are imported *by* action, which trace imports, so neither
// may import trace. They import this leaf instead (stdlib + ids only).
// Layers that know only an action identifier (lock owner, WAL record)
// resolve it through the action→trace binding the trace recorders
// maintain via Bind.
//
// Both tables are bounded: traces that never complete (crashed
// coordinators, dropped exports) are evicted FIFO rather than leaking.
// Recording against an unknown, evicted or unbound key is a cheap no-op
// — attribution is best-effort telemetry, never load-bearing.
package phase

import (
	"sync"
	"sync/atomic"
	"time"

	"mca/internal/ids"
)

// Phase names, the keys of an exported breakdown. Raw sums may overlap
// (an rpc call *contains* the server's serve time, which contains its
// force-wait); consumers derive exclusive views, e.g. network ≈ rpc −
// serve − queue. Under parallel fan-out, sums across participants may
// legitimately exceed the transaction's wall-clock duration.
const (
	// Lock is time blocked in the lock manager waiting for a
	// conflicting holder, on any node.
	Lock = "lock"
	// Force is time a WAL append waited for its record to become
	// durable (group-commit window + force), on any node.
	Force = "force"
	// RPC is client-observed call time: send to reply, including
	// retries, the wire and the remote handler.
	RPC = "rpc"
	// Serve is server-side handler time of those calls (dispatch to
	// reply written); RPC − Serve − Queue approximates the network.
	Serve = "serve"
	// Queue is time a request waited in the RPC serve pool between
	// arrival and handler start.
	Queue = "queue"
	// Round is wall-clock time of the transaction's commit-protocol
	// fan-out rounds (prepare/commit/abort), each round counted once.
	Round = "round"
)

// Names lists every phase in presentation order.
var Names = []string{Lock, Force, RPC, Serve, Queue, Round}

const phaseCount = 6

func phaseIndex(name string) int {
	switch name {
	case Lock:
		return 0
	case Force:
		return 1
	case RPC:
		return 2
	case Serve:
		return 3
	case Queue:
		return 4
	case Round:
		return 5
	default:
		return -1
	}
}

// ledger accumulates per-phase nanoseconds for one trace.
type ledger struct {
	ns [phaseCount]atomic.Int64
}

const (
	shardCount = 16
	// maxLedgers and maxBinds bound each shard's table; the totals
	// (4096 in-flight traces, 16384 bound actions) are far above any
	// realistic in-flight population, so eviction only ever hits
	// abandoned entries.
	maxLedgers = 4096 / shardCount
	maxBinds   = 16384 / shardCount
)

type ledgerShard struct {
	mu      sync.Mutex
	ledgers map[uint64]*ledger
	order   []uint64 // insertion order, for FIFO eviction
}

type bindShard struct {
	mu     sync.Mutex
	traces map[ids.ActionID]uint64
	order  []ids.ActionID
}

var (
	ledgerShards [shardCount]ledgerShard
	bindShards   [shardCount]bindShard
)

func init() {
	for i := range ledgerShards {
		ledgerShards[i].ledgers = make(map[uint64]*ledger)
	}
	for i := range bindShards {
		bindShards[i].traces = make(map[ids.ActionID]uint64)
	}
}

// mix spreads sequentially-allocated identifiers across shards
// (splitmix64 finalizer).
func mix(v uint64) uint64 {
	v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9
	v = (v ^ (v >> 27)) * 0x94D049BB133111EB
	return v ^ (v >> 31)
}

func (s *ledgerShard) get(trace uint64, create bool) *ledger {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.ledgers[trace]; ok {
		return l
	}
	if !create {
		return nil
	}
	for len(s.ledgers) >= maxLedgers && len(s.order) > 0 {
		old := s.order[0]
		s.order = s.order[1:]
		delete(s.ledgers, old)
	}
	l := &ledger{}
	s.ledgers[trace] = l
	s.order = append(s.order, trace)
	return l
}

func ledgerOf(trace uint64, create bool) *ledger {
	if trace == 0 {
		return nil
	}
	return ledgerShards[mix(trace)&(shardCount-1)].get(trace, create)
}

// Record adds d to the named phase of the trace's ledger, creating the
// ledger on first use. Zero trace identifiers, unknown phase names and
// non-positive durations are ignored.
func Record(trace uint64, name string, d time.Duration) {
	if trace == 0 || d <= 0 {
		return
	}
	i := phaseIndex(name)
	if i < 0 {
		return
	}
	if l := ledgerOf(trace, true); l != nil {
		l.ns[i].Add(int64(d))
	}
}

// Bind associates an action with a trace so layers that only see action
// identifiers (lock owners, WAL records) can attribute waits.
// trace.Recorder calls this from StartTrace/JoinTrace. The first
// binding wins, mirroring the recorder's duplicate-join semantics.
func Bind(a ids.ActionID, trace uint64) {
	if a == 0 || trace == 0 {
		return
	}
	s := &bindShards[mix(uint64(a))&(shardCount-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.traces[a]; ok {
		return
	}
	for len(s.traces) >= maxBinds && len(s.order) > 0 {
		old := s.order[0]
		s.order = s.order[1:]
		delete(s.traces, old)
	}
	s.traces[a] = trace
	s.order = append(s.order, a)
}

// TraceOf resolves an action's bound trace, zero if unbound.
func TraceOf(a ids.ActionID) uint64 {
	if a == 0 {
		return 0
	}
	s := &bindShards[mix(uint64(a))&(shardCount-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.traces[a]
}

// RecordAction is Record through the action→trace binding: a no-op for
// unbound (untraced) actions.
func RecordAction(a ids.ActionID, name string, d time.Duration) {
	if tid := TraceOf(a); tid != 0 {
		Record(tid, name, d)
	}
}

// Snapshot returns the trace's accumulated breakdown in nanoseconds,
// omitting zero phases; nil when nothing was recorded.
func Snapshot(trace uint64) map[string]int64 {
	l := ledgerOf(trace, false)
	if l == nil {
		return nil
	}
	var out map[string]int64
	for i, name := range Names {
		if v := l.ns[i].Load(); v > 0 {
			if out == nil {
				out = make(map[string]int64, phaseCount)
			}
			out[name] = v
		}
	}
	return out
}

// Discard drops the trace's ledger (tail sampler drop path). Later
// records for the same trace recreate an empty ledger; the FIFO bound
// keeps those partial stragglers from accumulating.
func Discard(trace uint64) {
	if trace == 0 {
		return
	}
	s := &ledgerShards[mix(trace)&(shardCount-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.ledgers, trace)
}

// Reset clears both tables. Tests use it to isolate the process-global
// state; production code never calls it.
func Reset() {
	for i := range ledgerShards {
		s := &ledgerShards[i]
		s.mu.Lock()
		s.ledgers = make(map[uint64]*ledger)
		s.order = nil
		s.mu.Unlock()
	}
	for i := range bindShards {
		s := &bindShards[i]
		s.mu.Lock()
		s.traces = make(map[ids.ActionID]uint64)
		s.order = nil
		s.mu.Unlock()
	}
}
