package phase

import (
	"sync"
	"testing"
	"time"

	"mca/internal/ids"
)

func TestRecordSnapshotRoundtrip(t *testing.T) {
	Reset()
	const tid = 0xabc1
	Record(tid, Lock, 3*time.Millisecond)
	Record(tid, Lock, 2*time.Millisecond)
	Record(tid, Force, 5*time.Millisecond)
	got := Snapshot(tid)
	if got[Lock] != (5 * time.Millisecond).Nanoseconds() {
		t.Fatalf("lock = %d, want accumulated 5ms", got[Lock])
	}
	if got[Force] != (5 * time.Millisecond).Nanoseconds() {
		t.Fatalf("force = %d, want 5ms", got[Force])
	}
	if _, ok := got[RPC]; ok {
		t.Fatalf("zero phase present in snapshot: %v", got)
	}
}

func TestRecordIgnoresJunk(t *testing.T) {
	Reset()
	Record(0, Lock, time.Second)         // zero trace
	Record(0xabc2, "bogus", time.Second) // unknown phase
	Record(0xabc2, Lock, -time.Second)   // negative duration
	Record(0xabc2, Lock, 0)              // zero duration
	if got := Snapshot(0xabc2); got != nil {
		t.Fatalf("junk records created a ledger: %v", got)
	}
}

func TestBindFirstWins(t *testing.T) {
	Reset()
	a := ids.ActionID(7)
	Bind(a, 100)
	Bind(a, 200) // duplicate join: ignored
	if got := TraceOf(a); got != 100 {
		t.Fatalf("TraceOf = %d, want first binding 100", got)
	}
	RecordAction(a, Force, time.Millisecond)
	if got := Snapshot(100)[Force]; got != time.Millisecond.Nanoseconds() {
		t.Fatalf("RecordAction landed %d in trace 100, want 1ms", got)
	}
	if Snapshot(200) != nil {
		t.Fatalf("RecordAction leaked into the losing binding")
	}
}

func TestRecordActionUnboundIsNoop(t *testing.T) {
	Reset()
	RecordAction(ids.ActionID(99), Lock, time.Second)
	if got := TraceOf(ids.ActionID(99)); got != 0 {
		t.Fatalf("unbound action resolved to trace %d", got)
	}
}

func TestDiscardDropsLedger(t *testing.T) {
	Reset()
	Record(0xabc3, Queue, time.Millisecond)
	Discard(0xabc3)
	if got := Snapshot(0xabc3); got != nil {
		t.Fatalf("discarded ledger still readable: %v", got)
	}
	// Stragglers after a discard recreate an empty ledger, bounded by
	// the FIFO cap — they must not resurrect the old totals.
	Record(0xabc3, Queue, time.Microsecond)
	if got := Snapshot(0xabc3)[Queue]; got != time.Microsecond.Nanoseconds() {
		t.Fatalf("post-discard record = %d, want fresh 1µs", got)
	}
}

func TestLedgerTableBounded(t *testing.T) {
	Reset()
	// Fill far past the global bound; the tables must stay capped and
	// the newest entries must survive.
	const n = shardCount * maxLedgers * 2
	for i := uint64(1); i <= n; i++ {
		Record(i, Round, time.Millisecond)
	}
	total := 0
	for i := range ledgerShards {
		s := &ledgerShards[i]
		s.mu.Lock()
		if len(s.ledgers) > maxLedgers {
			s.mu.Unlock()
			t.Fatalf("shard %d holds %d ledgers, cap %d", i, len(s.ledgers), maxLedgers)
		}
		total += len(s.ledgers)
		s.mu.Unlock()
	}
	if total == 0 {
		t.Fatalf("eviction dropped everything")
	}
	if Snapshot(n) == nil {
		t.Fatalf("newest ledger evicted")
	}
}

func TestConcurrentRecording(t *testing.T) {
	Reset()
	const tid = 0xabc4
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				Record(tid, RPC, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := Snapshot(tid)[RPC]; got != 8*1000*time.Microsecond.Nanoseconds() {
		t.Fatalf("concurrent total = %d, want %d", got, 8*1000*time.Microsecond.Nanoseconds())
	}
}
