package billing_test

import (
	"errors"
	"testing"
	"time"

	"mca/internal/action"
	"mca/internal/billing"
	"mca/internal/object"
	"mca/internal/store"
)

func TestChargeSurvivesInvokerAbort(t *testing.T) {
	// Example (iii): "the charging information should not be
	// recovered if the action aborts".
	rt := action.NewRuntime()
	st := store.NewStable()
	ledger := billing.New(rt, object.WithStore(st))

	app, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := ledger.Charge(app, "ada", 25, "cpu time"); err != nil {
		t.Fatalf("Charge: %v", err)
	}
	if err := app.Abort(); err != nil {
		t.Fatal(err)
	}

	total, err := ledger.Total("ada")
	if err != nil {
		t.Fatal(err)
	}
	if total != 25 {
		t.Fatalf("total = %d, want 25 (charge must survive abort)", total)
	}
}

func TestChargesAccumulate(t *testing.T) {
	rt := action.NewRuntime()
	ledger := billing.New(rt)

	app, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := ledger.Charge(app, "bob", 10, "disk"); err != nil {
			t.Fatal(err)
		}
	}
	if err := ledger.Charge(app, "carol", 5, "net"); err != nil {
		t.Fatal(err)
	}
	_ = app.Commit()

	if total, err := ledger.Total("bob"); err != nil || total != 30 {
		t.Fatalf("bob total = %d, %v", total, err)
	}
	if total, err := ledger.Total("carol"); err != nil || total != 5 {
		t.Fatalf("carol total = %d, %v", total, err)
	}
	entries, err := ledger.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("entries = %d", len(entries))
	}
}

func TestTotalUnknownCustomer(t *testing.T) {
	rt := action.NewRuntime()
	ledger := billing.New(rt)
	if _, err := ledger.Total("ghost"); !errors.Is(err, billing.ErrUnknownCustomer) {
		t.Fatalf("Total = %v, want ErrUnknownCustomer", err)
	}
}

func TestChargeAsync(t *testing.T) {
	rt := action.NewRuntime()
	ledger := billing.New(rt)

	app, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	h, err := ledger.ChargeAsync(app, "dan", 7, "async")
	if err != nil {
		t.Fatal(err)
	}
	// Invoker aborts while the charge may still be in flight.
	if err := app.Abort(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-h.Done():
		if err := h.Wait(); err != nil {
			t.Fatalf("async charge: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("async charge never completed")
	}
	if total, err := ledger.Total("dan"); err != nil || total != 7 {
		t.Fatalf("dan total = %d, %v", total, err)
	}
}

func TestFailedChargeIsUndone(t *testing.T) {
	// The independent action itself aborts: its own atomicity holds.
	rt := action.NewRuntime()
	ledger := billing.New(rt)

	app, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// A charge of a ledger that errors inside: simulate by charging,
	// then verifying an aborted independent action leaves no trace —
	// drive via the structure underneath: charge to "x" succeeds,
	// so instead check atomicity by a conflicting concurrent state.
	if err := ledger.Charge(app, "erin", 9, "ok"); err != nil {
		t.Fatal(err)
	}
	_ = app.Commit()
	entries, err := ledger.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestChargeAccessibleWhileInvokerActive(t *testing.T) {
	// Accounting data must not stay locked by the application.
	rt := action.NewRuntime()
	ledger := billing.New(rt)

	app, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := ledger.Charge(app, "f", 1, "m"); err != nil {
		t.Fatal(err)
	}
	// Read the total while the application is still running.
	if total, err := ledger.Total("f"); err != nil || total != 1 {
		t.Fatalf("total while app active = %d, %v", total, err)
	}
	_ = app.Abort()
}
