// Package billing implements the paper's example (iii): accounting of
// resource usage. "If a service is accessed by an action and the user of
// the service is to be charged, then the charging information should not
// be recovered if the action aborts" — so charges are recorded by
// top-level independent actions.
package billing

import (
	"errors"

	"mca/internal/action"
	"mca/internal/object"
	"mca/internal/structures"
)

// ErrUnknownCustomer is returned by Total for customers never charged.
var ErrUnknownCustomer = errors.New("billing: unknown customer")

// Charge is one ledger entry.
type Charge struct {
	Customer string `json:"customer"`
	Amount   int    `json:"amount"`
	Memo     string `json:"memo"`
}

// ledgerState is the persistent ledger.
type ledgerState struct {
	Entries []Charge       `json:"entries"`
	Totals  map[string]int `json:"totals"`
}

// Ledger records service charges.
type Ledger struct {
	rt  *action.Runtime
	obj *object.Managed[ledgerState]
}

// New creates a ledger; pass object.WithStore for persistence.
func New(rt *action.Runtime, opts ...object.Option) *Ledger {
	return &Ledger{
		rt:  rt,
		obj: object.New(ledgerState{Totals: map[string]int{}}, opts...),
	}
}

// Charge records a charge as a synchronous top-level independent action:
// it survives the invoking action's abort.
func (l *Ledger) Charge(invoker *action.Action, customer string, amount int, memo string) error {
	return structures.RunIndependent(invoker, func(a *action.Action) error {
		return l.record(a, customer, amount, memo)
	})
}

// ChargeAsync records a charge asynchronously (fig 7b).
func (l *Ledger) ChargeAsync(invoker *action.Action, customer string, amount int, memo string) (*structures.Handle, error) {
	return structures.SpawnIndependent(invoker, func(a *action.Action) error {
		return l.record(a, customer, amount, memo)
	})
}

func (l *Ledger) record(a *action.Action, customer string, amount int, memo string) error {
	return l.obj.Write(a, func(s *ledgerState) error {
		if s.Totals == nil {
			s.Totals = map[string]int{}
		}
		s.Entries = append(s.Entries, Charge{Customer: customer, Amount: amount, Memo: memo})
		s.Totals[customer] += amount
		return nil
	})
}

// Total returns the accumulated charges for a customer, read under a
// fresh top-level action.
func (l *Ledger) Total(customer string) (int, error) {
	var (
		total int
		known bool
	)
	err := l.rt.Run(func(a *action.Action) error {
		return l.obj.Read(a, func(s ledgerState) error {
			total, known = s.Totals[customer]
			return nil
		})
	})
	if err != nil {
		return 0, err
	}
	if !known {
		return 0, ErrUnknownCustomer
	}
	return total, nil
}

// Entries returns a copy of the full ledger, read under a fresh
// top-level action.
func (l *Ledger) Entries() ([]Charge, error) {
	var out []Charge
	err := l.rt.Run(func(a *action.Action) error {
		return l.obj.Read(a, func(s ledgerState) error {
			out = append(out, s.Entries...)
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
