package structures_test

import (
	"errors"
	"testing"

	"mca/internal/action"
	"mca/internal/colour"
	"mca/internal/lock"
	"mca/internal/object"
	"mca/internal/structures"
)

func TestSerializingInvokedFromWithinAnAction(t *testing.T) {
	// A serializing action started inside another action behaves like
	// a system of top-level actions: the invoker's abort does not undo
	// committed constituents.
	rt := action.NewRuntime()
	o := newCounter(0, nil)

	invoker, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	s, err := structures.BeginSerializingIn(invoker)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunConstituent(incr(o, 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.End(); err != nil {
		t.Fatal(err)
	}
	if err := invoker.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := o.Peek(); got != 5 {
		t.Fatalf("o = %d, want 5 (constituents are top-level)", got)
	}
}

func TestSerializingCancelWhileConstituentActiveFails(t *testing.T) {
	rt := action.NewRuntime()
	s, err := structures.BeginSerializing(rt)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.BeginConstituent()
	if err != nil {
		t.Fatal(err)
	}
	// End with an active constituent is a programmer error...
	if err := s.End(); !errors.Is(err, action.ErrActiveChildren) {
		t.Fatalf("End with active constituent = %v, want ErrActiveChildren", err)
	}
	// ...but the structure stays usable: finish the constituent, End
	// again.
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.End(); err != nil {
		t.Fatalf("End after completing constituent: %v", err)
	}
	if _, err := s.BeginConstituent(); !errors.Is(err, structures.ErrEnded) {
		t.Fatalf("BeginConstituent = %v, want ErrEnded", err)
	}
}

func TestChainRetryAfterFailedStageStillFindsPassedLocks(t *testing.T) {
	// A failed stage does not release the previous joint: a retry
	// stage can still take over the passed-on objects.
	rt := action.NewRuntime()
	o := newCounter(0, nil)

	chain := structures.NewChain(rt)
	if err := chain.RunStage(func(stage *structures.Stage) error {
		if err := o.Write(stage.Action, func(v *int) error { *v = 1; return nil }); err != nil {
			return err
		}
		return stage.PassOn(o.ObjectID())
	}); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("boom")
	if err := chain.RunStage(func(*structures.Stage) error { return boom }); !errors.Is(err, boom) {
		t.Fatal(err)
	}

	// Object still protected for the retry.
	stranger, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := stranger.TryLock(o.ObjectID(), lock.Write, colour.None); !errors.Is(err, lock.ErrConflict) {
		t.Fatalf("object released after failed stage: %v", err)
	}
	_ = stranger.Abort()

	// The retry succeeds and consumes the passed lock.
	if err := chain.RunStage(func(stage *structures.Stage) error {
		return o.Write(stage.Action, func(v *int) error { *v += 10; return nil })
	}); err != nil {
		t.Fatalf("retry stage: %v", err)
	}
	if err := chain.End(); err != nil {
		t.Fatal(err)
	}
	if got := o.Peek(); got != 11 {
		t.Fatalf("o = %d, want 11", got)
	}
}

func TestAnchoredInInvoker(t *testing.T) {
	// BeginAnchoredIn: the anchored action is itself nested; its
	// anchor works the same way.
	rt := action.NewRuntime()
	o := newCounter(0, nil)

	outer, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	mid, anchor, err := structures.BeginAnchoredIn(outer)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := mid.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := structures.RunIndependentTo(leaf, anchor, incr(o, 3)); err != nil {
		t.Fatal(err)
	}
	if err := leaf.Abort(); err != nil { // leaf abort does not undo
		t.Fatal(err)
	}
	if got := o.Peek(); got != 3 {
		t.Fatalf("o = %d after leaf abort", got)
	}
	if err := mid.Abort(); err != nil { // anchored abort undoes
		t.Fatal(err)
	}
	if got := o.Peek(); got != 0 {
		t.Fatalf("o = %d after anchored abort, want 0", got)
	}
	_ = outer.Abort()
}

func TestHandleDoneChannel(t *testing.T) {
	rt := action.NewRuntime()
	invoker, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	h, err := structures.SpawnIndependent(invoker, func(*action.Action) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	<-h.Done()
	if err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	// Wait is idempotent.
	if err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	_ = invoker.Abort()
}

func TestGluedFirstStageFailureAbortsWhole(t *testing.T) {
	rt := action.NewRuntime()
	o := newCounter(7, nil)
	boom := errors.New("boom")
	err := structures.Glued(rt,
		func(stage *structures.Stage) error {
			if err := o.Write(stage.Action, func(v *int) error { *v = 0; return nil }); err != nil {
				return err
			}
			return boom
		},
		func(*structures.Stage) error {
			t.Error("second stage must not run")
			return nil
		},
	)
	if !errors.Is(err, boom) {
		t.Fatalf("Glued = %v", err)
	}
	if got := o.Peek(); got != 7 {
		t.Fatalf("o = %d, want 7 restored", got)
	}
}

func TestIndependentActionsCanNest(t *testing.T) {
	// An independent action can itself invoke independent actions.
	rt := action.NewRuntime()
	inner := newCounter(0, nil)
	outer := newCounter(0, nil)

	invoker, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	err = structures.RunIndependent(invoker, func(a *action.Action) error {
		if err := incr(outer, 1)(a); err != nil {
			return err
		}
		// Nested independent: survives even this action's abort.
		if err := structures.RunIndependent(a, incr(inner, 1)); err != nil {
			return err
		}
		return errors.New("outer independent aborts")
	})
	if err == nil {
		t.Fatal("expected the outer independent action to abort")
	}
	_ = invoker.Abort()
	if got := outer.Peek(); got != 0 {
		t.Fatalf("outer = %d, want 0", got)
	}
	if got := inner.Peek(); got != 1 {
		t.Fatalf("inner = %d, want 1 (doubly-independent survives)", got)
	}
}

func TestChainStagesCount(t *testing.T) {
	rt := action.NewRuntime()
	chain := structures.NewChain(rt)
	for i := 0; i < 3; i++ {
		if err := chain.RunStage(func(*structures.Stage) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := chain.Stages(); got != 3 {
		t.Fatalf("Stages = %d", got)
	}
	if err := chain.End(); err != nil {
		t.Fatal(err)
	}
}

func TestStagePassColourAccessor(t *testing.T) {
	rt := action.NewRuntime()
	chain := structures.NewChain(rt)
	err := chain.RunStage(func(stage *structures.Stage) error {
		if stage.PassColour() == colour.None {
			t.Error("stage must expose a valid pass colour")
		}
		if !stage.Colours().Contains(stage.PassColour()) {
			t.Error("stage must possess its pass colour")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = chain.End()
}

// Regression: an object created inside a glued stage is permanent after
// the stage commits.
func TestObjectCreatedInStageIsPermanent(t *testing.T) {
	rt := action.NewRuntime()
	var created *object.Managed[int]
	chain := structures.NewChain(rt)
	if err := chain.RunStage(func(stage *structures.Stage) error {
		m, err := object.NewIn(stage.Action, colour.None, 99)
		if err != nil {
			return err
		}
		created = m
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := chain.End(); err != nil {
		t.Fatal(err)
	}
	if !created.Exists() || created.Peek() != 99 {
		t.Fatalf("created object = exists=%v val=%d", created.Exists(), created.Peek())
	}
}
