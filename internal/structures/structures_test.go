package structures_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mca/internal/action"
	"mca/internal/colour"
	"mca/internal/lock"
	"mca/internal/object"
	"mca/internal/store"
	"mca/internal/structures"
)

func newCounter(v int, st *store.Stable) *object.Managed[int] {
	if st == nil {
		return object.New(v)
	}
	return object.New(v, object.WithStore(st))
}

func incr(m *object.Managed[int], by int) func(*action.Action) error {
	return func(a *action.Action) error {
		return m.Write(a, func(v *int) error {
			*v += by
			return nil
		})
	}
}

// --- Serializing actions (figs 2, 3, 11) ---

func TestFig2NestedAbortUndoesEverything(t *testing.T) {
	// The baseline the paper contrasts with: B and C nested in atomic
	// A; A's abort undoes B's committed effects.
	rt := action.NewRuntime()
	b := newCounter(0, nil)

	a, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Run(incr(b, 10)); err != nil { // "B"
		t.Fatal(err)
	}
	if err := a.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := b.Peek(); got != 0 {
		t.Fatalf("nested system: B's effects must be undone, got %d", got)
	}
}

func TestFig3SerializingOutcomeI_NoEffects(t *testing.T) {
	// Outcome (i): B aborts, so nothing happened.
	rt := action.NewRuntime()
	st := store.NewStable()
	ob := newCounter(0, st)

	s, err := structures.BeginSerializing(rt)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err = s.RunConstituent(func(a *action.Action) error {
		if err := incr(ob, 10)(a); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("constituent = %v", err)
	}
	if err := s.End(); err != nil {
		t.Fatal(err)
	}
	if got := ob.Peek(); got != 0 {
		t.Fatalf("outcome (i): no effects expected, got %d", got)
	}
}

func TestFig3SerializingOutcomeII_BothCommit(t *testing.T) {
	// Outcome (ii): B and C commit; effects permanent and made
	// visible together when the serializing action ends.
	rt := action.NewRuntime()
	st := store.NewStable()
	ob := newCounter(0, st)
	oc := newCounter(100, st)

	s, err := structures.BeginSerializing(rt)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunConstituent(incr(ob, 10)); err != nil { // B
		t.Fatal(err)
	}

	// B's effects are already permanent (constituents are top-level
	// w.r.t. permanence)...
	if _, err := st.Read(ob.ObjectID()); err != nil {
		t.Fatalf("B's effects must be stable at B's commit: %v", err)
	}
	// ...but not visible: a stranger cannot read ob (the container
	// retains an exclusive-read lock on it).
	stranger, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := stranger.TryLock(ob.ObjectID(), lock.Read, colour.None); !errors.Is(err, lock.ErrConflict) {
		t.Fatalf("stranger read during serializing action = %v, want ErrConflict", err)
	}
	_ = stranger.Abort()

	// C reads what B wrote and writes oc.
	err = s.RunConstituent(func(a *action.Action) error {
		var bVal int
		if err := ob.Read(a, func(v int) error { bVal = v; return nil }); err != nil {
			return err
		}
		return oc.Write(a, func(v *int) error {
			*v += bVal
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.End(); err != nil {
		t.Fatal(err)
	}

	if got := ob.Peek(); got != 10 {
		t.Fatalf("ob = %d", got)
	}
	if got := oc.Peek(); got != 110 {
		t.Fatalf("oc = %d", got)
	}
	// Now visible.
	stranger2, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := stranger2.TryLock(ob.ObjectID(), lock.Read, colour.None); err != nil {
		t.Fatalf("read after serializing end: %v", err)
	}
	_ = stranger2.Abort()
}

func TestFig3SerializingOutcomeIII_BSurvivesCAbort(t *testing.T) {
	// Outcome (iii): B commits, C aborts; B's effects survive — the
	// functionality nested atomic actions cannot provide.
	rt := action.NewRuntime()
	st := store.NewStable()
	ob := newCounter(0, st)
	oc := newCounter(100, st)

	s, err := structures.BeginSerializing(rt)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunConstituent(incr(ob, 10)); err != nil { // B commits
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err = s.RunConstituent(func(a *action.Action) error { // C aborts
		if err := incr(oc, 1)(a); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if err := s.Cancel(); err != nil { // even abandoning the container
		t.Fatal(err)
	}

	if got := ob.Peek(); got != 10 {
		t.Fatalf("B's effects must survive, ob = %d", got)
	}
	if got := oc.Peek(); got != 100 {
		t.Fatalf("C's effects must be undone, oc = %d", got)
	}
	loaded, err := object.Load[int](ob.ObjectID(), st)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Peek() != 10 {
		t.Fatalf("stable ob = %d", loaded.Peek())
	}
}

func TestSerializingLockTransferBetweenConstituents(t *testing.T) {
	// The defining property: locks released by B are retained by the
	// container and acquirable by C, while strangers stay locked out
	// for the whole span.
	rt := action.NewRuntime()
	ob := newCounter(0, nil)

	s, err := structures.BeginSerializing(rt)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunConstituent(incr(ob, 1)); err != nil {
		t.Fatal(err)
	}

	// Container holds the exclusive-read companion.
	if !rt.Locks().Holds(s.Container().ID(), ob.ObjectID(), lock.ExclusiveRead, s.Colour()) {
		t.Fatal("container must retain an exclusive-read lock on B's written object")
	}

	// C can write it again.
	if err := s.RunConstituent(incr(ob, 1)); err != nil {
		t.Fatalf("second constituent write: %v", err)
	}
	if err := s.End(); err != nil {
		t.Fatal(err)
	}
	if got := ob.Peek(); got != 2 {
		t.Fatalf("ob = %d", got)
	}
}

func TestSerializingConcurrentConstituents(t *testing.T) {
	// Fig 8 shape: constituents may run concurrently (distinct reds).
	rt := action.NewRuntime()
	counters := make([]*object.Managed[int], 8)
	for i := range counters {
		counters[i] = newCounter(0, nil)
	}

	s, err := structures.BeginSerializing(rt)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(counters))
	for _, m := range counters {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- s.RunConstituent(incr(m, 5))
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("constituent: %v", err)
		}
	}
	if err := s.End(); err != nil {
		t.Fatal(err)
	}
	for i, m := range counters {
		if got := m.Peek(); got != 5 {
			t.Fatalf("counter %d = %d", i, got)
		}
	}
}

func TestSerializingEndTwice(t *testing.T) {
	rt := action.NewRuntime()
	s, err := structures.BeginSerializing(rt)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.End(); err != nil {
		t.Fatal(err)
	}
	if err := s.End(); !errors.Is(err, structures.ErrEnded) {
		t.Fatalf("second End = %v, want ErrEnded", err)
	}
	if _, err := s.BeginConstituent(); !errors.Is(err, structures.ErrEnded) {
		t.Fatalf("BeginConstituent after End = %v, want ErrEnded", err)
	}
	if err := s.Cancel(); err != nil {
		t.Fatalf("Cancel after End must be a no-op: %v", err)
	}
}

// --- Glued actions (figs 4, 5, 6, 12) ---

func TestFig5GluedPassesExactlyTheSubset(t *testing.T) {
	// A modifies O (o1, o2, o3) and passes on P = {o1}. After A
	// commits, o2 and o3 are free for strangers while o1 stays locked
	// for B.
	rt := action.NewRuntime()
	st := store.NewStable()
	o1 := newCounter(1, st)
	o2 := newCounter(2, st)
	o3 := newCounter(3, st)

	chain := structures.NewChain(rt)
	err := chain.RunStage(func(stage *structures.Stage) error {
		for _, m := range []*object.Managed[int]{o1, o2, o3} {
			if err := m.Write(stage.Action, func(v *int) error {
				*v *= 10
				return nil
			}); err != nil {
				return err
			}
		}
		return stage.PassOn(o1.ObjectID())
	})
	if err != nil {
		t.Fatalf("stage A: %v", err)
	}

	// A's effects are permanent.
	for _, m := range []*object.Managed[int]{o1, o2, o3} {
		if _, err := st.Read(m.ObjectID()); err != nil {
			t.Fatalf("A's write to %v not stable: %v", m.ObjectID(), err)
		}
	}

	// o2, o3 are free; o1 is not.
	stranger, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := stranger.TryLock(o2.ObjectID(), lock.Write, colour.None); err != nil {
		t.Fatalf("o2 must be free after A commits: %v", err)
	}
	if err := stranger.TryLock(o3.ObjectID(), lock.Write, colour.None); err != nil {
		t.Fatalf("o3 must be free after A commits: %v", err)
	}
	if err := stranger.TryLock(o1.ObjectID(), lock.Write, colour.None); !errors.Is(err, lock.ErrConflict) {
		t.Fatalf("o1 must stay locked for B, got %v", err)
	}
	_ = stranger.Abort()

	// B writes the passed object.
	err = chain.RunStage(func(stage *structures.Stage) error {
		return o1.Write(stage.Action, func(v *int) error {
			*v++
			return nil
		})
	})
	if err != nil {
		t.Fatalf("stage B: %v", err)
	}
	if err := chain.End(); err != nil {
		t.Fatal(err)
	}
	if got := o1.Peek(); got != 11 {
		t.Fatalf("o1 = %d, want 11", got)
	}
}

func TestGluedSecondStageAbortKeepsFirstStageEffects(t *testing.T) {
	// §3.2: "The effects of A on P should not be recovered if B
	// fails."
	rt := action.NewRuntime()
	o1 := newCounter(1, nil)

	chain := structures.NewChain(rt)
	if err := chain.RunStage(func(stage *structures.Stage) error {
		if err := o1.Write(stage.Action, func(v *int) error { *v = 42; return nil }); err != nil {
			return err
		}
		return stage.PassOn(o1.ObjectID())
	}); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("boom")
	err := chain.RunStage(func(stage *structures.Stage) error {
		if err := o1.Write(stage.Action, func(v *int) error { *v = 0; return nil }); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if err := chain.End(); err != nil {
		t.Fatal(err)
	}
	if got := o1.Peek(); got != 42 {
		t.Fatalf("o1 = %d, want 42 (A's effects survive B's abort)", got)
	}
}

func TestGluedHelperTwoStages(t *testing.T) {
	rt := action.NewRuntime()
	o := newCounter(0, nil)
	err := structures.Glued(rt,
		func(stage *structures.Stage) error {
			if err := o.Write(stage.Action, func(v *int) error { *v = 1; return nil }); err != nil {
				return err
			}
			return stage.PassOn(o.ObjectID())
		},
		func(stage *structures.Stage) error {
			return o.Write(stage.Action, func(v *int) error { *v += 10; return nil })
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Peek(); got != 11 {
		t.Fatalf("o = %d", got)
	}
}

func TestChainNarrowsLocksPerRound(t *testing.T) {
	// Fig 9: each round passes on fewer objects; objects dropped in
	// round i become free as soon as round i+1 completes.
	rt := action.NewRuntime()
	slots := make([]*object.Managed[int], 4)
	for i := range slots {
		slots[i] = newCounter(i, nil)
	}

	chain := structures.NewChain(rt)
	// Round 1: lock all slots, pass on all 4.
	if err := chain.RunStage(func(stage *structures.Stage) error {
		for _, s := range slots {
			if err := s.Write(stage.Action, func(v *int) error { return nil }); err != nil {
				return err
			}
			if err := stage.PassOn(s.ObjectID()); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Round 2: keep only slots[0] and slots[1].
	if err := chain.RunStage(func(stage *structures.Stage) error {
		for _, s := range slots[:2] {
			if err := s.Write(stage.Action, func(v *int) error { return nil }); err != nil {
				return err
			}
			if err := stage.PassOn(s.ObjectID()); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// slots[2], slots[3] must now be free; slots[0] still held.
	stranger, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range slots[2:] {
		if err := stranger.TryLock(s.ObjectID(), lock.Write, colour.None); err != nil {
			t.Fatalf("dropped slot %v must be free: %v", s.ObjectID(), err)
		}
	}
	if err := stranger.TryLock(slots[0].ObjectID(), lock.Write, colour.None); !errors.Is(err, lock.ErrConflict) {
		t.Fatalf("kept slot must stay locked, got %v", err)
	}
	_ = stranger.Abort()

	if err := chain.End(); err != nil {
		t.Fatal(err)
	}
	// Everything free after the chain ends.
	stranger2, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range slots {
		if err := stranger2.TryLock(s.ObjectID(), lock.Write, colour.None); err != nil {
			t.Fatalf("slot %v must be free after End: %v", s.ObjectID(), err)
		}
	}
	_ = stranger2.Abort()
}

func TestFig6ConcurrentGluedChains(t *testing.T) {
	// n concurrent A_i -> B_i glued pairs over disjoint objects.
	rt := action.NewRuntime()
	const n = 6
	var wg sync.WaitGroup
	errs := make(chan error, n)
	results := make([]*object.Managed[int], n)
	for i := 0; i < n; i++ {
		results[i] = newCounter(0, nil)
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := results[i]
			errs <- structures.Glued(rt,
				func(stage *structures.Stage) error {
					if err := m.Write(stage.Action, func(v *int) error { *v = 1; return nil }); err != nil {
						return err
					}
					return stage.PassOn(m.ObjectID())
				},
				func(stage *structures.Stage) error {
					return m.Write(stage.Action, func(v *int) error { *v += 1; return nil })
				},
			)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("glued pair: %v", err)
		}
	}
	for i, m := range results {
		if got := m.Peek(); got != 2 {
			t.Fatalf("chain %d result = %d", i, got)
		}
	}
}

func TestChainAfterEnd(t *testing.T) {
	rt := action.NewRuntime()
	chain := structures.NewChain(rt)
	if err := chain.End(); err != nil {
		t.Fatal(err)
	}
	if err := chain.End(); !errors.Is(err, structures.ErrEnded) {
		t.Fatalf("End twice = %v, want ErrEnded", err)
	}
	err := chain.RunStage(func(*structures.Stage) error { return nil })
	if !errors.Is(err, structures.ErrEnded) {
		t.Fatalf("RunStage after End = %v, want ErrEnded", err)
	}
}

// --- Independent actions (figs 7, 13, 14, 15) ---

func TestFig7aSyncIndependentSurvivesInvokerAbort(t *testing.T) {
	rt := action.NewRuntime()
	st := store.NewStable()
	board := newCounter(0, st)
	app := newCounter(0, nil)

	invoker, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := incr(app, 1)(invoker); err != nil {
		t.Fatal(err)
	}
	// Synchronous independent action B.
	if err := structures.RunIndependent(invoker, incr(board, 10)); err != nil {
		t.Fatal(err)
	}
	// B's effects are permanent already.
	if _, err := st.Read(board.ObjectID()); err != nil {
		t.Fatalf("independent action's effects not stable: %v", err)
	}
	// Invoker aborts; B's effects survive, invoker's are undone.
	if err := invoker.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := board.Peek(); got != 10 {
		t.Fatalf("board = %d, want 10", got)
	}
	if got := app.Peek(); got != 0 {
		t.Fatalf("app = %d, want 0", got)
	}
}

func TestFig7aSyncIndependentAbortReportsToInvoker(t *testing.T) {
	// "Subsequent activities of A can be made to depend upon the
	// outcome of B."
	rt := action.NewRuntime()
	board := newCounter(0, nil)

	invoker, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("board full")
	err = structures.RunIndependent(invoker, func(a *action.Action) error {
		if err := incr(board, 10)(a); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("independent outcome = %v, want %v", err, boom)
	}
	if got := board.Peek(); got != 0 {
		t.Fatalf("aborted independent action left effects: %d", got)
	}
	_ = invoker.Abort()
}

func TestFig7bAsyncIndependent(t *testing.T) {
	rt := action.NewRuntime()
	board := newCounter(0, nil)

	invoker, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	h, err := structures.SpawnIndependent(invoker, func(a *action.Action) error {
		<-release
		return incr(board, 7)(a)
	})
	if err != nil {
		t.Fatal(err)
	}
	// The invoker commits while B is still running.
	if err := invoker.Commit(); err != nil {
		t.Fatalf("invoker commit with async independent running: %v", err)
	}
	close(release)
	if err := h.Wait(); err != nil {
		t.Fatalf("async independent: %v", err)
	}
	if got := board.Peek(); got != 7 {
		t.Fatalf("board = %d", got)
	}
}

func TestFig7bAsyncIndependentSurvivesInvokerAbort(t *testing.T) {
	rt := action.NewRuntime()
	board := newCounter(0, nil)

	invoker, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	h, err := structures.SpawnIndependent(invoker, func(a *action.Action) error {
		close(started)
		<-release
		return incr(board, 3)(a)
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := invoker.Abort(); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := h.Wait(); err != nil {
		t.Fatalf("independent action must complete despite invoker abort: %v", err)
	}
	if got := board.Peek(); got != 3 {
		t.Fatalf("board = %d", got)
	}
}

func TestFig13IndependentCanReadInvokersLockedData(t *testing.T) {
	// The paper's caveat: in the coloured system (13b) the nested
	// independent action CAN read objects the invoker write-locked —
	// where true top-level invocation (13a) would deadlock — at the
	// price of not being "strictly speaking" independent.
	rt := action.NewRuntime()
	o := newCounter(5, nil)

	invoker, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Write(invoker, func(v *int) error { *v = 6; return nil }); err != nil {
		t.Fatal(err)
	}

	var seen int
	err = structures.RunIndependent(invoker, func(a *action.Action) error {
		return o.Read(a, func(v int) error {
			seen = v
			return nil
		})
	})
	if err != nil {
		t.Fatalf("nested independent read over invoker's write lock: %v", err)
	}
	if seen != 6 {
		t.Fatalf("saw %d, want the invoker's uncommitted 6", seen)
	}
	_ = invoker.Abort()
}

func TestFig13TrueTopLevelWouldDeadlock(t *testing.T) {
	// Contrast case (13a): an unrelated top-level action requesting
	// the invoker's write-locked object cannot proceed; with a
	// bounded wait it times out (the deadlock the paper describes).
	rt := action.NewRuntime(action.WithMaxLockWait(30 * time.Millisecond))
	o := newCounter(5, nil)

	invoker, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Write(invoker, func(v *int) error { *v = 6; return nil }); err != nil {
		t.Fatal(err)
	}

	outsider, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	err = o.Read(outsider, func(int) error { return nil })
	if !errors.Is(err, lock.ErrTimeout) {
		t.Fatalf("outsider read = %v, want ErrTimeout (deadlock of fig 13a)", err)
	}
	_ = outsider.Abort()
	_ = invoker.Abort()
}

func TestFig15NLevelIndependent(t *testing.T) {
	// A(red, blue-private) > B(red) > E(blue). C green independent of
	// A; F green independent of B.
	rt := action.NewRuntime()
	st := store.NewStable()
	oD := newCounter(0, nil) // written by B (red)
	oE := newCounter(0, nil) // written by E (blue -> A's level)
	oC := newCounter(0, st)  // written by C (independent)
	oF := newCounter(0, st)  // written by F (independent)

	a, anchor, err := structures.BeginAnchored(rt)
	if err != nil {
		t.Fatal(err)
	}
	// C: top-level independent from A.
	if err := structures.RunIndependent(a, incr(oC, 1)); err != nil {
		t.Fatal(err)
	}

	b, err := a.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if b.Colours().Contains(anchor.Colour()) {
		t.Fatal("anchor colour must not be inherited by children")
	}
	if err := incr(oD, 1)(b); err != nil { // D: B's own work
		t.Fatal(err)
	}
	// F: top-level independent from B.
	if err := structures.RunIndependent(b, incr(oF, 1)); err != nil {
		t.Fatal(err)
	}
	// E: second-level independent — commits to A's level.
	if err := structures.RunIndependentTo(b, anchor, incr(oE, 1)); err != nil {
		t.Fatal(err)
	}

	// B aborts after E committed: E's effects survive (they belong to
	// A's level now), D's do not.
	if err := b.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := oE.Peek(); got != 1 {
		t.Fatalf("oE = %d: B's abort must not undo E", got)
	}
	if got := oD.Peek(); got != 0 {
		t.Fatalf("oD = %d: B's abort must undo D", got)
	}

	// A aborts: E's effects undone; C's and F's survive.
	if err := a.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := oE.Peek(); got != 0 {
		t.Fatalf("oE = %d: A's abort must undo E", got)
	}
	if got := oC.Peek(); got != 1 {
		t.Fatalf("oC = %d: C must survive", got)
	}
	if got := oF.Peek(); got != 1 {
		t.Fatalf("oF = %d: F must survive", got)
	}
}

func TestFig15CommitPath(t *testing.T) {
	// Same structure, but everything commits: E's effects become
	// permanent when A commits.
	rt := action.NewRuntime()
	st := store.NewStable()
	oE := newCounter(0, st)

	a, anchor, err := structures.BeginAnchored(rt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := a.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := structures.RunIndependentTo(b, anchor, incr(oE, 5)); err != nil {
		t.Fatal(err)
	}
	// Not yet stable: blue is retained by A.
	if _, err := st.Read(oE.ObjectID()); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("E's effects stable too early: %v", err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Read(oE.ObjectID()); err != nil {
		t.Fatalf("E's effects must be stable after A commits: %v", err)
	}
	if got := oE.Peek(); got != 5 {
		t.Fatalf("oE = %d", got)
	}
}

func TestSpawnIndependentTo(t *testing.T) {
	rt := action.NewRuntime()
	o := newCounter(0, nil)

	a, anchor, err := structures.BeginAnchored(rt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := a.Begin()
	if err != nil {
		t.Fatal(err)
	}
	h, err := structures.SpawnIndependentTo(b, anchor, incr(o, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := o.Peek(); got != 2 {
		t.Fatalf("o = %d", got)
	}
	if err := a.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := o.Peek(); got != 0 {
		t.Fatalf("o = %d after anchored abort, want 0", got)
	}
}

func TestSerializingViaChainEquivalence(t *testing.T) {
	// §3.2: "if all of the locks held by A are passed on to B, the
	// system of glued actions becomes identical to the serializing
	// action system". Verify the observable outcome matches.
	rt := action.NewRuntime()

	runGluedAllPassed := func(o *object.Managed[int]) error {
		return structures.Glued(rt,
			func(stage *structures.Stage) error {
				if err := o.Write(stage.Action, func(v *int) error { *v += 1; return nil }); err != nil {
					return err
				}
				return stage.PassOn(o.ObjectID())
			},
			func(stage *structures.Stage) error {
				return o.Write(stage.Action, func(v *int) error { *v *= 10; return nil })
			},
		)
	}
	runSerializing := func(o *object.Managed[int]) error {
		s, err := structures.BeginSerializing(rt)
		if err != nil {
			return err
		}
		if err := s.RunConstituent(func(a *action.Action) error {
			return o.Write(a, func(v *int) error { *v += 1; return nil })
		}); err != nil {
			return err
		}
		if err := s.RunConstituent(func(a *action.Action) error {
			return o.Write(a, func(v *int) error { *v *= 10; return nil })
		}); err != nil {
			return err
		}
		return s.End()
	}

	g := newCounter(1, nil)
	s := newCounter(1, nil)
	if err := runGluedAllPassed(g); err != nil {
		t.Fatal(err)
	}
	if err := runSerializing(s); err != nil {
		t.Fatal(err)
	}
	if g.Peek() != s.Peek() {
		t.Fatalf("glued(all passed) = %d, serializing = %d; must be identical", g.Peek(), s.Peek())
	}
}
