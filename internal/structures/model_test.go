package structures_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mca/internal/action"
	"mca/internal/object"
	"mca/internal/structures"
)

// TestSerializingModelEquivalence is a model-based property test: random
// serializing runs — constituents applying random deltas to random
// objects and committing or aborting at random, with the container ended
// or cancelled at random — must match a trivial reference model in which
// a constituent's effects apply exactly when it commits, regardless of
// anything that happens later.
func TestSerializingModelEquivalence(t *testing.T) {
	run := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rt := action.NewRuntime()

		const nObjs = 4
		objs := make([]*object.Managed[int], nObjs)
		model := make([]int, nObjs)
		for i := range objs {
			objs[i] = object.New(0)
		}

		s, err := structures.BeginSerializing(rt)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		steps := 1 + rng.Intn(5)
		for step := 0; step < steps; step++ {
			var (
				touched []int
				deltas  []int
			)
			writes := 1 + rng.Intn(3)
			fails := rng.Intn(3) == 0
			err := s.RunConstituent(func(a *action.Action) error {
				for w := 0; w < writes; w++ {
					i := rng.Intn(nObjs)
					d := rng.Intn(9) - 4
					if err := objs[i].Write(a, func(v *int) error {
						*v += d
						return nil
					}); err != nil {
						return err
					}
					touched = append(touched, i)
					deltas = append(deltas, d)
				}
				if fails {
					return errInjectedModel
				}
				return nil
			})
			switch {
			case err == nil:
				// Committed: model applies the deltas, permanently.
				for k, i := range touched {
					model[i] += deltas[k]
				}
			case fails:
				// Aborted as planned: model unchanged.
			default:
				t.Logf("seed %d: unexpected constituent error %v", seed, err)
				return false
			}
		}
		// End or Cancel: neither may change committed effects.
		if rng.Intn(2) == 0 {
			err = s.End()
		} else {
			err = s.Cancel()
		}
		if err != nil {
			t.Logf("seed %d: finish: %v", seed, err)
			return false
		}
		for i := range objs {
			if objs[i].Peek() != model[i] {
				t.Logf("seed %d: obj %d = %d, model %d", seed, i, objs[i].Peek(), model[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

var errInjectedModel = errModel("injected")

type errModel string

func (e errModel) Error() string { return string(e) }

// TestNLevelIndependentDepth3 extends fig 15 one level deeper: anchors
// at two different levels, a leaf committing to each, and aborts peeling
// effects exactly one level at a time.
func TestNLevelIndependentDepth3(t *testing.T) {
	rt := action.NewRuntime()
	toTop := newCounter(0, nil)
	toMid := newCounter(0, nil)
	own := newCounter(0, nil)

	top, topAnchor, err := structures.BeginAnchored(rt)
	if err != nil {
		t.Fatal(err)
	}
	mid, midAnchor, err := structures.BeginAnchoredIn(top)
	if err != nil {
		t.Fatal(err)
	}
	leafParent, err := mid.Begin()
	if err != nil {
		t.Fatal(err)
	}

	// Three leaves: committing to the top anchor, the mid anchor, and
	// conventionally to the immediate parent.
	if err := structures.RunIndependentTo(leafParent, topAnchor, incr(toTop, 1)); err != nil {
		t.Fatal(err)
	}
	if err := structures.RunIndependentTo(leafParent, midAnchor, incr(toMid, 1)); err != nil {
		t.Fatal(err)
	}
	if err := leafParent.Run(incr(own, 1)); err != nil {
		t.Fatal(err)
	}

	// leafParent aborts: only its own conventional child's effects go.
	if err := leafParent.Abort(); err != nil {
		t.Fatal(err)
	}
	if own.Peek() != 0 || toMid.Peek() != 1 || toTop.Peek() != 1 {
		t.Fatalf("after leafParent abort: own=%d toMid=%d toTop=%d", own.Peek(), toMid.Peek(), toTop.Peek())
	}

	// mid aborts: the mid-anchored effects go, top-anchored stay.
	if err := mid.Abort(); err != nil {
		t.Fatal(err)
	}
	if toMid.Peek() != 0 || toTop.Peek() != 1 {
		t.Fatalf("after mid abort: toMid=%d toTop=%d", toMid.Peek(), toTop.Peek())
	}

	// top aborts: everything anchored to it goes too.
	if err := top.Abort(); err != nil {
		t.Fatal(err)
	}
	if toTop.Peek() != 0 {
		t.Fatalf("after top abort: toTop=%d", toTop.Peek())
	}
}
