// Package structures implements the paper's §3 control structures —
// serializing actions, glued actions, and (n-level) top-level independent
// actions — on top of multi-coloured actions, generating the colour
// assignments automatically (paper §6: "let the application builder think
// in terms of the action structures of section 3 and generate colour
// assignments automatically").
//
// The colour schemes are exactly those of the paper's implementation
// section:
//
//   - Serializing (fig 11): the container carries a fresh colour ("blue");
//     every constituent carries blue plus its own fresh colour ("red").
//     Constituents write in red (permanent at constituent commit) with a
//     blue exclusive-read companion lock (retained by the container), and
//     read in blue (retained by the container).
//   - Glued (fig 12): each joint is a container with a fresh pass colour
//     ("red"); stages write and read in their own fresh colour ("blue")
//     and explicitly retain pass-on objects with red exclusive-read locks.
//   - Independent (fig 13): the invoked action gets a fresh colour set
//     disjoint from the invoker's.
//   - N-level independent (fig 15): the target ancestor carries a private
//     anchor colour its children do not inherit; a deep descendant created
//     with exactly the anchor colour commits its effects to the ancestor's
//     level.
package structures

import (
	"errors"
	"fmt"
	"sync"

	"mca/internal/action"
	"mca/internal/colour"
	"mca/internal/ids"
	"mca/internal/lock"
)

// ErrEnded is returned when beginning work under a structure that was
// already ended or cancelled.
var ErrEnded = errors.New("structures: structure already ended")

// Serializing is the container of a serializing action (paper §3.1): its
// constituents are top-level actions with respect to permanence of
// effect, while the locks they release are retained by the container so
// non-nested actions cannot acquire them in between (the paper's "atomic
// with respect to concurrency but not with respect to failures").
type Serializing struct {
	container *action.Action
	colour    colour.Colour // the container ("blue") colour

	mu    sync.Mutex
	ended bool
}

// BeginSerializing starts a top-level serializing action.
func BeginSerializing(rt *action.Runtime) (*Serializing, error) {
	blue := colour.Fresh()
	container, err := rt.Begin(action.WithColours(blue))
	if err != nil {
		return nil, fmt.Errorf("begin serializing container: %w", err)
	}
	return &Serializing{container: container, colour: blue}, nil
}

// BeginSerializingIn starts a serializing action invoked from within
// another action. The container's colour set is disjoint from the
// invoker's: per the paper the constituents are top-level actions, so
// their permanent effects must not be undone by the invoker's abort.
func BeginSerializingIn(invoker *action.Action) (*Serializing, error) {
	blue := colour.Fresh()
	container, err := invoker.Begin(action.WithColours(blue))
	if err != nil {
		return nil, fmt.Errorf("begin serializing container: %w", err)
	}
	return &Serializing{container: container, colour: blue}, nil
}

// Container exposes the container action (for lock introspection in
// tests and experiments).
func (s *Serializing) Container() *action.Action { return s.container }

// Colour returns the container colour.
func (s *Serializing) Colour() colour.Colour { return s.colour }

// BeginConstituent starts the next constituent: an action whose committed
// effects are immediately permanent (fig 11's red) while all the locks it
// held pass to the container (blue reads, blue exclusive-read companions
// of its writes). Constituents may run concurrently.
func (s *Serializing) BeginConstituent() (*action.Action, error) {
	s.mu.Lock()
	ended := s.ended
	s.mu.Unlock()
	if ended {
		return nil, ErrEnded
	}
	red := colour.Fresh()
	return s.container.Begin(
		action.WithColours(red, s.colour),
		action.WithWriteColour(red),
		action.WithReadColour(s.colour),
		action.WithWriteCompanion(s.colour),
	)
}

// RunConstituent executes fn as one constituent, committing on nil and
// aborting on error or panic.
func (s *Serializing) RunConstituent(fn func(*action.Action) error) error {
	c, err := s.BeginConstituent()
	if err != nil {
		return err
	}
	return runAndComplete(c, fn)
}

// End terminates the serializing action, releasing every lock the
// container retained. Committed constituents' effects are already
// permanent; End never undoes them (relaxed failure atomicity). Ending
// while a constituent is still active fails with ErrActiveChildren and
// leaves the structure usable (complete the constituent, End again).
func (s *Serializing) End() error {
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return ErrEnded
	}
	s.ended = true
	s.mu.Unlock()
	if err := s.container.Commit(); err != nil {
		s.mu.Lock()
		s.ended = false
		s.mu.Unlock()
		return err
	}
	return nil
}

// Cancel abandons the serializing action: the container's retained locks
// are released. Effects of committed constituents survive — this is
// outcome (iii) of §3.1.
func (s *Serializing) Cancel() error {
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return nil
	}
	s.ended = true
	s.mu.Unlock()
	return s.container.Abort()
}

// Stage is one top-level action in a glued chain. Writes and reads use
// the stage's own colour; PassOn marks the objects whose locks must
// transfer atomically to the next stage.
type Stage struct {
	*action.Action

	pass colour.Colour
}

// PassOn retains the object for the next stage: an exclusive-read lock in
// the joint's pass colour, inherited by the joint container when this
// stage commits, over which the next stage can acquire write locks
// (fig 12).
func (st *Stage) PassOn(obj ids.ObjectID) error {
	return st.Lock(obj, lock.ExclusiveRead, st.pass)
}

// PassColour returns the joint colour used by PassOn.
func (st *Stage) PassColour() colour.Colour { return st.pass }

// Chain is a sequence of glued top-level actions (figs 5 and 9). Each
// consecutive pair is glued by a joint container holding the passed-on
// locks; the joint for stages (i, i+1) ends as soon as stage i+1
// completes, so objects stage i passed on but stage i+1 did not keep are
// released promptly — the narrowing behaviour of the meeting-scheduler
// example (§4 v).
type Chain struct {
	rt *action.Runtime

	mu sync.Mutex
	// joints[i] glues stage i+1 to stage i+2; the newest joint is the
	// parent of the next stage.
	joints []*action.Action
	ended  bool
	stages int
}

// NewChain builds an empty glued chain.
func NewChain(rt *action.Runtime) *Chain { return &Chain{rt: rt} }

// RunStage executes fn as the next top-level action of the chain. When
// fn returns nil the stage commits: its own locks are released (its
// effects become permanent) except those passed on, which the joint
// retains for the following stage. When fn fails the stage aborts; locks
// passed on by earlier stages remain with their joints until the chain
// ends.
func (c *Chain) RunStage(fn func(*Stage) error) error {
	st, err := c.beginStage()
	if err != nil {
		return err
	}
	runErr := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				_ = st.Abort()
				c.afterStage(false)
				panic(r)
			}
		}()
		if err := fn(st); err != nil {
			_ = st.Abort()
			return err
		}
		return st.Commit()
	}()
	c.afterStage(runErr == nil)
	return runErr
}

// beginStage creates the joint container for the upcoming stage and the
// stage action beneath it.
func (c *Chain) beginStage() (*Stage, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ended {
		return nil, ErrEnded
	}

	pass := colour.Fresh()
	var (
		joint *action.Action
		err   error
	)
	if len(c.joints) == 0 {
		joint, err = c.rt.Begin(action.WithColours(pass))
	} else {
		joint, err = c.joints[len(c.joints)-1].Begin(action.WithColours(pass))
	}
	if err != nil {
		return nil, fmt.Errorf("begin glue joint: %w", err)
	}

	own := colour.Fresh()
	act, err := joint.Begin(
		action.WithColours(pass, own),
		action.WithWriteColour(own),
		action.WithReadColour(own),
	)
	if err != nil {
		_ = joint.Abort()
		return nil, fmt.Errorf("begin glued stage: %w", err)
	}
	c.joints = append(c.joints, joint)
	c.stages++
	return &Stage{Action: act, pass: pass}, nil
}

// afterStage ends the joint *before* the one just created once the new
// stage committed: its passed-on locks were either re-acquired by the
// completed stage or must now be released. After a failed stage the
// previous joint is kept so a retry stage still finds the passed-on
// locks in place.
func (c *Chain) afterStage(committed bool) {
	if !committed {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.joints) < 2 {
		return
	}
	old := c.joints[len(c.joints)-2]
	if old.Status() == action.Active {
		_ = old.Commit()
	}
	c.joints = append(c.joints[:len(c.joints)-2], c.joints[len(c.joints)-1])
}

// Stages returns how many stages have been started.
func (c *Chain) Stages() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stages
}

// End closes the chain, releasing any locks still held by the final
// joint. Effects of committed stages are permanent regardless.
func (c *Chain) End() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ended {
		return ErrEnded
	}
	c.ended = true
	var firstErr error
	for i := len(c.joints) - 1; i >= 0; i-- {
		j := c.joints[i]
		if j.Status() != action.Active {
			continue
		}
		if err := j.Commit(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.joints = nil
	return firstErr
}

// Glued runs two actions glued together (fig 5): first selects and
// passes on a subset of objects, second continues with exactly those. It
// is the two-stage special case of Chain.
func Glued(rt *action.Runtime, first, second func(*Stage) error) error {
	chain := NewChain(rt)
	defer func() { _ = chain.End() }()
	if err := chain.RunStage(first); err != nil {
		return fmt.Errorf("glued first stage: %w", err)
	}
	if err := chain.RunStage(second); err != nil {
		return fmt.Errorf("glued second stage: %w", err)
	}
	return chain.End()
}

// RunIndependent invokes fn as a synchronous top-level independent action
// (fig 7a / 13b): it is nested beneath the invoker — so, per the paper's
// caveat, it may read the invoker's uncommitted data — but its colour set
// is disjoint, so it commits or aborts independently and its committed
// effects are immediately permanent and survive the invoker's abort. The
// invoker can inspect the returned error to decide its own fate.
func RunIndependent(invoker *action.Action, fn func(*action.Action) error) error {
	child, err := invoker.Begin(action.WithColours(colour.Fresh()))
	if err != nil {
		return err
	}
	return runAndComplete(child, fn)
}

// Handle tracks an asynchronously invoked independent action.
type Handle struct {
	done chan struct{}
	err  error
}

// Wait blocks until the independent action completed and returns its
// outcome (nil = committed).
func (h *Handle) Wait() error {
	<-h.done
	return h.err
}

// Done returns a channel closed when the action completes.
func (h *Handle) Done() <-chan struct{} { return h.done }

// SpawnIndependent invokes fn as an asynchronous top-level independent
// action (fig 7b): the invoker continues immediately and may commit or
// abort while fn is still running; fn's committed effects survive either
// way.
func SpawnIndependent(invoker *action.Action, fn func(*action.Action) error) (*Handle, error) {
	child, err := invoker.Begin(action.WithColours(colour.Fresh()))
	if err != nil {
		return nil, err
	}
	h := &Handle{done: make(chan struct{})}
	go func() {
		defer close(h.done)
		h.err = runAndComplete(child, fn)
	}()
	return h, nil
}

// Anchor is the private colour of an anchored action: the commit level
// for n-level independent actions targeting it.
type Anchor struct {
	colour colour.Colour
	owner  ids.ActionID
}

// BeginAnchored starts a top-level action carrying a private anchor
// colour. Descendants do not inherit the anchor; an independent action
// begun with RunIndependentTo(child, anchor, ...) anywhere below commits
// its effects to this action's level (fig 15: E's blue skips B and lands
// at A).
func BeginAnchored(rt *action.Runtime, opts ...action.BeginOption) (*action.Action, Anchor, error) {
	c := colour.Fresh()
	a, err := rt.Begin(append(opts, action.WithPrivateColours(c))...)
	if err != nil {
		return nil, Anchor{}, err
	}
	return a, Anchor{colour: c, owner: a.ID()}, nil
}

// BeginAnchoredIn is BeginAnchored nested under an invoker.
func BeginAnchoredIn(invoker *action.Action, opts ...action.BeginOption) (*action.Action, Anchor, error) {
	c := colour.Fresh()
	a, err := invoker.Begin(append(opts, action.WithPrivateColours(c))...)
	if err != nil {
		return nil, Anchor{}, err
	}
	return a, Anchor{colour: c, owner: a.ID()}, nil
}

// Colour returns the anchor colour.
func (an Anchor) Colour() colour.Colour { return an.colour }

// RunIndependentTo invokes fn as an n-level independent action: nested
// beneath the invoker, coloured with exactly the anchor colour. Its
// commit passes locks and recovery records to the anchored ancestor,
// skipping every action in between; intermediate aborts leave its
// effects intact, the anchored ancestor's abort undoes them.
func RunIndependentTo(invoker *action.Action, an Anchor, fn func(*action.Action) error) error {
	child, err := invoker.Begin(action.WithColours(an.colour))
	if err != nil {
		return err
	}
	return runAndComplete(child, fn)
}

// SpawnIndependentTo is the asynchronous form of RunIndependentTo.
func SpawnIndependentTo(invoker *action.Action, an Anchor, fn func(*action.Action) error) (*Handle, error) {
	child, err := invoker.Begin(action.WithColours(an.colour))
	if err != nil {
		return nil, err
	}
	h := &Handle{done: make(chan struct{})}
	go func() {
		defer close(h.done)
		h.err = runAndComplete(child, fn)
	}()
	return h, nil
}

func runAndComplete(a *action.Action, fn func(*action.Action) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			_ = a.Abort()
			panic(r)
		}
	}()
	if err := fn(a); err != nil {
		if abortErr := a.Abort(); abortErr != nil {
			return fmt.Errorf("%w (abort: %v)", err, abortErr)
		}
		return err
	}
	return a.Commit()
}
