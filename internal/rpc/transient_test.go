package rpc

import (
	"errors"
	"fmt"
	"testing"

	"mca/internal/netsim"
)

// markerErr is a transport-defined error carrying the TransientError
// marker, the way netsim and tcpnet declare theirs.
type markerErr struct{ transient bool }

func (e *markerErr) Error() string   { return "marker" }
func (e *markerErr) Transient() bool { return e.transient }

func TestIsTransientSend(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain", errors.New("boom"), false},
		{"marker", &markerErr{transient: true}, true},
		{"marker-false", &markerErr{transient: false}, false},
		{"wrapped marker", fmt.Errorf("send: %w", &markerErr{transient: true}), true},
		{"sentinel", ErrTransientSend, true},
		{"wrapped sentinel", fmt.Errorf("send: %w", ErrTransientSend), true},
		{"netsim unknown node", netsim.ErrUnknownNode, true},
		{"netsim crashed", fmt.Errorf("send: %w", netsim.ErrCrashed), true},
		{"netsim closed", netsim.ErrClosed, false},
	}
	for _, tc := range cases {
		if got := IsTransientSend(tc.err); got != tc.want {
			t.Errorf("IsTransientSend(%s) = %v, want %v", tc.name, got, tc.want)
		}
		if tc.err != nil {
			if got := transientSendErr(tc.err); got != tc.want {
				t.Errorf("transientSendErr(%s) = %v, want %v", tc.name, got, tc.want)
			}
		}
	}
}
