package rpc

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mca/internal/ids"
	"mca/internal/netsim"
)

type echoReq struct {
	Text string `json:"text"`
}

type echoResp struct {
	Text string `json:"text"`
}

func newPair(t *testing.T, cfg netsim.Config, opts Options) (*Peer, *Peer, *netsim.Network) {
	t.Helper()
	n := netsim.New(cfg)
	t.Cleanup(n.Close)
	epA, err := n.NewEndpoint()
	if err != nil {
		t.Fatal(err)
	}
	epB, err := n.NewEndpoint()
	if err != nil {
		t.Fatal(err)
	}
	a := NewPeer(epA, opts)
	b := NewPeer(epB, opts)
	a.Start()
	b.Start()
	t.Cleanup(a.Stop)
	t.Cleanup(b.Stop)
	return a, b, n
}

func TestCallRoundTrip(t *testing.T) {
	a, b, _ := newPair(t, netsim.Config{}, Options{})
	b.Handle("echo", func(_ context.Context, from ids.NodeID, body []byte) ([]byte, error) {
		return body, nil
	})
	var resp echoResp
	if err := a.Call(context.Background(), b.ID(), "echo", echoReq{Text: "hi"}, &resp); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if resp.Text != "hi" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestCallUnknownMethod(t *testing.T) {
	a, b, _ := newPair(t, netsim.Config{}, Options{})
	var remote *RemoteError
	err := a.Call(context.Background(), b.ID(), "nope", echoReq{}, nil)
	if !errors.As(err, &remote) {
		t.Fatalf("Call = %v, want RemoteError", err)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	a, b, _ := newPair(t, netsim.Config{}, Options{})
	b.Handle("fail", func(context.Context, ids.NodeID, []byte) ([]byte, error) {
		return nil, errors.New("application broke")
	})
	err := a.Call(context.Background(), b.ID(), "fail", echoReq{}, nil)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("Call = %v, want RemoteError", err)
	}
	if remote.Msg != "application broke" {
		t.Fatalf("remote msg = %q", remote.Msg)
	}
}

func TestRetransmissionBeatsLoss(t *testing.T) {
	// 60% loss: individual datagrams drop but calls succeed through
	// retransmission.
	a, b, _ := newPair(t,
		netsim.Config{LossRate: 0.6, Seed: 3},
		Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 5 * time.Second})
	b.Handle("echo", func(_ context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
		return body, nil
	})
	for i := 0; i < 20; i++ {
		var resp echoResp
		if err := a.Call(context.Background(), b.ID(), "echo", echoReq{Text: "x"}, &resp); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestAtMostOnceUnderDuplication(t *testing.T) {
	// Heavy duplication and retransmission must not double-execute.
	var executions atomic.Int64
	a, b, _ := newPair(t,
		netsim.Config{DupRate: 0.8, LossRate: 0.3, Seed: 11},
		Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 5 * time.Second})
	b.Handle("incr", func(context.Context, ids.NodeID, []byte) ([]byte, error) {
		executions.Add(1)
		return []byte("{}"), nil
	})
	const calls = 25
	for i := 0; i < calls; i++ {
		if err := a.Call(context.Background(), b.ID(), "incr", echoReq{}, nil); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := executions.Load(); got != calls {
		t.Fatalf("handler executed %d times for %d calls (at-most-once violated)", got, calls)
	}
}

func TestCallTimeoutOnDeadTarget(t *testing.T) {
	a, b, _ := newPair(t, netsim.Config{}, Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 60 * time.Millisecond})
	b.Stop()
	err := a.Call(context.Background(), b.ID(), "echo", echoReq{}, nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Call = %v, want ErrTimeout", err)
	}
}

func TestCallContextCancel(t *testing.T) {
	a, b, _ := newPair(t, netsim.Config{}, Options{CallTimeout: 10 * time.Second})
	_ = b // no handler: the call would wait for the timeout
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- a.Call(ctx, 99999, "echo", echoReq{}, nil)
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Call = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancel did not unblock the call")
	}
}

func TestStoppedPeerRejectsCalls(t *testing.T) {
	a, b, _ := newPair(t, netsim.Config{}, Options{})
	a.Stop()
	if err := a.Call(context.Background(), b.ID(), "echo", echoReq{}, nil); !errors.Is(err, ErrStopped) {
		t.Fatalf("Call = %v, want ErrStopped", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	a, b, _ := newPair(t, netsim.Config{}, Options{})
	b.Handle("echo", func(_ context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
		return body, nil
	})
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp echoResp
			errs <- a.Call(context.Background(), b.ID(), "echo", echoReq{Text: "w"}, &resp)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent call: %v", err)
		}
	}
}

func TestBidirectionalCalls(t *testing.T) {
	a, b, _ := newPair(t, netsim.Config{}, Options{})
	a.Handle("pingA", func(_ context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
		return body, nil
	})
	b.Handle("pingB", func(_ context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
		return body, nil
	})
	if err := a.Call(context.Background(), b.ID(), "pingB", echoReq{Text: "1"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Call(context.Background(), a.ID(), "pingA", echoReq{Text: "2"}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHandlerSeesCallerID(t *testing.T) {
	a, b, _ := newPair(t, netsim.Config{}, Options{})
	got := make(chan ids.NodeID, 1)
	b.Handle("who", func(_ context.Context, from ids.NodeID, _ []byte) ([]byte, error) {
		got <- from
		return []byte("{}"), nil
	})
	if err := a.Call(context.Background(), b.ID(), "who", echoReq{}, nil); err != nil {
		t.Fatal(err)
	}
	if from := <-got; from != a.ID() {
		t.Fatalf("handler saw caller %v, want %v", from, a.ID())
	}
}

func TestStopRestartCycle(t *testing.T) {
	a, b, _ := newPair(t, netsim.Config{}, Options{})
	b.Handle("echo", func(_ context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
		return body, nil
	})
	if err := a.Call(context.Background(), b.ID(), "echo", echoReq{Text: "1"}, nil); err != nil {
		t.Fatal(err)
	}
	b.Stop()
	b.Start()
	if err := a.Call(context.Background(), b.ID(), "echo", echoReq{Text: "2"}, nil); err != nil {
		t.Fatalf("call after restart: %v", err)
	}
}
