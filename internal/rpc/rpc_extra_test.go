package rpc

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mca/internal/ids"
	"mca/internal/netsim"
)

func TestInvalidHandlerJSONSurfacesAsError(t *testing.T) {
	a, b, _ := newPair(t, netsim.Config{}, Options{})
	b.Handle("bad", func(context.Context, ids.NodeID, []byte) ([]byte, error) {
		return []byte("[0][0]"), nil // malformed JSON
	})
	err := a.Call(context.Background(), b.ID(), "bad", struct{}{}, nil)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("Call = %v, want RemoteError", err)
	}
	if !strings.Contains(remote.Msg, "invalid JSON") {
		t.Fatalf("remote msg = %q", remote.Msg)
	}
}

func TestEmptyHandlerReplyIsFine(t *testing.T) {
	a, b, _ := newPair(t, netsim.Config{}, Options{})
	b.Handle("void", func(context.Context, ids.NodeID, []byte) ([]byte, error) {
		return nil, nil
	})
	if err := a.Call(context.Background(), b.ID(), "void", struct{}{}, nil); err != nil {
		t.Fatalf("Call = %v", err)
	}
}

func TestCorruptDatagramIgnored(t *testing.T) {
	// Raw garbage on the wire must not break the peer.
	n := netsim.New(netsim.Config{})
	t.Cleanup(n.Close)
	epA, err := n.NewEndpoint()
	if err != nil {
		t.Fatal(err)
	}
	epB, err := n.NewEndpoint()
	if err != nil {
		t.Fatal(err)
	}
	pb := NewPeer(epB, Options{})
	pb.Handle("echo", func(_ context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
		return body, nil
	})
	pb.Start()
	t.Cleanup(pb.Stop)

	if err := epA.Send(epB.ID(), []byte("not json at all")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)

	pa := NewPeer(epA, Options{})
	pa.Start()
	t.Cleanup(pa.Stop)
	if err := pa.Call(context.Background(), epB.ID(), "echo", struct{}{}, nil); err != nil {
		t.Fatalf("Call after garbage = %v", err)
	}
}

func TestInflightSuppressionUnderSlowHandler(t *testing.T) {
	// A handler slower than several retransmission intervals must
	// execute exactly once.
	var executions int
	release := make(chan struct{})
	a, b, _ := newPair(t, netsim.Config{},
		Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 5 * time.Second})
	b.Handle("slow", func(context.Context, ids.NodeID, []byte) ([]byte, error) {
		executions++ // single in-flight execution: no lock needed
		<-release
		return []byte("{}"), nil
	})
	done := make(chan error, 1)
	go func() {
		done <- a.Call(context.Background(), b.ID(), "slow", struct{}{}, nil)
	}()
	time.Sleep(100 * time.Millisecond) // ~20 retransmissions
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Call = %v", err)
	}
	if executions != 1 {
		t.Fatalf("handler executed %d times, want 1", executions)
	}
}

func TestReplyCacheEvictionBounded(t *testing.T) {
	a, b, _ := newPair(t, netsim.Config{}, Options{ReplyCache: 4})
	b.Handle("echo", func(_ context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
		return body, nil
	})
	for i := 0; i < 50; i++ {
		if err := a.Call(context.Background(), b.ID(), "echo", i, nil); err != nil {
			t.Fatal(err)
		}
	}
	b.mu.Lock()
	cached := len(b.seen)
	b.mu.Unlock()
	if cached > 4 {
		t.Fatalf("reply cache grew to %d entries, bound is 4", cached)
	}
}
