package rpc

import (
	"context"
	"encoding/json"
	"sync/atomic"
	"testing"
	"time"

	"mca/internal/ids"
	"mca/internal/netsim"
)

// oldJSONPeer is a hand-rolled peer speaking only the pre-binary wire
// protocol: CRC frame around a JSON envelope. Crucially it does what
// real old code does with a binary envelope — json.Unmarshal fails and
// the datagram is dropped — so the tests exercise the actual skew, not
// a polite simulation of it.
type oldJSONPeer struct {
	ep     *netsim.Endpoint
	cancel context.CancelFunc
	done   chan struct{}
	// binaryDropped counts frames that failed JSON decoding (the new
	// format arriving at old code).
	binaryDropped atomic.Int64
	// replies receives reply envelopes for calls this peer issued.
	replies chan envelope
}

func startOldJSONPeer(t *testing.T, ep *netsim.Endpoint) *oldJSONPeer {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	o := &oldJSONPeer{ep: ep, cancel: cancel, done: make(chan struct{}), replies: make(chan envelope, 16)}
	go o.loop(ctx)
	t.Cleanup(func() {
		cancel()
		<-o.done
	})
	return o
}

func (o *oldJSONPeer) loop(ctx context.Context) {
	defer close(o.done)
	for {
		m, err := o.ep.Recv(ctx)
		if err != nil {
			return
		}
		body, ok := verifyFrame(m.Payload)
		if !ok {
			continue
		}
		var env envelope
		if err := json.Unmarshal(body, &env); err != nil {
			// This is the old-peer failure mode the JSON fallback
			// exists for: binary envelopes are silently dropped.
			o.binaryDropped.Add(1)
			continue
		}
		switch env.Kind {
		case kindRequest:
			if env.Method != "echo" {
				continue
			}
			resp := envelope{Kind: kindReply, CallID: env.CallID, Origin: o.ep.ID(), Body: env.Body}
			j, err := json.Marshal(resp)
			if err != nil {
				continue
			}
			//mcalint:ignore errdrop test peer; best-effort reply like the real one
			_ = o.ep.Send(m.From, frame(j))
		case kindReply:
			select {
			case o.replies <- env:
			default:
			}
		}
	}
}

// call issues one JSON-format request the way the old protocol did
// (single send over the lossless test network, bounded wait).
func (o *oldJSONPeer) call(t *testing.T, to ids.NodeID, method string, body string) envelope {
	t.Helper()
	env := envelope{Kind: kindRequest, CallID: 0xFACE, Origin: o.ep.ID(), Method: method, Body: json.RawMessage(body)}
	j, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.ep.Send(to, frame(j)); err != nil {
		t.Fatal(err)
	}
	select {
	case reply := <-o.replies:
		return reply
	case <-time.After(5 * time.Second):
		t.Fatal("old JSON peer: no reply within 5s")
		return envelope{}
	}
}

// TestInteropNewCallsOldPeer: a binary-codec caller reaching a peer
// that silently drops binary envelopes must converge on JSON via the
// retransmission fallback and complete the call.
func TestInteropNewCallsOldPeer(t *testing.T) {
	n := netsim.New(netsim.Config{})
	t.Cleanup(n.Close)
	epNew, err := n.NewEndpoint()
	if err != nil {
		t.Fatal(err)
	}
	epOld, err := n.NewEndpoint()
	if err != nil {
		t.Fatal(err)
	}
	old := startOldJSONPeer(t, epOld)
	caller := NewPeer(epNew, Options{RetryInterval: 5 * time.Millisecond})
	caller.Start()
	t.Cleanup(caller.Stop)

	var resp echoResp
	if err := caller.Call(context.Background(), epOld.ID(), "echo", echoReq{Text: "legacy"}, &resp); err != nil {
		t.Fatalf("Call to old JSON peer: %v", err)
	}
	if resp.Text != "legacy" {
		t.Fatalf("resp = %+v", resp)
	}
	if old.binaryDropped.Load() == 0 {
		t.Fatal("old peer never saw a binary envelope: fallback path not exercised")
	}
}

// TestInteropOldCallsNewPeer: a legacy JSON request must be served by a
// binary-default peer and answered in JSON — the caller proved nothing
// about binary capability, so the reply must stay decodable by old code.
func TestInteropOldCallsNewPeer(t *testing.T) {
	n := netsim.New(netsim.Config{})
	t.Cleanup(n.Close)
	epNew, err := n.NewEndpoint()
	if err != nil {
		t.Fatal(err)
	}
	epOld, err := n.NewEndpoint()
	if err != nil {
		t.Fatal(err)
	}
	serving := NewPeer(epNew, Options{})
	serving.Handle("echo", func(_ context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
		return body, nil
	})
	serving.Start()
	t.Cleanup(serving.Stop)
	old := startOldJSONPeer(t, epOld)

	reply := old.call(t, epNew.ID(), "echo", `{"text":"up"}`)
	if reply.IsErr {
		t.Fatalf("reply error: %s", reply.ErrMsg)
	}
	var resp echoResp
	if err := json.Unmarshal(reply.Body, &resp); err != nil || resp.Text != "up" {
		t.Fatalf("reply body %s (err %v)", reply.Body, err)
	}
	if old.binaryDropped.Load() != 0 {
		t.Fatalf("new peer sent %d binary frames to a JSON-only caller", old.binaryDropped.Load())
	}
}

// TestBinaryOnWireBetweenNewPeers taps the simulated network and
// asserts that two binary-capable peers actually exchange binary
// envelopes — the fast path is on the wire, not just in unit tests.
func TestBinaryOnWireBetweenNewPeers(t *testing.T) {
	n := netsim.New(netsim.Config{})
	t.Cleanup(n.Close)
	var binaryFrames, otherFrames atomic.Int64
	n.SetTap(func(m netsim.Message) {
		if len(m.Payload) > 4 && m.Payload[4] == binMagic {
			binaryFrames.Add(1)
		} else {
			otherFrames.Add(1)
		}
	})
	epA, err := n.NewEndpoint()
	if err != nil {
		t.Fatal(err)
	}
	epB, err := n.NewEndpoint()
	if err != nil {
		t.Fatal(err)
	}
	// A generous retry interval keeps a slow-CI first call from ever
	// reaching the JSON fallback threshold on this lossless network.
	a := NewPeer(epA, Options{RetryInterval: 200 * time.Millisecond})
	b := NewPeer(epB, Options{RetryInterval: 200 * time.Millisecond})
	b.Handle("echo", func(_ context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
		return body, nil
	})
	a.Start()
	b.Start()
	t.Cleanup(a.Stop)
	t.Cleanup(b.Stop)

	for i := 0; i < 5; i++ {
		var resp echoResp
		if err := a.Call(context.Background(), b.ID(), "echo", echoReq{Text: "fast"}, &resp); err != nil {
			t.Fatal(err)
		}
	}
	if binaryFrames.Load() < 10 { // 5 requests + 5 replies minimum
		t.Fatalf("saw %d binary frames on the wire, want >= 10", binaryFrames.Load())
	}
	if otherFrames.Load() != 0 {
		t.Fatalf("saw %d non-binary frames between two binary-capable peers", otherFrames.Load())
	}
}

// nullTransport is a transport black hole for white-box tests that
// never need real delivery.
type nullTransport struct{ id ids.NodeID }

func (n nullTransport) ID() ids.NodeID                { return n.id }
func (n nullTransport) Send(ids.NodeID, []byte) error { return nil }
func (n nullTransport) Recv(ctx context.Context) (Datagram, error) {
	<-ctx.Done()
	return Datagram{}, ctx.Err()
}

// TestReplyCacheRingReuse is the memory-regression half of the ring
// buffer fix: under sustained churn the eviction order must stay inside
// one fixed backing array (the old append-and-reslice order pinned an
// ever-growing one), the cache must track exactly the most recent
// entries, and evicted call ids must become cache misses again.
func TestReplyCacheRingReuse(t *testing.T) {
	p := NewPeerOn(nullTransport{id: 1}, Options{ReplyCache: 4})
	p.mu.Lock()
	for i := uint64(1); i <= 1000; i++ {
		p.cacheReply(i, envelope{CallID: i})
	}
	ringCap := cap(p.seenRing)
	cached := len(p.seen)
	_, oldestEvicted := p.seen[996]
	var missing []uint64
	for i := uint64(997); i <= 1000; i++ {
		if _, ok := p.seen[i]; !ok {
			missing = append(missing, i)
		}
	}
	p.mu.Unlock()
	if ringCap != 4 {
		t.Fatalf("ring backing array has cap %d after 1000 insertions, want exactly 4", ringCap)
	}
	if cached != 4 {
		t.Fatalf("cache holds %d entries, want 4", cached)
	}
	if oldestEvicted {
		t.Fatal("call id 996 still cached after 4 newer entries")
	}
	if missing != nil {
		t.Fatalf("recent call ids %v evicted early", missing)
	}
}
