package rpc

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"mca/internal/ids"
	"mca/internal/netsim"
)

// TestCallsSurviveCorruption drives calls over a network that flips
// bytes: the CRC framing must detect corrupted datagrams, drop them,
// and let retransmission win — and a corrupted request must never
// execute a handler with garbage input.
func TestCallsSurviveCorruption(t *testing.T) {
	a, b, nw := newPair(t,
		netsim.Config{CorruptRate: 0.4, Seed: 21},
		Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 10 * time.Second})

	var served atomic.Int64
	b.Handle("echo", func(_ context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
		served.Add(1)
		return body, nil
	})

	type msg struct {
		Text string `json:"text"`
	}
	const calls = 25
	for i := 0; i < calls; i++ {
		var resp msg
		if err := a.Call(context.Background(), b.ID(), "echo", msg{Text: "payload"}, &resp); err != nil {
			t.Fatalf("call %d under corruption: %v", i, err)
		}
		if resp.Text != "payload" {
			t.Fatalf("call %d reply corrupted undetected: %+v", i, resp)
		}
	}
	if got := served.Load(); got != calls {
		t.Fatalf("handler served %d, want %d (at-most-once under corruption)", got, calls)
	}
	if st := nw.Stats(); st.Corrupted == 0 {
		t.Fatalf("no corruption injected, stats = %+v", st)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	body := []byte(`{"k":1}`)
	framed := frame(body)
	got, ok := verifyFrame(framed)
	if !ok || string(got) != string(body) {
		t.Fatalf("round trip = %q, %v", got, ok)
	}

	// Any single flipped byte is caught.
	for i := range framed {
		dup := append([]byte(nil), framed...)
		dup[i] ^= 0xFF
		if _, ok := verifyFrame(dup); ok {
			t.Fatalf("flip at %d undetected", i)
		}
	}

	// Truncated frames are rejected.
	if _, ok := verifyFrame(framed[:3]); ok {
		t.Fatal("short frame accepted")
	}
}
