// Envelope wire codecs. Two formats share the CRC32 frame introduced
// with the corruption defences:
//
//   - CodecJSON is the original wire format (one json.Marshal around the
//     envelope, PR 5's trace fields riding as omitempty keys). Every
//     peer ever shipped decodes it, so it remains the lingua franca for
//     mixed-version clusters.
//   - CodecBinary is the hot-path format: a fixed header plus
//     length-delimited strings, encoded into a pooled buffer with zero
//     steady-state allocations. Application bodies stay JSON — only the
//     envelope around them stops being JSON.
//
// The first byte of the framed body selects the codec on decode: JSON
// envelopes start with '{' (0x7B), binary envelopes with binMagic — a
// value that can never begin a JSON document — followed by a version
// byte, so a future layout change bumps binVersion without another
// magic. A peer therefore decodes both formats unconditionally and
// answers in the caller's format (see Peer.serve), which is what lets
// old-JSON and new-binary peers interoperate in one cluster.
package rpc

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"runtime"
	"sync"

	"mca/internal/ids"
)

// Codec selects the envelope encoding for outgoing messages.
type Codec uint8

const (
	// CodecBinary (the default) encodes envelopes in the binary format,
	// falling back to JSON per destination when a peer never answers
	// binary envelopes (it may predate them; see jsonFallbackAfter).
	CodecBinary Codec = iota
	// CodecJSON forces the original JSON envelope on the send path —
	// the conservative setting while a mixed cluster still contains
	// peers that predate the binary codec.
	CodecJSON
)

// binMagic is the first body byte of a binary envelope. 0xC1 is not
// valid UTF-8 and in particular is not '{', so the decoder can tell the
// two formats apart from one byte.
const binMagic byte = 0xC1

// binVersion is the binary layout version, the second body byte. The
// decoder rejects versions it does not know, which drops the frame and
// lets the sender's JSON fallback repair a (hypothetical) skew between
// two binary generations the same way it repairs old/new skew.
const binVersion byte = 1

// Flag bits of the binary header's flags byte.
const (
	flagErr   byte = 1 << 0 // envelope carries an error reply
	flagTrace byte = 1 << 1 // envelope carries a trace context
)

// binHeaderLen is the fixed prefix: magic, version, kind, flags, call
// id, origin.
const binHeaderLen = 1 + 1 + 1 + 1 + 8 + 8

// appendEnvelopeBinary appends the binary encoding of env to buf.
//
// Layout (after the CRC32 frame prefix):
//
//	[0]     magic 0xC1
//	[1]     version (1)
//	[2]     kind (1 request, 2 reply)
//	[3]     flags (bit0 error, bit1 trace)
//	[4:12]  call id, big endian
//	[12:20] origin node id, big endian
//	        uvarint method length, method bytes
//	        if trace flag: trace id [8], span id [8], big endian
//	        if error flag: uvarint message length, message bytes
//	        uvarint body length, body bytes
func appendEnvelopeBinary(buf []byte, env *envelope) []byte {
	var flags byte
	if env.IsErr {
		flags |= flagErr
	}
	if env.V >= wireVersionTrace {
		flags |= flagTrace
	}
	buf = append(buf, binMagic, binVersion, byte(env.Kind), flags)
	buf = binary.BigEndian.AppendUint64(buf, env.CallID)
	buf = binary.BigEndian.AppendUint64(buf, uint64(env.Origin))
	buf = binary.AppendUvarint(buf, uint64(len(env.Method)))
	buf = append(buf, env.Method...)
	if flags&flagTrace != 0 {
		buf = binary.BigEndian.AppendUint64(buf, env.Trace)
		buf = binary.BigEndian.AppendUint64(buf, env.Span)
	}
	if flags&flagErr != 0 {
		buf = binary.AppendUvarint(buf, uint64(len(env.ErrMsg)))
		buf = append(buf, env.ErrMsg...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(env.Body)))
	buf = append(buf, env.Body...)
	return buf
}

// readDelimited splits a uvarint-length-prefixed byte string off data.
func readDelimited(data []byte) (val, rest []byte, ok bool) {
	n, w := binary.Uvarint(data)
	if w <= 0 || n > uint64(len(data)-w) {
		return nil, nil, false
	}
	return data[w : w+int(n)], data[w+int(n):], true
}

// decodeEnvelopeBinary parses a binary envelope. It is strict — unknown
// versions, unknown flag bits, short fields and trailing bytes are all
// rejected — so a corrupted frame that happens to pass the CRC (or a
// deliberately malformed one) is dropped rather than misread. Method is
// interned and Body aliases data, so the caller must not reuse data's
// backing array afterwards; inbound frame buffers are owned by their
// consumer, which makes the alias safe (and the decode allocation-free).
func decodeEnvelopeBinary(data []byte, env *envelope) bool {
	if len(data) < binHeaderLen || data[0] != binMagic || data[1] != binVersion {
		return false
	}
	k := kind(data[2])
	if k != kindRequest && k != kindReply {
		return false
	}
	flags := data[3]
	if flags&^(flagErr|flagTrace) != 0 {
		return false
	}
	env.Kind = k
	env.CallID = binary.BigEndian.Uint64(data[4:12])
	env.Origin = ids.NodeID(binary.BigEndian.Uint64(data[12:20]))
	rest := data[binHeaderLen:]
	method, rest, ok := readDelimited(rest)
	if !ok {
		return false
	}
	env.Method = internMethod(method)
	if flags&flagTrace != 0 {
		if len(rest) < 16 {
			return false
		}
		env.V = wireVersionTrace
		env.Trace = binary.BigEndian.Uint64(rest[0:8])
		env.Span = binary.BigEndian.Uint64(rest[8:16])
		rest = rest[16:]
	}
	if flags&flagErr != 0 {
		var msg []byte
		msg, rest, ok = readDelimited(rest)
		if !ok {
			return false
		}
		env.IsErr = true
		env.ErrMsg = string(msg)
	}
	body, rest, ok := readDelimited(rest)
	if !ok || len(rest) != 0 {
		return false
	}
	if len(body) > 0 {
		env.Body = body
	}
	return true
}

// decodeEnvelope parses either wire format into env, reporting which
// format the sender used (binary reveals a binary-capable peer).
func decodeEnvelope(data []byte, env *envelope) (binaryFormat, ok bool) {
	if len(data) == 0 {
		return false, false
	}
	switch data[0] {
	case binMagic:
		return true, decodeEnvelopeBinary(data, env)
	case '{':
		return false, json.Unmarshal(data, env) == nil
	default:
		return false, false
	}
}

// --- method interning ---

// methodIntern maps method-name bytes to a canonical string so binary
// decode allocates no string per request in steady state. The table is
// bounded: method names arrive off the network, and an adversarial
// stream of unique names must not grow it without limit.
var methodIntern = struct {
	sync.RWMutex
	m map[string]string
}{m: make(map[string]string)}

const methodInternLimit = 1024

func internMethod(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	methodIntern.RLock()
	s, ok := methodIntern.m[string(b)] // no alloc: compiler-recognised []byte map key
	methodIntern.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	methodIntern.Lock()
	if len(methodIntern.m) < methodInternLimit {
		methodIntern.m[s] = s
	}
	methodIntern.Unlock()
	return s
}

// --- pooled frame buffers ---

// framePool recycles encode buffers on the send path: one buffer covers
// the CRC prefix and the envelope, so an entire send is a single
// (pool-amortised) allocation-free append chain. Buffers above
// framePoolMax are not returned — one huge body must not pin memory in
// the pool forever.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

const framePoolMax = 64 << 10

func getFrameBuf() *[]byte { return framePool.Get().(*[]byte) }

func putFrameBuf(bp *[]byte) {
	if cap(*bp) > framePoolMax {
		return
	}
	framePool.Put(bp)
}

// encodeFrame encodes env with the chosen codec into bp's backing array
// (growing it as needed, and recording the growth in *bp so the pool
// keeps it) and returns the complete CRC-framed wire bytes. The result
// aliases *bp: it is valid until bp is reused or returned to the pool.
func encodeFrame(bp *[]byte, env *envelope, c Codec) ([]byte, error) {
	buf := append((*bp)[:0], 0, 0, 0, 0) // CRC placeholder
	if c == CodecJSON {
		j, err := json.Marshal(env)
		if err != nil {
			return nil, err
		}
		buf = append(buf, j...)
	} else {
		buf = appendEnvelopeBinary(buf, env)
	}
	binary.BigEndian.PutUint32(buf[:4], crc32.ChecksumIEEE(buf[4:]))
	*bp = buf
	return buf, nil
}

// EnvelopeRoundTripAllocs measures the mean heap allocations of one
// binary envelope encode+decode cycle (frame, CRC, parse) over runs
// iterations. It is the allocs-regression probe shared by the codec
// tests and experiment E24; the steady-state expectation is zero.
func EnvelopeRoundTripAllocs(runs int) float64 {
	env := envelope{
		Kind:   kindRequest,
		CallID: 0x12345678,
		Origin: 7,
		Method: "dist.prepare",
		Body:   json.RawMessage(`{"txn":42,"op":"transfer","amount":10}`),
		V:      wireVersionTrace,
		Trace:  0xDEADBEEFCAFE,
		Span:   0xFEEDFACE,
	}
	bp := getFrameBuf()
	defer putFrameBuf(bp)
	// dec lives outside the cycle: &dec reaches json.Unmarshal on the
	// (unused) JSON branch of decodeEnvelope, so it escapes and a
	// per-cycle variable would cost exactly one heap envelope per op —
	// the same reason Peer.loop reuses its decode envelope.
	var dec envelope
	cycle := func() {
		data, err := encodeFrame(bp, &env, CodecBinary)
		if err != nil {
			panic(err)
		}
		body, ok := verifyFrame(data)
		if !ok {
			panic("rpc: framed envelope failed its own CRC")
		}
		dec = envelope{}
		if bin, ok := decodeEnvelope(body, &dec); !bin || !ok {
			panic("rpc: binary envelope failed to decode")
		}
		if dec.CallID != env.CallID || dec.Method != env.Method {
			panic("rpc: binary envelope round trip mismatch")
		}
	}
	// Warm the pool, the intern table and the buffer growth before
	// measuring the steady state.
	for i := 0; i < 16; i++ {
		cycle()
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		cycle()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}
