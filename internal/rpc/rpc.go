// Package rpc provides remote procedure calls over the simulated network
// (paper §2: operations on remote objects are invoked via an RPC
// mechanism). It implements the standard protocol-level defences the
// paper assumes: retransmission against message loss and duplicate
// suppression with reply caching (at-most-once execution per call).
package rpc

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"mca/internal/clock"
	"mca/internal/flightrec"
	"mca/internal/ids"
	"mca/internal/netsim"
	"mca/internal/phase"
	"mca/internal/trace"
)

// Errors reported by the RPC layer.
var (
	// ErrTimeout is returned when no reply arrived within the call's
	// deadline despite retransmissions — the paper's "continued loss
	// of messages" failure, which callers treat as grounds for abort.
	ErrTimeout = errors.New("rpc: call timed out")
	// ErrStopped is returned for calls on a stopped peer.
	ErrStopped = errors.New("rpc: peer stopped")
	// ErrNoHandler is returned (remotely) when the method is unknown.
	ErrNoHandler = errors.New("rpc: no such method")
)

// RemoteError carries an application-level error string back to the
// caller.
type RemoteError struct {
	Method string
	Msg    string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote %s: %s", e.Method, e.Msg)
}

// Handler serves one method. The returned bytes are the reply body; a
// non-nil error is delivered to the caller as a *RemoteError.
type Handler func(ctx context.Context, from ids.NodeID, body []byte) ([]byte, error)

// Datagram is one unreliable message as seen by the RPC layer.
type Datagram struct {
	From    ids.NodeID
	To      ids.NodeID
	Payload []byte
}

// Transport is the unreliable datagram surface a Peer runs on: the
// simulated LAN (internal/netsim) or real TCP (internal/tcpnet).
// Implementations may lose, duplicate, delay or reorder datagrams; the
// Peer's retransmission and duplicate suppression compensate.
type Transport interface {
	// ID returns this endpoint's node identifier.
	ID() ids.NodeID
	// Send transmits payload to the named node, best effort. Send must
	// not retain payload after it returns: the RPC layer encodes into
	// pooled buffers and reuses them, so a transport that queues
	// internally copies first (netsim copies under its network mutex,
	// tcpnet stages into its coalescing writer's own frames).
	Send(to ids.NodeID, payload []byte) error
	// Recv blocks for the next datagram, the context's end, or the
	// transport's permanent failure.
	Recv(ctx context.Context) (Datagram, error)
}

// simTransport adapts a netsim endpoint to Transport.
type simTransport struct {
	ep *netsim.Endpoint
}

var _ Transport = simTransport{}

func (t simTransport) ID() ids.NodeID { return t.ep.ID() }

func (t simTransport) Send(to ids.NodeID, payload []byte) error {
	return t.ep.Send(to, payload)
}

func (t simTransport) Recv(ctx context.Context) (Datagram, error) {
	m, err := t.ep.Recv(ctx)
	if err != nil {
		return Datagram{}, err
	}
	return Datagram{From: m.From, To: m.To, Payload: m.Payload}, nil
}

type kind int

const (
	kindRequest kind = iota + 1
	kindReply
)

// wireVersionTrace flags an envelope carrying distributed-trace
// context. The version byte keeps the extension wire-compatible in
// both directions: peers predating it ignore the unknown JSON fields,
// and envelopes from such peers decode here with V == 0, which new
// code reads as "no trace context".
const wireVersionTrace uint8 = 1

// envelope is the logical wire message. Two encodings exist (see
// codec.go): the original JSON format, produced by these struct tags,
// and the binary format, which carries exactly the same fields.
type envelope struct {
	Kind   kind            `json:"kind"`
	CallID uint64          `json:"callId"`
	Origin ids.NodeID      `json:"origin"`
	Method string          `json:"method,omitempty"`
	Body   json.RawMessage `json:"body,omitempty"`
	ErrMsg string          `json:"errMsg,omitempty"`
	IsErr  bool            `json:"isErr,omitempty"`
	// V is the wire version/flag byte: wireVersionTrace when the
	// envelope carries the caller's trace context in Trace/Span.
	V     uint8  `json:"v,omitempty"`
	Trace uint64 `json:"trace,omitempty"`
	Span  uint64 `json:"span,omitempty"`
}

// traceContext extracts the trace context shipped in the envelope,
// invalid (zero) when the sender attached none.
func (e *envelope) traceContext() trace.Context {
	if e.V < wireVersionTrace {
		return trace.Context{}
	}
	return trace.Context{TraceID: e.Trace, SpanID: e.Span}
}

// Options tunes client behaviour.
type Options struct {
	// RetryInterval is the retransmission period. Default 20ms.
	RetryInterval time.Duration
	// CallTimeout bounds a call including retries. Default 2s.
	CallTimeout time.Duration
	// ReplyCache bounds the number of cached replies kept for
	// duplicate suppression. Default 1024.
	ReplyCache int
	// Clock is the time source for retry tickers and span timestamps.
	// Default clock.Real().
	Clock clock.Clock
	// Codec selects the envelope wire format for outgoing messages.
	// The default, CodecBinary, starts every call in the binary format
	// and downgrades per destination when a peer never answers it (see
	// jsonFallbackAfter); CodecJSON pins the original JSON format for
	// clusters still rolling out the binary codec.
	Codec Codec
	// ServeWorkers bounds the resident handler pool. Incoming requests
	// are handed to an idle pooled worker when one is ready and spawn a
	// fresh goroutine otherwise, so a burst (or a pool full of blocked
	// handlers) never delays or deadlocks dispatch. Default 8.
	ServeWorkers int
}

func (o *Options) fill() {
	if o.RetryInterval <= 0 {
		o.RetryInterval = 20 * time.Millisecond
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 2 * time.Second
	}
	if o.ReplyCache <= 0 {
		o.ReplyCache = 1024
	}
	if o.Clock == nil {
		o.Clock = clock.Real()
	}
	if o.ServeWorkers <= 0 {
		o.ServeWorkers = 8
	}
}

// jsonFallbackAfter is the number of unanswered retransmissions after
// which a binary-format call downgrades to JSON for a destination that
// has never sent us a binary envelope: such a peer may predate the
// binary codec and be silently dropping our requests. A new peer
// answers either format (and replies in binary to any peer it knows to
// be binary-capable), so the downgrade costs only encoding efficiency,
// never correctness, and the first binary envelope received from the
// destination re-enables the fast format for subsequent calls.
const jsonFallbackAfter = 3

// Peer is one node's RPC engine: it serves registered methods and issues
// outgoing calls over a single transport endpoint.
type Peer struct {
	ep   Transport
	opts Options

	mu       sync.Mutex
	handlers map[string]Handler
	pending  map[uint64]chan envelope
	// seen caches replies for duplicate requests, and inflight tracks
	// requests whose handler is still executing so a retransmission
	// cannot start a second execution (at-most-once). seenRing is the
	// fixed-capacity FIFO eviction order of seen: a ring buffer, not an
	// appended-and-resliced slice, so a long-lived peer's cache churn
	// reuses one backing array instead of pinning an ever-growing one.
	seen     map[uint64]envelope
	seenRing []uint64
	seenHead int // index of the oldest entry in seenRing
	seenLen  int
	inflight map[uint64]struct{}
	// binPeers records nodes that have sent us a binary envelope —
	// proof they decode the binary format — so replies and future calls
	// to them skip the JSON fallback.
	binPeers map[ids.NodeID]struct{}
	running  bool
	stop     chan struct{}
	done     chan struct{}
	serveq   chan serveJob

	// tracer, when set, receives one client span per outgoing traced
	// call and one server span per logical (deduplicated) handler
	// execution.
	tracer atomic.Pointer[trace.Recorder]
}

// callSeq mints call sequence numbers. It is process-global, not
// per-Peer, so a peer rebuilt after a node restart never reuses a
// pre-crash CallID: servers that stayed up keep their reply caches, and
// a reused ID would make duplicate suppression replay a stale cached
// reply to a brand-new call (a restarted coordinator's recovery re-drive
// would be ghost-acked without any participant executing it).
var callSeq atomic.Uint64

// isBinaryPeer reports whether the destination has ever sent this peer
// a binary envelope, proving it runs the binary-capable codec.
func (p *Peer) isBinaryPeer(id ids.NodeID) bool {
	p.mu.Lock()
	_, ok := p.binPeers[id]
	p.mu.Unlock()
	return ok
}

// SetTracer installs the recorder that receives this peer's RPC spans:
// "rpc.client" for outgoing traced calls, "rpc.server" for handler
// executions. Retransmissions never produce extra server spans — the
// duplicate-suppression path bypasses span emission, so one logical
// call is one span. A nil recorder disables span emission; trace
// contexts still propagate on the wire either way.
func (p *Peer) SetTracer(rec *trace.Recorder) { p.tracer.Store(rec) }

// NewPeer builds a peer over a simulated-network endpoint.
func NewPeer(ep *netsim.Endpoint, opts Options) *Peer {
	return NewPeerOn(simTransport{ep: ep}, opts)
}

// NewPeerOn builds a peer over any Transport.
func NewPeerOn(t Transport, opts Options) *Peer {
	opts.fill()
	return &Peer{
		ep:       t,
		opts:     opts,
		handlers: make(map[string]Handler),
		pending:  make(map[uint64]chan envelope),
		seen:     make(map[uint64]envelope),
		inflight: make(map[uint64]struct{}),
		binPeers: make(map[ids.NodeID]struct{}),
	}
}

// ID returns the node identifier of the underlying endpoint.
func (p *Peer) ID() ids.NodeID { return p.ep.ID() }

// Handle registers a method handler. It must be called before Start or
// between Stop/Start cycles.
func (p *Peer) Handle(method string, h Handler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.handlers[method] = h
}

// Start launches the receive loop and the handler worker pool.
func (p *Peer) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.running {
		return
	}
	p.running = true
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	// serveq is deliberately unbuffered: a request is handed to a
	// pooled worker only if one is idle and ready to take it right now.
	// Queuing behind busy workers could deadlock — all workers blocked
	// in handlers whose progress depends on a queued request (a 2PC
	// participant waiting on a lock whose holder's commit sits in the
	// queue) — so anything the pool cannot take immediately spawns.
	p.serveq = make(chan serveJob)
	go p.loop(p.stop, p.done, p.serveq)
}

// Stop terminates the receive loop and fails pending calls. The reply
// cache is cleared: it models volatile state lost in a crash.
func (p *Peer) Stop() {
	p.mu.Lock()
	if !p.running {
		p.mu.Unlock()
		return
	}
	p.running = false
	stop, done := p.stop, p.done
	p.mu.Unlock()

	close(stop)
	<-done

	p.mu.Lock()
	defer p.mu.Unlock()
	for id, ch := range p.pending {
		close(ch)
		delete(p.pending, id)
	}
	p.seen = make(map[uint64]envelope)
	p.seenRing = nil
	p.seenHead, p.seenLen = 0, 0
	p.inflight = make(map[uint64]struct{})
	p.binPeers = make(map[ids.NodeID]struct{})
}

// serveJob is one decoded request awaiting handler dispatch. binary
// records the request's wire format so the reply answers in kind.
type serveJob struct {
	from   ids.NodeID
	req    envelope
	binary bool
	// arrived is the dispatch timestamp, stamped only for traced
	// requests: serve-start minus arrived is the queue phase (pool
	// wait, or goroutine scheduling delay on the spawn path).
	arrived time.Time
}

// serveWorker is one resident pool goroutine: it serves handed-off
// requests until the receive loop closes the queue. ctx is the receive
// loop's context, so a pooled handler observes Stop exactly like a
// spawned one.
func (p *Peer) serveWorker(ctx context.Context, q <-chan serveJob) {
	for job := range q {
		p.serve(ctx, job)
	}
}

func (p *Peer) loop(stop, done chan struct{}, serveq chan serveJob) {
	defer close(done)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Closing serveq releases the resident workers; a worker mid-handler
	// finishes its job first, exactly like a spawned goroutine would.
	defer close(serveq)
	for i := 0; i < p.opts.ServeWorkers; i++ {
		go p.serveWorker(ctx, serveq)
	}
	go func() {
		<-stop
		cancel()
	}()
	// env is hoisted out of the receive loop: its address reaches
	// json.Unmarshal on the legacy-codec branch, so it escapes, and a
	// per-iteration variable would heap-allocate one envelope per
	// datagram. Dispatch below copies it by value (into a serveJob or a
	// pending channel), so reuse is safe.
	var env envelope
	for {
		msg, err := p.ep.Recv(ctx)
		if err != nil {
			return
		}
		bytesRecv.Add(uint64(len(msg.Payload)))
		body, ok := verifyFrame(msg.Payload)
		if !ok {
			continue // corrupt datagram (checksum mismatch): drop
		}
		env = envelope{}
		bin, ok := decodeEnvelope(body, &env)
		if !ok {
			continue // undecodable datagram: drop
		}
		if bin {
			p.mu.Lock()
			p.binPeers[msg.From] = struct{}{}
			p.mu.Unlock()
		}
		switch env.Kind {
		case kindRequest:
			job := serveJob{from: msg.From, req: env, binary: bin}
			if env.Trace != 0 {
				job.arrived = p.opts.Clock.Now()
			}
			select {
			case serveq <- job:
				servesPooled.Inc()
			default:
				// Every worker is busy (or blocked): spawn, preserving
				// the old goroutine-per-request liveness.
				servesSpawned.Inc()
				go p.serve(ctx, job)
			}
		case kindReply:
			p.mu.Lock()
			ch, ok := p.pending[env.CallID]
			p.mu.Unlock()
			if ok {
				select {
				case ch <- env:
				default: // duplicate reply: drop
				}
			}
		}
	}
}

// cacheReply inserts a reply into the duplicate-suppression cache,
// evicting the oldest entry once the ring is full. Caller holds p.mu.
func (p *Peer) cacheReply(callID uint64, resp envelope) {
	if p.seenRing == nil {
		p.seenRing = make([]uint64, p.opts.ReplyCache)
	}
	if p.seenLen == len(p.seenRing) {
		delete(p.seen, p.seenRing[p.seenHead])
		p.seenRing[p.seenHead] = callID
		p.seenHead = (p.seenHead + 1) % len(p.seenRing)
	} else {
		p.seenRing[(p.seenHead+p.seenLen)%len(p.seenRing)] = callID
		p.seenLen++
	}
	p.seen[callID] = resp
}

func (p *Peer) serve(ctx context.Context, job serveJob) {
	from, req := job.from, job.req
	// Duplicate suppression: replay the cached reply for completed
	// calls; drop retransmissions of calls still executing (the
	// original execution will reply when it finishes).
	p.mu.Lock()
	_, binPeer := p.binPeers[from]
	replyCodec := CodecJSON
	if p.opts.Codec != CodecJSON && (job.binary || binPeer) {
		// Answer in the caller's format; a peer that has ever sent us
		// binary gets binary even on a (fallback) JSON request.
		replyCodec = CodecBinary
	}
	if cached, ok := p.seen[req.CallID]; ok {
		p.mu.Unlock()
		duplicates.Inc()
		flightrec.Record(flightrec.Event{Kind: flightrec.KindRPCDuplicate, Node: uint64(p.ep.ID()), Trace: req.Trace, Span: req.Span, A: req.CallID})
		p.reply(from, cached, replyCodec)
		return
	}
	if _, executing := p.inflight[req.CallID]; executing {
		p.mu.Unlock()
		duplicates.Inc()
		flightrec.Record(flightrec.Event{Kind: flightrec.KindRPCDuplicate, Node: uint64(p.ep.ID()), Trace: req.Trace, Span: req.Span, A: req.CallID})
		return
	}
	p.inflight[req.CallID] = struct{}{}
	h, ok := p.handlers[req.Method]
	p.mu.Unlock()
	requests.Inc()
	flightrec.Record(flightrec.Event{Kind: flightrec.KindRPCServe, Node: uint64(p.ep.ID()), Trace: req.Trace, Span: req.Span, A: req.CallID, B: uint64(len(req.Body))})

	// Thread the caller's trace context into the handler. With a tracer
	// installed the handler runs under a fresh server span (emitted
	// below, once per logical call — this point is only reached past
	// duplicate suppression); without one the caller's context passes
	// through untouched so downstream hops still join the trace.
	hctx := ctx
	reqTC := req.traceContext()
	rec := p.tracer.Load()
	var serverSpan trace.Context
	var spanStart time.Time
	if reqTC.Valid() {
		spanStart = p.opts.Clock.Now()
		if !job.arrived.IsZero() {
			phase.Record(reqTC.TraceID, phase.Queue, spanStart.Sub(job.arrived))
		}
		if rec != nil {
			serverSpan = reqTC.Child()
			hctx = trace.Inject(ctx, serverSpan)
		} else {
			hctx = trace.Inject(ctx, reqTC)
		}
	}

	resp := envelope{Kind: kindReply, CallID: req.CallID, Origin: p.ep.ID()}
	if !ok {
		resp.IsErr = true
		resp.ErrMsg = ErrNoHandler.Error() + ": " + req.Method
	} else {
		body, err := h(hctx, from, req.Body)
		switch {
		case err != nil:
			resp.IsErr = true
			resp.ErrMsg = err.Error()
		case len(body) > 0 && !json.Valid(body):
			// A handler returning malformed JSON would make the
			// reply envelope unmarshalable and the caller would only
			// ever see timeouts; surface the bug as an error reply
			// instead.
			resp.IsErr = true
			resp.ErrMsg = fmt.Sprintf("rpc: handler %s returned invalid JSON", req.Method)
		default:
			resp.Body = body
		}
	}

	if reqTC.Valid() {
		end := p.opts.Clock.Now()
		phase.Record(reqTC.TraceID, phase.Serve, end.Sub(spanStart))
		if serverSpan.Valid() {
			outcome := trace.OutcomeOK
			if resp.IsErr {
				outcome = trace.OutcomeError
			}
			rec.AddSpan(trace.Span{
				Kind:         "rpc.server",
				Label:        req.Method,
				TraceID:      serverSpan.TraceID,
				SpanID:       serverSpan.SpanID,
				ParentSpanID: reqTC.SpanID,
				Outcome:      outcome,
				Begin:        spanStart,
				End:          end,
			})
		}
	}

	p.mu.Lock()
	delete(p.inflight, req.CallID)
	if _, dup := p.seen[req.CallID]; !dup {
		p.cacheReply(req.CallID, resp)
	}
	p.mu.Unlock()
	p.reply(from, resp, replyCodec)
}

func (p *Peer) reply(to ids.NodeID, env envelope, c Codec) {
	bp := getFrameBuf()
	defer putFrameBuf(bp)
	data, err := encodeFrame(bp, &env, c)
	if err != nil {
		return
	}
	bytesSent.Add(uint64(len(data)))
	// Transports must not retain data past Send (netsim copies, tcpnet
	// stages into its own writer frame), so the buffer re-pools here.
	//mcalint:ignore errdrop best-effort reply; a lost send is repaired by the caller's retransmission
	_ = p.ep.Send(to, data)
}

// frame prefixes the body with a CRC32 so corrupted datagrams (flipped
// bits on the simulated LAN) are detected and dropped rather than
// decoded into garbage.
func frame(body []byte) []byte {
	out := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(out[:4], crc32.ChecksumIEEE(body))
	copy(out[4:], body)
	return out
}

// verifyFrame checks and strips the checksum prefix.
func verifyFrame(data []byte) ([]byte, bool) {
	if len(data) < 4 {
		return nil, false
	}
	want := binary.BigEndian.Uint32(data[:4])
	body := data[4:]
	if crc32.ChecksumIEEE(body) != want {
		return nil, false
	}
	return body, true
}

// Call invokes method at the target node, marshalling req and
// unmarshalling the reply into resp (which may be nil). It retransmits
// until a reply arrives, ctx ends, or the configured call timeout
// expires.
//
// When ctx carries a trace context (trace.Inject), it is shipped in
// the envelope so the remote handler joins the caller's trace; with a
// tracer installed (SetTracer) the call additionally runs under its
// own child span, recorded as "rpc.client" when the call completes.
func (p *Peer) Call(ctx context.Context, to ids.NodeID, method string, req, resp any) error {
	tc, traced := trace.FromContext(ctx)
	if !traced {
		return p.call(ctx, to, method, trace.Context{}, req, resp)
	}
	rec := p.tracer.Load()
	if rec == nil {
		// Propagate the caller's span verbatim: deriving a child here
		// would put a span identifier on the wire that no recorder
		// ever exports, orphaning the server side of the trace.
		return p.call(ctx, to, method, tc, req, resp)
	}
	callSpan := tc.Child()
	start := p.opts.Clock.Now()
	err := p.call(ctx, to, method, callSpan, req, resp)
	end := p.opts.Clock.Now()
	// Client-side rpc phase: queueing + network + remote serve, as the
	// caller experienced it. The attribution view subtracts the remote
	// serve/queue phases back out to isolate wire time.
	phase.Record(tc.TraceID, phase.RPC, end.Sub(start))
	outcome := trace.OutcomeOK
	if err != nil {
		outcome = trace.OutcomeError
	}
	rec.AddSpan(trace.Span{
		Kind:         "rpc.client",
		Label:        method + " to " + to.String(),
		TraceID:      callSpan.TraceID,
		SpanID:       callSpan.SpanID,
		ParentSpanID: tc.SpanID,
		Outcome:      outcome,
		Begin:        start,
		End:          end,
	})
	return err
}

// call runs the retransmission protocol for one request. wire, when
// valid, is the span context stamped into the envelope (the same one
// on every retransmission, so duplicate suppression keeps the logical
// call to a single server span).
func (p *Peer) call(ctx context.Context, to ids.NodeID, method string, wire trace.Context, req, resp any) error {
	p.mu.Lock()
	if !p.running {
		p.mu.Unlock()
		callsStopped.Inc()
		return ErrStopped
	}
	p.mu.Unlock()

	body, err := json.Marshal(req)
	if err != nil {
		callsSendErr.Inc()
		return fmt.Errorf("rpc: marshal request: %w", err)
	}
	callID := callSeq.Add(1)<<16 | uint64(p.ep.ID())&0xFFFF
	env := envelope{
		Kind:   kindRequest,
		CallID: callID,
		Origin: p.ep.ID(),
		Method: method,
		Body:   body,
	}
	if wire.Valid() {
		env.V = wireVersionTrace
		env.Trace, env.Span = wire.TraceID, wire.SpanID
	}
	codec := p.opts.Codec
	bp := getFrameBuf()
	defer putFrameBuf(bp)
	data, err := encodeFrame(bp, &env, codec)
	if err != nil {
		callsSendErr.Inc()
		return fmt.Errorf("rpc: marshal envelope: %w", err)
	}

	ch := make(chan envelope, 1)
	p.mu.Lock()
	p.pending[callID] = ch
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.pending, callID)
		p.mu.Unlock()
	}()

	ctx, cancel := context.WithTimeout(ctx, p.opts.CallTimeout)
	defer cancel()

	ticker := p.opts.Clock.NewTicker(p.opts.RetryInterval)
	defer ticker.Stop()

	bytesSent.Add(uint64(len(data)))
	if err := p.ep.Send(to, data); err != nil && !transientSendErr(err) {
		callsSendErr.Inc()
		return fmt.Errorf("rpc: send: %w", err)
	}
	attempts := 0
	for {
		select {
		case reply, ok := <-ch:
			if !ok {
				callsStopped.Inc()
				return ErrStopped
			}
			if reply.IsErr {
				callsRemoteErr.Inc()
				return &RemoteError{Method: method, Msg: reply.ErrMsg}
			}
			if resp != nil && reply.Body != nil {
				if err := json.Unmarshal(reply.Body, resp); err != nil {
					callsDecodeErr.Inc()
					return fmt.Errorf("rpc: unmarshal reply: %w", err)
				}
			}
			callsOK.Inc()
			return nil
		case <-ticker.C():
			attempts++
			if codec == CodecBinary && attempts >= jsonFallbackAfter && !p.isBinaryPeer(to) {
				// The destination has never spoken binary to us — it may
				// be an old JSON-only peer silently dropping our binary
				// envelopes. Downgrade this call's remaining
				// retransmissions to the JSON format (a new peer answers
				// either way, so this is at worst slower, never wrong).
				codec = CodecJSON
				if refreshed, err := encodeFrame(bp, &env, CodecJSON); err == nil {
					data = refreshed
					wireFallbacks.Inc()
				}
			}
			retransmits.Inc()
			flightrec.Record(flightrec.Event{Kind: flightrec.KindRPCRetransmit, Node: uint64(p.ep.ID()), Trace: wire.TraceID, Span: wire.SpanID, A: callID})
			bytesSent.Add(uint64(len(data)))
			if err := p.ep.Send(to, data); err != nil && !transientSendErr(err) {
				callsSendErr.Inc()
				return fmt.Errorf("rpc: send: %w", err)
			}
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				callsTimeout.Inc()
				return ErrTimeout
			}
			callsCancelled.Inc()
			return ctx.Err()
		}
	}
}

// TransientError marks a transport send error as potentially healing:
// the destination may register, restart or become reachable later, so
// the retransmission loop should keep trying instead of failing the
// call. Transports implement it on their error values (they cannot
// import this package's sentinels without cycles); alternatively they
// may wrap ErrTransientSend.
type TransientError interface {
	error
	// Transient reports whether retrying the send may eventually
	// succeed without caller intervention.
	Transient() bool
}

// ErrTransientSend is a sentinel transports can wrap into a send error
// to mark it transient, as an alternative to implementing
// TransientError.
var ErrTransientSend = errors.New("rpc: transient send failure")

// IsTransientSend reports whether a transport send error is transient —
// the transport-agnostic classification both netsim and tcpnet satisfy.
// An error is transient when any error in its chain implements
// TransientError with Transient() == true, or wraps ErrTransientSend.
func IsTransientSend(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrTransientSend) {
		return true
	}
	var te TransientError
	return errors.As(err, &te) && te.Transient()
}

// transientSendErr reports whether a send failure may heal (unknown node
// yet to register, crashed destination): the retransmission loop keeps
// trying. The explicit netsim checks are kept as a safety net for
// transports that wrap the simulator's errors without the marker.
func transientSendErr(err error) bool {
	return IsTransientSend(err) ||
		errors.Is(err, netsim.ErrUnknownNode) || errors.Is(err, netsim.ErrCrashed)
}
