package rpc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
)

// codecCases spans the envelope shapes the wire carries: requests and
// replies, with and without trace context, error replies, empty bodies.
func codecCases() []envelope {
	return []envelope{
		{Kind: kindRequest, CallID: 1, Origin: 2, Method: "echo", Body: json.RawMessage(`{"text":"hi"}`)},
		{Kind: kindReply, CallID: 1, Origin: 3, Body: json.RawMessage(`{"text":"hi"}`)},
		{Kind: kindReply, CallID: 9, Origin: 3, IsErr: true, ErrMsg: "application broke"},
		{Kind: kindRequest, CallID: 1 << 60, Origin: 2, Method: "dist.prepare",
			Body: json.RawMessage(`{"txn":42}`), V: wireVersionTrace, Trace: 0xDEADBEEF, Span: 0xCAFE},
		{Kind: kindReply, CallID: 7, Origin: 1, IsErr: true, ErrMsg: "no handler",
			V: wireVersionTrace, Trace: 1, Span: 2},
		{Kind: kindRequest, CallID: 5, Origin: 6, Method: ""},
	}
}

// TestEnvelopeBinaryRoundTrip checks decode(encode(env)) == env for
// every envelope shape, through the full CRC frame path.
func TestEnvelopeBinaryRoundTrip(t *testing.T) {
	for i, env := range codecCases() {
		bp := getFrameBuf()
		data, err := encodeFrame(bp, &env, CodecBinary)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		body, ok := verifyFrame(data)
		if !ok {
			t.Fatalf("case %d: frame failed own CRC", i)
		}
		var dec envelope
		bin, ok := decodeEnvelope(body, &dec)
		if !bin || !ok {
			t.Fatalf("case %d: decode failed (bin=%v ok=%v)", i, bin, ok)
		}
		if !reflect.DeepEqual(dec, env) {
			t.Fatalf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, dec, env)
		}
		putFrameBuf(bp)
	}
}

// TestEnvelopeJSONRoundTrip checks the same through the JSON codec, and
// that decodeEnvelope reports it as non-binary (the capability signal).
func TestEnvelopeJSONRoundTrip(t *testing.T) {
	for i, env := range codecCases() {
		bp := getFrameBuf()
		data, err := encodeFrame(bp, &env, CodecJSON)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		body, ok := verifyFrame(data)
		if !ok {
			t.Fatalf("case %d: frame failed own CRC", i)
		}
		var dec envelope
		bin, ok := decodeEnvelope(body, &dec)
		if bin || !ok {
			t.Fatalf("case %d: decode (bin=%v ok=%v), want JSON ok", i, bin, ok)
		}
		if !reflect.DeepEqual(dec, env) {
			t.Fatalf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, dec, env)
		}
		putFrameBuf(bp)
	}
}

// TestBinaryDecodeTruncated feeds the decoder every prefix of a valid
// binary envelope: all must be cleanly rejected (no panic, no partial
// acceptance — the format is self-delimiting end to end).
func TestBinaryDecodeTruncated(t *testing.T) {
	env := envelope{Kind: kindRequest, CallID: 42, Origin: 7, Method: "echo",
		Body: json.RawMessage(`{"x":1}`), V: wireVersionTrace, Trace: 3, Span: 4}
	full := appendEnvelopeBinary(nil, &env)
	for n := 0; n < len(full); n++ {
		var dec envelope
		if ok := decodeEnvelopeBinary(full[:n], &dec); ok {
			t.Fatalf("decode accepted %d-byte truncation of a %d-byte envelope", n, len(full))
		}
	}
}

// TestBinaryDecodeTrailingBytes: extra bytes after a valid envelope are
// rejected (strictness guards against framing bugs and smuggled data).
func TestBinaryDecodeTrailingBytes(t *testing.T) {
	env := envelope{Kind: kindReply, CallID: 1, Origin: 2}
	data := appendEnvelopeBinary(nil, &env)
	data = append(data, 0x00)
	var dec envelope
	if decodeEnvelopeBinary(data, &dec) {
		t.Fatal("decode accepted an envelope with trailing bytes")
	}
}

// TestBinaryDecodeBadHeader rejects unknown versions, kinds and flags.
func TestBinaryDecodeBadHeader(t *testing.T) {
	env := envelope{Kind: kindRequest, CallID: 1, Origin: 2, Method: "m"}
	good := appendEnvelopeBinary(nil, &env)
	mutations := map[string]func([]byte){
		"version": func(b []byte) { b[1] = binVersion + 1 },
		"kind":    func(b []byte) { b[2] = 0x7F },
		"flags":   func(b []byte) { b[3] |= 1 << 7 },
		"magic":   func(b []byte) { b[0] = '{' },
	}
	for name, mutate := range mutations {
		data := bytes.Clone(good)
		mutate(data)
		var dec envelope
		if decodeEnvelopeBinary(data, &dec) {
			t.Fatalf("decode accepted envelope with corrupted %s byte", name)
		}
	}
}

// TestBinaryDecodeBitFlips flips every bit of a framed envelope in turn:
// the CRC verify plus the strict decoder must never panic, and a flip
// that slips past the CRC (none should) must not be accepted silently.
func TestBinaryDecodeBitFlips(t *testing.T) {
	env := envelope{Kind: kindRequest, CallID: 99, Origin: 5, Method: "dist.commit",
		Body: json.RawMessage(`{"txn":9}`)}
	bp := getFrameBuf()
	defer putFrameBuf(bp)
	framed, err := encodeFrame(bp, &env, CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(framed)*8; i++ {
		data := bytes.Clone(framed)
		data[i/8] ^= 1 << (i % 8)
		body, ok := verifyFrame(data)
		if !ok {
			continue // CRC caught it, the normal outcome
		}
		// A single bit flip always changes the CRC32 of body or the
		// stored checksum, so passing verification means the flip was
		// inside... nothing: it cannot happen. Decode defensively anyway.
		var dec envelope
		decodeEnvelope(body, &dec)
		t.Fatalf("bit flip %d passed CRC verification", i)
	}
}

// TestEnvelopeCodecAllocs is the allocs-regression gate: the binary
// envelope round-trip (encode into a pooled frame, CRC verify, strict
// decode) must stay allocation-free in steady state.
func TestEnvelopeCodecAllocs(t *testing.T) {
	allocs := EnvelopeRoundTripAllocs(2000)
	if allocs >= 1 {
		t.Fatalf("envelope round trip allocates %.2f objects/op, want ~0", allocs)
	}
}

// TestMethodInternBounded: an adversarial stream of unique method names
// must not grow the intern table without limit.
func TestMethodInternBounded(t *testing.T) {
	for i := 0; i < 3*methodInternLimit; i++ {
		name := []byte(fmt.Sprintf("attack.method.%d", i))
		if got := internMethod(name); got != string(name) {
			t.Fatalf("internMethod(%q) = %q", name, got)
		}
	}
	methodIntern.RLock()
	size := len(methodIntern.m)
	methodIntern.RUnlock()
	if size > methodInternLimit {
		t.Fatalf("intern table grew to %d entries, bound is %d", size, methodInternLimit)
	}
}

// BenchmarkEnvelopeEncodeBinary measures the envelope encode hot path.
func BenchmarkEnvelopeEncodeBinary(b *testing.B) {
	benchmarkEnvelopeEncode(b, CodecBinary)
}

// BenchmarkEnvelopeEncodeJSON is the baseline the binary codec replaces.
func BenchmarkEnvelopeEncodeJSON(b *testing.B) {
	benchmarkEnvelopeEncode(b, CodecJSON)
}

func benchmarkEnvelopeEncode(b *testing.B, c Codec) {
	env := envelope{Kind: kindRequest, CallID: 0x12345678, Origin: 7, Method: "dist.prepare",
		Body: json.RawMessage(`{"txn":42,"op":"transfer","amount":10}`),
		V:    wireVersionTrace, Trace: 0xDEADBEEF, Span: 0xCAFE}
	bp := getFrameBuf()
	defer putFrameBuf(bp)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := encodeFrame(bp, &env, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnvelopeRoundTripBinary measures encode+verify+decode.
func BenchmarkEnvelopeRoundTripBinary(b *testing.B) {
	benchmarkEnvelopeRoundTrip(b, CodecBinary)
}

func BenchmarkEnvelopeRoundTripJSON(b *testing.B) {
	benchmarkEnvelopeRoundTrip(b, CodecJSON)
}

func benchmarkEnvelopeRoundTrip(b *testing.B, c Codec) {
	env := envelope{Kind: kindRequest, CallID: 0x12345678, Origin: 7, Method: "dist.prepare",
		Body: json.RawMessage(`{"txn":42,"op":"transfer","amount":10}`),
		V:    wireVersionTrace, Trace: 0xDEADBEEF, Span: 0xCAFE}
	bp := getFrameBuf()
	defer putFrameBuf(bp)
	var dec envelope // hoisted: &dec escapes via the JSON decode branch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := encodeFrame(bp, &env, c)
		if err != nil {
			b.Fatal(err)
		}
		body, ok := verifyFrame(data)
		if !ok {
			b.Fatal("frame failed own CRC")
		}
		dec = envelope{}
		if _, ok := decodeEnvelope(body, &dec); !ok {
			b.Fatal("decode failed")
		}
	}
}
