package rpc

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"mca/internal/ids"
	"mca/internal/netsim"
	"mca/internal/trace"
)

func TestTraceContextPropagatesToHandler(t *testing.T) {
	a, b, _ := newPair(t, netsim.Config{}, Options{})
	recA, recB := trace.NewRecorder(), trace.NewRecorder()
	a.SetTracer(recA)
	b.SetTracer(recB)

	root := trace.NewRoot()
	var got trace.Context
	b.Handle("traced", func(ctx context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
		got, _ = trace.FromContext(ctx)
		return body, nil
	})

	ctx := trace.Inject(context.Background(), root)
	if err := a.Call(ctx, b.ep.ID(), "traced", echoReq{Text: "x"}, nil); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got.TraceID != root.TraceID {
		t.Fatalf("handler trace id %x, want caller's %x", got.TraceID, root.TraceID)
	}
	if got.SpanID == root.SpanID || got.SpanID == 0 {
		t.Fatalf("handler span id %x must be a fresh child, not the root %x", got.SpanID, root.SpanID)
	}

	// Client exported an rpc.client span, server an rpc.server span, and
	// the server span's parent is the client span — the cross-node link.
	var clientSpan, serverSpan *trace.Span
	for _, s := range recA.Spans() {
		if s.Kind == "rpc.client" {
			clientSpan = &s
		}
	}
	for _, s := range recB.Spans() {
		if s.Kind == "rpc.server" {
			serverSpan = &s
		}
	}
	if clientSpan == nil || serverSpan == nil {
		t.Fatalf("missing spans: client=%v server=%v", clientSpan, serverSpan)
	}
	if clientSpan.ParentSpanID != root.SpanID {
		t.Fatalf("client span parent %x, want root %x", clientSpan.ParentSpanID, root.SpanID)
	}
	if serverSpan.ParentSpanID != clientSpan.SpanID {
		t.Fatalf("server span parent %x, want client span %x", serverSpan.ParentSpanID, clientSpan.SpanID)
	}
	if serverSpan.SpanID != got.SpanID {
		t.Fatalf("server span id %x, want handler context %x", serverSpan.SpanID, got.SpanID)
	}
}

func TestUntracedPeerPropagatesContextVerbatim(t *testing.T) {
	// Without a tracer the client must not derive a child span: a span
	// identifier on the wire that no recorder exports would orphan the
	// server side of the merged trace.
	a, b, _ := newPair(t, netsim.Config{}, Options{})
	root := trace.NewRoot()
	var got trace.Context
	b.Handle("traced", func(ctx context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
		got, _ = trace.FromContext(ctx)
		return body, nil
	})
	ctx := trace.Inject(context.Background(), root)
	if err := a.Call(ctx, b.ep.ID(), "traced", echoReq{Text: "x"}, nil); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got != root {
		t.Fatalf("handler context %+v, want the caller's verbatim %+v", got, root)
	}
}

func TestUntracedCallCarriesNoTraceOnWire(t *testing.T) {
	a, b, _ := newPair(t, netsim.Config{}, Options{})
	var got trace.Context
	var had atomic.Bool
	b.Handle("plain", func(ctx context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
		var ok bool
		got, ok = trace.FromContext(ctx)
		had.Store(ok)
		return body, nil
	})
	if err := a.Call(context.Background(), b.ep.ID(), "plain", echoReq{}, nil); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if had.Load() {
		t.Fatalf("untraced call delivered a trace context: %+v", got)
	}
}

// TestRetransmittedCallEmitsOneServerSpan pins the dedup/span
// interaction: a slow handler makes the client retransmit, the server's
// duplicate suppression absorbs the copies, and exactly one rpc.server
// span is recorded for the logical call.
func TestRetransmittedCallEmitsOneServerSpan(t *testing.T) {
	a, b, _ := newPair(t, netsim.Config{},
		Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 5 * time.Second})
	recB := trace.NewRecorder()
	b.SetTracer(recB)
	a.SetTracer(trace.NewRecorder())

	var served atomic.Int32
	b.Handle("slow", func(_ context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
		served.Add(1)
		// Long enough for several retransmissions to arrive and hit the
		// in-flight dedup path.
		time.Sleep(60 * time.Millisecond)
		return body, nil
	})

	ctx := trace.Inject(context.Background(), trace.NewRoot())
	if err := a.Call(ctx, b.ep.ID(), "slow", echoReq{Text: "once"}, nil); err != nil {
		t.Fatalf("Call: %v", err)
	}
	// A second wave of duplicates after the reply is cached must not
	// re-execute or re-record either; run another call to flush timers,
	// then count.
	if served.Load() != 1 {
		t.Fatalf("handler executed %d times, want 1", served.Load())
	}
	serverSpans := 0
	for _, s := range recB.Spans() {
		if s.Kind == "rpc.server" && s.Label == "slow" {
			serverSpans++
		}
	}
	if serverSpans != 1 {
		t.Fatalf("recorded %d rpc.server spans for one logical call, want 1", serverSpans)
	}
}
