package rpc

import (
	"bytes"
	"encoding/json"
	"testing"

	"mca/internal/ids"
)

// FuzzEnvelopeDecode throws arbitrary bytes at the wire decoder: it
// must never panic, and anything it accepts must re-encode to bytes it
// accepts again with identical fields (decode∘encode is idempotent).
// The seed corpus covers both codecs plus the adversarial edges;
// testdata/fuzz holds regression inputs.
func FuzzEnvelopeDecode(f *testing.F) {
	// Valid binary envelopes of each shape.
	for _, env := range []envelope{
		{Kind: kindRequest, CallID: 1, Origin: 2, Method: "echo", Body: json.RawMessage(`{"text":"hi"}`)},
		{Kind: kindReply, CallID: 9, Origin: 3, IsErr: true, ErrMsg: "boom"},
		{Kind: kindRequest, CallID: 1 << 60, Origin: 2, Method: "dist.prepare",
			Body: json.RawMessage(`{"txn":42}`), V: wireVersionTrace, Trace: 0xDEADBEEF, Span: 0xCAFE},
	} {
		f.Add(appendEnvelopeBinary(nil, &env))
	}
	// A JSON envelope, the legacy format.
	f.Add([]byte(`{"kind":1,"callId":7,"origin":3,"method":"echo","body":{"text":"x"}}`))
	// Adversarial edges: truncated header, huge uvarint length, wrong
	// version, empty input.
	f.Add([]byte{binMagic, binVersion, 1})
	f.Add([]byte{binMagic, binVersion, 1, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{binMagic, binVersion + 1})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var env envelope
		bin, ok := decodeEnvelope(data, &env)
		if !ok || !bin {
			return // rejected, or JSON: nothing further to hold invariant
		}
		reencoded := appendEnvelopeBinary(nil, &env)
		var again envelope
		if ok := decodeEnvelopeBinary(reencoded, &again); !ok {
			t.Fatalf("re-encode of accepted envelope rejected: %+v", env)
		}
		if env.Kind != again.Kind || env.CallID != again.CallID ||
			env.Origin != again.Origin || env.Method != again.Method ||
			env.IsErr != again.IsErr || env.ErrMsg != again.ErrMsg ||
			env.V != again.V || env.Trace != again.Trace || env.Span != again.Span ||
			!bytes.Equal(env.Body, again.Body) {
			t.Fatalf("decode/encode/decode drift:\n got %+v\nwant %+v", again, env)
		}
	})
}

// FuzzEnvelopeRoundTrip generates envelopes from fuzzed fields and
// checks decode(encode(env)) == env through the CRC frame.
func FuzzEnvelopeRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint64(1), uint64(2), "echo", []byte(`{"x":1}`), false, "", uint64(0), uint64(0))
	f.Add(uint8(2), uint64(1)<<60, uint64(7), "dist.prepare", []byte(nil), true, "boom", uint64(3), uint64(4))
	f.Fuzz(func(t *testing.T, k uint8, callID, origin uint64, method string, body []byte, isErr bool, errMsg string, traceID, spanID uint64) {
		if k != 1 && k != 2 {
			return // only valid kinds encode
		}
		env := envelope{
			Kind:   kind(k),
			CallID: callID,
			Origin: ids.NodeID(origin),
			Method: method,
			IsErr:  isErr,
			ErrMsg: errMsg,
		}
		if len(body) > 0 {
			env.Body = body
		}
		if traceID != 0 || spanID != 0 {
			env.V = wireVersionTrace
			env.Trace, env.Span = traceID, spanID
		}
		bp := getFrameBuf()
		defer putFrameBuf(bp)
		framed, err := encodeFrame(bp, &env, CodecBinary)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		payload, ok := verifyFrame(framed)
		if !ok {
			t.Fatal("frame failed own CRC")
		}
		var dec envelope
		bin, ok := decodeEnvelope(payload, &dec)
		if !bin || !ok {
			t.Fatalf("decode failed (bin=%v ok=%v) for %+v", bin, ok, env)
		}
		// IsErr false with a non-empty ErrMsg cannot round-trip (the
		// message only ships under the error flag); the encoder never
		// produces that combination from real envelopes.
		if !isErr {
			dec.ErrMsg, env.ErrMsg = "", ""
		}
		if env.Kind != dec.Kind || env.CallID != dec.CallID ||
			env.Origin != dec.Origin || env.Method != dec.Method ||
			env.IsErr != dec.IsErr || env.ErrMsg != dec.ErrMsg ||
			env.V != dec.V || env.Trace != dec.Trace || env.Span != dec.Span ||
			!bytes.Equal(env.Body, dec.Body) {
			t.Fatalf("round trip drift:\n got %+v\nwant %+v", dec, env)
		}
	})
}
