package rpc

import "mca/internal/metrics"

// RPC telemetry, exported under mca_rpc_*. A call is at least one
// marshal plus one transport send, so per-event striped-counter adds
// are noise. Outcome handles are resolved at init.
var (
	callsOK        *metrics.Counter
	callsTimeout   *metrics.Counter
	callsStopped   *metrics.Counter
	callsRemoteErr *metrics.Counter
	callsCancelled *metrics.Counter
	callsSendErr   *metrics.Counter
	callsDecodeErr *metrics.Counter

	retransmits *metrics.Counter
	bytesSent   *metrics.Counter
	bytesRecv   *metrics.Counter
	requests    *metrics.Counter
	duplicates  *metrics.Counter

	// Wire-codec and serve-pool telemetry (binary envelope data plane).
	wireFallbacks *metrics.Counter
	servesPooled  *metrics.Counter
	servesSpawned *metrics.Counter
)

func init() {
	r := metrics.Default()
	calls := r.CounterVec("mca_rpc_calls_total",
		"Outgoing calls, by final outcome.", "outcome")
	callsOK = calls.With("ok")
	callsTimeout = calls.With("timeout")
	callsStopped = calls.With("stopped")
	callsRemoteErr = calls.With("remote_error")
	callsCancelled = calls.With("cancelled")
	callsSendErr = calls.With("send_error")
	callsDecodeErr = calls.With("decode_error")
	retransmits = r.Counter("mca_rpc_retransmits_total",
		"Request retransmissions after the first send.")
	bytesSent = r.Counter("mca_rpc_bytes_sent_total",
		"Framed bytes handed to the transport (requests, retransmissions, replies).")
	bytesRecv = r.Counter("mca_rpc_bytes_received_total",
		"Framed bytes received from the transport, pre-verification.")
	requests = r.Counter("mca_rpc_requests_total",
		"Incoming requests that started a handler execution.")
	duplicates = r.Counter("mca_rpc_duplicates_total",
		"Duplicate requests suppressed (cached replay or still-executing drop).")
	wireFallbacks = r.Counter("mca_rpc_wire_json_fallbacks_total",
		"Calls downgraded from the binary to the JSON envelope after unanswered retransmissions.")
	serves := r.CounterVec("mca_rpc_serves_total",
		"Request dispatches, by execution path.", "path")
	servesPooled = serves.With("pool")
	servesSpawned = serves.With("spawn")
}
