// Package flightrec is the per-process flight recorder: a fixed-size,
// lock-free ring buffer of recent runtime events (RPC serves, commit
// rounds, lock blocks, deadlocks, crashes) that is always on and costs
// nothing to keep — recording is a handful of atomic stores, zero
// allocations, drop-oldest. When something goes wrong (a deadlock is
// detected, a node crashes, a test fails) the last few thousand events
// are dumped as JSON Lines, so the moments *before* the failure are
// explainable without re-running under heavy tracing.
//
// The package is a dependency-free leaf so every layer (lock, rpc,
// dist, node) can record into the process-global recorder without
// import cycles. Event fields are raw uint64s for the same reason;
// higher layers assign meaning per Kind.
//
// Concurrency: the ring is striped to spread writer contention, and
// each slot is guarded by a per-slot sequence counter (even = stable,
// odd = being written). All slot accesses are atomic, so recording
// races nothing and snapshots skip slots caught mid-write instead of
// observing torn events.
package flightrec

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"mca/internal/clock"
)

// clk stamps events recorded without an explicit When. Package-level
// (the default recorder is package-level too) and atomic so tests can
// swap in a clock.Fake while recorders are live. Boxed, since
// atomic.Value rejects stores of differing concrete types.
var clk atomic.Value // clockBox

type clockBox struct{ c clock.Clock }

func init() { clk.Store(clockBox{clock.Real()}) }

// SetClock substitutes the timestamp source for events recorded
// without an explicit When. Default clock.Real().
func SetClock(c clock.Clock) { clk.Store(clockBox{c}) }

// Kind classifies one flight-recorder event.
type Kind uint8

// Event kinds. The A and B fields are kind-specific; the convention for
// each kind is noted here.
const (
	// KindNone marks an empty slot; never recorded explicitly.
	KindNone Kind = iota
	// KindRPCServe is one server-side handler execution. A is the call
	// identifier, B is the payload length.
	KindRPCServe
	// KindRPCDuplicate is a suppressed duplicate request (retransmission
	// of a completed or in-flight call). A is the call identifier.
	KindRPCDuplicate
	// KindRPCRetransmit is a client-side retransmission. A is the call
	// identifier.
	KindRPCRetransmit
	// KindRound is one commit-protocol fan-out round outcome. A is the
	// transaction's action identifier, B packs participants<<32 | ok.
	KindRound
	// KindLockBlock is a lock request parking in a wait queue. A is the
	// owner action identifier, B the object identifier.
	KindLockBlock
	// KindDeadlock is a detected deadlock (cycle or provably permanent
	// block). A is the owner action identifier, B the object identifier.
	KindDeadlock
	// KindCrash is a node crash. Node identifies the crashed node.
	KindCrash
	// KindSpan is a completed trace span recorded by higher layers. A is
	// the span's action identifier when it has one.
	KindSpan
	// KindWALFlush is one write-ahead-log group-commit flush. A is the
	// number of records forced, B the flush duration in nanoseconds.
	KindWALFlush
)

// String renders the kind for dumps.
func (k Kind) String() string {
	switch k {
	case KindRPCServe:
		return "rpc.serve"
	case KindRPCDuplicate:
		return "rpc.duplicate"
	case KindRPCRetransmit:
		return "rpc.retransmit"
	case KindRound:
		return "round"
	case KindLockBlock:
		return "lock.block"
	case KindDeadlock:
		return "deadlock"
	case KindCrash:
		return "crash"
	case KindSpan:
		return "span"
	case KindWALFlush:
		return "wal.flush"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one recorded moment. All fields besides When and Kind are
// optional and kind-specific.
type Event struct {
	// When is the event time in Unix nanoseconds. Record stamps it when
	// zero.
	When int64 `json:"when"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Node is the acting node's identifier, when known.
	Node uint64 `json:"node,omitempty"`
	// Trace and Span are the distributed-trace identity active when the
	// event happened, when known.
	Trace uint64 `json:"trace,omitempty"`
	Span  uint64 `json:"span,omitempty"`
	// A and B carry kind-specific payloads (see the Kind constants).
	A uint64 `json:"a,omitempty"`
	B uint64 `json:"b,omitempty"`
}

// slot is one ring entry: a sequence counter (even = stable, odd =
// being written) and the event's fields, all accessed atomically.
type slot struct {
	seq atomic.Uint64
	f   [7]atomic.Uint64 // when, kind, node, trace, span, a, b
}

// stripe is one independent ring. Writers claim slots with a ticket
// counter; the ring drops the oldest entry on wrap.
type stripe struct {
	pos   atomic.Uint64
	slots []slot
	_     [40]byte // keep neighbouring stripes off one cache line
}

// Recorder is a striped ring buffer of recent events.
type Recorder struct {
	stripes []stripe
	mask    uint64 // per-stripe slot index mask
	smask   uint64 // stripe index mask
	tick    atomic.Uint64
}

// DefaultSlots is the per-stripe capacity of the process-global
// recorder.
const DefaultSlots = 1024

// New builds a recorder with the given per-stripe slot count (rounded
// up to a power of two; minimum 16). The stripe count scales with
// GOMAXPROCS, also a power of two.
func New(slotsPerStripe int) *Recorder {
	slots := ceilPow2(slotsPerStripe, 16)
	nstripes := ceilPow2(runtime.GOMAXPROCS(0), 1)
	if nstripes > 64 {
		nstripes = 64
	}
	r := &Recorder{
		stripes: make([]stripe, nstripes),
		mask:    uint64(slots - 1),
		smask:   uint64(nstripes - 1),
	}
	for i := range r.stripes {
		r.stripes[i].slots = make([]slot, slots)
	}
	return r
}

func ceilPow2(n, min int) int {
	if n < min {
		n = min
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Record appends the event, dropping the oldest entry of its stripe
// when full. It is safe for concurrent use, performs no allocation and
// never blocks: a slot caught mid-write by a concurrent recorder is
// claimed via its sequence counter.
func (r *Recorder) Record(ev Event) {
	if ev.When == 0 {
		ev.When = clk.Load().(clockBox).c.Now().UnixNano()
	}
	// Spread writers over stripes. There is no portable per-P hint, so
	// mix a cheap round-robin ticket with the event's identity; either
	// alone is enough to keep one hot stripe from serializing writers.
	s := &r.stripes[(r.tick.Add(1)^ev.Span^ev.A)&r.smask]
	sl := &s.slots[(s.pos.Add(1)-1)&r.mask]
	// Claim the slot: bump seq to odd. A reader seeing odd (or a seq
	// change) discards the slot; a concurrent writer that loses the
	// race simply layers its stores after ours — the slot ends up
	// holding one of the two events plus a final even seq, and the
	// seq-recheck on read rejects mixed views.
	seq := sl.seq.Add(1)
	sl.f[0].Store(uint64(ev.When))
	sl.f[1].Store(uint64(ev.Kind))
	sl.f[2].Store(ev.Node)
	sl.f[3].Store(ev.Trace)
	sl.f[4].Store(ev.Span)
	sl.f[5].Store(ev.A)
	sl.f[6].Store(ev.B)
	sl.seq.Store(seq + 1)
}

// Snapshot copies the stable ring contents, oldest first. Slots being
// written concurrently are skipped rather than returned torn.
func (r *Recorder) Snapshot() []Event {
	var out []Event
	for i := range r.stripes {
		s := &r.stripes[i]
		for j := range s.slots {
			sl := &s.slots[j]
			for attempt := 0; attempt < 2; attempt++ {
				seq := sl.seq.Load()
				if seq == 0 || seq&1 == 1 {
					break // never written, or mid-write
				}
				ev := Event{
					When:  int64(sl.f[0].Load()),
					Kind:  Kind(sl.f[1].Load()),
					Node:  sl.f[2].Load(),
					Trace: sl.f[3].Load(),
					Span:  sl.f[4].Load(),
					A:     sl.f[5].Load(),
					B:     sl.f[6].Load(),
				}
				if sl.seq.Load() != seq {
					continue // torn: a writer got in; retry once
				}
				if ev.Kind != KindNone {
					out = append(out, ev)
				}
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].When < out[j].When })
	return out
}

// global is the process-wide recorder, always on.
var global = New(DefaultSlots)

// Default returns the process-global recorder.
func Default() *Recorder { return global }

// Record appends the event to the process-global recorder.
func Record(ev Event) { global.Record(ev) }

// Snapshot returns the process-global recorder's stable contents,
// oldest first.
func Snapshot() []Event { return global.Snapshot() }

// WriteJSONL writes events as JSON Lines, one event object per line,
// with the kind rendered symbolically.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, ev := range events {
		fmt.Fprintf(bw, `{"when":%d,"kind":%q`, ev.When, ev.Kind.String())
		if ev.Node != 0 {
			fmt.Fprintf(bw, `,"node":%d`, ev.Node)
		}
		if ev.Trace != 0 {
			fmt.Fprintf(bw, `,"trace":%d`, ev.Trace)
		}
		if ev.Span != 0 {
			fmt.Fprintf(bw, `,"span":%d`, ev.Span)
		}
		if ev.A != 0 {
			fmt.Fprintf(bw, `,"a":%d`, ev.A)
		}
		if ev.B != 0 {
			fmt.Fprintf(bw, `,"b":%d`, ev.B)
		}
		if _, err := bw.WriteString("}\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Dump writes a header followed by the recorder's snapshot as JSON
// Lines.
func (r *Recorder) Dump(w io.Writer, reason string) error {
	events := r.Snapshot()
	if _, err := fmt.Fprintf(w, "=== flight recorder dump (reason: %s, %d events) ===\n", reason, len(events)); err != nil {
		return err
	}
	return WriteJSONL(w, events)
}

// --- automatic dumps ---

// autoTail bounds how many trailing events an automatic dump emits, so
// a dump triggered from a failure path stays readable.
const autoTail = 128

var (
	autoMu    sync.Mutex
	autoSink  io.Writer = os.Stderr
	autoFired           = make(map[string]bool)
)

// SetAutoDump redirects automatic dumps (deadlock, crash) to w and
// re-arms every reason; nil disables them. The default sink is stderr.
// It returns the previous sink so tests can restore it.
func SetAutoDump(w io.Writer) io.Writer {
	autoMu.Lock()
	defer autoMu.Unlock()
	prev := autoSink
	autoSink = w
	autoFired = make(map[string]bool)
	return prev
}

// AutoDump writes the tail of the process-global recorder to the
// auto-dump sink — at most once per reason per process (or per
// SetAutoDump), so failure storms in tests cannot flood the output.
func AutoDump(reason string) {
	autoMu.Lock()
	defer autoMu.Unlock()
	if autoSink == nil || autoFired[reason] {
		return
	}
	autoFired[reason] = true
	events := global.Snapshot()
	if len(events) > autoTail {
		events = events[len(events)-autoTail:]
	}
	fmt.Fprintf(autoSink, "=== flight recorder dump (reason: %s, last %d events) ===\n", reason, len(events))
	_ = WriteJSONL(autoSink, events)
}

// failer is the slice of testing.TB that DumpOnFailure needs; declared
// locally so importing this package does not drag the testing package
// (and its flags) into non-test binaries.
type failer interface {
	Failed() bool
	Cleanup(func())
}

// DumpOnFailure arranges for the process-global recorder to be dumped
// to stderr when the test fails: call it at the top of a test whose
// failure modes are timing-dependent, and the flight log of the fatal
// run comes out with it.
func DumpOnFailure(t failer) {
	t.Cleanup(func() {
		if t.Failed() {
			_ = global.Dump(os.Stderr, "test failure")
		}
	})
}
