package flightrec

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRecordAndSnapshot(t *testing.T) {
	r := New(64)
	r.Record(Event{Kind: KindRPCServe, Node: 1, A: 42})
	r.Record(Event{Kind: KindRound, Node: 1, Trace: 7, Span: 9, A: 3, B: 2<<32 | 2})
	r.Record(Event{Kind: KindDeadlock, Node: 2, A: 5, B: 6})

	events := r.Snapshot()
	if len(events) != 3 {
		t.Fatalf("Snapshot: %d events, want 3", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].When < events[i-1].When {
			t.Fatalf("snapshot not time-ordered: %v after %v", events[i].When, events[i-1].When)
		}
	}
	var round *Event
	for i := range events {
		if events[i].Kind == KindRound {
			round = &events[i]
		}
	}
	if round == nil || round.Trace != 7 || round.Span != 9 || round.B != 2<<32|2 {
		t.Fatalf("round event fields lost: %+v", round)
	}
}

func TestDropOldest(t *testing.T) {
	r := New(16) // 16 slots per stripe
	total := 16 * len(r.stripes) * 4
	for i := 0; i < total; i++ {
		r.Record(Event{Kind: KindRPCServe, A: uint64(i)})
	}
	events := r.Snapshot()
	capacity := 16 * len(r.stripes)
	if len(events) > capacity {
		t.Fatalf("Snapshot returned %d events, capacity %d", len(events), capacity)
	}
	if len(events) == 0 {
		t.Fatal("Snapshot empty after recording")
	}
	// The oldest events must be gone: everything retained is from the
	// newer half of the stream.
	for _, ev := range events {
		if ev.A < uint64(total/4) {
			t.Fatalf("event %d survived %d records into a %d-slot ring", ev.A, total, capacity)
		}
	}
}

func TestConcurrentRecordIsSafe(t *testing.T) {
	r := New(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				r.Record(Event{Kind: KindLockBlock, Node: uint64(w), A: uint64(i)})
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	for _, ev := range r.Snapshot() {
		if ev.Kind != KindLockBlock {
			t.Fatalf("torn event surfaced: %+v", ev)
		}
	}
}

func TestWriteJSONLIsValidJSONPerLine(t *testing.T) {
	r := New(16)
	r.Record(Event{Kind: KindCrash, Node: 3})
	r.Record(Event{Kind: KindRPCDuplicate, Node: 1, A: 99})
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, r.Snapshot()); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", line, err)
		}
		if _, ok := m["kind"].(string); !ok {
			t.Fatalf("line %q missing symbolic kind", line)
		}
	}
}

func TestAutoDumpOncePerReason(t *testing.T) {
	var buf bytes.Buffer
	prev := SetAutoDump(&buf)
	defer SetAutoDump(prev)

	Record(Event{Kind: KindDeadlock, A: 1, B: 2})
	AutoDump("deadlock")
	first := buf.Len()
	if first == 0 {
		t.Fatal("AutoDump wrote nothing")
	}
	if !strings.Contains(buf.String(), "reason: deadlock") {
		t.Fatalf("dump missing reason header:\n%s", buf.String())
	}
	AutoDump("deadlock")
	if buf.Len() != first {
		t.Fatal("second AutoDump for the same reason wrote again")
	}
	AutoDump("crash")
	if buf.Len() == first {
		t.Fatal("AutoDump for a new reason wrote nothing")
	}
}

func TestSetAutoDumpNilDisables(t *testing.T) {
	prev := SetAutoDump(nil)
	defer SetAutoDump(prev)
	AutoDump("deadlock") // must not panic or write anywhere
}

func TestDumpOnFailureRunsCleanup(t *testing.T) {
	// Passing tests must not dump; exercise the registration path.
	DumpOnFailure(t)
}

func BenchmarkRecord(b *testing.B) {
	r := New(DefaultSlots)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(Event{Kind: KindRPCServe, Node: 1, Trace: 7, Span: uint64(i), A: uint64(i)})
	}
}

func BenchmarkRecordParallel(b *testing.B) {
	r := New(DefaultSlots)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var i uint64
		for pb.Next() {
			i++
			r.Record(Event{Kind: KindLockBlock, Node: 2, A: i, B: i})
		}
	})
}
