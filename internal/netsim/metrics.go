package netsim

import "mca/internal/metrics"

// Simulated-LAN telemetry, exported under mca_netsim_*. These mirror
// the per-network Stats counters at the same accounting sites, summed
// across every Network in the process.
var (
	msgSent      *metrics.Counter
	msgDelivered *metrics.Counter
	msgLost      *metrics.Counter
	msgDuplied   *metrics.Counter
	msgCorrupted *metrics.Counter
	msgOverflow  *metrics.Counter
)

func init() {
	events := metrics.Default().CounterVec("mca_netsim_messages_total",
		"Simulated-network message events, by kind.", "event")
	msgSent = events.With("sent")
	msgDelivered = events.With("delivered")
	msgLost = events.With("lost")
	msgDuplied = events.With("duplicated")
	msgCorrupted = events.With("corrupted")
	msgOverflow = events.With("overflow")
}
