// Package netsim simulates the communication subsystem of paper §2: a
// local area network whose faults are lost, duplicated and delayed
// messages. Higher layers (internal/rpc) implement the "well known network
// protocol level techniques" — retransmission and duplicate suppression —
// on top.
//
// The simulation is deliberately adversarial but controllable: loss and
// duplication rates, delay bounds and pairwise partitions are configured
// per network, and a seeded random source keeps runs reproducible.
package netsim

import (
	"context"
	"errors"
	"sync"
	"time"

	"mca/internal/clock"
	"mca/internal/ids"
)

// Errors reported by the network layer.
var (
	// ErrClosed is returned after the network or endpoint is closed.
	ErrClosed = errors.New("netsim: closed")
	// ErrCrashed is returned by operations on a crashed endpoint
	// (fail-silence: a crashed node neither sends nor receives). It is
	// transient: a crashed node may be restarted.
	ErrCrashed error = &transientError{msg: "netsim: endpoint crashed"}
	// ErrUnknownNode is returned when sending to an unregistered node.
	// It is transient: the node may register later.
	ErrUnknownNode error = &transientError{msg: "netsim: unknown node"}
)

// transientError is a send error that may heal on retry. It satisfies
// the rpc layer's TransientError marker (declared there structurally,
// so no import is needed here): the RPC retransmission loop keeps
// retrying such failures instead of failing the call.
type transientError struct{ msg string }

func (e *transientError) Error() string   { return e.msg }
func (e *transientError) Transient() bool { return true }

// Message is one datagram.
type Message struct {
	From    ids.NodeID
	To      ids.NodeID
	Payload []byte
}

// Config tunes the simulated faults.
type Config struct {
	// LossRate is the probability in [0,1) that a message is dropped.
	LossRate float64
	// DupRate is the probability in [0,1) that a message is delivered
	// twice.
	DupRate float64
	// CorruptRate is the probability in [0,1) that a delivered
	// message's payload is corrupted (random byte flipped). Higher
	// layers detect corruption by failing to decode.
	CorruptRate float64
	// MinDelay and MaxDelay bound the per-message delivery delay.
	MinDelay time.Duration
	MaxDelay time.Duration
	// Seed makes runs reproducible; 0 selects a fixed default.
	Seed int64
	// QueueLen is each endpoint's inbox capacity. Messages arriving at
	// a full inbox are dropped (receive-buffer overflow, a real LAN
	// failure mode). Default 256.
	QueueLen int
	// Clock schedules delayed deliveries. Default clock.Real(); a
	// clock.Fake puts message delays under test control.
	Clock clock.Clock
}

// Network is a simulated LAN. Safe for concurrent use.
type Network struct {
	cfg Config

	mu         sync.Mutex
	rng        *clock.Rand // drawn under mu; clock.Rand is not concurrency-safe
	endpoints  map[ids.NodeID]*Endpoint
	partitions map[[2]ids.NodeID]struct{}
	oneWay     map[[2]ids.NodeID]struct{} // directed (src, dst) drops
	nodeDelay  map[ids.NodeID]delayRange  // extra delay on a node's links (SetNodeDelay)
	closed     bool

	wg sync.WaitGroup // in-flight delivery timers

	tap func(Message) // wire observer; see SetTap

	stats Stats
}

// Stats counts network-level events, for the experiment harness.
type Stats struct {
	Sent      int
	Delivered int
	Lost      int
	Duplied   int
	Corrupted int
	Overflow  int
}

// New builds a network with the given fault configuration.
func New(cfg Config) *Network {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 256
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 42
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}
	return &Network{
		cfg:        cfg,
		rng:        clock.NewRand(uint64(seed)),
		endpoints:  make(map[ids.NodeID]*Endpoint),
		partitions: make(map[[2]ids.NodeID]struct{}),
		oneWay:     make(map[[2]ids.NodeID]struct{}),
		nodeDelay:  make(map[ids.NodeID]delayRange),
	}
}

// delayRange is one node's extra link delay (SetNodeDelay).
type delayRange struct{ min, max time.Duration }

// SetNodeDelay adds an extra delivery delay to every message sent to
// or from the node — one slow peer on an otherwise healthy LAN, the
// fault-localization scenario of the attribution experiments. Each
// message draws uniformly from [min, max) (max <= min pins the delay
// at min); min and max both zero remove the override.
func (n *Network) SetNodeDelay(id ids.NodeID, min, max time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if min <= 0 && max <= 0 {
		delete(n.nodeDelay, id)
		return
	}
	n.nodeDelay[id] = delayRange{min: min, max: max}
}

// nodeDelayLocked draws the node's extra link delay. Caller holds n.mu.
func (n *Network) nodeDelayLocked(id ids.NodeID) time.Duration {
	r, ok := n.nodeDelay[id]
	if !ok {
		return 0
	}
	d := r.min
	if r.max > r.min {
		d += time.Duration(n.rng.Int63n(int64(r.max - r.min)))
	}
	return d
}

// Endpoint is one node's attachment to the network.
type Endpoint struct {
	id  ids.NodeID
	net *Network

	mu      sync.Mutex
	inbox   chan Message
	crashed bool
	closed  bool
}

// NewEndpoint attaches a new node to the network.
func (n *Network) NewEndpoint() (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	e := &Endpoint{
		id:    ids.NewNodeID(),
		net:   n,
		inbox: make(chan Message, n.cfg.QueueLen),
	}
	n.endpoints[e.id] = e
	return e, nil
}

// ID returns the endpoint's node identifier.
func (e *Endpoint) ID() ids.NodeID { return e.id }

// Send transmits payload to the named node, subject to the configured
// loss, duplication, delay and partitions. A nil error means the message
// was accepted for (unreliable) transmission, not that it will arrive.
func (e *Endpoint) Send(to ids.NodeID, payload []byte) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	if e.crashed {
		e.mu.Unlock()
		return ErrCrashed
	}
	e.mu.Unlock()
	return e.net.send(Message{From: e.id, To: to, Payload: payload})
}

func (n *Network) send(m Message) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	dst, ok := n.endpoints[m.To]
	if !ok {
		n.mu.Unlock()
		return ErrUnknownNode
	}
	n.stats.Sent++
	msgSent.Inc()

	if n.partitionedLocked(m.From, m.To) {
		n.stats.Lost++
		msgLost.Inc()
		n.mu.Unlock()
		return nil // silently dropped, like a real partition
	}

	copies := 1
	if n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
		n.stats.Lost++
		msgLost.Inc()
		copies = 0
	} else if n.cfg.DupRate > 0 && n.rng.Float64() < n.cfg.DupRate {
		n.stats.Duplied++
		msgDuplied.Inc()
		copies = 2
	}

	// Copy the payload once: the sender may reuse its buffer.
	payload := make([]byte, len(m.Payload))
	copy(payload, m.Payload)
	m.Payload = payload

	if n.tap != nil {
		n.tap(m)
	}

	if n.cfg.CorruptRate > 0 && len(payload) > 0 && n.rng.Float64() < n.cfg.CorruptRate {
		payload[n.rng.Intn(len(payload))] ^= 0xFF
		n.stats.Corrupted++
		msgCorrupted.Inc()
	}

	for i := 0; i < copies; i++ {
		delay := n.cfg.MinDelay
		if n.cfg.MaxDelay > n.cfg.MinDelay {
			delay += time.Duration(n.rng.Int63n(int64(n.cfg.MaxDelay - n.cfg.MinDelay)))
		}
		delay += n.nodeDelayLocked(m.From) + n.nodeDelayLocked(m.To)
		n.wg.Add(1)
		if delay <= 0 {
			go n.deliver(dst, m)
		} else {
			msg := m
			n.cfg.Clock.AfterFunc(delay, func() { n.deliver(dst, msg) })
		}
	}
	n.mu.Unlock()
	return nil
}

func (n *Network) deliver(dst *Endpoint, m Message) {
	defer n.wg.Done()
	dst.mu.Lock()
	crashedOrClosed := dst.crashed || dst.closed
	inbox := dst.inbox
	dst.mu.Unlock()
	if crashedOrClosed {
		n.bumpLost()
		return
	}
	select {
	case inbox <- m:
		n.mu.Lock()
		n.stats.Delivered++
		msgDelivered.Inc()
		n.mu.Unlock()
	default:
		n.mu.Lock()
		n.stats.Overflow++
		msgOverflow.Inc()
		n.mu.Unlock()
	}
}

func (n *Network) bumpLost() {
	n.mu.Lock()
	n.stats.Lost++
	msgLost.Inc()
	n.mu.Unlock()
}

// Recv blocks until a message arrives, the context ends, or the endpoint
// is crashed/closed.
func (e *Endpoint) Recv(ctx context.Context) (Message, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return Message{}, ErrClosed
	}
	if e.crashed {
		e.mu.Unlock()
		return Message{}, ErrCrashed
	}
	inbox := e.inbox
	e.mu.Unlock()

	select {
	case m, ok := <-inbox:
		if !ok {
			return Message{}, ErrClosed
		}
		return m, nil
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
}

// Crash makes the endpoint fail-silent: pending and future messages are
// dropped, Send and Recv fail, until Restart.
func (e *Endpoint) Crash() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed || e.closed {
		return
	}
	e.crashed = true
	// Drain the inbox: messages queued at a crashed node are lost
	// with its volatile memory.
	for {
		select {
		case <-e.inbox:
		default:
			return
		}
	}
}

// Restart brings a crashed endpoint back with an empty inbox.
func (e *Endpoint) Restart() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.crashed = false
}

// Crashed reports whether the endpoint is crashed.
func (e *Endpoint) Crashed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.crashed
}

// Close detaches the endpoint permanently.
func (e *Endpoint) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
}

func pairKey(a, b ids.NodeID) [2]ids.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]ids.NodeID{a, b}
}

// Partition drops all traffic between a and b until Heal.
func (n *Network) Partition(a, b ids.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitions[pairKey(a, b)] = struct{}{}
}

// PartitionOneWay drops traffic from src to dst only (an asymmetric
// link fault: dst's messages still reach src). Heal removes it too.
func (n *Network) PartitionOneWay(src, dst ids.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.oneWay[[2]ids.NodeID{src, dst}] = struct{}{}
}

// Heal removes any partition (symmetric or one-way) between a and b.
func (n *Network) Heal(a, b ids.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitions, pairKey(a, b))
	delete(n.oneWay, [2]ids.NodeID{a, b})
	delete(n.oneWay, [2]ids.NodeID{b, a})
}

func (n *Network) partitionedLocked(a, b ids.NodeID) bool {
	if _, ok := n.partitions[pairKey(a, b)]; ok {
		return true
	}
	_, ok := n.oneWay[[2]ids.NodeID{a, b}]
	return ok
}

// SetTap installs an observer invoked for every accepted message (after
// loss/partition accounting, with the message's own payload copy, which
// the tap may retain). Tests use it to assert on wire bytes — e.g. that
// two binary-capable peers actually exchange binary envelopes. The tap
// runs under the network's lock: it must be fast and must not call back
// into the network. Pass nil to remove.
func (n *Network) SetTap(tap func(Message)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tap = tap
}

// SetFaults replaces the loss and duplication rates at runtime, so tests
// can inject fault phases.
func (n *Network) SetFaults(lossRate, dupRate float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.LossRate = lossRate
	n.cfg.DupRate = dupRate
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Close shuts the network down, waiting for in-flight deliveries.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	endpoints := make([]*Endpoint, 0, len(n.endpoints))
	for _, e := range n.endpoints {
		endpoints = append(endpoints, e)
	}
	n.mu.Unlock()
	for _, e := range endpoints {
		e.Close()
	}
	n.wg.Wait()
}
