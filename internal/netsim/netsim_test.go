package netsim

import (
	"context"
	"errors"
	"testing"
	"time"
)

func recvOne(t *testing.T, e *Endpoint, timeout time.Duration) (Message, bool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	m, err := e.Recv(ctx)
	if errors.Is(err, context.DeadlineExceeded) {
		return Message{}, false
	}
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	return m, true
}

func TestReliableDelivery(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a, err := n.NewEndpoint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.NewEndpoint()
	if err != nil {
		t.Fatal(err)
	}

	if err := a.Send(b.ID(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	m, ok := recvOne(t, b, time.Second)
	if !ok {
		t.Fatal("message not delivered")
	}
	if string(m.Payload) != "hello" || m.From != a.ID() || m.To != b.ID() {
		t.Fatalf("got %+v", m)
	}
}

func TestPayloadCopied(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a, _ := n.NewEndpoint()
	b, _ := n.NewEndpoint()

	buf := []byte("abc")
	if err := a.Send(b.ID(), buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'z'
	m, ok := recvOne(t, b, time.Second)
	if !ok {
		t.Fatal("not delivered")
	}
	if string(m.Payload) != "abc" {
		t.Fatalf("payload aliased sender's buffer: %q", m.Payload)
	}
}

func TestSendToUnknownNode(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a, _ := n.NewEndpoint()
	if err := a.Send(99999, []byte("x")); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Send = %v, want ErrUnknownNode", err)
	}
}

func TestTotalLoss(t *testing.T) {
	n := New(Config{LossRate: 1.0})
	defer n.Close()
	a, _ := n.NewEndpoint()
	b, _ := n.NewEndpoint()

	for i := 0; i < 10; i++ {
		if err := a.Send(b.ID(), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := recvOne(t, b, 50*time.Millisecond); ok {
		t.Fatal("message delivered despite 100% loss")
	}
	st := n.Stats()
	if st.Lost != 10 || st.Delivered != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDuplication(t *testing.T) {
	n := New(Config{DupRate: 1.0})
	defer n.Close()
	a, _ := n.NewEndpoint()
	b, _ := n.NewEndpoint()

	if err := a.Send(b.ID(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOne(t, b, time.Second); !ok {
		t.Fatal("first copy missing")
	}
	if _, ok := recvOne(t, b, time.Second); !ok {
		t.Fatal("duplicate copy missing")
	}
}

func TestDelayBounds(t *testing.T) {
	n := New(Config{MinDelay: 20 * time.Millisecond, MaxDelay: 40 * time.Millisecond})
	defer n.Close()
	a, _ := n.NewEndpoint()
	b, _ := n.NewEndpoint()

	start := time.Now()
	if err := a.Send(b.ID(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOne(t, b, time.Second); !ok {
		t.Fatal("not delivered")
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~20ms", elapsed)
	}
}

func TestNodeDelay(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a, _ := n.NewEndpoint()
	b, _ := n.NewEndpoint()

	// Both directions across the slow node's links pay the delay.
	n.SetNodeDelay(b.ID(), 30*time.Millisecond, 30*time.Millisecond)
	start := time.Now()
	if err := a.Send(b.ID(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOne(t, b, time.Second); !ok {
		t.Fatal("not delivered to slow node")
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delivered to slow node after %v, want >= ~30ms", elapsed)
	}
	start = time.Now()
	if err := b.Send(a.ID(), []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOne(t, a, time.Second); !ok {
		t.Fatal("not delivered from slow node")
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delivered from slow node after %v, want >= ~30ms", elapsed)
	}

	// Zeroing removes the override; delivery still works.
	n.SetNodeDelay(b.ID(), 0, 0)
	if err := a.Send(b.ID(), []byte("z")); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOne(t, b, time.Second); !ok {
		t.Fatal("not delivered after clearing the delay")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a, _ := n.NewEndpoint()
	b, _ := n.NewEndpoint()

	n.Partition(a.ID(), b.ID())
	if err := a.Send(b.ID(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOne(t, b, 50*time.Millisecond); ok {
		t.Fatal("delivered across partition")
	}
	// Symmetric.
	if err := b.Send(a.ID(), []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOne(t, a, 50*time.Millisecond); ok {
		t.Fatal("delivered across partition (reverse)")
	}

	n.Heal(a.ID(), b.ID())
	if err := a.Send(b.ID(), []byte("z")); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOne(t, b, time.Second); !ok {
		t.Fatal("not delivered after heal")
	}
}

func TestCrashedEndpointFailSilent(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a, _ := n.NewEndpoint()
	b, _ := n.NewEndpoint()

	// Queue a message, then crash before receiving: it is lost.
	if err := a.Send(b.ID(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	b.Crash()

	if err := b.Send(a.ID(), []byte("y")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Send from crashed = %v, want ErrCrashed", err)
	}
	ctx := context.Background()
	if _, err := b.Recv(ctx); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Recv on crashed = %v, want ErrCrashed", err)
	}
	// Message sent while crashed is dropped.
	if err := a.Send(b.ID(), []byte("during")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)

	b.Restart()
	if _, ok := recvOne(t, b, 50*time.Millisecond); ok {
		t.Fatal("crashed node must lose queued and in-crash messages")
	}
	// New messages flow again.
	if err := a.Send(b.ID(), []byte("after")); err != nil {
		t.Fatal(err)
	}
	m, ok := recvOne(t, b, time.Second)
	if !ok || string(m.Payload) != "after" {
		t.Fatalf("after restart: %q, %v", m.Payload, ok)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	n := New(Config{QueueLen: 2})
	defer n.Close()
	a, _ := n.NewEndpoint()
	b, _ := n.NewEndpoint()

	for i := 0; i < 10; i++ {
		if err := a.Send(b.ID(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	st := n.Stats()
	if st.Overflow == 0 {
		t.Fatalf("expected overflow drops, stats = %+v", st)
	}
	if st.Delivered > 2 {
		t.Fatalf("delivered %d into a queue of 2", st.Delivered)
	}
}

func TestSetFaultsAtRuntime(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a, _ := n.NewEndpoint()
	b, _ := n.NewEndpoint()

	n.SetFaults(1.0, 0)
	if err := a.Send(b.ID(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOne(t, b, 50*time.Millisecond); ok {
		t.Fatal("delivered despite full loss")
	}
	n.SetFaults(0, 0)
	if err := a.Send(b.ID(), []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOne(t, b, time.Second); !ok {
		t.Fatal("not delivered after clearing faults")
	}
}

func TestCloseRejectsFurtherUse(t *testing.T) {
	n := New(Config{})
	a, _ := n.NewEndpoint()
	b, _ := n.NewEndpoint()
	n.Close()
	if err := a.Send(b.ID(), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after close = %v, want ErrClosed", err)
	}
	if _, err := n.NewEndpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("NewEndpoint after close = %v, want ErrClosed", err)
	}
}

func TestSeededRunsAreReproducible(t *testing.T) {
	run := func() Stats {
		n := New(Config{LossRate: 0.5, Seed: 7})
		defer n.Close()
		a, _ := n.NewEndpoint()
		b, _ := n.NewEndpoint()
		for i := 0; i < 100; i++ {
			_ = a.Send(b.ID(), []byte{byte(i)})
		}
		time.Sleep(20 * time.Millisecond)
		st := n.Stats()
		return st
	}
	s1, s2 := run(), run()
	if s1.Lost != s2.Lost {
		t.Fatalf("seeded runs differ: %+v vs %+v", s1, s2)
	}
	if s1.Lost == 0 || s1.Lost == 100 {
		t.Fatalf("loss rate 0.5 produced degenerate %d/100", s1.Lost)
	}
}

func TestPartitionOneWay(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a, _ := n.NewEndpoint()
	b, _ := n.NewEndpoint()

	n.PartitionOneWay(a.ID(), b.ID())
	// a -> b dropped.
	if err := a.Send(b.ID(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOne(t, b, 50*time.Millisecond); ok {
		t.Fatal("delivered across one-way partition")
	}
	// b -> a still flows.
	if err := b.Send(a.ID(), []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOne(t, a, time.Second); !ok {
		t.Fatal("reverse direction must still deliver")
	}

	n.Heal(a.ID(), b.ID())
	if err := a.Send(b.ID(), []byte("z")); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOne(t, b, time.Second); !ok {
		t.Fatal("not delivered after heal")
	}
}
