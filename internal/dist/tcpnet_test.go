package dist_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"mca/internal/dist"
	"mca/internal/node"
	"mca/internal/rpc"
	"mca/internal/tcpnet"
	"mca/internal/workload"
)

// tcpCluster hosts a coordinator and two participants on real loopback
// sockets via node.NewOn: the full 2PC stack — WAL, locks, recovery —
// unchanged, only the transport swapped.
func tcpCluster(t *testing.T, workers int) (*dist.Manager, [2]*node.Node, [][2]*bank) {
	t.Helper()
	nw := tcpnet.NewNetwork()
	rpcOpts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 2 * time.Second}

	newNode := func() *node.Node {
		ep, err := nw.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nd, err := node.NewOn(ep, node.WithRPCOptions(rpcOpts))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(nd.Stop)
		return nd
	}

	cn := newNode()
	coord := dist.NewManager(cn)

	var parts [2]*node.Node
	banks := make([][2]*bank, workers)
	for i := 0; i < 2; i++ {
		pn := newNode()
		mgr := dist.NewManager(pn)
		for w := 0; w < workers; w++ {
			b := newBank(100)
			pn.Host(b)
			mgr.RegisterResource(fmt.Sprintf("bank%d", w), b)
			banks[w][i] = b
		}
		parts[i] = pn
	}
	return coord, parts, banks
}

// TestCommitOverTCP runs concurrent two-phase commits over real TCP
// sockets with the binary codec and coalescing writer on the path: all
// transfers must commit and conserve every account pair, exactly as
// over the simulated LAN.
func TestCommitOverTCP(t *testing.T) {
	const (
		workers = 8
		txns    = 5
	)
	coord, parts, banks := tcpCluster(t, workers)
	ctx := context.Background()

	res := workload.Run(workers, txns, func(w, _ int) error {
		resource := fmt.Sprintf("bank%d", w)
		return coord.Run(ctx, func(txn *dist.Txn) error {
			if err := txn.Invoke(ctx, parts[0].ID(), resource, "add", addArg{Delta: -1}, nil); err != nil {
				return err
			}
			return txn.Invoke(ctx, parts[1].ID(), resource, "add", addArg{Delta: 1}, nil)
		})
	})
	if res.Errors != 0 {
		t.Fatalf("2PC over TCP: %d/%d transactions failed: %v", res.Errors, res.Ops, res.ErrKinds)
	}
	for w := 0; w < workers; w++ {
		a, b := banks[w][0].account().Peek(), banks[w][1].account().Peek()
		if a != 100-txns || b != 100+txns {
			t.Fatalf("worker %d balances = %d/%d, want %d/%d", w, a, b, 100-txns, 100+txns)
		}
	}
}

// TestCommitOverTCPSurvivesParticipantCrash: crash a participant mid
// workload, restart it, and the cluster must keep committing — the
// recovery protocol rides the TCP endpoint's Crash/Restart exactly as
// it rides netsim's.
func TestCommitOverTCPSurvivesParticipantCrash(t *testing.T) {
	coord, parts, banks := tcpCluster(t, 1)
	ctx := context.Background()

	transfer := func() error {
		return coord.Run(ctx, func(txn *dist.Txn) error {
			if err := txn.Invoke(ctx, parts[0].ID(), "bank0", "add", addArg{Delta: -1}, nil); err != nil {
				return err
			}
			return txn.Invoke(ctx, parts[1].ID(), "bank0", "add", addArg{Delta: 1}, nil)
		})
	}
	if err := transfer(); err != nil {
		t.Fatalf("transfer before crash: %v", err)
	}

	parts[1].Crash()
	// With a participant down the transfer cannot prepare; it must fail
	// cleanly (abort), not hang or corrupt balances.
	cctx, cancel := context.WithTimeout(ctx, 3*time.Second)
	err := coord.Run(cctx, func(txn *dist.Txn) error {
		if err := txn.Invoke(cctx, parts[0].ID(), "bank0", "add", addArg{Delta: -1}, nil); err != nil {
			return err
		}
		return txn.Invoke(cctx, parts[1].ID(), "bank0", "add", addArg{Delta: 1}, nil)
	})
	cancel()
	if err == nil {
		t.Fatal("transfer succeeded against a crashed participant")
	}

	parts[1].Restart()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := transfer(); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("transfer still failing after restart: %v", err)
		}
	}
	a, b := banks[0][0].account().Peek(), banks[0][1].account().Peek()
	if a+b != 200 {
		t.Fatalf("balances %d+%d do not conserve 200", a, b)
	}
}
