package dist_test

import (
	"context"
	"testing"
	"time"

	"mca/internal/dist"
	"mca/internal/ids"
	"mca/internal/netsim"
	"mca/internal/node"
	"mca/internal/rpc"
	"mca/internal/trace"
)

// fanoutCluster builds a coordinator and n bank participants on a
// fresh fault-free simulated LAN.
func fanoutCluster(t *testing.T, n int, opts rpc.Options) (*dist.Manager, []*node.Node) {
	t.Helper()
	nw := netsim.New(netsim.Config{})
	t.Cleanup(nw.Close)
	coordNode, err := node.New(nw, node.WithRPCOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coordNode.Stop)
	coord := dist.NewManager(coordNode)
	nodes := make([]*node.Node, n)
	for i := 0; i < n; i++ {
		nd, err := node.New(nw, node.WithRPCOptions(opts))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(nd.Stop)
		mgr := dist.NewManager(nd)
		b := newBank(100)
		nd.Host(b)
		mgr.RegisterResource("bank", b)
		nodes[i] = nd
	}
	return coord, nodes
}

// TestRoundObserverRecordsFanoutRounds threads commit-protocol rounds
// into a trace recorder and checks both fan-out modes: parallel (the
// default) and serial (ParallelFanout off), which must agree on
// protocol outcomes and differ only in the recorded Parallel flag.
func TestRoundObserverRecordsFanoutRounds(t *testing.T) {
	opts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 2 * time.Second}
	ctx := context.Background()

	for _, parallel := range []bool{true, false} {
		rec := trace.NewRecorder()
		coord, nodes := fanoutCluster(t, 2, opts)
		coord.ParallelFanout = parallel
		coord.OnRound = rec.ObserveRound

		err := coord.Run(ctx, func(txn *dist.Txn) error {
			for _, nd := range nodes {
				if err := txn.Invoke(ctx, nd.ID(), "bank", "add", addArg{Delta: 1}, nil); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("parallel=%v: Run = %v", parallel, err)
		}

		// A structure end is a fan-out round too.
		s, err := coord.BeginRemoteSerializing()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RunConstituent(ctx, func(txn *dist.Txn) error {
			return txn.Invoke(ctx, nodes[0].ID(), "bank", "add", addArg{Delta: 1}, nil)
		}); err != nil {
			t.Fatal(err)
		}
		if err := s.End(ctx); err != nil {
			t.Fatal(err)
		}

		sum := rec.RoundSummary()
		if sum[trace.RoundPrepare] < 2 || sum[trace.RoundCommit] < 2 || sum[trace.RoundStructure] < 1 {
			t.Fatalf("parallel=%v: round summary %v, want ≥2 prepare, ≥2 commit, ≥1 structure", parallel, sum)
		}
		for _, ev := range rec.Rounds() {
			if ev.Err != nil {
				t.Fatalf("parallel=%v: round %v of txn %v failed: %v", parallel, ev.Kind, ev.Txn, ev.Err)
			}
			if ev.Participants != ev.OK {
				t.Fatalf("parallel=%v: round %v: %d/%d participants ok", parallel, ev.Kind, ev.OK, ev.Participants)
			}
			if ev.Txn == ids.ActionID(0) {
				t.Fatalf("parallel=%v: round %v without txn id", parallel, ev.Kind)
			}
			// Rounds with a single participant never fan out; wider
			// rounds must match the configured mode.
			if ev.Participants > 1 && ev.Parallel != parallel {
				t.Fatalf("parallel=%v: round %v recorded Parallel=%v over %d participants", parallel, ev.Kind, ev.Parallel, ev.Participants)
			}
		}
	}
}

// TestAbortRoundObserved checks that an explicit Abort broadcasts one
// abort round over every participant.
func TestAbortRoundObserved(t *testing.T) {
	opts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 2 * time.Second}
	ctx := context.Background()
	rec := trace.NewRecorder()
	coord, nodes := fanoutCluster(t, 3, opts)
	coord.OnRound = rec.ObserveRound

	txn, err := coord.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range nodes {
		if err := txn.Invoke(ctx, nd.ID(), "bank", "add", addArg{Delta: 1}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := txn.Abort(ctx); err != nil {
		t.Fatal(err)
	}
	var abortRound *trace.RoundEvent
	for _, ev := range rec.Rounds() {
		if ev.Kind == trace.RoundAbort {
			ev := ev
			abortRound = &ev
		}
	}
	if abortRound == nil {
		t.Fatal("no abort round recorded")
	}
	if abortRound.Participants != 3 || abortRound.OK != 3 {
		t.Fatalf("abort round = %d/%d ok, want 3/3", abortRound.OK, abortRound.Participants)
	}
}
