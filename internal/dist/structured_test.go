package dist_test

import (
	"context"
	"errors"
	"testing"

	"mca/internal/dist"
	"mca/internal/netsim"
)

// TestRemoteSerializingHappyPath: two constituents across two nodes;
// the first constituent's effects are permanent at its own commit while
// its locks stay with the per-node containers; the second constituent
// reuses them; End releases everything.
func TestRemoteSerializingHappyPath(t *testing.T) {
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()

	s, err := c.coord.BeginRemoteSerializing()
	if err != nil {
		t.Fatal(err)
	}

	// Constituent B: credit both participants.
	err = s.RunConstituent(ctx, func(txn *dist.Txn) error {
		if err := txn.Invoke(ctx, c.nodes[1].ID(), "bank", "add", addArg{Delta: 10}, nil); err != nil {
			return err
		}
		return txn.Invoke(ctx, c.nodes[2].ID(), "bank", "add", addArg{Delta: 20}, nil)
	})
	if err != nil {
		t.Fatalf("constituent B: %v", err)
	}

	// B's effects are permanent at every node already...
	if got, ok := c.stableBalanceAt(t, 1); !ok || got != 110 {
		t.Fatalf("P1 stable = %d, %v; want 110", got, ok)
	}
	if got, ok := c.stableBalanceAt(t, 2); !ok || got != 120 {
		t.Fatalf("P2 stable = %d, %v; want 120", got, ok)
	}

	// ...but still protected: an unrelated transaction cannot touch
	// them (its participant action blocks behind the container's
	// retained locks until the RPC call times out).
	err = c.coord.Run(ctx, func(txn *dist.Txn) error {
		return txn.Invoke(ctx, c.nodes[1].ID(), "bank", "add", addArg{Delta: 1}, nil)
	})
	if err == nil {
		t.Fatal("outsider write during the structure must be blocked")
	}

	// Constituent C: touches the same remote objects again.
	err = s.RunConstituent(ctx, func(txn *dist.Txn) error {
		return txn.Invoke(ctx, c.nodes[1].ID(), "bank", "add", addArg{Delta: 5}, nil)
	})
	if err != nil {
		t.Fatalf("constituent C over retained locks: %v", err)
	}

	if err := s.End(ctx); err != nil {
		t.Fatalf("End: %v", err)
	}

	// Everything free now.
	if err := transfer(ctx, c, 1, 2, 1); err != nil {
		t.Fatalf("transfer after End: %v", err)
	}
	if got := c.balanceAt(t, 1); got != 114 {
		t.Fatalf("P1 = %d, want 114", got)
	}
	if got := c.balanceAt(t, 2); got != 121 {
		t.Fatalf("P2 = %d, want 121", got)
	}
}

// TestRemoteSerializingOutcomeIII: a committed constituent survives both
// a failed successor and the structure's cancellation.
func TestRemoteSerializingOutcomeIII(t *testing.T) {
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()

	s, err := c.coord.BeginRemoteSerializing()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunConstituent(ctx, func(txn *dist.Txn) error {
		return txn.Invoke(ctx, c.nodes[1].ID(), "bank", "add", addArg{Delta: 50}, nil)
	}); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("boom")
	err = s.RunConstituent(ctx, func(txn *dist.Txn) error {
		if err := txn.Invoke(ctx, c.nodes[2].ID(), "bank", "add", addArg{Delta: 50}, nil); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}

	if err := s.Cancel(ctx); err != nil {
		t.Fatalf("Cancel: %v", err)
	}

	if got := c.balanceAt(t, 1); got != 150 {
		t.Fatalf("P1 = %d, want 150 (B survives)", got)
	}
	if got := c.balanceAt(t, 2); got != 100 {
		t.Fatalf("P2 = %d, want 100 (C undone)", got)
	}

	// Locks released after Cancel.
	if err := transfer(ctx, c, 1, 2, 1); err != nil {
		t.Fatalf("transfer after Cancel: %v", err)
	}
}

// TestRemoteSerializingLocksSurviveBetweenConstituents reproduces the
// fig 3 protection across nodes: between constituents nothing else gets
// in, even at nodes only the first constituent touched.
func TestRemoteSerializingLocksSurviveBetweenConstituents(t *testing.T) {
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()

	s, err := c.coord.BeginRemoteSerializing()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunConstituent(ctx, func(txn *dist.Txn) error {
		return txn.Invoke(ctx, c.nodes[1].ID(), "bank", "add", addArg{Delta: 1}, nil)
	}); err != nil {
		t.Fatal(err)
	}

	// A reader from an unrelated transaction is blocked too (the
	// container holds an exclusive-read companion on the object).
	err = c.coord.Run(ctx, func(txn *dist.Txn) error {
		return txn.Invoke(ctx, c.nodes[1].ID(), "bank", "get", struct{}{}, &balanceResp{})
	})
	if err == nil {
		t.Fatal("outsider read during the structure must be blocked")
	}
	if err := s.End(ctx); err != nil {
		t.Fatal(err)
	}
	// Reads flow again.
	var out balanceResp
	err = c.coord.Run(ctx, func(txn *dist.Txn) error {
		return txn.Invoke(ctx, c.nodes[1].ID(), "bank", "get", struct{}{}, &out)
	})
	if err != nil || out.Balance != 101 {
		t.Fatalf("read after End = %d, %v", out.Balance, err)
	}
}

// TestRemoteSerializingParticipantCrash: a participant crash releases
// that node's retained locks (they are volatile) but never undoes the
// committed constituent effects.
func TestRemoteSerializingParticipantCrash(t *testing.T) {
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()

	s, err := c.coord.BeginRemoteSerializing()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunConstituent(ctx, func(txn *dist.Txn) error {
		return txn.Invoke(ctx, c.nodes[1].ID(), "bank", "add", addArg{Delta: 7}, nil)
	}); err != nil {
		t.Fatal(err)
	}

	c.nodes[1].Crash()
	c.nodes[1].Restart()

	// Effects survived the crash.
	if got := c.balanceAt(t, 1); got != 107 {
		t.Fatalf("P1 after crash = %d, want 107", got)
	}
	// The protection window is gone (locks are volatile): outsiders
	// may access again. This mirrors the local model, where a node
	// crash abandons its lock table.
	err = c.coord.Run(ctx, func(txn *dist.Txn) error {
		return txn.Invoke(ctx, c.nodes[1].ID(), "bank", "add", addArg{Delta: 1}, nil)
	})
	if err != nil {
		t.Fatalf("write after participant crash: %v", err)
	}
	// End still succeeds (the crashed node's container is simply
	// unknown there — idempotent).
	if err := s.End(ctx); err != nil {
		t.Fatalf("End after participant crash: %v", err)
	}
}

// TestRemoteSerializingCoordinatorLocalLeg: coordinator-local objects
// are retained by the coordinator-side container.
func TestRemoteSerializingCoordinatorLocalLeg(t *testing.T) {
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()

	s, err := c.coord.BeginRemoteSerializing()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunConstituent(ctx, func(txn *dist.Txn) error {
		// banks[0] lives on the coordinator node itself.
		return txn.Invoke(ctx, c.nodes[0].ID(), "bank", "add", addArg{Delta: 3}, nil)
	}); err != nil {
		t.Fatal(err)
	}
	// Held by the local container: a plain local transaction is
	// blocked (bounded by the coordinator runtime having no max wait,
	// we use TryLock introspection instead).
	held := c.coord.Node().Runtime().Locks().HeldObjects(s.Container().ID())
	if len(held) == 0 {
		t.Fatal("coordinator container retains no locks")
	}
	if err := s.End(ctx); err != nil {
		t.Fatal(err)
	}
	if got := c.balanceAt(t, 0); got != 103 {
		t.Fatalf("coordinator bank = %d", got)
	}
}

// TestRemoteSerializingEndTwice and constituents-after-end are refused.
func TestRemoteSerializingLifecycleErrors(t *testing.T) {
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()

	s, err := c.coord.BeginRemoteSerializing()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.End(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.End(ctx); !errors.Is(err, dist.ErrStructureEnded) {
		t.Fatalf("double End = %v, want ErrStructureEnded", err)
	}
	if err := s.Cancel(ctx); !errors.Is(err, dist.ErrStructureEnded) {
		t.Fatalf("Cancel after End = %v, want ErrStructureEnded", err)
	}
	if _, err := s.BeginConstituent(); !errors.Is(err, dist.ErrStructureEnded) {
		t.Fatalf("BeginConstituent after End = %v, want ErrStructureEnded", err)
	}
}

// TestRemoteSerializingDistributedMakePattern drives the fig 8 shape
// over the cluster: two "object files" on different nodes made
// concurrently as constituents, then a final link constituent reading
// both — all under one distributed serializing action.
func TestRemoteSerializingDistributedMakePattern(t *testing.T) {
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()

	s, err := c.coord.BeginRemoteSerializing()
	if err != nil {
		t.Fatal(err)
	}

	// "Compile" constituents run concurrently on nodes 1 and 2.
	type result struct{ err error }
	results := make(chan result, 2)
	for i := 1; i <= 2; i++ {
		go func() {
			results <- result{err: s.RunConstituent(ctx, func(txn *dist.Txn) error {
				return txn.Invoke(ctx, c.nodes[i].ID(), "bank", "add", addArg{Delta: i * 10}, nil)
			})}
		}()
	}
	for range 2 {
		if r := <-results; r.err != nil {
			t.Fatalf("compile constituent: %v", r.err)
		}
	}

	// "Link" constituent reads both compiled artifacts.
	var b1, b2 balanceResp
	err = s.RunConstituent(ctx, func(txn *dist.Txn) error {
		if err := txn.Invoke(ctx, c.nodes[1].ID(), "bank", "get", struct{}{}, &b1); err != nil {
			return err
		}
		return txn.Invoke(ctx, c.nodes[2].ID(), "bank", "get", struct{}{}, &b2)
	})
	if err != nil {
		t.Fatalf("link constituent: %v", err)
	}
	if b1.Balance != 110 || b2.Balance != 120 {
		t.Fatalf("link saw %d, %d", b1.Balance, b2.Balance)
	}
	if err := s.End(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestPlainTxnsUnaffectedByStructures: ordinary transactions have no
// structure info and behave exactly as before.
func TestPlainTxnsUnaffectedByStructures(t *testing.T) {
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()
	if err := transfer(ctx, c, 1, 2, 5); err != nil {
		t.Fatal(err)
	}
	if got := c.balanceAt(t, 1); got != 95 {
		t.Fatalf("P1 = %d", got)
	}
}
