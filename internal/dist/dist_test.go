package dist_test

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"mca/internal/action"
	"mca/internal/dist"
	"mca/internal/ids"
	"mca/internal/netsim"
	"mca/internal/node"
	"mca/internal/object"
	"mca/internal/rpc"
	"mca/internal/store"
)

// bank is a test service hosting one integer account per node, persisted
// in the node's stable store and re-activated after crashes.
type bank struct {
	mu      sync.Mutex
	nd      *node.Node
	acctID  ids.ObjectID
	initial int
	acct    *object.Managed[int]
}

func newBank(initial int) *bank {
	return &bank{acctID: ids.NewObjectID(), initial: initial}
}

func (b *bank) Register(n *node.Node, _ *rpc.Peer) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nd = n
	b.activateLocked()
}

func (b *bank) Recover(context.Context, *node.Node) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.activateLocked()
}

func (b *bank) activateLocked() {
	if m, err := object.Load[int](b.acctID, b.nd.Stable()); err == nil {
		b.acct = m
		return
	}
	b.acct = object.New(b.initial, object.WithStore(b.nd.Stable()), object.WithID(b.acctID))
}

func (b *bank) account() *object.Managed[int] {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.acct
}

type addArg struct {
	Delta int `json:"delta"`
}

type balanceResp struct {
	Balance int `json:"balance"`
}

func (b *bank) Invoke(a *action.Action, op string, arg []byte) ([]byte, error) {
	switch op {
	case "add":
		var in addArg
		if err := unmarshal(arg, &in); err != nil {
			return nil, err
		}
		err := b.account().Write(a, func(v *int) error {
			*v += in.Delta
			return nil
		})
		if err != nil {
			return nil, err
		}
		return []byte("{}"), nil
	case "get":
		var out balanceResp
		err := b.account().Read(a, func(v int) error {
			out.Balance = v
			return nil
		})
		if err != nil {
			return nil, err
		}
		return marshal(out)
	default:
		return nil, errors.New("bank: unknown op " + op)
	}
}

func unmarshal(data []byte, v any) error { return json.Unmarshal(data, v) }
func marshal(v any) ([]byte, error)      { return json.Marshal(v) }

// cluster is the common 3-node fixture: one coordinator, two
// participants, each with a bank account.
type cluster struct {
	net   *netsim.Network
	coord *dist.Manager
	parts [2]*dist.Manager
	banks [3]*bank // banks[0] at coordinator
	nodes [3]*node.Node
}

func newCluster(t *testing.T, cfg netsim.Config) *cluster {
	t.Helper()
	nw := netsim.New(cfg)
	t.Cleanup(nw.Close)

	rpcOpts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 300 * time.Millisecond}
	c := &cluster{net: nw}
	for i := 0; i < 3; i++ {
		nd, err := node.New(nw, node.WithRPCOptions(rpcOpts))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(nd.Stop)
		c.nodes[i] = nd
		mgr := dist.NewManager(nd)
		c.banks[i] = newBank(100)
		nd.Host(c.banks[i])
		mgr.RegisterResource("bank", c.banks[i])
		if i == 0 {
			c.coord = mgr
		} else {
			c.parts[i-1] = mgr
		}
	}
	return c
}

func (c *cluster) balanceAt(t *testing.T, i int) int {
	t.Helper()
	return c.banks[i].account().Peek()
}

func (c *cluster) stableBalanceAt(t *testing.T, i int) (int, bool) {
	t.Helper()
	m, err := object.Load[int](c.banks[i].acctID, c.nodes[i].Stable())
	if errors.Is(err, store.ErrNotFound) {
		return 0, false
	}
	if err != nil {
		t.Fatal(err)
	}
	return m.Peek(), true
}

func transfer(ctx context.Context, c *cluster, fromNode, toNode int, amount int) error {
	return c.coord.Run(ctx, func(txn *dist.Txn) error {
		if err := txn.Invoke(ctx, c.nodes[fromNode].ID(), "bank", "add", addArg{Delta: -amount}, nil); err != nil {
			return err
		}
		return txn.Invoke(ctx, c.nodes[toNode].ID(), "bank", "add", addArg{Delta: amount}, nil)
	})
}

func TestDistributedCommitHappyPath(t *testing.T) {
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()

	if err := transfer(ctx, c, 1, 2, 30); err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if got := c.balanceAt(t, 1); got != 70 {
		t.Fatalf("P1 balance = %d, want 70", got)
	}
	if got := c.balanceAt(t, 2); got != 130 {
		t.Fatalf("P2 balance = %d, want 130", got)
	}
	// Permanence: stable states updated at both participants.
	if got, ok := c.stableBalanceAt(t, 1); !ok || got != 70 {
		t.Fatalf("P1 stable = %d, %v", got, ok)
	}
	if got, ok := c.stableBalanceAt(t, 2); !ok || got != 130 {
		t.Fatalf("P2 stable = %d, %v", got, ok)
	}
}

func TestDistributedCommitIncludesCoordinatorObjects(t *testing.T) {
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()

	err := c.coord.Run(ctx, func(txn *dist.Txn) error {
		// Local leg at the coordinator plus a remote leg.
		if err := txn.Invoke(ctx, c.nodes[0].ID(), "bank", "add", addArg{Delta: -5}, nil); err != nil {
			return err
		}
		return txn.Invoke(ctx, c.nodes[1].ID(), "bank", "add", addArg{Delta: 5}, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.balanceAt(t, 0); got != 95 {
		t.Fatalf("coordinator balance = %d", got)
	}
	if got := c.balanceAt(t, 1); got != 105 {
		t.Fatalf("P1 balance = %d", got)
	}
}

func TestDistributedAbortUndoesEverywhere(t *testing.T) {
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()

	boom := errors.New("boom")
	err := c.coord.Run(ctx, func(txn *dist.Txn) error {
		if err := txn.Invoke(ctx, c.nodes[1].ID(), "bank", "add", addArg{Delta: -30}, nil); err != nil {
			return err
		}
		if err := txn.Invoke(ctx, c.nodes[2].ID(), "bank", "add", addArg{Delta: 30}, nil); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run = %v", err)
	}
	if got := c.balanceAt(t, 1); got != 100 {
		t.Fatalf("P1 balance = %d, want 100", got)
	}
	if got := c.balanceAt(t, 2); got != 100 {
		t.Fatalf("P2 balance = %d, want 100", got)
	}
}

func TestRemoteReadBack(t *testing.T) {
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()

	var got balanceResp
	err := c.coord.Run(ctx, func(txn *dist.Txn) error {
		return txn.Invoke(ctx, c.nodes[1].ID(), "bank", "get", struct{}{}, &got)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Balance != 100 {
		t.Fatalf("balance = %d", got.Balance)
	}
}

func TestParticipantCrashBeforePrepareAborts(t *testing.T) {
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()

	txn, err := c.coord.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Invoke(ctx, c.nodes[1].ID(), "bank", "add", addArg{Delta: -30}, nil); err != nil {
		t.Fatal(err)
	}
	if err := txn.Invoke(ctx, c.nodes[2].ID(), "bank", "add", addArg{Delta: 30}, nil); err != nil {
		t.Fatal(err)
	}
	// P2 crashes before the coordinator commits.
	c.nodes[2].Crash()
	err = txn.Commit(ctx)
	if !errors.Is(err, dist.ErrAborted) {
		t.Fatalf("Commit = %v, want ErrAborted", err)
	}
	if got := c.balanceAt(t, 1); got != 100 {
		t.Fatalf("P1 balance = %d, want 100 (aborted)", got)
	}
	c.nodes[2].Restart()
	if got := c.balanceAt(t, 2); got != 100 {
		t.Fatalf("P2 balance = %d, want 100", got)
	}
}

func TestParticipantCrashAfterPrepareRecoversCommit(t *testing.T) {
	// The in-doubt participant case: P2 prepared, then missed the
	// decision; recovery asks the coordinator and applies the logged
	// write set.
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()

	c.coord.TestHooks.AfterPrepare = func() {
		// Cut P2 off between the vote and the completion phase.
		c.net.Partition(c.nodes[0].ID(), c.nodes[2].ID())
	}
	err := transfer(ctx, c, 1, 2, 25)
	if err != nil {
		t.Fatalf("Commit should succeed once the decision is durable: %v", err)
	}
	// P1 applied; P2 has not.
	if got := c.balanceAt(t, 1); got != 75 {
		t.Fatalf("P1 = %d", got)
	}
	if got, _ := c.stableBalanceAt(t, 2); got == 125 {
		t.Fatal("P2 must not have applied yet")
	}

	// P2 crashes (losing its in-memory action), network heals, P2
	// recovers: it must learn the commit decision and apply.
	c.nodes[2].Crash()
	c.net.Heal(c.nodes[0].ID(), c.nodes[2].ID())
	c.nodes[2].Restart()

	if got, ok := c.stableBalanceAt(t, 2); !ok || got != 125 {
		t.Fatalf("P2 stable after recovery = %d, %v; want 125", got, ok)
	}
	if got := c.balanceAt(t, 2); got != 125 {
		t.Fatalf("P2 reactivated balance = %d, want 125", got)
	}
}

func TestParticipantPreparedCoordinatorNeverDecidedPresumedAbort(t *testing.T) {
	// P2 prepared but the coordinator crashed before forcing the
	// decision: on recovery P2 must presume abort.
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()

	crashed := make(chan struct{})
	c.coord.TestHooks.AfterPrepare = func() {
		c.nodes[0].Crash() // coordinator dies before the decision record
		close(crashed)
	}
	txn, err := c.coord.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Invoke(ctx, c.nodes[2].ID(), "bank", "add", addArg{Delta: 40}, nil); err != nil {
		t.Fatal(err)
	}
	_ = txn.Commit(ctx) // outcome irrelevant: coordinator is dead
	<-crashed

	// P2 crashes and recovers; coordinator restarts with no decision
	// record for the action.
	c.nodes[2].Crash()
	c.nodes[0].Restart()
	c.nodes[2].Restart()

	if got := c.balanceAt(t, 2); got != 100 {
		t.Fatalf("P2 balance = %d, want 100 (presumed abort)", got)
	}
	pendingLog, err := c.nodes[2].Stable().Intentions().Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(pendingLog) != 0 {
		t.Fatalf("P2 still has %d pending intentions", len(pendingLog))
	}
}

func TestCoordinatorCrashAfterDecisionRedrivesCompletion(t *testing.T) {
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()

	c.coord.TestHooks.AfterDecision = func() {
		// Both participants unreachable for the completion phase.
		c.net.Partition(c.nodes[0].ID(), c.nodes[1].ID())
		c.net.Partition(c.nodes[0].ID(), c.nodes[2].ID())
	}
	if err := transfer(ctx, c, 1, 2, 10); err != nil {
		t.Fatalf("Commit = %v (decision was durable)", err)
	}

	// Coordinator crashes; on restart it must re-drive the commit.
	c.nodes[0].Crash()
	c.net.Heal(c.nodes[0].ID(), c.nodes[1].ID())
	c.net.Heal(c.nodes[0].ID(), c.nodes[2].ID())
	c.nodes[0].Restart()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if got1 := c.balanceAt(t, 1); got1 == 90 {
			if got2 := c.balanceAt(t, 2); got2 == 110 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("completion not re-driven: P1=%d P2=%d",
				c.balanceAt(t, 1), c.balanceAt(t, 2))
		}
		// Recovery may have raced the heal; nudge it.
		if _, err := c.coord.RecoverPending(ctx); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	pendingLog, err := c.nodes[0].Stable().Intentions().Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(pendingLog) != 0 {
		t.Fatalf("coordinator still has %d pending records", len(pendingLog))
	}
}

func TestCommitUnderMessageLoss(t *testing.T) {
	c := newCluster(t, netsim.Config{LossRate: 0.3, Seed: 9})
	ctx := context.Background()

	for i := 0; i < 5; i++ {
		if err := transfer(ctx, c, 1, 2, 4); err != nil {
			t.Fatalf("transfer %d under loss: %v", i, err)
		}
	}
	if got := c.balanceAt(t, 1); got != 80 {
		t.Fatalf("P1 = %d, want 80", got)
	}
	if got := c.balanceAt(t, 2); got != 120 {
		t.Fatalf("P2 = %d, want 120", got)
	}
}

func TestTxnAfterCommitRejected(t *testing.T) {
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()
	txn, err := c.coord.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := txn.Invoke(ctx, c.nodes[1].ID(), "bank", "get", struct{}{}, nil); !errors.Is(err, dist.ErrDone) {
		t.Fatalf("Invoke after commit = %v, want ErrDone", err)
	}
	if err := txn.Commit(ctx); !errors.Is(err, dist.ErrDone) {
		t.Fatalf("double Commit = %v, want ErrDone", err)
	}
	if err := txn.Abort(ctx); err != nil {
		t.Fatalf("Abort after commit = %v, want nil no-op", err)
	}
}

func TestUnknownResource(t *testing.T) {
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()
	err := c.coord.Run(ctx, func(txn *dist.Txn) error {
		return txn.Invoke(ctx, c.nodes[1].ID(), "nosuch", "op", struct{}{}, nil)
	})
	var remote *rpc.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("Invoke = %v, want RemoteError", err)
	}
}

func TestConcurrentDistributedTransfersConserveTotal(t *testing.T) {
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()

	const n = 10
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		from := 1 + i%2
		to := 1 + (i+1)%2
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Failures (deadlock aborts) are fine; atomicity must
			// hold regardless.
			_ = transfer(ctx, c, from, to, 3)
		}()
	}
	wg.Wait()
	// Aborts of failed contacts (timed-out invokes that executed
	// anyway) are delivered asynchronously; poll until the ghosts are
	// cleaned up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		total := c.balanceAt(t, 1) + c.balanceAt(t, 2)
		if total == 200 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("total = %d, want 200", total)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
