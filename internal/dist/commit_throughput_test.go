package dist_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"mca/internal/dist"
	"mca/internal/netsim"
	"mca/internal/node"
	"mca/internal/rpc"
	"mca/internal/workload"
)

// throughputCluster builds a coordinator plus two participants, each
// participant hosting one bank per worker so concurrent transactions
// touch disjoint objects (throughput is then bounded by commit forces,
// not lock contention).
func throughputCluster(t *testing.T, workers int, forceDelay time.Duration) (*dist.Manager, [2]*node.Node, [][2]*bank) {
	t.Helper()
	nw := netsim.New(netsim.Config{})
	t.Cleanup(nw.Close)
	rpcOpts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 2 * time.Second}

	cn, err := node.New(nw, node.WithRPCOptions(rpcOpts))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cn.Stop)
	coord := dist.NewManager(cn)
	cn.Stable().WAL().SetForceDelay(forceDelay)

	var parts [2]*node.Node
	banks := make([][2]*bank, workers)
	for i := 0; i < 2; i++ {
		pn, err := node.New(nw, node.WithRPCOptions(rpcOpts))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(pn.Stop)
		pn.Stable().WAL().SetForceDelay(forceDelay)
		mgr := dist.NewManager(pn)
		for w := 0; w < workers; w++ {
			b := newBank(100)
			pn.Host(b)
			mgr.RegisterResource(fmt.Sprintf("bank%d", w), b)
			banks[w][i] = b
		}
		parts[i] = pn
	}
	return coord, parts, banks
}

// TestCommitThroughputSmoke is the short-mode commit-path smoke test:
// concurrent disjoint transfers over a store with a simulated per-force
// latency must all commit and conserve every account pair. It rides in
// CI under -race, so it keeps the volume small; the full measurement
// lives in experiment E23.
func TestCommitThroughputSmoke(t *testing.T) {
	const (
		workers = 8
		txns    = 5
	)
	coord, parts, banks := throughputCluster(t, workers, 300*time.Microsecond)
	ctx := context.Background()

	res := workload.Run(workers, txns, func(w, _ int) error {
		resource := fmt.Sprintf("bank%d", w)
		return coord.Run(ctx, func(txn *dist.Txn) error {
			if err := txn.Invoke(ctx, parts[0].ID(), resource, "add", addArg{Delta: -1}, nil); err != nil {
				return err
			}
			return txn.Invoke(ctx, parts[1].ID(), resource, "add", addArg{Delta: 1}, nil)
		})
	})
	if res.Errors != 0 {
		t.Fatalf("commit smoke: %d/%d transactions failed: %v", res.Errors, res.Ops, res.ErrKinds)
	}
	for w := 0; w < workers; w++ {
		a, b := banks[w][0].account().Peek(), banks[w][1].account().Peek()
		if a != 100-txns || b != 100+txns {
			t.Fatalf("worker %d balances = %d/%d, want %d/%d", w, a, b, 100-txns, 100+txns)
		}
	}
}

// TestConcurrentCommitsShareForces asserts the point of the WAL: many
// transactions in flight on a node must share group-commit forces
// instead of paying one force per log record.
func TestConcurrentCommitsShareForces(t *testing.T) {
	if testing.Short() {
		t.Skip("force-sharing measurement skipped in -short mode")
	}
	const (
		workers = 8
		txns    = 10
	)
	coord, parts, _ := throughputCluster(t, workers, time.Millisecond)
	ctx := context.Background()

	res := workload.Run(workers, txns, func(w, _ int) error {
		resource := fmt.Sprintf("bank%d", w)
		return coord.Run(ctx, func(txn *dist.Txn) error {
			if err := txn.Invoke(ctx, parts[0].ID(), resource, "add", addArg{Delta: -1}, nil); err != nil {
				return err
			}
			return txn.Invoke(ctx, parts[1].ID(), resource, "add", addArg{Delta: 1}, nil)
		})
	})
	if res.Errors != 0 {
		t.Fatalf("%d/%d transactions failed: %v", res.Errors, res.Ops, res.ErrKinds)
	}

	// Each committed transaction logs a prepare and a forget at every
	// participant: 160 records against a 1ms force. With 8 workers in
	// flight, group commit must do far fewer forces than records — the
	// pre-WAL path paid one force each.
	flushes, records := parts[0].Stable().WAL().Stats()
	if records < workers*txns {
		t.Fatalf("participant logged %d records, want >= %d", records, workers*txns)
	}
	if flushes >= records {
		t.Fatalf("flushes = %d for %d records: commits never shared a force", flushes, records)
	}
	t.Logf("participant WAL: %d records in %d flushes (%.1f records/force)",
		records, flushes, float64(records)/float64(flushes))
}

// TestReadOnlyParticipantSkipsLog asserts the presumed-abort read-only
// optimisation: a participant that only read votes yes without forcing
// anything, commits (releasing its locks) at prepare, and is excluded
// from phase 2.
func TestReadOnlyParticipantSkipsLog(t *testing.T) {
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()

	_, before := c.nodes[1].Stable().WAL().Stats()
	var bal balanceResp
	err := c.coord.Run(ctx, func(txn *dist.Txn) error {
		if err := txn.Invoke(ctx, c.nodes[1].ID(), "bank", "get", struct{}{}, &bal); err != nil {
			return err
		}
		return txn.Invoke(ctx, c.nodes[2].ID(), "bank", "add", addArg{Delta: 1}, nil)
	})
	if err != nil {
		t.Fatalf("commit with read-only participant: %v", err)
	}
	if bal.Balance != 100 {
		t.Fatalf("read balance = %d, want 100", bal.Balance)
	}
	if got := c.balanceAt(t, 2); got != 101 {
		t.Fatalf("writer balance = %d, want 101", got)
	}

	// The read-only participant never forced a log record — no prepare
	// record, and nothing for phase 2 or an abort round to forget.
	_, after := c.nodes[1].Stable().WAL().Stats()
	if after != before {
		t.Fatalf("read-only participant logged %d records, want 0", after-before)
	}

	// Its locks were released at prepare: a second transaction writing
	// the same account must get through.
	ctx2, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if err := transfer(ctx2, c, 1, 2, 5); err != nil {
		t.Fatalf("write after read-only commit: %v (lock leaked?)", err)
	}
}

// TestAllReadOnlyCommitSkipsDecision: when every participant voted
// read-only there is nothing to redo anywhere, so the coordinator skips
// the decision force and phase 2 entirely.
func TestAllReadOnlyCommitSkipsDecision(t *testing.T) {
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()

	_, before := c.nodes[0].Stable().WAL().Stats()
	err := c.coord.Run(ctx, func(txn *dist.Txn) error {
		for _, i := range []int{1, 2} {
			var bal balanceResp
			if err := txn.Invoke(ctx, c.nodes[i].ID(), "bank", "get", struct{}{}, &bal); err != nil {
				return err
			}
			if bal.Balance != 100 {
				return fmt.Errorf("balance at %d = %d, want 100", i, bal.Balance)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("all-read-only commit: %v", err)
	}
	_, after := c.nodes[0].Stable().WAL().Stats()
	if after != before {
		t.Fatalf("coordinator forced %d records for an all-read-only commit, want 0", after-before)
	}
	for _, nd := range c.nodes {
		pending, err := nd.Stable().Intentions().Pending()
		if err != nil {
			t.Fatal(err)
		}
		if len(pending) != 0 {
			t.Fatalf("node %v holds %d records after an all-read-only commit", nd.ID(), len(pending))
		}
	}
}
