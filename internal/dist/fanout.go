// Coordinator fan-out rounds: every remote round of the commit
// protocol (prepare, phase-2 commit, abort, recovery re-drive,
// structure end) is one broadcast to a set of participants. With
// ParallelFanout on (the default) the round's RPCs are issued
// concurrently by a bounded worker pool, so a round costs one
// round-trip — or, with crashed participants, one call timeout —
// instead of the sum over participants. Phase 1 additionally
// short-circuits: the first NO vote or error cancels the shared round
// context, stopping in-flight prepares from retransmitting.
package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"mca/internal/flightrec"
	"mca/internal/ids"
	"mca/internal/phase"
	"mca/internal/trace"
)

// defaultMaxFanout bounds a round's concurrent RPCs when the Manager
// does not set MaxFanout. One worker per participant up to this limit
// keeps a wide commit from flooding the transport.
const defaultMaxFanout = 16

// errVotedNo distinguishes a deliberate NO vote from a transport
// failure inside a prepare round.
var errVotedNo = errors.New("dist: participant voted no")

// roundCall issues the round's RPC to one participant.
type roundCall func(ctx context.Context, target ids.NodeID) error

// roundResult is one participant's outcome in a fan-out round.
type roundResult struct {
	Node ids.NodeID
	Err  error
}

// fanout runs call against every target and reports per-participant
// results, positionally aligned with targets. With the manager's
// ParallelFanout on, calls run concurrently on a worker pool bounded
// by MaxFanout; otherwise they run serially in order. When
// shortCircuit is set the first failure cancels the shared round
// context: in-flight calls stop retransmitting and return early, and
// not-yet-started calls are skipped (their result is the cancelled
// context's error). The round's outcome is reported to the manager's
// round observer under the given kind.
//
// tc, when valid, is the transaction's root span: the round runs under
// its own child span, injected into the calls' context so every RPC of
// the round links to it, and reported in the RoundEvent. The child is
// derived only with a tracer installed — the tracer is what exports
// the round span, and an exported-nowhere span on the wire would
// orphan the participant side of the trace.
func (m *Manager) fanout(ctx context.Context, kind trace.RoundKind, txn ids.ActionID, tc trace.Context, targets []ids.NodeID, shortCircuit bool, call roundCall) []roundResult {
	if len(targets) == 0 {
		return nil
	}
	clk := m.clock()
	start := clk.Now()
	rec := m.traceRecorder()
	var roundTC trace.Context
	if tc.Valid() && rec != nil {
		roundTC = tc.Child()
		ctx = trace.Inject(ctx, roundTC)
	}
	results := make([]roundResult, len(targets))
	parallel := m.ParallelFanout && len(targets) > 1

	switch {
	case !parallel:
		for i, p := range targets {
			results[i] = roundResult{Node: p, Err: call(ctx, p)}
			if shortCircuit && results[i].Err != nil {
				for j := i + 1; j < len(targets); j++ {
					results[j] = roundResult{Node: targets[j], Err: context.Canceled}
				}
				break
			}
		}
	default:
		roundCtx := ctx
		var cancel context.CancelFunc
		if shortCircuit {
			roundCtx, cancel = context.WithCancel(ctx)
			defer cancel()
		}
		workers := m.MaxFanout
		if workers <= 0 {
			workers = defaultMaxFanout
		}
		if workers > len(targets) {
			workers = len(targets)
		}
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					p := targets[i]
					if shortCircuit && roundCtx.Err() != nil {
						results[i] = roundResult{Node: p, Err: roundCtx.Err()}
						continue
					}
					err := call(roundCtx, p)
					results[i] = roundResult{Node: p, Err: err}
					if err != nil && cancel != nil {
						cancel()
					}
				}
			}()
		}
		for i := range targets {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	ok, votedNo := 0, 0
	for _, r := range results {
		switch {
		case r.Err == nil:
			ok++
		case errors.Is(r.Err, errVotedNo):
			votedNo++
		}
	}
	roundParts.Add(uint64(len(targets)))
	// Round phase: wall-clock of the whole fan-out (parallel legs
	// overlap, so this is ≤ the sum of the per-peer rpc phases).
	phase.Record(tc.TraceID, phase.Round, clk.Since(start))
	if votedNo > 0 {
		roundVoteNo.Add(uint64(votedNo))
	}
	if h := roundNs[kind]; h != nil {
		h.ObserveDuration(clk.Since(start))
		if ok == len(targets) {
			roundsOK[kind].Inc()
		} else {
			roundsErr[kind].Inc()
		}
	}

	flightrec.Record(flightrec.Event{
		Kind:  flightrec.KindRound,
		Node:  uint64(m.Node().ID()),
		Trace: roundTC.TraceID,
		Span:  roundTC.SpanID,
		A:     uint64(txn),
		B:     uint64(ok)<<32 | uint64(len(targets)),
	})
	if rec != nil || m.OnRound != nil {
		var firstErr error
		if n, err, failed := firstFailure(results); failed {
			firstErr = fmt.Errorf("%v: %w", n, err)
		}
		ev := trace.RoundEvent{
			Kind:         kind,
			Txn:          txn,
			Trace:        roundTC,
			ParentSpan:   tc.SpanID,
			Participants: len(targets),
			OK:           ok,
			Parallel:     parallel,
			Start:        start,
			Duration:     clk.Since(start),
			Err:          firstErr,
		}
		if !roundTC.Valid() {
			ev.ParentSpan = 0
		}
		if rec != nil {
			rec.ObserveRound(ev)
		}
		if obs := m.OnRound; obs != nil {
			obs(ev)
		}
	}
	return results
}

// firstFailure picks the round's root-cause failure: the first result
// whose error is not cancellation fallout from the short-circuit, or —
// when every failure is a cancellation — the first failure outright.
func firstFailure(results []roundResult) (ids.NodeID, error, bool) {
	var (
		node  ids.NodeID
		err   error
		found bool
	)
	for _, r := range results {
		if r.Err == nil {
			continue
		}
		if !found {
			node, err, found = r.Node, r.Err, true
		}
		if !errors.Is(r.Err, context.Canceled) {
			return r.Node, r.Err, true
		}
	}
	return node, err, found
}
