package dist_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"mca/internal/action"
	"mca/internal/dist"
	"mca/internal/netsim"
)

func TestResourceFuncAdapter(t *testing.T) {
	called := false
	var f dist.Resource = dist.ResourceFunc(func(a *action.Action, op string, arg []byte) ([]byte, error) {
		called = true
		if op != "ping" {
			t.Errorf("op = %q", op)
		}
		return []byte("{}"), nil
	})
	if _, err := f.Invoke(nil, "ping", nil); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("adapter did not call through")
	}
}

func TestTxnAccessors(t *testing.T) {
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()

	txn, err := c.coord.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if txn.Action() == nil {
		t.Fatal("coordinator-local action must exist")
	}
	if got := txn.Participants(); len(got) != 0 {
		t.Fatalf("participants before any invoke = %v", got)
	}
	if err := txn.Invoke(ctx, c.nodes[1].ID(), "bank", "add", addArg{Delta: 1}, nil); err != nil {
		t.Fatal(err)
	}
	if got := txn.Participants(); len(got) != 1 || got[0] != c.nodes[1].ID() {
		t.Fatalf("participants = %v", got)
	}
	// The same node enlists once.
	if err := txn.Invoke(ctx, c.nodes[1].ID(), "bank", "add", addArg{Delta: 1}, nil); err != nil {
		t.Fatal(err)
	}
	if got := txn.Participants(); len(got) != 1 {
		t.Fatalf("participants after repeat = %v", got)
	}
	if err := txn.Abort(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestFailedContactNeverCommits(t *testing.T) {
	// An invoke that fails (crashed node) must not make the node a
	// commit participant; the transaction still commits on the
	// healthy leg, and the dead node's ghost state is aborted.
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()

	c.nodes[2].Crash()
	txn, err := c.coord.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Invoke(ctx, c.nodes[1].ID(), "bank", "add", addArg{Delta: 5}, nil); err != nil {
		t.Fatal(err)
	}
	if err := txn.Invoke(ctx, c.nodes[2].ID(), "bank", "add", addArg{Delta: 5}, nil); err == nil {
		t.Fatal("invoke to crashed node must fail")
	}
	// The application decides to commit anyway with the one leg.
	if err := txn.Commit(ctx); err != nil {
		t.Fatalf("commit with failed contact = %v", err)
	}
	if got := c.balanceAt(t, 1); got != 105 {
		t.Fatalf("P1 = %d", got)
	}
	c.nodes[2].Restart()
	if got := c.balanceAt(t, 2); got != 100 {
		t.Fatalf("P2 = %d, want untouched 100", got)
	}
}

func TestTombstoneRejectsLateInvoke(t *testing.T) {
	// After an abort was processed at a participant, a late invoke
	// for the same transaction must be refused rather than resurrect
	// a participant action.
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()

	txn, err := c.coord.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Invoke(ctx, c.nodes[1].ID(), "bank", "add", addArg{Delta: 1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := txn.Abort(ctx); err != nil {
		t.Fatal(err)
	}
	// Simulate the late/replayed invoke arriving after the abort:
	// drive the participant handler directly over RPC with the same
	// transaction id.
	req := struct {
		Txn      uint64 `json:"txn"`
		Resource string `json:"resource"`
		Op       string `json:"op"`
		Arg      any    `json:"arg"`
	}{Txn: uint64(txn.ID()), Resource: "bank", Op: "add", Arg: addArg{Delta: 100}}
	err = c.coord.Node().Peer().Call(ctx, c.nodes[1].ID(), "dist.invoke", req, nil)
	if err == nil {
		t.Fatal("late invoke for an aborted transaction must be refused")
	}
	if got := c.balanceAt(t, 1); got != 100 {
		t.Fatalf("P1 = %d, want 100 (no ghost execution)", got)
	}
}

func TestRecoveringNodeRejectsNewWork(t *testing.T) {
	// A node whose coordinator is unreachable stays closed after
	// restart; new invokes fail with ErrRecovering.
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()

	// Put P1 in doubt: prepared, decision unreachable.
	c.coord.TestHooks.AfterPrepare = func() {
		c.net.Partition(c.nodes[0].ID(), c.nodes[1].ID())
	}
	if err := transfer(ctx, c, 1, 2, 10); err != nil {
		t.Fatal(err)
	}
	c.coord.TestHooks.AfterPrepare = nil

	// P1 crashes and restarts while still partitioned from the
	// coordinator: it must stay closed.
	c.nodes[1].Crash()
	c.nodes[1].Restart()

	txn, err := c.parts[0].Begin()
	if !errors.Is(err, dist.ErrRecovering) {
		if err == nil {
			_ = txn.Abort(ctx)
		}
		t.Fatalf("Begin on recovering node = %v, want ErrRecovering", err)
	}

	// Heal: background recovery resolves and opens the node.
	c.net.Heal(c.nodes[0].ID(), c.nodes[1].ID())
	deadlineErr := waitUntil(func() bool {
		txn, err := c.parts[0].Begin()
		if err != nil {
			return false
		}
		_ = txn.Abort(ctx)
		return true
	})
	if deadlineErr != nil {
		t.Fatal(deadlineErr)
	}
	// The in-doubt write was resolved as committed during recovery.
	if got, ok := c.stableBalanceAt(t, 1); !ok || got != 90 {
		t.Fatalf("P1 stable after recovery = %d, %v; want 90", got, ok)
	}
}

func waitUntil(cond func() bool) error {
	for i := 0; i < 200; i++ {
		if cond() {
			return nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return errors.New("condition never became true")
}

func TestAsymmetricPartitionDuringCompletion(t *testing.T) {
	// Replies from the participant are lost (participant -> coord
	// dropped) while requests still arrive: the participant prepares
	// and even applies the commit, but the coordinator cannot see the
	// votes. With presumed abort the coordinator must abort — so the
	// prepare phase's silence keeps atomicity.
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()

	txn, err := c.coord.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Invoke(ctx, c.nodes[1].ID(), "bank", "add", addArg{Delta: -5}, nil); err != nil {
		t.Fatal(err)
	}
	// Cut the reply path only.
	c.net.PartitionOneWay(c.nodes[1].ID(), c.coord.Node().ID())
	err = txn.Commit(ctx)
	if !errors.Is(err, dist.ErrAborted) {
		t.Fatalf("Commit = %v, want ErrAborted (vote unseen)", err)
	}

	// Heal; the participant's prepared record resolves to abort via
	// the decision query (presumed abort), restoring the balance.
	c.net.Heal(c.nodes[1].ID(), c.coord.Node().ID())
	c.nodes[1].Crash()
	c.nodes[1].Restart()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := c.balanceAt(t, 1); got == 100 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("P1 = %d, want 100", c.balanceAt(t, 1))
		}
		time.Sleep(10 * time.Millisecond)
	}
	pending, err := c.nodes[1].Stable().Intentions().Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("pending intentions = %d, want 0", len(pending))
	}
}
