package dist_test

import (
	"context"
	"testing"
	"time"

	"mca/internal/dist"
	"mca/internal/netsim"
	"mca/internal/node"
	"mca/internal/rpc"
	"mca/internal/trace"
)

// tracedCluster is the 3-node fixture with a trace recorder on every
// node, as an application deployment using node.WithTracer would run.
type tracedCluster struct {
	*cluster
	recs [3]*trace.Recorder
}

func newTracedCluster(t *testing.T, cfg netsim.Config) *tracedCluster {
	t.Helper()
	nw := netsim.New(cfg)
	t.Cleanup(nw.Close)

	rpcOpts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 300 * time.Millisecond}
	tc := &tracedCluster{cluster: &cluster{net: nw}}
	for i := 0; i < 3; i++ {
		tc.recs[i] = trace.NewRecorder()
		nd, err := node.New(nw, node.WithRPCOptions(rpcOpts), node.WithTracer(tc.recs[i]))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(nd.Stop)
		tc.nodes[i] = nd
		mgr := dist.NewManager(nd)
		tc.banks[i] = newBank(100)
		nd.Host(tc.banks[i])
		mgr.RegisterResource("bank", tc.banks[i])
		if i == 0 {
			tc.coord = mgr
		} else {
			tc.parts[i-1] = mgr
		}
	}
	return tc
}

// mergedSpans exports every node's spans (per-node, as separate
// deployments would) and merges them.
func (tc *tracedCluster) mergedSpans() []trace.Span {
	var all []trace.Span
	for _, rec := range tc.recs {
		all = append(all, rec.Spans()...)
	}
	return all
}

func TestTracedCommitMergesToOneTreeWithoutOrphans(t *testing.T) {
	tc := newTracedCluster(t, netsim.Config{})
	ctx := context.Background()

	if err := transfer(ctx, tc.cluster, 1, 2, 30); err != nil {
		t.Fatalf("transfer: %v", err)
	}

	all := tc.mergedSpans()
	tree := trace.Merge(all)
	if len(tree.Orphans) != 0 {
		t.Fatalf("merged tree has %d orphan spans:\n%s", len(tree.Orphans), tree.Render(60))
	}

	// Exactly one distributed trace: every traced span shares the
	// transaction's TraceID.
	traceIDs := map[uint64]bool{}
	for _, s := range all {
		if s.TraceID != 0 {
			traceIDs[s.TraceID] = true
		}
	}
	if len(traceIDs) != 1 {
		t.Fatalf("spans carry %d distinct trace ids, want 1", len(traceIDs))
	}

	// The traced root must causally contain both 2PC rounds, the RPC
	// spans, and participant actions at both remote nodes.
	var root *trace.TreeNode
	for _, r := range tree.Roots {
		if r.Span.TraceID != 0 {
			root = r
			break
		}
	}
	if root == nil {
		t.Fatalf("no traced root in merged tree:\n%s", tree.Render(60))
	}
	kinds := map[string]int{}
	nodesSeen := map[string]bool{}
	root.Walk(func(n *trace.TreeNode, _ int) {
		kinds[n.Span.Kind]++
		nodesSeen[n.Span.Node.String()] = true
	})
	if kinds["round.prepare"] != 1 || kinds["round.commit"] != 1 {
		t.Fatalf("round spans under root: prepare=%d commit=%d, want 1/1 (kinds: %v)",
			kinds["round.prepare"], kinds["round.commit"], kinds)
	}
	// 2 invokes + 2 prepares + 2 commits = 6 client/server pairs.
	if kinds["rpc.client"] != 6 || kinds["rpc.server"] != 6 {
		t.Fatalf("rpc spans under root: client=%d server=%d, want 6/6", kinds["rpc.client"], kinds["rpc.server"])
	}
	for i := 0; i < 3; i++ {
		if id := tc.nodes[i].ID().String(); !nodesSeen[id] {
			t.Fatalf("trace tree has no span from %s (seen: %v)", id, nodesSeen)
		}
	}

	// The critical path of a committed 2PC runs from the transaction
	// root through one of its rounds.
	path := trace.CriticalPath(root)
	if len(path) < 2 {
		t.Fatalf("critical path too short: %d spans", len(path))
	}
}

func TestTracedAbortRecordsAbortRound(t *testing.T) {
	tc := newTracedCluster(t, netsim.Config{})
	ctx := context.Background()

	txn, err := tc.coord.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Invoke(ctx, tc.nodes[1].ID(), "bank", "add", addArg{Delta: -5}, nil); err != nil {
		t.Fatal(err)
	}
	if err := txn.Abort(ctx); err != nil {
		t.Fatal(err)
	}

	tree := trace.Merge(tc.mergedSpans())
	if len(tree.Orphans) != 0 {
		t.Fatalf("merged tree has %d orphan spans", len(tree.Orphans))
	}
	found := false
	for _, r := range tree.Roots {
		r.Walk(func(n *trace.TreeNode, _ int) {
			if n.Span.Kind == "round.abort" {
				found = true
			}
		})
	}
	if !found {
		t.Fatal("no round.abort span in merged tree")
	}
}

// TestRecoveryRoundKeepsOriginalTraceID is the chaos case: the
// coordinator crashes after forcing the decision, restarts, and
// re-drives completion. The recovery round must continue the
// transaction's original trace, not start a fresh one — the decision
// record carries the trace identity across the crash.
func TestRecoveryRoundKeepsOriginalTraceID(t *testing.T) {
	tc := newTracedCluster(t, netsim.Config{})
	ctx := context.Background()

	tc.coord.TestHooks.AfterDecision = func() {
		tc.net.Partition(tc.nodes[0].ID(), tc.nodes[1].ID())
		tc.net.Partition(tc.nodes[0].ID(), tc.nodes[2].ID())
	}
	if err := transfer(ctx, tc.cluster, 1, 2, 10); err != nil {
		t.Fatalf("Commit = %v (decision was durable)", err)
	}

	// The original transaction's trace id, from the coordinator's
	// prepare round.
	var originalTrace uint64
	for _, ev := range tc.recs[0].Rounds() {
		if ev.Kind == trace.RoundPrepare {
			originalTrace = ev.Trace.TraceID
		}
	}
	if originalTrace == 0 {
		t.Fatal("prepare round was not traced")
	}

	tc.nodes[0].Crash()
	tc.net.Heal(tc.nodes[0].ID(), tc.nodes[1].ID())
	tc.net.Heal(tc.nodes[0].ID(), tc.nodes[2].ID())
	tc.nodes[0].Restart()

	deadline := time.Now().Add(5 * time.Second)
	for {
		var recovered *trace.RoundEvent
		for _, ev := range tc.recs[0].Rounds() {
			if ev.Kind == trace.RoundRecover && ev.OK == ev.Participants {
				recovered = &ev
				break
			}
		}
		if recovered != nil {
			if recovered.Trace.TraceID != originalTrace {
				t.Fatalf("recovery round trace id %x, want original %x", recovered.Trace.TraceID, originalTrace)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no successful recovery round recorded; rounds: %v", tc.recs[0].RoundSummary())
		}
		if _, err := tc.coord.RecoverPending(ctx); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if got := tc.balanceAt(t, 1); got != 90 {
		t.Fatalf("P1 balance = %d, want 90", got)
	}
}
