// Distributed serializing actions: the paper's concluding remark — "to
// embark on building a distributed version" of the coloured-action
// scheme — realised for the serializing structure.
//
// A RemoteSerializing is a serializing action whose constituents are
// distributed atomic actions (full two-phase commit). The fig 11 colour
// scheme is mirrored at every participant: each node the structure
// touches hosts a volatile container action carrying the structure's
// "blue" colour, and every constituent's participant action is coloured
// {red_i, blue} with red writes, blue reads and blue exclusive-read
// companions. A constituent's commit therefore makes its effects
// permanent at every node (red, via the commit protocol) while all the
// locks it held pass to the local containers (blue) — outsiders stay
// locked out across the whole cluster until the structure ends.
//
// Containers are volatile, like all locks: a participant crash releases
// that node's retained locks (the protection window shrinks) but never
// un-commits constituent effects, which is exactly the serializing
// action's relaxed failure atomicity.
package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"mca/internal/action"
	"mca/internal/colour"
	"mca/internal/ids"
	"mca/internal/trace"
)

// ErrStructureEnded is returned when beginning a constituent of an
// ended structure.
var ErrStructureEnded = errors.New("dist: structure already ended")

// StructureID identifies one distributed structure instance across the
// cluster. It reuses the action identifier space for uniqueness.
type StructureID ids.ActionID

// RPC method names for structures.
const (
	methodEndStructure   = "dist.endStructure"
	methodAbortStructure = "dist.abortStructure"
)

// structureInfo is the colour scheme shipped with remote invocations of
// structured transactions. For a serializing constituent the container
// is the structure's "blue" and Write its fresh "red"; for a glued
// stage the container is its joint's pass colour, Write the stage's own
// colour, and Parent links the joint whose node-local container holds
// the locks passed on by the previous stage.
type structureInfo struct {
	Structure StructureID   `json:"structure"`
	Container colour.Colour `json:"container"`
	Write     colour.Colour `json:"write"`
	// Companion, when true, gives the participant action a write
	// companion in the container colour (serializing constituents).
	Companion bool `json:"companion,omitempty"`
	// ReadOwn, when true, makes reads use the write colour rather
	// than the container colour (glued stages read in their own
	// colour so unneeded read locks release at stage commit).
	ReadOwn bool `json:"readOwn,omitempty"`
	// Parent, when non-nil, nests this structure's node-local
	// container under the parent structure's container.
	Parent *structureInfo `json:"parent,omitempty"`
}

// RemoteSerializing coordinates a serializing action over distributed
// constituents.
type RemoteSerializing struct {
	mgr  *Manager
	id   StructureID
	blue colour.Colour
	// local is the coordinator-side container (retains locks on
	// coordinator-local objects).
	local *action.Action

	mu      sync.Mutex
	touched map[ids.NodeID]struct{}
	ended   bool
}

// BeginRemoteSerializing starts a distributed serializing action
// coordinated by this node.
func (m *Manager) BeginRemoteSerializing() (*RemoteSerializing, error) {
	m.mu.Lock()
	if m.recovering {
		m.mu.Unlock()
		return nil, ErrRecovering
	}
	rt := m.node.Runtime()
	m.mu.Unlock()

	blue := colour.Fresh()
	local, err := rt.Begin(action.WithColours(blue))
	if err != nil {
		return nil, err
	}
	return &RemoteSerializing{
		mgr:     m,
		id:      StructureID(local.ID()),
		blue:    blue,
		local:   local,
		touched: make(map[ids.NodeID]struct{}),
	}, nil
}

// ID returns the structure identifier.
func (s *RemoteSerializing) ID() StructureID { return s.id }

// Container exposes the coordinator-side container action (lock
// introspection in tests).
func (s *RemoteSerializing) Container() *action.Action { return s.local }

// BeginConstituent starts the next constituent as a distributed atomic
// action. Its remote participant actions carry the structure's colour
// scheme, so committing it retains its locks at every node's container.
func (s *RemoteSerializing) BeginConstituent() (*Txn, error) {
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return nil, ErrStructureEnded
	}
	s.mu.Unlock()

	red := colour.Fresh()
	localAct, err := s.local.Begin(
		action.WithColours(red, s.blue),
		action.WithWriteColour(red),
		action.WithReadColour(s.blue),
		action.WithWriteCompanion(s.blue),
	)
	if err != nil {
		return nil, err
	}
	return &Txn{
		mgr:          s.mgr,
		local:        localAct,
		participants: make(map[ids.NodeID]bool),
		structure: &structureInfo{
			Structure: s.id,
			Container: s.blue,
			Write:     red,
			Companion: true,
		},
		onEnlist: s.noteTouched,
	}, nil
}

// RunConstituent executes fn as one constituent, committing (two-phase)
// on nil and aborting on error or panic.
func (s *RemoteSerializing) RunConstituent(ctx context.Context, fn func(*Txn) error) error {
	txn, err := s.BeginConstituent()
	if err != nil {
		return err
	}
	defer func() {
		if r := recover(); r != nil {
			_ = txn.Abort(ctx)
			panic(r)
		}
	}()
	if err := fn(txn); err != nil {
		_ = txn.Abort(ctx)
		return err
	}
	return txn.Commit(ctx)
}

func (s *RemoteSerializing) noteTouched(n ids.NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touched[n] = struct{}{}
}

// End terminates the structure: every node's container commits,
// releasing the retained locks. Constituent effects are permanent
// already; End never undoes anything.
func (s *RemoteSerializing) End(ctx context.Context) error {
	return s.finish(ctx, methodEndStructure)
}

// Cancel abandons the structure, releasing retained locks everywhere.
// Committed constituents survive — serializing actions are not failure
// atomic.
func (s *RemoteSerializing) Cancel(ctx context.Context) error {
	return s.finish(ctx, methodAbortStructure)
}

func (s *RemoteSerializing) finish(ctx context.Context, method string) error {
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return ErrStructureEnded
	}
	s.ended = true
	nodes := make([]ids.NodeID, 0, len(s.touched))
	for n := range s.touched {
		nodes = append(nodes, n)
	}
	s.mu.Unlock()

	// End every node's container concurrently: the structure is over
	// everywhere, and no node's outcome depends on another's.
	peer := s.mgr.Node().Peer()
	results := s.mgr.fanout(ctx, trace.RoundStructure, ids.ActionID(s.id), trace.Context{}, nodes, false,
		func(ctx context.Context, n ids.NodeID) error {
			return peer.Call(ctx, n, method, structureReq{Structure: s.id}, nil)
		})
	var firstErr error
	if n, err, failed := firstFailure(results); failed {
		firstErr = fmt.Errorf("structure %v at %v: %w", s.id, n, err)
	}
	var localErr error
	if method == methodEndStructure {
		localErr = s.local.Commit()
	} else {
		localErr = s.local.Abort()
	}
	if firstErr == nil {
		firstErr = localErr
	}
	return firstErr
}

// --- participant side ---

type structureReq struct {
	Structure StructureID `json:"structure"`
}

// structureContainer returns (creating if needed) this node's container
// action for the structure, carrying the container colour and nested
// under the parent structure's container when the info names one.
func (m *Manager) structureContainer(info *structureInfo) (*action.Action, error) {
	// Resolve the parent chain first (outside our own critical
	// section it would race; the chain is short, so recurse while
	// holding m.mu via the lockless inner helper).
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.recovering {
		return nil, ErrRecovering
	}
	return m.structureContainerLocked(info)
}

func (m *Manager) structureContainerLocked(info *structureInfo) (*action.Action, error) {
	if a, ok := m.containers[info.Structure]; ok {
		return a, nil
	}
	var (
		a   *action.Action
		err error
	)
	if info.Parent != nil {
		parent, perr := m.structureContainerLocked(info.Parent)
		if perr != nil {
			return nil, perr
		}
		a, err = parent.Begin(action.WithColours(info.Container))
	} else {
		a, err = m.node.Runtime().Begin(action.WithColours(info.Container))
	}
	if err != nil {
		return nil, err
	}
	m.containers[info.Structure] = a
	return a, nil
}

// PassColour returns, for a participant action that belongs to a
// distributed structure, the colour in which resource handlers retain
// objects for the next stage (glued chains: Retain/lock in this colour
// to pass an object on). ok is false for plain transactions.
func (m *Manager) PassColour(a *action.Action) (colour.Colour, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.passColours[a.ID()]
	return c, ok
}

func (m *Manager) handleEndStructure(_ context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
	return m.finishStructure(body, true)
}

func (m *Manager) handleAbortStructure(_ context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
	return m.finishStructure(body, false)
}

func (m *Manager) finishStructure(body []byte, commit bool) ([]byte, error) {
	var req structureReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("decode structure end: %w", err)
	}
	m.mu.Lock()
	a, ok := m.containers[req.Structure]
	if ok {
		delete(m.containers, req.Structure)
	}
	m.mu.Unlock()
	if ok {
		var err error
		if commit {
			err = a.Commit()
		} else {
			err = a.Abort()
		}
		if err != nil {
			return nil, err
		}
	}
	// Unknown structure: idempotent (duplicate end, or lost to a
	// crash — the locks died with it).
	return json.Marshal(ackResp{})
}

// --- distributed glued chains ---

// remoteJoint is the coordinator-side record of one glue joint: its
// identity and pass colour (mirrored at every node the chain touches),
// and its coordinator-local container action.
type remoteJoint struct {
	info  *structureInfo
	local *action.Action
}

// RemoteChain is a distributed glued chain (paper §3.2 over the
// cluster): each stage is a two-phase-commit transaction; objects a
// stage retains (resource handlers locking in Manager.PassColour, the
// coordinator via Txn.PassColour) stay locked — at their nodes — for
// the next stage, while everything else releases at the stage's commit.
// As in the local Chain, the joint for stages (i-1, i) ends as soon as
// stage i commits, so passed-then-dropped objects release promptly.
type RemoteChain struct {
	mgr *Manager

	mu      sync.Mutex
	joints  []*remoteJoint
	touched map[ids.NodeID]struct{}
	ended   bool
	stages  int
}

// BeginRemoteChain starts a distributed glued chain coordinated by this
// node.
func (m *Manager) BeginRemoteChain() (*RemoteChain, error) {
	m.mu.Lock()
	if m.recovering {
		m.mu.Unlock()
		return nil, ErrRecovering
	}
	m.mu.Unlock()
	return &RemoteChain{mgr: m, touched: make(map[ids.NodeID]struct{})}, nil
}

// RunStage executes fn as the next top-level (distributed) action of
// the chain; see structures.Chain.RunStage for the semantics mirrored
// here.
func (c *RemoteChain) RunStage(ctx context.Context, fn func(*Txn) error) error {
	txn, joint, err := c.beginStage()
	if err != nil {
		return err
	}
	runErr := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				_ = txn.Abort(ctx)
				panic(r)
			}
		}()
		if err := fn(txn); err != nil {
			_ = txn.Abort(ctx)
			return err
		}
		return txn.Commit(ctx)
	}()
	c.afterStage(ctx, joint, runErr == nil)
	return runErr
}

// beginStage creates the next joint and the stage transaction beneath
// it.
func (c *RemoteChain) beginStage() (*Txn, *remoteJoint, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ended {
		return nil, nil, ErrStructureEnded
	}

	pass := colour.Fresh()
	var (
		parentInfo  *structureInfo
		parentLocal *action.Action
	)
	if len(c.joints) > 0 {
		prev := c.joints[len(c.joints)-1]
		parentInfo = prev.info
		parentLocal = prev.local
	}

	var (
		jointLocal *action.Action
		err        error
	)
	if parentLocal != nil {
		jointLocal, err = parentLocal.Begin(action.WithColours(pass))
	} else {
		jointLocal, err = c.mgr.Node().Runtime().Begin(action.WithColours(pass))
	}
	if err != nil {
		return nil, nil, fmt.Errorf("begin remote joint: %w", err)
	}
	joint := &remoteJoint{
		info: &structureInfo{
			Structure: StructureID(jointLocal.ID()),
			Container: pass,
			Parent:    parentInfo,
		},
		local: jointLocal,
	}

	own := colour.Fresh()
	stageLocal, err := jointLocal.Begin(
		action.WithColours(pass, own),
		action.WithWriteColour(own),
		action.WithReadColour(own),
	)
	if err != nil {
		_ = jointLocal.Abort()
		return nil, nil, fmt.Errorf("begin remote stage: %w", err)
	}
	c.joints = append(c.joints, joint)
	c.stages++

	txn := &Txn{
		mgr:          c.mgr,
		local:        stageLocal,
		participants: make(map[ids.NodeID]bool),
		structure: &structureInfo{
			Structure: joint.info.Structure,
			Container: pass,
			Write:     own,
			ReadOwn:   true,
			Parent:    parentInfo,
		},
		onEnlist: c.noteTouched,
	}
	return txn, joint, nil
}

func (c *RemoteChain) noteTouched(n ids.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touched[n] = struct{}{}
}

// afterStage ends the joint before the one just completed (committed
// stages only; a failed stage keeps the previous joint so a retry still
// finds the passed-on locks).
func (c *RemoteChain) afterStage(ctx context.Context, _ *remoteJoint, committed bool) {
	if !committed {
		return
	}
	c.mu.Lock()
	if len(c.joints) < 2 {
		c.mu.Unlock()
		return
	}
	old := c.joints[len(c.joints)-2]
	c.joints = append(c.joints[:len(c.joints)-2], c.joints[len(c.joints)-1])
	nodes := c.touchedNodesLocked()
	c.mu.Unlock()
	c.endJoint(ctx, old, nodes, true)
}

func (c *RemoteChain) touchedNodesLocked() []ids.NodeID {
	out := make([]ids.NodeID, 0, len(c.touched))
	for n := range c.touched {
		out = append(out, n)
	}
	return out
}

// endJoint finishes one joint everywhere: remote containers first (the
// end message is idempotent at nodes that never hosted it), then the
// coordinator-local container.
func (c *RemoteChain) endJoint(ctx context.Context, j *remoteJoint, nodes []ids.NodeID, commit bool) {
	method := methodEndStructure
	if !commit {
		method = methodAbortStructure
	}
	peer := c.mgr.Node().Peer()
	c.mgr.fanout(ctx, trace.RoundStructure, ids.ActionID(j.info.Structure), trace.Context{}, nodes, false,
		func(ctx context.Context, n ids.NodeID) error {
			return peer.Call(ctx, n, method, structureReq{Structure: j.info.Structure}, nil)
		})
	if j.local.Status() == action.Active {
		if commit {
			_ = j.local.Commit()
		} else {
			_ = j.local.Abort()
		}
	}
}

// Stages returns how many stages have been started.
func (c *RemoteChain) Stages() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stages
}

// End closes the chain, releasing any locks still retained by joints at
// every node. Effects of committed stages are permanent regardless.
func (c *RemoteChain) End(ctx context.Context) error {
	return c.finish(ctx, true)
}

// Cancel abandons the chain, releasing retained locks everywhere.
func (c *RemoteChain) Cancel(ctx context.Context) error {
	return c.finish(ctx, false)
}

func (c *RemoteChain) finish(ctx context.Context, commit bool) error {
	c.mu.Lock()
	if c.ended {
		c.mu.Unlock()
		return ErrStructureEnded
	}
	c.ended = true
	joints := c.joints
	c.joints = nil
	nodes := c.touchedNodesLocked()
	c.mu.Unlock()

	// Innermost joints first: each is a child of its predecessor.
	for i := len(joints) - 1; i >= 0; i-- {
		c.endJoint(ctx, joints[i], nodes, commit)
	}
	return nil
}

// PassColour returns the colour in which this transaction retains
// coordinator-local objects for the next stage of its chain (zero for
// transactions outside structures). Remote retention happens inside
// resource handlers via Manager.PassColour.
func (t *Txn) PassColour() colour.Colour {
	if t.structure == nil {
		return colour.None
	}
	return t.structure.Container
}
