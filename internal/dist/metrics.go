package dist

import (
	"mca/internal/metrics"
	"mca/internal/trace"
)

// Commit-protocol telemetry, exported under mca_dist_*. Every fan-out
// round feeds these unconditionally — a round is already at least one
// network round-trip, so a few striped-counter adds are noise — while
// trace.RoundEvent observers remain opt-in. Handles are resolved per
// RoundKind at init; the round path never touches a label map.
var (
	roundKinds = []trace.RoundKind{
		trace.RoundPrepare, trace.RoundCommit, trace.RoundAbort,
		trace.RoundRecover, trace.RoundStructure,
	}

	roundsOK    map[trace.RoundKind]*metrics.Counter
	roundsErr   map[trace.RoundKind]*metrics.Counter
	roundNs     map[trace.RoundKind]*metrics.Histogram
	roundVoteNo *metrics.Counter
	roundParts  *metrics.Counter
	recoverHeld *metrics.Counter

	// Commit throughput: outcomes and latency of coordinator-driven
	// transactions, plus the read-only prepare short-circuit.
	txnCommits    *metrics.Counter
	txnAborts     *metrics.Counter
	commitNs      *metrics.Histogram
	readonlyVotes *metrics.Counter
)

func init() {
	r := metrics.Default()
	rounds := r.CounterVec("mca_dist_rounds_total",
		"Coordinator fan-out rounds, by kind and outcome.", "kind", "outcome")
	latency := r.HistogramVec("mca_dist_round_ns",
		"Fan-out round duration, ns, by kind.", "kind")
	roundsOK = make(map[trace.RoundKind]*metrics.Counter, len(roundKinds))
	roundsErr = make(map[trace.RoundKind]*metrics.Counter, len(roundKinds))
	roundNs = make(map[trace.RoundKind]*metrics.Histogram, len(roundKinds))
	for _, k := range roundKinds {
		roundsOK[k] = rounds.With(string(k), "ok")
		roundsErr[k] = rounds.With(string(k), "error")
		roundNs[k] = latency.With(string(k))
	}
	roundVoteNo = r.Counter("mca_dist_votes_no_total",
		"Prepare-round participants that deliberately voted NO.")
	roundParts = r.Counter("mca_dist_round_participants_total",
		"Participants addressed across all fan-out rounds.")
	recoverHeld = r.Counter("mca_dist_recover_retries_total",
		"RecoverPending passes that left records pending (another retry follows).")
	txnCommits = r.Counter("mca_dist_txn_commits_total",
		"Distributed transactions committed by this process's coordinators.")
	txnAborts = r.Counter("mca_dist_txn_aborts_total",
		"Distributed transactions aborted by this process's coordinators.")
	commitNs = r.Histogram("mca_dist_commit_ns",
		"Txn.Commit duration at the coordinator, ns.").EnableExemplars()
	readonlyVotes = r.Counter("mca_dist_readonly_votes_total",
		"Prepare votes answered yes read-only: no log force, excluded from phase 2.")
}
