package dist_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"mca/internal/dist"
	"mca/internal/netsim"
)

// TestRecoveryRetriesThroughStoreBlip is the regression for the stranded
// recovery loop: a participant restarts while its coordinator is down,
// so its background retry loop keeps re-asking for the decision. If the
// stable store then hiccups briefly (crashes and recovers while the node
// itself stays up), one RecoverPending pass errors — and before the fix
// that error terminated the retry loop, stranding the node in
// `recovering` forever even after the coordinator came back. The node
// must instead keep retrying and open once the decision resolves.
func TestRecoveryRetriesThroughStoreBlip(t *testing.T) {
	c := newCluster(t, netsim.Config{})
	ctx := context.Background()

	// Leave the participants holding prepared records with no decision:
	// the coordinator's node dies right after the votes, so neither the
	// decision force nor the abort round happens.
	c.coord.TestHooks = dist.Hooks{AfterPrepare: func() { c.nodes[0].Crash() }}
	err := transfer(ctx, c, 1, 2, 10)
	if err == nil {
		t.Fatal("transfer must fail when the coordinator dies mid-commit")
	}
	c.coord.TestHooks = dist.Hooks{}

	// The participant restarts in doubt; the coordinator is down, so its
	// synchronous recovery pass leaves records pending and the background
	// retry loop takes over.
	c.nodes[1].Crash()
	c.nodes[1].Restart()
	if _, err := c.parts[0].Begin(); !errors.Is(err, dist.ErrRecovering) {
		t.Fatalf("Begin while in doubt = %v, want ErrRecovering", err)
	}

	// The store blip: the stable store alone crashes for a few retry
	// ticks and recovers. RecoverPending fails during the window; the
	// loop must survive it.
	c.nodes[1].Stable().Crash()
	time.Sleep(80 * time.Millisecond) // >= 3 retry ticks hit the crashed store
	c.nodes[1].Stable().Recover()

	// The coordinator returns with no decision record: presumed abort
	// resolves the participant's doubt on its next successful retry.
	c.nodes[0].Restart()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.parts[0].Begin(); err == nil {
			break
		} else if !errors.Is(err, dist.ErrRecovering) {
			t.Fatalf("Begin = %v, want nil or ErrRecovering", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("participant never left recovering: the retry loop died on the store blip")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Presumed abort: the half-done transfer left no trace.
	if got := c.balanceAt(t, 1); got != 100 {
		t.Fatalf("P1 balance = %d, want 100 (aborted)", got)
	}
}
