package dist_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"mca/internal/dist"
	"mca/internal/netsim"
	"mca/internal/node"
	"mca/internal/rpc"
	"mca/internal/store"
)

// backedCluster is newCluster with a choice of stable-store backing:
// in-memory simulation or a real FileStore directory per node.
func backedCluster(t *testing.T, fileBacked bool) *cluster {
	t.Helper()
	nw := netsim.New(netsim.Config{})
	t.Cleanup(nw.Close)

	rpcOpts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 300 * time.Millisecond}
	c := &cluster{net: nw}
	for i := 0; i < 3; i++ {
		opts := []node.Option{node.WithRPCOptions(rpcOpts)}
		if fileBacked {
			opts = append(opts, node.WithStableDir(t.TempDir()))
		}
		nd, err := node.New(nw, opts...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(nd.Stop)
		c.nodes[i] = nd
		mgr := dist.NewManager(nd)
		c.banks[i] = newBank(100)
		nd.Host(c.banks[i])
		mgr.RegisterResource("bank", c.banks[i])
		if i == 0 {
			c.coord = mgr
		} else {
			c.parts[i-1] = mgr
		}
	}
	return c
}

// settleCluster restarts everything and drains every intention log.
func settleCluster(t *testing.T, c *cluster, ctx context.Context) {
	t.Helper()
	for _, nd := range c.nodes {
		nd.Restart() // no-op when up
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := c.coord.RecoverPending(ctx); err != nil {
			t.Fatal(err)
		}
		pendingTotal := 0
		for _, nd := range c.nodes {
			pending, err := nd.Stable().Intentions().Pending()
			if err != nil {
				t.Fatal(err)
			}
			pendingTotal += len(pending)
		}
		if pendingTotal == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("intention logs did not drain: %d records pending", pendingTotal)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// stableBalances re-activates every bank from stable storage and returns
// the committed balances (initial value when never flushed).
func stableBalances(t *testing.T, c *cluster) [3]int {
	t.Helper()
	for _, nd := range c.nodes {
		nd.Crash()
		nd.Restart()
	}
	var out [3]int
	for i := range c.banks {
		if got, ok := c.stableBalanceAt(t, i); ok {
			out[i] = got
		} else {
			out[i] = 100
		}
	}
	return out
}

// TestCommitCrashMatrix kills the commit path at every injected crash
// point — the three batch-apply points plus the mid-group-commit-window
// force — at both the coordinator and a participant, over both stable
// backings. Post-decision crashes must still commit everywhere after
// recovery; a crash during the group-commit force (the record never
// became durable) must abort cleanly everywhere.
func TestCommitCrashMatrix(t *testing.T) {
	const midForce = store.CrashPoint(0) // sentinel: crash the WAL force instead
	points := []struct {
		name      string
		point     store.CrashPoint
		committed bool
	}{
		// These fire inside ApplyBatch, which only runs after the
		// decision: the transaction must survive as committed.
		{"beforeJournal", store.CrashBeforeJournal, true},
		{"afterJournal", store.CrashAfterJournal, true},
		{"midApply", store.CrashMidApply, true},
		// The force dies mid group-commit window, before any record is
		// durable: prepare (participant) or decision (coordinator) is
		// lost, so the transaction aborts.
		{"midForce", midForce, false},
	}
	for _, backing := range []string{"memory", "file"} {
		for _, victim := range []string{"coordinator", "participant"} {
			for _, tt := range points {
				t.Run(fmt.Sprintf("%s/%s/%s", backing, victim, tt.name), func(t *testing.T) {
					c := backedCluster(t, backing == "file")
					ctx := context.Background()
					victimNode := c.nodes[0]
					if victim == "participant" {
						victimNode = c.nodes[1]
					}
					// A small window makes the kill land mid
					// group-commit window rather than between batches.
					victimNode.Stable().WAL().SetWindow(time.Millisecond)

					arm := func() {
						if tt.point == midForce {
							victimNode.Stable().CrashDuringNextForce()
						} else {
							victimNode.Stable().CrashDuringNextBatch(tt.point)
						}
					}
					if tt.point == midForce {
						// The victim's next WAL force is the participant's
						// prepare record or the coordinator's decision
						// record.
						arm()
					} else {
						// ApplyBatch runs only after the decision: at the
						// coordinator in local commit, at the participant
						// in phase 2.
						c.coord.TestHooks = dist.Hooks{AfterDecision: arm}
					}

					// The transfer has a coordinator-local leg and two
					// remote legs, so every victim is a writer.
					err := c.coord.Run(ctx, func(txn *dist.Txn) error {
						if err := txn.Invoke(ctx, c.nodes[0].ID(), "bank", "add", addArg{Delta: -5}, nil); err != nil {
							return err
						}
						if err := txn.Invoke(ctx, c.nodes[1].ID(), "bank", "add", addArg{Delta: 2}, nil); err != nil {
							return err
						}
						return txn.Invoke(ctx, c.nodes[2].ID(), "bank", "add", addArg{Delta: 3}, nil)
					})
					c.coord.TestHooks = dist.Hooks{}

					if tt.committed {
						// The decision was durable before the crash. The
						// coordinator-victim cells report the failed local
						// apply; the participant-victim cells commit (the
						// dead participant is left to recovery).
						if victim == "participant" && err != nil {
							t.Fatalf("Commit = %v, want nil (crashed participant is recovery's problem)", err)
						}
					} else {
						if !errors.Is(err, dist.ErrAborted) {
							t.Fatalf("Commit = %v, want ErrAborted (force died before the record was durable)", err)
						}
					}

					// The injected points crash only the stable store;
					// finish the kill, then recover the whole cluster.
					victimNode.Crash()
					settleCluster(t, c, ctx)

					want := [3]int{100, 100, 100}
					if tt.committed {
						want = [3]int{95, 102, 103}
					}
					if got := stableBalances(t, c); got != want {
						t.Fatalf("stable balances after recovery = %v, want %v", got, want)
					}
				})
			}
		}
	}
}
