package dist_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mca/internal/action"
	"mca/internal/dist"
	"mca/internal/ids"
	"mca/internal/lock"
	"mca/internal/netsim"
	"mca/internal/node"
	"mca/internal/object"
	"mca/internal/rpc"
)

// slotsResource hosts a small array of independently lockable integer
// slots and supports retaining individual slots for the next glued
// stage ("hold"), via the manager's pass colour.
type slotsResource struct {
	mgr *dist.Manager

	mu    sync.Mutex
	nd    *node.Node
	slots []*object.Managed[int]
}

func newSlotsResource(n int) *slotsResource {
	return &slotsResource{slots: make([]*object.Managed[int], n)}
}

func (s *slotsResource) Register(nd *node.Node, _ *rpc.Peer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nd = nd
	for i := range s.slots {
		if s.slots[i] == nil {
			s.slots[i] = object.New(0)
		}
	}
}

func (s *slotsResource) Recover(context.Context, *node.Node) {}

func (s *slotsResource) slot(i int) (*object.Managed[int], error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.slots) {
		return nil, fmt.Errorf("slot %d out of range", i)
	}
	return s.slots[i], nil
}

type slotArg struct {
	Slot  int `json:"slot"`
	Value int `json:"value"`
}

func (s *slotsResource) Invoke(a *action.Action, op string, arg []byte) ([]byte, error) {
	var in slotArg
	if err := json.Unmarshal(arg, &in); err != nil {
		return nil, err
	}
	m, err := s.slot(in.Slot)
	if err != nil {
		return nil, err
	}
	switch op {
	case "set":
		if err := m.Write(a, func(v *int) error { *v = in.Value; return nil }); err != nil {
			return nil, err
		}
		return []byte("{}"), nil
	case "hold":
		// Retain the slot for the next stage of the glued chain.
		pass, ok := s.mgr.PassColour(a)
		if !ok {
			return nil, errors.New("hold outside a structured transaction")
		}
		if err := a.Lock(m.ObjectID(), lock.ExclusiveRead, pass); err != nil {
			return nil, err
		}
		return []byte("{}"), nil
	default:
		return nil, errors.New("unknown op " + op)
	}
}

type chainFixture struct {
	net   *netsim.Network
	coord *dist.Manager
	nd    *node.Node
	res   *slotsResource
}

func newChainFixture(t *testing.T) *chainFixture {
	t.Helper()
	nw := netsim.New(netsim.Config{})
	t.Cleanup(nw.Close)
	opts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 300 * time.Millisecond}

	coordNode, err := node.New(nw, node.WithRPCOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coordNode.Stop)
	coord := dist.NewManager(coordNode)

	nd, err := node.New(nw, node.WithRPCOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nd.Stop)
	mgr := dist.NewManager(nd)
	res := newSlotsResource(3)
	res.mgr = mgr
	nd.Host(res)
	mgr.RegisterResource("slots", res)

	return &chainFixture{net: nw, coord: coord, nd: nd, res: res}
}

// outsiderCanWrite probes whether an unrelated transaction can write
// the slot.
func (f *chainFixture) outsiderCanWrite(ctx context.Context, slot int) bool {
	err := f.coord.Run(ctx, func(txn *dist.Txn) error {
		return txn.Invoke(ctx, f.nd.ID(), "slots", "set", slotArg{Slot: slot, Value: 99}, nil)
	})
	return err == nil
}

func TestRemoteChainPassesExactlyTheHeldSubset(t *testing.T) {
	f := newChainFixture(t)
	ctx := context.Background()

	chain, err := f.coord.BeginRemoteChain()
	if err != nil {
		t.Fatal(err)
	}

	// Stage A writes slots 0 and 1, holds only slot 0.
	err = chain.RunStage(ctx, func(txn *dist.Txn) error {
		for i := 0; i < 2; i++ {
			if err := txn.Invoke(ctx, f.nd.ID(), "slots", "set", slotArg{Slot: i, Value: 1}, nil); err != nil {
				return err
			}
		}
		return txn.Invoke(ctx, f.nd.ID(), "slots", "hold", slotArg{Slot: 0}, nil)
	})
	if err != nil {
		t.Fatalf("stage A: %v", err)
	}

	// Slot 1 free, slot 0 protected.
	if !f.outsiderCanWrite(ctx, 1) {
		t.Fatal("unheld slot must be free after stage A commits")
	}
	if f.outsiderCanWrite(ctx, 0) {
		t.Fatal("held slot must stay locked for stage B")
	}

	// Stage B writes the passed slot.
	err = chain.RunStage(ctx, func(txn *dist.Txn) error {
		return txn.Invoke(ctx, f.nd.ID(), "slots", "set", slotArg{Slot: 0, Value: 2}, nil)
	})
	if err != nil {
		t.Fatalf("stage B over passed lock: %v", err)
	}
	if err := chain.End(ctx); err != nil {
		t.Fatal(err)
	}

	if !f.outsiderCanWrite(ctx, 0) {
		t.Fatal("slot must be free after the chain ends")
	}
	m, _ := f.res.slot(0)
	if got := m.Peek(); got != 99 { // the outsider's write above
		t.Fatalf("slot 0 = %d", got)
	}
}

func TestRemoteChainNarrowsAcrossRounds(t *testing.T) {
	// A holds 0,1,2; B holds only 0; once B commits the joint for
	// (A,B) ends and slots 1,2 free while 0 stays held for C.
	f := newChainFixture(t)
	ctx := context.Background()

	chain, err := f.coord.BeginRemoteChain()
	if err != nil {
		t.Fatal(err)
	}
	err = chain.RunStage(ctx, func(txn *dist.Txn) error {
		for i := 0; i < 3; i++ {
			if err := txn.Invoke(ctx, f.nd.ID(), "slots", "hold", slotArg{Slot: i}, nil); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.outsiderCanWrite(ctx, 1) {
		t.Fatal("slot 1 must be held after round 1")
	}

	err = chain.RunStage(ctx, func(txn *dist.Txn) error {
		return txn.Invoke(ctx, f.nd.ID(), "slots", "hold", slotArg{Slot: 0}, nil)
	})
	if err != nil {
		t.Fatal(err)
	}

	if !f.outsiderCanWrite(ctx, 1) {
		t.Fatal("slot 1 (dropped in round 2) must be free")
	}
	if !f.outsiderCanWrite(ctx, 2) {
		t.Fatal("slot 2 (dropped in round 2) must be free")
	}
	if f.outsiderCanWrite(ctx, 0) {
		t.Fatal("slot 0 must still be held for round 3")
	}

	if err := chain.End(ctx); err != nil {
		t.Fatal(err)
	}
	if !f.outsiderCanWrite(ctx, 0) {
		t.Fatal("slot 0 must be free after End")
	}
}

func TestRemoteChainFailedStageKeepsPreviousJoint(t *testing.T) {
	f := newChainFixture(t)
	ctx := context.Background()

	chain, err := f.coord.BeginRemoteChain()
	if err != nil {
		t.Fatal(err)
	}
	if err := chain.RunStage(ctx, func(txn *dist.Txn) error {
		return txn.Invoke(ctx, f.nd.ID(), "slots", "hold", slotArg{Slot: 0}, nil)
	}); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("boom")
	if err := chain.RunStage(ctx, func(*dist.Txn) error { return boom }); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	// Still held for the retry.
	if f.outsiderCanWrite(ctx, 0) {
		t.Fatal("held slot released by a failed stage")
	}
	// Retry consumes it.
	if err := chain.RunStage(ctx, func(txn *dist.Txn) error {
		return txn.Invoke(ctx, f.nd.ID(), "slots", "set", slotArg{Slot: 0, Value: 7}, nil)
	}); err != nil {
		t.Fatalf("retry stage: %v", err)
	}
	if err := chain.End(ctx); err != nil {
		t.Fatal(err)
	}
	m, _ := f.res.slot(0)
	if got := m.Peek(); got != 7 {
		t.Fatalf("slot 0 = %d", got)
	}
}

func TestRemoteChainStageEffectsSurviveLaterFailureAndCancel(t *testing.T) {
	f := newChainFixture(t)
	ctx := context.Background()

	chain, err := f.coord.BeginRemoteChain()
	if err != nil {
		t.Fatal(err)
	}
	if err := chain.RunStage(ctx, func(txn *dist.Txn) error {
		if err := txn.Invoke(ctx, f.nd.ID(), "slots", "set", slotArg{Slot: 2, Value: 42}, nil); err != nil {
			return err
		}
		return txn.Invoke(ctx, f.nd.ID(), "slots", "hold", slotArg{Slot: 2}, nil)
	}); err != nil {
		t.Fatal(err)
	}
	// Stage B modifies and fails: its own write is undone, A's stays.
	boom := errors.New("boom")
	err = chain.RunStage(ctx, func(txn *dist.Txn) error {
		if err := txn.Invoke(ctx, f.nd.ID(), "slots", "set", slotArg{Slot: 2, Value: 0}, nil); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if err := chain.Cancel(ctx); err != nil {
		t.Fatal(err)
	}
	m, _ := f.res.slot(2)
	if got := m.Peek(); got != 42 {
		t.Fatalf("slot 2 = %d, want A's committed 42", got)
	}
	if !f.outsiderCanWrite(ctx, 2) {
		t.Fatal("slot must be free after Cancel")
	}
}

func TestRemoteChainLifecycle(t *testing.T) {
	f := newChainFixture(t)
	ctx := context.Background()

	chain, err := f.coord.BeginRemoteChain()
	if err != nil {
		t.Fatal(err)
	}
	if got := chain.Stages(); got != 0 {
		t.Fatalf("Stages = %d", got)
	}
	if err := chain.RunStage(ctx, func(txn *dist.Txn) error {
		if txn.PassColour() == 0 {
			t.Error("stage txn must expose its pass colour")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := chain.Stages(); got != 1 {
		t.Fatalf("Stages = %d", got)
	}
	if err := chain.End(ctx); err != nil {
		t.Fatal(err)
	}
	if err := chain.End(ctx); !errors.Is(err, dist.ErrStructureEnded) {
		t.Fatalf("double End = %v", err)
	}
	err = chain.RunStage(ctx, func(*dist.Txn) error { return nil })
	if !errors.Is(err, dist.ErrStructureEnded) {
		t.Fatalf("RunStage after End = %v", err)
	}
}

func TestPlainTxnHasNoPassColour(t *testing.T) {
	f := newChainFixture(t)
	txn, err := f.coord.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if txn.PassColour() != 0 {
		t.Fatal("plain transactions have no pass colour")
	}
	_ = txn.Abort(context.Background())
	_ = ids.NodeID(0)
}
