package dist_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mca/internal/dist"
	"mca/internal/netsim"
	"mca/internal/node"
	"mca/internal/object"
	"mca/internal/rpc"
	"mca/internal/store"
)

// TestChaosTransfersConserveMoney is the randomized fault-injection
// stress test: concurrent distributed transfers run while participant
// nodes crash and restart at random. After the storm ends and every
// intention log drains, the committed (stable) balances must conserve
// the total — two-phase commit's all-or-nothing guarantee under
// fail-silence.
func TestChaosTransfersConserveMoney(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	// Both stable-store backings: the in-memory simulation and the
	// FileStore (real journal files and on-disk WAL replayed on every
	// restart).
	t.Run("memory", func(t *testing.T) { runChaosTransfers(t, false) })
	t.Run("file", func(t *testing.T) { runChaosTransfers(t, true) })
}

func runChaosTransfers(t *testing.T, fileBacked bool) {
	const (
		participants = 3
		initial      = 100
		workers      = 4
		stormFor     = 1200 * time.Millisecond
	)

	nw := netsim.New(netsim.Config{LossRate: 0.02, CorruptRate: 0.02, Seed: 1234})
	t.Cleanup(nw.Close)
	rpcOpts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 200 * time.Millisecond}
	newNode := func() (*node.Node, error) {
		opts := []node.Option{node.WithRPCOptions(rpcOpts)}
		if fileBacked {
			opts = append(opts, node.WithStableDir(t.TempDir()))
		}
		return node.New(nw, opts...)
	}

	coordNode, err := newNode()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coordNode.Stop)
	coord := dist.NewManager(coordNode)

	banks := make([]*bank, participants)
	nodes := make([]*node.Node, participants)
	for i := 0; i < participants; i++ {
		nd, err := newNode()
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(nd.Stop)
		mgr := dist.NewManager(nd)
		banks[i] = newBank(initial)
		nd.Host(banks[i])
		mgr.RegisterResource("bank", banks[i])
		nodes[i] = nd
	}

	ctx := context.Background()
	stop := make(chan struct{})

	// The storm: crash a random participant, let it stay down for a
	// while, restart it; repeat until told to stop.
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Duration(30+rng.Intn(60)) * time.Millisecond):
			}
			victim := nodes[rng.Intn(len(nodes))]
			victim.Crash()
			select {
			case <-stop:
				victim.Restart()
				return
			case <-time.After(time.Duration(30+rng.Intn(120)) * time.Millisecond):
			}
			victim.Restart()
		}
	}()

	// The workload: transfers between random banks; errors (aborts,
	// timeouts, recovering nodes) are expected and ignored — the
	// invariant must hold regardless.
	var workWG sync.WaitGroup
	var attempted, succeeded int64
	var counterMu sync.Mutex
	for w := 0; w < workers; w++ {
		workWG.Add(1)
		go func() {
			defer workWG.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				from := rng.Intn(participants)
				to := (from + 1 + rng.Intn(participants-1)) % participants
				err := coord.Run(ctx, func(txn *dist.Txn) error {
					if err := txn.Invoke(ctx, nodes[from].ID(), "bank", "add", addArg{Delta: -1}, nil); err != nil {
						return err
					}
					return txn.Invoke(ctx, nodes[to].ID(), "bank", "add", addArg{Delta: 1}, nil)
				})
				counterMu.Lock()
				attempted++
				if err == nil {
					succeeded++
				}
				counterMu.Unlock()
			}
		}()
	}

	time.Sleep(stormFor)
	close(stop)
	workWG.Wait()
	chaosWG.Wait()

	// Settle: everything up, all pending protocol state drained.
	for _, nd := range nodes {
		nd.Restart() // no-op when already up
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		pendingTotal := 0
		if _, err := coord.RecoverPending(ctx); err != nil {
			t.Fatal(err)
		}
		logs := []*store.Stable{coordNode.Stable()}
		for _, nd := range nodes {
			logs = append(logs, nd.Stable())
		}
		for _, st := range logs {
			pending, err := st.Intentions().Pending()
			if err != nil {
				t.Fatal(err)
			}
			pendingTotal += len(pending)
		}
		if pendingTotal == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("intention logs did not drain: %d records pending", pendingTotal)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// One final crash/restart cycle forces every bank to re-activate
	// from stable storage, so the in-memory view below is exactly the
	// committed state.
	for _, nd := range nodes {
		nd.Crash()
		nd.Restart()
	}
	waitForOpen := time.Now().Add(5 * time.Second)
	for {
		total := 0
		stale := false
		for i, b := range banks {
			m, err := object.Load[int](b.acctID, nodes[i].Stable())
			if err == nil {
				total += m.Peek()
			} else {
				// Never flushed: still at its initial value.
				total += initial
			}
			_ = stale
		}
		if total == participants*initial {
			t.Logf("chaos summary: attempted=%d succeeded=%d crashes=[%d %d %d] total=%d",
				attempted, succeeded, nodes[0].Crashes(), nodes[1].Crashes(), nodes[2].Crashes(), total)
			if succeeded == 0 {
				t.Fatal("no transfer ever succeeded: the storm was too strong to be meaningful")
			}
			return
		}
		if time.Now().After(waitForOpen) {
			t.Fatalf("committed balances do not conserve total: %d, want %d", total, participants*initial)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCommitOneCrashedParticipantCostsOneTimeout crashes one of four
// participants after every prepare succeeded: the phase-2 round must
// cost the whole commit a single call timeout (the crashed node's ack),
// not one timeout per participant, and the decision must stand.
func TestCommitOneCrashedParticipantCostsOneTimeout(t *testing.T) {
	const callTimeout = 250 * time.Millisecond
	opts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: callTimeout}
	coord, nodes := fanoutCluster(t, 4, opts)
	ctx := context.Background()

	coord.TestHooks = dist.Hooks{AfterPrepare: func() { nodes[0].Crash() }}
	txn, err := coord.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range nodes {
		if err := txn.Invoke(ctx, nd.ID(), "bank", "add", addArg{Delta: 1}, nil); err != nil {
			t.Fatal(err)
		}
	}

	start := time.Now()
	err = txn.Commit(ctx)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("Commit = %v, want nil (crashed participant is left to recovery)", err)
	}
	if elapsed >= 2*callTimeout {
		t.Fatalf("commit with one crashed participant took %v, want < %v (one call timeout, not N)", elapsed, 2*callTimeout)
	}
	if elapsed < callTimeout {
		t.Fatalf("commit took %v, expected to wait out the crashed participant's timeout (%v)", elapsed, callTimeout)
	}

	// Settle: the restarted participant resolves via the decision
	// record, the coordinator's re-drive forgets it.
	nodes[0].Restart()
	deadline := time.Now().Add(10 * time.Second)
	for {
		remaining, err := coord.RecoverPending(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if remaining == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator re-drive never drained: %d records pending", remaining)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestAbortWithCrashedParticipantsIsFlat crashes three of five
// participants before commit: the prepare round and the abort round
// each cost one call timeout regardless of how many nodes are dead (a
// serial fan-out would pay one timeout per dead node in the abort
// round alone).
func TestAbortWithCrashedParticipantsIsFlat(t *testing.T) {
	const callTimeout = 250 * time.Millisecond
	opts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: callTimeout}
	coord, nodes := fanoutCluster(t, 5, opts)
	ctx := context.Background()

	txn, err := coord.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range nodes {
		if err := txn.Invoke(ctx, nd.ID(), "bank", "add", addArg{Delta: 1}, nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, nd := range nodes[:3] {
		nd.Crash()
	}

	start := time.Now()
	err = txn.Commit(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, dist.ErrAborted) {
		t.Fatalf("Commit = %v, want ErrAborted", err)
	}
	// Parallel rounds: ~1 timeout for prepare + ~1 for the abort
	// broadcast. Serial rounds would need ≥ 4 (1 prepare + 3 aborts).
	if elapsed >= 3*callTimeout {
		t.Fatalf("abort with three crashed participants took %v, want < %v (flat in the number of dead nodes)", elapsed, 3*callTimeout)
	}
}
