package dist

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"mca/internal/action"
	"mca/internal/ids"
	"mca/internal/netsim"
	"mca/internal/node"
	"mca/internal/object"
	"mca/internal/rpc"
)

// freezeFixture is a minimal internal-package fixture: a coordinator and
// one participant hosting a single integer register, with direct access
// to the participant manager's RPC handlers so tests can deliver the
// late, re-ordered messages the transport layer would normally carry.
type freezeFixture struct {
	coord, part *Manager
	coordNode   *node.Node
	partNode    *node.Node
	regID       ids.ObjectID
	reg         *object.Managed[int]
}

func newFreezeFixture(t *testing.T) *freezeFixture {
	t.Helper()
	nw := netsim.New(netsim.Config{})
	t.Cleanup(nw.Close)
	opts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 300 * time.Millisecond}

	cn, err := node.New(nw, node.WithRPCOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cn.Stop)
	pn, err := node.New(nw, node.WithRPCOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pn.Stop)

	f := &freezeFixture{
		coord:     NewManager(cn),
		part:      NewManager(pn),
		coordNode: cn,
		partNode:  pn,
		regID:     ids.NewObjectID(),
	}
	f.reg = object.New(0, object.WithStore(pn.Stable()), object.WithID(f.regID))
	f.part.RegisterResource("reg", ResourceFunc(func(a *action.Action, op string, arg []byte) ([]byte, error) {
		var in struct {
			Delta int `json:"delta"`
		}
		if err := json.Unmarshal(arg, &in); err != nil {
			return nil, err
		}
		if err := f.reg.Write(a, func(v *int) error { *v += in.Delta; return nil }); err != nil {
			return nil, err
		}
		return []byte("{}"), nil
	}))
	return f
}

// invokeDirect delivers an invoke to the participant's handler as the
// transport would, bypassing the coordinator's Txn bookkeeping — the
// shape of a delayed or retransmitted message arriving out of order.
func (f *freezeFixture) invokeDirect(txn ids.ActionID, delta int) error {
	body, err := json.Marshal(invokeReq{
		Txn:      txn,
		Resource: "reg",
		Op:       "add",
		Arg:      json.RawMessage(`{"delta":` + jsonInt(delta) + `}`),
	})
	if err != nil {
		return err
	}
	_, err = f.part.handleInvoke(context.Background(), f.coordNode.ID(), body)
	return err
}

func jsonInt(v int) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestPrepareFreezesParticipant drives the participant handlers directly:
// once a node votes yes its write set is frozen — late invokes are
// rejected, and a duplicate prepare re-derives the same yes vote from the
// log instead of re-logging.
func TestPrepareFreezesParticipant(t *testing.T) {
	f := newFreezeFixture(t)
	txn := ids.NewActionID()

	if err := f.invokeDirect(txn, 5); err != nil {
		t.Fatalf("invoke: %v", err)
	}

	prepare, err := json.Marshal(prepareReq{Txn: txn, Coordinator: f.coordNode.ID()})
	if err != nil {
		t.Fatal(err)
	}
	vote := func() voteResp {
		t.Helper()
		raw, err := f.part.handlePrepare(context.Background(), f.coordNode.ID(), prepare)
		if err != nil {
			t.Fatalf("prepare: %v", err)
		}
		var v voteResp
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatal(err)
		}
		return v
	}

	if v := vote(); !v.OK {
		t.Fatal("first prepare must vote yes")
	}
	if err := f.invokeDirect(txn, 100); !errors.Is(err, ErrPrepared) {
		t.Fatalf("late invoke after prepare = %v, want ErrPrepared", err)
	}
	// A duplicate prepare (retransmission) re-derives yes from the log.
	if v := vote(); !v.OK {
		t.Fatal("duplicate prepare must re-derive the yes vote")
	}

	commit, err := json.Marshal(txnReq{Txn: txn})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.part.handleCommit(context.Background(), f.coordNode.ID(), commit); err != nil {
		t.Fatalf("commit: %v", err)
	}
	m, err := object.Load[int](f.regID, f.partNode.Stable())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(); got != 5 {
		t.Fatalf("committed value = %d, want 5 (the frozen write set)", got)
	}
}

// TestLateInvokeCannotDivergeFromLoggedWrites is the satellite-bug
// regression in its end-to-end form: before the fix, an invoke landing
// between the participant's yes vote and the coordinator's phase-2
// commit joined the still-Active action, so the live-commit path applied
// a write the logged (frozen) write set did not contain — a crashed
// participant replaying the log would then disagree with one that
// stayed up. The late invoke must be rejected and the committed state
// must equal the logged write set exactly.
func TestLateInvokeCannotDivergeFromLoggedWrites(t *testing.T) {
	f := newFreezeFixture(t)
	ctx := context.Background()

	txn, err := f.coord.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Invoke(ctx, f.partNode.ID(), "reg", "add", map[string]int{"delta": 5}, nil); err != nil {
		t.Fatal(err)
	}

	var lateErr error
	f.coord.TestHooks = Hooks{AfterPrepare: func() {
		// The participant has voted yes; the decision is not yet made.
		lateErr = f.invokeDirect(txn.ID(), 100)
	}}
	if err := txn.Commit(ctx); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if !errors.Is(lateErr, ErrPrepared) {
		t.Fatalf("late invoke in the prepare/commit window = %v, want ErrPrepared", lateErr)
	}

	// The live-commit result must equal the logged write set: +5, not
	// +105.
	m, err := object.Load[int](f.regID, f.partNode.Stable())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(); got != 5 {
		t.Fatalf("committed value = %d, want 5: live commit diverged from the logged write set", got)
	}
}
