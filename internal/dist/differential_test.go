package dist_test

import (
	"context"
	"testing"
	"time"

	"mca/internal/clock"
	"mca/internal/dist"
	"mca/internal/netsim"
	"mca/internal/node"
	"mca/internal/rpc"
	"mca/internal/trace"
)

// quickstartOutcome captures everything observable about one run of the
// quickstart's distributed-transfer path (examples/quickstart step 7):
// the commit result, the final balances, and the shape of the merged
// distributed trace.
type quickstartOutcome struct {
	err      error
	balances [3]int
	kinds    map[string]int // span kind -> count, wal.flush excluded
	orphans  int
	spans    []trace.Span
}

// runQuickstartPath runs a three-node 2PC transfer on a lossless
// zero-delay network under the given clock and reports the outcome.
// Under a clock.Fake that is never advanced the whole path must still
// complete: nothing on the commit path may depend on wall time passing.
func runQuickstartPath(t *testing.T, clk clock.Clock) quickstartOutcome {
	t.Helper()
	nw := netsim.New(netsim.Config{Clock: clk})
	defer nw.Close()

	rpcOpts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 300 * time.Millisecond}
	c := &cluster{net: nw}
	recs := [3]*trace.Recorder{}
	for i := 0; i < 3; i++ {
		recs[i] = trace.NewRecorder()
		nd, err := node.New(nw, node.WithRPCOptions(rpcOpts), node.WithTracer(recs[i]), node.WithClock(clk))
		if err != nil {
			t.Fatal(err)
		}
		defer nd.Stop()
		c.nodes[i] = nd
		mgr := dist.NewManager(nd)
		c.banks[i] = newBank(100)
		nd.Host(c.banks[i])
		mgr.RegisterResource("bank", c.banks[i])
		if i == 0 {
			c.coord = mgr
		} else {
			c.parts[i-1] = mgr
		}
	}

	out := quickstartOutcome{kinds: map[string]int{}}
	out.err = transfer(context.Background(), c, 1, 2, 30)
	for i := range c.banks {
		out.balances[i] = c.balanceAt(t, i)
	}
	for _, rec := range recs {
		out.spans = append(out.spans, rec.Spans()...)
	}
	tree := trace.Merge(out.spans)
	out.orphans = len(tree.Orphans)
	for _, s := range out.spans {
		if s.Kind == "wal.flush" {
			// Flush batching is a scheduling artefact, not program
			// behaviour: two identical runs may group records into a
			// different number of flushes. Everything else must match.
			continue
		}
		out.kinds[s.Kind]++
	}
	return out
}

// TestFakeAndRealClockAgreeOnQuickstartPath is the differential check
// behind the clock abstraction: the same distributed transfer, run once
// on the real clock and once on a virtual clock that never advances,
// must produce identical observable behaviour — same commit outcome,
// same final balances, same trace-tree shape. Only timestamps may
// differ, and in the fake run they must all sit exactly at the virtual
// epoch, proving every span on the path was stamped by the injected
// clock rather than by ambient time.
func TestFakeAndRealClockAgreeOnQuickstartPath(t *testing.T) {
	epoch := time.Date(2030, 6, 1, 0, 0, 0, 0, time.UTC)
	fake := clock.NewFakeAt(epoch)

	real := runQuickstartPath(t, clock.Real())
	virt := runQuickstartPath(t, fake)

	if real.err != nil || virt.err != nil {
		t.Fatalf("transfer errors: real=%v fake=%v, want both nil", real.err, virt.err)
	}
	if real.balances != virt.balances {
		t.Fatalf("final balances diverge: real=%v fake=%v", real.balances, virt.balances)
	}
	if want := [3]int{100, 70, 130}; virt.balances != want {
		t.Fatalf("balances = %v, want %v", virt.balances, want)
	}
	if real.orphans != 0 || virt.orphans != 0 {
		t.Fatalf("orphan spans: real=%d fake=%d, want 0/0", real.orphans, virt.orphans)
	}

	// Same tree shape: identical span-kind multiset (action spans have
	// kind "", rounds "round.*", RPCs "rpc.client"/"rpc.server").
	if len(real.kinds) != len(virt.kinds) {
		t.Fatalf("span kind sets diverge: real=%v fake=%v", real.kinds, virt.kinds)
	}
	for k, n := range real.kinds {
		if virt.kinds[k] != n {
			t.Fatalf("span kind %q: real=%d fake=%d (real=%v fake=%v)",
				k, n, virt.kinds[k], real.kinds, virt.kinds)
		}
	}

	// The virtual clock was never advanced, so every span in the fake
	// run — including WAL flushes — must be stamped exactly at the
	// epoch. A single diverging timestamp means some component on the
	// path read ambient time instead of its injected clock.
	for _, s := range virt.spans {
		if !s.Begin.Equal(epoch) {
			t.Fatalf("span %s/%s begins at %v, want the virtual epoch %v", s.Kind, s.Label, s.Begin, epoch)
		}
		if !s.End.IsZero() && !s.End.Equal(epoch) {
			t.Fatalf("span %s/%s ends at %v, want the virtual epoch %v", s.Kind, s.Label, s.End, epoch)
		}
	}
	// And the real run's spans must not sit at the fake epoch.
	for _, s := range real.spans {
		if s.Begin.Equal(epoch) {
			t.Fatalf("real-clock span %s/%s stamped at the virtual epoch", s.Kind, s.Label)
		}
	}
}
