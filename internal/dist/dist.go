// Package dist implements distributed atomic actions across simulated
// nodes: remote object invocation over RPC and a presumed-abort
// two-phase commit protocol with crash recovery from intention logs
// (the "commit protocol required during the termination of an atomic
// action" of paper §2).
//
// Every node runs a Manager, which plays both roles:
//
//   - participant: hosts named resources; remote invocations execute
//     under a node-local participant action holding local locks; prepare
//     forces the action's write set to the node's intention log;
//   - coordinator: Begin starts a distributed action; Invoke routes
//     operations to resources (local or remote); Commit runs two-phase
//     commit — prepare everywhere, force the decision with the
//     participant list, complete everywhere.
//
// Crash recovery: a restarting participant resolves in-doubt (prepared)
// actions by asking the coordinator for the decision, applying the
// logged write set on commit and discarding it otherwise (presumed
// abort). A restarting coordinator re-drives the completion phase of
// every decided-but-unacknowledged action.
package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"mca/internal/action"
	"mca/internal/clock"
	"mca/internal/colour"
	"mca/internal/ids"
	"mca/internal/node"
	"mca/internal/rpc"
	"mca/internal/store"
	"mca/internal/trace"
)

// Errors reported by the distributed action layer.
var (
	// ErrAborted is returned by Commit when the action was aborted
	// (a participant voted no or was unreachable).
	ErrAborted = errors.New("dist: action aborted")
	// ErrDone is returned for operations on a completed transaction.
	ErrDone = errors.New("dist: transaction already completed")
	// ErrRecovering is returned to remote invokers while the node is
	// resolving in-doubt actions after a restart.
	ErrRecovering = errors.New("dist: node recovering")
	// ErrPrepared is returned for invokes on a transaction this
	// participant has already voted yes on: the logged write set is
	// frozen, so no further mutation may join the action.
	ErrPrepared = errors.New("dist: transaction already prepared")
	// ErrNoResource is returned when the named resource is not
	// registered at the target node.
	ErrNoResource = errors.New("dist: no such resource")
)

// RPC method names.
const (
	methodInvoke   = "dist.invoke"
	methodPrepare  = "dist.prepare"
	methodCommit   = "dist.commit"
	methodAbort    = "dist.abort"
	methodDecision = "dist.decision"
)

// Resource serves operations on application objects hosted at a node.
// Implementations run op under the given node-local action: they lock
// and update managed objects through it, and the commit protocol takes
// care of the rest.
type Resource interface {
	Invoke(a *action.Action, op string, arg []byte) ([]byte, error)
}

// ResourceFunc adapts a function to Resource.
type ResourceFunc func(a *action.Action, op string, arg []byte) ([]byte, error)

// Invoke implements Resource.
func (f ResourceFunc) Invoke(a *action.Action, op string, arg []byte) ([]byte, error) {
	return f(a, op, arg)
}

var _ Resource = ResourceFunc(nil)

// Hooks are fault-injection points for crash-matrix tests: each, when
// non-nil, runs at the named moment of the coordinator's commit
// processing.
type Hooks struct {
	// AfterPrepare runs after every participant voted yes, before the
	// decision is forced.
	AfterPrepare func()
	// AfterDecision runs after the commit record is durable, before
	// the completion phase.
	AfterDecision func()
}

// Manager is the per-node engine for distributed actions.
type Manager struct {
	// TestHooks injects faults between commit phases; nil fields are
	// ignored. Set it only from tests, before driving transactions.
	TestHooks Hooks

	// ParallelFanout makes every coordinator round (prepare, phase-2
	// commit, abort, recovery re-drive, structure end) issue its RPCs
	// concurrently instead of serially, so a round costs one
	// round-trip rather than the sum over participants. On by default;
	// set before driving transactions.
	ParallelFanout bool
	// MaxFanout bounds a round's concurrent RPCs (default 16). Set
	// before driving transactions.
	MaxFanout int
	// OnRound, when non-nil, receives the outcome of every coordinator
	// fan-out round (e.g. trace.Recorder.ObserveRound). Set before
	// driving transactions.
	OnRound trace.RoundObserver

	mu        sync.Mutex
	node      *node.Node
	// clk is the time source for recovery retries and round metrics,
	// inherited from the hosting node in Register so a simulated node
	// drives the manager's timers too.
	clk clock.Clock
	// tracer is the hosting node's distributed-trace recorder
	// (node.WithTracer), nil when the node is untraced. Picked up in
	// Register so a Restart re-resolves it.
	tracer    *trace.Recorder
	resources map[string]Resource
	active    map[ids.ActionID]*participantState // participant actions
	// containers are this node's volatile container actions for
	// distributed structures, and passColours maps a structured
	// participant action to the colour resource handlers retain
	// objects in (see structured.go).
	containers  map[StructureID]*action.Action
	passColours map[ids.ActionID]colour.Colour
	recovering  bool
	// tombstones records recently aborted transactions so that a late
	// (re-ordered or retransmitted) invoke cannot resurrect a
	// participant action after the coordinator's abort was processed.
	tombstones     map[ids.ActionID]struct{}
	tombstoneOrder []ids.ActionID
}

// maxTombstones bounds the aborted-transaction memory; old entries
// expire FIFO. 4096 far exceeds any realistic in-flight window of the
// simulation.
const maxTombstones = 4096

// participantState is one live participant action plus its commit-
// protocol phase. prepared flips when this node votes yes: from then on
// the logged write set is frozen and late invokes are rejected, so the
// live-commit path can never apply effects the crash-replay path
// (ApplyBatch of the logged writes) would not.
type participantState struct {
	a        *action.Action
	prepared bool
}

var _ node.Service = (*Manager)(nil)

// NewManager builds a manager and installs it on the node. A freshly
// installed manager is open immediately (a brand-new node has no
// in-doubt state); after a crash, node.Restart runs the recovery hook.
func NewManager(n *node.Node) *Manager {
	m := &Manager{
		ParallelFanout: true,
		MaxFanout:      defaultMaxFanout,
		clk:            clock.Real(),
		resources:      make(map[string]Resource),
		active:         make(map[ids.ActionID]*participantState),
		containers:     make(map[StructureID]*action.Action),
		passColours:    make(map[ids.ActionID]colour.Colour),
		tombstones:     make(map[ids.ActionID]struct{}),
	}
	n.Host(m)
	m.mu.Lock()
	m.recovering = false
	m.mu.Unlock()
	return m
}

// Node returns the hosting node.
func (m *Manager) Node() *node.Node {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.node
}

// traceRecorder returns the node's trace recorder, nil when untraced.
func (m *Manager) traceRecorder() *trace.Recorder {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tracer
}

// clock returns the manager's time source.
func (m *Manager) clock() clock.Clock {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.clk
}

// RegisterResource installs a named resource at this node.
func (m *Manager) RegisterResource(name string, r Resource) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.resources[name] = r
}

// Register implements node.Service.
func (m *Manager) Register(n *node.Node, p *rpc.Peer) {
	m.mu.Lock()
	m.node = n
	m.clk = n.Clock()
	m.tracer = n.Tracer()
	// Participant actions and structure containers died with the
	// volatile memory.
	m.active = make(map[ids.ActionID]*participantState)
	m.containers = make(map[StructureID]*action.Action)
	m.passColours = make(map[ids.ActionID]colour.Colour)
	m.recovering = true
	m.mu.Unlock()

	p.Handle(methodInvoke, m.handleInvoke)
	p.Handle(methodPrepare, m.handlePrepare)
	p.Handle(methodCommit, m.handleCommit)
	p.Handle(methodAbort, m.handleAbort)
	p.Handle(methodDecision, m.handleDecision)
	p.Handle(methodEndStructure, m.handleEndStructure)
	p.Handle(methodAbortStructure, m.handleAbortStructure)
}

// Recover implements node.Service: it resolves in-doubt participant
// records and re-drives unfinished coordinator decisions, then opens the
// node for new work. While records remain unresolved (e.g. the
// coordinator is down), the node stays closed to new transactions —
// in-doubt objects have lost their locks with the volatile memory, so
// serving new work before resolution could interleave with the pending
// write sets — and a background loop keeps retrying until ctx (the
// node's lifetime) ends, so another crash cannot strand the loop.
//
// Note: a write set applied by late resolution reaches stable storage
// but not object instances already re-activated by other services;
// their next re-activation reads the repaired state.
func (m *Manager) Recover(ctx context.Context, n *node.Node) {
	remaining, err := m.RecoverPending(ctx)
	if err == nil && remaining == 0 {
		m.mu.Lock()
		m.recovering = false
		m.mu.Unlock()
		return
	}
	go func() {
		ticker := m.clock().NewTicker(25 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				// The node crashed again or shut down; the next
				// Restart runs Recover afresh.
				return
			case <-ticker.C():
			}
			remaining, err := m.RecoverPending(ctx)
			if err != nil {
				// Transient trouble (the store crashed again briefly,
				// RPC noise): keep retrying. Returning here would
				// strand the node in recovering forever — a permanent
				// crash cancels ctx and ends the loop above instead.
				continue
			}
			if remaining == 0 {
				m.mu.Lock()
				m.recovering = false
				m.mu.Unlock()
				return
			}
		}
	}()
}

// --- wire types ---

type invokeReq struct {
	Txn      ids.ActionID    `json:"txn"`
	Resource string          `json:"resource"`
	Op       string          `json:"op"`
	Arg      json.RawMessage `json:"arg"`
	// Structure, when non-nil, mirrors the coordinator-side colour
	// scheme at the participant (distributed serializing actions).
	Structure *structureInfo `json:"structure,omitempty"`
}

type invokeResp struct {
	Result json.RawMessage `json:"result"`
}

type prepareReq struct {
	Txn         ids.ActionID `json:"txn"`
	Coordinator ids.NodeID   `json:"coordinator"`
}

type voteResp struct {
	OK bool `json:"ok"`
	// ReadOnly marks a yes vote from a participant with no writes: it
	// committed locally at prepare (releasing its locks) and must be
	// excluded from the decision record and phase 2.
	ReadOnly bool `json:"ro,omitempty"`
}

type txnReq struct {
	Txn ids.ActionID `json:"txn"`
}

type decisionResp struct {
	Committed bool `json:"committed"`
}

type ackResp struct{}

// --- participant role ---

// participantAction resolves (or creates) the node-local action serving
// the distributed transaction. caller, when valid, is the invoking
// span (the RPC server span): a freshly created action joins the
// caller's distributed trace as its child, so the participant's local
// work exports under the coordinator's TraceID.
func (m *Manager) participantAction(txn ids.ActionID, caller trace.Context, info *structureInfo) (*action.Action, error) {
	// Resolve (or create) the structure container chain first.
	var container *action.Action
	if info != nil {
		var err error
		container, err = m.structureContainer(info)
		if err != nil {
			return nil, err
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.recovering {
		return nil, ErrRecovering
	}
	if _, dead := m.tombstones[txn]; dead {
		return nil, fmt.Errorf("%w (txn %v)", ErrAborted, txn)
	}
	if ps, ok := m.active[txn]; ok {
		if ps.prepared {
			// Frozen: this node already voted yes with a logged write
			// set; a late invoke may not mutate beyond it.
			return nil, fmt.Errorf("%w (txn %v)", ErrPrepared, txn)
		}
		return ps.a, nil
	}
	var (
		a   *action.Action
		err error
	)
	if info != nil {
		// Mirror the coordinator-side colouring under this node's
		// container (fig 11 for serializing, fig 12 for glued).
		opts := []action.BeginOption{
			action.WithColours(info.Write, info.Container),
			action.WithWriteColour(info.Write),
		}
		if info.ReadOwn {
			opts = append(opts, action.WithReadColour(info.Write))
		} else {
			opts = append(opts, action.WithReadColour(info.Container))
		}
		if info.Companion {
			opts = append(opts, action.WithWriteCompanion(info.Container))
		}
		a, err = container.Begin(opts...)
	} else {
		a, err = m.node.Runtime().Begin()
	}
	if err != nil {
		return nil, err
	}
	m.active[txn] = &participantState{a: a}
	if info != nil {
		m.passColours[a.ID()] = info.Container
	}
	if m.tracer != nil && caller.Valid() {
		m.tracer.JoinTrace(a.ID(), caller)
	}
	return a, nil
}

// bury tombstones an aborted transaction and returns its participant
// action, if it was live.
func (m *Manager) bury(txn ids.ActionID) (*action.Action, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.tombstones[txn]; !dup {
		m.tombstones[txn] = struct{}{}
		m.tombstoneOrder = append(m.tombstoneOrder, txn)
		for len(m.tombstoneOrder) > maxTombstones {
			delete(m.tombstones, m.tombstoneOrder[0])
			m.tombstoneOrder = m.tombstoneOrder[1:]
		}
	}
	ps, ok := m.active[txn]
	if ok {
		delete(m.active, txn)
		delete(m.passColours, ps.a.ID())
		return ps.a, true
	}
	return nil, false
}

func (m *Manager) takeActive(txn ids.ActionID) (*action.Action, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps, ok := m.active[txn]
	if ok {
		delete(m.active, txn)
		delete(m.passColours, ps.a.ID())
		return ps.a, true
	}
	return nil, false
}

// freezeActive marks the transaction prepared (rejecting further
// invokes) and returns its participant state. alreadyPrepared reports a
// repeated prepare.
func (m *Manager) freezeActive(txn ids.ActionID) (ps *participantState, alreadyPrepared, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps, ok = m.active[txn]
	if !ok {
		return nil, false, false
	}
	alreadyPrepared = ps.prepared
	ps.prepared = true
	return ps, alreadyPrepared, true
}

func (m *Manager) handleInvoke(ctx context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
	var req invokeReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("decode invoke: %w", err)
	}
	m.mu.Lock()
	res, ok := m.resources[req.Resource]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoResource, req.Resource)
	}
	// The RPC layer injected the server span's context into ctx; the
	// participant action joins the caller's trace under it.
	caller, _ := trace.FromContext(ctx)
	a, err := m.participantAction(req.Txn, caller, req.Structure)
	if err != nil {
		return nil, err
	}
	out, err := res.Invoke(a, req.Op, req.Arg)
	if err != nil {
		return nil, err
	}
	resp, err := json.Marshal(invokeResp{Result: out})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

func (m *Manager) handlePrepare(_ context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
	var req prepareReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("decode prepare: %w", err)
	}
	vote := voteResp{OK: false}
	log := m.Node().Stable().Intentions()
	ps, alreadyPrepared, ok := m.freezeActive(req.Txn)
	switch {
	case !ok:
		// Unknown action (e.g. lost to a crash): vote no — presumed
		// abort.
	case alreadyPrepared:
		// Repeated prepare: re-derive the earlier vote from the log (a
		// record means we voted yes as a writer; a read-only yes never
		// keeps the action live, so it cannot reach here).
		in, found, err := log.Lookup(req.Txn)
		vote.OK = err == nil && found && in.Status == store.IntentionPrepared
	case ps.a.Status() != action.Active:
		// The action died locally (e.g. deadlock abort): vote no.
	case !ps.a.HasWrites():
		// Read-only participant: nothing to log, nothing to redo or
		// undo. Commit locally right now — releasing its locks — and
		// tell the coordinator to exclude this node from the decision
		// record and phase 2 (presumed-abort read-only optimisation).
		if a, live := m.bury(req.Txn); live {
			if err := a.Commit(); err == nil {
				vote.OK = true
				vote.ReadOnly = true
				readonlyVotes.Inc()
			}
		}
	default:
		writes, err := ps.a.PendingWrites()
		if err == nil {
			err = log.Record(store.Intention{
				Action:      req.Txn,
				Status:      store.IntentionPrepared,
				Writes:      writes,
				Coordinator: req.Coordinator,
			})
			// The YES vote is derived strictly after the log force
			// (mcalint's forceorder rule); on the PendingWrites error
			// path the initializer's NO stands.
			vote.OK = err == nil
		}
	}
	return json.Marshal(vote)
}

func (m *Manager) handleCommit(_ context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
	var req txnReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("decode commit: %w", err)
	}
	if err := m.commitParticipant(req.Txn); err != nil {
		return nil, err
	}
	return json.Marshal(ackResp{})
}

// commitParticipant applies the commit decision locally: through the
// live action when it survived, or by replaying the logged write set
// after a crash. Idempotent.
func (m *Manager) commitParticipant(txn ids.ActionID) error {
	// Fetch the node through the guarded accessor: Register (node
	// restart) swaps m.node while late handler goroutines of the old
	// peer may still be draining.
	nd := m.Node()
	log := nd.Stable().Intentions()
	if a, ok := m.takeActive(txn); ok && a.Status() == action.Active {
		if err := a.Commit(); err != nil {
			return fmt.Errorf("apply commit: %w", err)
		}
		return log.Forget(txn)
	}
	in, ok, err := log.Lookup(txn)
	if err != nil {
		return err
	}
	if !ok {
		return nil // already completed (duplicate commit)
	}
	if err := nd.Stable().ApplyBatch(in.Writes); err != nil {
		return fmt.Errorf("replay write set: %w", err)
	}
	return log.Forget(txn)
}

func (m *Manager) handleAbort(_ context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
	var req txnReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("decode abort: %w", err)
	}
	if a, ok := m.bury(req.Txn); ok {
		_ = a.Abort()
	}
	if err := m.Node().Stable().Intentions().Forget(req.Txn); err != nil {
		return nil, err
	}
	return json.Marshal(ackResp{})
}

func (m *Manager) handleDecision(_ context.Context, _ ids.NodeID, body []byte) ([]byte, error) {
	var req txnReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("decode decision: %w", err)
	}
	in, ok, err := m.Node().Stable().Intentions().Lookup(req.Txn)
	if err != nil {
		return nil, err
	}
	// Presumed abort: no record means aborted (or long since
	// completed and forgotten — the participant asking still holds a
	// prepared record, and a committed action is only forgotten after
	// every participant acknowledged, so "no record" is safe to read
	// as aborted).
	committed := ok && in.Status == store.IntentionCommitted
	return json.Marshal(decisionResp{Committed: committed})
}

// --- coordinator role ---

// Txn is a distributed atomic action driven from this node.
type Txn struct {
	mgr   *Manager
	local *action.Action
	// tc is the transaction's root span in the distributed trace (zero
	// when the hosting node is untraced): every commit-protocol round
	// and remote invocation runs under a child of it.
	tc trace.Context

	mu sync.Mutex
	// participants maps every contacted node to whether at least one
	// invocation at it succeeded. Successful participants take part in
	// the commit protocol; failed-contact ones (the call errored, but
	// the operation may still have executed remotely) only ever
	// receive an abort, so no orphaned participant action survives.
	participants map[ids.NodeID]bool
	order        []ids.NodeID
	done         bool

	// structure, when non-nil, makes this transaction a constituent
	// of a distributed structure: remote participant actions mirror
	// its colour scheme (see structured.go).
	structure *structureInfo
	// onEnlist notifies the owning structure of every node touched.
	onEnlist func(ids.NodeID)
}

// Begin starts a distributed atomic action coordinated by this node.
func (m *Manager) Begin() (*Txn, error) {
	m.mu.Lock()
	if m.recovering {
		m.mu.Unlock()
		return nil, ErrRecovering
	}
	rt := m.node.Runtime()
	m.mu.Unlock()
	local, err := rt.Begin()
	if err != nil {
		return nil, err
	}
	t := &Txn{mgr: m, local: local, participants: make(map[ids.NodeID]bool)}
	if rec := m.traceRecorder(); rec != nil {
		t.tc = rec.StartTrace(local.ID())
	}
	return t, nil
}

// ID returns the distributed action's identifier (its coordinator-local
// action identifier, unique across the simulation).
func (t *Txn) ID() ids.ActionID { return t.local.ID() }

// Action returns the coordinator-local action, for operating on objects
// hosted at the coordinator itself.
func (t *Txn) Action() *action.Action { return t.local }

// Participants returns the remote nodes with at least one successful
// invocation so far.
func (t *Txn) Participants() []ids.NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []ids.NodeID
	for _, n := range t.order {
		if t.participants[n] {
			out = append(out, n)
		}
	}
	return out
}

// enlist records a contact with node n; ok upgrades it to a full
// participant and is never downgraded (any successful invocation means
// the node holds part of the action's effects).
func (t *Txn) enlist(n ids.NodeID, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	prev, known := t.participants[n]
	if !known {
		t.order = append(t.order, n)
	}
	t.participants[n] = prev || ok
}

// split returns the successful participants and the failed-contact
// nodes.
func (t *Txn) split() (succeeded, failed []ids.NodeID) {
	for _, n := range t.order {
		if t.participants[n] {
			succeeded = append(succeeded, n)
		} else {
			failed = append(failed, n)
		}
	}
	return succeeded, failed
}

// Invoke runs op on the named resource at the target node as part of
// this action. arg is JSON-marshalled; the reply is unmarshalled into
// result when non-nil. Local targets execute directly under the
// coordinator action.
func (t *Txn) Invoke(ctx context.Context, target ids.NodeID, resource, op string, arg, result any) error {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return ErrDone
	}
	t.mu.Unlock()

	argBytes, err := json.Marshal(arg)
	if err != nil {
		return fmt.Errorf("dist: marshal arg: %w", err)
	}

	if target == t.mgr.Node().ID() {
		t.mgr.mu.Lock()
		res, ok := t.mgr.resources[resource]
		t.mgr.mu.Unlock()
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoResource, resource)
		}
		out, err := res.Invoke(t.local, op, argBytes)
		if err != nil {
			return err
		}
		if result != nil && out != nil {
			return json.Unmarshal(out, result)
		}
		return nil
	}

	req := invokeReq{Txn: t.ID(), Resource: resource, Op: op, Arg: argBytes, Structure: t.structure}
	if t.tc.Valid() {
		// The invocation runs under the transaction's root span; the
		// RPC layer derives the call's own child span from it.
		ctx = trace.Inject(ctx, t.tc)
	}
	var resp invokeResp
	if err := t.mgr.Node().Peer().Call(ctx, target, methodInvoke, req, &resp); err != nil {
		// The call failed but may still have executed remotely:
		// remember the contact so completion sends it an abort.
		t.enlist(target, false)
		return err
	}
	t.enlist(target, true)
	if t.onEnlist != nil {
		t.onEnlist(target)
	}
	if result != nil && resp.Result != nil {
		return json.Unmarshal(resp.Result, result)
	}
	return nil
}

// Commit runs two-phase commit. On success the action's effects are
// permanent everywhere (participants that were unreachable during the
// completion phase are re-driven by coordinator recovery). On any
// prepare failure the action aborts everywhere and ErrAborted is
// returned.
func (t *Txn) Commit(ctx context.Context) error {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return ErrDone
	}
	t.done = true
	participants, failedContacts := t.split()
	t.mu.Unlock()

	peer := t.mgr.Node().Peer()
	log := t.mgr.Node().Stable().Intentions()

	// Failed contacts never joined the action's outcome: make sure any
	// ghost execution there is aborted (best effort; presumed abort
	// covers the rest). Done asynchronously so a dead node cannot
	// stall the commit.
	t.abortAsync(failedContacts)

	clk := t.mgr.clock()
	start := clk.Now()

	// Phase 1: prepare every remote participant, fanning out
	// concurrently. The first NO vote or error cancels the round so
	// in-flight prepares stop retransmitting; the outcome is already
	// decided. Read-only voters commit at prepare and drop out of the
	// rest of the protocol.
	coordID := t.mgr.Node().ID()
	var (
		voteMu   sync.Mutex
		readOnly map[ids.NodeID]bool
	)
	prepared := t.mgr.fanout(ctx, trace.RoundPrepare, t.ID(), t.tc, participants, true,
		func(ctx context.Context, p ids.NodeID) error {
			var vote voteResp
			if err := peer.Call(ctx, p, methodPrepare, prepareReq{Txn: t.ID(), Coordinator: coordID}, &vote); err != nil {
				return err
			}
			if !vote.OK {
				return errVotedNo
			}
			if vote.ReadOnly {
				voteMu.Lock()
				if readOnly == nil {
					readOnly = make(map[ids.NodeID]bool)
				}
				readOnly[p] = true
				voteMu.Unlock()
			}
			return nil
		})
	// Writers are the participants still holding effects; read-only
	// voters are already done and must not see another round.
	writers := withoutNodes(participants, readOnly)
	if p, err, failed := firstFailure(prepared); failed {
		t.abortEverywhere(ctx, writers)
		txnAborts.Inc()
		if errors.Is(err, errVotedNo) {
			return fmt.Errorf("%w: participant %v voted no", ErrAborted, p)
		}
		return fmt.Errorf("%w: prepare %v: %v", ErrAborted, p, err)
	}

	if h := t.mgr.TestHooks.AfterPrepare; h != nil {
		h()
	}

	// Decision point: force the commit record with the writer list.
	// From here the action is committed. The record also carries the
	// coordinator's own write set, so coordinator recovery can redo the
	// local leg if the crash beat the local journal force.
	if len(writers) > 0 {
		localWrites, err := t.local.PendingWrites()
		if err == nil {
			err = log.Record(store.Intention{
				Action:       t.ID(),
				Status:       store.IntentionCommitted,
				Writes:       localWrites,
				Coordinator:  coordID,
				Participants: writers,
				// Persist the trace identity with the decision, so a
				// recovery re-drive continues the original trace.
				TraceID:   t.tc.TraceID,
				TraceSpan: t.tc.SpanID,
			})
		}
		if err != nil {
			t.abortEverywhere(ctx, writers)
			txnAborts.Inc()
			return fmt.Errorf("%w: force decision: %v", ErrAborted, err)
		}
	}

	if h := t.mgr.TestHooks.AfterDecision; h != nil {
		h()
	}

	// Apply locally (coordinator's own write set).
	if err := t.local.Commit(); err != nil {
		// The decision is already durable; local application failed
		// (e.g. local store crashed). The distributed action is
		// committed; local repair happens via the journal/recovery.
		return fmt.Errorf("dist: local apply after decision: %w", err)
	}

	// Phase 2: complete, fanning out concurrently. Unreachable
	// participants are left to recovery (the decision record keeps the
	// list), so the round never short-circuits.
	if len(writers) > 0 {
		acked := t.mgr.fanout(ctx, trace.RoundCommit, t.ID(), t.tc, writers, false,
			func(ctx context.Context, p ids.NodeID) error {
				return peer.Call(ctx, p, methodCommit, txnReq{Txn: t.ID()}, nil)
			})
		if _, _, failed := firstFailure(acked); !failed {
			if err := log.Forget(t.ID()); err != nil {
				txnCommits.Inc()
				commitNs.ObserveDurationWithExemplar(clk.Since(start), t.tc.TraceID)
				return nil // commit succeeded; forgetting is housekeeping
			}
		}
	}
	txnCommits.Inc()
	commitNs.ObserveDurationWithExemplar(clk.Since(start), t.tc.TraceID)
	return nil
}

// withoutNodes returns nodes minus the dropped set, preserving order.
func withoutNodes(nodes []ids.NodeID, drop map[ids.NodeID]bool) []ids.NodeID {
	if len(drop) == 0 {
		return nodes
	}
	out := make([]ids.NodeID, 0, len(nodes))
	for _, n := range nodes {
		if !drop[n] {
			out = append(out, n)
		}
	}
	return out
}

// Abort terminates the distributed action undoing its effects
// everywhere (best effort remotely: participants that miss the message
// resolve via presumed abort).
func (t *Txn) Abort(ctx context.Context) error {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return nil
	}
	t.done = true
	participants, failedContacts := t.split()
	t.mu.Unlock()

	t.abortAsync(failedContacts)
	t.abortEverywhere(ctx, participants)
	txnAborts.Inc()
	return nil
}

func (t *Txn) abortEverywhere(ctx context.Context, participants []ids.NodeID) {
	peer := t.mgr.Node().Peer()
	t.mgr.fanout(ctx, trace.RoundAbort, t.ID(), t.tc, participants, false,
		func(ctx context.Context, p ids.NodeID) error {
			return peer.Call(ctx, p, methodAbort, txnReq{Txn: t.ID()}, nil)
		})
	_ = t.local.Abort()
}

// abortAsyncTimeout bounds each background abort probe. The targets are
// nodes that are likely dead or partitioned; without a deadline a hung
// peer would pin the probing goroutine forever (presumed abort already
// covers nodes the probe cannot reach).
const abortAsyncTimeout = 2 * time.Second

// abortAsync sends aborts in the background, for nodes that are likely
// dead or partitioned: the sender must not block on them, and the
// probes must not inherit the commit path's cancellation — they run on
// their own bounded contexts.
func (t *Txn) abortAsync(nodes []ids.NodeID) {
	if len(nodes) == 0 {
		return
	}
	peer := t.mgr.Node().Peer()
	id := t.ID()
	for _, p := range nodes {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), abortAsyncTimeout)
			defer cancel()
			//mcalint:ignore errdrop best-effort ghost abort; presumed abort resolves the participant either way
			_ = peer.Call(ctx, p, methodAbort, txnReq{Txn: id}, nil)
		}()
	}
}

// --- recovery ---

// RecoverPending resolves this node's pending intention records: as
// participant it asks coordinators for decisions; as coordinator it
// re-drives completion. It returns the number of records still pending
// (e.g. because a coordinator is unreachable).
func (m *Manager) RecoverPending(ctx context.Context) (int, error) {
	nd := m.Node()
	log := nd.Stable().Intentions()
	pending, err := log.Pending()
	if err != nil {
		return 0, err
	}
	remaining := 0
	for _, in := range pending {
		switch {
		case in.Coordinator == nd.ID() && in.Status == store.IntentionCommitted:
			// Redo the coordinator's own leg first: the decision record
			// carries the local write set, so a crash that beat the
			// local journal force is repaired here. Idempotent — the
			// batch rewrites full object states.
			if err := nd.Stable().ApplyBatch(in.Writes); err != nil {
				remaining++
				continue
			}
			// Coordinator role: re-drive completion, fanning out
			// concurrently so one dead participant costs one timeout
			// for the whole round, not one per participant. The
			// decision record carries the transaction's original trace
			// identity, so the re-drive round continues that trace.
			tc := trace.Context{TraceID: in.TraceID, SpanID: in.TraceSpan}
			acked := m.fanout(ctx, trace.RoundRecover, in.Action, tc, in.Participants, false,
				func(ctx context.Context, p ids.NodeID) error {
					return nd.Peer().Call(ctx, p, methodCommit, txnReq{Txn: in.Action}, nil)
				})
			if _, _, failed := firstFailure(acked); !failed {
				//mcalint:ignore errdrop forgetting is housekeeping; a kept record is re-driven next recovery pass
				_ = log.Forget(in.Action)
			} else {
				remaining++
			}
		case in.Coordinator != nd.ID() && in.Status == store.IntentionPrepared:
			// Participant role: in doubt — ask the coordinator.
			var dec decisionResp
			if err := nd.Peer().Call(ctx, in.Coordinator, methodDecision, txnReq{Txn: in.Action}, &dec); err != nil {
				remaining++ // coordinator unreachable: stay in doubt
				continue
			}
			if dec.Committed {
				if err := nd.Stable().ApplyBatch(in.Writes); err != nil {
					remaining++
					continue
				}
			}
			//mcalint:ignore errdrop forgetting is housekeeping; a kept record re-asks the coordinator next pass
			_ = log.Forget(in.Action)
		default:
			// Stale record in a shape recovery does not own (e.g. a
			// participant's own committed marker): drop it.
			//mcalint:ignore errdrop dropping a stale record is best effort; it is retried next recovery pass
			_ = log.Forget(in.Action)
		}
	}
	if remaining > 0 {
		recoverHeld.Inc()
	}
	return remaining, nil
}

// Run executes fn inside a distributed action, committing on nil and
// aborting on error or panic.
func (m *Manager) Run(ctx context.Context, fn func(*Txn) error) error {
	t, err := m.Begin()
	if err != nil {
		return err
	}
	defer func() {
		if r := recover(); r != nil {
			_ = t.Abort(ctx)
			panic(r)
		}
	}()
	if err := fn(t); err != nil {
		_ = t.Abort(ctx)
		return err
	}
	return t.Commit(ctx)
}
