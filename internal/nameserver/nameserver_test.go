package nameserver_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"mca/internal/dist"
	"mca/internal/ids"
	"mca/internal/nameserver"
	"mca/internal/netsim"
	"mca/internal/node"
	"mca/internal/rpc"
)

type fixture struct {
	net     *netsim.Network
	app     *dist.Manager // the application's node
	client  *nameserver.Client
	nsNodes []*node.Node
	servers []*nameserver.Server
}

func newFixture(t *testing.T, replicas int) *fixture {
	t.Helper()
	nw := netsim.New(netsim.Config{})
	t.Cleanup(nw.Close)
	opts := rpc.Options{RetryInterval: 5 * time.Millisecond, CallTimeout: 200 * time.Millisecond}

	appNode, err := node.New(nw, node.WithRPCOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(appNode.Stop)
	f := &fixture{net: nw, app: dist.NewManager(appNode)}

	var members []ids.NodeID
	for i := 0; i < replicas; i++ {
		nd, err := node.New(nw, node.WithRPCOptions(opts))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(nd.Stop)
		mgr := dist.NewManager(nd)
		f.servers = append(f.servers, nameserver.NewServer(nd, mgr))
		f.nsNodes = append(f.nsNodes, nd)
		members = append(members, nd.ID())
	}
	f.client = nameserver.NewClient(f.app, members...)
	return f
}

func TestAddLookupRemove(t *testing.T) {
	f := newFixture(t, 3)
	ctx := context.Background()

	if err := f.client.Add(ctx, "service/db", "node-7"); err != nil {
		t.Fatalf("Add: %v", err)
	}
	got, err := f.client.Lookup(ctx, "service/db")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if got != "node-7" {
		t.Fatalf("Lookup = %q", got)
	}

	if err := f.client.Remove(ctx, "service/db"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := f.client.Lookup(ctx, "service/db"); !errors.Is(err, nameserver.ErrNotFound) {
		t.Fatalf("Lookup after remove = %v, want ErrNotFound", err)
	}
}

func TestLookupUnbound(t *testing.T) {
	f := newFixture(t, 1)
	if _, err := f.client.Lookup(context.Background(), "ghost"); !errors.Is(err, nameserver.ErrNotFound) {
		t.Fatalf("Lookup = %v, want ErrNotFound", err)
	}
}

func TestLookupSurvivesReplicaCrash(t *testing.T) {
	f := newFixture(t, 3)
	ctx := context.Background()

	if err := f.client.Add(ctx, "a", "1"); err != nil {
		t.Fatal(err)
	}
	// Two of three replicas down: read-one still answers.
	f.nsNodes[0].Crash()
	f.nsNodes[1].Crash()
	got, err := f.client.Lookup(ctx, "a")
	if err != nil {
		t.Fatalf("Lookup with 2/3 down: %v", err)
	}
	if got != "1" {
		t.Fatalf("Lookup = %q", got)
	}
}

func TestBindingSurvivesFullRestart(t *testing.T) {
	// Permanence: the directory is a persistent object.
	f := newFixture(t, 2)
	ctx := context.Background()

	if err := f.client.Add(ctx, "svc", "v1"); err != nil {
		t.Fatal(err)
	}
	for _, nd := range f.nsNodes {
		nd.Crash()
	}
	for _, nd := range f.nsNodes {
		nd.Restart()
	}
	got, err := f.client.Lookup(ctx, "svc")
	if err != nil {
		t.Fatalf("Lookup after restart: %v", err)
	}
	if got != "v1" {
		t.Fatalf("Lookup = %q", got)
	}
}

func TestUpdateIndependentOfApplicationAbort(t *testing.T) {
	// The paper's point: a name-server update invoked from a failing
	// application must survive — the update runs as its own top-level
	// (distributed) action.
	f := newFixture(t, 2)
	ctx := context.Background()

	boom := errors.New("application failed")
	appErr := f.app.Run(ctx, func(txn *dist.Txn) error {
		// Application work would happen here under txn; the name
		// server update is deliberately NOT part of txn.
		if err := f.client.Add(ctx, "recovered/obj", "node-3"); err != nil {
			return err
		}
		return boom // the application action aborts
	})
	if !errors.Is(appErr, boom) {
		t.Fatal(appErr)
	}
	got, err := f.client.Lookup(ctx, "recovered/obj")
	if err != nil {
		t.Fatalf("binding must survive application abort: %v", err)
	}
	if got != "node-3" {
		t.Fatalf("Lookup = %q", got)
	}
}

func TestAddAsync(t *testing.T) {
	f := newFixture(t, 2)
	ctx := context.Background()

	done := f.client.AddAsync(ctx, "async", "yes")
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("AddAsync: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AddAsync did not complete")
	}
	got, err := f.client.Lookup(ctx, "async")
	if err != nil || got != "yes" {
		t.Fatalf("Lookup = %q, %v", got, err)
	}
}

func TestReplicasStayMutuallyConsistent(t *testing.T) {
	f := newFixture(t, 3)
	ctx := context.Background()

	names := []string{"a", "b", "c", "d"}
	for _, n := range names {
		if err := f.client.Add(ctx, n, "v-"+n); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.client.Remove(ctx, "b"); err != nil {
		t.Fatal(err)
	}

	// Ask each replica individually (single-member groups).
	for i, nd := range f.nsNodes {
		solo := nameserver.NewClient(f.app, nd.ID())
		for _, n := range []string{"a", "c", "d"} {
			got, err := solo.Lookup(ctx, n)
			if err != nil || got != "v-"+n {
				t.Fatalf("replica %d lookup %q = %q, %v", i, n, got, err)
			}
		}
		if _, err := solo.Lookup(ctx, "b"); !errors.Is(err, nameserver.ErrNotFound) {
			t.Fatalf("replica %d still has removed name: %v", i, err)
		}
	}
}
