// Package nameserver implements the paper's example (ii): a replicated
// name server whose operations (add, remove, lookup) are structured as
// atomic actions, invoked as top-level independent actions from within
// distributed applications — "there is no reason to undo the name server
// updates should the invoking action abort".
//
// The server is a node service hosting a persistent directory object;
// the client replicates it across nodes with write-all/read-one and runs
// every update as its own distributed action, independent of whatever
// application action invoked it.
package nameserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"mca/internal/action"
	"mca/internal/dist"
	"mca/internal/ids"
	"mca/internal/node"
	"mca/internal/object"
	"mca/internal/replica"
	"mca/internal/rpc"
)

// ResourceName is the resource under which servers register themselves.
const ResourceName = "nameserver"

// ErrNotFound is returned by Lookup for unbound names.
var ErrNotFound = errors.New("nameserver: name not bound")

// directory is the replicated state: name -> value.
type directory map[string]string

// Server hosts one replica of the name directory on a node.
type Server struct {
	mu    sync.Mutex
	nd    *node.Node
	objID ids.ObjectID
	dir   *object.Managed[directory]
}

var _ node.Service = (*Server)(nil)

// NewServer installs a name-server replica on the node and registers it
// with the node's distributed-action manager.
func NewServer(nd *node.Node, mgr *dist.Manager) *Server {
	s := &Server{objID: ids.NewObjectID()}
	nd.Host(s)
	mgr.RegisterResource(ResourceName, s)
	return s
}

// Register implements node.Service.
func (s *Server) Register(nd *node.Node, _ *rpc.Peer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nd = nd
	s.activateLocked()
}

// Recover implements node.Service: reactivate the directory from stable
// storage after a crash.
func (s *Server) Recover(_ context.Context, _ *node.Node) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.activateLocked()
}

func (s *Server) activateLocked() {
	if m, err := object.Load[directory](s.objID, s.nd.Stable()); err == nil {
		s.dir = m
		return
	}
	s.dir = object.New(directory{},
		object.WithStore(s.nd.Stable()), object.WithID(s.objID))
}

func (s *Server) directoryObject() *object.Managed[directory] {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dir
}

// Wire types.
type bindArg struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

type nameArg struct {
	Name string `json:"name"`
}

type lookupResp struct {
	Value string `json:"value"`
	Found bool   `json:"found"`
}

type listResp struct {
	Names []string `json:"names"`
}

// Invoke implements dist.Resource.
func (s *Server) Invoke(a *action.Action, op string, arg []byte) ([]byte, error) {
	switch op {
	case "add":
		var in bindArg
		if err := json.Unmarshal(arg, &in); err != nil {
			return nil, fmt.Errorf("nameserver add: %w", err)
		}
		err := s.directoryObject().Write(a, func(d *directory) error {
			if *d == nil {
				*d = directory{}
			}
			(*d)[in.Name] = in.Value
			return nil
		})
		if err != nil {
			return nil, err
		}
		return []byte("{}"), nil
	case "remove":
		var in nameArg
		if err := json.Unmarshal(arg, &in); err != nil {
			return nil, fmt.Errorf("nameserver remove: %w", err)
		}
		err := s.directoryObject().Write(a, func(d *directory) error {
			delete(*d, in.Name)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return []byte("{}"), nil
	case "lookup":
		var in nameArg
		if err := json.Unmarshal(arg, &in); err != nil {
			return nil, fmt.Errorf("nameserver lookup: %w", err)
		}
		var out lookupResp
		err := s.directoryObject().Read(a, func(d directory) error {
			out.Value, out.Found = d[in.Name]
			return nil
		})
		if err != nil {
			return nil, err
		}
		return json.Marshal(out)
	case "list":
		var out listResp
		err := s.directoryObject().Read(a, func(d directory) error {
			for name := range d {
				out.Names = append(out.Names, name)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return json.Marshal(out)
	default:
		return nil, fmt.Errorf("nameserver: unknown op %q", op)
	}
}

// Client talks to the replicated name server. Every update runs as its
// own distributed action — the top-level independent invocation of the
// paper — so an enclosing application action's abort never undoes name
// bindings.
type Client struct {
	mgr   *dist.Manager
	group *replica.Group
}

// NewClient builds a client coordinating through mgr against replicas at
// the given nodes.
func NewClient(mgr *dist.Manager, replicas ...ids.NodeID) *Client {
	return &Client{mgr: mgr, group: replica.NewGroup(ResourceName, replicas...)}
}

// Add binds name to value at every replica, atomically.
func (c *Client) Add(ctx context.Context, name, value string) error {
	return c.mgr.Run(ctx, func(txn *dist.Txn) error {
		return c.group.Write(ctx, txn, "add", bindArg{Name: name, Value: value})
	})
}

// Remove unbinds name at every replica, atomically.
func (c *Client) Remove(ctx context.Context, name string) error {
	return c.mgr.Run(ctx, func(txn *dist.Txn) error {
		return c.group.Write(ctx, txn, "remove", nameArg{Name: name})
	})
}

// Lookup resolves name at the first reachable replica.
func (c *Client) Lookup(ctx context.Context, name string) (string, error) {
	var out lookupResp
	err := c.mgr.Run(ctx, func(txn *dist.Txn) error {
		return c.group.Read(ctx, txn, "lookup", nameArg{Name: name}, &out)
	})
	if err != nil {
		return "", err
	}
	if !out.Found {
		return "", fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return out.Value, nil
}

// AddAsync launches Add in the background (the asynchronous top-level
// independent invocation of fig 7b) and returns a channel delivering the
// outcome.
func (c *Client) AddAsync(ctx context.Context, name, value string) <-chan error {
	done := make(chan error, 1)
	go func() {
		done <- c.Add(ctx, name, value)
	}()
	return done
}
