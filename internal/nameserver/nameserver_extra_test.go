package nameserver_test

import (
	"context"
	"errors"
	"sort"
	"testing"

	"mca/internal/dist"
	"mca/internal/rpc"
)

func TestListOp(t *testing.T) {
	f := newFixture(t, 1)
	ctx := context.Background()

	for _, n := range []string{"b", "a", "c"} {
		if err := f.client.Add(ctx, n, "v"); err != nil {
			t.Fatal(err)
		}
	}
	// Drive the raw "list" op through a transaction.
	var out struct {
		Names []string `json:"names"`
	}
	err := f.app.Run(ctx, func(txn *dist.Txn) error {
		return txn.Invoke(ctx, f.nsNodes[0].ID(), "nameserver", "list", struct{}{}, &out)
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(out.Names)
	if len(out.Names) != 3 || out.Names[0] != "a" || out.Names[2] != "c" {
		t.Fatalf("list = %v", out.Names)
	}
}

func TestUnknownOpRejected(t *testing.T) {
	f := newFixture(t, 1)
	ctx := context.Background()
	err := f.app.Run(ctx, func(txn *dist.Txn) error {
		return txn.Invoke(ctx, f.nsNodes[0].ID(), "nameserver", "destroy", struct{}{}, nil)
	})
	var remote *rpc.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("Invoke = %v, want RemoteError", err)
	}
}

func TestMalformedArgsRejected(t *testing.T) {
	f := newFixture(t, 1)
	ctx := context.Background()
	// "add" with an arg shape that cannot unmarshal into bindArg.
	err := f.app.Run(ctx, func(txn *dist.Txn) error {
		return txn.Invoke(ctx, f.nsNodes[0].ID(), "nameserver", "add", []int{1, 2}, nil)
	})
	var remote *rpc.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("Invoke = %v, want RemoteError", err)
	}
}

func TestAtomicMultiBindViaOneTransaction(t *testing.T) {
	// Several bindings in one distributed action: all or nothing.
	f := newFixture(t, 2)
	ctx := context.Background()

	boom := errors.New("boom")
	err := f.app.Run(ctx, func(txn *dist.Txn) error {
		for _, nd := range f.nsNodes {
			if err := txn.Invoke(ctx, nd.ID(), "nameserver", "add",
				map[string]string{"name": "batch", "value": "v"}, nil); err != nil {
				return err
			}
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if _, err := f.client.Lookup(ctx, "batch"); err == nil {
		t.Fatal("aborted binding must not be visible")
	}
}
