// Package colourzero enforces the colour discipline of paper §5 at the
// type level: every lock request must name a real colour from its
// requester's set, and colours come only from colour.Fresh. It reports
//
//   - lock.Request composite literals whose Colour field is missing,
//     the constant zero, or colour.None — the lock manager rejects all
//     of these at runtime with ErrInvalidRequest, so a literal shaped
//     that way is a latent bug at the call site;
//   - conversions of non-colour values (raw uint64s, ints) to
//     colour.Colour outside the colour package itself, which mint
//     colours bypassing colour.Fresh and can collide with allocated
//     ones.
package colourzero

import (
	"go/ast"
	"go/constant"
	"go/types"

	"mca/internal/analysis"
)

// Analyzer is the colourzero analysis.
var Analyzer = &analysis.Analyzer{
	Name: "colourzero",
	Doc:  "flag zero-colour lock requests and raw colour.Colour conversions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if !analysis.IsLibraryPackage(path) || analysis.PathMatches(path, "internal/colour") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkRequestLit(pass, n)
			case *ast.CallExpr:
				checkConversion(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkRequestLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	t := pass.TypeOf(lit)
	if !analysis.NamedFrom(t, "internal/lock", "Request") {
		return
	}
	if len(lit.Elts) == 0 {
		pass.Reportf(lit.Pos(), "lock.Request literal with zero Colour; the lock manager rejects colour.None")
		return
	}
	if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); keyed {
		for _, elt := range lit.Elts {
			kv := elt.(*ast.KeyValueExpr)
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Colour" {
				checkColourValue(pass, kv.Value)
				return
			}
		}
		pass.Reportf(lit.Pos(), "lock.Request literal without a Colour field; the lock manager rejects colour.None")
		return
	}
	// Positional literal: locate the Colour field by index.
	st, ok := analysis.Deref(t).Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields() && i < len(lit.Elts); i++ {
		if st.Field(i).Name() == "Colour" {
			checkColourValue(pass, lit.Elts[i])
			return
		}
	}
}

// checkColourValue flags expressions that are provably the zero colour.
func checkColourValue(pass *analysis.Pass, e ast.Expr) {
	tv, ok := pass.TypesInfo.Types[e]
	if ok && tv.Value != nil {
		if v, exact := constant.Uint64Val(tv.Value); exact && v == 0 {
			pass.Reportf(e.Pos(), "lock.Request with zero Colour; use a colour from the requester's set")
		}
		return
	}
	// colour.None is a constant, so the branch above already caught it;
	// this handles a plain `None` selector in case constant folding is
	// unavailable for the expression.
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		if obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Const); ok &&
			obj.Name() == "None" && obj.Pkg() != nil && analysis.PathMatches(obj.Pkg().Path(), "internal/colour") {
			pass.Reportf(e.Pos(), "lock.Request with Colour: colour.None; use a colour from the requester's set")
		}
	}
}

// checkConversion flags colour.Colour(x) conversions of non-colour
// operands outside the colour package.
func checkConversion(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || !analysis.NamedFrom(tv.Type, "internal/colour", "Colour") {
		return
	}
	argTv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	// Only basic-typed operands (raw uint64s and literal constants —
	// untyped constants are recorded with the converted-to type, so test
	// constness directly) mint a colour from thin air. Conversions
	// between named types — the colour itself, or option wrappers
	// declared as colour.Colour — round-trip a value that already came
	// from colour.Fresh.
	_, isBasic := argTv.Type.(*types.Basic)
	if !isBasic && argTv.Value == nil {
		return
	}
	pass.Reportf(call.Pos(), "conversion to colour.Colour from %s bypasses colour.Fresh; colours minted by hand can collide with allocated ones", argTv.Type)
}
