// Package usage seeds colourzero violations: zero-colour lock requests
// and hand-minted colours.
package usage

import (
	"example/internal/colour"
	"example/internal/lock"
)

type reqOption colour.Colour

func zeroRequests(raw uint64) []lock.Request {
	return []lock.Request{
		{Object: 1, Owner: 2, Mode: lock.Read},              // want "without a Colour field"
		{Object: 1, Owner: 2, Colour: 0, Mode: lock.Read},   // want "zero Colour"
		{Object: 1, Owner: 2, Colour: colour.None, Mode: lock.Write}, // want "zero Colour"
		{1, 2, 0, lock.Read},                                // want "zero Colour"
	}
}

func emptyRequest() lock.Request {
	return lock.Request{} // want "zero Colour"
}

func mintedColours(raw uint64) []colour.Colour {
	return []colour.Colour{
		colour.Colour(42),  // want "bypasses colour.Fresh"
		colour.Colour(raw), // want "bypasses colour.Fresh"
	}
}

// --- silent patterns ---

func validRequests() []lock.Request {
	c := colour.Fresh()
	return []lock.Request{
		{Object: 1, Owner: 2, Colour: c, Mode: lock.Read},
		{1, 2, c, lock.Write},
	}
}

func optionRoundTrip(o reqOption) colour.Colour {
	return colour.Colour(o) // named wrapper type, not a raw integer: ok
}

func suppressed() colour.Colour {
	//mcalint:ignore colourzero exercised by the directive test
	return colour.Colour(7)
}
