// Package lock stubs the repository's lock manager request type at a
// matching import path for colourzero fixtures.
package lock

import "example/internal/colour"

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	Read Mode = iota + 1
	Write
)

// Request names one lock acquisition.
type Request struct {
	Object uint64
	Owner  uint64
	Colour colour.Colour
	Mode   Mode
}
