// Package colour stubs the repository's colour package at a matching
// import path for colourzero fixtures.
package colour

// Colour identifies one colour; the zero value None is invalid.
type Colour uint64

// None is the zero Colour.
const None Colour = 0

var counter Colour

// Fresh mints a process-unique colour.
func Fresh() Colour {
	counter++
	return counter
}
