package colourzero_test

import (
	"testing"

	"mca/internal/analysis/analysistest"
	"mca/internal/analysis/colourzero"
)

func TestColourZero(t *testing.T) {
	analysistest.Run(t, "testdata", colourzero.Analyzer, "example/internal/usage")
}

// TestColourPackageExempt checks the colour package itself may convert:
// colour.Fresh is where colours legitimately come from.
func TestColourPackageExempt(t *testing.T) {
	analysistest.Run(t, "testdata", colourzero.Analyzer, "example/internal/colour")
}
