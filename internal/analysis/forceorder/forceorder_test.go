package forceorder_test

import (
	"testing"

	"mca/internal/analysis/analysistest"
	"mca/internal/analysis/forceorder"
)

func TestForceOrderStore(t *testing.T) {
	analysistest.Run(t, "testdata", forceorder.Analyzer, "example/internal/store")
}

func TestForceOrderDist(t *testing.T) {
	analysistest.Run(t, "testdata", forceorder.Analyzer, "example/internal/dist")
}
