// Package forceorder checks the write-ahead discipline of the commit
// path: nothing may acknowledge durability before the matching force.
// The rules are the force-ordering invariants of the 2PC/WAL design
// (DESIGN.md), each anchored at the syntactic point where an
// acknowledgement escapes, and each checked with a must-dominate walk
// (internal/analysis.MustReach): the acknowledgement is flagged when
// ANY path from function entry reaches it without passing a force.
//
// Rule a (store): completing a WAL batch — close of a done-named
// channel — must be dominated by a force-family call (force, Force,
// Sync, appendEntries, fsync, syncDir). Waking the appenders before the
// fsync would let a participant vote YES on an intention that a crash
// can still lose.
//
// Rule b (dist): assigning a 2PC vote — a store into the OK field of a
// vote-named struct — must be dominated by a stable-log operation
// (Record, Force, Lookup, Commit, Sync declared in internal/store or
// internal/action). A YES vote is a durability promise; deriving it
// before the log round-trip re-introduces the unforced-vote bug class.
// Assigning the literal false is exempt: a NO vote promises nothing
// (presumed abort).
//
// Rule c (store): a function calling os.Rename must also call syncDir.
// Renaming installs the file in the directory, but only a directory
// fsync makes the installation itself durable (the dir-fsync crash bug
// class). This rule is a whole-function may-check, not a dominance
// check: error paths may legitimately return between the two calls.
//
// Helper indirection is handled by function summaries: a local function
// that always forces (analysis.AlwaysSatisfies) counts as a force at
// its call sites.
package forceorder

import (
	"go/ast"
	"go/types"
	"strings"

	"mca/internal/analysis"
)

// Analyzer is the forceorder analysis.
var Analyzer = &analysis.Analyzer{
	Name: "forceorder",
	Doc:  "require WAL completions and 2PC votes to be dominated by the matching force",
	Run:  run,
}

// forceFamily (rule a) are the callee names that make bytes durable.
var forceFamily = map[string]bool{
	"force":         true,
	"Force":         true,
	"Sync":          true,
	"appendEntries": true,
	"fsync":         true,
	"syncDir":       true,
}

// stableFamily (rule b) are the stable-log operations a vote may be
// derived from, when declared in the storage or action layer.
var stableFamily = map[string]bool{
	"Record": true,
	"Force":  true,
	"Lookup": true,
	"Commit": true,
	"Sync":   true,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	switch {
	case analysis.PathMatches(path, "internal/store"):
		runStore(pass)
	case analysis.PathMatches(path, "internal/dist"):
		runDist(pass)
	}
	return nil
}

// --- rule a + c: store ---

func runStore(pass *analysis.Pass) {
	satisfies := withSummaries(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := analysis.CalleeFunc(pass.TypesInfo, call)
		if !ok {
			return false
		}
		return forceFamily[fn.Name()]
	})
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDoneCloses(pass, fd, satisfies)
			checkRenameSync(pass, fd)
		}
	}
}

// checkDoneCloses flags close(…done) not dominated by a force (rule a).
func checkDoneCloses(pass *analysis.Pass, fd *ast.FuncDecl, satisfies func(ast.Node) bool) {
	m := &analysis.MustReach{
		Satisfies: satisfies,
		Visit: func(n ast.Node, established bool) {
			if established {
				return
			}
			arg, ok := doneCloseArg(n)
			if !ok {
				return
			}
			pass.Reportf(n.Pos(), "close(%s) reachable without a dominating force; appenders would observe the batch complete before its records are durable", arg)
		},
	}
	m.Run(fd.Body)
}

// doneCloseArg matches close(x) where x is a done-named channel field
// or variable, returning its spelling.
func doneCloseArg(n ast.Node) (string, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return "", false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return "", false
	}
	key, ok := analysis.ExprKey(call.Args[0])
	if !ok {
		return "", false
	}
	if key == "done" || strings.HasSuffix(key, ".done") || strings.HasSuffix(key, "Done") {
		return key, true
	}
	return "", false
}

// checkRenameSync flags os.Rename in functions with no syncDir (rule c).
func checkRenameSync(pass *analysis.Pass, fd *ast.FuncDecl) {
	var renames []*ast.CallExpr
	synced := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if analysis.CallTo(pass.TypesInfo, call, "os", "Rename") {
			renames = append(renames, call)
		}
		if fn, ok := analysis.CalleeFunc(pass.TypesInfo, call); ok && fn.Name() == "syncDir" {
			synced = true
		}
		return true
	})
	if synced {
		return
	}
	for _, call := range renames {
		pass.Reportf(call.Pos(), "os.Rename with no directory fsync (syncDir) in %s; the installed name may not survive a crash", fd.Name.Name)
	}
}

// --- rule b: dist ---

func runDist(pass *analysis.Pass) {
	satisfies := withSummaries(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := analysis.CalleeFunc(pass.TypesInfo, call)
		if !ok || !stableFamily[fn.Name()] {
			return false
		}
		p := analysis.FuncPkgPath(fn)
		return analysis.PathMatches(p, "internal/store") || analysis.PathMatches(p, "internal/action")
	})
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			m := &analysis.MustReach{
				Satisfies: satisfies,
				Visit: func(n ast.Node, established bool) {
					if established {
						return
					}
					as, ok := voteOKAssign(pass, n)
					if !ok {
						return
					}
					pass.Reportf(as.Pos(), "vote derived with no dominating stable-log operation; a YES here could acknowledge an intention a crash can still lose")
				},
			}
			m.Run(fd.Body)
		}
	}
}

// voteOKAssign matches an assignment into the OK field of a vote-named
// struct whose right-hand side is not the literal false (an explicit NO
// vote needs no durability).
func voteOKAssign(pass *analysis.Pass, n ast.Node) (*ast.AssignStmt, bool) {
	as, ok := n.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, false
	}
	sel, ok := ast.Unparen(as.Lhs[0]).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "OK" {
		return nil, false
	}
	t := pass.TypeOf(sel.X)
	named, ok := analysis.Deref(t).(*types.Named)
	if !ok || !strings.Contains(strings.ToLower(named.Obj().Name()), "vote") {
		return nil, false
	}
	if id, ok := ast.Unparen(as.Rhs[0]).(*ast.Ident); ok && id.Name == "false" {
		return nil, false
	}
	return as, true
}

// withSummaries extends a direct satisfier with one-package function
// summaries: a call to a local function whose body always satisfies
// counts too. Iterated to a fixpoint so helpers may nest.
func withSummaries(pass *analysis.Pass, direct func(ast.Node) bool) func(ast.Node) bool {
	always := make(map[*types.Func]bool)
	var satisfies func(ast.Node) bool
	satisfies = func(n ast.Node) bool {
		if direct(n) {
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := analysis.CalleeFunc(pass.TypesInfo, call)
		return ok && always[fn]
	}
	for changed := true; changed; {
		changed = false
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok || always[obj] {
					continue
				}
				if analysis.AlwaysSatisfies(fd.Body, satisfies) {
					always[obj] = true
					changed = true
				}
			}
		}
	}
	return satisfies
}
