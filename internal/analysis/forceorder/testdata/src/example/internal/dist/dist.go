// Fixture: 2PC vote derivation (rule b) in a dist-suffixed package,
// against a stubbed storage layer at example/internal/store.
package dist

import "example/internal/store"

type voteResp struct {
	OK       bool
	ReadOnly bool
}

func prepareGood(log *store.Log, txn uint64) voteResp {
	vote := voteResp{OK: false}
	err := log.Record(store.Intention{Action: txn})
	vote.OK = err == nil
	return vote
}

func prepareRederive(log *store.Log, txn uint64) voteResp {
	var vote voteResp
	in, found, err := log.Lookup(txn)
	vote.OK = err == nil && found && in.Prepared
	return vote
}

func prepareBad(log *store.Log, txn uint64) voteResp {
	var vote voteResp
	vote.OK = true // want "no dominating stable-log operation"
	go func() {
		_ = log.Record(store.Intention{Action: txn})
	}()
	return vote
}

func prepareRaced(log *store.Log, txn uint64, readonly bool) voteResp {
	var vote voteResp
	if !readonly {
		_ = log.Record(store.Intention{Action: txn})
	}
	vote.OK = true // want "no dominating stable-log operation"
	return vote
}

// Voting NO promises nothing: the literal false is exempt.
func prepareDeny() voteResp {
	var vote voteResp
	vote.OK = false
	return vote
}
