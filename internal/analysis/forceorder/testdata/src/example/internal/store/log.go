package store

// Log stubs the intention log the dist fixture votes against.
type Log struct{}

type Intention struct {
	Action   uint64
	Prepared bool
}

func (l *Log) Record(in Intention) error { return nil }

func (l *Log) Lookup(txn uint64) (Intention, bool, error) { return Intention{}, false, nil }
