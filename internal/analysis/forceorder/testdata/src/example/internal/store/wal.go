// Fixture: WAL-style batch completion (rule a) and rename installation
// (rule c) in a store-suffixed package.
package store

import "os"

type batch struct {
	done chan struct{}
	err  error
}

type wal struct{ batches []*batch }

// force is the durability point; its name is in the force family.
func (w *wal) force(b *batch) error { return nil }

// forceViaHelper always forces: the summary makes its call sites count.
func (w *wal) forceViaHelper(b *batch) error { return w.force(b) }

func (w *wal) flushGood(b *batch) {
	b.err = w.force(b)
	close(b.done)
}

func (w *wal) flushViaHelper(b *batch) {
	b.err = w.forceViaHelper(b)
	close(b.done)
}

func (w *wal) flushBad(b *batch) {
	close(b.done) // want "reachable without a dominating force"
	b.err = w.force(b)
}

func (w *wal) flushConditional(b *batch, fast bool) {
	if !fast {
		b.err = w.force(b)
	}
	close(b.done) // want "reachable without a dominating force"
}

func (w *wal) flushBothBranches(b *batch, fast bool) {
	if fast {
		b.err = w.forceViaHelper(b)
	} else {
		b.err = w.force(b)
	}
	close(b.done)
}

// Early error returns are neutral: the happy path is still dominated.
func (w *wal) flushEarlyReturn(b *batch) error {
	if err := w.force(b); err != nil {
		return err
	}
	close(b.done)
	return nil
}

func syncDir(dir string) error { return nil }

func installGood(name, target, dir string) error {
	if err := os.Rename(name, target); err != nil {
		return err
	}
	return syncDir(dir)
}

func installBad(name, target string) error {
	return os.Rename(name, target) // want "no directory fsync"
}

func suppressedInstall(name, target string) error {
	//mcalint:ignore forceorder fixture: target dir is fsynced by the caller
	return os.Rename(name, target)
}
