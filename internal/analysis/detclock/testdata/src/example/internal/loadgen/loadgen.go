// Fixture: the load-generator package is deterministic-critical — its
// arrival schedules must replay from a seed, so ambient time and
// global randomness are forbidden just like in the runtime layers.
package loadgen

import (
	"math/rand"
	"time"
)

func schedule(rate float64) []time.Duration {
	var out []time.Duration
	gap := time.Duration(float64(time.Second) / rate)
	at := time.Duration(0)
	for i := 0; i < 10; i++ {
		at += gap + time.Duration(rand.Int63n(int64(gap))) // want "math/rand.Int63n in deterministic-critical package"
		out = append(out, at)
	}
	return out
}

func pace(arrivals []time.Duration) {
	start := time.Now() // want "time.Now in deterministic-critical package"
	for _, at := range arrivals {
		time.Sleep(at - time.Since(start)) // want "time.Sleep in deterministic-critical package" "time.Since in deterministic-critical package"
	}
}

// Duration arithmetic stays allowed: pure values, no ambient state.
func horizon(warmup, window time.Duration) time.Duration {
	return warmup + window
}
