// Fixture: a library package outside the deterministic-critical set —
// ambient time and randomness stay allowed (telemetry does not feed the
// replayable schedule).
package metrics

import (
	"math/rand"
	"time"
)

func Stamp() int64 { return time.Now().UnixNano() }

func Stripe(n int) int { return rand.Intn(n) }
