// Fixture: the clock package itself is allowlisted — forwarding to
// package time is its whole purpose.
package clock

import "time"

func Now() time.Time { return time.Now() }
