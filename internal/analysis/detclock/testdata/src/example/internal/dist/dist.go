// Fixture: a deterministic-critical package (suffix internal/dist)
// reaching for ambient time and global randomness.
package dist

import (
	"math/rand"
	"time"
)

func ambientTime() time.Duration {
	start := time.Now() // want "time.Now in deterministic-critical package"
	time.Sleep(time.Millisecond) // want "time.Sleep in deterministic-critical package"
	<-time.After(time.Millisecond) // want "time.After in deterministic-critical package"
	t := time.NewTimer(time.Second) // want "time.NewTimer in deterministic-critical package"
	t.Stop()
	tk := time.NewTicker(time.Second) // want "time.NewTicker in deterministic-critical package"
	tk.Stop()
	return time.Since(start) // want "time.Since in deterministic-critical package"
}

func ambientRand() int {
	r := rand.New(rand.NewSource(1)) // want "math/rand.New in deterministic-critical package" "math/rand.NewSource in deterministic-critical package"
	return r.Intn(10) + rand.Intn(10) // want "math/rand.Intn in deterministic-critical package" "math/rand.Intn in deterministic-critical package"
}

// pure time values are allowed: no ambient state is read.
func pure(d time.Duration) time.Duration {
	return d * 2
}

// time.Time/Duration methods are value arithmetic, not ambient reads —
// a.After(b) must not be confused with the package function time.After.
func methods(a, b time.Time, d time.Duration) bool {
	return a.After(b) || a.Add(d).Before(b) || d.Seconds() > 1
}

func suppressed() time.Time {
	//mcalint:ignore detclock fixture demonstrates a justified suppression
	return time.Now()
}
