package detclock_test

import (
	"testing"

	"mca/internal/analysis/analysistest"
	"mca/internal/analysis/detclock"
)

func TestDetClockFlagsCriticalPackages(t *testing.T) {
	analysistest.Run(t, "testdata", detclock.Analyzer, "example/internal/dist")
}

func TestDetClockFlagsLoadgenPackage(t *testing.T) {
	analysistest.Run(t, "testdata", detclock.Analyzer, "example/internal/loadgen")
}

func TestDetClockSkipsNonCriticalPackages(t *testing.T) {
	analysistest.Run(t, "testdata", detclock.Analyzer, "example/internal/metrics")
}

func TestDetClockSkipsClockPackage(t *testing.T) {
	analysistest.Run(t, "testdata", detclock.Analyzer, "example/internal/clock")
}
