// Package detclock keeps ambient time and global randomness out of the
// deterministic-critical packages. Those packages (the runtime layers a
// simulated schedule must be able to replay: node, lock, dist, rpc,
// netsim, store, flightrec, workload, loadgen, action, dmake, trace,
// tcpnet) take
// an internal/clock.Clock and a seeded clock.Rand instead, so a virtual
// clock can drive every timer and a fixed seed reproduces every random
// draw. A direct call to time.Now, time.Sleep, time.After, timer and
// ticker constructors, or anything in math/rand re-introduces the
// hidden global the refactor removed — this analyzer flags each one.
//
// Out of scope: time.Duration arithmetic and constants (pure values,
// no ambient state), context deadlines (context.WithTimeout reads the
// runtime clock internally, but the deadline is part of the call
// contract, not a schedule source), tests (not loaded), cmd/ and
// examples/ (entry points wire the real clock), and internal/clock
// itself — the one place the forwarding is the point.
package detclock

import (
	"go/ast"

	"mca/internal/analysis"
)

// Analyzer is the detclock analysis.
var Analyzer = &analysis.Analyzer{
	Name: "detclock",
	Doc:  "forbid ambient time (time.Now/Sleep/timers) and math/rand in deterministic-critical packages",
	Run:  run,
}

// criticalPkgs are the deterministic-critical package paths, matched by
// suffix so fixture trees mirror them.
var criticalPkgs = []string{
	"internal/action",
	"internal/dist",
	"internal/dmake",
	"internal/flightrec",
	"internal/loadgen",
	"internal/lock",
	"internal/netsim",
	"internal/node",
	"internal/rpc",
	"internal/store",
	"internal/tcpnet",
	"internal/trace",
	"internal/workload",
}

// ambientTime lists the package time functions that read or schedule
// against the process clock. Everything else in package time (Duration,
// Unix, Date, parsing) is pure and stays allowed.
var ambientTime = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
}

// Critical reports whether the package at path is deterministic-critical.
func Critical(path string) bool {
	for _, p := range criticalPkgs {
		if analysis.PathMatches(path, p) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !Critical(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := analysis.CalleeFunc(pass.TypesInfo, call)
			if !ok {
				return true
			}
			switch path := analysis.FuncPkgPath(fn); path {
			case "time":
				// Methods (t.Add, end.After(start), d.Seconds) are pure
				// value arithmetic; only the package-level functions
				// read the process clock.
				if analysis.RecvType(fn) == nil && ambientTime[fn.Name()] {
					pass.Reportf(call.Pos(), "time.%s in deterministic-critical package %s; use the threaded clock.Clock", fn.Name(), pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				pass.Reportf(call.Pos(), "%s.%s in deterministic-critical package %s; use a seeded clock.Rand", path, fn.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
