// Package ctxprop forbids ambient contexts in library code: a call to
// context.Background() or context.TODO() inside an internal/ package
// severs cancellation — work started under it survives the caller, the
// node, and the test that owns them. Library code must thread the
// caller's context, and code that genuinely has no caller (recovery
// daemons, fire-and-forget aborts) must bound or cancel the fresh
// context immediately, so the only allowed use is as the direct
// argument of context.WithCancel, WithTimeout or WithDeadline.
package ctxprop

import (
	"go/ast"

	"mca/internal/analysis"
)

// Analyzer is the ctxprop analysis.
var Analyzer = &analysis.Analyzer{
	Name: "ctxprop",
	Doc:  "forbid bare context.Background/TODO in library code",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsLibraryPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if call, ok := n.(*ast.CallExpr); ok {
				check(pass, call, stack)
			}
			stack = append(stack, n)
			return true
		})
	}
	return nil
}

func check(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	f, ok := analysis.CalleeFunc(pass.TypesInfo, call)
	if !ok || analysis.FuncPkgPath(f) != "context" {
		return
	}
	name := f.Name()
	if name != "Background" && name != "TODO" {
		return
	}
	if derivedImmediately(pass, call, stack) {
		return
	}
	if ctxParamInScope(pass, stack) {
		pass.Reportf(call.Pos(), "context.%s() in library code with a caller context in scope; thread the caller's ctx instead", name)
		return
	}
	pass.Reportf(call.Pos(), "bare context.%s() in library code; derive a bounded or cancellable context (context.WithTimeout/WithCancel) or thread one from the caller", name)
}

// derivedImmediately reports whether the Background/TODO call is the
// context argument of context.WithCancel/WithTimeout/WithDeadline — the
// accepted way to mint a root context in code with no caller context.
func derivedImmediately(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	parent, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok || len(parent.Args) == 0 || ast.Unparen(parent.Args[0]) != call {
		return false
	}
	f, ok := analysis.CalleeFunc(pass.TypesInfo, parent)
	if !ok || analysis.FuncPkgPath(f) != "context" {
		return false
	}
	switch f.Name() {
	case "WithCancel", "WithTimeout", "WithDeadline", "WithCancelCause", "WithTimeoutCause", "WithDeadlineCause":
		return true
	}
	return false
}

// ctxParamInScope reports whether any enclosing function declaration or
// literal takes a context.Context parameter.
func ctxParamInScope(pass *analysis.Pass, stack []ast.Node) bool {
	for _, n := range stack {
		var params *ast.FieldList
		switch fn := n.(type) {
		case *ast.FuncDecl:
			params = fn.Type.Params
		case *ast.FuncLit:
			params = fn.Type.Params
		default:
			continue
		}
		if params == nil {
			continue
		}
		for _, field := range params.List {
			if !analysis.IsContextType(pass.TypeOf(field.Type)) {
				continue
			}
			// Only a named, non-blank parameter is threadable.
			for _, name := range field.Names {
				if name.Name != "_" {
					return true
				}
			}
		}
	}
	return false
}
