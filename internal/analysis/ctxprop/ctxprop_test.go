package ctxprop_test

import (
	"testing"

	"mca/internal/analysis/analysistest"
	"mca/internal/analysis/ctxprop"
)

func TestCtxProp(t *testing.T) {
	analysistest.Run(t, "testdata", ctxprop.Analyzer, "example/internal/svc")
}

func TestCtxPropOnTraceStyleAPIs(t *testing.T) {
	analysistest.Run(t, "testdata", ctxprop.Analyzer, "example/internal/tracer")
}

func TestCtxPropSkipsNonLibraryCode(t *testing.T) {
	analysistest.Run(t, "testdata", ctxprop.Analyzer, "example/toplevel")
}
