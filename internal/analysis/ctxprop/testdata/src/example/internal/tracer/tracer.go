// Package tracer mirrors the shape of the distributed-tracing API
// (trace.Inject / trace.FromContext): context-valued helpers that
// derive from a caller's context. ctxprop must accept propagation
// through such helpers and still flag an ambient context smuggled in
// as the derivation base.
package tracer

import "context"

// SpanContext stands in for trace.Context.
type SpanContext struct{ Trace, Span uint64 }

type key struct{}

// Inject mirrors trace.Inject: derives from the caller's ctx.
func Inject(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, key{}, sc)
}

// FromContext mirrors trace.FromContext.
func FromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(key{}).(SpanContext)
	return sc, ok
}

func call(ctx context.Context) error { return ctx.Err() }

// propagate threads the caller's context through Inject: the correct
// pattern, silent.
func propagate(ctx context.Context, sc SpanContext) error {
	return call(Inject(ctx, sc))
}

// rebase severs the caller's cancellation while keeping its trace
// identity — exactly the bug ctxprop exists to catch.
func rebase(ctx context.Context, sc SpanContext) error {
	return call(Inject(context.Background(), sc)) // want "caller context in scope"
}

// rejoin extracts and re-injects on an ambient base with no caller
// context available: still a bare ambient context.
func rejoin(sc SpanContext) context.Context {
	return Inject(context.Background(), sc) // want "bare context.Background"
}
