// Package svc seeds ctxprop violations: ambient contexts in library
// code, with and without a caller context in scope.
package svc

import (
	"context"
	"time"
)

func invoke(ctx context.Context, f func(context.Context) error) error { return f(ctx) }

func threadIgnored(ctx context.Context) error {
	return invoke(context.Background(), func(context.Context) error { return nil }) // want "caller context in scope"
}

func todoWithCallerCtx(ctx context.Context) {
	_ = context.TODO() // want "caller context in scope"
}

func closureSeesEnclosingCtx(ctx context.Context) func() error {
	return func() error {
		c := context.Background() // want "caller context in scope"
		_ = c
		return nil
	}
}

func daemonBare() {
	ctx := context.Background() // want "bare context.Background"
	_ = ctx
}

func blankParamNotThreadable(_ context.Context) {
	ctx := context.Background() // want "bare context.Background"
	_ = ctx
}

// --- silent patterns ---

func daemonBounded() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = ctx
}

func daemonCancellable() func() {
	ctx, cancel := context.WithCancel(context.Background())
	_ = ctx
	return cancel
}

func suppressed() {
	//mcalint:ignore ctxprop exercised by the directive test
	ctx := context.Background()
	_ = ctx
}
