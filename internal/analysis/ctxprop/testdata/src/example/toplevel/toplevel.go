// Package toplevel is outside any internal/ directory: ctxprop leaves
// application entry points free to mint ambient contexts.
package toplevel

import "context"

func run() error {
	ctx := context.Background() // non-library code: ok
	_ = ctx
	return nil
}
