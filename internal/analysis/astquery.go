package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CalleeFunc resolves the function or method named by a call expression,
// or reports false for calls through function values, conversions and
// builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f, true
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f, true
			}
			return nil, false
		}
		// Package-qualified call: pkg.Func.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f, true
		}
	}
	return nil, false
}

// CallTo reports whether n is a call to the function or method named
// name declared in the package at path (suffix-matched, so fixtures at
// example/internal/store match internal/store). It matches both plain
// functions and methods, across packages.
func CallTo(info *types.Info, n ast.Node, path, name string) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return false
	}
	f, ok := CalleeFunc(info, call)
	if !ok {
		return false
	}
	return f.Name() == name && PathMatches(FuncPkgPath(f), path)
}

// FuncPkgPath returns the import path of the package declaring f, or ""
// for functions without one (error.Error and friends).
func FuncPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// RecvType returns f's receiver type with pointers stripped, or nil for
// plain functions.
func RecvType(f *types.Func) types.Type {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return Deref(sig.Recv().Type())
}

// Deref strips one level of pointer.
func Deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// NamedFrom reports whether t (after pointer stripping) is the named
// type name declared in a package whose import path is path or ends in
// "/"+path. Suffix matching lets analyzer fixtures mirror real package
// paths under their own testdata roots.
func NamedFrom(t types.Type, path, name string) bool {
	if t == nil {
		return false
	}
	named, ok := Deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return PathMatches(obj.Pkg().Path(), path)
}

// PathMatches reports whether got is path itself or ends in "/"+path.
func PathMatches(got, path string) bool {
	return got == path || strings.HasSuffix(got, "/"+path)
}

// IsLibraryPackage reports whether path names library code subject to
// the internal-only analyzers: any package under an internal/ directory.
func IsLibraryPackage(path string) bool {
	return strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/")
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// IsChanType reports whether t's core type is a channel.
func IsChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// ExprKey renders a stable key for simple receiver expressions such as
// mu, m.mu or (*p).mu, so two mentions of the same lvalue compare equal.
// It reports false for expressions with no stable spelling (calls,
// indexing with non-literal keys, ...).
func ExprKey(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := ExprKey(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.StarExpr:
		return ExprKey(e.X)
	case *ast.UnaryExpr:
		return ExprKey(e.X)
	}
	return "", false
}

// HasDefault reports whether the select statement has a default clause.
func HasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
