package errdrop_test

import (
	"testing"

	"mca/internal/analysis/analysistest"
	"mca/internal/analysis/errdrop"
)

func TestErrDropInLibraryCode(t *testing.T) {
	analysistest.Run(t, "testdata", errdrop.Analyzer, "example/internal/app")
}

func TestErrDropSkipsNonLibraryCode(t *testing.T) {
	analysistest.Run(t, "testdata", errdrop.Analyzer, "example/toplevel")
}
