// Package errdrop flags silently discarded errors from the storage and
// RPC layers. A dropped store error (Record, Forget, Install, compact)
// hides a durability failure — the commit path carries on believing
// bytes are on disk — and a dropped rpc error hides a delivery failure
// the protocol was designed to surface. Library code (internal/…) must
// check these errors or suppress the finding with an
// mcalint:ignore errdrop <reason> stating why best-effort is correct
// there (presumed abort makes several drops legitimate).
//
// A discard is either a call statement whose result list ends in an
// unexamined error, or an assignment of the error position to the
// blank identifier. Deferred calls (defer f.Close()) and goroutine
// launches are exempt: both are established idioms whose error has no
// consumer by construction.
package errdrop

import (
	"go/ast"
	"go/types"

	"mca/internal/analysis"
)

// Analyzer is the errdrop analysis.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc:  "forbid discarding errors returned by internal/store and internal/rpc operations",
	Run:  run,
}

// watchedPkgs are the layers whose errors must not be dropped,
// suffix-matched against the callee's declaring package.
var watchedPkgs = []string{"internal/store", "internal/rpc"}

func run(pass *analysis.Pass) error {
	if !analysis.IsLibraryPackage(pass.Pkg.Path()) {
		return nil
	}
	var inspect func(n ast.Node) bool
	inspect = func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeferStmt:
			// defer f.Close(): the error has no consumer by
			// construction. Literal bodies inside still get walked.
			if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, inspect)
			}
			return false
		case *ast.GoStmt:
			if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, inspect)
			}
			return false
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				if name, ok := watchedErrCall(pass, call); ok {
					pass.Reportf(call.Pos(), "result of %s discarded; check the error or justify with mcalint:ignore errdrop", name)
				}
			}
		case *ast.AssignStmt:
			checkAssign(pass, s)
		}
		return true
	}
	for _, f := range pass.Files {
		ast.Inspect(f, inspect)
	}
	return nil
}

// checkAssign flags x, _ = watched() where the blank lands on the
// error position.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := watchedErrCall(pass, call)
	if !ok {
		return
	}
	// The error is the call's last result; with a single-value call the
	// single LHS is it.
	last := as.Lhs[len(as.Lhs)-1]
	if id, ok := ast.Unparen(last).(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(as.Pos(), "error from %s assigned to _; check it or justify with mcalint:ignore errdrop", name)
	}
}

// watchedErrCall reports whether call targets a function declared in a
// watched package whose last result is an error, returning its
// qualified name.
func watchedErrCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn, ok := analysis.CalleeFunc(pass.TypesInfo, call)
	if !ok {
		return "", false
	}
	p := analysis.FuncPkgPath(fn)
	watched := false
	for _, w := range watchedPkgs {
		if analysis.PathMatches(p, w) {
			watched = true
			break
		}
	}
	if !watched {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return "", false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return "", false
	}
	return fn.Name(), true
}
