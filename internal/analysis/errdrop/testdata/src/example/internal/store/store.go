package store

// Stubbed storage layer whose errors the errdrop fixture drops.
type Log struct{}

func (l *Log) Record(v uint64) error { return nil }

func (l *Log) Forget(v uint64) error { return nil }

func (l *Log) Size() int { return 0 }

func (l *Log) Close() error { return nil }
