// Fixture: library code dropping storage-layer errors.
package app

import "example/internal/store"

func dropped(log *store.Log) {
	log.Record(1) // want "result of Record discarded"
	_ = log.Forget(1) // want "error from Forget assigned to _"
}

func checked(log *store.Log) error {
	if err := log.Record(1); err != nil {
		return err
	}
	return log.Forget(1)
}

// Non-error results and non-watched packages stay silent.
func unrelated(log *store.Log) int {
	return log.Size()
}

// defer and go launches are established idioms with no error consumer.
func idioms(log *store.Log) {
	defer log.Close()
	go log.Record(2)
}

// A goroutine body is still library code: explicit drops inside it are
// flagged.
func goroutineBody(log *store.Log) {
	go func() {
		_ = log.Forget(3) // want "error from Forget assigned to _"
	}()
}

func justified(log *store.Log) {
	//mcalint:ignore errdrop fixture: forget is housekeeping, presumed abort covers a miss
	_ = log.Forget(4)
}
