// Fixture: non-library code (outside internal/) is out of scope.
package toplevel

import "example/internal/store"

func Drop(log *store.Log) {
	log.Record(1)
	_ = log.Forget(1)
}
