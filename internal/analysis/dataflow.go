package analysis

import "go/ast"

// Must-dominate dataflow: a forward walk over a function body tracking
// one monotone boolean property ("a force has happened", "the error was
// checked"). At every node the walker reports whether the property is
// established on EVERY path from function entry to that node, so
// analyzers can flag nodes that are reachable with the property still
// unestablished (a 2PC vote reply reachable without a preceding force).
//
// The analysis is deliberately conservative and syntactic:
//
//   - if/else joins AND the branch states; a branch that terminates
//     (return, panic, break, continue, goto) is neutral at the join —
//     early error returns don't poison the happy path.
//   - switch/select AND over the clauses, and AND with the entry state
//     when no default/exhaustive clause exists (the statement may be
//     skipped entirely).
//   - Loop bodies start from the loop's entry state and the loop
//     contributes nothing afterwards (it may run zero times). This is
//     sound for monotone properties: nothing ever un-establishes them.
//   - Function literals are analyzed with the property unestablished —
//     a closure may run at any time, before any satisfier.
//   - defer bodies are skipped: they run at return, after everything,
//     so neither their satisfiers nor their targets belong to the
//     entry-ordered walk.
type MustReach struct {
	// Satisfies reports whether executing n establishes the property.
	// Called in (approximate) evaluation order.
	Satisfies func(n ast.Node) bool
	// Visit receives every expression-level node with the property
	// state holding just before it executes. Analyzers flag their
	// targets here when established is false.
	Visit func(n ast.Node, established bool)
}

// Run walks the function body from entry with the property
// unestablished.
func (m *MustReach) Run(body *ast.BlockStmt) {
	if body == nil {
		return
	}
	m.stmts(body.List, false)
}

// AlwaysSatisfies reports whether every path through body — to every
// return and to fall-off-the-end — passes a node satisfying the
// predicate. Analyzers use it to summarise helper functions ("this
// callee always forces") so a satisfying call behind one level of
// indirection still counts.
func AlwaysSatisfies(body *ast.BlockStmt, satisfies func(ast.Node) bool) bool {
	if body == nil {
		return false
	}
	always := true
	m := &MustReach{
		Satisfies: satisfies,
		Visit: func(n ast.Node, established bool) {
			if _, ok := n.(*ast.ReturnStmt); ok && !established {
				always = false
			}
		},
	}
	out := m.stmts(body.List, false)
	return always && out
}

// stmts folds the walk over a statement list.
func (m *MustReach) stmts(list []ast.Stmt, in bool) bool {
	state := in
	for _, s := range list {
		state = m.stmt(s, state)
	}
	return state
}

// stmt walks one statement, returning the property state after it.
func (m *MustReach) stmt(s ast.Stmt, in bool) bool {
	switch s := s.(type) {
	case nil:
		return in
	case *ast.BlockStmt:
		return m.stmts(s.List, in)
	case *ast.LabeledStmt:
		return m.stmt(s.Stmt, in)
	case *ast.IfStmt:
		state := m.stmt(s.Init, in)
		state = m.expr(s.Cond, state)
		thenOut := m.stmts(s.Body.List, state)
		elseOut := state
		if s.Else != nil {
			elseOut = m.stmt(s.Else, state)
		}
		return thenOut && elseOut
	case *ast.ForStmt:
		state := m.stmt(s.Init, in)
		state = m.expr(s.Cond, state)
		m.stmt(s.Post, state)
		m.stmts(s.Body.List, state)
		// The body may run zero times: only the pre-body state flows on.
		return state
	case *ast.RangeStmt:
		state := m.expr(s.X, in)
		m.stmts(s.Body.List, state)
		return state
	case *ast.SwitchStmt:
		state := m.stmt(s.Init, in)
		state = m.expr(s.Tag, state)
		return m.clauses(s.Body.List, state, hasDefaultClause(s.Body.List))
	case *ast.TypeSwitchStmt:
		state := m.stmt(s.Init, in)
		state = m.expr(s.Assign, state)
		return m.clauses(s.Body.List, state, hasDefaultClause(s.Body.List))
	case *ast.SelectStmt:
		// Every select clause blocks until chosen; exactly one body
		// runs, so the out-state is the AND over clauses.
		out := true
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			state := m.stmt(cc.Comm, in)
			out = out && m.stmts(cc.Body, state)
		}
		if len(s.Body.List) == 0 {
			return in
		}
		return out
	case *ast.ReturnStmt:
		state := in
		for _, r := range s.Results {
			state = m.expr(r, state)
		}
		if m.Visit != nil {
			m.Visit(s, state)
		}
		return true // terminator: neutral at joins
	case *ast.BranchStmt:
		return true // break/continue/goto: neutral at joins
	case *ast.DeferStmt:
		return in // runs at return, outside the entry-ordered walk
	case *ast.GoStmt:
		// The goroutine body runs at an arbitrary later time: analyze
		// any literal afresh, pessimistically.
		if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			m.stmts(fl.Body.List, false)
		}
		for _, a := range s.Call.Args {
			m.expr(a, in)
		}
		return in
	default:
		// Expression-bearing simple statements: ExprStmt, AssignStmt,
		// DeclStmt, SendStmt, IncDecStmt, ...
		return m.expr(s, in)
	}
}

// clauses walks switch/type-switch case bodies. Without a default the
// whole statement may be skipped, so the entry state joins in.
func (m *MustReach) clauses(list []ast.Stmt, in bool, hasDefault bool) bool {
	out := true
	for _, c := range list {
		cc := c.(*ast.CaseClause)
		state := in
		for _, e := range cc.List {
			state = m.expr(e, state)
		}
		out = out && m.stmts(cc.Body, state)
	}
	if len(list) == 0 || !hasDefault {
		out = out && in
	}
	return out
}

func hasDefaultClause(list []ast.Stmt) bool {
	for _, c := range list {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// expr walks an expression or simple statement in evaluation order,
// visiting each node with the running state and folding satisfiers in.
// Assignments visit their right-hand sides first: in `x = force()` the
// assignment itself executes after the call.
func (m *MustReach) expr(n ast.Node, in bool) bool {
	if n == nil {
		return in
	}
	state := in
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, r := range as.Rhs {
			state = m.expr(r, state)
		}
		if m.Visit != nil {
			m.Visit(as, state)
		}
		if m.Satisfies != nil && m.Satisfies(as) {
			state = true
		}
		for _, l := range as.Lhs {
			state = m.expr(l, state)
		}
		return state
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			return true
		}
		if fl, ok := x.(*ast.FuncLit); ok {
			m.stmts(fl.Body.List, false)
			return false
		}
		if m.Visit != nil {
			m.Visit(x, state)
		}
		if m.Satisfies != nil && m.Satisfies(x) {
			state = true
		}
		return true
	})
	return state
}
