package analysis_test

import (
	"testing"

	"mca/internal/analysis"
)

// TestLoadModulePackage loads a real module package (with both stdlib
// and in-module imports) and checks it arrives type-checked, with
// dependencies present but not marked as analysis targets.
func TestLoadModulePackage(t *testing.T) {
	pkgs, err := analysis.Load("../..", "./internal/lock")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	byPath := make(map[string]*analysis.Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	lock, ok := byPath["mca/internal/lock"]
	if !ok {
		t.Fatalf("mca/internal/lock not loaded; got %d packages", len(pkgs))
	}
	if !lock.Target {
		t.Error("matched package not marked Target")
	}
	if len(lock.Files) == 0 || lock.Types == nil || len(lock.TypesInfo.Uses) == 0 {
		t.Error("package loaded without files or type information")
	}
	for _, dep := range []string{"mca/internal/colour", "mca/internal/ids"} {
		p, ok := byPath[dep]
		if !ok {
			t.Errorf("in-module dependency %s not loaded", dep)
			continue
		}
		if p.Target {
			t.Errorf("dependency %s wrongly marked as analysis target", dep)
		}
	}
}

// TestIgnoreDirective checks the diagnostic suppression plumbing end to
// end: an analyzer reporting on every file produces diagnostics that
// the mcalint:ignore filter drops.
func TestIgnoreDirective(t *testing.T) {
	pkgs, err := analysis.Load("../..", "./internal/analysis")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var pkg *analysis.Package
	for _, p := range pkgs {
		if p.Path == "mca/internal/analysis" {
			pkg = p
		}
	}
	if pkg == nil {
		t.Fatal("mca/internal/analysis not loaded")
	}
	probe := &analysis.Analyzer{
		Name: "probe",
		Doc:  "report once per file",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				pass.Reportf(f.Package, "probe finding")
			}
			return nil
		},
	}
	diags, err := pkg.Run(probe)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) != len(pkg.Files) {
		t.Fatalf("got %d diagnostics, want one per file (%d)", len(diags), len(pkg.Files))
	}
	if diags[0].Analyzer != probe {
		t.Errorf("diagnostic attributed to %v, want probe", diags[0].Analyzer)
	}
	pos := pkg.Fset.Position(diags[0].Pos)
	if pos.Filename == "" || pos.Line == 0 {
		t.Errorf("diagnostic has no resolvable position: %v", pos)
	}
}
