// Package analysis is a lightweight, dependency-free analogue of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics. It exists
// so the repository can run project-specific invariant checks (see
// cmd/mcalint) without external module dependencies: packages are loaded
// with `go list`, parsed with go/parser and type-checked with go/types,
// resolving standard-library imports through the compiler's source
// importer.
//
// Diagnostics can be suppressed with a directive comment on the flagged
// line or the line above it:
//
//	//mcalint:ignore <analyzer> <reason>
//
// The reason is required: a directive naming only the analyzer still
// suppresses, but is itself reported (attributed to the pseudo-analyzer
// "ignore"), so every suppression in the tree carries a justification.
package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis: a named check run over a single
// package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// mcalint:ignore directives.
	Name string
	// Doc is a one-line description of what the analyzer reports.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through pass.Reportf. Returning an error aborts the whole run
	// (reserved for internal failures, not findings).
	Run func(*Pass) error
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer *Analyzer
}

// A Pass connects an Analyzer to the package under analysis.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer,
	})
}

// TypeOf returns the type of expression e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("mca/internal/lock").
	Path string
	// Target reports whether the package matched the load patterns
	// (as opposed to being pulled in only as a dependency). Analyzers
	// run on target packages only.
	Target bool

	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Run applies the analyzers to the package and returns the surviving
// diagnostics, sorted by position, with mcalint:ignore directives
// applied.
func (pkg *Package) Run(analyzers ...*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	diags = pkg.filterIgnored(diags)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// NewInfo allocates a types.Info with every map analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// SourceImporter returns an importer that type-checks standard-library
// packages from GOROOT source, positioned on fset. Cgo is disabled so
// packages like net resolve through their pure-Go paths, keeping the
// importer hermetic.
func SourceImporter(fset *token.FileSet) types.ImporterFrom {
	build.Default.CgoEnabled = false
	return importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
}

// CheckPackage type-checks files as one package at the given import
// path, resolving imports through imp.
func CheckPackage(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}, nil
}

// --- ignore directives ---

const ignorePrefix = "//mcalint:ignore"

// IgnoreAnalyzer attributes the diagnostics for malformed
// mcalint:ignore directives (no analyzer name, or no reason). It never
// runs itself — the directive scan inside Package.Run reports under it.
var IgnoreAnalyzer = &Analyzer{
	Name: "ignore",
	Doc:  "require mcalint:ignore directives to carry an analyzer name and a reason",
}

// filterIgnored drops diagnostics suppressed by an mcalint:ignore
// directive on the same line or the line immediately above, and reports
// directives that carry no reason: a suppression without a recorded
// justification is itself a finding.
func (pkg *Package) filterIgnored(diags []Diagnostic) []Diagnostic {
	// ignored maps file name -> line -> analyzer names suppressed there.
	ignored := make(map[string]map[int][]string)
	var bare []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, reason, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				if name == "" {
					bare = append(bare, Diagnostic{
						Pos:      c.Pos(),
						Message:  "mcalint:ignore without an analyzer name (mcalint:ignore <analyzer> <reason>)",
						Analyzer: IgnoreAnalyzer,
					})
					continue
				}
				if reason == "" {
					bare = append(bare, Diagnostic{
						Pos:      c.Pos(),
						Message:  fmt.Sprintf("mcalint:ignore %s without a reason; state why the finding does not apply", name),
						Analyzer: IgnoreAnalyzer,
					})
				}
				pos := pkg.Fset.Position(c.Pos())
				if ignored[pos.Filename] == nil {
					ignored[pos.Filename] = make(map[int][]string)
				}
				ignored[pos.Filename][pos.Line] = append(ignored[pos.Filename][pos.Line], name)
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		lines := ignored[pos.Filename]
		if matchIgnore(lines[pos.Line], d.Analyzer.Name) || matchIgnore(lines[pos.Line-1], d.Analyzer.Name) {
			continue
		}
		kept = append(kept, d)
	}
	return append(kept, bare...)
}

func parseIgnore(comment string) (analyzer, reason string, ok bool) {
	if !strings.HasPrefix(comment, ignorePrefix) {
		return "", "", false
	}
	fields := strings.Fields(strings.TrimPrefix(comment, ignorePrefix))
	if len(fields) == 0 {
		return "", "", true
	}
	if len(fields) == 1 {
		return fields[0], "", true
	}
	return fields[0], strings.Join(fields[1:], " "), true
}

func matchIgnore(names []string, analyzer string) bool {
	for _, n := range names {
		if n == analyzer || n == "all" {
			return true
		}
	}
	return false
}
