package goleak_test

import (
	"testing"

	"mca/internal/analysis/analysistest"
	"mca/internal/analysis/goleak"
)

func TestGoLeak(t *testing.T) {
	analysistest.Run(t, "testdata", goleak.Analyzer, "example/internal/svc")
}
