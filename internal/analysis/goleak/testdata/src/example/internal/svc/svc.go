// Package svc seeds goleak violations: goroutine launches with no way
// to stop or await them, next to the join shapes that must stay silent.
package svc

import (
	"context"
	"sync"
)

type engine struct {
	wg    sync.WaitGroup
	inbox chan int
	stop  chan struct{}
}

func work() {}

func (e *engine) leakyLoop() {
	go func() { // want "no cancellation context, WaitGroup or channel join"
		for {
			work()
		}
	}()
}

func (e *engine) leakyNamed() {
	go spin() // want "no cancellation context, WaitGroup or channel join"
}

func spin() {
	for {
		work()
	}
}

// --- silent patterns ---

func (e *engine) ctxAware(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-e.inbox:
				_ = v
			}
		}
	}()
}

func (e *engine) waitGroupJoined() {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		work()
	}()
}

func (e *engine) methodWithWaitGroup() {
	e.wg.Add(1)
	go e.drain()
}

func (e *engine) drain() {
	defer e.wg.Done()
	work()
}

func (e *engine) doneChannelClosed() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	return done
}

func (e *engine) resultDelivered() <-chan error {
	out := make(chan error, 1)
	go func() {
		out <- nil
	}()
	return out
}

func (e *engine) channelArgJoins() {
	go pump(e.stop)
}

// pump's body is opaque evidence-wise, but it receives a channel.
func pump(stop chan struct{}) {
	<-stop
}

func (e *engine) suppressed() {
	//mcalint:ignore goleak exercised by the directive test
	go func() {
		work()
	}()
}
