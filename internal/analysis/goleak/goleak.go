// Package goleak flags goroutine launches in library code that carry no
// cancellation or join evidence: no context to observe, no WaitGroup to
// signal, no channel to close, send on or select over. Such a goroutine
// cannot be stopped or waited for — under crash/restart churn it leaks,
// and in tests it races shutdown.
//
// The check is evidence-based, not a proof: the launched function body
// (including, for same-package functions and methods, the callee's
// declaration) is scanned for any of
//
//   - a named context.Context value in use,
//   - a channel operation (send, receive, close, select, range),
//   - a sync.WaitGroup Done/Wait call,
//
// and the call's own arguments count when they are contexts, channels
// or WaitGroups. Launches with none of these are reported.
package goleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"mca/internal/analysis"
)

// Analyzer is the goleak analysis.
var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc:  "flag goroutine launches without cancellation or join evidence",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsLibraryPackage(pass.Pkg.Path()) {
		return nil
	}
	decls := indexFuncDecls(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !hasJoinEvidence(pass, g, decls) {
				pass.Reportf(g.Pos(), "goroutine launched with no cancellation context, WaitGroup or channel join; it cannot be stopped or awaited")
			}
			return true
		})
	}
	return nil
}

// indexFuncDecls maps this package's function objects to their
// declarations so the launched callee's body can be inspected.
func indexFuncDecls(pass *analysis.Pass) map[types.Object]*ast.FuncDecl {
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	return decls
}

func hasJoinEvidence(pass *analysis.Pass, g *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) bool {
	// Arguments handed to the goroutine: a context, channel or
	// WaitGroup passed in is assumed to be honoured.
	for _, arg := range g.Call.Args {
		if joinCapableType(pass.TypeOf(arg)) {
			return true
		}
	}
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return bodyHasEvidence(pass, fun.Body)
	default:
		f, ok := analysis.CalleeFunc(pass.TypesInfo, g.Call)
		if !ok {
			return false
		}
		decl, ok := decls[f]
		if !ok || decl.Body == nil {
			// Callee body not visible (other package): only the
			// arguments could prove join capability, and they did not.
			return false
		}
		return bodyHasEvidence(pass, decl.Body)
	}
}

func joinCapableType(t types.Type) bool {
	if t == nil {
		return false
	}
	return analysis.IsContextType(t) || analysis.IsChanType(t) ||
		analysis.NamedFrom(t, "sync", "WaitGroup")
}

// bodyHasEvidence scans a launched function body for cancellation/join
// machinery.
func bodyHasEvidence(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			// A named context value in use (ctx.Done(), passing ctx on).
			if obj := pass.TypesInfo.Uses[n]; obj != nil {
				if _, isVar := obj.(*types.Var); isVar && analysis.IsContextType(obj.Type()) {
					found = true
				}
			}
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if analysis.IsChanType(pass.TypeOf(n.X)) {
				found = true
			}
		case *ast.CallExpr:
			if isClose(pass, n) || isWaitGroupSignal(pass, n) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isClose(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "close"
}

func isWaitGroupSignal(pass *analysis.Pass, call *ast.CallExpr) bool {
	f, ok := analysis.CalleeFunc(pass.TypesInfo, call)
	if !ok {
		return false
	}
	if f.Name() != "Done" && f.Name() != "Wait" {
		return false
	}
	return analysis.NamedFrom(analysis.RecvType(f), "sync", "WaitGroup")
}
