package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"mca/internal/analysis"
)

// parseFunc returns the body of the first function in src.
func parseFunc(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "t.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd.Body
		}
	}
	t.Fatal("no function in source")
	return nil
}

// stateAtTarget runs MustReach with force() as the satisfier and
// reports the established state observed at the call to target().
func stateAtTarget(t *testing.T, src string) bool {
	t.Helper()
	isCall := func(n ast.Node, name string) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == name
	}
	seen := false
	state := true
	m := &analysis.MustReach{
		Satisfies: func(n ast.Node) bool { return isCall(n, "force") },
		Visit: func(n ast.Node, established bool) {
			if isCall(n, "target") {
				seen = true
				state = state && established
			}
		},
	}
	m.Run(parseFunc(t, src))
	if !seen {
		t.Fatal("target() never visited")
	}
	return state
}

func TestMustReach(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"straight line", `func f() { force(); target() }`, true},
		{"never forced", `func f() { target(); force() }`, false},
		{"both branches", `func f(b bool) { if b { force() } else { force() }; target() }`, true},
		{"one branch", `func f(b bool) { if b { force() }; target() }`, false},
		{"early return neutral", `func f() error { if err := force(); err != nil { return err }; target(); return nil }`, true},
		{"loop may skip body", `func f(n int) { for i := 0; i < n; i++ { force() }; target() }`, false},
		{"forced before loop", `func f(n int) { force(); for i := 0; i < n; i++ { target() } }`, true},
		{"switch without default", `func f(x int) { switch x { case 1: force() }; target() }`, false},
		{"switch all cases and default", `func f(x int) { switch x { case 1: force(); default: force() }; target() }`, true},
		{"closure is pessimistic", `func f() { force(); go func() { target() }() }`, false},
		{"assignment rhs runs first", `func f() { err := force(); _ = err; target() }`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := stateAtTarget(t, tc.src); got != tc.want {
				t.Errorf("established = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestAlwaysSatisfies(t *testing.T) {
	isForce := func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "force"
	}
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"unconditional", `func f() { force() }`, true},
		{"conditional", `func f(b bool) { if b { force() } }`, false},
		{"early return before force", `func f(b bool) { if b { return }; force() }`, false},
		{"all paths return after force", `func f(b bool) error { if err := force(); err != nil { return err }; return nil }`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := analysis.AlwaysSatisfies(parseFunc(t, tc.src), isForce); got != tc.want {
				t.Errorf("AlwaysSatisfies = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestIgnoreDirectiveHygiene checks that a reasonless mcalint:ignore
// still suppresses but is itself reported under the "ignore"
// pseudo-analyzer.
func TestIgnoreDirectiveHygiene(t *testing.T) {
	src := `package p

func a() {
	//mcalint:ignore always demonstration: a justified suppression stays silent
	flagged()
}

func b() {
	//mcalint:ignore always
	flagged()
}

func flagged() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg, err := analysis.CheckPackage(fset, "p", []*ast.File{f}, analysis.SourceImporter(fset))
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	always := &analysis.Analyzer{
		Name: "always",
		Doc:  "flags every call to flagged()",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "flagged" {
							pass.Reportf(call.Pos(), "flagged call")
						}
					}
					return true
				})
			}
			return nil
		},
	}
	diags, err := pkg.Run(always)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the bare-directive one: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != analysis.IgnoreAnalyzer {
		t.Errorf("diagnostic attributed to %q, want the ignore pseudo-analyzer", d.Analyzer.Name)
	}
	if !strings.Contains(d.Message, "without a reason") {
		t.Errorf("unexpected message: %s", d.Message)
	}
}
