// Package lock seeds metricsname violations: metrics registered by a
// package must carry its mca_<pkg>_ prefix.
package lock

import "example/internal/metrics"

const histName = "mca_dist_round_ns" // wrong subsystem, caught at the call

func register(r *metrics.Registry, dynamic string) {
	// --- violations ---
	r.Counter("lock_acquires_total", "missing the mca_ prefix")     // want "must be named mca_lock_"
	r.Counter("mca_dist_acquires_total", "another package's name")  // want "must be named mca_lock_"
	r.Histogram(histName, "constant resolved through an identifier") // want "must be named mca_lock_"
	r.CounterVec("bad", "short and wrong", []string{"mode"})         // want "must be named mca_lock_"
	r.GaugeVecFunc("mca_locks_depth", "near miss: mca_locks_ is not mca_lock_", nil, nil) // want "must be named mca_lock_"

	// --- silent patterns ---
	r.Counter("mca_lock_acquires_total", "correctly prefixed")
	r.Histogram("mca_lock_block_ns", "correctly prefixed")
	r.GaugeVec("mca_lock_shard_entries", "correctly prefixed", []string{"shard"})
	r.Gauge(dynamic, "dynamic names are the registry's problem")
	r.Counter("mca_lock_"+dynamic, "non-constant concatenation")

	//mcalint:ignore metricsname exercised by the directive test
	r.Counter("legacy_name_total", "suppressed")
}
