// Package metrics stubs the repository's telemetry registry at a
// matching import path for metricsname fixtures. The package gets a
// widened allowance, not an exemption: mca_metrics_ (its own prefix)
// and mca_runtime_ (the Go runtime collectors it hosts) pass, anything
// else is flagged like in any other package.
package metrics

// Counter is a monotonic counter.
type Counter struct{}

// Gauge is a settable value.
type Gauge struct{}

// Histogram is a power-of-two histogram.
type Histogram struct{}

// Emit emits one labelled sample.
type Emit func(value float64, labelValues ...string)

// CounterVec is a labelled counter family.
type CounterVec struct{}

// GaugeVec is a labelled gauge family.
type GaugeVec struct{}

// HistogramVec is a labelled histogram family.
type HistogramVec struct{}

// Registry holds registered metric families.
type Registry struct{}

// Counter registers a counter.
func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

// Gauge registers a gauge.
func (r *Registry) Gauge(name, help string) *Gauge { return &Gauge{} }

// Histogram registers a histogram.
func (r *Registry) Histogram(name, help string) *Histogram { return &Histogram{} }

// CounterFunc registers a gather-time counter.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {}

// GaugeFunc registers a gather-time gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {}

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labelNames []string) *CounterVec {
	return &CounterVec{}
}

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames []string) *GaugeVec {
	return &GaugeVec{}
}

// HistogramVec registers a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, labelNames []string) *HistogramVec {
	return &HistogramVec{}
}

// CounterVecFunc registers a gather-time labelled counter family.
func (r *Registry) CounterVecFunc(name, help string, labelNames []string, collect func(Emit)) {}

// GaugeVecFunc registers a gather-time labelled gauge family.
func (r *Registry) GaugeVecFunc(name, help string, labelNames []string, collect func(Emit)) {}

// Default returns the process-global registry.
func Default() *Registry { return &Registry{} }

var (
	own     = Default().Counter("mca_metrics_families_total", "own-prefix names pass")
	runtime = Default().GaugeVec("mca_runtime_goroutines", "the runtime carve-out passes", nil)
	freer   = Default().Counter("free_form_name", "anything else is flagged") // want `metric "free_form_name" registered by this package must be named mca_metrics_<name> or mca_runtime_<name> \(DESIGN.md §10\)`
)
