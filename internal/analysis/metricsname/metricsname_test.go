package metricsname_test

import (
	"testing"

	"mca/internal/analysis/analysistest"
	"mca/internal/analysis/metricsname"
)

func TestMetricsName(t *testing.T) {
	analysistest.Run(t, "testdata", metricsname.Analyzer, "example/internal/lock")
}

// TestMetricsPackageExempt checks internal/metrics itself may register
// under any name: its tests and examples are not subsystem metrics.
func TestMetricsPackageExempt(t *testing.T) {
	analysistest.Run(t, "testdata", metricsname.Analyzer, "example/internal/metrics")
}
