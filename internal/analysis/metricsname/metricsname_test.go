package metricsname_test

import (
	"testing"

	"mca/internal/analysis/analysistest"
	"mca/internal/analysis/metricsname"
)

func TestMetricsName(t *testing.T) {
	analysistest.Run(t, "testdata", metricsname.Analyzer, "example/internal/lock")
}

// TestMetricsPackageAllowance checks internal/metrics' widened
// allowance: its own mca_metrics_ prefix and the mca_runtime_ carve-out
// (the Go runtime collectors it hosts) pass; free-form names are
// flagged like anywhere else.
func TestMetricsPackageAllowance(t *testing.T) {
	analysistest.Run(t, "testdata", metricsname.Analyzer, "example/internal/metrics")
}
