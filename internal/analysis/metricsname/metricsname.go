// Package metricsname enforces the metric naming convention of
// DESIGN.md §10: every metric registered by a library package must be
// named "mca_<pkg>_<name>", where <pkg> is the basename of the
// registering package. The prefix is what lets a scrape's metric names
// map back to the code that owns them; a counter registered by
// internal/lock under "mca_dist_…" (or with no prefix at all) would
// point debugging at the wrong subsystem.
//
// It checks the name argument of registration calls on
// metrics.Registry (Counter, Gauge, Histogram, the *Vec and *Func
// variants) when that argument is a compile-time constant; dynamically
// built names are left to the registry's own runtime validation.
// internal/metrics itself gets a wider allowance instead of the
// per-package prefix: besides its own mca_metrics_ names it registers
// the Go runtime collectors, which live under mca_runtime_ — a
// deliberate cross-package family (the data is the runtime's, not the
// metrics plumbing's). Anything else registered there is still flagged.
package metricsname

import (
	"go/ast"
	"go/constant"
	"path"
	"strings"

	"mca/internal/analysis"
)

// Analyzer is the metricsname analysis.
var Analyzer = &analysis.Analyzer{
	Name: "metricsname",
	Doc:  "flag metric registrations whose name lacks the mca_<pkg>_ prefix",
	Run:  run,
}

// registrationMethods are the metrics.Registry methods whose first
// argument is the metric name.
var registrationMethods = map[string]bool{
	"Counter":        true,
	"Gauge":          true,
	"Histogram":      true,
	"CounterFunc":    true,
	"GaugeFunc":      true,
	"CounterVec":     true,
	"GaugeVec":       true,
	"HistogramVec":   true,
	"CounterVecFunc": true,
	"GaugeVecFunc":   true,
}

func run(pass *analysis.Pass) error {
	pkgPath := pass.Pkg.Path()
	if !analysis.IsLibraryPackage(pkgPath) {
		return nil
	}
	// internal/metrics registers two families: its own plumbing under
	// mca_metrics_ and the Go runtime collectors under mca_runtime_.
	prefixes := []string{"mca_" + path.Base(pkgPath) + "_"}
	if analysis.PathMatches(pkgPath, "internal/metrics") {
		prefixes = append(prefixes, "mca_runtime_")
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkRegistration(pass, call, prefixes)
			return true
		})
	}
	return nil
}

func checkRegistration(pass *analysis.Pass, call *ast.CallExpr, prefixes []string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !registrationMethods[sel.Sel.Name] || len(call.Args) == 0 {
		return
	}
	recv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !analysis.NamedFrom(recv.Type, "internal/metrics", "Registry") {
		return
	}
	nameArg, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || nameArg.Value == nil || nameArg.Value.Kind() != constant.String {
		return // dynamic name: the registry validates at runtime
	}
	name := constant.StringVal(nameArg.Value)
	for _, p := range prefixes {
		if strings.HasPrefix(name, p) {
			return
		}
	}
	pass.Reportf(call.Args[0].Pos(),
		"metric %q registered by this package must be named %s<name> (DESIGN.md §10)",
		name, strings.Join(prefixes, "<name> or "))
}
