package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
}

// Load type-checks the packages matching patterns (plus their in-module
// dependencies) in the module rooted at or above dir, and returns them
// ready for analysis. Only non-test Go files are loaded: analyzers
// police library code, and tests legitimately use patterns (ambient
// contexts, hand-rolled colours) the analyzers forbid in libraries.
//
// Standard-library imports are resolved through the source importer;
// module-internal imports are served from the packages loaded here, in
// the dependency order `go list -deps` guarantees.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	deps, err := goList(dir, append([]string{"-deps"}, patterns...))
	if err != nil {
		return nil, err
	}
	matched, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	targets := make(map[string]bool, len(matched))
	for _, p := range matched {
		targets[p.ImportPath] = true
	}

	fset := token.NewFileSet()
	imp := &moduleImporter{
		std:   SourceImporter(fset),
		cache: make(map[string]*types.Package),
	}

	var pkgs []*Package
	for _, lp := range deps {
		if lp.Standard {
			continue // resolved by the source importer on demand
		}
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		pkg, err := CheckPackage(fset, lp.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkg.Target = targets[lp.ImportPath]
		imp.cache[lp.ImportPath] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// moduleImporter serves already-checked module packages and falls back
// to the standard-library source importer for everything else.
type moduleImporter struct {
	std   types.ImporterFrom
	cache map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := m.cache[path]; ok {
		return p, nil
	}
	return m.std.ImportFrom(path, srcDir, mode)
}

// goList runs `go list -json` with the given arguments in dir and
// decodes the package stream.
func goList(dir string, args []string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %w: %s", err, stderr.String())
	}
	var out []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("decode go list output: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}
