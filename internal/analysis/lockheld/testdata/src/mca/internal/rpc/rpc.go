// Package rpc stubs the repository's RPC layer at its real import path
// so lockheld fixtures can exercise the blocking-call detection.
package rpc

import "context"

// Peer mirrors the blocking surface of the real rpc.Peer.
type Peer struct{}

// Call blocks until the remote replies or ctx ends.
func (*Peer) Call(ctx context.Context, method string) error { return nil }
