// Package a seeds lockheld violations: mutexes held across blocking
// operations, plus the release patterns that must stay silent.
package a

import (
	"context"
	"sync"
	"time"

	"mca/internal/rpc"
)

type server struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	peer *rpc.Peer
	ch   chan int
	stop chan struct{}
}

func (s *server) sendWhileLocked() {
	s.mu.Lock()
	s.ch <- 1 // want "s.mu held across channel send"
	s.mu.Unlock()
}

func (s *server) recvWhileDeferred() {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-s.ch // want "s.mu held across channel receive"
}

func (s *server) rpcWhileLocked(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peer.Call(ctx, "dist.prepare") // want "s.mu held across rpc call"
}

func (s *server) sleepWhileReadLocked() {
	s.rw.RLock()
	time.Sleep(time.Millisecond) // want "s.rw held across time.Sleep"
	s.rw.RUnlock()
}

func (s *server) selectWhileLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "s.mu held across select without default"
	case <-s.stop:
	case v := <-s.ch:
		_ = v
	}
}

func (s *server) waitGroupWhileLocked(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want "s.mu held across WaitGroup.Wait"
	s.mu.Unlock()
}

func (s *server) rangeChanWhileLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.ch { // want "s.mu held across range over channel"
		_ = v
	}
}

// --- silent patterns ---

func (s *server) releasedBeforeBlocking() {
	s.mu.Lock()
	v := len(s.ch)
	s.mu.Unlock()
	s.ch <- v // released first: ok
}

func (s *server) goroutineBodyNotHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- 1 // runs on another goroutine, not under s.mu: ok
	}()
}

func (s *server) branchReleaseThenBlock(done bool) {
	s.mu.Lock()
	if done {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	<-s.ch // conservatively treated as released: ok
}

func (s *server) selectWithDefault() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		_ = v
	default: // non-blocking poll under the lock: ok
	}
}

func (s *server) condWait(c *sync.Cond) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c.Wait() // sync.Cond releases its locker while waiting: ok
}

func (s *server) suppressed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//mcalint:ignore lockheld exercised by the directive test
	s.ch <- 1
}
