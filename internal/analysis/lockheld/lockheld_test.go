package lockheld_test

import (
	"testing"

	"mca/internal/analysis/analysistest"
	"mca/internal/analysis/lockheld"
)

func TestLockHeld(t *testing.T) {
	analysistest.Run(t, "testdata", lockheld.Analyzer, "a")
}
