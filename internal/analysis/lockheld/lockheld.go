// Package lockheld reports sync.Mutex / sync.RWMutex critical sections
// that perform a blocking operation while the lock is held: channel
// sends and receives, selects without a default, RPC calls, time.Sleep,
// WaitGroup waits and blocking lock-manager acquires. Holding a mutex
// across any of these is the deadlock shape the parallel 2PC fan-out
// made reachable: the blocked goroutine pins the mutex, and the
// goroutine that would unblock it needs that same mutex.
//
// The analysis is flow-approximate and errs toward silence: a lock
// taken or released on only some paths is treated as released, and
// function literals are analyzed as their own critical sections (their
// bodies run on other goroutines or after return, not under the
// caller's lock).
package lockheld

import (
	"go/ast"
	"go/token"
	"sort"

	"mca/internal/analysis"
)

// Analyzer is the lockheld analysis.
var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc:  "report mutexes held across blocking operations",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					c.block(n.Body.List, map[string]token.Pos{})
				}
			case *ast.FuncLit:
				c.block(n.Body.List, map[string]token.Pos{})
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// block processes a statement list in order, tracking which mutexes are
// held.
func (c *checker) block(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, s := range stmts {
		c.stmt(s, held)
	}
}

func (c *checker) stmt(s ast.Stmt, held map[string]token.Pos) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, kind := c.lockOp(s.X); kind == opLock {
			held[key] = s.Pos()
			return
		} else if kind == opUnlock {
			delete(held, key)
			return
		}
		c.scan(s.X, held)
	case *ast.DeferStmt:
		if _, kind := c.lockOp(s.Call); kind == opUnlock {
			// Deferred unlock: the lock is intentionally held to
			// function end; blocking ops after this still count.
			return
		}
		// Arguments are evaluated now; the call body runs at return.
		for _, a := range s.Call.Args {
			c.scan(a, held)
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			c.scan(a, held)
		}
	case *ast.SendStmt:
		c.scan(s.Chan, held)
		c.scan(s.Value, held)
		c.report(s.Arrow, held, "channel send")
	case *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
		*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt:
		c.compound(s, held)
	case nil:
	default:
		// Assignments, declarations, returns, inc/dec, ...: scan the
		// whole statement for blocking expressions.
		c.scan(s, held)
	}
}

// compound processes a statement with nested blocks. Branch bodies see
// a copy of the held set; afterwards, any mutex unlocked anywhere
// inside the statement is conservatively treated as released.
func (c *checker) compound(s ast.Stmt, held map[string]token.Pos) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.block(s.List, clone(held))
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, held)
		return // the labeled statement handled release bookkeeping
	case *ast.IfStmt:
		inner := clone(held)
		if s.Init != nil {
			c.stmt(s.Init, inner)
		}
		c.scan(s.Cond, inner)
		c.block(s.Body.List, inner)
		if s.Else != nil {
			c.stmt(s.Else, clone(held))
		}
	case *ast.ForStmt:
		inner := clone(held)
		if s.Init != nil {
			c.stmt(s.Init, inner)
		}
		if s.Cond != nil {
			c.scan(s.Cond, inner)
		}
		c.block(s.Body.List, inner)
		if s.Post != nil {
			c.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		c.scan(s.X, held)
		if analysis.IsChanType(c.pass.TypeOf(s.X)) {
			c.report(s.For, held, "range over channel")
		}
		c.block(s.Body.List, clone(held))
	case *ast.SwitchStmt:
		inner := clone(held)
		if s.Init != nil {
			c.stmt(s.Init, inner)
		}
		if s.Tag != nil {
			c.scan(s.Tag, inner)
		}
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					c.scan(e, inner)
				}
				c.block(cc.Body, clone(inner))
			}
		}
	case *ast.TypeSwitchStmt:
		inner := clone(held)
		if s.Init != nil {
			c.stmt(s.Init, inner)
		}
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				c.block(cc.Body, clone(inner))
			}
		}
	case *ast.SelectStmt:
		if !analysis.HasDefault(s) {
			c.report(s.Select, held, "select without default")
		}
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CommClause); ok {
				// The comm ops themselves are part of the (possibly
				// non-blocking) select; only the chosen body runs
				// with the lock still held.
				c.block(cc.Body, clone(held))
			}
		}
	}
	// A branch may have released a mutex before returning; treating it
	// as released avoids flagging `if done { mu.Unlock(); return }`
	// tails.
	for key := range held {
		if c.unlocksKey(s, key) {
			delete(held, key)
		}
	}
}

// scan walks an expression or simple statement looking for blocking
// operations, skipping function literals (their bodies do not run under
// the current lock).
func (c *checker) scan(n ast.Node, held map[string]token.Pos) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.report(n.OpPos, held, "channel receive")
			}
		case *ast.SendStmt:
			c.report(n.Arrow, held, "channel send")
		case *ast.CallExpr:
			if what, ok := c.blockingCall(n); ok {
				c.report(n.Pos(), held, what)
			}
		}
		return true
	})
}

func (c *checker) report(pos token.Pos, held map[string]token.Pos, what string) {
	if len(held) == 0 {
		return
	}
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	c.pass.Reportf(pos, "%s held across %s; release the mutex first or move the blocking operation out", keys[0], what)
}

// lockOp classifies e as a mutex Lock/Unlock call and returns the
// receiver key.
func (c *checker) lockOp(e ast.Expr) (key string, kind lockOpKind) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", opNone
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return "", opNone
	}
	recv := c.pass.TypeOf(sel.X)
	if !analysis.NamedFrom(recv, "sync", "Mutex") && !analysis.NamedFrom(recv, "sync", "RWMutex") {
		return "", opNone
	}
	key, ok = analysis.ExprKey(sel.X)
	if !ok {
		return "", opNone
	}
	return key, kind
}

// unlocksKey reports whether any statement inside s unlocks the mutex
// named by key.
func (c *checker) unlocksKey(s ast.Stmt, key string) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if k, kind := c.lockOp(call); kind == opUnlock && k == key {
				found = true
			}
		}
		return true
	})
	return found
}

// blockingCall reports whether the call blocks the goroutine in a way
// that must not happen under a mutex.
func (c *checker) blockingCall(call *ast.CallExpr) (string, bool) {
	f, ok := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if !ok {
		return "", false
	}
	path := analysis.FuncPkgPath(f)
	switch f.Name() {
	case "Sleep":
		if path == "time" {
			return "time.Sleep", true
		}
	case "Wait":
		if analysis.NamedFrom(analysis.RecvType(f), "sync", "WaitGroup") {
			return "WaitGroup.Wait", true
		}
	case "Call":
		if analysis.PathMatches(path, "internal/rpc") {
			return "rpc call", true
		}
	case "Acquire":
		if analysis.PathMatches(path, "internal/lock") {
			return "blocking lock acquire", true
		}
	case "Recv":
		if analysis.IsLibraryPackage(path) {
			return "transport receive", true
		}
	}
	return "", false
}

func clone(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}
