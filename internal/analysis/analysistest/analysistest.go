// Package analysistest runs an analyzer over a fixture package tree and
// checks its diagnostics against expectations embedded in the fixture
// sources, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdata>/src/<importpath>/: each directory is
// one package, imports between fixture packages resolve within the tree
// (so a fixture can stub real module packages at their real import
// paths), and standard-library imports resolve from GOROOT source.
//
// An expectation is a comment on the offending line:
//
//	mu.Lock()
//	ch <- 1 // want "held across"
//
// The quoted string is a regular expression matched against the
// diagnostic message; several strings expect several diagnostics on the
// same line.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mca/internal/analysis"
)

// Run loads the fixture package at <testdata>/src/<pkgPath>, applies
// the analyzer, and reports any mismatch between produced and expected
// diagnostics as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &fixtureLoader{
		srcRoot: filepath.Join(testdata, "src"),
		fset:    fset,
		std:     analysis.SourceImporter(fset),
		cache:   make(map[string]*analysis.Package),
	}
	pkg, err := ld.load(pkgPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", pkgPath, err)
	}
	diags, err := pkg.Run(a)
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	expected := collectWants(t, fset, pkg.Files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := lineKey{file: pos.Filename, line: pos.Line}
		if i := matchWant(expected[key], d.Message); i >= 0 {
			expected[key] = append(expected[key][:i], expected[key][i+1:]...)
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
	}
	for key, wants := range expected {
		for _, w := range wants {
			t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w)
		}
	}
}

type lineKey struct {
	file string
	line int
}

// wantRE extracts the quoted expectations of a `// want "..." "..."`
// comment.
var wantRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[lineKey][]string {
	t.Helper()
	expected := make(map[lineKey][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				pos := fset.Position(c.Pos())
				key := lineKey{file: pos.Filename, line: pos.Line}
				for _, q := range wantRE.FindAllString(text[idx:], -1) {
					pattern, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					expected[key] = append(expected[key], pattern)
				}
			}
		}
	}
	return expected
}

func matchWant(wants []string, message string) int {
	for i, w := range wants {
		if ok, err := regexp.MatchString(w, message); err == nil && ok {
			return i
		}
	}
	return -1
}

// fixtureLoader type-checks fixture packages, resolving fixture-tree
// imports recursively and everything else from the standard library.
type fixtureLoader struct {
	srcRoot string
	fset    *token.FileSet
	std     types.ImporterFrom
	cache   map[string]*analysis.Package
}

func (l *fixtureLoader) load(pkgPath string) (*analysis.Package, error) {
	if pkg, ok := l.cache[pkgPath]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := l.parseFile(dir, e.Name())
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in fixture %s", dir)
	}
	pkg, err := analysis.CheckPackage(l.fset, pkgPath, files, (*fixtureImporter)(l))
	if err != nil {
		return nil, err
	}
	l.cache[pkgPath] = pkg
	return pkg, nil
}

// fixtureImporter adapts fixtureLoader to types.Importer.
type fixtureImporter fixtureLoader

func (l *fixtureImporter) Import(path string) (*types.Package, error) {
	if fi, err := os.Stat(filepath.Join(l.srcRoot, filepath.FromSlash(path))); err == nil && fi.IsDir() {
		pkg, err := (*fixtureLoader)(l).load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, "", 0)
}

func (l *fixtureLoader) parseFile(dir, name string) (*ast.File, error) {
	return parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
}
