package diary_test

import (
	"errors"
	"testing"

	"mca/internal/action"
	"mca/internal/colour"
	"mca/internal/diary"
	"mca/internal/lock"
	"mca/internal/object"
	"mca/internal/store"
)

func group(rt *action.Runtime, people int, slots int, opts ...object.Option) []*diary.Diary {
	names := []string{"ada", "bob", "carol", "dan", "erin", "frank"}
	out := make([]*diary.Diary, people)
	for i := range out {
		out[i] = diary.NewDiary(names[i%len(names)], slots, opts...)
	}
	return out
}

func TestArrangeSimple(t *testing.T) {
	rt := action.NewRuntime()
	diaries := group(rt, 3, 10)
	s := diary.NewScheduler(rt, diaries...)

	chosen, err := s.Arrange([]int{2, 4, 6, 8}, "design review")
	if err != nil {
		t.Fatalf("Arrange: %v", err)
	}
	if chosen != 2 {
		t.Fatalf("chosen = %d, want the smallest free slot 2", chosen)
	}
	for _, d := range diaries {
		slot := d.Peek(chosen)
		if !slot.Busy || slot.Note != "design review" {
			t.Fatalf("%s slot %d = %+v", d.Owner(), chosen, slot)
		}
	}
}

func TestArrangeRespectsBusySlots(t *testing.T) {
	rt := action.NewRuntime()
	diaries := group(rt, 3, 10)
	s := diary.NewScheduler(rt, diaries...)

	// Slot 2 busy for one attendee, slot 4 for another.
	if err := diaries[0].BookDirect(rt, 2, "dentist"); err != nil {
		t.Fatal(err)
	}
	if err := diaries[1].BookDirect(rt, 4, "travel"); err != nil {
		t.Fatal(err)
	}
	chosen, err := s.Arrange([]int{2, 4, 6}, "meeting")
	if err != nil {
		t.Fatal(err)
	}
	if chosen != 6 {
		t.Fatalf("chosen = %d, want 6", chosen)
	}
}

func TestArrangeNoCommonSlot(t *testing.T) {
	rt := action.NewRuntime()
	diaries := group(rt, 2, 4)
	s := diary.NewScheduler(rt, diaries...)

	if err := diaries[0].BookDirect(rt, 1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := diaries[1].BookDirect(rt, 3, "y"); err != nil {
		t.Fatal(err)
	}
	_, err := s.Arrange([]int{1, 3}, "meeting")
	if !errors.Is(err, diary.ErrNoCommonSlot) {
		t.Fatalf("Arrange = %v, want ErrNoCommonSlot", err)
	}
	// Nothing was booked.
	for _, d := range diaries {
		for i := 0; i < d.Slots(); i++ {
			if sl := d.Peek(i); sl.Busy && sl.Note == "meeting" {
				t.Fatalf("spurious booking at %s[%d]", d.Owner(), i)
			}
		}
	}
}

func TestArrangeNarrowingRounds(t *testing.T) {
	// Fig 9: I1 selects candidates, I2..In narrow. The candidate
	// counts must be non-increasing and match the narrowing.
	rt := action.NewRuntime()
	diaries := group(rt, 4, 16)
	s := diary.NewScheduler(rt, diaries...)

	keepEven := func(cs []int) []int {
		var out []int
		for _, c := range cs {
			if c%2 == 0 {
				out = append(out, c)
			}
		}
		return out
	}
	keepLast := func(cs []int) []int {
		if len(cs) == 0 {
			return nil
		}
		return cs[len(cs)-1:]
	}

	chosen, err := s.Arrange([]int{1, 2, 3, 4, 5, 6, 7, 8}, "offsite", keepEven, keepLast)
	if err != nil {
		t.Fatal(err)
	}
	if chosen != 8 {
		t.Fatalf("chosen = %d, want 8 (evens, then last)", chosen)
	}
	rounds := s.RoundCandidates()
	if len(rounds) != 3 {
		t.Fatalf("rounds = %v", rounds)
	}
	if rounds[0] != 8 || rounds[1] != 4 || rounds[2] != 1 {
		t.Fatalf("candidate narrowing = %v, want [8 4 1]", rounds)
	}
}

func TestDroppedSlotsReleasedBetweenRounds(t *testing.T) {
	// The point of gluing rather than one big action: dropped slots
	// become available to others while the negotiation continues.
	rt := action.NewRuntime()
	diaries := group(rt, 2, 8)
	s := diary.NewScheduler(rt, diaries...)

	probeResult := make(chan error, 1)
	narrowAndProbe := func(cs []int) []int {
		// Keep only the first candidate; after this round commits,
		// the dropped ones must be externally lockable.
		return cs[:1]
	}
	finalCheck := func(cs []int) []int {
		// Runs in round 3 (after round 2 committed): probe slot 5,
		// dropped in round 2.
		outsider, err := rt.Begin()
		if err != nil {
			probeResult <- err
			return cs
		}
		err = outsider.TryLock(diaries[0].SlotObject(5).ObjectID(), lock.Write, colour.None)
		probeResult <- err
		_ = outsider.Abort()
		return cs
	}

	chosen, err := s.Arrange([]int{1, 5, 7}, "standup", narrowAndProbe, finalCheck)
	if err != nil {
		t.Fatal(err)
	}
	if chosen != 1 {
		t.Fatalf("chosen = %d", chosen)
	}
	if err := <-probeResult; err != nil {
		t.Fatalf("slot dropped in round 2 still locked in round 3: %v", err)
	}
}

func TestSlotsLockedDuringNegotiation(t *testing.T) {
	rt := action.NewRuntime()
	diaries := group(rt, 2, 8)
	s := diary.NewScheduler(rt, diaries...)

	locked := make(chan error, 1)
	probe := func(cs []int) []int {
		outsider, err := rt.Begin()
		if err != nil {
			locked <- err
			return cs
		}
		// A surviving candidate must be locked against outsiders.
		err = outsider.TryLock(diaries[0].SlotObject(cs[0]).ObjectID(), lock.Write, colour.None)
		locked <- err
		_ = outsider.Abort()
		return cs
	}
	if _, err := s.Arrange([]int{3, 4}, "sync", probe); err != nil {
		t.Fatal(err)
	}
	if err := <-locked; !errors.Is(err, lock.ErrConflict) {
		t.Fatalf("candidate slot lock probe = %v, want ErrConflict", err)
	}
}

func TestCommittedRoundsSurviveLaterFailure(t *testing.T) {
	// A later round failing does not undo earlier rounds' committed
	// effects (here: rounds only lock; the property shows as "no
	// bookings" plus no deadlocked locks).
	rt := action.NewRuntime()
	diaries := group(rt, 2, 6)
	s := diary.NewScheduler(rt, diaries...)

	killRound := func(cs []int) []int { return nil } // eliminates everything
	_, err := s.Arrange([]int{1, 2}, "doomed", killRound)
	if !errors.Is(err, diary.ErrNoCommonSlot) {
		t.Fatalf("Arrange = %v", err)
	}
	// All slots free and unlocked afterwards.
	outsider, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diaries {
		for i := 0; i < d.Slots(); i++ {
			if err := outsider.TryLock(d.SlotObject(i).ObjectID(), lock.Write, colour.None); err != nil {
				t.Fatalf("slot %s[%d] left locked: %v", d.Owner(), i, err)
			}
		}
	}
	_ = outsider.Abort()
}

func TestArrangePersistsBookings(t *testing.T) {
	rt := action.NewRuntime()
	st := store.NewStable()
	diaries := group(rt, 2, 4, object.WithStore(st))
	s := diary.NewScheduler(rt, diaries...)

	chosen, err := s.Arrange([]int{0, 1, 2, 3}, "quarterly")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diaries {
		loaded, err := object.Load[diary.Slot](d.SlotObject(chosen).ObjectID(), st)
		if err != nil {
			t.Fatalf("booked slot not stable: %v", err)
		}
		if got := loaded.Peek(); !got.Busy || got.Note != "quarterly" {
			t.Fatalf("stable slot = %+v", got)
		}
	}
}

func TestBookConflict(t *testing.T) {
	rt := action.NewRuntime()
	d := diary.NewDiary("ada", 3)
	if err := d.BookDirect(rt, 1, "first"); err != nil {
		t.Fatal(err)
	}
	if err := d.BookDirect(rt, 1, "second"); err == nil {
		t.Fatal("double booking must fail")
	}
	if got := d.Peek(1); got.Note != "first" {
		t.Fatalf("slot = %+v", got)
	}
}

func TestUnknownSlot(t *testing.T) {
	rt := action.NewRuntime()
	d := diary.NewDiary("ada", 2)
	if err := d.BookDirect(rt, 7, "x"); !errors.Is(err, diary.ErrUnknownSlot) {
		t.Fatalf("BookDirect = %v, want ErrUnknownSlot", err)
	}
}

func TestConcurrentSchedulersNeverDoubleBook(t *testing.T) {
	// Several meetings negotiated concurrently over overlapping
	// groups: glued chains must serialize slot access so no slot is
	// ever double-booked.
	rt := action.NewRuntime()
	people := group(rt, 4, 12)

	type job struct {
		diaries []*diary.Diary
		note    string
	}
	jobs := []job{
		{[]*diary.Diary{people[0], people[1]}, "m01"},
		{[]*diary.Diary{people[1], people[2]}, "m12"},
		{[]*diary.Diary{people[2], people[3]}, "m23"},
		{[]*diary.Diary{people[3], people[0]}, "m30"},
	}

	candidates := []int{1, 2, 3, 4, 5, 6, 7, 8}
	results := make(chan error, len(jobs))
	for _, j := range jobs {
		go func() {
			s := diary.NewScheduler(rt, j.diaries...)
			_, err := s.Arrange(candidates, j.note)
			results <- err
		}()
	}
	booked := 0
	for range jobs {
		err := <-results
		switch {
		case err == nil:
			booked++
		case errors.Is(err, diary.ErrNoCommonSlot),
			errors.Is(err, lock.ErrDeadlock),
			errors.Is(err, action.ErrAborted):
			// Overlapping groups form a contention ring: a scheduler
			// may lose a slot race or be picked as a deadlock victim.
			// Both are clean aborts; bookings must stay consistent.
		default:
			t.Fatalf("scheduler: %v", err)
		}
	}
	if booked == 0 {
		t.Fatal("no meeting was ever booked")
	}
	// Each diary's slots carry at most one note, and both attendees
	// of a meeting agree on the slot.
	notes := make(map[string][]int) // note -> slots seen
	for _, d := range people {
		for i := 0; i < d.Slots(); i++ {
			s := d.Peek(i)
			if s.Busy {
				notes[s.Note] = append(notes[s.Note], i)
			}
		}
	}
	for note, slots := range notes {
		for i := 1; i < len(slots); i++ {
			if slots[i] != slots[0] {
				t.Fatalf("meeting %q booked on different days: %v", note, slots)
			}
		}
	}
}

func TestDiaryPersistenceAcrossCrash(t *testing.T) {
	rt := action.NewRuntime()
	st := store.NewStable()
	d := diary.NewDiary("ada", 4, object.WithStore(st))
	s := diary.NewScheduler(rt, d)

	chosen, err := s.Arrange([]int{0, 1, 2, 3}, "1:1")
	if err != nil {
		t.Fatal(err)
	}
	st.Crash()
	st.Recover()
	loaded, err := object.Load[diary.Slot](d.SlotObject(chosen).ObjectID(), st)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Peek(); !got.Busy || got.Note != "1:1" {
		t.Fatalf("recovered slot = %+v", got)
	}
}
