// Package diary implements the paper's example (v): arranging a meeting
// date among a group of people, structured as a chain of glued actions
// (fig 9). Each person has a personal diary of individually lockable
// slots; round I1 locks the relevant slots and selects candidates, each
// later round narrows the candidate set, passing only the surviving
// slots' locks to the next round, and the final round books the chosen
// slot in every diary. Committed rounds survive crashes; slots dropped
// from consideration are released promptly rather than staying locked
// for the whole negotiation.
package diary

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"mca/internal/action"
	"mca/internal/object"
	"mca/internal/structures"
)

// Errors reported by the scheduler.
var (
	// ErrNoCommonSlot is returned when no candidate slot is free in
	// every diary.
	ErrNoCommonSlot = errors.New("diary: no commonly free slot")
	// ErrUnknownSlot is returned for out-of-range slot numbers.
	ErrUnknownSlot = errors.New("diary: unknown slot")
)

// Slot is one diary entry.
type Slot struct {
	Busy bool   `json:"busy"`
	Note string `json:"note"`
}

// Diary is one person's appointment diary: a set of independently
// lockable slot objects ("a personal diary is made up of diary entries
// (or slots) each of which can be locked separately").
type Diary struct {
	owner string
	slots []*object.Managed[Slot]
}

// NewDiary creates a diary with the given number of slots. Object
// options (e.g. object.WithStore) apply to every slot.
func NewDiary(owner string, slots int, opts ...object.Option) *Diary {
	d := &Diary{owner: owner, slots: make([]*object.Managed[Slot], slots)}
	for i := range d.slots {
		d.slots[i] = object.New(Slot{}, opts...)
	}
	return d
}

// Owner returns the diary owner's name.
func (d *Diary) Owner() string { return d.owner }

// Slots returns the number of slots.
func (d *Diary) Slots() int { return len(d.slots) }

// slot returns the managed object of slot i.
func (d *Diary) slot(i int) (*object.Managed[Slot], error) {
	if i < 0 || i >= len(d.slots) {
		return nil, fmt.Errorf("%w: %s[%d]", ErrUnknownSlot, d.owner, i)
	}
	return d.slots[i], nil
}

// SlotObject exposes slot i's managed object, for lock introspection.
func (d *Diary) SlotObject(i int) *object.Managed[Slot] { return d.slots[i] }

// Book marks slot i busy under the given action.
func (d *Diary) Book(a *action.Action, i int, note string) error {
	m, err := d.slot(i)
	if err != nil {
		return err
	}
	return m.Write(a, func(s *Slot) error {
		if s.Busy {
			return fmt.Errorf("diary: %s slot %d already busy", d.owner, i)
		}
		s.Busy = true
		s.Note = note
		return nil
	})
}

// BookDirect books a slot in a fresh top-level action (setup helper).
func (d *Diary) BookDirect(rt *action.Runtime, i int, note string) error {
	return rt.Run(func(a *action.Action) error {
		return d.Book(a, i, note)
	})
}

// Free reports under the action whether slot i is free.
func (d *Diary) Free(a *action.Action, i int) (bool, error) {
	m, err := d.slot(i)
	if err != nil {
		return false, err
	}
	var free bool
	err = m.Read(a, func(s Slot) error {
		free = !s.Busy
		return nil
	})
	return free, err
}

// Peek returns the slot's current state without locking (tests).
func (d *Diary) Peek(i int) Slot { return d.slots[i].Peek() }

// NarrowFunc reduces a candidate slot set during one negotiation round
// ("this set is then broadcast to the group, to get a more definitive
// idea for preferred dates"). It receives the current candidates in
// ascending order and returns the surviving subset.
type NarrowFunc func(candidates []int) []int

// Scheduler arranges meetings across a group of diaries.
type Scheduler struct {
	rt      *action.Runtime
	diaries []*Diary

	mu sync.Mutex
	// roundCandidates records |candidates| after each round, for the
	// fig 9 narrowing experiment.
	roundCandidates []int
}

// NewScheduler builds a scheduler over the group's diaries.
func NewScheduler(rt *action.Runtime, diaries ...*Diary) *Scheduler {
	return &Scheduler{rt: rt, diaries: diaries}
}

// RoundCandidates returns |candidates| recorded after each completed
// round of the last Arrange call.
func (s *Scheduler) RoundCandidates() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, len(s.roundCandidates))
	copy(out, s.roundCandidates)
	return out
}

// Arrange negotiates a meeting over the candidate slots: round I1 locks
// the candidates in every diary and keeps the commonly free ones; each
// NarrowFunc then runs as a further glued round; the final round books
// the smallest surviving slot in all diaries with the given note. It
// returns the booked slot number.
func (s *Scheduler) Arrange(candidates []int, note string, rounds ...NarrowFunc) (int, error) {
	if len(s.diaries) == 0 {
		return 0, errors.New("diary: no diaries to schedule over")
	}
	s.mu.Lock()
	s.roundCandidates = nil
	s.mu.Unlock()

	chain := structures.NewChain(s.rt)
	defer func() { _ = chain.End() }()

	// Round I1: lock every candidate slot in every diary, keep the
	// commonly free slots, pass exactly those on.
	var current []int
	err := chain.RunStage(func(stage *structures.Stage) error {
		var free []int
		for _, c := range sortedCopy(candidates) {
			allFree := true
			for _, d := range s.diaries {
				ok, err := d.Free(stage.Action, c)
				if err != nil {
					return err
				}
				if !ok {
					allFree = false
					break
				}
			}
			if !allFree {
				continue
			}
			free = append(free, c)
			for _, d := range s.diaries {
				m, err := d.slot(c)
				if err != nil {
					return err
				}
				if err := stage.PassOn(m.ObjectID()); err != nil {
					return err
				}
			}
		}
		if len(free) == 0 {
			return ErrNoCommonSlot
		}
		current = free
		return nil
	})
	if err != nil {
		return 0, err
	}
	s.recordRound(len(current))

	// Rounds I2..In: narrow, passing on only the survivors.
	for i, narrow := range rounds {
		kept := sortedCopy(narrow(sortedCopy(current)))
		kept = intersect(kept, current)
		if len(kept) == 0 {
			return 0, fmt.Errorf("%w: round %d eliminated every candidate", ErrNoCommonSlot, i+2)
		}
		err := chain.RunStage(func(stage *structures.Stage) error {
			for _, c := range kept {
				for _, d := range s.diaries {
					m, err := d.slot(c)
					if err != nil {
						return err
					}
					// Re-acquire and pass on to the next round.
					if _, err := d.Free(stage.Action, c); err != nil {
						return err
					}
					if err := stage.PassOn(m.ObjectID()); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
		current = kept
		s.recordRound(len(current))
	}

	// Final round: book the chosen slot in every diary.
	chosen := current[0]
	err = chain.RunStage(func(stage *structures.Stage) error {
		for _, d := range s.diaries {
			if err := d.Book(stage.Action, chosen, note); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if err := chain.End(); err != nil {
		return 0, err
	}
	return chosen, nil
}

func (s *Scheduler) recordRound(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.roundCandidates = append(s.roundCandidates, n)
}

func sortedCopy(xs []int) []int {
	out := make([]int, len(xs))
	copy(out, xs)
	sort.Ints(out)
	return out
}

func intersect(a, b []int) []int {
	set := make(map[int]struct{}, len(b))
	for _, x := range b {
		set[x] = struct{}{}
	}
	var out []int
	for _, x := range a {
		if _, ok := set[x]; ok {
			out = append(out, x)
		}
	}
	return out
}
