package core_test

import (
	"errors"
	"testing"

	"mca/internal/core"
	"mca/internal/store"
)

func TestFacadeGluedChain(t *testing.T) {
	rt := core.NewRuntime()
	o := core.NewObject(0)

	chain := core.NewChain(rt)
	if err := chain.RunStage(func(stage *core.Stage) error {
		if err := o.Write(stage.Action, func(v *int) error { *v = 1; return nil }); err != nil {
			return err
		}
		return stage.PassOn(o.ObjectID())
	}); err != nil {
		t.Fatal(err)
	}
	if err := chain.RunStage(func(stage *core.Stage) error {
		return o.Write(stage.Action, func(v *int) error { *v += 10; return nil })
	}); err != nil {
		t.Fatal(err)
	}
	if err := chain.End(); err != nil {
		t.Fatal(err)
	}
	if o.Peek() != 11 {
		t.Fatalf("o = %d", o.Peek())
	}
}

func TestFacadeAnchoredIndependence(t *testing.T) {
	rt := core.NewRuntime()
	o := core.NewObject(0)

	a, anchor, err := core.BeginAnchored(rt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := a.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.RunIndependentTo(b, anchor, func(e *core.Action) error {
		return o.Write(e, func(v *int) error { *v = 5; return nil })
	}); err != nil {
		t.Fatal(err)
	}
	_ = b.Abort()
	if o.Peek() != 5 {
		t.Fatalf("o = %d after intermediate abort", o.Peek())
	}
	_ = a.Abort()
	if o.Peek() != 0 {
		t.Fatalf("o = %d after anchored abort", o.Peek())
	}
}

func TestFacadeSpawnIndependent(t *testing.T) {
	rt := core.NewRuntime()
	o := core.NewObject(0)
	invoker, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	h, err := core.SpawnIndependent(invoker, func(a *core.Action) error {
		return o.Write(a, func(v *int) error { *v = 3; return nil })
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	_ = invoker.Abort()
	if o.Peek() != 3 {
		t.Fatalf("o = %d", o.Peek())
	}
}

func TestFacadeNewObjectIn(t *testing.T) {
	rt := core.NewRuntime()
	a, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	var m *core.Object[string]
	m, err = core.NewObjectIn(a, core.FreshColour(), "hello")
	if err == nil {
		// colour not possessed by a — must error.
		t.Fatal("NewObjectIn with foreign colour must fail")
	}
	m, err = core.NewObjectIn(a, 0, "hello") // default colour
	if err != nil {
		t.Fatal(err)
	}
	_ = a.Abort()
	if m.Exists() {
		t.Fatal("creation must be undone")
	}
}

func TestFacadeFileStore(t *testing.T) {
	dir := t.TempDir()
	fs, repaired, err := core.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if repaired {
		t.Fatal("fresh store cannot need repair")
	}
	rt := core.NewRuntime()
	o := core.NewObject("disk", core.WithStore(fs))
	if err := rt.Run(func(a *core.Action) error {
		return o.Write(a, func(v *string) error { *v = "persisted"; return nil })
	}); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadObject[string](o.ObjectID(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Peek() != "persisted" {
		t.Fatalf("loaded = %q", loaded.Peek())
	}
}

func TestFacadeVolatileStore(t *testing.T) {
	v := core.NewVolatileStore()
	if err := v.Write(1, store.State("x")); err != nil {
		t.Fatal(err)
	}
	v.Crash()
	v.Restart()
	if _, err := v.Read(1); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("Read = %v, want ErrNotFound after crash", err)
	}
}

func TestFacadeColourSets(t *testing.T) {
	c1, c2 := core.FreshColour(), core.FreshColour()
	s := core.NewColourSet(c1, c2)
	if !s.Contains(c1) || s.Len() != 2 {
		t.Fatalf("set = %v", s)
	}
	rt := core.NewRuntime()
	a, err := rt.Begin(core.WithColourSet(s), core.WithDefaultColour(c1))
	if err != nil {
		t.Fatal(err)
	}
	if a.DefaultColour() != c1 {
		t.Fatalf("default = %v", a.DefaultColour())
	}
	_ = a.Abort()
}
