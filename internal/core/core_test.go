package core_test

import (
	"errors"
	"testing"

	"mca/internal/core"
)

// The core package is a facade; these tests exercise the re-exported
// surface end-to-end the way the README's quickstart does.

func TestQuickstartFlow(t *testing.T) {
	rt := core.NewRuntime()
	st := core.NewStableStore()
	acct := core.NewObject(100, core.WithStore(st))

	if err := rt.Run(func(a *core.Action) error {
		return acct.Write(a, func(v *int) error {
			*v -= 10
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	if got := acct.Peek(); got != 90 {
		t.Fatalf("balance = %d", got)
	}

	loaded, err := core.LoadObject[int](acct.ObjectID(), st)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Peek() != 90 {
		t.Fatalf("stable balance = %d", loaded.Peek())
	}
}

func TestFacadeSerializing(t *testing.T) {
	rt := core.NewRuntime()
	o := core.NewObject(0)

	s, err := core.BeginSerializing(rt)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunConstituent(func(a *core.Action) error {
		return o.Write(a, func(v *int) error { *v = 1; return nil })
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.End(); err != nil {
		t.Fatal(err)
	}
	if o.Peek() != 1 {
		t.Fatalf("o = %d", o.Peek())
	}
}

func TestFacadeIndependent(t *testing.T) {
	rt := core.NewRuntime()
	o := core.NewObject(0)

	invoker, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.RunIndependent(invoker, func(a *core.Action) error {
		return o.Write(a, func(v *int) error { *v = 7; return nil })
	}); err != nil {
		t.Fatal(err)
	}
	if err := invoker.Abort(); err != nil {
		t.Fatal(err)
	}
	if o.Peek() != 7 {
		t.Fatalf("o = %d, want independent effects to survive", o.Peek())
	}
}

func TestFacadeColouredAction(t *testing.T) {
	rt := core.NewRuntime()
	red, blue := core.FreshColour(), core.FreshColour()
	o := core.NewObject("x")

	a, err := rt.Begin(core.WithColours(blue))
	if err != nil {
		t.Fatal(err)
	}
	b, err := a.Begin(core.WithColours(red, blue))
	if err != nil {
		t.Fatal(err)
	}
	if err := o.WriteIn(b, red, func(v *string) error { *v = "y"; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := a.Abort(); err != nil {
		t.Fatal(err)
	}
	if o.Peek() != "y" {
		t.Fatalf("o = %q, red effects must survive", o.Peek())
	}
}

func TestFacadeErrorsSurface(t *testing.T) {
	rt := core.NewRuntime()
	o := core.NewObject(1)
	boom := errors.New("boom")
	err := rt.Run(func(a *core.Action) error {
		if err := o.Write(a, func(v *int) error { *v = 2; return nil }); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run = %v", err)
	}
	if o.Peek() != 1 {
		t.Fatalf("o = %d", o.Peek())
	}
}
