// Package core is the public programming surface of the multi-coloured
// action library: the paper's primary contribution assembled for
// application builders.
//
// A downstream user writes against three layers:
//
//   - the action runtime (Runtime, Action): conventional and coloured
//     atomic actions over lockable recoverable objects;
//   - managed objects (package internal/object, re-exported helpers
//     below): typed persistent state accessed under actions;
//   - action structures (Serializing, Chain/Glued, RunIndependent and
//     friends): the paper's §3 control structures with automatic colour
//     assignment.
//
// Quick start:
//
//	rt := core.NewRuntime()
//	st := core.NewStableStore()
//	acct := core.NewObject(100, core.WithStore(st))
//	err := rt.Run(func(a *core.Action) error {
//	    return acct.Write(a, func(v *int) error { *v -= 10; return nil })
//	})
//
// See examples/ for complete programs and DESIGN.md for the mapping back
// to the paper.
package core

import (
	"mca/internal/action"
	"mca/internal/colour"
	"mca/internal/ids"
	"mca/internal/lock"
	"mca/internal/object"
	"mca/internal/store"
	"mca/internal/structures"
)

// Core action types.
type (
	// Runtime owns an action tree and its coloured lock manager.
	Runtime = action.Runtime
	// Action is one (coloured) atomic action.
	Action = action.Action
	// Status is an action's lifecycle state.
	Status = action.Status
	// BeginOption configures a new action.
	BeginOption = action.BeginOption
	// Colour is the attribute assigned to actions and locks.
	Colour = colour.Colour
	// ColourSet is an immutable set of colours.
	ColourSet = colour.Set
	// ObjectID identifies a managed object.
	ObjectID = ids.ObjectID
	// LockMode is a lock mode (read, write, exclusive read).
	LockMode = lock.Mode
)

// Action lifecycle states.
const (
	Active    = action.Active
	Committed = action.Committed
	Aborted   = action.Aborted
)

// Lock modes.
const (
	Read          = lock.Read
	Write         = lock.Write
	ExclusiveRead = lock.ExclusiveRead
)

// Structure types.
type (
	// Serializing is the paper's §3.1 structure: atomic with respect
	// to concurrency but not failures.
	Serializing = structures.Serializing
	// Chain is a sequence of glued top-level actions (§3.2).
	Chain = structures.Chain
	// Stage is one top-level action within a Chain.
	Stage = structures.Stage
	// Handle tracks an asynchronous independent action (§3.3).
	Handle = structures.Handle
	// Anchor marks the commit level for n-level independent actions
	// (§5.6).
	Anchor = structures.Anchor
)

// Runtime construction and action options.
var (
	// NewRuntime builds an empty action runtime.
	NewRuntime = action.NewRuntime
	// WithMaxLockWait bounds lock waits (deadlock safety valve).
	WithMaxLockWait = action.WithMaxLockWait
	// WithLockShards fixes the striped lock table's shard count.
	WithLockShards = action.WithLockShards
	// WithColours gives a new action exactly the listed colours.
	WithColours = action.WithColours
	// WithColourSet is WithColours for an existing set.
	WithColourSet = action.WithColourSet
	// WithExtraColours adds colours to the inherited set.
	WithExtraColours = action.WithExtraColours
	// WithPrivateColours adds non-heritable colours (anchors).
	WithPrivateColours = action.WithPrivateColours
	// WithDefaultColour selects the default colour for lock/write
	// calls.
	WithDefaultColour = action.WithDefaultColour
	// WithReadColour selects the default read colour.
	WithReadColour = action.WithReadColour
	// WithWriteColour selects the default write colour.
	WithWriteColour = action.WithWriteColour
	// WithWriteCompanion adds an exclusive-read companion colour to
	// writes.
	WithWriteCompanion = action.WithWriteCompanion
	// FreshColour mints a new process-unique colour.
	FreshColour = colour.Fresh
	// NewColourSet builds a colour set.
	NewColourSet = colour.NewSet
)

// Structures: the §3 control structures with automatic colours (§6).
var (
	// BeginSerializing starts a top-level serializing action.
	BeginSerializing = structures.BeginSerializing
	// BeginSerializingIn starts a serializing action from an invoker.
	BeginSerializingIn = structures.BeginSerializingIn
	// NewChain builds an empty glued chain.
	NewChain = structures.NewChain
	// Glued runs two glued top-level actions.
	Glued = structures.Glued
	// RunIndependent invokes a synchronous top-level independent
	// action.
	RunIndependent = structures.RunIndependent
	// SpawnIndependent invokes an asynchronous top-level independent
	// action.
	SpawnIndependent = structures.SpawnIndependent
	// BeginAnchored starts an action carrying a private anchor colour.
	BeginAnchored = structures.BeginAnchored
	// BeginAnchoredIn is BeginAnchored nested under an invoker.
	BeginAnchoredIn = structures.BeginAnchoredIn
	// RunIndependentTo invokes an n-level independent action.
	RunIndependentTo = structures.RunIndependentTo
	// SpawnIndependentTo is the asynchronous form of RunIndependentTo.
	SpawnIndependentTo = structures.SpawnIndependentTo
)

// Object is a managed recoverable object holding a value of type T.
type Object[T any] = object.Managed[T]

// ObjectOption configures a managed object.
type ObjectOption = object.Option

// Object construction.
var (
	// WithStore makes an object persistent in a stable store.
	WithStore = object.WithStore
	// WithID fixes an object's identifier (re-activation).
	WithID = object.WithID
	// NewStableStore builds an in-memory stable store.
	NewStableStore = store.NewStable
	// NewVolatileStore builds an in-memory volatile store.
	NewVolatileStore = store.NewVolatile
	// OpenFileStore opens a disk-backed stable store.
	OpenFileStore = store.OpenFileStore
)

// NewObject creates a managed object with the given initial value.
func NewObject[T any](initial T, opts ...ObjectOption) *Object[T] {
	return object.New(initial, opts...)
}

// NewObjectIn creates a managed object as part of an action's effects.
func NewObjectIn[T any](a *Action, c Colour, initial T, opts ...ObjectOption) (*Object[T], error) {
	return object.NewIn(a, c, initial, opts...)
}

// LoadObject activates a persistent object from its stable store.
func LoadObject[T any](id ObjectID, s object.StableStore) (*Object[T], error) {
	return object.Load[T](id, s)
}
