// Package trace records action-runtime events and renders them as the
// timeline diagrams the paper uses throughout (figs 1-15): one row per
// action, indented under its parent, with a bar spanning begin to
// commit/abort. It exists for debugging, teaching and the experiment
// harness — a cheap way to *see* a structure execute.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"mca/internal/action"
	"mca/internal/ids"
	"mca/internal/phase"
)

// RoundKind classifies one coordinator fan-out round of the commit
// protocol (internal/dist): each round is one concurrent broadcast to
// the round's participants.
type RoundKind string

// Round kinds emitted by the distributed commit protocol.
const (
	// RoundPrepare is two-phase commit phase 1.
	RoundPrepare RoundKind = "prepare"
	// RoundCommit is two-phase commit phase 2 (completion).
	RoundCommit RoundKind = "commit"
	// RoundAbort is the abort broadcast.
	RoundAbort RoundKind = "abort"
	// RoundRecover is a coordinator recovery re-drive of completion.
	RoundRecover RoundKind = "recover"
	// RoundStructure is a distributed structure end/cancel broadcast.
	RoundStructure RoundKind = "structure"
)

// RoundEvent is the outcome of one coordinator fan-out round.
type RoundEvent struct {
	Kind RoundKind
	// Txn is the distributed action (or structure) the round belongs
	// to.
	Txn ids.ActionID
	// Trace is the round's own span identity within the distributed
	// trace, and ParentSpan the span that caused the round (the
	// transaction's root span). Zero when the transaction is untraced.
	Trace      Context
	ParentSpan uint64
	// Participants is how many nodes the round addressed, OK how many
	// answered successfully (for prepare: voted yes).
	Participants int
	OK           int
	// Parallel reports whether the round fanned out concurrently.
	Parallel bool
	Start    time.Time
	Duration time.Duration
	// Err is the round's first failure, nil when every call succeeded.
	Err error
}

// RoundObserver consumes commit-protocol round outcomes; install one on
// dist.Manager to thread them into a Recorder.
type RoundObserver func(RoundEvent)

// Recorder collects runtime events. Install with:
//
//	rec := trace.NewRecorder()
//	rt := action.NewRuntime(action.WithObserver(rec.Observe))
//
// Commit-protocol rounds are recorded separately via ObserveRound
// (install rec.ObserveRound on a dist.Manager).
type Recorder struct {
	mu     sync.Mutex
	events []action.Event
	rounds []RoundEvent
	labels map[ids.ActionID]string
	// node stamps exported spans with the owning node (SetNode).
	node ids.NodeID
	// binds maps actions to their distributed-trace identity
	// (StartTrace/JoinTrace, plus lazy inheritance at export time).
	binds map[ids.ActionID]traceBinding
	// extras are synthetic spans recorded directly (rounds already
	// flow through ObserveRound; RPC client/server spans land here).
	extras []Span

	// Tail sampling (SetSampler). While a trace's root is undecided
	// its observations buffer in pending, keyed by TraceID; the
	// decision either flushes the buffer into the main stores above or
	// discards it. actionTrace routes events to buffers (an action's
	// descendants share its trace); unrouted parks begin events that
	// arrive before the action is bound (dist binds an action right
	// after the runtime creates it, so the root's own begin always
	// lands here first).
	sampler      *Sampler
	pending      map[uint64]*txnBuffer
	pendingOrder []uint64
	actionTrace  map[ids.ActionID]uint64
	unrouted     map[ids.ActionID][]action.Event
}

// txnBuffer holds one undecided transaction's observations.
type txnBuffer struct {
	events []action.Event
	rounds []RoundEvent
	extras []Span
	// rootBegin is the begin time of the locally-started trace root
	// (StartTrace), the basis of the sampling decision's duration.
	rootBegin time.Time
	haveBegin bool
}

// maxPendingTraces bounds a recorder's undecided buffers: a trace whose
// root never completes (crashed coordinator) must not pin its spans
// forever. Eviction drops the stale buffer, counted by
// mca_trace_sampler_evicted_total.
const maxPendingTraces = 1024

// traceBinding is an action's distributed-trace identity: its own span
// context plus the (possibly remote) parent span.
type traceBinding struct {
	tc     Context
	parent uint64
}

// NewRecorder builds an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		labels: make(map[ids.ActionID]string),
		binds:  make(map[ids.ActionID]traceBinding),
	}
}

// SetNode stamps every span this recorder exports with the given node
// identifier. Call it once at wiring time (node.WithTracer does).
func (r *Recorder) SetNode(n ids.NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.node = n
}

// SetSampler installs a tail sampler: from now on, observations for
// traced transactions buffer per trace and are exported only if the
// sampler keeps the transaction. Share one Sampler across every
// recorder of a cluster — the trace root's recorder decides, the rest
// follow the published decision. Install at wiring time, before events
// flow.
func (r *Recorder) SetSampler(s *Sampler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sampler = s
	if s != nil && r.pending == nil {
		r.pending = make(map[uint64]*txnBuffer)
		r.actionTrace = make(map[ids.ActionID]uint64)
		r.unrouted = make(map[ids.ActionID][]action.Event)
	}
}

// StartTrace makes the action the root of a fresh distributed trace
// and returns its span context. Used by the coordinator when a
// distributed transaction begins.
func (r *Recorder) StartTrace(id ids.ActionID) Context {
	r.mu.Lock()
	defer r.mu.Unlock()
	if b, ok := r.binds[id]; ok {
		return b.tc
	}
	tc := NewRoot()
	r.binds[id] = traceBinding{tc: tc}
	phase.Bind(id, tc.TraceID)
	r.routeBoundLocked(id, tc.TraceID, true)
	return tc
}

// JoinTrace links the action into an existing distributed trace as a
// child of the given remote parent span, returning the action's own
// span context. The first binding for an action wins: retransmitted
// joins (duplicate RPC deliveries) are no-ops, so one logical action
// never acquires two identities.
func (r *Recorder) JoinTrace(id ids.ActionID, parent Context) Context {
	r.mu.Lock()
	defer r.mu.Unlock()
	if b, ok := r.binds[id]; ok {
		return b.tc
	}
	tc := parent.Child()
	r.binds[id] = traceBinding{tc: tc, parent: parent.SpanID}
	phase.Bind(id, tc.TraceID)
	r.routeBoundLocked(id, tc.TraceID, false)
	return tc
}

// routeBoundLocked records a fresh action→trace route and moves any
// parked pre-binding events (the action's begin precedes its
// StartTrace/JoinTrace call) into the trace's buffer. root marks a
// locally-started trace root, whose begin time seeds the sampling
// decision.
func (r *Recorder) routeBoundLocked(id ids.ActionID, trace uint64, root bool) {
	if r.sampler == nil || trace == 0 {
		return
	}
	r.actionTrace[id] = trace
	parked := r.unrouted[id]
	if len(parked) == 0 && !root {
		return
	}
	delete(r.unrouted, id)
	if keep, ok := r.sampler.Decision(trace); ok {
		// Late rebinding of a decided trace (duplicate join after the
		// decision): follow it.
		if keep {
			r.events = append(r.events, parked...)
		}
		return
	}
	buf := r.bufferLocked(trace)
	for _, ev := range parked {
		if root && ev.Kind == action.EventBegin && ev.Action == id {
			buf.rootBegin = ev.Time
			buf.haveBegin = true
		}
		buf.events = append(buf.events, ev)
	}
}

// bufferLocked returns (creating if needed) the trace's pending buffer,
// evicting the oldest undecided buffer when over the cap.
func (r *Recorder) bufferLocked(trace uint64) *txnBuffer {
	if buf, ok := r.pending[trace]; ok {
		return buf
	}
	for len(r.pending) >= maxPendingTraces && len(r.pendingOrder) > 0 {
		old := r.pendingOrder[0]
		r.pendingOrder = r.pendingOrder[1:]
		if _, ok := r.pending[old]; ok {
			delete(r.pending, old)
			phase.Discard(old)
			samplerEvicted.Inc()
		}
	}
	buf := &txnBuffer{}
	r.pending[trace] = buf
	r.pendingOrder = append(r.pendingOrder, trace)
	return buf
}

// drainLocked applies a published decision to the trace's pending
// buffer: flush into the main stores, or discard along with the
// trace's phase ledger.
func (r *Recorder) drainLocked(trace uint64, keep bool) {
	buf, ok := r.pending[trace]
	if !ok {
		if !keep {
			phase.Discard(trace)
		}
		return
	}
	delete(r.pending, trace)
	if keep {
		r.events = append(r.events, buf.events...)
		r.rounds = append(r.rounds, buf.rounds...)
		r.extras = append(r.extras, buf.extras...)
	} else {
		phase.Discard(trace)
	}
}

// traceOfEventLocked routes an event to its trace: directly when the
// action is bound or already routed, by inheritance when its parent is.
func (r *Recorder) traceOfEventLocked(ev action.Event) uint64 {
	if t, ok := r.actionTrace[ev.Action]; ok {
		return t
	}
	if b, ok := r.binds[ev.Action]; ok {
		r.actionTrace[ev.Action] = b.tc.TraceID
		return b.tc.TraceID
	}
	if ev.Parent != 0 && ev.Parent != ev.Action {
		if t, ok := r.actionTrace[ev.Parent]; ok {
			r.actionTrace[ev.Action] = t
			return t
		}
		if b, ok := r.binds[ev.Parent]; ok {
			r.actionTrace[ev.Action] = b.tc.TraceID
			return b.tc.TraceID
		}
	}
	return 0
}

// ContextOf returns the action's distributed-trace identity, if it was
// bound with StartTrace or JoinTrace (or inherited during an export).
func (r *Recorder) ContextOf(id ids.ActionID) (Context, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.binds[id]
	return b.tc, ok
}

// AddSpan records a synthetic (non-action) span — an RPC call or any
// other timed unit the action runtime does not know about. The span is
// exported alongside the reconstructed action spans.
func (r *Recorder) AddSpan(s Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sampler == nil || s.TraceID == 0 {
		r.extras = append(r.extras, s)
		return
	}
	if keep, ok := r.sampler.Decision(s.TraceID); ok {
		r.drainLocked(s.TraceID, keep)
		if keep {
			r.extras = append(r.extras, s)
		}
		return
	}
	buf := r.bufferLocked(s.TraceID)
	buf.extras = append(buf.extras, s)
}

// Observe implements action.Observer.
func (r *Recorder) Observe(ev action.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sampler == nil {
		r.events = append(r.events, ev)
		return
	}
	tid := r.traceOfEventLocked(ev)
	if tid == 0 {
		if ev.Kind == action.EventBegin {
			// Not yet routable: either an untraced action, or a trace
			// root whose StartTrace/JoinTrace call is imminent. Park
			// until one or the other resolves.
			r.unrouted[ev.Action] = append(r.unrouted[ev.Action], ev)
			return
		}
		// The action ended without ever being traced: it is not
		// subject to tail sampling, pass it (and its parked begin)
		// straight through.
		if parked, ok := r.unrouted[ev.Action]; ok {
			r.events = append(r.events, parked...)
			delete(r.unrouted, ev.Action)
		}
		r.events = append(r.events, ev)
		return
	}
	if keep, ok := r.sampler.Decision(tid); ok {
		r.drainLocked(tid, keep)
		if keep {
			r.events = append(r.events, ev)
		}
		return
	}
	buf := r.bufferLocked(tid)
	if ev.Kind == action.EventBegin {
		if b, ok := r.binds[ev.Action]; ok && b.parent == 0 && !buf.haveBegin {
			buf.rootBegin = ev.Time
			buf.haveBegin = true
		}
		buf.events = append(buf.events, ev)
		return
	}
	buf.events = append(buf.events, ev)
	if ev.Kind == action.EventCommit || ev.Kind == action.EventAbort {
		if b, ok := r.binds[ev.Action]; ok && b.parent == 0 && b.tc.TraceID == tid {
			// A locally-started trace root completed: this recorder
			// owns the sampling decision.
			var d time.Duration
			if buf.haveBegin {
				d = ev.Time.Sub(buf.rootBegin)
			}
			keep := r.sampler.decide(tid, d, ev.Kind == action.EventAbort)
			r.drainLocked(tid, keep)
		}
	}
}

// ObserveRound implements RoundObserver: it records one commit-protocol
// round outcome.
func (r *Recorder) ObserveRound(ev RoundEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tid := ev.Trace.TraceID
	if r.sampler == nil || tid == 0 {
		r.rounds = append(r.rounds, ev)
		return
	}
	if keep, ok := r.sampler.Decision(tid); ok {
		r.drainLocked(tid, keep)
		if keep {
			r.rounds = append(r.rounds, ev)
		}
		return
	}
	buf := r.bufferLocked(tid)
	buf.rounds = append(buf.rounds, ev)
}

// Rounds returns a copy of the recorded round outcomes in arrival
// order.
func (r *Recorder) Rounds() []RoundEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RoundEvent, len(r.rounds))
	copy(out, r.rounds)
	return out
}

// RoundSummary is a per-kind round count. It prints deterministically:
// map iteration order would otherwise leak into test output and
// examples.
type RoundSummary map[RoundKind]int

// String renders the counts sorted by kind name, e.g.
// "commit=2 prepare=2".
func (s RoundSummary) String() string {
	kinds := make([]string, 0, len(s))
	for k := range s {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	var sb strings.Builder
	for i, k := range kinds {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%d", k, s[RoundKind(k)])
	}
	return sb.String()
}

// RoundSummary returns per-kind round counts, for quick assertions.
func (r *Recorder) RoundSummary() RoundSummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(RoundSummary)
	for _, ev := range r.rounds {
		out[ev.Kind]++
	}
	return out
}

// Label names an action in the rendered timeline (default: its id).
func (r *Recorder) Label(id ids.ActionID, name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.labels[id] = name
}

// Events returns a copy of the recorded events in arrival order.
func (r *Recorder) Events() []action.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]action.Event, len(r.events))
	copy(out, r.events)
	return out
}

// span is one action's reconstructed lifetime.
type span struct {
	id       ids.ActionID
	parent   ids.ActionID
	colours  string
	begin    time.Time
	end      time.Time
	ended    bool
	aborted  bool
	children []*span
}

// Render draws the recorded actions as an ASCII timeline. Each row is
// one action: `=` spans its lifetime, `C` marks commit, `A` marks
// abort, `?` an action still active when rendering. Rows are indented
// by nesting depth and ordered by begin time.
func (r *Recorder) Render(width int) string {
	if width < 20 {
		width = 20
	}
	r.mu.Lock()
	events := make([]action.Event, len(r.events))
	copy(events, r.events)
	labels := make(map[ids.ActionID]string, len(r.labels))
	for k, v := range r.labels {
		labels[k] = v
	}
	r.mu.Unlock()

	if len(events) == 0 {
		return "(no events)\n"
	}

	spans := make(map[ids.ActionID]*span)
	var roots []*span
	var minT, maxT time.Time
	for _, ev := range events {
		if minT.IsZero() || ev.Time.Before(minT) {
			minT = ev.Time
		}
		if ev.Time.After(maxT) {
			maxT = ev.Time
		}
		switch ev.Kind {
		case action.EventBegin:
			if _, dup := spans[ev.Action]; dup {
				continue // duplicate begin for the same id: keep the first
			}
			s := &span{
				id:      ev.Action,
				parent:  ev.Parent,
				colours: ev.Colours.String(),
				begin:   ev.Time,
			}
			spans[ev.Action] = s
			// A malformed event naming the action as its own parent
			// would make draw() recurse forever; treat it as a root.
			if parent, ok := spans[ev.Parent]; ok && ev.Parent != ev.Action {
				parent.children = append(parent.children, s)
			} else {
				roots = append(roots, s)
			}
		case action.EventCommit, action.EventAbort:
			s, ok := spans[ev.Action]
			if !ok {
				// Commit/abort for an action whose begin was never
				// recorded (observer attached mid-run): synthesize a
				// zero-length root span instead of dropping the event.
				s = &span{id: ev.Action, colours: ev.Colours.String(), begin: ev.Time}
				spans[ev.Action] = s
				roots = append(roots, s)
			}
			s.end = ev.Time
			s.ended = true
			s.aborted = ev.Kind == action.EventAbort
		}
	}

	total := maxT.Sub(minT)
	if total <= 0 {
		total = time.Nanosecond
	}
	col := func(t time.Time) int {
		c := int(float64(t.Sub(minT)) / float64(total) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	var sb strings.Builder
	var draw func(s *span, depth int)
	draw = func(s *span, depth int) {
		name := labels[s.id]
		if name == "" {
			name = s.id.String()
		}
		start := col(s.begin)
		var endCol int
		endMark := byte('?')
		if s.ended {
			endCol = col(s.end)
			if s.aborted {
				endMark = 'A'
			} else {
				endMark = 'C'
			}
		} else {
			endCol = width - 1
		}
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		for i := start; i <= endCol && i < width; i++ {
			line[i] = '='
		}
		line[start] = '|'
		if endCol > start || s.ended {
			line[endCol] = endMark
		}
		fmt.Fprintf(&sb, "%-24s %s\n", strings.Repeat("  ", depth)+name+" "+s.colours, string(line))
		sort.Slice(s.children, func(i, j int) bool {
			return s.children[i].begin.Before(s.children[j].begin)
		})
		for _, c := range s.children {
			draw(c, depth+1)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].begin.Before(roots[j].begin) })
	for _, root := range roots {
		draw(root, 0)
	}
	return sb.String()
}

// Summary is a per-kind event count. Like RoundSummary it prints
// deterministically.
type Summary map[action.EventKind]int

// String renders the counts in lifecycle order (begin, commit, abort),
// e.g. "begin=3 commit=2 abort=1".
func (s Summary) String() string {
	kinds := make([]action.EventKind, 0, len(s))
	for k := range s {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	var sb strings.Builder
	for i, k := range kinds {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%v=%d", k, s[k])
	}
	return sb.String()
}

// Summary returns per-kind event counts, for quick assertions.
func (r *Recorder) Summary() Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(Summary)
	for _, ev := range r.events {
		out[ev.Kind]++
	}
	return out
}
