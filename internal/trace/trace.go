// Package trace records action-runtime events and renders them as the
// timeline diagrams the paper uses throughout (figs 1-15): one row per
// action, indented under its parent, with a bar spanning begin to
// commit/abort. It exists for debugging, teaching and the experiment
// harness — a cheap way to *see* a structure execute.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"mca/internal/action"
	"mca/internal/ids"
)

// RoundKind classifies one coordinator fan-out round of the commit
// protocol (internal/dist): each round is one concurrent broadcast to
// the round's participants.
type RoundKind string

// Round kinds emitted by the distributed commit protocol.
const (
	// RoundPrepare is two-phase commit phase 1.
	RoundPrepare RoundKind = "prepare"
	// RoundCommit is two-phase commit phase 2 (completion).
	RoundCommit RoundKind = "commit"
	// RoundAbort is the abort broadcast.
	RoundAbort RoundKind = "abort"
	// RoundRecover is a coordinator recovery re-drive of completion.
	RoundRecover RoundKind = "recover"
	// RoundStructure is a distributed structure end/cancel broadcast.
	RoundStructure RoundKind = "structure"
)

// RoundEvent is the outcome of one coordinator fan-out round.
type RoundEvent struct {
	Kind RoundKind
	// Txn is the distributed action (or structure) the round belongs
	// to.
	Txn ids.ActionID
	// Trace is the round's own span identity within the distributed
	// trace, and ParentSpan the span that caused the round (the
	// transaction's root span). Zero when the transaction is untraced.
	Trace      Context
	ParentSpan uint64
	// Participants is how many nodes the round addressed, OK how many
	// answered successfully (for prepare: voted yes).
	Participants int
	OK           int
	// Parallel reports whether the round fanned out concurrently.
	Parallel bool
	Start    time.Time
	Duration time.Duration
	// Err is the round's first failure, nil when every call succeeded.
	Err error
}

// RoundObserver consumes commit-protocol round outcomes; install one on
// dist.Manager to thread them into a Recorder.
type RoundObserver func(RoundEvent)

// Recorder collects runtime events. Install with:
//
//	rec := trace.NewRecorder()
//	rt := action.NewRuntime(action.WithObserver(rec.Observe))
//
// Commit-protocol rounds are recorded separately via ObserveRound
// (install rec.ObserveRound on a dist.Manager).
type Recorder struct {
	mu     sync.Mutex
	events []action.Event
	rounds []RoundEvent
	labels map[ids.ActionID]string
	// node stamps exported spans with the owning node (SetNode).
	node ids.NodeID
	// binds maps actions to their distributed-trace identity
	// (StartTrace/JoinTrace, plus lazy inheritance at export time).
	binds map[ids.ActionID]traceBinding
	// extras are synthetic spans recorded directly (rounds already
	// flow through ObserveRound; RPC client/server spans land here).
	extras []Span
}

// traceBinding is an action's distributed-trace identity: its own span
// context plus the (possibly remote) parent span.
type traceBinding struct {
	tc     Context
	parent uint64
}

// NewRecorder builds an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		labels: make(map[ids.ActionID]string),
		binds:  make(map[ids.ActionID]traceBinding),
	}
}

// SetNode stamps every span this recorder exports with the given node
// identifier. Call it once at wiring time (node.WithTracer does).
func (r *Recorder) SetNode(n ids.NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.node = n
}

// StartTrace makes the action the root of a fresh distributed trace
// and returns its span context. Used by the coordinator when a
// distributed transaction begins.
func (r *Recorder) StartTrace(id ids.ActionID) Context {
	r.mu.Lock()
	defer r.mu.Unlock()
	if b, ok := r.binds[id]; ok {
		return b.tc
	}
	tc := NewRoot()
	r.binds[id] = traceBinding{tc: tc}
	return tc
}

// JoinTrace links the action into an existing distributed trace as a
// child of the given remote parent span, returning the action's own
// span context. The first binding for an action wins: retransmitted
// joins (duplicate RPC deliveries) are no-ops, so one logical action
// never acquires two identities.
func (r *Recorder) JoinTrace(id ids.ActionID, parent Context) Context {
	r.mu.Lock()
	defer r.mu.Unlock()
	if b, ok := r.binds[id]; ok {
		return b.tc
	}
	tc := parent.Child()
	r.binds[id] = traceBinding{tc: tc, parent: parent.SpanID}
	return tc
}

// ContextOf returns the action's distributed-trace identity, if it was
// bound with StartTrace or JoinTrace (or inherited during an export).
func (r *Recorder) ContextOf(id ids.ActionID) (Context, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.binds[id]
	return b.tc, ok
}

// AddSpan records a synthetic (non-action) span — an RPC call or any
// other timed unit the action runtime does not know about. The span is
// exported alongside the reconstructed action spans.
func (r *Recorder) AddSpan(s Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.extras = append(r.extras, s)
}

// Observe implements action.Observer.
func (r *Recorder) Observe(ev action.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, ev)
}

// ObserveRound implements RoundObserver: it records one commit-protocol
// round outcome.
func (r *Recorder) ObserveRound(ev RoundEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rounds = append(r.rounds, ev)
}

// Rounds returns a copy of the recorded round outcomes in arrival
// order.
func (r *Recorder) Rounds() []RoundEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RoundEvent, len(r.rounds))
	copy(out, r.rounds)
	return out
}

// RoundSummary is a per-kind round count. It prints deterministically:
// map iteration order would otherwise leak into test output and
// examples.
type RoundSummary map[RoundKind]int

// String renders the counts sorted by kind name, e.g.
// "commit=2 prepare=2".
func (s RoundSummary) String() string {
	kinds := make([]string, 0, len(s))
	for k := range s {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	var sb strings.Builder
	for i, k := range kinds {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%d", k, s[RoundKind(k)])
	}
	return sb.String()
}

// RoundSummary returns per-kind round counts, for quick assertions.
func (r *Recorder) RoundSummary() RoundSummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(RoundSummary)
	for _, ev := range r.rounds {
		out[ev.Kind]++
	}
	return out
}

// Label names an action in the rendered timeline (default: its id).
func (r *Recorder) Label(id ids.ActionID, name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.labels[id] = name
}

// Events returns a copy of the recorded events in arrival order.
func (r *Recorder) Events() []action.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]action.Event, len(r.events))
	copy(out, r.events)
	return out
}

// span is one action's reconstructed lifetime.
type span struct {
	id       ids.ActionID
	parent   ids.ActionID
	colours  string
	begin    time.Time
	end      time.Time
	ended    bool
	aborted  bool
	children []*span
}

// Render draws the recorded actions as an ASCII timeline. Each row is
// one action: `=` spans its lifetime, `C` marks commit, `A` marks
// abort, `?` an action still active when rendering. Rows are indented
// by nesting depth and ordered by begin time.
func (r *Recorder) Render(width int) string {
	if width < 20 {
		width = 20
	}
	r.mu.Lock()
	events := make([]action.Event, len(r.events))
	copy(events, r.events)
	labels := make(map[ids.ActionID]string, len(r.labels))
	for k, v := range r.labels {
		labels[k] = v
	}
	r.mu.Unlock()

	if len(events) == 0 {
		return "(no events)\n"
	}

	spans := make(map[ids.ActionID]*span)
	var roots []*span
	var minT, maxT time.Time
	for _, ev := range events {
		if minT.IsZero() || ev.Time.Before(minT) {
			minT = ev.Time
		}
		if ev.Time.After(maxT) {
			maxT = ev.Time
		}
		switch ev.Kind {
		case action.EventBegin:
			if _, dup := spans[ev.Action]; dup {
				continue // duplicate begin for the same id: keep the first
			}
			s := &span{
				id:      ev.Action,
				parent:  ev.Parent,
				colours: ev.Colours.String(),
				begin:   ev.Time,
			}
			spans[ev.Action] = s
			// A malformed event naming the action as its own parent
			// would make draw() recurse forever; treat it as a root.
			if parent, ok := spans[ev.Parent]; ok && ev.Parent != ev.Action {
				parent.children = append(parent.children, s)
			} else {
				roots = append(roots, s)
			}
		case action.EventCommit, action.EventAbort:
			s, ok := spans[ev.Action]
			if !ok {
				// Commit/abort for an action whose begin was never
				// recorded (observer attached mid-run): synthesize a
				// zero-length root span instead of dropping the event.
				s = &span{id: ev.Action, colours: ev.Colours.String(), begin: ev.Time}
				spans[ev.Action] = s
				roots = append(roots, s)
			}
			s.end = ev.Time
			s.ended = true
			s.aborted = ev.Kind == action.EventAbort
		}
	}

	total := maxT.Sub(minT)
	if total <= 0 {
		total = time.Nanosecond
	}
	col := func(t time.Time) int {
		c := int(float64(t.Sub(minT)) / float64(total) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	var sb strings.Builder
	var draw func(s *span, depth int)
	draw = func(s *span, depth int) {
		name := labels[s.id]
		if name == "" {
			name = s.id.String()
		}
		start := col(s.begin)
		var endCol int
		endMark := byte('?')
		if s.ended {
			endCol = col(s.end)
			if s.aborted {
				endMark = 'A'
			} else {
				endMark = 'C'
			}
		} else {
			endCol = width - 1
		}
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		for i := start; i <= endCol && i < width; i++ {
			line[i] = '='
		}
		line[start] = '|'
		if endCol > start || s.ended {
			line[endCol] = endMark
		}
		fmt.Fprintf(&sb, "%-24s %s\n", strings.Repeat("  ", depth)+name+" "+s.colours, string(line))
		sort.Slice(s.children, func(i, j int) bool {
			return s.children[i].begin.Before(s.children[j].begin)
		})
		for _, c := range s.children {
			draw(c, depth+1)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].begin.Before(roots[j].begin) })
	for _, root := range roots {
		draw(root, 0)
	}
	return sb.String()
}

// Summary is a per-kind event count. Like RoundSummary it prints
// deterministically.
type Summary map[action.EventKind]int

// String renders the counts in lifecycle order (begin, commit, abort),
// e.g. "begin=3 commit=2 abort=1".
func (s Summary) String() string {
	kinds := make([]action.EventKind, 0, len(s))
	for k := range s {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	var sb strings.Builder
	for i, k := range kinds {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%v=%d", k, s[k])
	}
	return sb.String()
}

// Summary returns per-kind event counts, for quick assertions.
func (r *Recorder) Summary() Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(Summary)
	for _, ev := range r.events {
		out[ev.Kind]++
	}
	return out
}
