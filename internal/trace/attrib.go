// Critical-path attribution: turning a trace root's raw phase ledger
// (internal/phase) into an exclusive breakdown of where the
// transaction's wall time went. The raw phases overlap — the rpc phase
// measured at the client contains the remote queue and serve phases,
// the serve phase contains the participant's lock and force waits, and
// parallel fan-out legs overlap each other — so the raw sums can
// legitimately exceed the root's wall clock. Attribute subtracts the
// contained phases back out into five mutually exclusive buckets.
package trace

import (
	"time"

	"mca/internal/phase"
)

// Attribution is the derived, exclusive phase breakdown of one
// transaction, all values in nanoseconds of the root's wall time.
type Attribution struct {
	// Total is the root span's wall time.
	Total int64 `json:"total_ns"`
	// Lock is time blocked in a lock manager (any node).
	Lock int64 `json:"lock_ns"`
	// Force is time waiting on a WAL force (any node).
	Force int64 `json:"force_ns"`
	// Net is the wire share of RPC: client-observed call time minus
	// the remote queue and serve phases, clamped at zero. Under
	// parallel fan-out the legs overlap, so this is an upper bound on
	// wire time, not an exact wall-clock share.
	Net int64 `json:"net_ns"`
	// Queue is time requests sat decoded but undispatched (serve-pool
	// wait or goroutine scheduling).
	Queue int64 `json:"queue_ns"`
	// Compute is the remainder of the root's wall time after the wait
	// phases, clamped at zero: handler execution plus anything the
	// ledger does not cover.
	Compute int64 `json:"compute_ns"`
}

// Attribute derives the exclusive breakdown from a root span's wall
// time and raw phase ledger (Span.Phases). A nil or empty ledger
// yields an all-compute attribution.
func Attribute(total time.Duration, phases map[string]int64) Attribution {
	a := Attribution{Total: total.Nanoseconds()}
	if a.Total < 0 {
		a.Total = 0
	}
	a.Lock = phases[phase.Lock]
	a.Force = phases[phase.Force]
	a.Queue = phases[phase.Queue]
	a.Net = phases[phase.RPC] - phases[phase.Serve] - a.Queue
	if a.Net < 0 {
		a.Net = 0
	}
	a.Compute = a.Total - a.Lock - a.Force - a.Net - a.Queue
	if a.Compute < 0 {
		a.Compute = 0
	}
	return a
}

// AttributeSpan derives the breakdown from a trace-root span.
func AttributeSpan(s Span) Attribution {
	return Attribute(s.End.Sub(s.Begin), s.Phases)
}

// BreakdownNames lists the exclusive buckets in reporting order.
var BreakdownNames = []string{"lock", "force", "net", "queue", "compute"}

// Buckets returns the breakdown keyed by BreakdownNames.
func (a Attribution) Buckets() map[string]int64 {
	return map[string]int64{
		"lock":    a.Lock,
		"force":   a.Force,
		"net":     a.Net,
		"queue":   a.Queue,
		"compute": a.Compute,
	}
}

// Dominant names the largest exclusive bucket ("lock", "force", "net",
// "queue" or "compute"). Ties break toward "compute" (the residual),
// then toward the earlier name in BreakdownNames; an all-zero
// attribution reports "compute".
func (a Attribution) Dominant() string {
	buckets := a.Buckets()
	best, bestV := "compute", a.Compute
	for _, name := range BreakdownNames[:len(BreakdownNames)-1] {
		if v := buckets[name]; v > bestV {
			best, bestV = name, v
		}
	}
	return best
}
