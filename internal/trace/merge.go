// Cross-node trace merging: the analysis half of distributed tracing.
// Each node exports its spans independently (WriteSpans); Merge joins
// the per-node streams into one causal tree using the distributed-trace
// identities (TraceID/SpanID/ParentSpanID) where present and the
// node-local action tree (Node, ID, Parent) otherwise. The merged tree
// feeds the fig 14/15-style cross-node renderer, the critical-path
// analysis and the Chrome trace_event export (cmd/tracecat).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"mca/internal/ids"
)

// TreeNode is one span in a merged causal tree, with its children
// ordered by begin time.
type TreeNode struct {
	Span     Span
	Children []*TreeNode
	// Synthetic marks a root fabricated by Merge to adopt spans whose
	// parent is missing from the input — dropped by the tail sampler
	// or absent from a partial export. It represents no recorded work.
	Synthetic bool
}

// Walk visits the node and its descendants depth-first, with the
// nesting depth (0 for the receiver).
func (n *TreeNode) Walk(fn func(*TreeNode, int)) {
	var walk func(*TreeNode, int)
	walk = func(tn *TreeNode, depth int) {
		fn(tn, depth)
		for _, c := range tn.Children {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
}

// Tree is the result of merging per-node span exports: a forest of
// causal trees plus any spans whose named parent is missing from the
// merged input (a sign of an incomplete export set).
type Tree struct {
	// Roots are the spans with no parent reference, ordered by begin
	// time. Includes synthetic roots (see Adopted).
	Roots []*TreeNode
	// Adopted are the synthetic roots fabricated for spans whose
	// distributed-trace parent is missing from the input (one per
	// affected trace): with tail sampling a participant's spans can
	// survive while the coordinator span that parented them was
	// dropped, and they must still render rather than vanish. Each
	// Adopted node also appears in Roots.
	Adopted []*TreeNode
	// Orphans are spans with no distributed-trace identity whose
	// node-local Parent is absent from the input. A complete export
	// set has none; unlike sampled-out trace parents, this is a sign
	// of a malformed or truncated export.
	Orphans []*TreeNode
}

// Spans returns every span in the tree (roots and orphans alike) in
// depth-first order.
func (t *Tree) Spans() []Span {
	var out []Span
	for _, r := range append(append([]*TreeNode{}, t.Roots...), t.Orphans...) {
		r.Walk(func(n *TreeNode, _ int) { out = append(out, n.Span) })
	}
	return out
}

// spanKey identifies a span across the merged input: by its
// distributed-trace identity when it has one, by (node, action id)
// otherwise.
type spanKey struct {
	trace, span uint64
	node        ids.NodeID
	id          ids.ActionID
}

func keyOf(s Span) spanKey {
	if s.SpanID != 0 {
		return spanKey{trace: s.TraceID, span: s.SpanID}
	}
	return spanKey{node: s.Node, id: s.ID}
}

// Merge joins span exports from any number of nodes into one causal
// tree. Parent links resolve through the distributed-trace identity
// first (TraceID + ParentSpanID, which may cross nodes) and through
// the node-local action tree (Node + Parent) otherwise. Duplicate
// spans (same identity, e.g. a file merged twice) keep the first
// occurrence.
func Merge(spans []Span) *Tree {
	nodes := make([]*TreeNode, 0, len(spans))
	index := make(map[spanKey]*TreeNode, len(spans))
	for _, s := range spans {
		k := keyOf(s)
		if _, dup := index[k]; dup {
			continue
		}
		n := &TreeNode{Span: s}
		index[k] = n
		nodes = append(nodes, n)
	}

	t := &Tree{}
	synthetic := make(map[uint64]*TreeNode)
	for _, n := range nodes {
		s := n.Span
		var parent *TreeNode
		switch {
		case s.ParentSpanID != 0:
			parent = index[spanKey{trace: s.TraceID, span: s.ParentSpanID}]
		case s.Parent != 0:
			parent = index[spanKey{node: s.Node, id: s.Parent}]
		default:
			t.Roots = append(t.Roots, n)
			continue
		}
		switch {
		case parent == nil && s.TraceID != 0:
			// The named parent is gone — most likely dropped by the
			// tail sampler on another node while this span survived.
			// Adopt the span under a per-trace synthetic root so it
			// still renders in causal context instead of vanishing.
			root, ok := synthetic[s.TraceID]
			if !ok {
				root = &TreeNode{
					Span: Span{
						Kind:    "synthetic.root",
						Label:   fmt.Sprintf("[incomplete trace %x: parent span(s) missing from input]", s.TraceID),
						TraceID: s.TraceID,
					},
					Synthetic: true,
				}
				synthetic[s.TraceID] = root
				t.Adopted = append(t.Adopted, root)
				t.Roots = append(t.Roots, root)
			}
			root.Children = append(root.Children, n)
		case parent == nil:
			t.Orphans = append(t.Orphans, n)
		case parent == n:
			// A self-referential span would make every walk recurse
			// forever; treat it as a root.
			t.Roots = append(t.Roots, n)
		default:
			parent.Children = append(parent.Children, n)
		}
	}
	// A synthetic root spans its adopted children, so timelines and
	// critical paths stay well-formed.
	for _, root := range t.Adopted {
		for _, c := range root.Children {
			s := c.Span
			if root.Span.Begin.IsZero() || (!s.Begin.IsZero() && s.Begin.Before(root.Span.Begin)) {
				root.Span.Begin = s.Begin
			}
			if s.End.After(root.Span.End) {
				root.Span.End = s.End
			}
		}
		root.Span.Outcome = OutcomeActive
	}

	byBegin := func(a, b *TreeNode) bool {
		if !a.Span.Begin.Equal(b.Span.Begin) {
			return a.Span.Begin.Before(b.Span.Begin)
		}
		// Stable tie-break so merges render deterministically.
		ka, kb := keyOf(a.Span), keyOf(b.Span)
		if ka.span != kb.span {
			return ka.span < kb.span
		}
		if ka.node != kb.node {
			return ka.node < kb.node
		}
		return ka.id < kb.id
	}
	for _, n := range nodes {
		sort.Slice(n.Children, func(i, j int) bool { return byBegin(n.Children[i], n.Children[j]) })
	}
	for _, n := range t.Adopted {
		sort.Slice(n.Children, func(i, j int) bool { return byBegin(n.Children[i], n.Children[j]) })
	}
	sort.Slice(t.Roots, func(i, j int) bool { return byBegin(t.Roots[i], t.Roots[j]) })
	sort.Slice(t.Orphans, func(i, j int) bool { return byBegin(t.Orphans[i], t.Orphans[j]) })
	return t
}

// spanName picks the human-readable name for a span: its label, else
// its kind, else its action identifier.
func spanName(s Span) string {
	if s.Label != "" {
		return s.Label
	}
	if s.Kind != "" {
		return s.Kind
	}
	if s.ID != 0 {
		return s.ID.String()
	}
	return fmt.Sprintf("span-%x", s.SpanID)
}

// Render draws the merged tree as a cross-node ASCII timeline in the
// style of the paper's figs 14/15: one row per span, indented by causal
// depth, prefixed with the owning node, with a bar spanning begin to
// end on a global time scale. Orphans, if any, render in a trailing
// section.
func (t *Tree) Render(width int) string {
	if width < 20 {
		width = 20
	}
	var minT, maxT time.Time
	all := append(append([]*TreeNode{}, t.Roots...), t.Orphans...)
	for _, r := range all {
		r.Walk(func(n *TreeNode, _ int) {
			s := n.Span
			if minT.IsZero() || (!s.Begin.IsZero() && s.Begin.Before(minT)) {
				minT = s.Begin
			}
			if s.End.After(maxT) {
				maxT = s.End
			}
			if s.Begin.After(maxT) {
				maxT = s.Begin
			}
		})
	}
	if len(all) == 0 {
		return "(no spans)\n"
	}
	total := maxT.Sub(minT)
	if total <= 0 {
		total = time.Nanosecond
	}
	col := func(tm time.Time) int {
		c := int(float64(tm.Sub(minT)) / float64(total) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	var sb strings.Builder
	draw := func(n *TreeNode, depth int) {
		s := n.Span
		start := col(s.Begin)
		endCol := width - 1
		endMark := byte('?')
		if !s.End.IsZero() {
			endCol = col(s.End)
			switch s.Outcome {
			case OutcomeAborted, OutcomeError:
				endMark = 'A'
			default:
				endMark = 'C'
			}
		}
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		for i := start; i <= endCol && i < width; i++ {
			line[i] = '='
		}
		line[start] = '|'
		if endCol > start || !s.End.IsZero() {
			line[endCol] = endMark
		}
		where := "-"
		if s.Node != 0 {
			where = s.Node.String()
		}
		name := strings.Repeat("  ", depth) + spanName(s)
		fmt.Fprintf(&sb, "%-8s %-32s %s\n", where, name, string(line))
	}
	for _, r := range t.Roots {
		r.Walk(draw)
	}
	if len(t.Orphans) > 0 {
		sb.WriteString("-- orphans (parent span missing from input) --\n")
		for _, o := range t.Orphans {
			o.Walk(draw)
		}
	}
	return sb.String()
}

// CriticalPath walks from the root to the latest-finishing leaf,
// descending at each step into the child whose End is the maximum: the
// chain of spans that determined the operation's total latency (for a
// 2PC commit: the slowest participant of the slowest round). Spans
// without an End (still active) compare as latest.
func CriticalPath(root *TreeNode) []Span {
	var path []Span
	for n := root; n != nil; {
		path = append(path, n.Span)
		var next *TreeNode
		for _, c := range n.Children {
			if next == nil || endAfter(c.Span, next.Span) {
				next = c
			}
		}
		n = next
	}
	return path
}

// endAfter reports whether a finishes after b, with "still active"
// (zero End) counting as latest of all.
func endAfter(a, b Span) bool {
	if a.End.IsZero() {
		return true
	}
	if b.End.IsZero() {
		return false
	}
	return a.End.After(b.End)
}

// chromeEvent is one Chrome trace_event object ("X" complete events),
// loadable by Perfetto / chrome://tracing.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  uint64            `json:"pid"` // node
	TID  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChrome exports spans as Chrome trace_event JSON: one complete
// ("X") event per span, with the owning node as the process id, so
// Perfetto renders one track group per node. Timestamps are
// microseconds relative to the earliest span.
func WriteChrome(w io.Writer, spans []Span) error {
	var minT time.Time
	for _, s := range spans {
		if minT.IsZero() || (!s.Begin.IsZero() && s.Begin.Before(minT)) {
			minT = s.Begin
		}
	}
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		cat := s.Kind
		if cat == "" {
			cat = "action"
		}
		dur := 0.0
		if !s.End.IsZero() {
			dur = float64(s.End.Sub(s.Begin)) / float64(time.Microsecond)
		}
		tid := s.SpanID
		if tid == 0 {
			tid = uint64(s.ID)
		}
		args := map[string]string{"outcome": s.Outcome}
		if s.TraceID != 0 {
			args["trace"] = fmt.Sprintf("%x", s.TraceID)
		}
		events = append(events, chromeEvent{
			Name: spanName(s),
			Cat:  cat,
			Ph:   "X",
			TS:   float64(s.Begin.Sub(minT)) / float64(time.Microsecond),
			Dur:  dur,
			PID:  uint64(s.Node),
			TID:  tid,
			Args: args,
		})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].TS != events[j].TS {
			return events[i].TS < events[j].TS
		}
		return events[i].TID < events[j].TID
	})
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events}); err != nil {
		return fmt.Errorf("trace: encode chrome trace: %w", err)
	}
	return bw.Flush()
}
