// Graphviz export: the merged causal tree as a DOT digraph, for
// rendering trace shapes in documentation and debugging sessions.
package trace

import (
	"bufio"
	"fmt"
	"io"

	"mca/internal/colour"
)

// WriteDOT renders spans as a Graphviz digraph: one node per span
// (labelled with its name, owning node and outcome), one edge per
// parent link, with the child's colour set as the edge label. Output is
// deterministic for a given input order (Merge sorts by begin time, so
// merged trees render reproducibly).
func WriteDOT(w io.Writer, spans []Span) error {
	tree := Merge(spans)
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph trace {")
	fmt.Fprintln(bw, "  rankdir=TB;")
	fmt.Fprintln(bw, "  node [shape=box, fontname=\"monospace\"];")

	names := make(map[*TreeNode]string)
	seq := 0
	var declare func(n *TreeNode)
	declare = func(n *TreeNode) {
		name := fmt.Sprintf("s%d", seq)
		seq++
		names[n] = name
		s := n.Span
		label := spanName(s)
		if s.Node != 0 {
			label += "\\n@" + s.Node.String()
		}
		if s.Outcome != "" {
			label += "\\n" + s.Outcome
		}
		attrs := ""
		switch s.Outcome {
		case OutcomeAborted, OutcomeError:
			attrs = ", color=red"
		case OutcomeActive:
			attrs = ", style=dashed"
		}
		fmt.Fprintf(bw, "  %s [label=\"%s\"%s];\n", name, label, attrs)
		for _, c := range n.Children {
			declare(c)
		}
	}
	var connect func(n *TreeNode)
	connect = func(n *TreeNode) {
		for _, c := range n.Children {
			attrs := ""
			if cs := colourLabel(c.Span.Colours); cs != "" {
				attrs = fmt.Sprintf(" [label=\"%s\"]", cs)
			}
			fmt.Fprintf(bw, "  %s -> %s%s;\n", names[n], names[c], attrs)
			connect(c)
		}
	}
	for _, r := range tree.Roots {
		declare(r)
	}
	for _, o := range tree.Orphans {
		declare(o)
	}
	for _, r := range tree.Roots {
		connect(r)
	}
	for _, o := range tree.Orphans {
		connect(o)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// colourLabel renders a colour set for an edge label, empty for none.
func colourLabel(cs []colour.Colour) string {
	out := ""
	for i, c := range cs {
		if i > 0 {
			out += ","
		}
		out += c.String()
	}
	return out
}

// WriteDOT renders the recorder's reconstructed spans as a Graphviz
// digraph (see the package-level WriteDOT).
func (r *Recorder) WriteDOT(w io.Writer) error {
	return WriteDOT(w, r.Spans())
}
