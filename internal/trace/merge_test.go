package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mca/internal/colour"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// testSpans builds a small two-node trace: a coordinator root span with
// a prepare round, whose RPC lands a participant action on node 2, plus
// one untraced local action on node 1.
func testSpans() []Span {
	t0 := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	at := func(ms int) time.Time { return t0.Add(time.Duration(ms) * time.Millisecond) }
	return []Span{
		// node 1 (coordinator) export
		{ID: 1, Node: 1, TraceID: 100, SpanID: 10, Label: "transfer", Outcome: OutcomeCommitted, Begin: at(0), End: at(50)},
		{Kind: "round.prepare", Node: 1, TraceID: 100, SpanID: 11, ParentSpanID: 10, Label: "prepare 1/1", Outcome: OutcomeCommitted, Begin: at(5), End: at(20)},
		{Kind: "rpc.client", Node: 1, TraceID: 100, SpanID: 12, ParentSpanID: 11, Label: "dist.prepare to node-2", Outcome: OutcomeOK, Begin: at(6), End: at(19)},
		{ID: 7, Node: 1, Label: "local-only", Outcome: OutcomeAborted, Begin: at(30), End: at(40)},
		// node 2 (participant) export
		{Kind: "rpc.server", Node: 2, TraceID: 100, SpanID: 13, ParentSpanID: 12, Label: "dist.prepare", Outcome: OutcomeOK, Begin: at(8), End: at(18)},
		{ID: 21, Node: 2, TraceID: 100, SpanID: 14, ParentSpanID: 13, Colours: []colour.Colour{1}, Outcome: OutcomeCommitted, Begin: at(9), End: at(17)},
	}
}

func TestMergeBuildsOneRootedTree(t *testing.T) {
	tree := Merge(testSpans())
	if len(tree.Orphans) != 0 {
		t.Fatalf("orphans: %d, want 0", len(tree.Orphans))
	}
	if len(tree.Roots) != 2 {
		t.Fatalf("roots: %d, want 2 (traced root + untraced local)", len(tree.Roots))
	}
	root := tree.Roots[0]
	if root.Span.Label != "transfer" {
		t.Fatalf("first root %q, want the traced transfer", root.Span.Label)
	}
	depths := map[string]int{}
	root.Walk(func(n *TreeNode, d int) { depths[spanName(n.Span)] = d })
	want := map[string]int{
		"transfer":               0,
		"prepare 1/1":            1,
		"dist.prepare to node-2": 2,
		"dist.prepare":           3,
		"a21":                    4,
	}
	for name, d := range want {
		if depths[name] != d {
			t.Fatalf("span %q at depth %d, want %d (depths: %v)", name, depths[name], d, want)
		}
	}
	if got := len(tree.Spans()); got != len(testSpans()) {
		t.Fatalf("tree.Spans: %d, want %d", got, len(testSpans()))
	}
}

func TestMergeCrossNodeParentBeatsLocalParent(t *testing.T) {
	spans := testSpans()
	// The participant action also carries a local Parent link that would
	// resolve to a different span; the trace identity must win.
	spans[5].Parent = 7
	tree := Merge(spans)
	if len(tree.Orphans) != 0 {
		t.Fatalf("orphans: %d, want 0", len(tree.Orphans))
	}
	var parentOf21 string
	tree.Roots[0].Walk(func(n *TreeNode, _ int) {
		for _, c := range n.Children {
			if c.Span.ID == 21 {
				parentOf21 = spanName(n.Span)
			}
		}
	})
	if parentOf21 != "dist.prepare" {
		t.Fatalf("span 21 attached under %q, want the rpc.server span", parentOf21)
	}
}

func TestMergeAdoptsTraceOrphans(t *testing.T) {
	spans := testSpans()
	// Drop the rpc.server span: its child (the participant action)
	// names a parent missing from the input, but carries a trace
	// identity — so it is adopted under a synthetic root, not reported
	// as an orphan (the parent was plausibly tail-sampled away).
	spans = append(spans[:4], spans[5])
	tree := Merge(spans)
	if len(tree.Orphans) != 0 {
		t.Fatalf("orphans: %d, want 0 (trace orphans are adopted)", len(tree.Orphans))
	}
	if len(tree.Adopted) != 1 {
		t.Fatalf("adopted roots: %d, want 1", len(tree.Adopted))
	}
	root := tree.Adopted[0]
	if !root.Synthetic || root.Span.Kind != "synthetic.root" || root.Span.TraceID != 100 {
		t.Fatalf("synthetic root malformed: %+v", root.Span)
	}
	if len(root.Children) != 1 || root.Children[0].Span.ID != 21 {
		t.Fatalf("adopted children: %+v, want participant action 21", root.Children)
	}
	// The synthetic root spans its children so timelines stay sane.
	c := root.Children[0].Span
	if !root.Span.Begin.Equal(c.Begin) || !root.Span.End.Equal(c.End) {
		t.Fatalf("synthetic root [%v,%v] does not span child [%v,%v]",
			root.Span.Begin, root.Span.End, c.Begin, c.End)
	}
	// Adopted roots are part of Roots, so walks and renders see them.
	found := false
	for _, r := range tree.Roots {
		if r == root {
			found = true
		}
	}
	if !found {
		t.Fatalf("synthetic root missing from Roots")
	}
}

func TestMergeReportsLocalOrphans(t *testing.T) {
	spans := testSpans()
	// A trace-less span whose node-local parent is missing stays a hard
	// orphan: that is a truncated export, not tail sampling.
	spans = append(spans, Span{ID: 8, Parent: 9, Node: 1, Outcome: OutcomeCommitted,
		Begin: spans[3].Begin, End: spans[3].End})
	tree := Merge(spans)
	if len(tree.Orphans) != 1 {
		t.Fatalf("orphans: %d, want 1", len(tree.Orphans))
	}
	if tree.Orphans[0].Span.ID != 8 {
		t.Fatalf("orphan is %v, want local action 8", tree.Orphans[0].Span.ID)
	}
}

// TestMergeSampledOutCoordinator is the tail-sampling regression: the
// coordinator's whole export (root, round, rpc.client) was dropped by
// its sampler while the participant kept its spans. Merge must attach
// the surviving subtree under one synthetic root per trace and keep
// the participant's internal parent links intact.
func TestMergeSampledOutCoordinator(t *testing.T) {
	spans := testSpans()[4:] // participant export only
	tree := Merge(spans)
	if len(tree.Orphans) != 0 {
		t.Fatalf("orphans: %d, want 0", len(tree.Orphans))
	}
	if len(tree.Adopted) != 1 {
		t.Fatalf("adopted roots: %d, want 1 synthetic root for trace 100", len(tree.Adopted))
	}
	root := tree.Adopted[0]
	if len(root.Children) != 1 || root.Children[0].Span.Kind != "rpc.server" {
		t.Fatalf("synthetic root children: %+v, want the rpc.server span only", root.Children)
	}
	if len(root.Children[0].Children) != 1 || root.Children[0].Children[0].Span.ID != 21 {
		t.Fatalf("participant action 21 must stay under its rpc.server parent")
	}
	// The render must include the adopted subtree.
	out := tree.Render(40)
	if !bytes.Contains([]byte(out), []byte("dist.prepare")) {
		t.Fatalf("render missing adopted subtree:\n%s", out)
	}
}

func TestMergeDeduplicatesRepeatedInput(t *testing.T) {
	spans := testSpans()
	tree := Merge(append(spans, spans...))
	if got := len(tree.Spans()); got != len(spans) {
		t.Fatalf("doubled input produced %d spans, want %d", got, len(spans))
	}
}

func TestRenderShowsAllNodes(t *testing.T) {
	out := Merge(testSpans()).Render(40)
	for _, want := range []string{"n1", "n2", "transfer", "prepare 1/1", "dist.prepare"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCriticalPathFollowsLatestChild(t *testing.T) {
	tree := Merge(testSpans())
	path := CriticalPath(tree.Roots[0])
	if len(path) != 5 {
		t.Fatalf("critical path length %d, want 5", len(path))
	}
	if path[0].Label != "transfer" || path[4].ID != 21 {
		t.Fatalf("critical path endpoints wrong: %q .. %v", path[0].Label, path[4].ID)
	}
	// A second, slower round becomes the new critical path.
	spans := append(testSpans(), Span{
		Kind: "round.commit", Node: 1, TraceID: 100, SpanID: 15, ParentSpanID: 10,
		Label: "commit 1/1", Outcome: OutcomeCommitted,
		Begin: testSpans()[0].Begin.Add(21 * time.Millisecond),
		End:   testSpans()[0].Begin.Add(49 * time.Millisecond),
	})
	path = CriticalPath(Merge(spans).Roots[0])
	if len(path) != 2 || path[1].Label != "commit 1/1" {
		t.Fatalf("critical path did not follow the slower round: %+v", path)
	}
}

func TestWriteChromeIsValidTraceEventJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, testSpans()); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  uint64  `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != len(testSpans()) {
		t.Fatalf("chrome export has %d events, want %d", len(doc.TraceEvents), len(testSpans()))
	}
	pids := map[uint64]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q has phase %q, want X", ev.Name, ev.Ph)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Fatalf("event %q has negative ts/dur", ev.Name)
		}
		pids[ev.PID] = true
	}
	if !pids[1] || !pids[2] {
		t.Fatalf("chrome export lost node process ids: %v", pids)
	}
}

func TestWriteDOTGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDOT(&buf, testSpans()); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	golden := filepath.Join("testdata", "merge.dot")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("DOT output differs from golden %s:\n--- got ---\n%s--- want ---\n%s", golden, buf.String(), want)
	}
}

func TestRecorderWriteDOT(t *testing.T) {
	rec := NewRecorder()
	rec.AddSpan(testSpans()[0])
	var buf bytes.Buffer
	if err := rec.WriteDOT(&buf); err != nil {
		t.Fatalf("Recorder.WriteDOT: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("digraph trace")) {
		t.Fatalf("not a digraph:\n%s", buf.String())
	}
}
