// Distributed trace context: the compact causal identity one unit of
// work carries across nodes (Dapper-style propagation). A Context names
// a trace (one client-visible distributed operation) and a span within
// it (one timed piece of that operation). The RPC layer ships Contexts
// inside its envelope, so a 2PC round driven at the coordinator and the
// participant actions it creates at other nodes all share one TraceID
// and link parent to child by SpanID — cmd/tracecat reassembles the
// cross-node tree from per-node span exports.
package trace

import (
	"context"
	"sync/atomic"

	"mca/internal/clock"
)

// Context is a span's identity within a distributed trace. The zero
// value means "not traced"; both fields are non-zero in a valid
// context.
type Context struct {
	// TraceID names the distributed operation; every span caused by it
	// shares the value.
	TraceID uint64 `json:"trace"`
	// SpanID names this span; children record it as their parent.
	SpanID uint64 `json:"span"`
}

// Valid reports whether the context carries a trace identity.
func (c Context) Valid() bool { return c.TraceID != 0 && c.SpanID != 0 }

// Child returns a context for a new span caused by this one: same
// trace, fresh span identifier. The receiver is unchanged.
func (c Context) Child() Context {
	return Context{TraceID: c.TraceID, SpanID: NewSpanID()}
}

// ID allocation: counters seeded from the process start time, so span
// identifiers from separately started processes (tcpnet deployments
// exporting spans merged by cmd/tracecat) are distinct with high
// probability. Within a process identifiers are strictly unique.
var (
	traceIDs atomic.Uint64
	spanIDs  atomic.Uint64
)

func init() {
	SeedIDs(uint64(clock.Real().Now().UnixNano()))
}

// SeedIDs re-seeds the trace/span identifier counters. The default
// seed is the process start time, keeping separately started processes
// distinct; deterministic replays call this with a fixed seed so two
// runs allocate identical identifiers.
func SeedIDs(seed uint64) {
	seed = splitmix64(seed)
	// Keep the low 24 bits as counting room under random high bits.
	traceIDs.Store(seed &^ 0xFFFFFF)
	spanIDs.Store(splitmix64(seed) &^ 0xFFFFFF)
}

// splitmix64 is the finalizer of the splitmix64 generator: a cheap
// high-quality bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// NewTraceID allocates a fresh trace identifier (never zero).
func NewTraceID() uint64 {
	for {
		if id := traceIDs.Add(1); id != 0 {
			return id
		}
	}
}

// NewSpanID allocates a fresh span identifier (never zero).
func NewSpanID() uint64 {
	for {
		if id := spanIDs.Add(1); id != 0 {
			return id
		}
	}
}

// NewRoot starts a fresh trace: a new trace identifier with a root
// span.
func NewRoot() Context {
	return Context{TraceID: NewTraceID(), SpanID: NewSpanID()}
}

// ctxKey keys the trace context in a context.Context.
type ctxKey struct{}

// Inject returns a context carrying tc, for handing to the RPC layer:
// the caller keeps ownership of ctx (Inject derives, never stores it),
// and the returned context is only as long-lived as ctx itself.
func Inject(ctx context.Context, tc Context) context.Context {
	return context.WithValue(ctx, ctxKey{}, tc)
}

// FromContext extracts the trace context carried by ctx, if any. The
// boolean is false when ctx carries none (or an invalid one): callers
// must treat that as "not traced", never as an error.
func FromContext(ctx context.Context) (Context, bool) {
	tc, ok := ctx.Value(ctxKey{}).(Context)
	return tc, ok && tc.Valid()
}
