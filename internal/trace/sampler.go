// Tail-based trace sampling: with always-on tracing at load-generator
// rates, exporting every transaction's spans is unaffordable, but the
// interesting transactions — the tail that blows an SLO, the aborts —
// are precisely the ones a head-based coin flip throws away. A Sampler
// buffers each transaction's spans until its root action completes and
// only then decides, from the observed duration and outcome, whether
// the transaction's spans survive: slower than an absolute threshold,
// slower than a running quantile of its peers, aborted, or a 1-in-N
// baseline lottery winner (so the fast path stays represented).
//
// One Sampler is shared by every Recorder in a cluster: the decision is
// made once, by the recorder that owns the trace root (the 2PC
// coordinator), and published in a bounded table the other recorders
// consult. Spans arriving after the decision — the phase-2 commit round
// runs after the root action commits — follow it: kept traces append
// directly, dropped traces discard. The lottery draws from a seeded
// clock.Rand, so a fake-clock run replays decisions exactly (PR 7).
package trace

import (
	"sync"
	"time"

	"mca/internal/clock"
	"mca/internal/metrics"
)

// SamplerConfig sets the keep criteria. A zero config keeps nothing but
// what KeepAborted/BaselineN/Threshold/TailQuantile opt into; enable at
// least one or every trace is dropped.
type SamplerConfig struct {
	// Threshold keeps any transaction at least this slow. Zero
	// disables the absolute criterion.
	Threshold time.Duration
	// TailQuantile, in (0,1), keeps transactions at or above the
	// running q-quantile of completed-transaction durations (estimated
	// on a log-linear histogram, so the cut is within ~6% of the true
	// quantile). Zero disables.
	TailQuantile float64
	// QuantileWarmup is how many completions must be observed before
	// the quantile criterion activates (default 64): early in a run
	// the estimate is noise.
	QuantileWarmup int
	// KeepAborted keeps every aborted transaction.
	KeepAborted bool
	// BaselineN keeps roughly 1 in N transactions regardless of
	// latency, so the kept set represents the fast path too. Zero
	// disables the lottery.
	BaselineN int
	// Seed seeds the lottery's deterministic random stream.
	Seed uint64
}

// Sampler metrics: decisions by outcome (kept traces carry the reason
// that saved them), plus recorder-side buffer evictions.
var (
	samplerKeptVec = metrics.Default().CounterVec(
		"mca_trace_sampler_kept_total",
		"Transactions kept by the tail sampler, by keep reason.", "reason")
	samplerKeptAbort     = samplerKeptVec.With("abort")
	samplerKeptThreshold = samplerKeptVec.With("threshold")
	samplerKeptQuantile  = samplerKeptVec.With("quantile")
	samplerKeptBaseline  = samplerKeptVec.With("baseline")
	samplerDropped       = metrics.Default().Counter(
		"mca_trace_sampler_dropped_total",
		"Transactions dropped by the tail sampler.")
	samplerEvicted = metrics.Default().Counter(
		"mca_trace_sampler_evicted_total",
		"Undecided trace buffers evicted from a recorder (stale traces that never completed).")
)

// quantileRecalcEvery bounds how often the running quantile estimate is
// recomputed from the histogram (a 720-bucket scan).
const quantileRecalcEvery = 64

// samplerDecisionCap bounds the published-decision table; transactions
// complete promptly, so FIFO eviction only sheds decisions nothing will
// ask about again.
const samplerDecisionCap = 8192

// Sampler makes and publishes keep/drop decisions for completed
// transactions. Create one per cluster (NewSampler) and install it on
// every node's Recorder (SetSampler). Safe for concurrent use.
type Sampler struct {
	cfg SamplerConfig

	mu          sync.Mutex
	rng         *clock.Rand
	hist        metrics.LogLinearHistogram
	sinceRecalc int
	quantileNs  float64
	decided     map[uint64]bool
	order       []uint64
}

// NewSampler builds a sampler with the given criteria.
func NewSampler(cfg SamplerConfig) *Sampler {
	if cfg.QuantileWarmup <= 0 {
		cfg.QuantileWarmup = 64
	}
	return &Sampler{
		cfg:     cfg,
		rng:     clock.NewRand(cfg.Seed),
		decided: make(map[uint64]bool, samplerDecisionCap),
	}
}

// Decision reports the published keep/drop decision for a trace;
// ok is false while the trace's root has not completed (or the decision
// was evicted).
func (s *Sampler) Decision(trace uint64) (keep, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keep, ok = s.decided[trace]
	return keep, ok
}

// decide evaluates a completed transaction root, publishes the decision
// and returns it. Idempotent: a second call for the same trace returns
// the published decision without re-drawing the lottery.
func (s *Sampler) decide(trace uint64, d time.Duration, aborted bool) bool {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if keep, ok := s.decided[trace]; ok {
		return keep
	}

	keep, reason := false, (*metrics.Counter)(nil)
	if s.cfg.KeepAborted && aborted {
		keep, reason = true, samplerKeptAbort
	}
	if !keep && s.cfg.Threshold > 0 && d >= s.cfg.Threshold {
		keep, reason = true, samplerKeptThreshold
	}
	if s.cfg.TailQuantile > 0 {
		// Every completion feeds the estimate, kept or not.
		s.hist.Observe(uint64(d))
		s.sinceRecalc++
		if s.quantileNs == 0 || s.sinceRecalc >= quantileRecalcEvery {
			if snap := s.hist.Snapshot(); snap.Count >= uint64(s.cfg.QuantileWarmup) {
				s.quantileNs = snap.Quantile(s.cfg.TailQuantile)
			}
			s.sinceRecalc = 0
		}
		if !keep && s.quantileNs > 0 && float64(d) >= s.quantileNs {
			keep, reason = true, samplerKeptQuantile
		}
	}
	if s.cfg.BaselineN > 0 {
		// Always draw, even when already kept: the stream position then
		// depends only on the completion sequence, so a seeded replay
		// reproduces every lottery outcome.
		won := s.rng.Uint64()%uint64(s.cfg.BaselineN) == 0
		if !keep && won {
			keep, reason = true, samplerKeptBaseline
		}
	}

	if len(s.decided) >= samplerDecisionCap && len(s.order) > 0 {
		old := s.order[0]
		s.order = s.order[1:]
		delete(s.decided, old)
	}
	s.decided[trace] = keep
	s.order = append(s.order, trace)
	if keep {
		reason.Inc()
	} else {
		samplerDropped.Inc()
	}
	return keep
}
