package trace_test

import (
	"strings"
	"testing"
	"time"

	"mca/internal/action"
	"mca/internal/structures"
	"mca/internal/trace"
)

func TestRecorderCountsLifecycleEvents(t *testing.T) {
	rec := trace.NewRecorder()
	rt := action.NewRuntime(action.WithObserver(rec.Observe))

	a, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	child, err := a.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := child.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := a.Abort(); err != nil {
		t.Fatal(err)
	}

	sum := rec.Summary()
	if sum[action.EventBegin] != 2 {
		t.Fatalf("begins = %d", sum[action.EventBegin])
	}
	if sum[action.EventCommit] != 1 {
		t.Fatalf("commits = %d", sum[action.EventCommit])
	}
	if sum[action.EventAbort] != 1 {
		t.Fatalf("aborts = %d", sum[action.EventAbort])
	}
}

func TestEventsCarryParentage(t *testing.T) {
	rec := trace.NewRecorder()
	rt := action.NewRuntime(action.WithObserver(rec.Observe))

	a, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	child, err := a.Begin()
	if err != nil {
		t.Fatal(err)
	}
	_ = child.Commit()
	_ = a.Commit()

	var sawChildBegin bool
	for _, ev := range rec.Events() {
		if ev.Kind == action.EventBegin && ev.Action == child.ID() {
			sawChildBegin = true
			if ev.Parent != a.ID() {
				t.Fatalf("child begin parent = %v, want %v", ev.Parent, a.ID())
			}
		}
	}
	if !sawChildBegin {
		t.Fatal("child begin event missing")
	}
}

func TestRenderTimelineShape(t *testing.T) {
	rec := trace.NewRecorder()
	rt := action.NewRuntime(action.WithObserver(rec.Observe))

	// A fig 3-like run: serializing container with two constituents.
	s, err := structures.BeginSerializing(rt)
	if err != nil {
		t.Fatal(err)
	}
	rec.Label(s.Container().ID(), "A(serializing)")
	if err := s.RunConstituent(func(b *action.Action) error {
		rec.Label(b.ID(), "B")
		time.Sleep(2 * time.Millisecond)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunConstituent(func(c *action.Action) error {
		rec.Label(c.ID(), "C")
		time.Sleep(2 * time.Millisecond)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.End(); err != nil {
		t.Fatal(err)
	}

	out := rec.Render(60)
	t.Logf("\n%s", out)

	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline rows = %d, want 3:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "A(serializing)") {
		t.Fatalf("first row = %q", lines[0])
	}
	// Constituents are indented under the container.
	if !strings.HasPrefix(lines[1], "  ") || !strings.HasPrefix(lines[2], "  ") {
		t.Fatalf("constituents not indented:\n%s", out)
	}
	// All three committed.
	for _, l := range lines {
		if !strings.Contains(l, "C") {
			t.Fatalf("row without commit mark: %q", l)
		}
	}
	// B ends before C begins (sequential constituents).
	bBar := lines[1][24:]
	cBar := lines[2][24:]
	bEnd := strings.LastIndexByte(bBar, 'C')
	cStart := strings.IndexByte(cBar, '|')
	if bEnd == -1 || cStart == -1 || bEnd > cStart {
		t.Fatalf("B must end before C starts:\nB: %q\nC: %q", bBar, cBar)
	}
}

func TestRenderAbortMark(t *testing.T) {
	rec := trace.NewRecorder()
	rt := action.NewRuntime(action.WithObserver(rec.Observe))
	a, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	_ = a.Abort()
	out := rec.Render(40)
	if !strings.Contains(out, "A") {
		t.Fatalf("abort mark missing:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	rec := trace.NewRecorder()
	if out := rec.Render(40); !strings.Contains(out, "no events") {
		t.Fatalf("empty render = %q", out)
	}
}

func TestRenderActiveActionMarkedOpen(t *testing.T) {
	rec := trace.NewRecorder()
	rt := action.NewRuntime(action.WithObserver(rec.Observe))
	a, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	child, err := a.Begin()
	if err != nil {
		t.Fatal(err)
	}
	_ = child.Commit()
	out := rec.Render(40)
	if !strings.Contains(out, "?") {
		t.Fatalf("open action must be marked '?':\n%s", out)
	}
	_ = a.Abort()
}
