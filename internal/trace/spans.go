// Structured span export: the machine-readable counterpart to Render.
// One Span per action, with parent identifier, colours, outcome and
// timestamps, serialized as JSON Lines — one object per line, so
// streams concatenate and external tooling (jq, the experiment
// harness) can consume them without a framing parser.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"mca/internal/action"
	"mca/internal/colour"
	"mca/internal/ids"
)

// Span is one action's exported lifetime.
type Span struct {
	// ID and Parent identify the action in the tree; Parent is zero for
	// top-level actions.
	ID     ids.ActionID `json:"id"`
	Parent ids.ActionID `json:"parent,omitempty"`
	// Label is the Recorder label, when one was set.
	Label string `json:"label,omitempty"`
	// Colours is the action's colour set, ascending.
	Colours []colour.Colour `json:"colours,omitempty"`
	// Outcome is "committed", "aborted" or "active" (no end event
	// recorded).
	Outcome string `json:"outcome"`
	Begin   time.Time `json:"begin"`
	// End is zero while the action is still active.
	End time.Time `json:"end,omitzero"`
}

// Span outcomes.
const (
	OutcomeCommitted = "committed"
	OutcomeAborted   = "aborted"
	OutcomeActive    = "active"
)

// Spans reconstructs one Span per recorded action, ordered by begin
// time (ties by id). Actions with no recorded begin (observer attached
// mid-run) get a zero-length span at their end event, mirroring Render.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	events := make([]action.Event, len(r.events))
	copy(events, r.events)
	labels := make(map[ids.ActionID]string, len(r.labels))
	for k, v := range r.labels {
		labels[k] = v
	}
	r.mu.Unlock()

	index := make(map[ids.ActionID]int, len(events))
	var spans []Span
	for _, ev := range events {
		switch ev.Kind {
		case action.EventBegin:
			if _, dup := index[ev.Action]; dup {
				continue
			}
			s := Span{
				ID:      ev.Action,
				Colours: ev.Colours.Slice(),
				Outcome: OutcomeActive,
				Begin:   ev.Time,
			}
			if ev.Parent != ev.Action {
				s.Parent = ev.Parent
			}
			index[ev.Action] = len(spans)
			spans = append(spans, s)
		case action.EventCommit, action.EventAbort:
			i, ok := index[ev.Action]
			if !ok {
				i = len(spans)
				index[ev.Action] = i
				spans = append(spans, Span{
					ID:      ev.Action,
					Colours: ev.Colours.Slice(),
					Begin:   ev.Time,
				})
			}
			spans[i].End = ev.Time
			if ev.Kind == action.EventAbort {
				spans[i].Outcome = OutcomeAborted
			} else {
				spans[i].Outcome = OutcomeCommitted
			}
		}
	}
	for i := range spans {
		spans[i].Label = labels[spans[i].ID]
	}
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Begin.Equal(spans[j].Begin) {
			return spans[i].Begin.Before(spans[j].Begin)
		}
		return spans[i].ID < spans[j].ID
	})
	return spans
}

// WriteSpans writes spans as JSON Lines: one span object per line.
func WriteSpans(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return fmt.Errorf("trace: encode span %v: %w", s.ID, err)
		}
	}
	return bw.Flush()
}

// WriteSpans exports the recorder's reconstructed spans as JSON Lines.
func (r *Recorder) WriteSpans(w io.Writer) error {
	return WriteSpans(w, r.Spans())
}

// ReadSpans decodes a JSON Lines span stream, as written by WriteSpans.
// Blank lines are skipped.
func ReadSpans(r io.Reader) ([]Span, error) {
	var spans []Span
	dec := json.NewDecoder(r)
	for {
		var s Span
		if err := dec.Decode(&s); err == io.EOF {
			return spans, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decode span %d: %w", len(spans), err)
		}
		spans = append(spans, s)
	}
}
