// Structured span export: the machine-readable counterpart to Render.
// One Span per action, with parent identifier, colours, outcome and
// timestamps, serialized as JSON Lines — one object per line, so
// streams concatenate and external tooling (jq, the experiment
// harness) can consume them without a framing parser.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"mca/internal/action"
	"mca/internal/colour"
	"mca/internal/ids"
	"mca/internal/phase"
)

// Span is one exported unit of timed work: an action's lifetime, a
// commit-protocol round, or an RPC call. Action spans link locally via
// ID/Parent; cross-node causality links via the distributed-trace
// fields (TraceID/SpanID/ParentSpanID), which the merge logic prefers
// when present.
type Span struct {
	// ID and Parent identify the action in the node-local tree; Parent
	// is zero for top-level actions, both are zero for synthetic spans
	// (rounds, RPCs).
	ID     ids.ActionID `json:"id,omitempty"`
	Parent ids.ActionID `json:"parent,omitempty"`
	// Kind classifies the span: "" for actions, "round.<kind>" for
	// commit-protocol fan-out rounds, "rpc.client"/"rpc.server" for RPC
	// calls.
	Kind string `json:"kind,omitempty"`
	// Node is the exporting node, when the recorder is node-bound
	// (Recorder.SetNode).
	Node ids.NodeID `json:"node,omitempty"`
	// TraceID, SpanID and ParentSpanID are the span's distributed-trace
	// identity (see Context); zero when the work was never traced
	// across nodes. ParentSpanID may name a span exported by a
	// different node.
	TraceID      uint64 `json:"traceId,omitempty"`
	SpanID       uint64 `json:"spanId,omitempty"`
	ParentSpanID uint64 `json:"parentSpan,omitempty"`
	// Label is the Recorder label, when one was set.
	Label string `json:"label,omitempty"`
	// Colours is the action's colour set, ascending.
	Colours []colour.Colour `json:"colours,omitempty"`
	// Outcome is "committed", "aborted" or "active" (no end event
	// recorded); RPC spans use "ok"/"error".
	Outcome string    `json:"outcome"`
	Begin   time.Time `json:"begin"`
	// End is zero while the action is still active.
	End time.Time `json:"end,omitzero"`
	// Phases is the transaction's accumulated wait breakdown in
	// nanoseconds (internal/phase), attached to trace-root spans at
	// export: lock-wait, WAL force-wait, rpc client/server time, serve
	// queueing and round wall time. Raw sums overlap; tracecat's
	// -attrib derives the exclusive view.
	Phases map[string]int64 `json:"phases,omitempty"`
}

// Span outcomes.
const (
	OutcomeCommitted = "committed"
	OutcomeAborted   = "aborted"
	OutcomeActive    = "active"
	// OutcomeOK and OutcomeError are the outcomes of RPC spans.
	OutcomeOK    = "ok"
	OutcomeError = "error"
)

// Context returns the span's distributed-trace identity (zero when
// untraced).
func (s Span) Context() Context {
	return Context{TraceID: s.TraceID, SpanID: s.SpanID}
}

// Spans reconstructs one Span per recorded action, ordered by begin
// time (ties by id). Actions with no recorded begin (observer attached
// mid-run) get a zero-length span at their end event, mirroring Render.
//
// Distributed-trace identities are resolved on the way out: actions
// bound with StartTrace/JoinTrace carry their identity, and their
// local descendants inherit the TraceID with fresh span identifiers
// (persisted, so repeated exports agree). Synthetic spans (AddSpan)
// and traced commit-protocol rounds (ObserveRound events with a valid
// Trace) are appended after the action spans, in the same time order.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sampler != nil {
		// Apply decisions this recorder has not yet seen an event for
		// (a participant whose last span arrived before the
		// coordinator decided). Iteration follows insertion order so
		// repeated exports append identically.
		for _, tid := range r.pendingOrder {
			if _, ok := r.pending[tid]; !ok {
				continue
			}
			if keep, ok := r.sampler.Decision(tid); ok {
				r.drainLocked(tid, keep)
			}
		}
	}
	events := r.events
	labels := r.labels

	index := make(map[ids.ActionID]int, len(events))
	var spans []Span
	for _, ev := range events {
		switch ev.Kind {
		case action.EventBegin:
			if _, dup := index[ev.Action]; dup {
				continue
			}
			s := Span{
				ID:      ev.Action,
				Colours: ev.Colours.Slice(),
				Outcome: OutcomeActive,
				Begin:   ev.Time,
			}
			if ev.Parent != ev.Action {
				s.Parent = ev.Parent
			}
			index[ev.Action] = len(spans)
			spans = append(spans, s)
		case action.EventCommit, action.EventAbort:
			i, ok := index[ev.Action]
			if !ok {
				i = len(spans)
				index[ev.Action] = i
				spans = append(spans, Span{
					ID:      ev.Action,
					Colours: ev.Colours.Slice(),
					Begin:   ev.Time,
				})
			}
			spans[i].End = ev.Time
			if ev.Kind == action.EventAbort {
				spans[i].Outcome = OutcomeAborted
			} else {
				spans[i].Outcome = OutcomeCommitted
			}
		}
	}
	for i := range spans {
		spans[i].Label = labels[spans[i].ID]
	}
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Begin.Equal(spans[j].Begin) {
			return spans[i].Begin.Before(spans[j].Begin)
		}
		return spans[i].ID < spans[j].ID
	})

	// Resolve trace identities parent-first (the sort guarantees a
	// parent sorts before its children: it began earlier, or ties and
	// has the smaller monotonic id). Inherited bindings are persisted
	// in r.binds so a second export assigns the same span identifiers.
	for i := range spans {
		s := &spans[i]
		if b, ok := r.binds[s.ID]; ok {
			s.TraceID, s.SpanID, s.ParentSpanID = b.tc.TraceID, b.tc.SpanID, b.parent
			if b.parent == 0 && b.tc.TraceID != 0 {
				// Trace root: carry the transaction's phase breakdown.
				s.Phases = phase.Snapshot(b.tc.TraceID)
			}
			continue
		}
		if s.Parent == 0 {
			continue
		}
		pb, ok := r.binds[s.Parent]
		if !ok {
			continue
		}
		b := traceBinding{tc: pb.tc.Child(), parent: pb.tc.SpanID}
		r.binds[s.ID] = b
		s.TraceID, s.SpanID, s.ParentSpanID = b.tc.TraceID, b.tc.SpanID, b.parent
	}

	// Traced commit-protocol rounds become synthetic spans.
	for _, ev := range r.rounds {
		if !ev.Trace.Valid() {
			continue
		}
		outcome := OutcomeCommitted
		if ev.Err != nil {
			outcome = OutcomeAborted
		}
		spans = append(spans, Span{
			Kind:         "round." + string(ev.Kind),
			Label:        fmt.Sprintf("%s %d/%d", ev.Kind, ev.OK, ev.Participants),
			TraceID:      ev.Trace.TraceID,
			SpanID:       ev.Trace.SpanID,
			ParentSpanID: ev.ParentSpan,
			Outcome:      outcome,
			Begin:        ev.Start,
			End:          ev.Start.Add(ev.Duration),
		})
	}
	spans = append(spans, r.extras...)
	if r.node != 0 {
		for i := range spans {
			if spans[i].Node == 0 {
				spans[i].Node = r.node
			}
		}
	}
	return spans
}

// WriteSpans writes spans as JSON Lines: one span object per line.
func WriteSpans(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return fmt.Errorf("trace: encode span %v: %w", s.ID, err)
		}
	}
	return bw.Flush()
}

// WriteSpans exports the recorder's reconstructed spans as JSON Lines.
func (r *Recorder) WriteSpans(w io.Writer) error {
	return WriteSpans(w, r.Spans())
}

// ReadSpans decodes a JSON Lines span stream, as written by WriteSpans.
// Blank lines are skipped.
func ReadSpans(r io.Reader) ([]Span, error) {
	var spans []Span
	dec := json.NewDecoder(r)
	for {
		var s Span
		if err := dec.Decode(&s); err == io.EOF {
			return spans, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decode span %d: %w", len(spans), err)
		}
		spans = append(spans, s)
	}
}
