package trace_test

import (
	"testing"
	"time"

	"mca/internal/action"
	"mca/internal/clock"
	"mca/internal/phase"
	"mca/internal/trace"
)

// samplerHarness is a fake-clock runtime with a tail-sampling recorder:
// transaction durations come from clk.Advance, so every test here is
// deterministic and replayable.
type samplerHarness struct {
	clk *clock.Fake
	rt  *action.Runtime
	rec *trace.Recorder
}

func newSamplerHarness(t *testing.T, cfg trace.SamplerConfig) *samplerHarness {
	t.Helper()
	h := &samplerHarness{clk: clock.NewFake(), rec: trace.NewRecorder()}
	h.rec.SetSampler(trace.NewSampler(cfg))
	h.rt = action.NewRuntime(action.WithObserver(h.rec.Observe), action.WithClock(h.clk))
	return h
}

// txn runs one traced root transaction taking d, returning its trace id.
func (h *samplerHarness) txn(t *testing.T, d time.Duration, abort bool) uint64 {
	t.Helper()
	a, err := h.rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// Begin fires before StartTrace, like dist.Manager.Begin does: the
	// recorder must park and re-route the root's begin event.
	tc := h.rec.StartTrace(a.ID())
	h.clk.Advance(d)
	if abort {
		err = a.Abort()
	} else {
		err = a.Commit()
	}
	if err != nil {
		t.Fatal(err)
	}
	return tc.TraceID
}

// keptTraces returns the set of trace ids with an exported root span.
func (h *samplerHarness) keptTraces() map[uint64]bool {
	out := make(map[uint64]bool)
	for _, s := range h.rec.Spans() {
		if s.TraceID != 0 && s.ParentSpanID == 0 && s.ID != 0 {
			out[s.TraceID] = true
		}
	}
	return out
}

func TestSamplerThresholdKeepsSlowDropsFast(t *testing.T) {
	h := newSamplerHarness(t, trace.SamplerConfig{Threshold: 10 * time.Millisecond})
	slow := h.txn(t, 20*time.Millisecond, false)
	fast := h.txn(t, time.Millisecond, false)
	kept := h.keptTraces()
	if !kept[slow] {
		t.Fatalf("slow transaction %x dropped, want kept (threshold)", slow)
	}
	if kept[fast] {
		t.Fatalf("fast transaction %x kept, want dropped", fast)
	}
}

func TestSamplerAbortAlwaysKept(t *testing.T) {
	h := newSamplerHarness(t, trace.SamplerConfig{
		Threshold:   time.Hour, // nothing qualifies on latency
		KeepAborted: true,
	})
	aborted := h.txn(t, time.Millisecond, true)
	committed := h.txn(t, time.Millisecond, false)
	kept := h.keptTraces()
	if !kept[aborted] {
		t.Fatalf("fast aborted transaction %x dropped, want kept (KeepAborted)", aborted)
	}
	if kept[committed] {
		t.Fatalf("fast committed transaction %x kept, want dropped", committed)
	}
	spans := h.rec.Spans()
	found := false
	for _, s := range spans {
		if s.TraceID == aborted && s.Outcome == trace.OutcomeAborted {
			found = true
		}
	}
	if !found {
		t.Fatalf("kept abort did not export an aborted span: %+v", spans)
	}
}

// TestSamplerBaselineLotteryReplays: the 1-in-N lottery draws from a
// seeded deterministic stream positioned only by completion order, so
// two identical runs keep exactly the same transactions.
func TestSamplerBaselineLotteryReplays(t *testing.T) {
	const n, txns = 4, 64
	run := func() []int {
		h := newSamplerHarness(t, trace.SamplerConfig{BaselineN: n, Seed: 42})
		traces := make([]uint64, txns)
		for i := range traces {
			traces[i] = h.txn(t, time.Millisecond, false)
		}
		kept := h.keptTraces()
		var won []int
		for i, tid := range traces {
			if kept[tid] {
				won = append(won, i)
			}
		}
		return won
	}
	first, second := run(), run()
	if len(first) == 0 || len(first) == txns {
		t.Fatalf("lottery kept %d/%d, want a strict subset", len(first), txns)
	}
	if len(first) != len(second) {
		t.Fatalf("replay kept %d transactions, first run kept %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at winner %d: %v vs %v", i, first, second)
		}
	}
}

func TestSamplerQuantileKeepsTail(t *testing.T) {
	h := newSamplerHarness(t, trace.SamplerConfig{
		TailQuantile:   0.9,
		QuantileWarmup: 8,
	})
	// Feed a spread of fast completions so the running q0.9 lands well
	// above 1ms and well below 50ms.
	for i := 0; i < 24; i++ {
		h.txn(t, time.Duration(1+i%4)*time.Millisecond, false)
	}
	slow := h.txn(t, 50*time.Millisecond, false)
	fast := h.txn(t, time.Millisecond, false)
	kept := h.keptTraces()
	if !kept[slow] {
		t.Fatalf("tail transaction %x dropped, want kept (quantile)", slow)
	}
	if kept[fast] {
		t.Fatalf("fast transaction %x kept after warmup, want dropped", fast)
	}
}

// TestSamplerLateSpansFollowDecision: spans arriving after the root
// completed (the phase-2 commit fan-out) follow the published decision
// instead of re-buffering forever.
func TestSamplerLateSpansFollowDecision(t *testing.T) {
	h := newSamplerHarness(t, trace.SamplerConfig{Threshold: 10 * time.Millisecond})
	slow := h.txn(t, 20*time.Millisecond, false)
	fast := h.txn(t, time.Millisecond, false)

	mk := func(tid uint64) trace.Span {
		return trace.Span{
			Kind: "round.commit", TraceID: tid, SpanID: 999, ParentSpanID: 1,
			Outcome: trace.OutcomeCommitted, Begin: h.clk.Now(), End: h.clk.Now(),
		}
	}
	h.rec.AddSpan(mk(slow))
	h.rec.AddSpan(mk(fast))

	var gotSlow, gotFast bool
	for _, s := range h.rec.Spans() {
		if s.Kind == "round.commit" {
			switch s.TraceID {
			case slow:
				gotSlow = true
			case fast:
				gotFast = true
			}
		}
	}
	if !gotSlow {
		t.Fatalf("late span of kept trace %x missing from export", slow)
	}
	if gotFast {
		t.Fatalf("late span of dropped trace %x exported", fast)
	}
}

// TestSamplerKeptRootCarriesPhases: the phase ledger survives the keep
// decision and lands on the exported root span; dropped transactions'
// ledgers are discarded.
func TestSamplerKeptRootCarriesPhases(t *testing.T) {
	h := newSamplerHarness(t, trace.SamplerConfig{Threshold: 10 * time.Millisecond})

	a, err := h.rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tc := h.rec.StartTrace(a.ID())
	phase.Record(tc.TraceID, phase.Lock, 7*time.Millisecond)
	h.clk.Advance(20 * time.Millisecond)
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}

	b, err := h.rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	dropped := h.rec.StartTrace(b.ID()).TraceID
	phase.Record(dropped, phase.Lock, time.Millisecond)
	h.clk.Advance(time.Millisecond)
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}

	var root *trace.Span
	for _, s := range h.rec.Spans() {
		if s.TraceID == tc.TraceID && s.ID != 0 && s.ParentSpanID == 0 {
			root = &s
			break
		}
	}
	if root == nil {
		t.Fatalf("kept root span missing")
	}
	if root.Phases[phase.Lock] != (7 * time.Millisecond).Nanoseconds() {
		t.Fatalf("root phases = %v, want lock=7ms", root.Phases)
	}
	if got := phase.Snapshot(dropped); got != nil {
		t.Fatalf("dropped transaction's ledger survived: %v", got)
	}
}
