package trace_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"mca/internal/action"
	"mca/internal/ids"
	"mca/internal/structures"
	"mca/internal/trace"
)

// TestRenderSelfParentEvent is a regression test: a malformed begin
// event naming the action as its own parent used to send draw() into
// unbounded recursion. It must render as a root instead.
func TestRenderSelfParentEvent(t *testing.T) {
	rec := trace.NewRecorder()
	base := time.Now()
	rec.Observe(action.Event{
		Kind:   action.EventBegin,
		Time:   base,
		Action: ids.ActionID(7),
		Parent: ids.ActionID(7),
	})
	rec.Observe(action.Event{
		Kind:   action.EventCommit,
		Time:   base.Add(time.Millisecond),
		Action: ids.ActionID(7),
	})

	done := make(chan string, 1)
	go func() { done <- rec.Render(40) }()
	select {
	case out := <-done:
		if !strings.Contains(out, ids.ActionID(7).String()) {
			t.Fatalf("self-parented action missing from render:\n%s", out)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Render did not return for a self-parented event")
	}

	// Spans must not report the bogus self-link either.
	spans := rec.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	if spans[0].Parent != 0 {
		t.Fatalf("self-parented span Parent = %v, want zero", spans[0].Parent)
	}
}

// TestRenderUnknownCompletion is a regression test: a commit or abort
// for an action whose begin was never recorded (observer attached
// mid-run) was silently dropped. It must now appear as a zero-length
// span.
func TestRenderUnknownCompletion(t *testing.T) {
	rec := trace.NewRecorder()
	base := time.Now()
	rec.Observe(action.Event{
		Kind:   action.EventBegin,
		Time:   base,
		Action: ids.ActionID(1),
	})
	rec.Observe(action.Event{
		Kind:   action.EventAbort,
		Time:   base.Add(time.Millisecond),
		Action: ids.ActionID(9), // never began
	})
	rec.Observe(action.Event{
		Kind:   action.EventCommit,
		Time:   base.Add(2 * time.Millisecond),
		Action: ids.ActionID(1),
	})

	out := rec.Render(40)
	if !strings.Contains(out, ids.ActionID(9).String()) {
		t.Fatalf("orphan completion missing from render:\n%s", out)
	}
	if !strings.Contains(out, "A") {
		t.Fatalf("orphan abort mark missing:\n%s", out)
	}

	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	var orphan *trace.Span
	for i := range spans {
		if spans[i].ID == ids.ActionID(9) {
			orphan = &spans[i]
		}
	}
	if orphan == nil {
		t.Fatal("orphan completion missing from Spans")
	}
	if orphan.Outcome != trace.OutcomeAborted {
		t.Fatalf("orphan outcome = %q, want %q", orphan.Outcome, trace.OutcomeAborted)
	}
	if !orphan.Begin.Equal(orphan.End) {
		t.Fatal("orphan span should be zero-length")
	}
}

// TestObserveRoundConcurrent hammers ObserveRound from many goroutines
// while readers aggregate, for the race detector.
func TestObserveRoundConcurrent(t *testing.T) {
	rec := trace.NewRecorder()
	const writers, perWriter = 8, 200

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec.ObserveRound(trace.RoundEvent{
					Kind:         trace.RoundPrepare,
					Participants: 3,
					OK:           3,
				})
			}
		}()
	}
	// Concurrent readers exercise the summary paths mid-stream.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = rec.RoundSummary().String()
				_ = rec.Rounds()
			}
		}()
	}
	wg.Wait()

	sum := rec.RoundSummary()
	if sum[trace.RoundPrepare] != writers*perWriter {
		t.Fatalf("prepare rounds = %d, want %d", sum[trace.RoundPrepare], writers*perWriter)
	}
	if got := sum.String(); got != "prepare=1600" {
		t.Fatalf("RoundSummary.String() = %q", got)
	}
}

// TestLabelConcurrentWithRender applies labels while renders are in
// flight: Render snapshots state under the lock, so late labels must
// neither race nor corrupt output.
func TestLabelConcurrentWithRender(t *testing.T) {
	rec := trace.NewRecorder()
	rt := action.NewRuntime(action.WithObserver(rec.Observe))
	a, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = rec.Render(40)
			_ = rec.Spans()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			rec.Label(a.ID(), "late-label")
		}
	}()
	wg.Wait()

	// After the dust settles the label must be applied.
	if !strings.Contains(rec.Render(40), "late-label") {
		t.Fatal("label applied after renders started was lost")
	}
	spans := rec.Spans()
	if len(spans) != 1 || spans[0].Label != "late-label" {
		t.Fatalf("span label = %+v", spans)
	}
}

// TestSpansRoundTripFig15 drives the fig 14/15 n-level independent
// structure, exports the spans as JSON Lines, decodes them back and
// reconstructs the nesting tree from parent links.
func TestSpansRoundTripFig15(t *testing.T) {
	rec := trace.NewRecorder()
	rt := action.NewRuntime(action.WithObserver(rec.Observe))

	// Fig 15: anchored A with independent C; nested B with independent
	// F and n-level independent E targeting A's anchor. B and A abort;
	// C, E, F commit.
	a, anchor, err := structures.BeginAnchored(rt)
	if err != nil {
		t.Fatal(err)
	}
	if err := structures.RunIndependent(a, func(*action.Action) error { return nil }); err != nil { // C
		t.Fatal(err)
	}
	b, err := a.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := structures.RunIndependent(b, func(*action.Action) error { return nil }); err != nil { // F
		t.Fatal(err)
	}
	if err := structures.RunIndependentTo(b, anchor, func(*action.Action) error { return nil }); err != nil { // E
		t.Fatal(err)
	}
	if err := b.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := a.Abort(); err != nil {
		t.Fatal(err)
	}
	rec.Label(a.ID(), "A")
	rec.Label(b.ID(), "B")

	var buf bytes.Buffer
	if err := rec.WriteSpans(&buf); err != nil {
		t.Fatalf("WriteSpans: %v", err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 5 {
		t.Fatalf("JSONL lines = %d, want 5 (A, C, B, F, E)\n%s", lines, buf.String())
	}

	decoded, err := trace.ReadSpans(&buf)
	if err != nil {
		t.Fatalf("ReadSpans: %v", err)
	}
	if len(decoded) != 5 {
		t.Fatalf("decoded spans = %d, want 5", len(decoded))
	}

	// Rebuild the tree from parent links.
	children := make(map[ids.ActionID][]trace.Span)
	byID := make(map[ids.ActionID]trace.Span)
	for _, s := range decoded {
		byID[s.ID] = s
		children[s.Parent] = append(children[s.Parent], s)
	}
	roots := children[0]
	if len(roots) != 1 || roots[0].ID != a.ID() {
		t.Fatalf("roots = %+v, want exactly A", roots)
	}
	if roots[0].Label != "A" || roots[0].Outcome != trace.OutcomeAborted {
		t.Fatalf("A span = %+v", roots[0])
	}
	if got := len(children[a.ID()]); got != 2 {
		t.Fatalf("A has %d children, want 2 (C, B)", got)
	}
	bSpan, ok := byID[b.ID()]
	if !ok || bSpan.Parent != a.ID() {
		t.Fatalf("B span = %+v, want parent A", bSpan)
	}
	if bSpan.Label != "B" || bSpan.Outcome != trace.OutcomeAborted {
		t.Fatalf("B span = %+v", bSpan)
	}
	if got := len(children[b.ID()]); got != 2 {
		t.Fatalf("B has %d children, want 2 (F, E)", got)
	}
	// Every leaf (C, F, E) committed independently; E carries exactly
	// the anchor colour, skipping B's set (the point of fig 15).
	var sawAnchorColoured bool
	for _, leaves := range [][]trace.Span{children[a.ID()], children[b.ID()]} {
		for _, s := range leaves {
			if s.ID == b.ID() {
				continue
			}
			if s.Outcome != trace.OutcomeCommitted {
				t.Fatalf("independent leaf %v outcome = %q", s.ID, s.Outcome)
			}
			if s.End.Before(s.Begin) {
				t.Fatalf("leaf %v ends before it begins", s.ID)
			}
			if len(s.Colours) == 1 && s.Colours[0] == anchor.Colour() {
				sawAnchorColoured = true
			}
		}
	}
	if !sawAnchorColoured {
		t.Fatal("no leaf carries exactly the anchor colour (E missing)")
	}
}
