// Package colour implements the colour attribute of multi-coloured actions.
//
// A colour is the attribute assigned to actions and to the locks they
// acquire (paper §5). Coloured actions of the same colour possess
// properties similar to those of conventional atomic actions, but not
// necessarily with respect to actions of different colours. Actions carry
// a set of colours; every lock request names one of the requester's
// colours, and commit-time lock inheritance is resolved per colour.
package colour

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Colour identifies one colour. The zero value None is not a valid colour
// for locking and is rejected by the lock manager.
type Colour uint64

// None is the zero Colour; it never names a real colour.
const None Colour = 0

// counter feeds Generator-less fresh colour allocation for tests and the
// automatic colour-assignment layer. Colours only need to be unique within
// a process (a simulation run); they are never persisted across runs.
var counter atomic.Uint64

// Fresh returns a process-unique colour. The structures layer (§6 of the
// paper: "generate colour assignments automatically") relies on Fresh to
// mint the reds and blues of figs 11, 12, 13 and 15.
func Fresh() Colour {
	return Colour(counter.Add(1))
}

// String renders the colour for traces, e.g. "c42".
func (c Colour) String() string {
	if c == None {
		return "none"
	}
	return fmt.Sprintf("c%d", uint64(c))
}

// Valid reports whether c names a real colour.
func (c Colour) Valid() bool { return c != None }

// Set is an immutable set of colours carried by an action. The paper
// assumes colours are statically assigned: a Set is fixed at action
// creation time and never mutated, so it is safe to share across
// goroutines without locking.
type Set struct {
	members map[Colour]struct{}
}

// NewSet builds a set from the given colours. Invalid (zero) colours are
// ignored; duplicates collapse.
func NewSet(colours ...Colour) Set {
	m := make(map[Colour]struct{}, len(colours))
	for _, c := range colours {
		if c.Valid() {
			m[c] = struct{}{}
		}
	}
	return assertWellFormed(Set{members: m}, "NewSet")
}

// Singleton returns the one-colour set {c}.
func Singleton(c Colour) Set { return NewSet(c) }

// Contains reports whether c is a member.
func (s Set) Contains(c Colour) bool {
	_, ok := s.members[c]
	return ok
}

// Len returns the number of colours in the set.
func (s Set) Len() int { return len(s.members) }

// Union returns the set s ∪ t.
func (s Set) Union(t Set) Set {
	m := make(map[Colour]struct{}, len(s.members)+len(t.members))
	for c := range s.members {
		m[c] = struct{}{}
	}
	for c := range t.members {
		m[c] = struct{}{}
	}
	return assertWellFormed(Set{members: m}, "Union")
}

// With returns the set s ∪ {colours...}.
func (s Set) With(colours ...Colour) Set {
	return s.Union(NewSet(colours...))
}

// Intersect returns the set s ∩ t.
func (s Set) Intersect(t Set) Set {
	m := make(map[Colour]struct{})
	for c := range s.members {
		if t.Contains(c) {
			m[c] = struct{}{}
		}
	}
	return assertWellFormed(Set{members: m}, "Intersect")
}

// Disjoint reports whether s and t share no colour.
func (s Set) Disjoint(t Set) bool {
	small, large := s, t
	if large.Len() < small.Len() {
		small, large = large, small
	}
	for c := range small.members {
		if large.Contains(c) {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same colours.
func (s Set) Equal(t Set) bool {
	if s.Len() != t.Len() {
		return false
	}
	for c := range s.members {
		if !t.Contains(c) {
			return false
		}
	}
	return true
}

// Slice returns the members in ascending order (deterministic for traces
// and tests).
func (s Set) Slice() []Colour {
	out := make([]Colour, 0, len(s.members))
	for c := range s.members {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Any returns an arbitrary-but-deterministic member (the smallest), or
// None for the empty set. Single-coloured actions use it as their default
// locking colour.
func (s Set) Any() Colour {
	best := None
	for c := range s.members {
		if best == None || c < best {
			best = c
		}
	}
	return best
}

// String renders like "{c1,c7}".
func (s Set) String() string {
	parts := make([]string, 0, s.Len())
	for _, c := range s.Slice() {
		parts = append(parts, c.String())
	}
	return "{" + strings.Join(parts, ",") + "}"
}
