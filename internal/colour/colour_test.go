package colour

import (
	"testing"
	"testing/quick"
)

func TestFreshIsUnique(t *testing.T) {
	seen := make(map[Colour]struct{})
	for i := 0; i < 10000; i++ {
		c := Fresh()
		if !c.Valid() {
			t.Fatalf("Fresh returned invalid colour %v", c)
		}
		if _, dup := seen[c]; dup {
			t.Fatalf("Fresh returned duplicate colour %v", c)
		}
		seen[c] = struct{}{}
	}
}

func TestFreshIsUniqueConcurrently(t *testing.T) {
	const (
		workers = 8
		perW    = 2000
	)
	results := make(chan []Colour, workers)
	for w := 0; w < workers; w++ {
		go func() {
			out := make([]Colour, 0, perW)
			for i := 0; i < perW; i++ {
				out = append(out, Fresh())
			}
			results <- out
		}()
	}
	seen := make(map[Colour]struct{}, workers*perW)
	for w := 0; w < workers; w++ {
		for _, c := range <-results {
			if _, dup := seen[c]; dup {
				t.Fatalf("duplicate colour %v from concurrent Fresh", c)
			}
			seen[c] = struct{}{}
		}
	}
}

func TestNoneIsInvalid(t *testing.T) {
	if None.Valid() {
		t.Fatal("None must be invalid")
	}
	if got := None.String(); got != "none" {
		t.Fatalf("None.String() = %q, want %q", got, "none")
	}
}

func TestNewSetIgnoresInvalidAndDuplicates(t *testing.T) {
	c := Fresh()
	s := NewSet(c, c, None, c)
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if !s.Contains(c) {
		t.Fatalf("set %v should contain %v", s, c)
	}
	if s.Contains(None) {
		t.Fatal("set must not contain None")
	}
}

func TestSetOperations(t *testing.T) {
	a, b, c := Fresh(), Fresh(), Fresh()

	ab := NewSet(a, b)
	bc := NewSet(b, c)

	union := ab.Union(bc)
	if union.Len() != 3 {
		t.Fatalf("union %v has Len %d, want 3", union, union.Len())
	}
	for _, x := range []Colour{a, b, c} {
		if !union.Contains(x) {
			t.Fatalf("union %v missing %v", union, x)
		}
	}

	inter := ab.Intersect(bc)
	if inter.Len() != 1 || !inter.Contains(b) {
		t.Fatalf("intersection = %v, want {%v}", inter, b)
	}

	if ab.Disjoint(bc) {
		t.Fatalf("%v and %v share %v, Disjoint must be false", ab, bc, b)
	}
	if !NewSet(a).Disjoint(NewSet(c)) {
		t.Fatal("singleton sets of different colours must be disjoint")
	}

	with := NewSet(a).With(c)
	if !with.Equal(NewSet(a, c)) {
		t.Fatalf("With: got %v, want %v", with, NewSet(a, c))
	}
}

func TestSetEqual(t *testing.T) {
	a, b := Fresh(), Fresh()
	tests := []struct {
		name string
		s, t Set
		want bool
	}{
		{"both empty", NewSet(), NewSet(), true},
		{"same singleton", NewSet(a), NewSet(a), true},
		{"same pair different order", NewSet(a, b), NewSet(b, a), true},
		{"different members", NewSet(a), NewSet(b), false},
		{"subset", NewSet(a), NewSet(a, b), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.s.Equal(tt.t); got != tt.want {
				t.Fatalf("Equal(%v, %v) = %v, want %v", tt.s, tt.t, got, tt.want)
			}
		})
	}
}

func TestSliceIsSortedAndComplete(t *testing.T) {
	cs := []Colour{Fresh(), Fresh(), Fresh(), Fresh()}
	s := NewSet(cs[3], cs[0], cs[2], cs[1])
	out := s.Slice()
	if len(out) != 4 {
		t.Fatalf("Slice len = %d, want 4", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1] >= out[i] {
			t.Fatalf("Slice not ascending: %v", out)
		}
	}
}

func TestAny(t *testing.T) {
	if got := NewSet().Any(); got != None {
		t.Fatalf("empty set Any = %v, want None", got)
	}
	a, b := Fresh(), Fresh()
	s := NewSet(b, a)
	want := a
	if b < a {
		want = b
	}
	if got := s.Any(); got != want {
		t.Fatalf("Any = %v, want smallest member %v", got, want)
	}
	// Deterministic across calls.
	if s.Any() != s.Any() {
		t.Fatal("Any must be deterministic")
	}
}

func TestSingleton(t *testing.T) {
	c := Fresh()
	s := Singleton(c)
	if s.Len() != 1 || !s.Contains(c) {
		t.Fatalf("Singleton(%v) = %v", c, s)
	}
}

func TestSetAlgebraProperties(t *testing.T) {
	mk := func(raw []uint8) Set {
		cs := make([]Colour, len(raw))
		for i, r := range raw {
			cs[i] = Colour(uint64(r) + 1) // avoid None
		}
		return NewSet(cs...)
	}

	commutative := func(xs, ys []uint8) bool {
		x, y := mk(xs), mk(ys)
		return x.Union(y).Equal(y.Union(x)) && x.Intersect(y).Equal(y.Intersect(x))
	}
	if err := quick.Check(commutative, nil); err != nil {
		t.Errorf("union/intersection not commutative: %v", err)
	}

	idempotent := func(xs []uint8) bool {
		x := mk(xs)
		return x.Union(x).Equal(x) && x.Intersect(x).Equal(x)
	}
	if err := quick.Check(idempotent, nil); err != nil {
		t.Errorf("union/intersection not idempotent: %v", err)
	}

	disjointMeansEmptyIntersection := func(xs, ys []uint8) bool {
		x, y := mk(xs), mk(ys)
		return x.Disjoint(y) == (x.Intersect(y).Len() == 0)
	}
	if err := quick.Check(disjointMeansEmptyIntersection, nil); err != nil {
		t.Errorf("Disjoint inconsistent with Intersect: %v", err)
	}
}

func TestSetStringFormat(t *testing.T) {
	if got := NewSet().String(); got != "{}" {
		t.Fatalf("empty set String = %q, want {}", got)
	}
	s := NewSet(Colour(3), Colour(1))
	if got := s.String(); got != "{c1,c3}" {
		t.Fatalf("String = %q, want {c1,c3}", got)
	}
}
