//go:build !invariants

package colour

// InvariantsEnabled reports whether the build carries the invariants tag.
const InvariantsEnabled = false

// assertWellFormed is a no-op without the invariants build tag.
func assertWellFormed(s Set, op string) Set { return s }
