//go:build invariants

package colour

import "fmt"

// InvariantsEnabled reports whether the build carries the invariants tag.
const InvariantsEnabled = true

// assertWellFormed asserts that a Set contains no colour.None member.
// Sets are immutable and built only by the constructors in this package,
// which all filter None, so a violation means a constructor regressed.
// It panics on violation.
func assertWellFormed(s Set, op string) Set {
	for c := range s.members {
		if !c.Valid() {
			panic(fmt.Sprintf("colour invariant: %s produced a set containing colour.None: %v", op, s))
		}
	}
	return s
}
