package clock

import (
	"sync"
	"time"
)

// Fake is a virtual clock for deterministic tests and simulation. Time
// never passes on its own: Now returns the same instant until Advance
// moves it, and every timer, ticker and sleeper fires during an Advance
// that reaches its deadline, in deadline order (ties fire in creation
// order). This is the testing/synctest discipline — code under test
// observes a timeline fully controlled by the test — without needing
// the runtime's experiment support.
type Fake struct {
	mu     sync.Mutex
	now    time.Time
	seq    uint64
	timers []*fakeTimer
}

// fakeEpoch is the default virtual start time: fixed, so two fake runs
// agree on every timestamp without any configuration.
var fakeEpoch = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

// NewFake returns a virtual clock starting at a fixed epoch.
func NewFake() *Fake { return NewFakeAt(fakeEpoch) }

// NewFakeAt returns a virtual clock starting at t.
func NewFakeAt(t time.Time) *Fake { return &Fake{now: t} }

var _ Clock = (*Fake)(nil)

// Now returns the current virtual time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Since returns the virtual time elapsed since t.
func (f *Fake) Since(t time.Time) time.Duration { return f.Now().Sub(t) }

// Sleep blocks until Advance moves the clock d past the current
// instant. A non-positive d returns immediately.
func (f *Fake) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-f.NewTimer(d).C()
}

// After returns a channel receiving the virtual time once Advance
// reaches d from now.
func (f *Fake) After(d time.Duration) <-chan time.Time { return f.NewTimer(d).C() }

// NewTimer returns a single-shot virtual timer. A non-positive d fires
// it immediately.
func (f *Fake) NewTimer(d time.Duration) Timer { return f.newTimer(d, 0, nil) }

// NewTicker returns a virtual ticker firing every d. d must be
// positive.
func (f *Fake) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: NewTicker with non-positive period")
	}
	return fakeTicker{f.newTimer(d, d, nil)}
}

// fakeTicker narrows fakeTimer to the Ticker surface (Stop without the
// pending report).
type fakeTicker struct{ t *fakeTimer }

func (t fakeTicker) C() <-chan time.Time { return t.t.C() }
func (t fakeTicker) Stop()               { t.t.Stop() }

// AfterFunc runs f in its own goroutine once Advance reaches d.
func (f *Fake) AfterFunc(d time.Duration, fn func()) Timer {
	if fn == nil {
		panic("clock: AfterFunc with nil func")
	}
	return f.newTimer(d, 0, fn)
}

// Pending returns the number of armed timers/tickers — what the next
// Advance could fire. Drivers use it to decide whether anything is
// still waiting on virtual time.
func (f *Fake) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, t := range f.timers {
		if t.active {
			n++
		}
	}
	return n
}

// Advance moves the virtual clock forward by d, firing every timer
// whose deadline is reached, in deadline order. Timers armed by
// AfterFunc callbacks racing with the advance are picked up when their
// deadline falls inside the remaining window.
func (f *Fake) Advance(d time.Duration) {
	if d < 0 {
		panic("clock: Advance backwards")
	}
	f.mu.Lock()
	target := f.now.Add(d)
	for {
		t := f.nextDueLocked(target)
		if t == nil {
			break
		}
		if t.when.After(f.now) {
			f.now = t.when
		}
		f.fireLocked(t)
	}
	f.now = target
	f.pruneLocked()
	f.mu.Unlock()
}

// pruneLocked drops fired one-shot timers from the scan list. A fired
// timer object stays valid (Reset re-arms and re-registers it).
func (f *Fake) pruneLocked() {
	kept := f.timers[:0]
	for _, t := range f.timers {
		if t.active {
			kept = append(kept, t)
		} else {
			t.inList = false
		}
	}
	for i := len(kept); i < len(f.timers); i++ {
		f.timers[i] = nil
	}
	f.timers = kept
}

// nextDueLocked picks the armed timer with the earliest deadline not
// after target, breaking ties by creation order.
func (f *Fake) nextDueLocked(target time.Time) *fakeTimer {
	var best *fakeTimer
	for _, t := range f.timers {
		if !t.active || t.when.After(target) {
			continue
		}
		if best == nil || t.when.Before(best.when) || (t.when.Equal(best.when) && t.id < best.id) {
			best = t
		}
	}
	return best
}

// fireLocked delivers one firing. Ticker timers re-arm; AfterFunc
// callbacks run in their own goroutine (like package time), so they may
// take locks without deadlocking against the advancing test.
func (f *Fake) fireLocked(t *fakeTimer) {
	if t.period > 0 {
		t.when = t.when.Add(t.period)
	} else {
		t.active = false
	}
	if t.fn != nil {
		//mcalint:ignore goleak AfterFunc callbacks run unjoined by contract, exactly like package time
		go t.fn()
		return
	}
	select {
	case t.ch <- f.now:
	default: // slow receiver: drop the tick, like time.Ticker
	}
}

type fakeTimer struct {
	f      *Fake
	id     uint64
	when   time.Time
	period time.Duration
	ch     chan time.Time
	fn     func()
	active bool
	inList bool
}

func (f *Fake) newTimer(d, period time.Duration, fn func()) *fakeTimer {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	t := &fakeTimer{
		f:      f,
		id:     f.seq,
		when:   f.now.Add(d),
		period: period,
		ch:     make(chan time.Time, 1),
		fn:     fn,
		active: true,
	}
	if d <= 0 && period == 0 {
		// Already due: deliver without requiring an Advance.
		t.active = false
		if fn != nil {
			//mcalint:ignore goleak AfterFunc callbacks run unjoined by contract, exactly like package time
			go fn()
		} else {
			//mcalint:ignore lockheld the channel is freshly made with capacity 1; this send can never block
			t.ch <- f.now
		}
	} else {
		t.inList = true
		f.timers = append(f.timers, t)
	}
	return t
}

// C implements Timer and Ticker.
func (t *fakeTimer) C() <-chan time.Time { return t.ch }

// Stop implements Timer and Ticker.
func (t *fakeTimer) Stop() bool {
	t.f.mu.Lock()
	defer t.f.mu.Unlock()
	was := t.active
	t.active = false
	return was
}

// Reset implements Timer.
func (t *fakeTimer) Reset(d time.Duration) bool {
	t.f.mu.Lock()
	defer t.f.mu.Unlock()
	was := t.active
	t.when = t.f.now.Add(d)
	t.active = true
	if !t.inList {
		t.inList = true
		t.f.timers = append(t.f.timers, t)
	}
	return was
}
