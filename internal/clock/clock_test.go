package clock

import (
	"testing"
	"time"
)

func TestRealSmoke(t *testing.T) {
	c := Real()
	a := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(a) <= 0 {
		t.Fatal("real clock did not advance across Sleep")
	}
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(5 * time.Second):
		t.Fatal("real timer never fired")
	}
	tk := c.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(5 * time.Second):
		t.Fatal("real ticker never ticked")
	}
}

func TestFakeNowOnlyMovesUnderAdvance(t *testing.T) {
	f := NewFake()
	start := f.Now()
	if !f.Now().Equal(start) {
		t.Fatal("fake time moved on its own")
	}
	f.Advance(3 * time.Second)
	if got, want := f.Since(start), 3*time.Second; got != want {
		t.Fatalf("Since = %v, want %v", got, want)
	}
}

func TestFakeTimersFireInDeadlineOrder(t *testing.T) {
	f := NewFake()
	fired := make(chan int, 3)
	f.AfterFunc(30*time.Millisecond, func() { fired <- 3 })
	f.AfterFunc(10*time.Millisecond, func() { fired <- 1 })
	f.AfterFunc(20*time.Millisecond, func() { fired <- 2 })
	// AfterFunc callbacks run in their own goroutines: advance one
	// deadline at a time and wait for each firing, so the received
	// order is the deadline order rather than goroutine scheduling.
	var order []int
	for i := 0; i < 3; i++ {
		f.Advance(10 * time.Millisecond)
		select {
		case v := <-fired:
			order = append(order, v)
		case <-time.After(5 * time.Second):
			t.Fatalf("timer %d never fired", i+1)
		}
	}
	if order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
}

func TestFakeTimerDeliversDeadlineTime(t *testing.T) {
	f := NewFake()
	start := f.Now()
	tm := f.NewTimer(5 * time.Millisecond)
	f.Advance(20 * time.Millisecond)
	select {
	case at := <-tm.C():
		if want := start.Add(5 * time.Millisecond); !at.Equal(want) {
			t.Fatalf("fired at %v, want %v (the deadline, not the advance target)", at, want)
		}
	default:
		t.Fatal("timer did not fire inside Advance")
	}
}

func TestFakeSleepWakesOnAdvance(t *testing.T) {
	f := NewFake()
	done := make(chan struct{})
	go func() {
		f.Sleep(time.Second)
		close(done)
	}()
	// Wait for the sleeper to register its timer before advancing.
	for f.Pending() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	f.Advance(time.Second)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep never woke")
	}
	if f.Pending() != 0 {
		t.Fatalf("Pending = %d after all timers fired", f.Pending())
	}
}

func TestFakeTickerRearms(t *testing.T) {
	f := NewFake()
	tk := f.NewTicker(10 * time.Millisecond)
	defer tk.Stop()
	for i := 0; i < 3; i++ {
		f.Advance(10 * time.Millisecond)
		select {
		case <-tk.C():
		default:
			t.Fatalf("tick %d not delivered", i)
		}
	}
	tk.Stop()
	f.Advance(time.Second)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker ticked")
	default:
	}
}

func TestFakeStopAndReset(t *testing.T) {
	f := NewFake()
	tm := f.NewTimer(10 * time.Millisecond)
	if !tm.Stop() {
		t.Fatal("Stop on armed timer reported not pending")
	}
	f.Advance(time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
	if tm.Reset(10 * time.Millisecond) {
		t.Fatal("Reset on stopped timer reported pending")
	}
	f.Advance(10 * time.Millisecond)
	select {
	case <-tm.C():
	default:
		t.Fatal("reset timer did not fire")
	}
}

func TestFakeImmediateTimer(t *testing.T) {
	f := NewFake()
	tm := f.NewTimer(0)
	select {
	case <-tm.C():
	default:
		t.Fatal("zero-duration timer did not fire immediately")
	}
}

func TestRandDeterministicAndSpread(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	r := NewRand(1)
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Int63n(1000)
		if v < 0 || v >= 1000 {
			t.Fatalf("Int63n out of range: %d", v)
		}
		seen[v] = true
		if fv := r.Float64(); fv < 0 || fv >= 1 {
			t.Fatalf("Float64 out of range: %v", fv)
		}
	}
	if len(seen) < 500 {
		t.Fatalf("Int63n poorly spread: %d distinct of 1000 draws", len(seen))
	}
}

func TestRandExpFloat64(t *testing.T) {
	// Deterministic per seed.
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.ExpFloat64() != b.ExpFloat64() {
			t.Fatal("same seed diverged")
		}
	}
	// Mean 1 within sampling tolerance, all values positive.
	r := NewRand(1)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative draw %v", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.98 || mean > 1.02 {
		t.Fatalf("mean = %v, want ~1", mean)
	}
}
