// Package clock abstracts every source of time and randomness the
// runtime packages consume, so a simulation can substitute a virtual,
// test-controlled source and make schedules seed-replayable (ROADMAP
// item 5). The deterministic-critical packages (node, lock, dist, rpc,
// netsim, store, flightrec, workload, action, dmake, trace) never call
// time.Now, time.Sleep or math/rand directly — the detclock analyzer
// (cmd/mcalint) enforces it — they take a Clock and default to Real().
//
// Two implementations exist: Real, a thin veneer over package time, and
// Fake, a virtual clock whose time advances only under test control
// (the testing/synctest model: timers fire in deadline order when the
// test advances past them, never because wall time passed).
package clock

import (
	"math"
	"time"
)

// Clock is the ambient-time surface of package time that the runtime
// layers are allowed to consume. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current (real or virtual) time.
	Now() time.Time
	// Since returns the time elapsed since t.
	Since(t time.Time) time.Duration
	// Sleep blocks for d.
	Sleep(d time.Duration)
	// After returns a channel receiving the time once d has elapsed.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a timer firing once after d.
	NewTimer(d time.Duration) Timer
	// NewTicker returns a ticker firing every d. d must be positive.
	NewTicker(d time.Duration) Ticker
	// AfterFunc runs f in its own goroutine once d has elapsed. The
	// returned timer's channel is unused; Stop cancels the call.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a stoppable single-shot timer. C is a method (not a field,
// as on *time.Timer) so fakes can implement it.
type Timer interface {
	// C returns the channel the firing time is delivered on.
	C() <-chan time.Time
	// Stop cancels the timer, reporting whether it was still pending.
	Stop() bool
	// Reset re-arms the timer for d, reporting whether it was pending.
	Reset(d time.Duration) bool
}

// Ticker delivers ticks at a fixed period until stopped.
type Ticker interface {
	// C returns the channel ticks are delivered on.
	C() <-chan time.Time
	// Stop ends the ticks. It does not close the channel.
	Stop()
}

// --- real implementation ---

// realClock forwards to package time. This file is the one place in the
// repository (outside tests and cmd/) where calling time directly is
// the point; the detclock analyzer allowlists internal/clock.
type realClock struct{}

var real Clock = realClock{}

// Real returns the wall-clock implementation backed by package time.
func Real() Clock { return real }

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Since(t time.Time) time.Duration        { return time.Since(t) }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (realClock) NewTimer(d time.Duration) Timer   { return realTimer{time.NewTimer(d)} }
func (realClock) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }
func (realClock) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (t realTimer) C() <-chan time.Time        { return t.t.C }
func (t realTimer) Stop() bool                 { return t.t.Stop() }
func (t realTimer) Reset(d time.Duration) bool { return t.t.Reset(d) }

type realTicker struct{ t *time.Ticker }

func (t realTicker) C() <-chan time.Time { return t.t.C }
func (t realTicker) Stop()               { t.t.Stop() }

// --- seeded randomness ---

// Rand is a small deterministic pseudo-random source (splitmix64), the
// replacement for math/rand in deterministic-critical packages: given
// the same seed it produces the same stream on every run and platform.
// It is NOT safe for concurrent use; callers serialise access (netsim
// draws under its network mutex).
type Rand struct{ state uint64 }

// NewRand returns a source seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next value of the stream.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	x := r.state
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Int63n returns a non-negative value below n. n must be positive.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("clock: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Intn returns a non-negative value below n. n must be positive.
func (r *Rand) Intn(n int) int { return int(r.Int63n(int64(n))) }

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed value with rate 1
// (mean 1), by inversion. Scaled by a mean inter-arrival gap it yields
// the Poisson arrival schedules the open-loop workload generator
// replays deterministically from a seed.
func (r *Rand) ExpFloat64() float64 {
	// 1-Float64() is in (0, 1], so Log never sees zero.
	return -math.Log(1 - r.Float64())
}
