// Package object provides managed recoverable objects: the persistent
// objects of paper §2 that atomic actions operate on.
//
// A Managed[T] wraps a Go value with action-aware access: reads and
// writes acquire coloured locks through the action runtime, writes record
// before-images for recovery, and — when the object is given a stable
// store — the state written by an outermost-coloured commit is flushed
// durably (activation/passivation in Arjuna terms).
package object

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"mca/internal/action"
	"mca/internal/colour"
	"mca/internal/ids"
	"mca/internal/lock"
	"mca/internal/store"
)

// ErrNotExists is returned when reading an object that does not
// (currently) exist: never created, deleted, or undone by an abort.
var ErrNotExists = errors.New("object: does not exist")

// StableStore is the storage dependency of persistent objects: batch
// application for commits plus reads for activation. *store.Stable and
// *store.FileStore implement it.
type StableStore interface {
	action.Persister
	Read(ids.ObjectID) (store.State, error)
}

var (
	_ StableStore = (*store.Stable)(nil)
	_ StableStore = (*store.FileStore)(nil)
)

// envelope is the serialized form of a managed object's state.
type envelope struct {
	Exists bool            `json:"exists"`
	Value  json.RawMessage `json:"value,omitempty"`
}

// Managed is a lockable, recoverable, optionally persistent object
// holding a value of type T. T must be JSON-serializable; its zero value
// must be usable. Managed is safe for concurrent use; isolation between
// actions is enforced by coloured locking, not by the internal mutex.
type Managed[T any] struct {
	id    ids.ObjectID
	store StableStore // nil for volatile-only objects

	mu     sync.Mutex
	value  T
	exists bool
}

// Option configures a Managed object.
type Option interface{ apply(*objOptions) }

type objOptions struct {
	store StableStore
	id    ids.ObjectID
}

type storeOption struct{ s StableStore }

func (o storeOption) apply(opts *objOptions) { opts.store = o.s }

// WithStore makes the object persistent in the given stable store.
func WithStore(s StableStore) Option { return storeOption{s: s} }

type idOption ids.ObjectID

func (o idOption) apply(opts *objOptions) { opts.id = ids.ObjectID(o) }

// WithID fixes the object identifier (used when re-activating an object
// known by a stable identifier). The default is a fresh identifier.
func WithID(id ids.ObjectID) Option { return idOption(id) }

// New creates a managed object with the given initial value, existing
// from the start and outside any action (setup-time creation).
func New[T any](initial T, opts ...Option) *Managed[T] {
	m := build[T](opts)
	m.value = initial
	m.exists = true
	return m
}

// NewIn creates a managed object inside the action a: the creation is
// part of a's effects and is undone if a (or the relevant enclosing
// action) aborts. The write lock is acquired in colour c (action default
// when None).
func NewIn[T any](a *action.Action, c colour.Colour, initial T, opts ...Option) (*Managed[T], error) {
	m := build[T](opts)
	if err := a.Lock(m.id, lock.Write, c); err != nil {
		return nil, err
	}
	if err := a.RecordWrite(m, c, nil, true); err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.value = initial
	m.exists = true
	m.mu.Unlock()
	return m, nil
}

// Load activates an object from its stable store. It fails with
// store.ErrNotFound when the store has no state for the identifier.
func Load[T any](id ids.ObjectID, s StableStore) (*Managed[T], error) {
	st, err := s.Read(id)
	if err != nil {
		return nil, fmt.Errorf("activate %v: %w", id, err)
	}
	m := &Managed[T]{id: id, store: s}
	if err := m.RestoreState(st); err != nil {
		return nil, fmt.Errorf("activate %v: %w", id, err)
	}
	return m, nil
}

func build[T any](opts []Option) *Managed[T] {
	var o objOptions
	for _, opt := range opts {
		opt.apply(&o)
	}
	id := o.id
	if id == 0 {
		id = ids.NewObjectID()
	}
	return &Managed[T]{id: id, store: o.store}
}

var _ action.Recoverable = (*Managed[int])(nil)

// ObjectID implements action.Recoverable.
func (m *Managed[T]) ObjectID() ids.ObjectID { return m.id }

// Persister implements action.Recoverable.
func (m *Managed[T]) Persister() action.Persister {
	if m.store == nil {
		return nil
	}
	return m.store
}

// CaptureState implements action.Recoverable: it serializes the current
// value (and existence) for recovery records and permanence.
func (m *Managed[T]) CaptureState() (store.State, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.captureLocked()
}

func (m *Managed[T]) captureLocked() (store.State, error) {
	env := envelope{Exists: m.exists}
	if m.exists {
		raw, err := json.Marshal(m.value)
		if err != nil {
			return nil, fmt.Errorf("capture %v: %w", m.id, err)
		}
		env.Value = raw
	}
	data, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("capture %v: %w", m.id, err)
	}
	return data, nil
}

// RestoreState implements action.Recoverable: nil state means the object
// did not exist.
func (m *Managed[T]) RestoreState(st store.State) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st == nil {
		var zero T
		m.value = zero
		m.exists = false
		return nil
	}
	var env envelope
	if err := json.Unmarshal(st, &env); err != nil {
		return fmt.Errorf("restore %v: %w", m.id, err)
	}
	var v T
	if env.Exists && env.Value != nil {
		if err := json.Unmarshal(env.Value, &v); err != nil {
			return fmt.Errorf("restore %v: %w", m.id, err)
		}
	}
	m.value = v
	m.exists = env.Exists
	return nil
}

// Read runs fn over the value under a read lock in the action's default
// colour.
func (m *Managed[T]) Read(a *action.Action, fn func(T) error) error {
	return m.ReadIn(a, colour.None, fn)
}

// ReadIn is Read with an explicit colour.
func (m *Managed[T]) ReadIn(a *action.Action, c colour.Colour, fn func(T) error) error {
	if err := a.Lock(m.id, lock.Read, c); err != nil {
		return err
	}
	m.mu.Lock()
	if !m.exists {
		m.mu.Unlock()
		return fmt.Errorf("read %v: %w", m.id, ErrNotExists)
	}
	v := m.value
	m.mu.Unlock()
	return fn(v)
}

// Write runs fn over a pointer to the value under a write lock in the
// action's default colour, recording a before-image first.
func (m *Managed[T]) Write(a *action.Action, fn func(*T) error) error {
	return m.WriteIn(a, colour.None, fn)
}

// WriteIn is Write with an explicit colour.
func (m *Managed[T]) WriteIn(a *action.Action, c colour.Colour, fn func(*T) error) error {
	if err := a.Lock(m.id, lock.Write, c); err != nil {
		return err
	}
	if err := m.recordBefore(a, c); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.exists {
		return fmt.Errorf("write %v: %w", m.id, ErrNotExists)
	}
	return fn(&m.value)
}

// DeleteIn removes the object as part of a's effects (undone on abort).
func (m *Managed[T]) DeleteIn(a *action.Action, c colour.Colour) error {
	if err := a.Lock(m.id, lock.Write, c); err != nil {
		return err
	}
	if err := m.recordBefore(a, c); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.exists {
		return fmt.Errorf("delete %v: %w", m.id, ErrNotExists)
	}
	var zero T
	m.value = zero
	m.exists = false
	return nil
}

func (m *Managed[T]) recordBefore(a *action.Action, c colour.Colour) error {
	if a.HasWriteRecord(m.id) {
		return nil
	}
	m.mu.Lock()
	var (
		before store.State
		err    error
	)
	created := !m.exists
	if m.exists {
		before, err = m.captureLocked()
	}
	m.mu.Unlock()
	if err != nil {
		return err
	}
	return a.RecordWrite(m, c, before, created)
}

// Retain acquires an exclusive-read lock in colour c: the mechanism the
// glued and serializing structures use to keep objects inaccessible to
// outsiders while passing them between top-level actions (paper §5.3,
// §5.4).
func (m *Managed[T]) Retain(a *action.Action, c colour.Colour) error {
	return a.Lock(m.id, lock.ExclusiveRead, c)
}

// Exists reports whether the object currently exists. Like Peek it reads
// without locking.
func (m *Managed[T]) Exists() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.exists
}

// Peek returns the current value without any locking or isolation. It is
// meant for test assertions and the experiment harness, never for
// application code paths.
func (m *Managed[T]) Peek() T {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.value
}

// UpdateWithRetry runs fn over the object in its own top-level action,
// retrying on deadlock-victim aborts up to attempts times. It is the
// standard application idiom: a deadlock abort is clean, so the work
// can simply be resubmitted.
func UpdateWithRetry[T any](rt *action.Runtime, m *Managed[T], attempts int, fn func(*T) error) error {
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		lastErr = rt.Run(func(a *action.Action) error {
			return m.Write(a, fn)
		})
		if lastErr == nil {
			return nil
		}
		if !errors.Is(lastErr, lock.ErrDeadlock) && !errors.Is(lastErr, action.ErrAborted) {
			return lastErr
		}
	}
	return fmt.Errorf("object: %d attempts exhausted: %w", attempts, lastErr)
}
