package object_test

import (
	"testing"

	"mca/internal/action"
	"mca/internal/ids"
	"mca/internal/object"
	"mca/internal/store"
)

func TestRegistryActivatesAtInitialValue(t *testing.T) {
	st := store.NewStable()
	reg := object.NewRegistry[int](st, func(ids.ObjectID) int { return 42 })

	id := ids.NewObjectID()
	m, err := reg.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if m.Peek() != 42 {
		t.Fatalf("initial = %d", m.Peek())
	}
	// Same instance on repeated Get.
	again, err := reg.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if again != m {
		t.Fatal("Get must return the same activated instance")
	}
}

func TestRegistryLoadsExistingState(t *testing.T) {
	st := store.NewStable()
	rt := action.NewRuntime()

	// Persist an object through the normal commit path.
	orig := object.New(7, object.WithStore(st))
	if err := rt.Run(func(a *action.Action) error {
		return orig.Write(a, func(v *int) error { *v = 99; return nil })
	}); err != nil {
		t.Fatal(err)
	}

	reg := object.NewRegistry[int](st, nil)
	m, err := reg.Get(orig.ObjectID())
	if err != nil {
		t.Fatal(err)
	}
	if m.Peek() != 99 {
		t.Fatalf("loaded = %d, want 99", m.Peek())
	}
}

func TestRegistryReactivateAfterCrash(t *testing.T) {
	st := store.NewStable()
	rt := action.NewRuntime()
	reg := object.NewRegistry[int](st, func(ids.ObjectID) int { return 10 })

	id := ids.NewObjectID()
	m, err := reg.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(func(a *action.Action) error {
		return m.Write(a, func(v *int) error { *v = 11; return nil })
	}); err != nil {
		t.Fatal(err)
	}

	// An uncommitted in-memory scribble, then a crash.
	a, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Write(a, func(v *int) error { *v = 999; return nil }); err != nil {
		t.Fatal(err)
	}
	st.Crash()
	st.Recover()
	if err := reg.Reactivate(); err != nil {
		t.Fatal(err)
	}
	_ = a.Abort() // the old action's restore hits the abandoned instance

	fresh, err := reg.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if fresh == m {
		t.Fatal("Reactivate must produce a fresh instance")
	}
	if fresh.Peek() != 11 {
		t.Fatalf("reactivated = %d, want last committed 11", fresh.Peek())
	}
}

func TestRegistryKnown(t *testing.T) {
	st := store.NewStable()
	reg := object.NewRegistry[string](st, nil)
	ids1, ids2 := ids.NewObjectID(), ids.NewObjectID()
	if _, err := reg.Get(ids1); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get(ids2); err != nil {
		t.Fatal(err)
	}
	if got := len(reg.Known()); got != 2 {
		t.Fatalf("Known = %d", got)
	}
}
