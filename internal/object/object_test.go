package object_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mca/internal/action"
	"mca/internal/colour"
	"mca/internal/ids"
	"mca/internal/lock"
	"mca/internal/object"
	"mca/internal/store"
)

type account struct {
	Owner   string `json:"owner"`
	Balance int    `json:"balance"`
}

func mustBegin(t *testing.T, rt *action.Runtime, opts ...action.BeginOption) *action.Action {
	t.Helper()
	a, err := rt.Begin(opts...)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	return a
}

func TestReadWriteRoundTrip(t *testing.T) {
	rt := action.NewRuntime()
	acc := object.New(account{Owner: "ada", Balance: 100})

	err := rt.Run(func(a *action.Action) error {
		return acc.Write(a, func(v *account) error {
			v.Balance += 50
			return nil
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	err = rt.Run(func(a *action.Action) error {
		return acc.Read(a, func(v account) error {
			if v.Balance != 150 {
				t.Errorf("balance = %d, want 150", v.Balance)
			}
			return nil
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestAbortRestoresValue(t *testing.T) {
	rt := action.NewRuntime()
	acc := object.New(account{Owner: "ada", Balance: 100})

	boom := errors.New("boom")
	err := rt.Run(func(a *action.Action) error {
		if err := acc.Write(a, func(v *account) error {
			v.Balance = 0
			return nil
		}); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run = %v", err)
	}
	if got := acc.Peek().Balance; got != 100 {
		t.Fatalf("balance after abort = %d, want 100", got)
	}
}

func TestMultipleWritesOneBeforeImage(t *testing.T) {
	rt := action.NewRuntime()
	acc := object.New(account{Balance: 1})

	a := mustBegin(t, rt)
	for i := 0; i < 5; i++ {
		if err := acc.Write(a, func(v *account) error {
			v.Balance *= 2
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := acc.Peek().Balance; got != 1 {
		t.Fatalf("balance = %d, want 1 (restore to first before-image)", got)
	}
}

func TestPersistenceOnTopLevelCommit(t *testing.T) {
	rt := action.NewRuntime()
	st := store.NewStable()
	acc := object.New(account{Owner: "ada", Balance: 7}, object.WithStore(st))

	if err := rt.Run(func(a *action.Action) error {
		return acc.Write(a, func(v *account) error {
			v.Balance = 8
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}

	// Activate a second in-memory instance from the store.
	loaded, err := object.Load[account](acc.ObjectID(), st)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got := loaded.Peek(); got.Balance != 8 || got.Owner != "ada" {
		t.Fatalf("loaded = %+v", got)
	}
}

func TestLoadMissingObject(t *testing.T) {
	st := store.NewStable()
	if _, err := object.Load[account](ids.NewObjectID(), st); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("Load = %v, want ErrNotFound", err)
	}
}

func TestNewInUndoneByAbort(t *testing.T) {
	rt := action.NewRuntime()
	a := mustBegin(t, rt)

	m, err := object.NewIn(a, colour.None, account{Owner: "eve"})
	if err != nil {
		t.Fatalf("NewIn: %v", err)
	}
	if !m.Exists() {
		t.Fatal("object must exist inside the creating action")
	}
	if err := a.Abort(); err != nil {
		t.Fatal(err)
	}
	if m.Exists() {
		t.Fatal("creation must be undone by abort")
	}

	// Reading a non-existent object fails.
	b := mustBegin(t, rt)
	err = m.Read(b, func(account) error { return nil })
	if !errors.Is(err, object.ErrNotExists) {
		t.Fatalf("Read = %v, want ErrNotExists", err)
	}
	_ = b.Abort()
}

func TestNewInSurvivesCommit(t *testing.T) {
	rt := action.NewRuntime()
	st := store.NewStable()
	var oid ids.ObjectID

	if err := rt.Run(func(a *action.Action) error {
		m, err := object.NewIn(a, colour.None, account{Owner: "eve", Balance: 3}, object.WithStore(st))
		if err != nil {
			return err
		}
		oid = m.ObjectID()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	loaded, err := object.Load[account](oid, st)
	if err != nil {
		t.Fatalf("Load created object: %v", err)
	}
	if got := loaded.Peek(); got.Owner != "eve" || got.Balance != 3 {
		t.Fatalf("loaded = %+v", got)
	}
}

func TestDeleteInUndoneByAbort(t *testing.T) {
	rt := action.NewRuntime()
	m := object.New(account{Owner: "bob", Balance: 42})

	a := mustBegin(t, rt)
	if err := m.DeleteIn(a, colour.None); err != nil {
		t.Fatal(err)
	}
	if m.Exists() {
		t.Fatal("object must be gone inside the deleting action")
	}
	if err := a.Abort(); err != nil {
		t.Fatal(err)
	}
	if !m.Exists() {
		t.Fatal("delete must be undone by abort")
	}
	if got := m.Peek(); got.Balance != 42 {
		t.Fatalf("restored value = %+v", got)
	}
}

func TestDeleteAbsentFails(t *testing.T) {
	rt := action.NewRuntime()
	m := object.New(account{})
	a := mustBegin(t, rt)
	if err := m.DeleteIn(a, colour.None); err != nil {
		t.Fatal(err)
	}
	if err := m.DeleteIn(a, colour.None); !errors.Is(err, object.ErrNotExists) {
		t.Fatalf("double delete = %v, want ErrNotExists", err)
	}
	_ = a.Abort()
}

func TestIsolationReadersExcludeWriter(t *testing.T) {
	rt := action.NewRuntime()
	m := object.New(account{Balance: 5})

	reader := mustBegin(t, rt)
	if err := m.Read(reader, func(account) error { return nil }); err != nil {
		t.Fatal(err)
	}

	writer := mustBegin(t, rt)
	err := writer.TryLock(m.ObjectID(), lock.Write, colour.None)
	if !errors.Is(err, lock.ErrConflict) {
		t.Fatalf("TryLock = %v, want ErrConflict", err)
	}
	_ = reader.Abort()
	_ = writer.Abort()
}

func TestRetainBlocksStrangers(t *testing.T) {
	rt := action.NewRuntime()
	m := object.New(account{Balance: 5})
	c := colour.Fresh()

	holder := mustBegin(t, rt, action.WithColours(c))
	if err := m.Retain(holder, c); err != nil {
		t.Fatalf("Retain: %v", err)
	}

	stranger := mustBegin(t, rt)
	if err := stranger.TryLock(m.ObjectID(), lock.Read, colour.None); !errors.Is(err, lock.ErrConflict) {
		t.Fatalf("stranger read over exclusive-read = %v, want ErrConflict", err)
	}
	_ = holder.Abort()
	_ = stranger.Abort()
}

func TestWriteInExplicitColour(t *testing.T) {
	rt := action.NewRuntime()
	st := store.NewStable()
	red, blue := colour.Fresh(), colour.Fresh()
	m := object.New(account{Balance: 1}, object.WithStore(st))

	a := mustBegin(t, rt, action.WithColours(blue))
	b, err := a.Begin(action.WithColours(red, blue))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteIn(b, red, func(v *account) error {
		v.Balance = 2
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	// Red is outermost at B: permanence immediately.
	if _, err := st.Read(m.ObjectID()); err != nil {
		t.Fatalf("red write set not flushed: %v", err)
	}
	_ = a.Abort()
	if got := m.Peek().Balance; got != 2 {
		t.Fatalf("balance = %d, want 2 (red effects survive A's abort)", got)
	}
}

func TestConcurrentTransfersConserveTotal(t *testing.T) {
	rt := action.NewRuntime()
	accounts := make([]*object.Managed[account], 4)
	for i := range accounts {
		accounts[i] = object.New(account{Balance: 100})
	}

	const transfers = 32
	var wg sync.WaitGroup
	errs := make(chan error, transfers)
	for i := 0; i < transfers; i++ {
		from, to := accounts[i%4], accounts[(i+1)%4]
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- rt.Run(func(a *action.Action) error {
				if err := from.Write(a, func(v *account) error {
					v.Balance -= 10
					return nil
				}); err != nil {
					return err
				}
				return to.Write(a, func(v *account) error {
					v.Balance += 10
					return nil
				})
			})
		}()
	}
	wg.Wait()
	close(errs)
	failures := 0
	for err := range errs {
		if err != nil {
			// Deadlocks abort cleanly; the invariant must hold
			// regardless.
			if !errors.Is(err, lock.ErrDeadlock) && !errors.Is(err, action.ErrAborted) {
				t.Fatalf("transfer: %v", err)
			}
			failures++
		}
	}
	total := 0
	for _, acc := range accounts {
		total += acc.Peek().Balance
	}
	if total != 400 {
		t.Fatalf("total = %d, want 400 (failures=%d)", total, failures)
	}
}

func TestStateEnvelopeRoundTripThroughStore(t *testing.T) {
	rt := action.NewRuntime()
	st := store.NewStable()
	m := object.New(map[string]int{"x": 1}, object.WithStore(st))

	if err := rt.Run(func(a *action.Action) error {
		return m.Write(a, func(v *map[string]int) error {
			(*v)["y"] = 2
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	loaded, err := object.Load[map[string]int](m.ObjectID(), st)
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.Peek()
	if got["x"] != 1 || got["y"] != 2 {
		t.Fatalf("loaded = %v", got)
	}
}

func TestCrashLosesUncommittedSurvivesCommitted(t *testing.T) {
	// The permanence property end-to-end: committed state survives a
	// stable-store crash; uncommitted writes never reach it.
	rt := action.NewRuntime()
	st := store.NewStable()
	m := object.New(account{Balance: 10}, object.WithStore(st))

	if err := rt.Run(func(a *action.Action) error {
		return m.Write(a, func(v *account) error { v.Balance = 20; return nil })
	}); err != nil {
		t.Fatal(err)
	}

	a := mustBegin(t, rt)
	if err := m.Write(a, func(v *account) error { v.Balance = 99; return nil }); err != nil {
		t.Fatal(err)
	}
	// Node crashes before commit.
	st.Crash()
	if err := a.Abort(); err != nil {
		t.Fatal(err)
	}
	st.Recover()

	loaded, err := object.Load[account](m.ObjectID(), st)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Peek().Balance; got != 20 {
		t.Fatalf("recovered balance = %d, want 20", got)
	}
}

func TestUpdateWithRetrySucceedsFirstTry(t *testing.T) {
	rt := action.NewRuntime()
	m := object.New(1)
	if err := object.UpdateWithRetry(rt, m, 3, func(v *int) error {
		*v++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if m.Peek() != 2 {
		t.Fatalf("m = %d", m.Peek())
	}
}

func TestUpdateWithRetryPropagatesAppErrors(t *testing.T) {
	rt := action.NewRuntime()
	m := object.New(1)
	boom := errors.New("boom")
	err := object.UpdateWithRetry(rt, m, 3, func(*int) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if m.Peek() != 1 {
		t.Fatalf("m = %d", m.Peek())
	}
}

func TestUpdateWithRetryUnderContention(t *testing.T) {
	// Two rings of updates that can deadlock: with retries every
	// update eventually lands.
	rt := action.NewRuntime()
	x := object.New(0)
	y := object.New(0)

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			first, second := x, y
			if i%2 == 1 {
				first, second = y, x
			}
			// A two-object transaction retried on deadlock, with
			// jittered backoff so retries do not recreate the same
			// collision forever.
			rng := rand.New(rand.NewSource(int64(i + 1)))
			var lastErr error
			for attempt := 0; attempt < 50; attempt++ {
				lastErr = rt.Run(func(a *action.Action) error {
					if err := first.Write(a, func(v *int) error { *v++; return nil }); err != nil {
						return err
					}
					return second.Write(a, func(v *int) error { *v++; return nil })
				})
				if lastErr == nil {
					return
				}
				time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
			}
			errs <- lastErr
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("update never landed: %v", err)
	}
	if x.Peek() != 8 || y.Peek() != 8 {
		t.Fatalf("x=%d y=%d, want 8/8", x.Peek(), y.Peek())
	}
}
