package object

import (
	"errors"
	"sync"

	"mca/internal/ids"
	"mca/internal/store"
)

// Registry manages a set of persistent objects of one type in one
// stable store: it activates objects on first use (loading their state
// when the store has one, creating them otherwise) and re-activates
// them after a node crash — the pattern every node-resident service
// needs (paper §2: objects "normally reside in object stores"; they are
// activated into volatile memory to be operated on).
type Registry[T any] struct {
	store   StableStore
	initial func(ids.ObjectID) T

	mu      sync.Mutex
	objects map[ids.ObjectID]*Managed[T]
}

// NewRegistry builds a registry over the store. initial provides the
// starting value for objects the store has no state for (nil means the
// zero value).
func NewRegistry[T any](s StableStore, initial func(ids.ObjectID) T) *Registry[T] {
	if initial == nil {
		initial = func(ids.ObjectID) T { var zero T; return zero }
	}
	return &Registry[T]{
		store:   s,
		initial: initial,
		objects: make(map[ids.ObjectID]*Managed[T]),
	}
}

// Get returns the managed object with the given identifier, activating
// it from the store (or creating it at its initial value) on first use.
func (r *Registry[T]) Get(id ids.ObjectID) (*Managed[T], error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.getLocked(id)
}

func (r *Registry[T]) getLocked(id ids.ObjectID) (*Managed[T], error) {
	if m, ok := r.objects[id]; ok {
		return m, nil
	}
	m, err := Load[T](id, r.store)
	if errors.Is(err, store.ErrNotFound) {
		m = New(r.initial(id), WithStore(r.store), WithID(id))
		err = nil
	}
	if err != nil {
		return nil, err
	}
	r.objects[id] = m
	return m, nil
}

// Reactivate discards every in-memory instance and reloads from the
// store. Call it from a node service's Recover hook: the volatile
// instances died with the crash, and any in-doubt write sets applied by
// commit-protocol recovery are only visible in the store.
func (r *Registry[T]) Reactivate() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.objects
	r.objects = make(map[ids.ObjectID]*Managed[T], len(old))
	var firstErr error
	for id := range old {
		if _, err := r.getLocked(id); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Known returns the identifiers of currently activated objects, in no
// particular order.
func (r *Registry[T]) Known() []ids.ObjectID {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ids.ObjectID, 0, len(r.objects))
	for id := range r.objects {
		out = append(out, id)
	}
	return out
}
