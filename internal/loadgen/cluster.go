// Package loadgen drives real mca clusters — simulated (netsim) or on
// TCP sockets (tcpnet) — with the open-loop workload generator, and
// searches for capacity-at-SLO: the highest offered transaction rate
// whose coordinated-omission-free latency quantile still meets a
// target. cmd/loadgen is the CLI; cmd/experiments E25 publishes the
// trajectory as BENCH_capacity.json.
package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mca/internal/action"
	"mca/internal/dist"
	"mca/internal/ids"
	"mca/internal/netsim"
	"mca/internal/node"
	"mca/internal/object"
	"mca/internal/rpc"
	"mca/internal/tcpnet"
	"mca/internal/trace"
)

// Backend selects the transport a cluster runs on.
type Backend string

const (
	// BackendNetsim runs every node on the in-process simulated
	// network: no sockets, optional virtual time.
	BackendNetsim Backend = "netsim"
	// BackendTCP runs every node on a real loopback TCP socket.
	BackendTCP Backend = "tcpnet"
)

// ClusterConfig sizes the system under test.
type ClusterConfig struct {
	Backend Backend
	// Participants is the number of resource-hosting nodes (the
	// coordinator is separate). Default 2.
	Participants int
	// Registers is the number of integer registers spread round-robin
	// across participants. Default 64, minimum 2 (transfers span two).
	Registers int
	// RPC overrides the per-node RPC options; the zero value picks
	// backend-appropriate retry/timeout defaults.
	RPC rpc.Options
	// Netsim configures the simulated network (BackendNetsim only).
	Netsim netsim.Config
	// Trace, when non-nil, gives every node a trace recorder sharing
	// one tail-based sampler with this configuration; SlowTxns then
	// harvests the kept transactions, and a failed SLO probe during
	// SearchCapacity captures them automatically (LastCapture). Nil
	// runs the cluster untraced.
	Trace *trace.SamplerConfig
}

// register is one transactional integer cell: the kv resource of the
// 2PC experiments plus a read op, durable via the node's stable store.
type register struct {
	mu    sync.Mutex
	nd    *node.Node
	objID ids.ObjectID
	val   *object.Managed[int]
}

func newRegister() *register { return &register{objID: ids.NewObjectID()} }

func (k *register) Register(nd *node.Node, _ *rpc.Peer) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.nd = nd
	k.activateLocked()
}

func (k *register) Recover(context.Context, *node.Node) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.activateLocked()
}

func (k *register) activateLocked() {
	if m, err := object.Load[int](k.objID, k.nd.Stable()); err == nil {
		k.val = m
		return
	}
	k.val = object.New(0, object.WithStore(k.nd.Stable()), object.WithID(k.objID))
}

func (k *register) value() *object.Managed[int] {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.val
}

type regDelta struct {
	Delta int `json:"delta"`
}

func (k *register) Invoke(a *action.Action, op string, arg []byte) ([]byte, error) {
	switch op {
	case "add":
		var in regDelta
		if err := json.Unmarshal(arg, &in); err != nil {
			return nil, err
		}
		if err := k.value().Write(a, func(v *int) error { *v += in.Delta; return nil }); err != nil {
			return nil, err
		}
		return []byte("{}"), nil
	case "get":
		var out int
		if err := k.value().Read(a, func(v int) error { out = v; return nil }); err != nil {
			return nil, err
		}
		return json.Marshal(out)
	default:
		return nil, errors.New("unknown op")
	}
}

// Cluster is a running system under test: one coordinator plus
// Participants resource nodes, each hosting a share of the registers.
type Cluster struct {
	cfg   ClusterConfig
	nw    *netsim.Network
	tn    *tcpnet.Network
	nodes []*node.Node
	coord *dist.Manager
	hosts []ids.NodeID // hosts[i] owns register i

	// Tracing state (ClusterConfig.Trace): one recorder per node, one
	// shared sampler deciding which transactions' spans survive.
	sampler *trace.Sampler
	recs    []*trace.Recorder

	mu      sync.Mutex
	capture *SlowTxnsReport // latest failed-probe capture
}

// NewCluster builds and starts a cluster. Close releases it.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Participants <= 0 {
		cfg.Participants = 2
	}
	if cfg.Registers <= 0 {
		cfg.Registers = 64
	}
	if cfg.Registers < 2 {
		cfg.Registers = 2
	}
	if cfg.RPC.RetryInterval <= 0 {
		cfg.RPC.RetryInterval = 5 * time.Millisecond
	}
	if cfg.RPC.CallTimeout <= 0 {
		cfg.RPC.CallTimeout = 5 * time.Second
	}
	c := &Cluster{cfg: cfg}
	if cfg.Trace != nil {
		c.sampler = trace.NewSampler(*cfg.Trace)
	}

	nodeOpts := func() []node.Option {
		opts := []node.Option{node.WithRPCOptions(cfg.RPC)}
		if c.sampler != nil {
			rec := trace.NewRecorder()
			rec.SetSampler(c.sampler)
			c.recs = append(c.recs, rec)
			opts = append(opts, node.WithTracer(rec))
		}
		return opts
	}
	newNode := func() (*node.Node, error) {
		switch cfg.Backend {
		case BackendNetsim, "":
			if c.nw == nil {
				c.nw = netsim.New(cfg.Netsim)
			}
			return node.New(c.nw, nodeOpts()...)
		case BackendTCP:
			if c.tn == nil {
				// One shared network: it carries the ID-to-address
				// registry the nodes resolve each other through.
				c.tn = tcpnet.NewNetwork()
			}
			ep, err := c.tn.Listen("127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			nd, err := node.NewOn(ep, nodeOpts()...)
			if err != nil {
				ep.Close()
				return nil, err
			}
			return nd, nil
		default:
			return nil, fmt.Errorf("loadgen: unknown backend %q", cfg.Backend)
		}
	}

	coordNode, err := newNode()
	if err != nil {
		c.Close()
		return nil, err
	}
	c.nodes = append(c.nodes, coordNode)
	c.coord = dist.NewManager(coordNode)

	parts := make([]ids.NodeID, 0, cfg.Participants)
	mgrs := make([]*dist.Manager, 0, cfg.Participants)
	for i := 0; i < cfg.Participants; i++ {
		nd, err := newNode()
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, nd)
		mgrs = append(mgrs, dist.NewManager(nd))
		parts = append(parts, nd.ID())
	}
	c.hosts = make([]ids.NodeID, cfg.Registers)
	for i := 0; i < cfg.Registers; i++ {
		p := i % cfg.Participants
		r := newRegister()
		c.nodes[p+1].Host(r)
		mgrs[p].RegisterResource(regName(i), r)
		c.hosts[i] = parts[p]
	}
	return c, nil
}

func regName(i int) string { return fmt.Sprintf("reg%d", i) }

// Close stops every node and the simulated network.
func (c *Cluster) Close() {
	for _, nd := range c.nodes {
		nd.Stop()
	}
	if c.nw != nil {
		c.nw.Close()
	}
}

// Config returns the (defaulted) configuration the cluster runs with.
func (c *Cluster) Config() ClusterConfig { return c.cfg }

// SetForceDelay installs a simulated per-force latency on every node's
// WAL — the storage-fault injection knob of the attribution experiment
// (E26): a slow disk shows up as force-wait time in the phase ledger.
func (c *Cluster) SetForceDelay(d time.Duration) {
	for _, nd := range c.nodes {
		nd.Stable().WAL().SetForceDelay(d)
	}
}

// Netsim returns the simulated network for fault injection — per-node
// link delay, partitions, loss. Nil on BackendTCP.
func (c *Cluster) Netsim() *netsim.Network { return c.nw }

// ParticipantID returns the node ID of participant i (0-based, in
// register round-robin order).
func (c *Cluster) ParticipantID(i int) ids.NodeID { return c.nodes[i+1].ID() }

// Read runs a single-register read transaction on the register the key
// maps to.
func (c *Cluster) Read(ctx context.Context, key uint64) error {
	i := int(key) % len(c.hosts)
	return c.coord.Run(ctx, func(txn *dist.Txn) error {
		var out int
		return txn.Invoke(ctx, c.hosts[i], regName(i), "get", struct{}{}, &out)
	})
}

// Write runs a single-register increment transaction.
func (c *Cluster) Write(ctx context.Context, key uint64) error {
	i := int(key) % len(c.hosts)
	return c.coord.Run(ctx, func(txn *dist.Txn) error {
		return txn.Invoke(ctx, c.hosts[i], regName(i), "add", regDelta{Delta: 1}, nil)
	})
}

// SlowRoots drains every recorder and returns the sampled trace-root
// spans — the transactions the tail sampler kept — slowest first, at
// most k (k <= 0 means all). Nil when the cluster is untraced.
func (c *Cluster) SlowRoots(k int) []trace.Span {
	if c.sampler == nil {
		return nil
	}
	var roots []trace.Span
	for _, rec := range c.recs {
		for _, s := range rec.Spans() {
			// Trace roots carry the phase ledger; skip still-active
			// spans (no end recorded yet).
			if s.TraceID != 0 && s.ParentSpanID == 0 && s.SpanID != 0 &&
				s.ID != 0 && s.Parent == 0 && !s.End.IsZero() {
				roots = append(roots, s)
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		di, dj := roots[i].End.Sub(roots[i].Begin), roots[j].End.Sub(roots[j].Begin)
		if di != dj {
			return di > dj
		}
		return roots[i].TraceID < roots[j].TraceID
	})
	if k > 0 && len(roots) > k {
		roots = roots[:k]
	}
	return roots
}

// LastCapture returns the slow-transaction capture taken at the most
// recent failed SLO probe (nil when none failed or the cluster is
// untraced).
func (c *Cluster) LastCapture() *SlowTxnsReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capture
}

// Transfer runs a two-register transaction moving one unit from the
// key's register to its neighbour — adjacent registers live on
// different participants, so this is a genuinely distributed 2PC.
func (c *Cluster) Transfer(ctx context.Context, key uint64) error {
	i := int(key) % len(c.hosts)
	j := (i + 1) % len(c.hosts)
	return c.coord.Run(ctx, func(txn *dist.Txn) error {
		if err := txn.Invoke(ctx, c.hosts[i], regName(i), "add", regDelta{Delta: -1}, nil); err != nil {
			return err
		}
		return txn.Invoke(ctx, c.hosts[j], regName(j), "add", regDelta{Delta: 1}, nil)
	})
}
