// Package loadgen drives real mca clusters — simulated (netsim) or on
// TCP sockets (tcpnet) — with the open-loop workload generator, and
// searches for capacity-at-SLO: the highest offered transaction rate
// whose coordinated-omission-free latency quantile still meets a
// target. cmd/loadgen is the CLI; cmd/experiments E25 publishes the
// trajectory as BENCH_capacity.json.
package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"mca/internal/action"
	"mca/internal/dist"
	"mca/internal/ids"
	"mca/internal/netsim"
	"mca/internal/node"
	"mca/internal/object"
	"mca/internal/rpc"
	"mca/internal/tcpnet"
)

// Backend selects the transport a cluster runs on.
type Backend string

const (
	// BackendNetsim runs every node on the in-process simulated
	// network: no sockets, optional virtual time.
	BackendNetsim Backend = "netsim"
	// BackendTCP runs every node on a real loopback TCP socket.
	BackendTCP Backend = "tcpnet"
)

// ClusterConfig sizes the system under test.
type ClusterConfig struct {
	Backend Backend
	// Participants is the number of resource-hosting nodes (the
	// coordinator is separate). Default 2.
	Participants int
	// Registers is the number of integer registers spread round-robin
	// across participants. Default 64, minimum 2 (transfers span two).
	Registers int
	// RPC overrides the per-node RPC options; the zero value picks
	// backend-appropriate retry/timeout defaults.
	RPC rpc.Options
	// Netsim configures the simulated network (BackendNetsim only).
	Netsim netsim.Config
}

// register is one transactional integer cell: the kv resource of the
// 2PC experiments plus a read op, durable via the node's stable store.
type register struct {
	mu    sync.Mutex
	nd    *node.Node
	objID ids.ObjectID
	val   *object.Managed[int]
}

func newRegister() *register { return &register{objID: ids.NewObjectID()} }

func (k *register) Register(nd *node.Node, _ *rpc.Peer) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.nd = nd
	k.activateLocked()
}

func (k *register) Recover(context.Context, *node.Node) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.activateLocked()
}

func (k *register) activateLocked() {
	if m, err := object.Load[int](k.objID, k.nd.Stable()); err == nil {
		k.val = m
		return
	}
	k.val = object.New(0, object.WithStore(k.nd.Stable()), object.WithID(k.objID))
}

func (k *register) value() *object.Managed[int] {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.val
}

type regDelta struct {
	Delta int `json:"delta"`
}

func (k *register) Invoke(a *action.Action, op string, arg []byte) ([]byte, error) {
	switch op {
	case "add":
		var in regDelta
		if err := json.Unmarshal(arg, &in); err != nil {
			return nil, err
		}
		if err := k.value().Write(a, func(v *int) error { *v += in.Delta; return nil }); err != nil {
			return nil, err
		}
		return []byte("{}"), nil
	case "get":
		var out int
		if err := k.value().Read(a, func(v int) error { out = v; return nil }); err != nil {
			return nil, err
		}
		return json.Marshal(out)
	default:
		return nil, errors.New("unknown op")
	}
}

// Cluster is a running system under test: one coordinator plus
// Participants resource nodes, each hosting a share of the registers.
type Cluster struct {
	cfg   ClusterConfig
	nw    *netsim.Network
	tn    *tcpnet.Network
	nodes []*node.Node
	coord *dist.Manager
	hosts []ids.NodeID // hosts[i] owns register i
}

// NewCluster builds and starts a cluster. Close releases it.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Participants <= 0 {
		cfg.Participants = 2
	}
	if cfg.Registers <= 0 {
		cfg.Registers = 64
	}
	if cfg.Registers < 2 {
		cfg.Registers = 2
	}
	if cfg.RPC.RetryInterval <= 0 {
		cfg.RPC.RetryInterval = 5 * time.Millisecond
	}
	if cfg.RPC.CallTimeout <= 0 {
		cfg.RPC.CallTimeout = 5 * time.Second
	}
	c := &Cluster{cfg: cfg}

	newNode := func() (*node.Node, error) {
		switch cfg.Backend {
		case BackendNetsim, "":
			if c.nw == nil {
				c.nw = netsim.New(cfg.Netsim)
			}
			return node.New(c.nw, node.WithRPCOptions(cfg.RPC))
		case BackendTCP:
			if c.tn == nil {
				// One shared network: it carries the ID-to-address
				// registry the nodes resolve each other through.
				c.tn = tcpnet.NewNetwork()
			}
			ep, err := c.tn.Listen("127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			nd, err := node.NewOn(ep, node.WithRPCOptions(cfg.RPC))
			if err != nil {
				ep.Close()
				return nil, err
			}
			return nd, nil
		default:
			return nil, fmt.Errorf("loadgen: unknown backend %q", cfg.Backend)
		}
	}

	coordNode, err := newNode()
	if err != nil {
		c.Close()
		return nil, err
	}
	c.nodes = append(c.nodes, coordNode)
	c.coord = dist.NewManager(coordNode)

	parts := make([]ids.NodeID, 0, cfg.Participants)
	mgrs := make([]*dist.Manager, 0, cfg.Participants)
	for i := 0; i < cfg.Participants; i++ {
		nd, err := newNode()
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, nd)
		mgrs = append(mgrs, dist.NewManager(nd))
		parts = append(parts, nd.ID())
	}
	c.hosts = make([]ids.NodeID, cfg.Registers)
	for i := 0; i < cfg.Registers; i++ {
		p := i % cfg.Participants
		r := newRegister()
		c.nodes[p+1].Host(r)
		mgrs[p].RegisterResource(regName(i), r)
		c.hosts[i] = parts[p]
	}
	return c, nil
}

func regName(i int) string { return fmt.Sprintf("reg%d", i) }

// Close stops every node and the simulated network.
func (c *Cluster) Close() {
	for _, nd := range c.nodes {
		nd.Stop()
	}
	if c.nw != nil {
		c.nw.Close()
	}
}

// Config returns the (defaulted) configuration the cluster runs with.
func (c *Cluster) Config() ClusterConfig { return c.cfg }

// Read runs a single-register read transaction on the register the key
// maps to.
func (c *Cluster) Read(ctx context.Context, key uint64) error {
	i := int(key) % len(c.hosts)
	return c.coord.Run(ctx, func(txn *dist.Txn) error {
		var out int
		return txn.Invoke(ctx, c.hosts[i], regName(i), "get", struct{}{}, &out)
	})
}

// Write runs a single-register increment transaction.
func (c *Cluster) Write(ctx context.Context, key uint64) error {
	i := int(key) % len(c.hosts)
	return c.coord.Run(ctx, func(txn *dist.Txn) error {
		return txn.Invoke(ctx, c.hosts[i], regName(i), "add", regDelta{Delta: 1}, nil)
	})
}

// Transfer runs a two-register transaction moving one unit from the
// key's register to its neighbour — adjacent registers live on
// different participants, so this is a genuinely distributed 2PC.
func (c *Cluster) Transfer(ctx context.Context, key uint64) error {
	i := int(key) % len(c.hosts)
	j := (i + 1) % len(c.hosts)
	return c.coord.Run(ctx, func(txn *dist.Txn) error {
		if err := txn.Invoke(ctx, c.hosts[i], regName(i), "add", regDelta{Delta: -1}, nil); err != nil {
			return err
		}
		return txn.Invoke(ctx, c.hosts[j], regName(j), "add", regDelta{Delta: 1}, nil)
	})
}
