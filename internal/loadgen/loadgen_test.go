package loadgen

import (
	"context"
	"strings"
	"testing"
	"time"

	"mca/internal/trace"
	"mca/internal/workload"
)

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("read=70, write=20,transfer=10")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 3 || mix[0].Name != "read" || mix[0].Weight != 70 ||
		mix[2].Name != "transfer" || mix[2].Weight != 10 {
		t.Fatalf("mix = %+v", mix)
	}
	if s := MixString(mix); s != "read=70,write=20,transfer=10" {
		t.Fatalf("MixString = %q", s)
	}
	for _, bad := range []string{"", "scan=1", "read", "read=-1", "read=x", "read=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) accepted", bad)
		}
	}
}

// newTestCluster builds a small netsim cluster for real-time runs.
func newTestCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{Backend: BackendNetsim, Participants: 2, Registers: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestClusterOps(t *testing.T) {
	c := newTestCluster(t)
	ctx := context.Background()
	for key := uint64(0); key < 8; key++ {
		if err := c.Write(ctx, key); err != nil {
			t.Fatalf("write key %d: %v", key, err)
		}
		if err := c.Read(ctx, key); err != nil {
			t.Fatalf("read key %d: %v", key, err)
		}
		if err := c.Transfer(ctx, key); err != nil {
			t.Fatalf("transfer key %d: %v", key, err)
		}
	}
}

func TestClusterOpenLoopRun(t *testing.T) {
	c := newTestCluster(t)
	mix, err := ParseMix("read=50,write=40,transfer=10")
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunOpen(context.Background(), RunConfig{
		Mix:    mix,
		Seed:   1,
		Warmup: 50 * time.Millisecond,
		Window: 250 * time.Millisecond,
	}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no measured ops")
	}
	if res.Errors > res.Ops/10 {
		t.Fatalf("too many errors: %d/%d: %v", res.Errors, res.Ops, res.ErrKinds)
	}
	var perClass int
	for _, l := range res.PerClass {
		perClass += l.Count()
	}
	if perClass != res.Ops {
		t.Fatalf("per-class sum %d != ops %d", perClass, res.Ops)
	}
}

func TestSearchCapacityOnCluster(t *testing.T) {
	c := newTestCluster(t)
	rc := RunConfig{
		Mix:         []MixEntry{{Name: "write", Weight: 1}},
		Seed:        2,
		Warmup:      25 * time.Millisecond,
		Window:      150 * time.Millisecond,
		SLO:         workload.SLO{Quantile: 0.99, Target: 100 * time.Millisecond},
		Start:       50,
		Max:         800,
		BisectIters: 2,
	}
	res, err := c.SearchCapacity(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Capacity <= 0 {
		t.Fatalf("netsim cluster reports no capacity: %+v", res.Points)
	}
	rep := NewClusterReport(c.Config(), rc, res)
	if rep.CapacityQPS != res.Capacity || len(rep.Trajectory) != len(res.Points) {
		t.Fatalf("report mismatch: %+v", rep)
	}
}

// TestTracedClusterCapture runs the slow-transaction pipeline end to
// end: a traced cluster with an injected WAL force delay keeps every
// transaction (all beat the threshold), SlowRoots returns them slowest
// first with phase ledgers attached, and the derived report names the
// injected fault dominant.
func TestTracedClusterCapture(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Backend:      BackendNetsim,
		Participants: 2,
		Registers:    8,
		Trace:        &trace.SamplerConfig{Threshold: 5 * time.Millisecond, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	c.SetForceDelay(10 * time.Millisecond)
	ctx := context.Background()
	for key := uint64(0); key < 6; key++ {
		if err := c.Write(ctx, key); err != nil {
			t.Fatalf("write key %d: %v", key, err)
		}
	}
	roots := c.SlowRoots(4)
	if len(roots) != 4 {
		t.Fatalf("SlowRoots(4) returned %d roots, want 4 (every write pays >=20ms of forces)", len(roots))
	}
	for i, s := range roots {
		if i > 0 {
			prev := roots[i-1].End.Sub(roots[i-1].Begin)
			if s.End.Sub(s.Begin) > prev {
				t.Fatalf("roots not sorted slowest-first at %d", i)
			}
		}
		if len(s.Phases) == 0 {
			t.Fatalf("root %d has no phase ledger: %+v", i, s)
		}
	}
	st := NewSlowTxnsReport(123, roots)
	if st == nil || st.TriggerRateQPS != 123 || len(st.Txns) != 4 {
		t.Fatalf("NewSlowTxnsReport = %+v", st)
	}
	for i, txn := range st.Txns {
		if txn.Dominant != "force" {
			t.Fatalf("txn %d dominant = %q (breakdown %v), want force", i, txn.Dominant, txn.BreakdownMS)
		}
	}
	if st.AttributionPct["force"] < 50 {
		t.Fatalf("force share %v%% with 10ms injected forces, want majority (%v)",
			st.AttributionPct["force"], st.AttributionPct)
	}
	// An untraced cluster exposes none of this.
	plain := newTestCluster(t)
	if plain.SlowRoots(4) != nil || plain.LastCapture() != nil {
		t.Fatal("untraced cluster returned sampled roots")
	}
}

func TestSearchCapacityHonoursContext(t *testing.T) {
	c := newTestCluster(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.SearchCapacity(ctx, RunConfig{Window: 100 * time.Millisecond})
	if err == nil {
		t.Fatal("cancelled context not propagated")
	}
}

func TestReportValidate(t *testing.T) {
	good := func() *Report {
		pt := Point{RateQPS: 100, Pass: true, AchievedQPS: 99, Ops: 50, P50MS: 1, P99MS: 2, P999MS: 3, MaxMS: 4}
		return &Report{
			Experiment: "test",
			SLO:        SLOReport{Quantile: 0.99, TargetMS: 50},
			Clusters: []ClusterReport{{
				Backend:     "netsim",
				CapacityQPS: 100,
				AtCapacity:  &pt,
				Trajectory:  []Point{pt},
			}},
			SlowTxns: &SlowTxnsReport{
				TriggerRateQPS: 200,
				Txns: []SlowTxn{
					{TraceID: "0000000000000001", DurationMS: 3, Outcome: "commit", Dominant: "force",
						BreakdownMS: map[string]float64{"force": 2.5}},
					{TraceID: "0000000000000002", DurationMS: 2, Outcome: "commit", Dominant: "net",
						BreakdownMS: map[string]float64{"net": 1.5}},
				},
				AttributionPct: map[string]float64{"lock": 0, "force": 70, "net": 25, "queue": 3, "compute": 2},
			},
		}
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("good report rejected: %v", err)
	}
	mutations := map[string]func(*Report){
		"no clusters":        func(r *Report) { r.Clusters = nil },
		"zero capacity":      func(r *Report) { r.Clusters[0].CapacityQPS = 0 },
		"no at_capacity":     func(r *Report) { r.Clusters[0].AtCapacity = nil },
		"empty trajectory":   func(r *Report) { r.Clusters[0].Trajectory = nil },
		"bad backend":        func(r *Report) { r.Clusters[0].Backend = "carrier-pigeon" },
		"bad slo":            func(r *Report) { r.SLO.TargetMS = 0 },
		"non-monotone tails": func(r *Report) { r.Clusters[0].Trajectory[0].P99MS = 99 },
		"slo violated at capacity": func(r *Report) {
			p := *r.Clusters[0].AtCapacity
			p.P99MS = 51
			p.P999MS = 52
			r.Clusters[0].AtCapacity = &p
		},
		"slow_txns no trigger rate": func(r *Report) { r.SlowTxns.TriggerRateQPS = 0 },
		"slow_txns empty":           func(r *Report) { r.SlowTxns.Txns = nil },
		"slow_txns no dominant":     func(r *Report) { r.SlowTxns.Txns[0].Dominant = "" },
		"slow_txns unsorted": func(r *Report) {
			r.SlowTxns.Txns[0], r.SlowTxns.Txns[1] = r.SlowTxns.Txns[1], r.SlowTxns.Txns[0]
		},
		"slow_txns pct out of range": func(r *Report) { r.SlowTxns.AttributionPct["force"] = 300 },
		"slow_txns pct sum off":      func(r *Report) { r.SlowTxns.AttributionPct["force"] = 10 },
	}
	for name, mutate := range mutations {
		r := good()
		mutate(r)
		if err := r.Validate(); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	if m := MachineString(); !strings.Contains(m, "cores") {
		t.Fatalf("MachineString = %q", m)
	}
}
