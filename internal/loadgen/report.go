package loadgen

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"mca/internal/trace"
	"mca/internal/workload"
)

// Report is the BENCH_capacity.json schema: the capacity-at-SLO
// trajectory for each measured cluster plus the closed-vs-open
// coordinated-omission comparison.
type Report struct {
	Experiment string          `json:"experiment"`
	Machine    string          `json:"machine"`
	Mix        string          `json:"mix"`
	Arrivals   string          `json:"arrivals"`
	Skew       string          `json:"skew"`
	Seed       uint64          `json:"seed"`
	SLO        SLOReport       `json:"slo"`
	Clusters   []ClusterReport `json:"clusters"`
	// ClosedVsOpen demonstrates the coordinated-omission gap; optional.
	ClosedVsOpen *ClosedVsOpen `json:"closed_vs_open,omitempty"`
	// SlowTxns is the tail capture from the last failed SLO probe:
	// the slowest sampled transactions with per-phase attribution.
	// Present only when the cluster ran with tracing enabled and at
	// least one probe missed the SLO.
	SlowTxns *SlowTxnsReport `json:"slow_txns,omitempty"`
}

// SLOReport names the latency objective the search held.
type SLOReport struct {
	Quantile float64 `json:"quantile"`
	TargetMS float64 `json:"target_ms"`
}

// ClusterReport is one cluster's capacity search result.
type ClusterReport struct {
	Backend      string  `json:"backend"`
	Participants int     `json:"participants"`
	Registers    int     `json:"registers"`
	WarmupMS     float64 `json:"warmup_ms"`
	WindowMS     float64 `json:"window_ms"`
	// CapacityQPS is the highest offered rate that met the SLO.
	CapacityQPS float64 `json:"capacity_qps"`
	AtCapacity  *Point  `json:"at_capacity,omitempty"`
	// Trajectory records every probe in search order.
	Trajectory []Point `json:"trajectory"`
}

// Point is one probed offered rate. Latencies are open-loop: measured
// from intended arrival times.
type Point struct {
	RateQPS     float64 `json:"rate_qps"`
	Pass        bool    `json:"pass"`
	Overloaded  bool    `json:"overloaded"`
	AchievedQPS float64 `json:"achieved_qps"`
	Ops         int     `json:"ops"`
	Errors      int     `json:"errors"`
	Dropped     int     `json:"dropped"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
	P999MS      float64 `json:"p999_ms"`
	MaxMS       float64 `json:"max_ms"`
}

// ClosedVsOpen is the paired coordinated-omission measurement.
type ClosedVsOpen struct {
	Backend        string  `json:"backend"`
	Workers        int     `json:"workers"`
	ClosedQPS      float64 `json:"closed_qps"`
	ClosedP50MS    float64 `json:"closed_p50_ms"`
	ClosedP99MS    float64 `json:"closed_p99_ms"`
	OpenOfferedQPS float64 `json:"open_offered_qps"`
	OpenP50MS      float64 `json:"open_p50_ms"`
	OpenP99MS      float64 `json:"open_p99_ms"`
	// COGapP99X is open p99 / closed p99 at the same load: how much
	// tail latency closed-loop measurement hides.
	COGapP99X float64 `json:"co_gap_p99_x"`
	Note      string  `json:"note"`
}

// SlowTxnsReport is the slow-transaction capture attached to a report
// when an SLO probe fails: the top-K slowest transactions the tail
// sampler kept, plus the aggregate share of their time per exclusive
// phase bucket (the same view tracecat -attrib prints).
type SlowTxnsReport struct {
	// TriggerRateQPS is the offered rate of the probe that failed.
	TriggerRateQPS float64 `json:"trigger_rate_qps"`
	// Txns lists the captured transactions, slowest first.
	Txns []SlowTxn `json:"txns"`
	// AttributionPct is each exclusive bucket's share of the captured
	// transactions' summed attribution, in percent (sums to ~100; the
	// buckets, not wall time, are the denominator — concurrent waits
	// on parallel fan-out legs can exceed the wall clock).
	AttributionPct map[string]float64 `json:"attribution_pct"`
}

// SlowTxn is one captured slow transaction.
type SlowTxn struct {
	TraceID    string  `json:"trace_id"`
	DurationMS float64 `json:"duration_ms"`
	Outcome    string  `json:"outcome"`
	// Dominant is the largest exclusive bucket (trace.Attribution).
	Dominant string `json:"dominant"`
	// PhasesMS is the raw (overlapping) phase ledger in milliseconds.
	PhasesMS map[string]float64 `json:"phases_ms,omitempty"`
	// BreakdownMS is the derived exclusive view in milliseconds.
	BreakdownMS map[string]float64 `json:"breakdown_ms"`
}

// NewSlowTxnsReport converts captured trace roots (Cluster.SlowRoots)
// to report form. Returns nil for an empty capture.
func NewSlowTxnsReport(rate float64, roots []trace.Span) *SlowTxnsReport {
	if len(roots) == 0 {
		return nil
	}
	out := &SlowTxnsReport{TriggerRateQPS: round2(rate)}
	totals := make(map[string]int64, len(trace.BreakdownNames))
	var total int64
	for _, s := range roots {
		a := trace.AttributeSpan(s)
		st := SlowTxn{
			TraceID:     fmt.Sprintf("%016x", s.TraceID),
			DurationMS:  ms(s.End.Sub(s.Begin)),
			Outcome:     s.Outcome,
			Dominant:    a.Dominant(),
			BreakdownMS: make(map[string]float64, len(trace.BreakdownNames)),
		}
		for name, v := range a.Buckets() {
			totals[name] += v
			total += v
			st.BreakdownMS[name] = ms(time.Duration(v))
		}
		if len(s.Phases) > 0 {
			st.PhasesMS = make(map[string]float64, len(s.Phases))
			for name, ns := range s.Phases {
				st.PhasesMS[name] = ms(time.Duration(ns))
			}
		}
		out.Txns = append(out.Txns, st)
	}
	out.AttributionPct = make(map[string]float64, len(totals))
	for _, name := range trace.BreakdownNames {
		pct := 0.0
		if total > 0 {
			pct = round2(100 * float64(totals[name]) / float64(total))
		}
		out.AttributionPct[name] = pct
	}
	return out
}

// ms converts a duration to float milliseconds, rounded to 3 decimals.
func ms(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// NewPoint converts a probe point to report form.
func NewPoint(p workload.ProbePoint) Point {
	return Point{
		RateQPS:     p.Rate,
		Pass:        p.Pass,
		Overloaded:  p.Overloaded,
		AchievedQPS: round2(p.Achieved),
		Ops:         p.Ops,
		Errors:      p.Errors,
		Dropped:     p.Dropped,
		P50MS:       ms(p.P50),
		P99MS:       ms(p.P99),
		P999MS:      ms(p.P999),
		MaxMS:       ms(p.Max),
	}
}

// NewClusterReport converts a capacity search result to report form.
func NewClusterReport(cfg ClusterConfig, rc RunConfig, res workload.CapacityResult) ClusterReport {
	backend := string(cfg.Backend)
	if backend == "" {
		backend = string(BackendNetsim)
	}
	out := ClusterReport{
		Backend:      backend,
		Participants: cfg.Participants,
		Registers:    cfg.Registers,
		WarmupMS:     ms(rc.Warmup),
		WindowMS:     ms(rc.Window),
		CapacityQPS:  res.Capacity,
		Trajectory:   make([]Point, 0, len(res.Points)),
	}
	for _, p := range res.Points {
		out.Trajectory = append(out.Trajectory, NewPoint(p))
	}
	if res.AtCapacity != nil {
		pt := NewPoint(*res.AtCapacity)
		out.AtCapacity = &pt
	}
	return out
}

// NewClosedVsOpen converts the paired measurement to report form.
func NewClosedVsOpen(backend Backend, co ClosedOpen) *ClosedVsOpen {
	closedP99 := co.Closed.Latency.Percentile(99)
	openP99 := co.Open.Latency.Percentile(99)
	gap := 0.0
	if closedP99 > 0 {
		gap = round2(float64(openP99) / float64(closedP99))
	}
	return &ClosedVsOpen{
		Backend:        string(backend),
		Workers:        co.Workers,
		ClosedQPS:      round2(co.ClosedRate),
		ClosedP50MS:    ms(co.Closed.Latency.Percentile(50)),
		ClosedP99MS:    ms(closedP99),
		OpenOfferedQPS: round2(co.Open.Offered),
		OpenP50MS:      ms(co.Open.Latency.Percentile(50)),
		OpenP99MS:      ms(openP99),
		COGapP99X:      gap,
		Note: "same load, two measurements: closed-loop latency is service time only " +
			"(workers pause arrivals while the system stalls); open-loop latency counts " +
			"from each op's intended arrival, so queueing delay lands in the tail",
	}
}

// Validate checks the report is structurally sound: at least one
// cluster, a positive capacity with its passing point, a non-empty
// trajectory and monotone quantiles at every point. The loadgen smoke
// gate in CI runs this against a fresh BENCH_capacity.json.
func (r *Report) Validate() error {
	if r.Experiment == "" {
		return fmt.Errorf("loadgen: report missing experiment name")
	}
	if r.SLO.Quantile <= 0 || r.SLO.Quantile >= 1 || r.SLO.TargetMS <= 0 {
		return fmt.Errorf("loadgen: bad SLO %+v", r.SLO)
	}
	if len(r.Clusters) == 0 {
		return fmt.Errorf("loadgen: report has no clusters")
	}
	for _, c := range r.Clusters {
		if c.Backend != string(BackendNetsim) && c.Backend != string(BackendTCP) {
			return fmt.Errorf("loadgen: cluster has unknown backend %q", c.Backend)
		}
		if len(c.Trajectory) == 0 {
			return fmt.Errorf("loadgen: %s cluster has an empty trajectory", c.Backend)
		}
		if c.CapacityQPS <= 0 {
			return fmt.Errorf("loadgen: %s cluster reports no sustainable capacity", c.Backend)
		}
		if c.AtCapacity == nil {
			return fmt.Errorf("loadgen: %s cluster has capacity %.0f but no at_capacity point",
				c.Backend, c.CapacityQPS)
		}
		if !c.AtCapacity.Pass || c.AtCapacity.RateQPS != c.CapacityQPS {
			return fmt.Errorf("loadgen: %s at_capacity point %+v does not match capacity %.0f",
				c.Backend, c.AtCapacity, c.CapacityQPS)
		}
		if c.AtCapacity.P99MS > r.SLO.TargetMS {
			return fmt.Errorf("loadgen: %s at_capacity p99 %.3fms exceeds SLO %.3fms",
				c.Backend, c.AtCapacity.P99MS, r.SLO.TargetMS)
		}
		for i, p := range c.Trajectory {
			if p.RateQPS <= 0 || p.Ops < 0 {
				return fmt.Errorf("loadgen: %s trajectory[%d] malformed: %+v", c.Backend, i, p)
			}
			// Quantiles are monotone in q in both exact and histogram
			// mode. MaxMS is excluded: beyond the exact-sample cap the
			// interpolated p999 may legitimately land above the true
			// max (inside its bucket).
			if p.P50MS > p.P99MS || p.P99MS > p.P999MS {
				return fmt.Errorf("loadgen: %s trajectory[%d] quantiles not monotone: %+v",
					c.Backend, i, p)
			}
		}
	}
	if co := r.ClosedVsOpen; co != nil {
		if co.ClosedQPS <= 0 || co.OpenOfferedQPS <= 0 {
			return fmt.Errorf("loadgen: closed_vs_open rates malformed: %+v", co)
		}
	}
	if st := r.SlowTxns; st != nil {
		if st.TriggerRateQPS <= 0 {
			return fmt.Errorf("loadgen: slow_txns has no trigger rate: %+v", st)
		}
		if len(st.Txns) == 0 {
			return fmt.Errorf("loadgen: slow_txns present but captured no transactions")
		}
		for i, t := range st.Txns {
			if t.TraceID == "" || t.DurationMS <= 0 || t.Dominant == "" {
				return fmt.Errorf("loadgen: slow_txns[%d] malformed: %+v", i, t)
			}
			if i > 0 && t.DurationMS > st.Txns[i-1].DurationMS {
				return fmt.Errorf("loadgen: slow_txns not sorted slowest-first at [%d]", i)
			}
		}
		var sum float64
		for name, pct := range st.AttributionPct {
			if pct < 0 || pct > 100 {
				return fmt.Errorf("loadgen: slow_txns attribution %s=%v out of range", name, pct)
			}
			sum += pct
		}
		if sum < 95 || sum > 105 {
			return fmt.Errorf("loadgen: slow_txns attribution sums to %.1f%%, want ~100%%", sum)
		}
	}
	return nil
}

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }

// MachineString mirrors the machine field the other BENCH_*.json
// trajectory files carry.
func MachineString() string {
	model := "unknown CPU"
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, "model name") {
				if i := strings.Index(line, ":"); i >= 0 {
					model = strings.TrimSpace(line[i+1:])
				}
				break
			}
		}
	}
	return fmt.Sprintf("%s, %d logical cores, %s/%s, %s",
		model, runtime.NumCPU(), runtime.GOOS, runtime.GOARCH, runtime.Version())
}
