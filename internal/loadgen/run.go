package loadgen

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"mca/internal/clock"
	"mca/internal/workload"
)

// MixEntry is one parsed op-mix component.
type MixEntry struct {
	Name   string // read, write or transfer
	Weight float64
}

// ParseMix parses a YCSB-style mix spec like
// "read=70,write=20,transfer=10" into entries. Weights are relative;
// at least one must be positive.
func ParseMix(spec string) ([]MixEntry, error) {
	var out []MixEntry
	var total float64
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("loadgen: mix component %q is not name=weight", part)
		}
		name = strings.TrimSpace(name)
		switch name {
		case "read", "write", "transfer":
		default:
			return nil, fmt.Errorf("loadgen: unknown op %q (want read, write or transfer)", name)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("loadgen: bad weight in %q", part)
		}
		total += w
		out = append(out, MixEntry{Name: name, Weight: w})
	}
	if len(out) == 0 || total <= 0 {
		return nil, fmt.Errorf("loadgen: mix %q has no positive weight", spec)
	}
	return out, nil
}

// MixString renders entries back to the canonical spec form.
func MixString(mix []MixEntry) string {
	parts := make([]string, len(mix))
	for i, m := range mix {
		parts[i] = fmt.Sprintf("%s=%g", m.Name, m.Weight)
	}
	return strings.Join(parts, ",")
}

// Classes binds a parsed mix to the cluster's transactions as workload
// op classes. The worker index is unused: every op goes through the
// shared coordinator.
func (c *Cluster) Classes(ctx context.Context, mix []MixEntry) ([]workload.OpClass, error) {
	out := make([]workload.OpClass, len(mix))
	for i, m := range mix {
		var op func(context.Context, uint64) error
		switch m.Name {
		case "read":
			op = c.Read
		case "write":
			op = c.Write
		case "transfer":
			op = c.Transfer
		default:
			return nil, fmt.Errorf("loadgen: unknown op %q", m.Name)
		}
		bound := op
		out[i] = workload.OpClass{
			Name:   m.Name,
			Weight: m.Weight,
			Op:     func(_ int, key uint64) error { return bound(ctx, key) },
		}
	}
	return out, nil
}

// RunConfig parameterises capacity searches and fixed-rate runs
// against a cluster.
type RunConfig struct {
	Mix     []MixEntry
	Keys    workload.KeyDist // default uniform over the registers
	Process workload.ArrivalProcess
	Seed    uint64
	Warmup  time.Duration // default 250ms
	Window  time.Duration // default 1s
	// MaxOutstanding bounds in-flight transactions. Default 128.
	MaxOutstanding int
	SLO            workload.SLO // default p99 <= 50ms
	// Start/Max/BisectIters shape the capacity search (see
	// workload.CapacityConfig). Start defaults to 50/s.
	Start       float64
	Max         float64
	BisectIters int
}

func (rc *RunConfig) setDefaults(c *Cluster) {
	if len(rc.Mix) == 0 {
		rc.Mix = []MixEntry{{Name: "write", Weight: 1}}
	}
	if rc.Keys == nil {
		rc.Keys = workload.UniformKeys{N: uint64(c.cfg.Registers)}
	}
	if rc.Warmup <= 0 {
		rc.Warmup = 250 * time.Millisecond
	}
	if rc.Window <= 0 {
		rc.Window = time.Second
	}
	if rc.MaxOutstanding <= 0 {
		rc.MaxOutstanding = 128
	}
	if rc.SLO.Quantile <= 0 {
		rc.SLO.Quantile = 0.99
	}
	if rc.SLO.Target <= 0 {
		rc.SLO.Target = 50 * time.Millisecond
	}
	if rc.Start <= 0 {
		rc.Start = 50
	}
}

// openConfig builds the open-loop run config for one offered rate.
func (rc *RunConfig) openConfig(classes []workload.OpClass, rate float64, shed bool) workload.OpenConfig {
	return workload.OpenConfig{
		Rate:           rate,
		Warmup:         rc.Warmup,
		Window:         rc.Window,
		Process:        rc.Process,
		Seed:           rc.Seed,
		Mix:            classes,
		Keys:           rc.Keys,
		MaxOutstanding: rc.MaxOutstanding,
		// Overload means the probe rate is already unsustainable;
		// shedding keeps saturated probes from grinding through the
		// whole backlog.
		ShedOnOverload: shed,
	}
}

// RunOpen executes one fixed-rate open-loop run against the cluster.
func (c *Cluster) RunOpen(ctx context.Context, rc RunConfig, rate float64) (workload.OpenResult, error) {
	rc.setDefaults(c)
	classes, err := c.Classes(ctx, rc.Mix)
	if err != nil {
		return workload.OpenResult{}, err
	}
	return workload.RunOpen(rc.openConfig(classes, rate, false)), nil
}

// SearchCapacity ramps and bisects offered load against the cluster,
// returning the capacity-at-SLO trajectory.
func (c *Cluster) SearchCapacity(ctx context.Context, rc RunConfig) (workload.CapacityResult, error) {
	rc.setDefaults(c)
	classes, err := c.Classes(ctx, rc.Mix)
	if err != nil {
		return workload.CapacityResult{}, err
	}
	return workload.SearchCapacity(workload.CapacityConfig{
		SLO:         rc.SLO,
		Start:       rc.Start,
		Max:         rc.Max,
		BisectIters: rc.BisectIters,
		Probe: func(rate float64) (workload.OpenResult, error) {
			if err := ctx.Err(); err != nil {
				return workload.OpenResult{}, err
			}
			res := workload.RunOpen(rc.openConfig(classes, rate, true))
			c.maybeCapture(rc, rate, res)
			return res, nil
		},
	})
}

// slowTxnCaptureK bounds a failed probe's slow-transaction capture.
const slowTxnCaptureK = 8

// maybeCapture snapshots the slowest sampled transactions when a probe
// missed its SLO (tail-latency attribution for the failure); each
// failing probe overwrites the last, so LastCapture reflects the probe
// nearest the capacity boundary.
func (c *Cluster) maybeCapture(rc RunConfig, rate float64, res workload.OpenResult) {
	if c.sampler == nil {
		return
	}
	if res.Latency.Percentile(rc.SLO.Quantile*100) <= rc.SLO.Target {
		return
	}
	if rep := NewSlowTxnsReport(rate, c.SlowRoots(slowTxnCaptureK)); rep != nil {
		c.mu.Lock()
		c.capture = rep
		c.mu.Unlock()
	}
}

// ClosedOpen pairs a closed-loop run with an open-loop run offered the
// closed loop's achieved throughput: the demonstration of coordinated
// omission. The closed loop's latencies are service times (its workers
// wait politely for the system), while the open loop's are measured
// from intended arrivals at the same load — the p99 gap between them
// is the queueing delay closed-loop measurement hides.
type ClosedOpen struct {
	Workers int
	Closed  workload.Result
	// ClosedRate is the closed loop's achieved ops/sec, which the open
	// run then offers.
	ClosedRate float64
	Open       workload.OpenResult
}

// CompareClosedOpen runs the paired measurement on the cluster.
func (c *Cluster) CompareClosedOpen(ctx context.Context, rc RunConfig, workers int) (ClosedOpen, error) {
	rc.setDefaults(c)
	if workers <= 0 {
		workers = 8
	}
	classes, err := c.Classes(ctx, rc.Mix)
	if err != nil {
		return ClosedOpen{}, err
	}
	var total float64
	cum := make([]float64, len(classes))
	for i, cl := range classes {
		total += cl.Weight
		cum[i] = total
	}
	// Per-worker deterministic streams: clock.Rand is not
	// concurrent-safe, so each closed-loop worker draws its own.
	rands := make([]*clock.Rand, workers)
	for w := range rands {
		rands[w] = clock.NewRand(rc.Seed + uint64(w)*0x9E37)
	}
	closed := workload.RunFor(workers, rc.Window, func(w, _ int) error {
		r := rands[w]
		cls := 0
		if len(classes) > 1 {
			x := r.Float64() * total
			for cls < len(cum)-1 && x >= cum[cls] {
				cls++
			}
		}
		var key uint64
		if rc.Keys != nil {
			key = rc.Keys.Pick(r)
		}
		return classes[cls].Op(w, key)
	})
	out := ClosedOpen{Workers: workers, Closed: closed, ClosedRate: closed.Throughput()}
	if out.ClosedRate <= 0 {
		return out, fmt.Errorf("loadgen: closed loop made no progress (%d ops, %d errors)", closed.Ops, closed.Errors)
	}
	out.Open = workload.RunOpen(rc.openConfig(classes, out.ClosedRate, false))
	return out, nil
}
