package bulletin_test

import (
	"errors"
	"testing"
	"time"

	"mca/internal/action"
	"mca/internal/bulletin"
	"mca/internal/colour"
	"mca/internal/lock"
	"mca/internal/object"
	"mca/internal/store"
)

func TestPostSurvivesInvokerAbort(t *testing.T) {
	rt := action.NewRuntime()
	st := store.NewStable()
	board := bulletin.New(rt, object.WithStore(st))

	invoker, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	id, err := board.Post(invoker, "ada", "for sale", "one abacus")
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	if err := invoker.Abort(); err != nil {
		t.Fatal(err)
	}

	postings, err := board.RetrieveAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(postings) != 1 || postings[0].ID != id || postings[0].Withdrawn {
		t.Fatalf("postings = %+v", postings)
	}
	// And it is stable.
	if _, err := st.Read(board.Object().ObjectID()); err != nil {
		t.Fatalf("board not persisted: %v", err)
	}
}

func TestPostDoesNotStayLockedByInvoker(t *testing.T) {
	// The motivation for independent actions: bulletin information
	// must not remain inaccessible while the application runs.
	rt := action.NewRuntime()
	board := bulletin.New(rt)

	invoker, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := board.Post(invoker, "bob", "s", "b"); err != nil {
		t.Fatal(err)
	}

	// A second, unrelated application can read and post while the
	// first is still active.
	other, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	got, err := board.Retrieve(other)
	if err != nil {
		t.Fatalf("Retrieve while invoker active: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("postings = %+v", got)
	}
	if _, err := board.Post(other, "carol", "s2", "b2"); err != nil {
		t.Fatalf("Post while invoker active: %v", err)
	}
	_ = invoker.Abort()
	_ = other.Abort()
}

func TestNestedPostingWouldStayLocked(t *testing.T) {
	// Contrast: a posting nested inside the application action keeps
	// the board locked until the application ends. Bound lock waits
	// so the blocked reader times out instead of hanging.
	rt := action.NewRuntime(action.WithMaxLockWait(30 * time.Millisecond))
	board := bulletin.New(rt)

	invoker, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// A nested (non-independent) board operation holds the board's
	// write lock until the application completes.
	if err := invoker.Lock(board.Object().ObjectID(), lock.Write, colour.None); err != nil {
		t.Fatal(err)
	}

	other, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := board.Retrieve(other); err == nil {
		t.Fatal("board must be locked by the nesting application")
	}
	_ = other.Abort()
	_ = invoker.Abort()
}

func TestPostCompensatedWithdrawsOnAbort(t *testing.T) {
	rt := action.NewRuntime()
	board := bulletin.New(rt)

	invoker, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	id, err := board.PostCompensated(invoker, "ada", "tentative", "might retract")
	if err != nil {
		t.Fatal(err)
	}
	if err := invoker.Abort(); err != nil {
		t.Fatal(err)
	}

	all, err := board.RetrieveAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].ID != id {
		t.Fatalf("postings = %+v", all)
	}
	if !all[0].Withdrawn {
		t.Fatal("compensation must have withdrawn the posting")
	}

	// Visible view hides it.
	reader, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	visible, err := board.Retrieve(reader)
	if err != nil {
		t.Fatal(err)
	}
	if len(visible) != 0 {
		t.Fatalf("visible postings = %+v", visible)
	}
	_ = reader.Abort()
}

func TestPostCompensatedKeptOnCommit(t *testing.T) {
	rt := action.NewRuntime()
	board := bulletin.New(rt)

	invoker, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := board.PostCompensated(invoker, "ada", "final", "stays"); err != nil {
		t.Fatal(err)
	}
	if err := invoker.Commit(); err != nil {
		t.Fatal(err)
	}
	all, err := board.RetrieveAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].Withdrawn {
		t.Fatalf("postings = %+v", all)
	}
}

func TestPostAsync(t *testing.T) {
	rt := action.NewRuntime()
	board := bulletin.New(rt)

	invoker, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	h, err := board.PostAsync(invoker, "eve", "async", "posted in background")
	if err != nil {
		t.Fatal(err)
	}
	if err := invoker.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-h.Done():
		if err := h.Wait(); err != nil {
			t.Fatalf("async post: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("async post never completed")
	}
	all, err := board.RetrieveAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 {
		t.Fatalf("postings = %+v", all)
	}
}

func TestWithdrawUnknown(t *testing.T) {
	rt := action.NewRuntime()
	board := bulletin.New(rt)
	invoker, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := board.Withdraw(invoker, 42); !errors.Is(err, bulletin.ErrNotFound) {
		t.Fatalf("Withdraw = %v, want ErrNotFound", err)
	}
	_ = invoker.Abort()
}

func TestPostIDsAreSequential(t *testing.T) {
	rt := action.NewRuntime()
	board := bulletin.New(rt)
	invoker, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for want := 1; want <= 3; want++ {
		id, err := board.Post(invoker, "a", "s", "b")
		if err != nil {
			t.Fatal(err)
		}
		if id != want {
			t.Fatalf("id = %d, want %d", id, want)
		}
	}
	_ = invoker.Abort()
}

func TestBoardReloadsFromStableStore(t *testing.T) {
	rt := action.NewRuntime()
	st := store.NewStable()
	board := bulletin.New(rt, object.WithStore(st))

	invoker, err := rt.Begin()
	if err != nil {
		t.Fatal(err)
	}
	id, err := board.Post(invoker, "ada", "durable", "survives crashes")
	if err != nil {
		t.Fatal(err)
	}
	_ = invoker.Commit()

	st.Crash()
	st.Recover()

	// A fresh board instance activated from the store sees the post.
	reloaded, err := object.Load[struct {
		NextID   int                `json:"nextId"`
		Postings []bulletin.Posting `json:"postings"`
	}](board.Object().ObjectID(), st)
	if err != nil {
		t.Fatal(err)
	}
	state := reloaded.Peek()
	if len(state.Postings) != 1 || state.Postings[0].ID != id {
		t.Fatalf("recovered board = %+v", state)
	}
	if state.NextID != id+1 {
		t.Fatalf("NextID = %d", state.NextID)
	}
}
