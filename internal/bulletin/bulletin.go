// Package bulletin implements the paper's example (i): a bulletin board
// whose post and retrieve operations run as top-level independent
// actions. Nesting board operations inside application actions would
// keep bulletin information locked (inaccessible) for the application's
// whole lifetime; independent invocation releases it immediately, and a
// posting whose invoking action later aborts is compensated by a
// withdrawal — "this is consistent with the manner in which bulletin
// boards are used".
package bulletin

import (
	"errors"
	"fmt"

	"mca/internal/action"
	"mca/internal/object"
	"mca/internal/structures"
)

// ErrNotFound is returned for operations on unknown posting identifiers.
var ErrNotFound = errors.New("bulletin: posting not found")

// Posting is one board entry.
type Posting struct {
	ID        int    `json:"id"`
	Author    string `json:"author"`
	Subject   string `json:"subject"`
	Body      string `json:"body"`
	Withdrawn bool   `json:"withdrawn"`
}

// boardState is the persistent state of a board.
type boardState struct {
	NextID   int       `json:"nextId"`
	Postings []Posting `json:"postings"`
}

// Board is a bulletin board backed by one managed object.
type Board struct {
	rt  *action.Runtime
	obj *object.Managed[boardState]
}

// New creates a board. Pass object options (e.g. object.WithStore) to
// make it persistent.
func New(rt *action.Runtime, opts ...object.Option) *Board {
	return &Board{
		rt:  rt,
		obj: object.New(boardState{NextID: 1}, opts...),
	}
}

// Object exposes the underlying managed object (for lock introspection
// in tests).
func (b *Board) Object() *object.Managed[boardState] { return b.obj }

// Post publishes a posting as a synchronous top-level independent action
// invoked from within the given application action: the posting is
// permanent and visible immediately, regardless of the invoker's fate.
func (b *Board) Post(invoker *action.Action, author, subject, body string) (int, error) {
	var id int
	err := structures.RunIndependent(invoker, func(a *action.Action) error {
		return b.post(a, author, subject, body, &id)
	})
	if err != nil {
		return 0, err
	}
	return id, nil
}

// PostCompensated is Post plus automatic compensation: if the invoking
// action ends up aborting, the posting is withdrawn by a compensating
// top-level action (paper §3.4 leaves general compensation to future
// research; this is the application-specific form example (i) calls
// for).
func (b *Board) PostCompensated(invoker *action.Action, author, subject, body string) (int, error) {
	id, err := b.Post(invoker, author, subject, body)
	if err != nil {
		return 0, err
	}
	invoker.OnCompletion(func(st action.Status) {
		if st != action.Aborted {
			return
		}
		// Compensating top-level action.
		_ = b.rt.Run(func(a *action.Action) error {
			return b.withdraw(a, id)
		})
	})
	return id, nil
}

// PostAsync publishes asynchronously (fig 7b): the invoker continues at
// once; the handle reports the outcome.
func (b *Board) PostAsync(invoker *action.Action, author, subject, body string) (*structures.Handle, error) {
	return structures.SpawnIndependent(invoker, func(a *action.Action) error {
		var id int
		return b.post(a, author, subject, body, &id)
	})
}

func (b *Board) post(a *action.Action, author, subject, body string, id *int) error {
	return b.obj.Write(a, func(s *boardState) error {
		*id = s.NextID
		s.NextID++
		s.Postings = append(s.Postings, Posting{
			ID:      *id,
			Author:  author,
			Subject: subject,
			Body:    body,
		})
		return nil
	})
}

// Withdraw marks a posting withdrawn, as a top-level independent action
// invoked from the given application action.
func (b *Board) Withdraw(invoker *action.Action, id int) error {
	return structures.RunIndependent(invoker, func(a *action.Action) error {
		return b.withdraw(a, id)
	})
}

func (b *Board) withdraw(a *action.Action, id int) error {
	return b.obj.Write(a, func(s *boardState) error {
		for i := range s.Postings {
			if s.Postings[i].ID == id {
				s.Postings[i].Withdrawn = true
				return nil
			}
		}
		return fmt.Errorf("%w: %d", ErrNotFound, id)
	})
}

// Retrieve returns the visible (non-withdrawn) postings, read under a
// top-level independent action.
func (b *Board) Retrieve(invoker *action.Action) ([]Posting, error) {
	var out []Posting
	err := structures.RunIndependent(invoker, func(a *action.Action) error {
		return b.obj.Read(a, func(s boardState) error {
			for _, p := range s.Postings {
				if !p.Withdrawn {
					out = append(out, p)
				}
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RetrieveAll returns every posting including withdrawn ones, under a
// fresh top-level action (for audits and tests).
func (b *Board) RetrieveAll() ([]Posting, error) {
	var out []Posting
	err := b.rt.Run(func(a *action.Action) error {
		return b.obj.Read(a, func(s boardState) error {
			out = append(out, s.Postings...)
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
