package workload

import (
	"math"

	"mca/internal/clock"
)

// KeyDist picks keys for generated operations. Implementations draw
// from the schedule's seeded clock.Rand, so a fixed seed reproduces
// the exact key sequence.
type KeyDist interface {
	// Pick returns the next key in [0, N) for the distribution.
	Pick(r *clock.Rand) uint64
}

// UniformKeys picks keys uniformly from [0, N).
type UniformKeys struct{ N uint64 }

// Pick implements KeyDist.
func (u UniformKeys) Pick(r *clock.Rand) uint64 {
	if u.N == 0 {
		return 0
	}
	return r.Uint64() % u.N
}

// Zipf picks keys from [0, n) with frequency proportional to
// 1/(rank+1)^theta — key 0 is the hottest. This is the YCSB-style
// skewed access pattern (Gray et al.'s "quickly generating
// billion-record" rejection-free algorithm), the standard model for
// hot-key storms; theta 0.99 is the YCSB default.
type Zipf struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
}

// NewZipf builds a Zipfian distribution over [0, n) with skew theta in
// (0, 1). n must be positive.
func NewZipf(n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("workload: NewZipf with n == 0")
	}
	if theta <= 0 || theta >= 1 {
		panic("workload: NewZipf theta must be in (0, 1)")
	}
	zetan := zeta(n, theta)
	z := &Zipf{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		eta:   (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/zetan),
	}
	return z
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Pick implements KeyDist.
func (z *Zipf) Pick(r *clock.Rand) uint64 {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	k := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.n {
		k = z.n - 1
	}
	return k
}
