package workload

import (
	"math"
	"time"
)

// SLO is a latency service-level objective: the q-quantile of
// open-loop latency (measured from intended arrival times) must stay
// at or below Target.
type SLO struct {
	Quantile float64 // e.g. 0.99 for p99
	Target   time.Duration
}

// CapacityConfig configures a capacity-at-SLO search.
type CapacityConfig struct {
	SLO SLO
	// Start is the first probed rate; Max caps the ramp. Defaults:
	// 100/s and 1024*Start.
	Start float64
	Max   float64
	// BisectIters refines the capacity bracket after the ramp;
	// each iteration halves the bracket. Default 5.
	BisectIters int
	// MaxErrorRate is the fraction of measured ops allowed to error
	// at a passing point. Default 0.01.
	MaxErrorRate float64
	// Probe runs one open-loop measurement at the given offered rate.
	Probe func(rate float64) (OpenResult, error)
}

// ProbePoint is one measured point of the capacity trajectory.
type ProbePoint struct {
	Rate       float64
	Pass       bool
	Overloaded bool
	Achieved   float64
	Ops        int
	Errors     int
	Dropped    int
	P50        time.Duration
	P99        time.Duration
	P999       time.Duration
	Max        time.Duration
}

// CapacityResult is the outcome of a capacity-at-SLO search.
type CapacityResult struct {
	SLO SLO
	// Capacity is the highest probed rate that met the SLO (0 when
	// even the lowest probe failed).
	Capacity float64
	// Points records every probe in the order taken — the trajectory.
	Points []ProbePoint
	// AtCapacity is the passing point at Capacity.
	AtCapacity *ProbePoint
}

// SearchCapacity finds the maximum sustained offered rate whose
// open-loop latency still meets the SLO: ramp by doubling from Start
// until a probe fails (or Max passes), then bisect the bracket. A
// probe passes when it is not overloaded, shed nothing, erred on at
// most MaxErrorRate of its ops, and its SLO-quantile latency is within
// target. Probes run coolest-first during the ramp, so the system
// under test warms up on sustainable load before saturation probes.
func SearchCapacity(cfg CapacityConfig) (CapacityResult, error) {
	if cfg.Probe == nil {
		panic("workload: SearchCapacity needs a Probe")
	}
	if cfg.Start <= 0 {
		cfg.Start = 100
	}
	if cfg.Max < cfg.Start {
		cfg.Max = cfg.Start * 1024
	}
	if cfg.BisectIters <= 0 {
		cfg.BisectIters = 5
	}
	if cfg.MaxErrorRate <= 0 {
		cfg.MaxErrorRate = 0.01
	}
	res := CapacityResult{SLO: cfg.SLO}
	probe := func(rate float64) (ProbePoint, error) {
		or, err := cfg.Probe(rate)
		if err != nil {
			return ProbePoint{}, err
		}
		pt := ProbePoint{
			Rate:       rate,
			Overloaded: or.Overloaded,
			Achieved:   or.Achieved,
			Ops:        or.Ops,
			Errors:     or.Errors,
			Dropped:    or.Dropped,
			P50:        or.Latency.Percentile(50),
			P99:        or.Latency.Percentile(99),
			P999:       or.Latency.Percentile(99.9),
			Max:        or.Latency.Max(),
		}
		atSLO := or.Latency.Percentile(cfg.SLO.Quantile * 100)
		pt.Pass = !or.Overloaded && or.Dropped == 0 && or.Ops > 0 &&
			float64(or.Errors) <= cfg.MaxErrorRate*float64(or.Ops) &&
			atSLO <= cfg.SLO.Target
		res.Points = append(res.Points, pt)
		if pt.Pass && rate > res.Capacity {
			res.Capacity = rate
			keep := pt
			res.AtCapacity = &keep
		}
		return pt, nil
	}

	// Ramp up by doubling until the SLO breaks or Max passes.
	rate := cfg.Start
	var lo, hi float64 // highest passing rate, lowest failing rate
	for {
		pt, err := probe(rate)
		if err != nil {
			return res, err
		}
		if !pt.Pass {
			hi = rate
			break
		}
		lo = rate
		if rate >= cfg.Max {
			return res, nil
		}
		rate = math.Min(rate*2, cfg.Max)
	}

	// Even the first probe failed: halve toward zero looking for any
	// sustainable rate to anchor the bracket.
	for i := 0; lo == 0 && i < 8; i++ {
		hi = rate
		rate /= 2
		if rate < 1 {
			return res, nil // nothing sustains the SLO
		}
		pt, err := probe(rate)
		if err != nil {
			return res, err
		}
		if pt.Pass {
			lo = rate
		}
	}
	if lo == 0 {
		return res, nil
	}

	for i := 0; i < cfg.BisectIters; i++ {
		pt, err := probe((lo + hi) / 2)
		if err != nil {
			return res, err
		}
		if pt.Pass {
			lo = pt.Rate
		} else {
			hi = pt.Rate
		}
	}
	return res, nil
}
