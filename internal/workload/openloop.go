package workload

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mca/internal/clock"
)

// ArrivalProcess selects how the open-loop schedule spaces arrivals.
type ArrivalProcess int

const (
	// ArrivalPoisson draws i.i.d. exponential inter-arrival gaps with
	// mean 1/Rate — the memoryless arrival stream of independent
	// clients, and the default.
	ArrivalPoisson ArrivalProcess = iota
	// ArrivalUniform spaces arrivals exactly 1/Rate apart (wrk2-style
	// fixed pacing): no burstiness, useful for calibration runs.
	ArrivalUniform
)

// String renders the process name for reports.
func (p ArrivalProcess) String() string {
	if p == ArrivalUniform {
		return "uniform"
	}
	return "poisson"
}

// OpClass is one operation class in a YCSB-style mix: a name for
// per-class reporting, a relative weight, and the op itself. The op
// receives the issuing worker index and the scheduled key.
type OpClass struct {
	Name   string
	Weight float64
	Op     func(worker int, key uint64) error
}

// Arrival is one scheduled operation: the offset from the start of the
// run at which it is *intended* to begin, its op class and its key.
// The schedule is fixed before the run starts and never reacts to the
// system under test — that independence is what makes the measurement
// open-loop.
type Arrival struct {
	At    time.Duration
	Class int
	Key   uint64
}

// OpenConfig configures one open-loop run.
type OpenConfig struct {
	// Rate is the offered load in arrivals per second. Required.
	Rate float64
	// Warmup is discarded from statistics (ops still execute).
	Warmup time.Duration
	// Window is the measured interval after warmup. Required.
	Window time.Duration
	// Process selects Poisson (default) or uniform arrivals.
	Process ArrivalProcess
	// Seed determines the whole schedule — arrival gaps, class draws
	// and keys. The same seed replays the same schedule.
	Seed uint64
	// Mix is the op classes with their weights. Required, non-empty.
	Mix []OpClass
	// Keys picks each arrival's key; nil schedules key 0 throughout.
	Keys KeyDist
	// MaxOutstanding bounds concurrently executing ops (the issuing
	// worker pool). Arrivals beyond the bound queue against their
	// intended start times, so their wait shows up as latency rather
	// than being omitted. Default 256.
	MaxOutstanding int
	// MaxLag is the overload detector: when the generator falls more
	// than this far behind the arrival schedule (every worker busy,
	// backlog growing), the run is flagged Overloaded. Default 250ms.
	MaxLag time.Duration
	// ShedOnOverload abandons the remaining schedule once overloaded
	// (arrivals are counted as Dropped instead of executed), so
	// capacity probes far past saturation return quickly instead of
	// grinding through the whole backlog.
	ShedOnOverload bool
	// Clock overrides the package clock for this run (a clock.Fake
	// makes the run fully virtual). Default SetClock's value.
	Clock clock.Clock
}

// BuildSchedule generates the run's deterministic arrival schedule:
// every gap, class draw and key comes from one splitmix64 stream
// seeded with cfg.Seed, so two runs with the same config execute the
// identical op sequence.
func BuildSchedule(cfg OpenConfig) []Arrival {
	if cfg.Rate <= 0 {
		panic("workload: open-loop schedule needs a positive rate")
	}
	if len(cfg.Mix) == 0 {
		panic("workload: open-loop schedule needs at least one op class")
	}
	r := clock.NewRand(cfg.Seed)
	cum := make([]float64, len(cfg.Mix))
	var total float64
	for i, oc := range cfg.Mix {
		if oc.Weight < 0 {
			panic(fmt.Sprintf("workload: op class %q has negative weight", oc.Name))
		}
		total += oc.Weight
		cum[i] = total
	}
	if total <= 0 {
		panic("workload: op mix has no positive weight")
	}
	horizon := float64(cfg.Warmup + cfg.Window)
	gap := float64(time.Second) / cfg.Rate
	out := make([]Arrival, 0, int(horizon/gap)+16)
	var at float64
	for {
		if cfg.Process == ArrivalUniform {
			at += gap
		} else {
			at += gap * r.ExpFloat64()
		}
		if at >= horizon {
			return out
		}
		cls := 0
		if len(cfg.Mix) > 1 {
			x := r.Float64() * total
			for cls < len(cum)-1 && x >= cum[cls] {
				cls++
			}
		}
		var key uint64
		if cfg.Keys != nil {
			key = cfg.Keys.Pick(r)
		}
		out = append(out, Arrival{At: time.Duration(at), Class: cls, Key: key})
	}
}

// OpenResult summarises one open-loop run. All statistics cover the
// measured window only (warmup ops execute but are discarded).
type OpenResult struct {
	// Offered is the configured arrival rate.
	Offered float64
	// Achieved is completed error-free ops per second of the measured
	// interval, stretched to include backlog drain time — under
	// overload it falls below Offered.
	Achieved float64
	Ops      int // measured ops executed (including errored ones)
	Errors   int
	Dropped  int // measured arrivals shed after overload
	// Elapsed is the time from the end of warmup until the last op
	// completed (>= Window; larger means the run could not keep up).
	Elapsed time.Duration
	// Latency is measured from each op's *intended* arrival time, so
	// scheduling backlog counts toward the tail instead of being
	// coordinated-omitted.
	Latency  *Latencies
	PerClass map[string]*Latencies
	ErrKinds map[string]int
	// MaxLag is the furthest the generator fell behind the schedule.
	MaxLag time.Duration
	// Overloaded reports the lag bound was exceeded: the offered rate
	// is not sustainable.
	Overloaded bool
}

// String renders a one-line summary for experiment tables.
func (r OpenResult) String() string {
	state := ""
	if r.Overloaded {
		state = " OVERLOADED"
	}
	return fmt.Sprintf("offered=%.0f/s achieved=%.0f/s ops=%d errs=%d dropped=%d p50=%v p99=%v p999=%v%s",
		r.Offered, r.Achieved, r.Ops, r.Errors, r.Dropped,
		r.Latency.Percentile(50).Round(time.Microsecond),
		r.Latency.Percentile(99).Round(time.Microsecond),
		r.Latency.Percentile(99.9).Round(time.Microsecond), state)
}

// RunOpen executes one open-loop run: a pool of MaxOutstanding workers
// consumes the precomputed arrival schedule, each op sleeping until
// its intended start (or beginning immediately if the schedule is
// already behind) and recording latency from that intended start. The
// measurement is coordinated-omission-free: a stalled system delays
// completions, not arrivals, so queueing delay lands in the recorded
// tail exactly as a real client would observe it.
func RunOpen(cfg OpenConfig) OpenResult {
	c := cfg.Clock
	if c == nil {
		c = currentClock()
	}
	if cfg.Window <= 0 {
		panic("workload: RunOpen needs a positive window")
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 256
	}
	if cfg.MaxLag <= 0 {
		cfg.MaxLag = 250 * time.Millisecond
	}
	sched := BuildSchedule(cfg)

	res := OpenResult{
		Offered:  cfg.Rate,
		Latency:  &Latencies{},
		PerClass: make(map[string]*Latencies, len(cfg.Mix)),
		ErrKinds: make(map[string]int),
	}
	byClass := make([]*Latencies, len(cfg.Mix))
	for i, oc := range cfg.Mix {
		l := res.PerClass[oc.Name]
		if l == nil {
			l = &Latencies{}
			res.PerClass[oc.Name] = l
		}
		byClass[i] = l
	}

	var (
		next       atomic.Int64
		maxLag     atomic.Int64
		overloaded atomic.Bool
		mu         sync.Mutex
		wg         sync.WaitGroup
	)
	start := c.Now()
	measureStart := start.Add(cfg.Warmup)
	for w := 0; w < cfg.MaxOutstanding; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(sched) {
					return
				}
				a := sched[i]
				target := start.Add(a.At)
				measured := !target.Before(measureStart)
				if cfg.ShedOnOverload && overloaded.Load() {
					// Already overloaded: drain the rest of the
					// schedule without pacing, so a hopeless probe
					// ends now instead of at the horizon.
					if measured {
						mu.Lock()
						res.Dropped++
						mu.Unlock()
					}
					continue
				}
				if wait := target.Sub(c.Now()); wait > 0 {
					c.Sleep(wait)
				} else if lag := -wait; lag > 0 {
					for {
						old := maxLag.Load()
						if int64(lag) <= old || maxLag.CompareAndSwap(old, int64(lag)) {
							break
						}
					}
					if lag > cfg.MaxLag {
						overloaded.Store(true)
					}
				}
				if cfg.ShedOnOverload && overloaded.Load() {
					if measured {
						mu.Lock()
						res.Dropped++
						mu.Unlock()
					}
					continue
				}
				err := cfg.Mix[a.Class].Op(w, a.Key)
				lat := c.Since(target)
				if !measured {
					continue
				}
				res.Latency.Add(lat)
				byClass[a.Class].Add(lat)
				mu.Lock()
				res.Ops++
				if err != nil {
					res.Errors++
					res.ErrKinds[errKind(err)]++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.MaxLag = time.Duration(maxLag.Load())
	res.Overloaded = overloaded.Load()
	elapsed := c.Since(measureStart)
	if elapsed < cfg.Window {
		elapsed = cfg.Window
	}
	res.Elapsed = elapsed
	res.Achieved = float64(res.Ops-res.Errors) / elapsed.Seconds()
	return res
}
