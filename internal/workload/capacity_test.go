package workload

import (
	"errors"
	"testing"
	"time"
)

// syntheticProbe models a system with a hard capacity knee: p99 is 1ms
// up to `knee` offered load and 100ms beyond it.
func syntheticProbe(knee float64) func(rate float64) (OpenResult, error) {
	return func(rate float64) (OpenResult, error) {
		lat := &Latencies{}
		base := time.Millisecond
		if rate > knee {
			base = 100 * time.Millisecond
		}
		for i := 0; i < 100; i++ {
			lat.Add(base)
		}
		return OpenResult{Offered: rate, Achieved: rate, Ops: 100, Latency: lat}, nil
	}
}

func TestSearchCapacityConvergesOnKnee(t *testing.T) {
	res, err := SearchCapacity(CapacityConfig{
		SLO:   SLO{Quantile: 0.99, Target: 10 * time.Millisecond},
		Start: 100,
		Probe: syntheticProbe(1000),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ramp passes 100..800, fails 1600; five bisections tighten the
	// bracket onto the knee: (800+1600)/2=1200 fail, 1000 pass, then
	// 1100/1050/1025 fail, leaving capacity exactly at 1000.
	if res.Capacity != 1000 {
		t.Fatalf("Capacity = %v, want 1000", res.Capacity)
	}
	if res.AtCapacity == nil || !res.AtCapacity.Pass || res.AtCapacity.Rate != 1000 {
		t.Fatalf("AtCapacity = %+v", res.AtCapacity)
	}
	if res.AtCapacity.P99 != time.Millisecond {
		t.Fatalf("AtCapacity.P99 = %v, want 1ms", res.AtCapacity.P99)
	}
	if len(res.Points) != 10 {
		t.Fatalf("trajectory has %d points, want 10 (5 ramp + 5 bisect)", len(res.Points))
	}
	for i := 1; i < 5; i++ {
		if res.Points[i].Rate != res.Points[i-1].Rate*2 {
			t.Fatalf("ramp not doubling: %+v", res.Points[:5])
		}
	}
}

func TestSearchCapacityNothingSustains(t *testing.T) {
	res, err := SearchCapacity(CapacityConfig{
		SLO:   SLO{Quantile: 0.99, Target: 10 * time.Millisecond},
		Start: 100,
		Probe: func(rate float64) (OpenResult, error) {
			lat := &Latencies{}
			lat.Add(time.Second)
			return OpenResult{Offered: rate, Ops: 1, Overloaded: true, Latency: lat}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Capacity != 0 {
		t.Fatalf("Capacity = %v, want 0 when every probe is overloaded", res.Capacity)
	}
	if res.AtCapacity != nil {
		t.Fatalf("AtCapacity = %+v, want nil", res.AtCapacity)
	}
	if len(res.Points) == 0 {
		t.Fatal("no probes recorded")
	}
}

func TestSearchCapacityStopsAtMax(t *testing.T) {
	res, err := SearchCapacity(CapacityConfig{
		SLO:   SLO{Quantile: 0.99, Target: 10 * time.Millisecond},
		Start: 100,
		Max:   800,
		Probe: syntheticProbe(1e12),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Capacity != 800 {
		t.Fatalf("Capacity = %v, want Max=800 when everything passes", res.Capacity)
	}
	if len(res.Points) != 4 {
		t.Fatalf("trajectory has %d points, want 4 (100,200,400,800)", len(res.Points))
	}
}

func TestSearchCapacityErrorBudget(t *testing.T) {
	// A probe erring on 5% of ops must fail the default 1% error budget
	// even with perfect latency.
	res, err := SearchCapacity(CapacityConfig{
		SLO:   SLO{Quantile: 0.99, Target: time.Second},
		Start: 100,
		Probe: func(rate float64) (OpenResult, error) {
			lat := &Latencies{}
			for i := 0; i < 100; i++ {
				lat.Add(time.Millisecond)
			}
			return OpenResult{Offered: rate, Ops: 100, Errors: 5, Latency: lat}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Capacity != 0 {
		t.Fatalf("Capacity = %v, want 0 with 5%% errors against 1%% budget", res.Capacity)
	}
}

func TestSearchCapacityPropagatesProbeError(t *testing.T) {
	boom := errors.New("cluster fell over")
	_, err := SearchCapacity(CapacityConfig{
		SLO:   SLO{Quantile: 0.99, Target: time.Millisecond},
		Probe: func(rate float64) (OpenResult, error) { return OpenResult{}, boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}
