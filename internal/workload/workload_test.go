package workload

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCountsOpsAndErrors(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	res := Run(4, 10, func(w, i int) error {
		calls.Add(1)
		if i%2 == 1 {
			return boom
		}
		return nil
	})
	if res.Ops != 40 {
		t.Fatalf("Ops = %d", res.Ops)
	}
	if res.Errors != 20 {
		t.Fatalf("Errors = %d", res.Errors)
	}
	if calls.Load() != 40 {
		t.Fatalf("calls = %d", calls.Load())
	}
	if res.Latency.Count() != 40 {
		t.Fatalf("latency samples = %d", res.Latency.Count())
	}
	if res.ErrKinds["boom"] != 20 {
		t.Fatalf("ErrKinds = %v", res.ErrKinds)
	}
	if res.Throughput() <= 0 {
		t.Fatalf("Throughput = %f", res.Throughput())
	}
}

func TestRunForStopsAtDeadline(t *testing.T) {
	start := time.Now()
	res := RunFor(2, 50*time.Millisecond, func(w, i int) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("RunFor overran: %v", elapsed)
	}
	if res.Ops == 0 {
		t.Fatal("no ops recorded")
	}
}

func TestLatenciesStatistics(t *testing.T) {
	l := &Latencies{}
	for i := 1; i <= 100; i++ {
		l.Add(time.Duration(i) * time.Millisecond)
	}
	if got := l.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("Mean = %v", got)
	}
	if got := l.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := l.Percentile(99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := l.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
}

func TestLatenciesEmpty(t *testing.T) {
	l := &Latencies{}
	if l.Mean() != 0 || l.Percentile(50) != 0 || l.Count() != 0 {
		t.Fatal("empty latencies must be all zero")
	}
}

func TestGaugeHighWaterMark(t *testing.T) {
	var g Gauge
	g.Enter()
	g.Enter()
	g.Enter()
	g.Exit()
	g.Enter()
	if got := g.Max(); got != 3 {
		t.Fatalf("Max = %d, want 3", got)
	}
}

func TestResultString(t *testing.T) {
	res := Run(1, 1, func(int, int) error { return nil })
	if s := res.String(); s == "" {
		t.Fatal("empty summary")
	}
}
