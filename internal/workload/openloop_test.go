package workload

import (
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"mca/internal/clock"
)

// driveFake runs fn while advancing the fake clock in fixed steps, but
// only when at least `parked` sleepers are pending — the lockstep
// discipline that makes virtual-time runs deterministic: time moves
// only when every worker is blocked on it.
func driveFake(t *testing.T, f *clock.Fake, parked int, step time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	deadline := time.Now().Add(30 * time.Second)
	for {
		select {
		case <-done:
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("driveFake: run did not finish (workers never all parked?)")
		}
		if f.Pending() >= parked {
			f.Advance(step)
		} else {
			runtime.Gosched()
		}
	}
}

func TestBuildSchedulePoissonDeterministic(t *testing.T) {
	cfg := OpenConfig{
		Rate:   500,
		Window: 2 * time.Second,
		Seed:   42,
		Mix: []OpClass{
			{Name: "read", Weight: 70},
			{Name: "write", Weight: 30},
		},
		Keys: UniformKeys{N: 64},
	}
	a := BuildSchedule(cfg)
	b := BuildSchedule(cfg)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	cfg.Seed = 43
	c := BuildSchedule(cfg)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced the identical schedule")
	}
	// ~1000 Poisson arrivals expected; stddev ~32, allow 5 sigma.
	if len(a) < 840 || len(a) > 1160 {
		t.Fatalf("Poisson arrival count %d far from expected 1000", len(a))
	}
	// Class draws should roughly match the 70/30 mix.
	var reads int
	for _, ar := range a {
		if ar.At < 0 || ar.At >= cfg.Warmup+cfg.Window {
			t.Fatalf("arrival %v outside horizon", ar.At)
		}
		if ar.Key >= 64 {
			t.Fatalf("key %d outside distribution", ar.Key)
		}
		if ar.Class == 0 {
			reads++
		}
	}
	frac := float64(reads) / float64(len(a))
	if frac < 0.6 || frac > 0.8 {
		t.Fatalf("read fraction %.2f far from 0.70", frac)
	}
}

func TestBuildScheduleUniformSpacing(t *testing.T) {
	cfg := OpenConfig{
		Rate:    1000,
		Window:  50 * time.Millisecond,
		Process: ArrivalUniform,
		Mix:     []OpClass{{Name: "op", Weight: 1}},
	}
	sched := BuildSchedule(cfg)
	if len(sched) != 49 {
		t.Fatalf("len = %d, want 49 (1ms spacing, horizon-exclusive)", len(sched))
	}
	for i, a := range sched {
		want := time.Duration(i+1) * time.Millisecond
		if a.At != want {
			t.Fatalf("arrival %d at %v, want %v", i, a.At, want)
		}
	}
}

func TestRunForFakeClockExactWindow(t *testing.T) {
	f := clock.NewFake()
	SetClock(f)
	defer SetClock(clock.Real())

	const workers = 2
	var res Result
	driveFake(t, f, workers, time.Millisecond, func() {
		res = RunFor(workers, 50*time.Millisecond, func(w, i int) error {
			f.Sleep(time.Millisecond)
			return nil
		})
	})
	// Each worker fits exactly 50 one-millisecond ops in the window and
	// the last completes precisely at the deadline: virtual time makes
	// the window edge exact, not approximate.
	if res.Ops != workers*50 {
		t.Fatalf("Ops = %d, want %d", res.Ops, workers*50)
	}
	if res.Elapsed != 50*time.Millisecond {
		t.Fatalf("Elapsed = %v, want exactly 50ms", res.Elapsed)
	}
	if got := res.Latency.Percentile(99); got != time.Millisecond {
		t.Fatalf("closed-loop p99 = %v, want 1ms", got)
	}
}

func TestRunOpenMeasuresFromIntendedArrival(t *testing.T) {
	// Offered 1000/s with a 5ms service time and one worker: the system
	// can only serve 200/s, so a backlog builds. Closed-loop measurement
	// would report every op at ~5ms (coordinated omission); open-loop
	// latency is taken from each op's intended arrival, so the queueing
	// delay must dominate the tail.
	run := func() OpenResult {
		f := clock.NewFake()
		var res OpenResult
		driveFake(t, f, 1, time.Millisecond, func() {
			res = RunOpen(OpenConfig{
				Rate:           1000,
				Window:         50 * time.Millisecond,
				Process:        ArrivalUniform,
				Mix:            []OpClass{{Name: "op", Weight: 1, Op: func(w int, k uint64) error { f.Sleep(5 * time.Millisecond); return nil }}},
				MaxOutstanding: 1,
				MaxLag:         time.Second, // keep the run un-shed
				Clock:          f,
			})
		})
		return res
	}
	res := run()
	if res.Ops != 49 {
		t.Fatalf("Ops = %d, want 49", res.Ops)
	}
	if res.Overloaded {
		t.Fatal("MaxLag=1s run unexpectedly flagged overloaded")
	}
	if res.MaxLag < 100*time.Millisecond {
		t.Fatalf("MaxLag = %v, want >= 100ms of schedule lag", res.MaxLag)
	}
	// Service time is 5ms; queueing pushes the intended-arrival tail two
	// orders of magnitude past it.
	if p99 := res.Latency.Percentile(99); p99 < 100*time.Millisecond {
		t.Fatalf("open-loop p99 = %v, want >= 100ms (queueing must count)", p99)
	}
	if p50 := res.Latency.Percentile(50); p50 < 50*time.Millisecond {
		t.Fatalf("open-loop p50 = %v, want >= 50ms", p50)
	}
	if res.Elapsed <= 50*time.Millisecond {
		t.Fatalf("Elapsed = %v, want > window (backlog drain)", res.Elapsed)
	}
	if res.Achieved >= res.Offered/2 {
		t.Fatalf("Achieved = %.0f/s, want well under offered %.0f/s", res.Achieved, res.Offered)
	}

	// The whole virtual run is deterministic: replaying it yields the
	// identical statistics.
	res2 := run()
	if res.Ops != res2.Ops ||
		res.Latency.Percentile(50) != res2.Latency.Percentile(50) ||
		res.Latency.Percentile(99) != res2.Latency.Percentile(99) ||
		res.MaxLag != res2.MaxLag {
		t.Fatalf("virtual replay diverged: %v vs %v", res, res2)
	}
}

func TestRunOpenShedsOnOverload(t *testing.T) {
	f := clock.NewFake()
	cfg := OpenConfig{
		Rate:           1000,
		Window:         50 * time.Millisecond,
		Process:        ArrivalUniform,
		Mix:            []OpClass{{Name: "op", Weight: 1, Op: func(w int, k uint64) error { f.Sleep(5 * time.Millisecond); return nil }}},
		MaxOutstanding: 1,
		MaxLag:         10 * time.Millisecond,
		ShedOnOverload: true,
		Clock:          f,
	}
	total := len(BuildSchedule(cfg))
	var res OpenResult
	driveFake(t, f, 1, time.Millisecond, func() {
		res = RunOpen(cfg)
	})
	if !res.Overloaded {
		t.Fatal("run at 5x capacity with MaxLag=10ms not flagged overloaded")
	}
	if res.Dropped == 0 {
		t.Fatal("overloaded shedding run dropped nothing")
	}
	if res.Ops+res.Dropped != total {
		t.Fatalf("Ops(%d) + Dropped(%d) != scheduled %d", res.Ops, res.Dropped, total)
	}
}

func TestRunOpenPerClassAndErrors(t *testing.T) {
	f := clock.NewFake()
	var res OpenResult
	boom := func(w int, k uint64) error { f.Sleep(time.Millisecond); return errTest }
	ok := func(w int, k uint64) error { f.Sleep(time.Millisecond); return nil }
	driveFake(t, f, 1, time.Millisecond, func() {
		res = RunOpen(OpenConfig{
			Rate:           100,
			Window:         200 * time.Millisecond,
			Seed:           7,
			Mix:            []OpClass{{Name: "good", Weight: 1, Op: ok}, {Name: "bad", Weight: 1, Op: boom}},
			MaxOutstanding: 1,
			Clock:          f,
		})
	})
	if res.Ops == 0 {
		t.Fatal("no ops")
	}
	if res.Errors == 0 || res.ErrKinds["test failure"] != res.Errors {
		t.Fatalf("Errors = %d, ErrKinds = %v", res.Errors, res.ErrKinds)
	}
	good, bad := res.PerClass["good"], res.PerClass["bad"]
	if good == nil || bad == nil {
		t.Fatalf("missing per-class latencies: %v", res.PerClass)
	}
	if good.Count()+bad.Count() != res.Ops {
		t.Fatalf("per-class counts %d+%d != ops %d", good.Count(), bad.Count(), res.Ops)
	}
	if bad.Count() != res.Errors {
		t.Fatalf("bad class count %d != errors %d", bad.Count(), res.Errors)
	}
	if s := res.String(); s == "" {
		t.Fatal("empty summary")
	}
}

func TestSetClockConcurrent(t *testing.T) {
	defer SetClock(clock.Real())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if g%2 == 0 {
					SetClock(clock.NewFake())
				} else if currentClock() == nil {
					panic("nil clock")
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestLatenciesHistogramModeBeyondCap(t *testing.T) {
	l := &Latencies{}
	n := exactCap * 4
	exact := make([]time.Duration, 0, n)
	r := clock.NewRand(99)
	for i := 0; i < n; i++ {
		d := time.Duration(r.Intn(100_000_000)) // up to 100ms
		l.Add(d)
		exact = append(exact, d)
	}
	if l.Count() != n {
		t.Fatalf("Count = %d, want %d", l.Count(), n)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, p := range []float64{50, 90, 99, 99.9} {
		got := float64(l.Percentile(p))
		idx := int(float64(n)*p/100) - 1
		if idx < 0 {
			idx = 0
		}
		want := float64(exact[idx])
		if want == 0 {
			continue
		}
		if diff := got/want - 1; diff < -0.10 || diff > 0.10 {
			t.Fatalf("p%v = %v, exact %v: off by %.1f%%, want <=10%% (log-linear bound)",
				p, time.Duration(got), time.Duration(want), diff*100)
		}
	}
	if l.Max() != exact[n-1] {
		t.Fatalf("Max = %v, want %v", l.Max(), exact[n-1])
	}
}

var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "test failure" }
