package workload

import (
	"testing"

	"mca/internal/clock"
)

func TestZipfDeterministicAndBounded(t *testing.T) {
	z := NewZipf(1000, 0.99)
	a := clock.NewRand(42)
	b := clock.NewRand(42)
	for i := 0; i < 10_000; i++ {
		ka, kb := z.Pick(a), z.Pick(b)
		if ka != kb {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, ka, kb)
		}
		if ka >= 1000 {
			t.Fatalf("key %d out of range [0,1000)", ka)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	const n, draws = 1000, 100_000
	z := NewZipf(n, 0.99)
	r := clock.NewRand(7)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Pick(r)]++
	}
	// Rank 0 is the hottest key and carries ~1/zeta(n) of the mass
	// (~13% at theta 0.99, n 1000).
	if counts[0] < draws/20 {
		t.Fatalf("key 0 drawn %d times, want >= %d (hot key)", counts[0], draws/20)
	}
	if counts[0] <= counts[n/2] {
		t.Fatalf("key 0 (%d) not hotter than median key (%d)", counts[0], counts[n/2])
	}
	var top10 int
	for _, c := range counts[:n/10] {
		top10 += c
	}
	if frac := float64(top10) / draws; frac < 0.5 {
		t.Fatalf("top 10%% of keys carry %.2f of mass, want >= 0.5 for theta=0.99", frac)
	}
}

func TestUniformKeys(t *testing.T) {
	u := UniformKeys{N: 16}
	r := clock.NewRand(3)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		k := u.Pick(r)
		if k >= 16 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) != 16 {
		t.Fatalf("only %d/16 keys seen in 1000 uniform draws", len(seen))
	}
	if (UniformKeys{}).Pick(r) != 0 {
		t.Fatal("zero-N uniform dist must return key 0")
	}
}
