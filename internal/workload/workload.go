// Package workload provides the load generators and metric collectors
// used by the experiment harness (cmd/experiments) and the benchmarks:
// concurrent op runners, latency summaries and contention counters.
package workload

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"mca/internal/clock"
)

// clk times runs and per-op latencies. Package-level because the
// runners are package functions; SetClock swaps it for a virtual
// clock before a simulated run starts (not concurrency-safe against
// in-flight runners).
var clk = clock.Real()

// SetClock substitutes the time source used by Run and RunFor.
// Default clock.Real(). Call before starting runners.
func SetClock(c clock.Clock) { clk = c }

// Latencies is a recorded set of operation durations.
type Latencies struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Add records one sample.
func (l *Latencies) Add(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.samples = append(l.samples, d)
}

// Count returns the number of samples.
func (l *Latencies) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.samples)
}

// Mean returns the average sample, or 0 with no samples.
func (l *Latencies) Mean() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	var total time.Duration
	for _, s := range l.samples {
		total += s
	}
	return total / time.Duration(len(l.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100), or 0 with no
// samples.
func (l *Latencies) Percentile(p float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(l.samples))
	copy(sorted, l.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(float64(len(sorted))*p/100) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Result summarises one generated load.
type Result struct {
	Ops      int
	Errors   int
	Elapsed  time.Duration
	Latency  *Latencies
	ErrKinds map[string]int
}

// Throughput returns completed (error-free) operations per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops-r.Errors) / r.Elapsed.Seconds()
}

// String renders a one-line summary for experiment tables.
func (r Result) String() string {
	return fmt.Sprintf("ops=%d errs=%d elapsed=%v thru=%.0f/s p50=%v p99=%v",
		r.Ops, r.Errors, r.Elapsed.Round(time.Millisecond), r.Throughput(),
		r.Latency.Percentile(50).Round(time.Microsecond),
		r.Latency.Percentile(99).Round(time.Microsecond))
}

// Run executes op opsPerWorker times in each of workers goroutines and
// collects latency and error counts. op receives (worker, iteration).
func Run(workers, opsPerWorker int, op func(worker, i int) error) Result {
	res := Result{Latency: &Latencies{}, ErrKinds: make(map[string]int)}
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	start := clk.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				opStart := clk.Now()
				err := op(w, i)
				res.Latency.Add(clk.Since(opStart))
				mu.Lock()
				res.Ops++
				if err != nil {
					res.Errors++
					res.ErrKinds[errKind(err)]++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.Elapsed = clk.Since(start)
	return res
}

// RunFor executes op repeatedly in each of workers goroutines until the
// duration elapses.
func RunFor(workers int, d time.Duration, op func(worker, i int) error) Result {
	res := Result{Latency: &Latencies{}, ErrKinds: make(map[string]int)}
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	start := clk.Now()
	deadline := start.Add(d)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; clk.Now().Before(deadline); i++ {
				opStart := clk.Now()
				err := op(w, i)
				res.Latency.Add(clk.Since(opStart))
				mu.Lock()
				res.Ops++
				if err != nil {
					res.Errors++
					res.ErrKinds[errKind(err)]++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.Elapsed = clk.Since(start)
	return res
}

func errKind(err error) string {
	msg := err.Error()
	if len(msg) > 40 {
		msg = msg[:40]
	}
	return msg
}

// Gauge tracks a high-water mark of a concurrent quantity.
type Gauge struct {
	mu  sync.Mutex
	cur int
	max int
}

// Enter increments the gauge and updates the maximum.
func (g *Gauge) Enter() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.cur++
	if g.cur > g.max {
		g.max = g.cur
	}
}

// Exit decrements the gauge.
func (g *Gauge) Exit() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.cur--
}

// Max returns the high-water mark.
func (g *Gauge) Max() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.max
}
