// Package workload provides the load generators and metric collectors
// used by the experiment harness (cmd/experiments), cmd/loadgen and the
// benchmarks. Two generator families live here:
//
//   - Closed loop (Run, RunFor): a fixed set of workers issue the next
//     op as soon as the previous one returns. Latency samples measure
//     service time only — when the system stalls, the workers stall
//     with it, so queueing delay is silently omitted (coordinated
//     omission). Right for micro-benchmarks, wrong for SLOs.
//   - Open loop (RunOpen): arrivals follow a deterministic schedule
//     (Poisson or fixed-rate, seeded) that does not react to the
//     system under test, and each op's latency is measured from its
//     intended arrival time, so backlog shows up in the tail instead
//     of disappearing. SearchCapacity bisects offered load for the
//     highest rate that still meets a latency SLO.
package workload

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mca/internal/clock"
	"mca/internal/metrics"
)

// clockBox wraps the package clock so atomic.Value always stores one
// concrete type (storing different Clock implementations directly
// would panic on the type switch).
type clockBox struct{ c clock.Clock }

// clk times runs and per-op latencies. Package-level because the
// runners are package functions; SetClock swaps it for a virtual clock
// before a simulated run starts.
var clk atomic.Value

func init() { clk.Store(clockBox{clock.Real()}) }

// SetClock substitutes the time source used by Run, RunFor and
// RunOpen. Default clock.Real(). Safe for concurrent use; runners
// capture the clock once at start, so a swap mid-run affects the next
// run, not in-flight workers.
func SetClock(c clock.Clock) { clk.Store(clockBox{c}) }

// currentClock returns the clock runners capture at start.
func currentClock() clock.Clock { return clk.Load().(clockBox).c }

// exactCap is how many samples Latencies retains verbatim. Runs at or
// under the cap report exact percentiles; larger runs fall back to the
// log-linear histogram (error <= 1/16 of the value), keeping memory
// constant no matter how long the run.
const exactCap = 4096

// Latencies is a recorded set of operation durations: a log-linear
// histogram of every sample plus the first exactCap samples verbatim
// for exact small-run percentiles.
type Latencies struct {
	hist metrics.LogLinearHistogram

	mu      sync.Mutex
	samples []time.Duration // first exactCap samples
	sorted  bool            // samples are sorted (percentile cache)
	count   int
	sum     time.Duration
	max     time.Duration
}

// Add records one sample. Negative durations (clock steps) clamp to 0.
func (l *Latencies) Add(d time.Duration) {
	if d < 0 {
		d = 0
	}
	l.hist.ObserveDuration(d)
	l.mu.Lock()
	l.count++
	l.sum += d
	if d > l.max {
		l.max = d
	}
	if len(l.samples) < exactCap {
		l.samples = append(l.samples, d)
		l.sorted = false
	}
	l.mu.Unlock()
}

// Count returns the number of samples.
func (l *Latencies) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Mean returns the average sample, or 0 with no samples.
func (l *Latencies) Mean() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.count == 0 {
		return 0
	}
	return l.sum / time.Duration(l.count)
}

// Max returns the largest sample.
func (l *Latencies) Max() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.max
}

// Percentile returns the p-th percentile (0 < p <= 100), or 0 with no
// samples: exact while every sample is retained (runs up to exactCap
// ops, sorted once and cached), histogram-interpolated beyond that.
func (l *Latencies) Percentile(p float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.count == 0 {
		return 0
	}
	if l.count <= len(l.samples) {
		if !l.sorted {
			sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
			l.sorted = true
		}
		idx := int(float64(len(l.samples))*p/100) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(l.samples) {
			idx = len(l.samples) - 1
		}
		return l.samples[idx]
	}
	s := l.hist.Snapshot()
	return time.Duration(s.Quantile(p / 100))
}

// Result summarises one generated load.
type Result struct {
	Ops      int
	Errors   int
	Elapsed  time.Duration
	Latency  *Latencies
	ErrKinds map[string]int
}

// Throughput returns completed (error-free) operations per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops-r.Errors) / r.Elapsed.Seconds()
}

// String renders a one-line summary for experiment tables.
func (r Result) String() string {
	return fmt.Sprintf("ops=%d errs=%d elapsed=%v thru=%.0f/s p50=%v p99=%v",
		r.Ops, r.Errors, r.Elapsed.Round(time.Millisecond), r.Throughput(),
		r.Latency.Percentile(50).Round(time.Microsecond),
		r.Latency.Percentile(99).Round(time.Microsecond))
}

// Run executes op opsPerWorker times in each of workers goroutines and
// collects latency and error counts. op receives (worker, iteration).
// Closed loop: latencies measure service time, not queueing delay.
func Run(workers, opsPerWorker int, op func(worker, i int) error) Result {
	c := currentClock()
	res := Result{Latency: &Latencies{}, ErrKinds: make(map[string]int)}
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	start := c.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				opStart := c.Now()
				err := op(w, i)
				res.Latency.Add(c.Since(opStart))
				mu.Lock()
				res.Ops++
				if err != nil {
					res.Errors++
					res.ErrKinds[errKind(err)]++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.Elapsed = c.Since(start)
	return res
}

// RunFor executes op repeatedly in each of workers goroutines until the
// duration elapses. Closed loop, like Run. Under a clock.Fake the run
// terminates exactly at the window edge: a worker starts another op
// only while Now() is strictly before start+d, so with ops that
// consume virtual time the last one completes at the deadline and
// Elapsed equals d exactly.
func RunFor(workers int, d time.Duration, op func(worker, i int) error) Result {
	c := currentClock()
	res := Result{Latency: &Latencies{}, ErrKinds: make(map[string]int)}
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	start := c.Now()
	deadline := start.Add(d)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; c.Now().Before(deadline); i++ {
				opStart := c.Now()
				err := op(w, i)
				res.Latency.Add(c.Since(opStart))
				mu.Lock()
				res.Ops++
				if err != nil {
					res.Errors++
					res.ErrKinds[errKind(err)]++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.Elapsed = c.Since(start)
	return res
}

func errKind(err error) string {
	msg := err.Error()
	if len(msg) > 40 {
		msg = msg[:40]
	}
	return msg
}

// Gauge tracks a high-water mark of a concurrent quantity.
type Gauge struct {
	mu  sync.Mutex
	cur int
	max int
}

// Enter increments the gauge and updates the maximum.
func (g *Gauge) Enter() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.cur++
	if g.cur > g.max {
		g.max = g.cur
	}
}

// Exit decrements the gauge.
func (g *Gauge) Exit() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.cur--
}

// Max returns the high-water mark.
func (g *Gauge) Max() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.max
}
