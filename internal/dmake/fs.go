// Package dmake implements the paper's example (iv): a fault-tolerant
// distributed make built on serializing actions.
//
// The three required characteristics (§4 iv) map onto the structure as
// follows: (i) prerequisite targets are made concurrently; (ii) while a
// make runs, the files it used stay locked against modification by other
// programs — the serializing container retains read locks on sources and
// exclusive-read locks on built targets; and (iii) if the make fails,
// targets already made consistent stay consistent — each rule execution
// is a constituent, top-level with respect to permanence.
package dmake

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"mca/internal/action"
	"mca/internal/colour"
	"mca/internal/object"
)

// ErrNoFile is returned when reading a file that does not exist.
var ErrNoFile = errors.New("dmake: no such file")

// FileState is the versioned content of one file. Stamp is a logical
// timestamp, "updated automatically every time the file is changed".
type FileState struct {
	Content string `json:"content"`
	Stamp   int64  `json:"stamp"`
}

// FS is a small filesystem of lockable, recoverable files.
type FS struct {
	rt      *action.Runtime
	objOpts []object.Option

	mu    sync.Mutex
	files map[string]*object.Managed[FileState]

	clock atomic.Int64
}

// NewFS builds a filesystem whose file objects are created with the
// given object options (e.g. object.WithStore for persistence).
func NewFS(rt *action.Runtime, opts ...object.Option) *FS {
	return &FS{
		rt:      rt,
		objOpts: opts,
		files:   make(map[string]*object.Managed[FileState]),
	}
}

// Runtime returns the action runtime the filesystem belongs to.
func (fs *FS) Runtime() *action.Runtime { return fs.rt }

// Create writes a file outside any action (setup time).
func (fs *FS) Create(name, content string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[name] = object.New(FileState{
		Content: content,
		Stamp:   fs.clock.Add(1),
	}, fs.objOpts...)
}

// lookup returns the managed object for a name.
func (fs *FS) lookup(name string) (*object.Managed[FileState], bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	m, ok := fs.files[name]
	return m, ok
}

// Exists reports whether the file currently exists (lock-free snapshot).
func (fs *FS) Exists(name string) bool {
	m, ok := fs.lookup(name)
	return ok && m.Exists()
}

// Object returns the managed object of a file, for lock introspection.
func (fs *FS) Object(name string) (*object.Managed[FileState], bool) {
	return fs.lookup(name)
}

// Read returns the file's state under a read lock of the action.
func (fs *FS) Read(a *action.Action, name string) (FileState, error) {
	m, ok := fs.lookup(name)
	if !ok {
		return FileState{}, fmt.Errorf("%w: %s", ErrNoFile, name)
	}
	var out FileState
	err := m.Read(a, func(v FileState) error {
		out = v
		return nil
	})
	if errors.Is(err, object.ErrNotExists) {
		return FileState{}, fmt.Errorf("%w: %s", ErrNoFile, name)
	}
	return out, err
}

// Stamp returns the file's timestamp under a read lock, or 0 when the
// file does not exist.
func (fs *FS) Stamp(a *action.Action, name string) (int64, error) {
	st, err := fs.Read(a, name)
	if errors.Is(err, ErrNoFile) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return st.Stamp, nil
}

// Write replaces the file's content under a write lock of the action,
// advancing its timestamp. Missing files are created as part of the
// action (undone if it aborts).
func (fs *FS) Write(a *action.Action, name, content string) error {
	m, ok := fs.lookup(name)
	if !ok || !m.Exists() {
		return fs.createIn(a, m, ok, name, content)
	}
	return m.Write(a, func(v *FileState) error {
		v.Content = content
		v.Stamp = fs.clock.Add(1)
		return nil
	})
}

func (fs *FS) createIn(a *action.Action, m *object.Managed[FileState], known bool, name, content string) error {
	state := FileState{Content: content, Stamp: fs.clock.Add(1)}
	if known {
		// The object exists but is in the "deleted" state (e.g. a
		// previous creating action aborted): a write lock plus a
		// fresh creation record would be ideal, but Managed treats
		// existence via NewIn/DeleteIn; recreate through a write of
		// the deleted object is not allowed, so allocate a new
		// managed object for the name.
		fs.mu.Lock()
		delete(fs.files, name)
		fs.mu.Unlock()
	}
	created, err := object.NewIn(a, colour.None, state, fs.objOpts...)
	if err != nil {
		return fmt.Errorf("create %s: %w", name, err)
	}
	fs.mu.Lock()
	fs.files[name] = created
	fs.mu.Unlock()
	return nil
}

// Names returns all known file names (including deleted ones), for
// tests.
func (fs *FS) Names() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.files))
	for n := range fs.files {
		out = append(out, n)
	}
	return out
}

// Snapshot returns the file's current state without locking (test
// assertions only).
func (fs *FS) Snapshot(name string) (FileState, bool) {
	m, ok := fs.lookup(name)
	if !ok || !m.Exists() {
		return FileState{}, false
	}
	return m.Peek(), true
}
